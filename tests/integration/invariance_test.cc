// Algebraic invariances of the solver that pin down subtle regressions:
// scale equivariance, entry-order independence, mode-relabeling symmetry,
// and golden error trajectories for fixed seeds.
#include <cmath>

#include <gtest/gtest.h>

#include "core/ptucker.h"
#include "core/reconstruction.h"
#include "data/synthetic.h"
#include "util/random.h"

namespace ptucker {
namespace {

SparseTensor BaseTensor(std::uint64_t seed) {
  Rng rng(seed);
  return UniformSparseTensor({14, 12, 10}, 400, rng);
}

PTuckerOptions BaseOptions() {
  PTuckerOptions options;
  options.core_dims = {3, 3, 3};
  options.max_iterations = 5;
  options.tolerance = 0.0;
  return options;
}

TEST(InvarianceTest, EntryOrderDoesNotChangeResult) {
  // The loss (Eq. 6) is a sum over Ω: permuting the entry storage order
  // must not change the factorization (up to fp reassociation in the
  // per-row sums — hence the tolerance).
  SparseTensor original = BaseTensor(1);
  SparseTensor reversed(original.dims());
  for (std::int64_t e = original.nnz() - 1; e >= 0; --e) {
    reversed.AddEntry(original.index(e), original.value(e));
  }
  reversed.BuildModeIndex();

  PTuckerOptions options = BaseOptions();
  PTuckerResult a = PTuckerDecompose(original, options);
  PTuckerResult b = PTuckerDecompose(reversed, options);
  EXPECT_NEAR(a.final_error, b.final_error, 1e-8);
}

TEST(InvarianceTest, ValueScalingScalesErrorInTheLimit) {
  // With λ → 0 the row update is linear in the data: scaling every value
  // by c scales the achievable error by c.
  SparseTensor x = BaseTensor(2);
  SparseTensor scaled(x.dims());
  const double c = 7.0;
  for (std::int64_t e = 0; e < x.nnz(); ++e) {
    scaled.AddEntry(x.index(e), c * x.value(e));
  }
  scaled.BuildModeIndex();

  PTuckerOptions options = BaseOptions();
  options.lambda = 1e-12;
  PTuckerResult base = PTuckerDecompose(x, options);
  PTuckerResult big = PTuckerDecompose(scaled, options);
  // Not exactly c· (the random init is not scaled), but after a few exact
  // ALS sweeps the ratio should be close.
  EXPECT_NEAR(big.final_error / base.final_error, c, 0.15 * c);
}

TEST(InvarianceTest, ModeRelabelingSymmetry) {
  // Transposing a 2-way tensor swaps the roles of the factor matrices;
  // the reconstruction error must be identical (same seed draws different
  // factor shapes, so compare against a solve of the transposed problem
  // with swapped core dims).
  Rng rng(3);
  SparseTensor x({18, 11});
  for (int e = 0; e < 120; ++e) {
    std::int64_t index[2] = {static_cast<std::int64_t>(rng.UniformInt(18)),
                             static_cast<std::int64_t>(rng.UniformInt(11))};
    x.AddEntry(index, rng.Uniform());
  }
  x.BuildModeIndex();
  SparseTensor xt({11, 18});
  for (std::int64_t e = 0; e < x.nnz(); ++e) {
    std::int64_t index[2] = {x.index(e, 1), x.index(e, 0)};
    xt.AddEntry(index, x.value(e));
  }
  xt.BuildModeIndex();

  PTuckerOptions options;
  options.core_dims = {3, 2};
  options.max_iterations = 8;
  options.tolerance = 0.0;
  PTuckerResult forward = PTuckerDecompose(x, options);
  options.core_dims = {2, 3};
  PTuckerResult transposed = PTuckerDecompose(xt, options);
  // Same optimization landscape up to relabeling; different random inits
  // land on fits of very similar quality after enough sweeps.
  EXPECT_NEAR(forward.final_error, transposed.final_error,
              0.05 * forward.final_error);
}

TEST(InvarianceTest, GoldenTrajectoryStableAcrossRuns) {
  // Full determinism: the same seed must give bit-identical trajectories
  // run-to-run (guards against accidental nondeterminism — unseeded RNG,
  // schedule-dependent sums, uninitialized reads).
  SparseTensor x = BaseTensor(4);
  PTuckerOptions options = BaseOptions();
  PTuckerResult a = PTuckerDecompose(x, options);
  PTuckerResult b = PTuckerDecompose(x, options);
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_EQ(a.iterations[i].error, b.iterations[i].error) << "iter " << i;
  }
}

TEST(InvarianceTest, SeedChangesInitButNotQualityClass) {
  SparseTensor x = BaseTensor(5);
  PTuckerOptions options = BaseOptions();
  options.max_iterations = 10;
  PTuckerResult a = PTuckerDecompose(x, options);
  options.seed += 1;
  PTuckerResult b = PTuckerDecompose(x, options);
  EXPECT_NE(a.final_error, b.final_error);  // different basins
  EXPECT_NEAR(a.final_error, b.final_error, 0.2 * a.final_error);
}

TEST(InvarianceTest, DuplicateCoordinatesActAsRepeatedObservations) {
  // COO allows repeated coordinates; the loss then counts the entry
  // twice. A duplicated entry with the same value must pull the fit
  // harder than a single one — verify no crash and a sane error.
  SparseTensor x({8, 8});
  Rng rng(6);
  for (int e = 0; e < 40; ++e) {
    std::int64_t index[2] = {static_cast<std::int64_t>(rng.UniformInt(8)),
                             static_cast<std::int64_t>(rng.UniformInt(8))};
    x.AddEntry(index, rng.Uniform());
  }
  const std::int64_t dup[2] = {0, 0};
  x.AddEntry(dup, 0.9);
  x.AddEntry(dup, 0.9);
  x.BuildModeIndex();
  PTuckerOptions options;
  options.core_dims = {2, 2};
  options.max_iterations = 6;
  PTuckerResult result = PTuckerDecompose(x, options);
  EXPECT_TRUE(std::isfinite(result.final_error));
}

class ToleranceSweep : public ::testing::TestWithParam<double> {};

TEST_P(ToleranceSweep, LooserToleranceStopsNoLater) {
  SparseTensor x = BaseTensor(7);
  PTuckerOptions options = BaseOptions();
  options.max_iterations = 30;
  options.tolerance = GetParam();
  PTuckerResult loose = PTuckerDecompose(x, options);
  options.tolerance = GetParam() / 100.0;
  PTuckerResult tight = PTuckerDecompose(x, options);
  EXPECT_LE(loose.iterations.size(), tight.iterations.size());
  EXPECT_GE(loose.final_error, tight.final_error - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Tolerances, ToleranceSweep,
                         ::testing::Values(1e-2, 1e-3, 1e-4));

}  // namespace
}  // namespace ptucker
