// Property-based sweeps over randomized workloads: the paper's theorems
// (monotone convergence, SPD row systems, orthogonal invariance) must hold
// for every shape/seed combination, not just hand-picked cases.
#include <cmath>

#include <gtest/gtest.h>

#include "core/ptucker.h"
#include "core/reconstruction.h"
#include "data/synthetic.h"
#include "linalg/qr.h"
#include "tensor/nmode.h"
#include "util/random.h"

namespace ptucker {
namespace {

struct PropertyCase {
  int order;
  std::int64_t dim;
  std::int64_t rank;
  std::int64_t nnz;
  std::uint64_t seed;
};

void PrintTo(const PropertyCase& c, std::ostream* os) {
  *os << "order=" << c.order << " dim=" << c.dim << " rank=" << c.rank
      << " nnz=" << c.nnz << " seed=" << c.seed;
}

class PTuckerPropertySweep : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(PTuckerPropertySweep, TheoremsHold) {
  const PropertyCase param = GetParam();
  Rng rng(param.seed);
  SparseTensor x =
      UniformCubicTensor(param.order, param.dim, param.nnz, rng);

  PTuckerOptions options;
  options.core_dims.assign(static_cast<std::size_t>(param.order),
                           param.rank);
  options.max_iterations = 5;
  options.seed = param.seed * 7 + 1;
  PTuckerResult result = PTuckerDecompose(x, options);

  // Theorem 2: monotone non-increasing error, bounded below by 0.
  for (std::size_t i = 1; i < result.iterations.size(); ++i) {
    ASSERT_LE(result.iterations[i].error,
              result.iterations[i - 1].error + 1e-9);
    ASSERT_GE(result.iterations[i].error, 0.0);
  }

  // The trivial upper bound: the final fit is no worse than predicting
  // all zeros.
  EXPECT_LE(result.final_error, x.FrobeniusNorm() + 1e-9);

  // Output contract: orthonormal factors, finite core.
  for (const auto& factor : result.model.factors) {
    ASSERT_LT(OrthonormalityDefect(factor), 1e-8);
  }
  for (std::int64_t i = 0; i < result.model.core.size(); ++i) {
    ASSERT_TRUE(std::isfinite(result.model.core[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PTuckerPropertySweep,
    ::testing::Values(PropertyCase{2, 15, 3, 100, 1},
                      PropertyCase{3, 10, 2, 200, 2},
                      PropertyCase{3, 12, 4, 400, 3},
                      PropertyCase{4, 8, 2, 300, 4},
                      PropertyCase{5, 6, 2, 250, 5},
                      PropertyCase{6, 5, 2, 200, 6},
                      PropertyCase{3, 30, 3, 60, 7},   // very sparse
                      PropertyCase{3, 6, 2, 216, 8},   // fully dense
                      PropertyCase{2, 40, 5, 800, 9},
                      PropertyCase{4, 7, 3, 500, 10}));

class SkewedWorkloadSweep : public ::testing::TestWithParam<double> {};

TEST_P(SkewedWorkloadSweep, MonotoneUnderSkew) {
  // Dynamic-scheduling workloads: heavy slice imbalance must not affect
  // correctness.
  const double skew = GetParam();
  Rng rng(static_cast<std::uint64_t>(skew * 100) + 3);
  SparseTensor x = SkewedSparseTensor({40, 40, 40}, 800, skew, rng);
  PTuckerOptions options;
  options.core_dims = {3, 3, 3};
  options.max_iterations = 4;
  PTuckerResult result = PTuckerDecompose(x, options);
  for (std::size_t i = 1; i < result.iterations.size(); ++i) {
    ASSERT_LE(result.iterations[i].error,
              result.iterations[i - 1].error + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Skews, SkewedWorkloadSweep,
                         ::testing::Values(0.0, 0.5, 1.0, 1.5));

class RankSweep : public ::testing::TestWithParam<int> {};

TEST_P(RankSweep, HigherRankFitsNoWorse) {
  // More capacity can only improve the final training fit (up to solver
  // noise): run rank J and rank J+1 on the same tensor.
  const int rank = GetParam();
  Rng rng(50 + rank);
  SparseTensor x = UniformCubicTensor(3, 15, 500, rng);

  PTuckerOptions options;
  options.max_iterations = 10;
  options.core_dims = {rank, rank, rank};
  const double err_low = PTuckerDecompose(x, options).final_error;
  options.core_dims = {rank + 1, rank + 1, rank + 1};
  const double err_high = PTuckerDecompose(x, options).final_error;
  // Different random inits make this stochastic; allow 10% slack.
  EXPECT_LT(err_high, err_low * 1.10);
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankSweep, ::testing::Values(1, 2, 4, 6));

TEST(NumericalEdgeCases, ConstantValueTensor) {
  // All observed values identical: the solver must fit them (nearly)
  // exactly with rank 1.
  SparseTensor x({10, 10, 10});
  Rng rng(1);
  for (int e = 0; e < 200; ++e) {
    std::int64_t index[3] = {
        static_cast<std::int64_t>(rng.UniformInt(10)),
        static_cast<std::int64_t>(rng.UniformInt(10)),
        static_cast<std::int64_t>(rng.UniformInt(10))};
    x.AddEntry(index, 0.5);
  }
  x.BuildModeIndex();
  PTuckerOptions options;
  options.core_dims = {1, 1, 1};
  options.max_iterations = 20;
  options.lambda = 1e-6;
  PTuckerResult result = PTuckerDecompose(x, options);
  EXPECT_LT(result.final_error, 0.05);
}

TEST(NumericalEdgeCases, TinyValuesStayFinite) {
  SparseTensor x({8, 8});
  Rng rng(2);
  for (int e = 0; e < 40; ++e) {
    std::int64_t index[2] = {static_cast<std::int64_t>(rng.UniformInt(8)),
                             static_cast<std::int64_t>(rng.UniformInt(8))};
    x.AddEntry(index, rng.Uniform() * 1e-15);
  }
  x.BuildModeIndex();
  PTuckerOptions options;
  options.core_dims = {2, 2};
  options.max_iterations = 5;
  PTuckerResult result = PTuckerDecompose(x, options);
  EXPECT_TRUE(std::isfinite(result.final_error));
}

TEST(NumericalEdgeCases, SingleEntryTensor) {
  SparseTensor x({5, 5});
  x.AddEntry({2, 3}, 0.7);
  x.BuildModeIndex();
  PTuckerOptions options;
  options.core_dims = {1, 1};
  options.max_iterations = 10;
  options.lambda = 1e-9;
  PTuckerResult result = PTuckerDecompose(x, options);
  EXPECT_LT(result.final_error, 1e-3);
}

TEST(NumericalEdgeCases, RankOneEveryMode) {
  Rng rng(3);
  SparseTensor x = UniformCubicTensor(4, 6, 100, rng);
  PTuckerOptions options;
  options.core_dims = {1, 1, 1, 1};
  options.max_iterations = 6;
  PTuckerResult result = PTuckerDecompose(x, options);
  EXPECT_TRUE(std::isfinite(result.final_error));
  EXPECT_EQ(result.model.core.size(), 1);
}

}  // namespace
}  // namespace ptucker
