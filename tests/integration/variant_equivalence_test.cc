// Cross-variant and cross-solver equivalences the paper's design rests
// on: the cache variant is an exact optimization, approx degrades
// gracefully, and the observed-entry methods beat zero-imputing methods.
#include <gtest/gtest.h>

#include "baselines/hooi.h"
#include "baselines/shot.h"
#include "baselines/tucker_csf.h"
#include "baselines/tucker_wopt.h"
#include "core/ptucker.h"
#include "core/reconstruction.h"
#include "data/lowrank.h"
#include "data/split.h"
#include "util/random.h"

namespace ptucker {
namespace {

struct Workload {
  SparseTensor train;
  SparseTensor test;
};

Workload MakeWorkload(std::uint64_t seed) {
  Rng rng(seed);
  PlantedTucker model = RandomTuckerModel({25, 20, 15}, {3, 3, 3}, rng);
  SparseTensor x = SampleFromModel(model, 2500, 0.02, rng);
  auto split = SplitObservedEntries(x, 0.1, rng);
  return {std::move(split.train), std::move(split.test)};
}

class VariantEquivalence : public ::testing::Test {
 protected:
  void SetUp() override { workload_ = MakeWorkload(1); }
  Workload workload_;
};

TEST_F(VariantEquivalence, CacheIsExactlyEquivalent) {
  PTuckerOptions options;
  options.core_dims = {3, 3, 3};
  options.max_iterations = 6;
  PTuckerResult memory_run = PTuckerDecompose(workload_.train, options);
  options.variant = PTuckerVariant::kCache;
  PTuckerResult cache_run = PTuckerDecompose(workload_.train, options);
  // Same iterates to fp tolerance across the whole trajectory.
  ASSERT_EQ(memory_run.iterations.size(), cache_run.iterations.size());
  for (std::size_t i = 0; i < memory_run.iterations.size(); ++i) {
    EXPECT_NEAR(memory_run.iterations[i].error,
                cache_run.iterations[i].error, 1e-7);
  }
}

TEST_F(VariantEquivalence, ApproxTradesAccuracyGracefully) {
  PTuckerOptions options;
  options.core_dims = {3, 3, 3};
  options.max_iterations = 8;
  PTuckerResult exact = PTuckerDecompose(workload_.train, options);
  options.variant = PTuckerVariant::kApprox;
  options.truncation_rate = 0.2;
  PTuckerResult approx = PTuckerDecompose(workload_.train, options);
  // Fig. 9: "almost the same accuracy" — allow a generous factor but
  // require the same order of magnitude.
  EXPECT_LT(approx.final_error, 3.0 * exact.final_error + 1e-9);
  // And it must actually have truncated.
  EXPECT_LT(approx.iterations.back().core_nnz, 27);
}

TEST_F(VariantEquivalence, ObservedEntryMethodsBeatZeroImputingOnTestRmse) {
  // The Fig. 11 ordering: P-Tucker and wOpt (observed-entry) must beat
  // HOOI/S-HOT/CSF (zero-imputing) on missing-entry prediction.
  PTuckerOptions popt;
  popt.core_dims = {3, 3, 3};
  popt.max_iterations = 10;
  PTuckerResult ptucker = PTuckerDecompose(workload_.train, popt);
  const double ptucker_rmse =
      TestRmse(workload_.test, ptucker.model.core, ptucker.model.factors);

  HooiOptions hopt;
  hopt.core_dims = {3, 3, 3};
  hopt.max_iterations = 10;
  BaselineResult hooi = HooiDecompose(workload_.train, hopt);
  const double hooi_rmse =
      TestRmse(workload_.test, hooi.model.core, hooi.model.factors);

  BaselineResult csf = TuckerCsfDecompose(workload_.train, hopt);
  const double csf_rmse =
      TestRmse(workload_.test, csf.model.core, csf.model.factors);

  EXPECT_LT(ptucker_rmse, hooi_rmse);
  EXPECT_LT(ptucker_rmse, csf_rmse);
}

TEST_F(VariantEquivalence, ZeroImputingBaselinesAgreeWithEachOther) {
  HooiOptions hopt;
  hopt.core_dims = {3, 3, 3};
  hopt.max_iterations = 8;
  BaselineResult hooi = HooiDecompose(workload_.train, hopt);
  BaselineResult csf = TuckerCsfDecompose(workload_.train, hopt);
  ShotOptions sopt;
  sopt.core_dims = {3, 3, 3};
  sopt.max_iterations = 8;
  BaselineResult shot = ShotDecompose(workload_.train, sopt);
  EXPECT_NEAR(hooi.final_error, csf.final_error,
              0.01 * hooi.final_error + 1e-9);
  EXPECT_NEAR(hooi.final_error, shot.final_error,
              0.05 * hooi.final_error + 1e-9);
}

TEST_F(VariantEquivalence, SchedulingDoesNotChangeResults) {
  PTuckerOptions options;
  options.core_dims = {3, 3, 3};
  options.max_iterations = 5;
  options.scheduling = Scheduling::kDynamic;
  PTuckerResult dynamic_run = PTuckerDecompose(workload_.train, options);
  options.scheduling = Scheduling::kStatic;
  PTuckerResult static_run = PTuckerDecompose(workload_.train, options);
  EXPECT_NEAR(dynamic_run.final_error, static_run.final_error, 1e-8);
}

}  // namespace
}  // namespace ptucker
