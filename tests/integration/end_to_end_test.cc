// End-to-end flows across modules: data generation -> split -> solve ->
// predict/discover -> serialize, the way a downstream user runs the
// library.
#include <cstdio>
#include <cmath>
#include <filesystem>

#include <gtest/gtest.h>

#include "analytics/discovery.h"
#include "core/ptucker.h"
#include "core/reconstruction.h"
#include "data/movielens_sim.h"
#include "data/split.h"
#include "tensor/io.h"
#include "util/random.h"

namespace ptucker {
namespace {

TEST(EndToEndTest, MovieLensPipelineBeatsZeroPredictor) {
  MovieLensConfig config;
  config.num_users = 120;
  config.num_movies = 60;
  config.num_years = 6;
  config.num_hours = 24;
  config.nnz = 6000;
  MovieLensData data = SimulateMovieLens(config);

  Rng rng(1);
  auto split = SplitObservedEntries(data.tensor, 0.1, rng);

  PTuckerOptions options;
  options.core_dims = {4, 4, 3, 4};
  options.max_iterations = 10;
  PTuckerResult result = PTuckerDecompose(split.train, options);

  const double rmse =
      TestRmse(split.test, result.model.core, result.model.factors);
  double zero_sq = 0.0, mean = 0.0;
  for (std::int64_t e = 0; e < split.test.nnz(); ++e) {
    zero_sq += split.test.value(e) * split.test.value(e);
    mean += split.test.value(e);
  }
  const double zero_rmse =
      std::sqrt(zero_sq / static_cast<double>(split.test.nnz()));
  EXPECT_LT(rmse, zero_rmse * 0.75);
}

TEST(EndToEndTest, DiscoveryOnFittedModelRecoversGenres) {
  MovieLensConfig config;
  config.num_users = 150;
  config.num_movies = 60;
  config.num_years = 5;
  config.num_hours = 12;
  config.num_genres = 3;
  config.nnz = 8000;
  config.noise_stddev = 0.02;
  MovieLensData data = SimulateMovieLens(config);

  PTuckerOptions options;
  options.core_dims = {4, 4, 3, 3};
  options.max_iterations = 12;
  PTuckerResult result = PTuckerDecompose(data.tensor, options);

  // Table V: clustering the movie factor must align with planted genres
  // far above the 1/3 chance level.
  auto concepts = DiscoverConcepts(result.model, /*mode=*/1, /*k=*/3);
  std::vector<std::int64_t> assignments(60, -1);
  for (const auto& c : concepts) {
    for (std::int64_t member : c.members) {
      assignments[static_cast<std::size_t>(member)] = c.cluster_id;
    }
  }
  const double purity = ClusterPurity(assignments, data.movie_genre);
  EXPECT_GT(purity, 0.55);
}

TEST(EndToEndTest, RelationsExtractedFromFittedCore) {
  MovieLensConfig config;
  config.num_users = 80;
  config.num_movies = 40;
  config.nnz = 4000;
  MovieLensData data = SimulateMovieLens(config);
  PTuckerOptions options;
  options.core_dims = {3, 3, 3, 3};
  options.max_iterations = 8;
  PTuckerResult result = PTuckerDecompose(data.tensor, options);

  auto relations = DiscoverRelations(result.model, 3);
  ASSERT_EQ(relations.size(), 3u);
  for (const auto& relation : relations) {
    EXPECT_NE(relation.strength, 0.0);
    auto hours = TopEntitiesForRelation(result.model, relation, 3, 5);
    EXPECT_EQ(hours.size(), 5u);
  }
}

TEST(EndToEndTest, SerializeFitReload) {
  // Write a tensor to .tns, read it back, decompose, and check the
  // factorization matches the in-memory one (same seed).
  MovieLensConfig config;
  config.num_users = 40;
  config.num_movies = 20;
  config.nnz = 1500;
  MovieLensData data = SimulateMovieLens(config);

  const std::string path =
      (std::filesystem::temp_directory_path() / "e2e_roundtrip.tns").string();
  WriteTns(path, data.tensor);
  SparseTensor loaded = ReadTns(path, data.tensor.dims());
  loaded.BuildModeIndex();
  std::remove(path.c_str());

  PTuckerOptions options;
  options.core_dims = {3, 3, 3, 3};
  options.max_iterations = 5;
  PTuckerResult from_memory = PTuckerDecompose(data.tensor, options);
  PTuckerResult from_disk = PTuckerDecompose(loaded, options);
  EXPECT_NEAR(from_memory.final_error, from_disk.final_error, 1e-6);
}

}  // namespace
}  // namespace ptucker
