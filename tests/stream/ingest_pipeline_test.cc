// The streaming ingest pipeline (stream/ingest_pipeline.h). The
// property layer drives random append/update/delete interleavings
// through every δ-engine and pins the determinism contract: final
// factors are bit-identical across thread counts {1, 4, 13}, across the
// regrouped exact engines (mode-major / adaptive ε = 0 / tiled), and
// across a restart from any flush boundary — the live Ω always equals a
// structural replay of the event prefix. The fault-injection layer
// crashes the pipeline in the window between checkpoint durability and
// publish and proves recovery (last MANIFEST + tail replay) lands on
// factors bit-identical to the uninterrupted run. Hot-swap publication
// into a PredictionService and the strict mutation semantics are pinned
// here too.
#include "stream/ingest_pipeline.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>
#include <omp.h>

#include "core/delta_engine.h"
#include "data/synthetic.h"
#include "serve/snapshot.h"
#include "serve/service.h"
#include "tensor/dense_tensor.h"
#include "tensor/index.h"
#include "util/random.h"

namespace ptucker {
namespace {

class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int threads) : saved_(omp_get_max_threads()) {
    omp_set_num_threads(threads);
  }
  ~ThreadCountGuard() { omp_set_num_threads(saved_); }

 private:
  int saved_;
};

SparseTensor MakeInitial(std::uint64_t seed) {
  Rng rng(seed);
  SparseTensor x = UniformSparseTensor({12, 9, 7}, 120, rng);
  x.BuildModeIndex();
  return x;
}

TuckerFactorization MakeModel(const SparseTensor& x, std::uint64_t seed) {
  Rng rng(seed);
  const std::vector<std::int64_t> ranks = {3, 3, 2};
  TuckerFactorization model;
  for (std::int64_t n = 0; n < x.order(); ++n) {
    Matrix factor(x.dim(n), ranks[static_cast<std::size_t>(n)]);
    factor.FillUniform(rng);
    model.factors.push_back(std::move(factor));
  }
  model.core = DenseTensor(ranks);
  model.core.FillUniform(rng);
  return model;
}

// A random but valid interleaving: updates and deletes target live
// coordinates, appends target unobserved ones; ~35% update, ~20%
// delete, the rest appends (deleted coordinates may be re-appended).
std::vector<StreamEvent> RandomEvents(const SparseTensor& initial,
                                      std::int64_t count,
                                      std::uint64_t seed) {
  Rng rng(seed);
  const std::vector<std::int64_t> dims = initial.dims();
  const std::vector<std::int64_t> strides = ComputeStrides(dims);
  std::vector<std::vector<std::int64_t>> live;
  std::unordered_set<std::int64_t> keys;
  for (std::int64_t e = 0; e < initial.nnz(); ++e) {
    std::vector<std::int64_t> index;
    for (std::int64_t n = 0; n < initial.order(); ++n) {
      index.push_back(initial.index(e, n));
    }
    keys.insert(Linearize(index.data(), strides, initial.order()));
    live.push_back(std::move(index));
  }
  std::vector<StreamEvent> events;
  std::int64_t timestamp = 0;
  for (std::int64_t c = 0; c < count; ++c) {
    StreamEvent event;
    event.timestamp = timestamp;
    timestamp += static_cast<std::int64_t>(rng.UniformInt(5));
    const double kind = rng.Uniform();
    if (kind < 0.35 && !live.empty()) {
      event.op = StreamOp::kUpdate;
      event.index = live[rng.UniformInt(live.size())];
      event.value = rng.Uniform();
    } else if (kind < 0.55 && !live.empty()) {
      event.op = StreamOp::kDelete;
      const std::size_t pos = rng.UniformInt(live.size());
      event.index = live[pos];
      keys.erase(Linearize(event.index.data(), strides, initial.order()));
      live[pos] = std::move(live.back());
      live.pop_back();
    } else {
      event.op = StreamOp::kAppend;
      std::vector<std::int64_t> index(dims.size());
      while (true) {
        for (std::size_t n = 0; n < dims.size(); ++n) {
          index[n] = static_cast<std::int64_t>(
              rng.UniformInt(static_cast<std::uint64_t>(dims[n])));
        }
        const std::int64_t key =
            Linearize(index.data(), strides, initial.order());
        if (keys.insert(key).second) break;
      }
      event.index = index;
      event.value = rng.Uniform();
      live.push_back(std::move(index));
    }
    events.push_back(std::move(event));
  }
  return events;
}

struct RunResult {
  SparseTensor omega;
  TuckerFactorization model;
};

RunResult RunPipeline(const SparseTensor& initial,
                      const TuckerFactorization& model,
                      const std::vector<StreamEvent>& events,
                      DeltaEngineChoice engine, int threads) {
  IngestOptions options;
  options.delta_engine = engine;
  options.tile_width = 4;
  options.num_threads = threads;
  options.flush_every = 8;
  IngestPipeline pipeline(initial, model, options);
  for (const StreamEvent& event : events) pipeline.Apply(event);
  pipeline.Flush();
  RunResult result;
  result.omega = pipeline.tensor();
  result.model.core = DenseTensor(pipeline.model().core);
  result.model.factors = pipeline.model().factors;
  return result;
}

void ExpectSameFactors(const std::vector<Matrix>& a,
                       const std::vector<Matrix>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t n = 0; n < a.size(); ++n) {
    ASSERT_EQ(a[n].rows(), b[n].rows());
    ASSERT_EQ(a[n].cols(), b[n].cols());
    for (std::int64_t i = 0; i < a[n].size(); ++i) {
      ASSERT_EQ(a[n].data()[i], b[n].data()[i])
          << what << ": mode " << n << " flat index " << i;
    }
  }
}

void ExpectNearFactors(const std::vector<Matrix>& a,
                       const std::vector<Matrix>& b, double tolerance,
                       const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t n = 0; n < a.size(); ++n) {
    for (std::int64_t i = 0; i < a[n].size(); ++i) {
      ASSERT_NEAR(a[n].data()[i], b[n].data()[i], tolerance)
          << what << ": mode " << n << " flat index " << i;
    }
  }
}

void ExpectSameTensor(const SparseTensor& a, const SparseTensor& b) {
  ASSERT_EQ(a.dims(), b.dims());
  ASSERT_EQ(a.nnz(), b.nnz());
  for (std::int64_t e = 0; e < a.nnz(); ++e) {
    for (std::int64_t n = 0; n < a.order(); ++n) {
      ASSERT_EQ(a.index(e, n), b.index(e, n)) << "entry " << e;
    }
    ASSERT_EQ(a.value(e), b.value(e)) << "entry " << e;
  }
}

// ---------------------------------------------------------------------------
// Property layer
// ---------------------------------------------------------------------------

TEST(IngestPipelineProperty, DeterministicAcrossThreadCountsAndEngines) {
  const SparseTensor initial = MakeInitial(21);
  const TuckerFactorization model = MakeModel(initial, 22);
  for (const std::uint64_t stream_seed : {901ULL, 902ULL, 903ULL}) {
    const std::vector<StreamEvent> events =
        RandomEvents(initial, 96, stream_seed);
    // Ω evolution is pure structure: every engine and thread count must
    // land on the replayed tensor exactly.
    const SparseTensor replayed = ReplayOmega(
        initial, events, static_cast<std::int64_t>(events.size()));

    RunResult reference;  // mode-major, 1 thread
    for (const DeltaEngineChoice engine :
         {DeltaEngineChoice::kModeMajor, DeltaEngineChoice::kNaive,
          DeltaEngineChoice::kCached, DeltaEngineChoice::kAdaptive,
          DeltaEngineChoice::kTiled}) {
      RunResult per_engine_reference;
      for (const int threads : {1, 4, 13}) {
        ThreadCountGuard ambient(threads);
        RunResult run =
            RunPipeline(initial, model, events, engine, threads);
        ExpectSameTensor(run.omega, replayed);
        if (threads == 1) {
          per_engine_reference = run;
          if (engine == DeltaEngineChoice::kModeMajor) {
            reference = std::move(run);
          }
        } else {
          // Lemma 1 row independence: the trajectory may not depend on
          // the thread count, bit for bit.
          ExpectSameFactors(run.model.factors,
                            per_engine_reference.model.factors,
                            "thread count");
        }
      }
      if (engine == DeltaEngineChoice::kAdaptive ||
          engine == DeltaEngineChoice::kTiled) {
        // The regrouped exact engines consume bit-identical δ in the
        // same entry order as mode-major (delta_engine_test pins the
        // kernel-level guarantee; this pins it through the pipeline).
        ExpectSameFactors(per_engine_reference.model.factors,
                          reference.model.factors, "engine");
      } else if (engine != DeltaEngineChoice::kModeMajor) {
        // Naive sums in entry order and the cached engine maintains its
        // Pres table multiplicatively — same math, different rounding.
        ExpectNearFactors(per_engine_reference.model.factors,
                          reference.model.factors, 1e-7, "engine");
      }
    }
  }
}

TEST(IngestPipelineProperty, RestartFromAnyFlushBoundaryIsBitExact) {
  // A pipeline rebuilt from (replayed Ω prefix, mid-run model) continues
  // exactly like the uninterrupted run — the invariant crash recovery
  // rides on, checked at a flush boundary mid-stream.
  const SparseTensor initial = MakeInitial(31);
  const TuckerFactorization model = MakeModel(initial, 32);
  const std::vector<StreamEvent> events = RandomEvents(initial, 96, 904);
  const std::int64_t cut = 48;  // multiple of flush_every below

  IngestOptions options;
  options.flush_every = 8;
  IngestPipeline full(initial, model, options);
  for (const StreamEvent& event : events) full.Apply(event);
  full.Flush();

  IngestPipeline head(initial, model, options);
  for (std::int64_t e = 0; e < cut; ++e) {
    head.Apply(events[static_cast<std::size_t>(e)]);
  }
  head.Flush();

  TuckerFactorization mid;
  mid.core = DenseTensor(head.model().core);
  mid.factors = head.model().factors;
  IngestOptions resumed_options = options;
  resumed_options.ops_already_applied = cut;
  IngestPipeline resumed(ReplayOmega(initial, events, cut), std::move(mid),
                         resumed_options);
  for (std::size_t e = static_cast<std::size_t>(cut); e < events.size();
       ++e) {
    resumed.Apply(events[e]);
  }
  resumed.Flush();

  EXPECT_EQ(resumed.ops_applied(), full.ops_applied());
  ExpectSameTensor(resumed.tensor(), full.tensor());
  ExpectSameFactors(resumed.model().factors, full.model().factors,
                    "restart");
}

TEST(IngestPipelineTest, StrictMutationSemantics) {
  const SparseTensor initial = MakeInitial(41);
  const TuckerFactorization model = MakeModel(initial, 42);
  IngestOptions options;
  options.flush_every = 100;  // keep everything buffered
  IngestPipeline pipeline(initial, model, options);

  std::vector<std::int64_t> live = {initial.index(0, 0), initial.index(0, 1),
                                    initial.index(0, 2)};
  EXPECT_THROW(pipeline.Append(live, 0.5), std::invalid_argument);
  const std::vector<std::int64_t> out_of_bounds = {12, 0, 0};
  EXPECT_THROW(pipeline.Update(out_of_bounds, 0.5), std::invalid_argument);

  // Validation covers buffered (not yet flushed) state: delete frees the
  // coordinate for re-append within the same batch, and the re-appended
  // key rejects a second append.
  pipeline.Delete(live);
  EXPECT_THROW(pipeline.Update(live, 0.5), std::invalid_argument);
  pipeline.Append(live, 0.25);
  EXPECT_THROW(pipeline.Append(live, 0.5), std::invalid_argument);
  EXPECT_EQ(pipeline.pending(), 2);
  pipeline.Flush();
  EXPECT_EQ(pipeline.pending(), 0);
  EXPECT_EQ(pipeline.ops_applied(), 2);
  EXPECT_EQ(pipeline.tensor().nnz(), initial.nnz());
}

TEST(IngestPipelineTest, CheckpointPublishesHotSwappedSnapshot) {
  const SparseTensor initial = MakeInitial(51);
  const TuckerFactorization model = MakeModel(initial, 52);
  PredictionService service(ModelSnapshot::Create(model));
  const std::shared_ptr<const ModelSnapshot> before = service.snapshot();

  IngestOptions options;
  options.flush_every = 4;
  options.service = &service;  // in-memory publish, nothing durable
  IngestPipeline pipeline(initial, model, options);
  const std::vector<StreamEvent> events = RandomEvents(initial, 8, 905);
  for (const StreamEvent& event : events) pipeline.Apply(event);
  pipeline.Checkpoint();

  const std::shared_ptr<const ModelSnapshot> after = service.snapshot();
  ASSERT_NE(after, before);
  // The served snapshot is the pipeline's live model.
  const std::vector<std::int64_t> query = {0, 0, 0};
  const CoreEntryList list(pipeline.model().core);
  const ModeMajorDeltaEngine engine(list, pipeline.model().factors,
                                    nullptr);
  EXPECT_EQ(service.Predict(query), engine.Reconstruct(query.data()));
}

// ---------------------------------------------------------------------------
// Fault-injection layer
// ---------------------------------------------------------------------------

TEST(IngestPipelineFault, CrashBetweenCheckpointAndPublishRecovers) {
  const SparseTensor initial = MakeInitial(61);
  const TuckerFactorization model = MakeModel(initial, 62);
  const std::vector<StreamEvent> events = RandomEvents(initial, 96, 906);
  const std::string base =
      (std::filesystem::temp_directory_path() / "ingest_fault_test")
          .string();
  std::filesystem::remove_all(base);

  IngestOptions options;
  options.flush_every = 8;      // divides checkpoint_every: boundaries
  options.checkpoint_every = 32;  // land exactly on flushes

  // Uninterrupted run A.
  IngestOptions a_options = options;
  a_options.checkpoint_dir = base + "/a";
  IngestPipeline a(initial, model, a_options);
  for (const StreamEvent& event : events) a.Apply(event);
  a.Flush();
  EXPECT_EQ(a.checkpoints_written(), 3);

  // Run B crashes in the durability->publish window of checkpoint 2.
  IngestOptions b_options = options;
  b_options.checkpoint_dir = base + "/b";
  int fired = 0;
  b_options.fault_hook = [&fired] {
    if (++fired == 2) throw std::runtime_error("injected crash");
  };
  IngestPipeline b(initial, model, b_options);
  bool crashed = false;
  std::int64_t applied_before_crash = 0;
  try {
    for (const StreamEvent& event : events) {
      b.Apply(event);
      ++applied_before_crash;
    }
    b.Flush();
  } catch (const std::runtime_error&) {
    crashed = true;
  }
  ASSERT_TRUE(crashed);
  // The throw escaped from Apply of event #64 — the one whose flush
  // triggered checkpoint 2 — after the flush folded the batch in.
  EXPECT_EQ(applied_before_crash, 63);
  EXPECT_EQ(b.ops_applied(), 64);

  // Recovery: the checkpoint itself was durable before the crash, so
  // the MANIFEST names seq 2 at 64 ops. Restart from it and replay the
  // tail.
  CheckpointInfo info;
  ASSERT_TRUE(LatestCheckpoint(base + "/b", &info));
  EXPECT_EQ(info.seq, 2);
  EXPECT_EQ(info.ops_applied, 64);

  IngestOptions recovered_options = options;
  recovered_options.checkpoint_dir = base + "/b";
  recovered_options.ops_already_applied = info.ops_applied;
  IngestPipeline recovered(ReplayOmega(initial, events, info.ops_applied),
                           LoadSnapshot(info.path), recovered_options);
  for (std::size_t e = static_cast<std::size_t>(info.ops_applied);
       e < events.size(); ++e) {
    recovered.Apply(events[e]);
  }
  recovered.Flush();

  // Bit-identical to the run that never crashed, and the checkpoint
  // sequence continued (seq 3 written once, by the recovered run).
  ExpectSameTensor(recovered.tensor(), a.tensor());
  ExpectSameFactors(recovered.model().factors, a.model().factors,
                    "recovery");
  CheckpointInfo final_info;
  ASSERT_TRUE(LatestCheckpoint(base + "/b", &final_info));
  EXPECT_EQ(final_info.seq, 3);
  EXPECT_EQ(final_info.ops_applied, 96);

  std::filesystem::remove_all(base);
}

TEST(IngestPipelineTest, LatestCheckpointHandlesMissingAndMalformed) {
  const std::string base =
      (std::filesystem::temp_directory_path() / "ingest_manifest_test")
          .string();
  std::filesystem::remove_all(base);
  CheckpointInfo info;
  EXPECT_FALSE(LatestCheckpoint(base, &info));  // no directory

  std::filesystem::create_directories(base);
  EXPECT_FALSE(LatestCheckpoint(base, &info));  // no MANIFEST

  {
    std::ofstream out(base + "/MANIFEST");
    out << "not a manifest\n";
  }
  EXPECT_THROW(LatestCheckpoint(base, &info), std::runtime_error);
  std::filesystem::remove_all(base);
}

}  // namespace
}  // namespace ptucker
