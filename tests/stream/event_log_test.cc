// The replay-log codec (stream/event_log.h): byte-exact round trips
// (including doubles printed at max_digits10), the documented header /
// coordinate / op grammar, and line-numbered rejection of every
// malformed shape — the same loud-parser discipline io.cc's .tns reader
// established.
#include "stream/event_log.h"

#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ptucker {
namespace {

std::vector<StreamEvent> SampleEvents() {
  std::vector<StreamEvent> events;
  StreamEvent append;
  append.timestamp = 5;
  append.op = StreamOp::kAppend;
  append.index = {0, 2, 1};
  append.value = 0.1234567890123456789;  // exercises max_digits10
  events.push_back(append);
  StreamEvent update;
  update.timestamp = 5;  // equal timestamps are legal (non-decreasing)
  update.op = StreamOp::kUpdate;
  update.index = {3, 0, 4};
  update.value = -1.5e-17;
  events.push_back(update);
  StreamEvent del;
  del.timestamp = 9;
  del.op = StreamOp::kDelete;
  del.index = {0, 2, 1};
  events.push_back(del);
  return events;
}

TEST(EventLogTest, RoundTripIsExact) {
  const std::vector<StreamEvent> events = SampleEvents();
  const std::string text = FormatEventLog(events, 3);
  std::int64_t order = 0;
  const std::vector<StreamEvent> parsed = ParseEventLog(text, &order);
  EXPECT_EQ(order, 3);
  ASSERT_EQ(parsed.size(), events.size());
  for (std::size_t e = 0; e < events.size(); ++e) {
    EXPECT_EQ(parsed[e].timestamp, events[e].timestamp);
    EXPECT_EQ(parsed[e].op, events[e].op);
    EXPECT_EQ(parsed[e].index, events[e].index);
    if (parsed[e].op != StreamOp::kDelete) {
      EXPECT_EQ(parsed[e].value, events[e].value);  // bit-exact
    }
  }
  // Formatting the parse reproduces the text byte for byte.
  EXPECT_EQ(FormatEventLog(parsed, order), text);
}

TEST(EventLogTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "event_log_test.log")
          .string();
  const std::vector<StreamEvent> events = SampleEvents();
  WriteEventLog(path, events, 3);
  std::int64_t order = 0;
  const std::vector<StreamEvent> parsed = ReadEventLog(path, &order);
  EXPECT_EQ(order, 3);
  EXPECT_EQ(FormatEventLog(parsed, order), FormatEventLog(events, 3));
  std::filesystem::remove(path);
  EXPECT_THROW(ReadEventLog(path, nullptr), std::runtime_error);
}

TEST(EventLogTest, EmptyLogRoundTrips) {
  std::int64_t order = 0;
  EXPECT_TRUE(ParseEventLog(FormatEventLog({}, 4), &order).empty());
  EXPECT_EQ(order, 4);
}

// Every malformed shape dies loudly, naming the line.
TEST(EventLogTest, RejectsMalformedInput) {
  const auto expect_throw_mentioning = [](const std::string& text,
                                          const std::string& needle) {
    try {
      ParseEventLog(text, nullptr);
      FAIL() << "accepted: " << text;
    } catch (const std::runtime_error& error) {
      EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
          << "message '" << error.what() << "' lacks '" << needle << "'";
    }
  };
  expect_throw_mentioning("", "header");
  expect_throw_mentioning("ptucker-stream v2 3\n", "header");
  expect_throw_mentioning("ptucker-stream v1 0\n", "header");
  expect_throw_mentioning("ptucker-stream v1 3 extra\n", "header");
  // unknown op
  expect_throw_mentioning("ptucker-stream v1 3\n1 x 1 2 3 0.5\n", "op");
  // too few coordinates
  expect_throw_mentioning("ptucker-stream v1 3\n1 a 1 2 0.5\n", "line 2");
  // 0-based (non-positive) coordinate
  expect_throw_mentioning("ptucker-stream v1 3\n1 a 0 2 3 0.5\n", "line 2");
  // missing value on an append
  expect_throw_mentioning("ptucker-stream v1 3\n1 a 1 2 3\n", "line 2");
  // trailing tokens after a delete
  expect_throw_mentioning("ptucker-stream v1 3\n1 d 1 2 3 0.5\n", "line 2");
  // decreasing timestamps
  expect_throw_mentioning(
      "ptucker-stream v1 3\n5 a 1 2 3 0.5\n4 a 1 2 4 0.5\n", "line 3");
}

}  // namespace
}  // namespace ptucker
