#include "baselines/tucker_csf.h"

#include <cmath>
#include <gtest/gtest.h>

#include "baselines/hooi.h"
#include "data/synthetic.h"
#include "linalg/qr.h"
#include "util/random.h"

namespace ptucker {
namespace {

HooiOptions SmallOptions() {
  HooiOptions options;
  options.core_dims = {3, 3, 3};
  options.max_iterations = 8;
  return options;
}

TEST(TuckerCsfValidationTest, RejectsBadInputs) {
  SparseTensor empty({4, 4});
  HooiOptions options;
  options.core_dims = {2, 2};
  EXPECT_THROW(TuckerCsfDecompose(empty, options), std::invalid_argument);
}

TEST(TuckerCsfTest, IdenticalToHooiSameSeed) {
  // CSF only changes how the TTMc is computed; with the same seed the
  // whole trajectory must match plain HOOI to numerical precision.
  Rng rng(1);
  SparseTensor x = UniformSparseTensor({12, 10, 8}, 250, rng);
  HooiOptions options = SmallOptions();
  BaselineResult hooi = HooiDecompose(x, options);
  BaselineResult csf = TuckerCsfDecompose(x, options);
  EXPECT_NEAR(hooi.final_error, csf.final_error,
              1e-8 * (1.0 + hooi.final_error));
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_TRUE(AllClose(hooi.model.factors[k], csf.model.factors[k], 1e-6));
  }
}

TEST(TuckerCsfTest, FactorsOrthonormal) {
  Rng rng(2);
  SparseTensor x = UniformSparseTensor({9, 9, 9}, 150, rng);
  BaselineResult result = TuckerCsfDecompose(x, SmallOptions());
  for (const auto& factor : result.model.factors) {
    EXPECT_LT(OrthonormalityDefect(factor), 1e-8);
  }
}

TEST(TuckerCsfTest, HandlesOrderFour) {
  Rng rng(3);
  SparseTensor x = UniformSparseTensor({6, 6, 6, 6}, 120, rng);
  HooiOptions options;
  options.core_dims = {2, 2, 2, 2};
  options.max_iterations = 4;
  BaselineResult result = TuckerCsfDecompose(x, options);
  EXPECT_TRUE(std::isfinite(result.final_error));
}

TEST(TuckerCsfTest, TracksYMaterialization) {
  Rng rng(4);
  SparseTensor x = UniformSparseTensor({100, 20, 20}, 200, rng);
  MemoryTracker tracker;
  HooiOptions options = SmallOptions();
  options.max_iterations = 1;
  options.tracker = &tracker;
  TuckerCsfDecompose(x, options);
  EXPECT_GE(tracker.peak_bytes(), 100 * 9 * 8);  // Y(0)
  EXPECT_EQ(tracker.current_bytes(), 0);
}

}  // namespace
}  // namespace ptucker
