#include "baselines/shot.h"

#include <cmath>
#include <gtest/gtest.h>

#include "baselines/hooi.h"
#include "data/lowrank.h"
#include "data/synthetic.h"
#include "linalg/qr.h"
#include "tensor/nmode.h"
#include "util/random.h"

namespace ptucker {
namespace {

ShotOptions SmallOptions() {
  ShotOptions options;
  options.core_dims = {3, 3, 3};
  options.max_iterations = 8;
  return options;
}

TEST(ShotValidationTest, RejectsBadInputs) {
  SparseTensor no_index({4, 4});
  no_index.AddEntry({0, 0}, 1.0);
  ShotOptions options;
  options.core_dims = {2, 2};
  EXPECT_THROW(ShotDecompose(no_index, options), std::invalid_argument);
}

TEST(ShotTest, FactorsOrthonormal) {
  Rng rng(1);
  SparseTensor x = UniformSparseTensor({10, 9, 8}, 150, rng);
  BaselineResult result = ShotDecompose(x, SmallOptions());
  for (const auto& factor : result.model.factors) {
    EXPECT_LT(OrthonormalityDefect(factor), 1e-8);
  }
}

TEST(ShotTest, MatchesHooiFixedPointOnFullyObservedData) {
  // S-HOT computes the same decomposition as HOOI (both fit the
  // zero-filled tensor); on a fully observed exact-rank tensor both must
  // reach ~zero error.
  Rng rng(2);
  PlantedTucker model = RandomTuckerModel({6, 6, 5}, {2, 2, 2}, rng);
  DenseTensor dense = ReconstructDense(model.core, model.factors);
  SparseTensor x(dense.dims());
  std::vector<std::int64_t> index(3);
  for (std::int64_t linear = 0; linear < dense.size(); ++linear) {
    dense.IndexOf(linear, index.data());
    x.AddEntry(index, dense[linear]);
  }
  x.BuildModeIndex();
  ShotOptions options;
  options.core_dims = {2, 2, 2};
  options.max_iterations = 20;
  options.subspace_iterations = 5;
  BaselineResult result = ShotDecompose(x, options);
  EXPECT_LT(result.final_error, 1e-5 * dense.FrobeniusNorm() + 1e-8);
}

TEST(ShotTest, CloseToHooiErrorOnSparseData) {
  Rng rng(3);
  SparseTensor x = UniformSparseTensor({12, 10, 8}, 250, rng);
  HooiOptions hooi_options;
  hooi_options.core_dims = {3, 3, 3};
  hooi_options.max_iterations = 10;
  BaselineResult hooi = HooiDecompose(x, hooi_options);
  ShotOptions shot_options = SmallOptions();
  shot_options.max_iterations = 10;
  BaselineResult shot = ShotDecompose(x, shot_options);
  // Same objective, same fixed point family: errors within a few percent.
  EXPECT_NEAR(shot.final_error, hooi.final_error,
              0.05 * hooi.final_error + 1e-9);
}

TEST(ShotTest, AvoidsMaterializingY) {
  // Intermediate memory must stay far below the In x Π Jk matrix HOOI
  // builds — the whole point of S-HOT.
  Rng rng(4);
  SparseTensor x = UniformSparseTensor({4000, 50, 50}, 500, rng);
  MemoryTracker shot_tracker;
  ShotOptions options;
  options.core_dims = {4, 4, 4};
  options.max_iterations = 1;
  options.tracker = &shot_tracker;
  ShotDecompose(x, options);
  const std::int64_t hooi_y_bytes = 4000 * 16 * 8;
  EXPECT_LT(shot_tracker.peak_bytes(), hooi_y_bytes);
}

TEST(ShotTest, HigherOrderTensor) {
  Rng rng(5);
  SparseTensor x = UniformCubicTensor(6, 6, 100, rng);
  ShotOptions options;
  options.core_dims.assign(6, 2);
  options.max_iterations = 3;
  BaselineResult result = ShotDecompose(x, options);
  EXPECT_TRUE(std::isfinite(result.final_error));
  for (const auto& factor : result.model.factors) {
    EXPECT_LT(OrthonormalityDefect(factor), 1e-8);
  }
}

}  // namespace
}  // namespace ptucker
