#include "baselines/cp_als.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/reconstruction.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "util/random.h"

namespace ptucker {
namespace {

// Samples observed entries from a planted rank-R CP model (no clamping,
// so exact recovery is possible).
SparseTensor SampleCpModel(const std::vector<std::int64_t>& dims,
                           std::int64_t rank, std::int64_t nnz, double noise,
                           Rng& rng, std::vector<Matrix>* factors_out) {
  std::vector<Matrix> factors;
  for (std::int64_t d : dims) {
    Matrix factor(d, rank);
    factor.FillUniform(rng);
    factors.push_back(std::move(factor));
  }
  SparseTensor x(dims);
  std::vector<std::int64_t> index(dims.size());
  for (std::int64_t e = 0; e < nnz; ++e) {
    for (std::size_t k = 0; k < dims.size(); ++k) {
      index[k] = static_cast<std::int64_t>(
          rng.UniformInt(static_cast<std::uint64_t>(dims[k])));
    }
    double value = 0.0;
    for (std::int64_t r = 0; r < rank; ++r) {
      double product = 1.0;
      for (std::size_t k = 0; k < dims.size(); ++k) {
        product *= factors[k](index[k], r);
      }
      value += product;
    }
    x.AddEntry(index, value + rng.Normal(0.0, noise));
  }
  x.BuildModeIndex();
  if (factors_out != nullptr) *factors_out = std::move(factors);
  return x;
}

TEST(CpAlsValidationTest, RejectsBadInputs) {
  SparseTensor empty({4, 4});
  empty.BuildModeIndex();
  CpOptions options;
  options.rank = 2;
  EXPECT_THROW(CpAlsDecompose(empty, options), std::invalid_argument);

  SparseTensor no_index({4, 4});
  no_index.AddEntry({0, 0}, 1.0);
  EXPECT_THROW(CpAlsDecompose(no_index, options), std::invalid_argument);

  Rng rng(1);
  SparseTensor x = UniformSparseTensor({4, 4}, 8, rng);
  options.rank = 0;
  EXPECT_THROW(CpAlsDecompose(x, options), std::invalid_argument);
}

TEST(CpAlsTest, ErrorMonotoneNonIncreasing) {
  Rng rng(2);
  SparseTensor x = UniformSparseTensor({15, 12, 10}, 400, rng);
  CpOptions options;
  options.rank = 3;
  options.max_iterations = 8;
  CpResult result = CpAlsDecompose(x, options);
  for (std::size_t i = 1; i < result.iterations.size(); ++i) {
    EXPECT_LE(result.iterations[i].error,
              result.iterations[i - 1].error + 1e-9);
  }
}

TEST(CpAlsTest, RecoversPlantedCpModel) {
  Rng rng(3);
  SparseTensor x = SampleCpModel({20, 18, 16}, 3, 4000, 0.0, rng, nullptr);
  CpOptions options;
  options.rank = 3;
  // ALS on CP converges slowly near the solution ("swamps"), so allow
  // plenty of iterations and assert recovery to 1% of the data norm.
  options.max_iterations = 150;
  options.lambda = 1e-8;
  options.tolerance = 1e-10;
  CpResult result = CpAlsDecompose(x, options);
  EXPECT_LT(result.final_error, 1e-2 * x.FrobeniusNorm());
}

TEST(CpAlsTest, PredictMatchesToTuckerModel) {
  // The superdiagonal-core conversion must reproduce CP predictions
  // exactly (CP ⊂ Tucker, paper §II).
  Rng rng(4);
  SparseTensor x = UniformSparseTensor({10, 9, 8}, 200, rng);
  CpOptions options;
  options.rank = 3;
  options.max_iterations = 5;
  CpResult result = CpAlsDecompose(x, options);
  TuckerFactorization tucker = result.ToTucker();
  for (std::int64_t e = 0; e < 20; ++e) {
    EXPECT_NEAR(result.Predict(x.index(e)), tucker.Predict(x.index(e)),
                1e-10);
  }
  // And the error metrics agree through the shared tooling.
  EXPECT_NEAR(result.final_error,
              ReconstructionError(x, tucker.core, tucker.factors), 1e-8);
}

TEST(CpAlsTest, PredictsMissingEntriesOnCpData) {
  Rng rng(5);
  SparseTensor all = SampleCpModel({15, 15, 15}, 2, 2000, 0.01, rng, nullptr);
  auto split = SplitObservedEntries(all, 0.1, rng);
  CpOptions options;
  options.rank = 2;
  options.max_iterations = 25;
  CpResult result = CpAlsDecompose(split.train, options);
  TuckerFactorization model = result.ToTucker();
  const double rmse = TestRmse(split.test, model.core, model.factors);
  double zero_sq = 0.0;
  for (std::int64_t e = 0; e < split.test.nnz(); ++e) {
    zero_sq += split.test.value(e) * split.test.value(e);
  }
  const double zero_rmse =
      std::sqrt(zero_sq / static_cast<double>(split.test.nnz()));
  EXPECT_LT(rmse, 0.5 * zero_rmse);
}

TEST(CpAlsTest, EmptySlicesZeroed) {
  SparseTensor x({5, 4});
  x.AddEntry({1, 1}, 1.0);
  x.AddEntry({2, 3}, 2.0);
  x.BuildModeIndex();
  CpOptions options;
  options.rank = 2;
  options.max_iterations = 3;
  CpResult result = CpAlsDecompose(x, options);
  for (std::int64_t r = 0; r < 2; ++r) {
    EXPECT_EQ(result.factors[0](0, r), 0.0);  // row 0 unobserved
    EXPECT_EQ(result.factors[0](4, r), 0.0);  // row 4 unobserved
  }
}

TEST(CpAlsTest, TracksScratchMemory) {
  Rng rng(6);
  SparseTensor x = UniformSparseTensor({10, 10, 10}, 200, rng);
  MemoryTracker tracker;
  CpOptions options;
  options.rank = 4;
  options.max_iterations = 2;
  options.tracker = &tracker;
  CpAlsDecompose(x, options);
  EXPECT_GT(tracker.peak_bytes(), 0);
  EXPECT_EQ(tracker.current_bytes(), 0);
}

}  // namespace
}  // namespace ptucker
