#include "baselines/tucker_wopt.h"

#include <cmath>
#include <gtest/gtest.h>

#include "core/reconstruction.h"
#include "data/lowrank.h"
#include "data/synthetic.h"
#include "util/random.h"

namespace ptucker {
namespace {

WoptOptions SmallOptions() {
  WoptOptions options;
  options.core_dims = {2, 2, 2};
  options.max_iterations = 15;
  return options;
}

TEST(WoptValidationTest, RejectsBadInputs) {
  SparseTensor empty({4, 4});
  WoptOptions options;
  options.core_dims = {2, 2};
  EXPECT_THROW(TuckerWoptDecompose(empty, options), std::invalid_argument);

  Rng rng(1);
  SparseTensor x = UniformSparseTensor({4, 4}, 8, rng);
  options.core_dims = {5, 2};
  EXPECT_THROW(TuckerWoptDecompose(x, options), std::invalid_argument);
}

TEST(WoptTest, ErrorDecreasesMonotonically) {
  Rng rng(2);
  SparseTensor x = UniformSparseTensor({8, 7, 6}, 100, rng);
  BaselineResult result = TuckerWoptDecompose(x, SmallOptions());
  ASSERT_GE(result.iterations.size(), 2u);
  for (std::size_t i = 1; i < result.iterations.size(); ++i) {
    EXPECT_LE(result.iterations[i].error,
              result.iterations[i - 1].error + 1e-9);
  }
}

TEST(WoptTest, FitsObservedEntriesOfLowRankData) {
  // wOpt optimizes over observed entries only, so — unlike HOOI — it must
  // reach a small observed-entry error on sparse low-rank data.
  Rng rng(3);
  PlantedTucker model = RandomTuckerModel({10, 10, 10}, {2, 2, 2}, rng);
  SparseTensor x = SampleFromModel(model, 400, 0.01, rng);
  WoptOptions options = SmallOptions();
  options.max_iterations = 40;
  BaselineResult result = TuckerWoptDecompose(x, options);
  EXPECT_LT(result.final_error, 0.25 * x.FrobeniusNorm());
}

TEST(WoptTest, PredictsMissingEntriesBetterThanZero) {
  Rng rng(4);
  PlantedTucker model = RandomTuckerModel({10, 10, 10}, {2, 2, 2}, rng);
  SparseTensor all = SampleFromModel(model, 600, 0.01, rng);
  // Hold out 100 entries.
  SparseTensor train(all.dims()), test(all.dims());
  for (std::int64_t e = 0; e < all.nnz(); ++e) {
    (e < 500 ? train : test).AddEntry(all.index(e), all.value(e));
  }
  train.BuildModeIndex();
  WoptOptions options = SmallOptions();
  options.max_iterations = 40;
  BaselineResult result = TuckerWoptDecompose(train, options);
  const double rmse = TestRmse(test, result.model.core, result.model.factors);
  // Zero prediction RMSE = sqrt(mean(x²)).
  double zero_sq = 0.0;
  for (std::int64_t e = 0; e < test.nnz(); ++e) {
    zero_sq += test.value(e) * test.value(e);
  }
  const double zero_rmse =
      std::sqrt(zero_sq / static_cast<double>(test.nnz()));
  EXPECT_LT(rmse, zero_rmse);
}

TEST(WoptTest, DenseAllocationHitsOomBudget) {
  // The defining failure mode: dense I^N working set (Table III).
  Rng rng(5);
  SparseTensor x = UniformSparseTensor({300, 300, 300}, 200, rng);
  MemoryTracker tracker(1024 * 1024);  // 1 MB << 300³ doubles
  WoptOptions options = SmallOptions();
  options.tracker = &tracker;
  EXPECT_THROW(TuckerWoptDecompose(x, options), OutOfMemoryBudget);
}

TEST(WoptTest, SmallTensorFitsInBudget) {
  Rng rng(6);
  SparseTensor x = UniformSparseTensor({10, 10, 10}, 100, rng);
  MemoryTracker tracker(64 * 1024 * 1024);
  WoptOptions options = SmallOptions();
  options.max_iterations = 3;
  options.tracker = &tracker;
  EXPECT_NO_THROW(TuckerWoptDecompose(x, options));
  EXPECT_EQ(tracker.current_bytes(), 0);
}

}  // namespace
}  // namespace ptucker
