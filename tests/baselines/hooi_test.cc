#include "baselines/hooi.h"

#include <gtest/gtest.h>

#include "core/reconstruction.h"
#include "data/lowrank.h"
#include "data/synthetic.h"
#include "linalg/qr.h"
#include "tensor/index.h"
#include "tensor/nmode.h"
#include "util/random.h"

namespace ptucker {
namespace {

HooiOptions SmallOptions() {
  HooiOptions options;
  options.core_dims = {3, 3, 3};
  options.max_iterations = 8;
  return options;
}

TEST(HooiValidationTest, RejectsBadInputs) {
  SparseTensor empty({4, 4});
  HooiOptions options;
  options.core_dims = {2, 2};
  EXPECT_THROW(HooiDecompose(empty, options), std::invalid_argument);

  Rng rng(1);
  SparseTensor x = UniformSparseTensor({4, 4}, 8, rng);
  options.core_dims = {2, 5};  // 5 > dim 4
  EXPECT_THROW(HooiDecompose(x, options), std::invalid_argument);
  options.core_dims = {2};
  EXPECT_THROW(HooiDecompose(x, options), std::invalid_argument);
}

TEST(HooiTest, FactorsOrthonormal) {
  Rng rng(2);
  SparseTensor x = UniformSparseTensor({10, 9, 8}, 200, rng);
  BaselineResult result = HooiDecompose(x, SmallOptions());
  for (const auto& factor : result.model.factors) {
    EXPECT_LT(OrthonormalityDefect(factor), 1e-8);
  }
}

TEST(HooiTest, ExactRecoveryOfFullyObservedLowRankTensor) {
  // A fully observed tensor with exact multilinear rank (2,2,2) must be
  // reconstructed to machine precision: HOOI's home turf.
  Rng rng(3);
  PlantedTucker model = RandomTuckerModel({7, 6, 5}, {2, 2, 2}, rng);
  DenseTensor dense = ReconstructDense(model.core, model.factors);
  SparseTensor x(dense.dims());
  std::vector<std::int64_t> index(3);
  for (std::int64_t linear = 0; linear < dense.size(); ++linear) {
    dense.IndexOf(linear, index.data());
    x.AddEntry(index, dense[linear]);
  }
  HooiOptions options;
  options.core_dims = {2, 2, 2};
  options.max_iterations = 15;
  BaselineResult result = HooiDecompose(x, options);
  EXPECT_LT(result.final_error, 1e-6 * dense.FrobeniusNorm() + 1e-9);
}

TEST(HooiTest, ZeroImputationHurtsOnSparseData) {
  // On sparse partially observed data HOOI drags predictions toward zero;
  // its observed-entry error stays near the data norm.
  Rng rng(4);
  PlantedTucker model = RandomTuckerModel({15, 15, 15}, {2, 2, 2}, rng);
  SparseTensor x = SampleFromModel(model, 300, 0.01, rng);  // ~9% dense
  HooiOptions options;
  options.core_dims = {2, 2, 2};
  options.max_iterations = 10;
  BaselineResult result = HooiDecompose(x, options);
  EXPECT_GT(result.final_error, 0.3 * x.FrobeniusNorm());
}

TEST(HooiTest, TrackerSeesIntermediateDataExplosion) {
  Rng rng(5);
  SparseTensor x = UniformSparseTensor({50, 40, 30}, 100, rng);
  MemoryTracker tracker;
  HooiOptions options = SmallOptions();
  options.max_iterations = 1;
  options.tracker = &tracker;
  HooiDecompose(x, options);
  // Y(0) alone is 50 x 9 doubles.
  EXPECT_GE(tracker.peak_bytes(), 50 * 9 * 8);
}

TEST(HooiTest, OomOnBudget) {
  Rng rng(6);
  SparseTensor x = UniformSparseTensor({2000, 2000, 2000}, 100, rng);
  MemoryTracker tracker(16 * 1024);
  HooiOptions options = SmallOptions();
  options.tracker = &tracker;
  EXPECT_THROW(HooiDecompose(x, options), OutOfMemoryBudget);
}

TEST(HooiTest, IterationStatsRecorded) {
  Rng rng(7);
  SparseTensor x = UniformSparseTensor({8, 8, 8}, 100, rng);
  BaselineResult result = HooiDecompose(x, SmallOptions());
  ASSERT_FALSE(result.iterations.empty());
  EXPECT_GT(result.SecondsPerIteration(), 0.0);
  EXPECT_EQ(result.iterations.front().iteration, 1);
}

}  // namespace
}  // namespace ptucker
