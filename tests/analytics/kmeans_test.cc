#include "analytics/kmeans.h"

#include <set>

#include <gtest/gtest.h>

#include "util/random.h"

namespace ptucker {
namespace {

// Three well-separated Gaussian blobs in 2D.
Matrix BlobData(std::int64_t per_cluster, std::vector<std::int64_t>* labels,
                std::uint64_t seed) {
  Rng rng(seed);
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  Matrix data(3 * per_cluster, 2);
  labels->clear();
  for (int c = 0; c < 3; ++c) {
    for (std::int64_t i = 0; i < per_cluster; ++i) {
      const std::int64_t row = c * per_cluster + i;
      data(row, 0) = centers[c][0] + rng.Normal(0.0, 0.5);
      data(row, 1) = centers[c][1] + rng.Normal(0.0, 0.5);
      labels->push_back(c);
    }
  }
  return data;
}

TEST(KMeansTest, RecoversSeparatedBlobs) {
  std::vector<std::int64_t> labels;
  Matrix data = BlobData(30, &labels, 1);
  KMeansOptions options;
  options.k = 3;
  KMeansResult result = KMeansRows(data, options);
  EXPECT_GE(ClusterPurity(result.assignments, labels), 0.99);
}

TEST(KMeansTest, AssignmentsInRange) {
  std::vector<std::int64_t> labels;
  Matrix data = BlobData(10, &labels, 2);
  KMeansOptions options;
  options.k = 3;
  KMeansResult result = KMeansRows(data, options);
  ASSERT_EQ(result.assignments.size(), 30u);
  for (std::int64_t a : result.assignments) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 3);
  }
}

TEST(KMeansTest, SingleCluster) {
  std::vector<std::int64_t> labels;
  Matrix data = BlobData(10, &labels, 3);
  KMeansOptions options;
  options.k = 1;
  KMeansResult result = KMeansRows(data, options);
  for (std::int64_t a : result.assignments) EXPECT_EQ(a, 0);
}

TEST(KMeansTest, KEqualsNGivesZeroInertia) {
  std::vector<std::int64_t> labels;
  Matrix data = BlobData(2, &labels, 4);  // 6 points
  KMeansOptions options;
  options.k = 6;
  KMeansResult result = KMeansRows(data, options);
  EXPECT_NEAR(result.inertia, 0.0, 1e-9);
  // All six points in distinct clusters.
  std::set<std::int64_t> used(result.assignments.begin(),
                              result.assignments.end());
  EXPECT_EQ(used.size(), 6u);
}

TEST(KMeansTest, InertiaNotWorseThanRandomAssignment) {
  std::vector<std::int64_t> labels;
  Matrix data = BlobData(20, &labels, 5);
  KMeansOptions options;
  options.k = 3;
  KMeansResult result = KMeansRows(data, options);
  // Within-cluster variance with recovered blobs ~ 2·0.25·n; total
  // variance is much larger.
  double total_mean[2] = {0, 0};
  for (std::int64_t i = 0; i < data.rows(); ++i) {
    total_mean[0] += data(i, 0);
    total_mean[1] += data(i, 1);
  }
  total_mean[0] /= static_cast<double>(data.rows());
  total_mean[1] /= static_cast<double>(data.rows());
  double total_ss = 0.0;
  for (std::int64_t i = 0; i < data.rows(); ++i) {
    const double dx = data(i, 0) - total_mean[0];
    const double dy = data(i, 1) - total_mean[1];
    total_ss += dx * dx + dy * dy;
  }
  EXPECT_LT(result.inertia, total_ss / 4.0);
}

TEST(KMeansTest, DeterministicForSeed) {
  std::vector<std::int64_t> labels;
  Matrix data = BlobData(15, &labels, 6);
  KMeansOptions options;
  options.k = 3;
  options.seed = 42;
  KMeansResult a = KMeansRows(data, options);
  KMeansResult b = KMeansRows(data, options);
  EXPECT_EQ(a.assignments, b.assignments);
}

TEST(ClusterPurityTest, PerfectAndChanceBounds) {
  EXPECT_DOUBLE_EQ(ClusterPurity({0, 0, 1, 1}, {5, 5, 7, 7}), 1.0);
  // One mixed cluster: majority 2 of 3 plus a pure singleton = 3/4.
  EXPECT_DOUBLE_EQ(ClusterPurity({0, 0, 0, 1}, {5, 5, 7, 7}), 0.75);
  EXPECT_DOUBLE_EQ(ClusterPurity({}, {}), 1.0);
}

}  // namespace
}  // namespace ptucker
