#include "analytics/discovery.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "util/random.h"

namespace ptucker {
namespace {

// A hand-built model: 6 entities in mode 0 whose factor rows form two
// groups, and a core with one dominant entry.
TuckerFactorization MakeModel() {
  TuckerFactorization model;
  Matrix a0(6, 2);
  for (int i = 0; i < 3; ++i) {
    a0(i, 0) = 1.0 + 0.01 * i;
    a0(i, 1) = 0.0;
  }
  for (int i = 3; i < 6; ++i) {
    a0(i, 0) = 0.0;
    a0(i, 1) = 1.0 + 0.01 * i;
  }
  Matrix a1(4, 2);
  for (int i = 0; i < 4; ++i) a1(i, i % 2) = static_cast<double>(i + 1);
  model.factors = {a0, a1};
  model.core = DenseTensor({2, 2});
  model.core[0] = 0.1;   // (0,0)
  model.core[1] = -5.0;  // (1,0)  <- dominant
  model.core[2] = 0.2;   // (0,1)
  model.core[3] = 1.0;   // (1,1)
  return model;
}

TEST(DiscoverConceptsTest, SeparatesPlantedGroups) {
  TuckerFactorization model = MakeModel();
  auto concepts = DiscoverConcepts(model, 0, 2);
  ASSERT_EQ(concepts.size(), 2u);
  std::set<std::int64_t> cluster_a(concepts[0].members.begin(),
                                   concepts[0].members.end());
  std::set<std::int64_t> cluster_b(concepts[1].members.begin(),
                                   concepts[1].members.end());
  const std::set<std::int64_t> group1 = {0, 1, 2};
  const std::set<std::int64_t> group2 = {3, 4, 5};
  EXPECT_TRUE((cluster_a == group1 && cluster_b == group2) ||
              (cluster_a == group2 && cluster_b == group1));
}

TEST(DiscoverConceptsTest, MembersCoverAllRows) {
  TuckerFactorization model = MakeModel();
  auto concepts = DiscoverConcepts(model, 0, 3);
  std::set<std::int64_t> all;
  for (const auto& c : concepts) {
    all.insert(c.members.begin(), c.members.end());
  }
  EXPECT_EQ(all.size(), 6u);
}

TEST(DiscoverRelationsTest, OrderedByMagnitude) {
  TuckerFactorization model = MakeModel();
  auto relations = DiscoverRelations(model, 4);
  ASSERT_EQ(relations.size(), 4u);
  EXPECT_EQ(relations[0].strength, -5.0);
  EXPECT_EQ(relations[0].core_index, (std::vector<std::int64_t>{1, 0}));
  for (std::size_t i = 1; i < relations.size(); ++i) {
    EXPECT_GE(std::fabs(relations[i - 1].strength),
              std::fabs(relations[i].strength));
  }
}

TEST(DiscoverRelationsTest, TopKClamped) {
  TuckerFactorization model = MakeModel();
  auto relations = DiscoverRelations(model, 100);
  EXPECT_EQ(relations.size(), 4u);  // |G| = 4
}

TEST(TopEntitiesForRelationTest, ReturnsStrongestCoefficients) {
  TuckerFactorization model = MakeModel();
  auto relations = DiscoverRelations(model, 1);
  ASSERT_EQ(relations.size(), 1u);
  // Relation column for mode 1 is j=0; A1 column 0 has values (1,0,3,0):
  // strongest rows are 2 then 0.
  auto top = TopEntitiesForRelation(model, relations[0], 1, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 2);
  EXPECT_EQ(top[1], 0);
}

TEST(TopEntitiesForRelationTest, CountClamped) {
  TuckerFactorization model = MakeModel();
  auto relations = DiscoverRelations(model, 1);
  auto top = TopEntitiesForRelation(model, relations[0], 0, 100);
  EXPECT_EQ(top.size(), 6u);
}

}  // namespace
}  // namespace ptucker
