// obs/trace.h: the span tracer. The ring buffers must be bounded
// (overflow overwrites the oldest event and counts it — never blocks,
// never UB), the serialize/import path that ships worker rings in kBye
// must round-trip and reject malformed payloads gracefully, and —
// the core invariant — tracing must never perturb solver numerics:
// a traced solve's trajectory is bit-identical to an untraced one.
#include "obs/trace.h"

#if defined(__SANITIZE_THREAD__)
#define PTUCKER_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PTUCKER_TEST_TSAN 1
#endif
#endif

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ptucker.h"
#include "data/synthetic.h"
#include "util/random.h"

namespace ptucker {
namespace obs {
namespace {

bool ContainsName(const std::vector<TraceEvent>& events, const char* name) {
  for (const TraceEvent& event : events) {
    if (std::strcmp(event.name, name) == 0) return true;
  }
  return false;
}

TEST(ObsTraceTest, SpanMacroRecordsOnlyWhenEnabled) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  tracer.Enable();
  { PTUCKER_TRACE_SPAN("obs_test.enabled_span"); }
  EXPECT_TRUE(ContainsName(tracer.Snapshot(), "obs_test.enabled_span"));

  tracer.Disable();
  tracer.Clear();
  { PTUCKER_TRACE_SPAN("obs_test.disabled_span"); }
  EXPECT_TRUE(tracer.Snapshot().empty());
}

TEST(ObsTraceTest, RingOverflowOverwritesOldestAndCountsDrops) {
  Tracer tracer;
  tracer.SetCapacity(8);
  tracer.Enable();
  for (std::int64_t i = 0; i < 100; ++i) {
    tracer.Record("overflow", /*ts_us=*/i, /*dur_us=*/1);
  }
  const std::vector<TraceEvent> events = tracer.Snapshot();
  EXPECT_EQ(events.size(), 8u);
  EXPECT_EQ(tracer.dropped(), 92u);
  for (const TraceEvent& event : events) {
    // The survivors are the newest events; the oldest were overwritten.
    EXPECT_GE(event.ts_us, 92);
    EXPECT_LT(event.ts_us, 100);
  }
  tracer.Clear();
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(ObsTraceTest, SerializeImportRoundTripStampsPid) {
  Tracer source;
  source.Enable();
  source.Record("alpha", 10, 5);
  source.Record("beta", 20, 7);
  const std::vector<std::uint8_t> payload = source.SerializeEvents();

  Tracer sink;
  std::string error;
  ASSERT_TRUE(sink.ImportSerialized(payload, /*pid=*/3, &error)) << error;
  const std::vector<TraceEvent> events = sink.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  for (const TraceEvent& event : events) {
    EXPECT_EQ(event.pid, 3);
  }
  EXPECT_TRUE(ContainsName(events, "alpha"));
  EXPECT_TRUE(ContainsName(events, "beta"));
  for (const TraceEvent& event : events) {
    if (std::strcmp(event.name, "alpha") == 0) {
      EXPECT_EQ(event.ts_us, 10);
      EXPECT_EQ(event.dur_us, 5);
    }
  }
}

TEST(ObsTraceTest, ImportRejectsMalformedPayloads) {
  Tracer source;
  source.Enable();
  source.Record("gamma", 1, 2);
  const std::vector<std::uint8_t> good = source.SerializeEvents();

  Tracer sink;
  std::string error;

  std::vector<std::uint8_t> truncated(good.begin(),
                                      good.begin() + good.size() / 2);
  EXPECT_FALSE(sink.ImportSerialized(truncated, 1, &error));
  EXPECT_FALSE(error.empty());

  std::vector<std::uint8_t> bad_version = good;
  bad_version[0] ^= 0xff;
  EXPECT_FALSE(sink.ImportSerialized(bad_version, 1, &error));
  EXPECT_NE(error.find("version"), std::string::npos);

  std::vector<std::uint8_t> trailing = good;
  trailing.push_back(0);
  EXPECT_FALSE(sink.ImportSerialized(trailing, 1, &error));

  EXPECT_FALSE(sink.ImportSerialized({}, 1, &error));
}

TEST(ObsTraceTest, ChromeTraceJsonEscapesAndShapesEvents) {
  Tracer tracer;
  tracer.Enable();
  tracer.Record("quote\"back\\slash", 10, 5);
  const std::string json = tracer.ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"ptucker\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":10"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":5"), std::string::npos);
}

TEST(ObsTraceTest, WriteChromeTraceReportsIoErrors) {
  Tracer tracer;
  std::string error;
  EXPECT_FALSE(tracer.WriteChromeTrace(
      "/nonexistent-ptucker-dir/trace.json", &error));
  EXPECT_NE(error.find("/nonexistent-ptucker-dir/trace.json"),
            std::string::npos);
}

TEST(ObsTraceTest, SolveTrajectoryBitIdenticalTracingOnVsOff) {
  Rng rng(5);
  SparseTensor x = UniformSparseTensor({20, 16, 12}, 600, rng);
  x.BuildModeIndex();
  PTuckerOptions options;
  options.core_dims = {3, 2, 2};
  options.max_iterations = 3;
  options.tolerance = 0.0;
  options.num_threads = 3;
#if defined(PTUCKER_TEST_TSAN)
  // TSan cannot see libgomp's fork/join barriers and reports the OpenMP
  // worker handoff as a race. Trajectories are thread-count invariant
  // (the repo's core guarantee), so running the solve single-threaded
  // under TSan tests the same bit-identity claim without the false
  // positive; the multi-writer tracer paths get their TSan coverage
  // from std::thread-based tests.
  options.num_threads = 1;
#endif
  options.seed = 11;

  Tracer& tracer = Tracer::Global();
  tracer.Disable();
  tracer.Clear();
  const PTuckerResult off = PTuckerDecompose(x, options);

  tracer.Enable();
  const PTuckerResult on = PTuckerDecompose(x, options);
  const std::vector<TraceEvent> events = tracer.Snapshot();
  tracer.Disable();
  tracer.Clear();

  EXPECT_TRUE(ContainsName(events, "als.iteration"));
  EXPECT_TRUE(ContainsName(events, "als.factor_update"));

  ASSERT_EQ(off.iterations.size(), on.iterations.size());
  for (std::size_t i = 0; i < off.iterations.size(); ++i) {
    // memcmp on the raw doubles: bit-identity, not approximate equality.
    EXPECT_EQ(std::memcmp(&off.iterations[i].error, &on.iterations[i].error,
                          sizeof(double)),
              0)
        << "iteration " << i;
  }
  EXPECT_EQ(std::memcmp(&off.final_error, &on.final_error, sizeof(double)),
            0);
}

}  // namespace
}  // namespace obs
}  // namespace ptucker
