// obs/metrics.h: the lock-free metrics plane. Counters and histograms
// must be exact under concurrent writers at every thread count (striped
// relaxed atomics merged on read lose nothing), registry get-or-create
// must be idempotent but loud on type/bounds mismatches, and the
// exposition/log formats must carry every sample. Runs under the
// ASan+UBSan and TSan CI jobs via the obs_ test-name prefix.
#include "obs/metrics.h"

#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ptucker {
namespace obs {
namespace {

// Concurrency sweep: 1 (trivial), 4 (one writer per stripe group), 13
// (odd, not a divisor of the 16 stripes — exercises stripe sharing).
const int kThreadCounts[] = {1, 4, 13};

TEST(ObsCounterTest, ExactUnderConcurrentWriters) {
  for (const int threads : kThreadCounts) {
    Counter counter;
    constexpr std::uint64_t kPerThread = 20000;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&counter] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
      });
    }
    for (std::thread& thread : pool) thread.join();
    EXPECT_EQ(counter.Value(), kPerThread * static_cast<std::uint64_t>(threads))
        << threads << " threads";
  }
}

TEST(ObsCounterTest, DeltaIncrementsAccumulate) {
  Counter counter;
  counter.Increment(5);
  counter.Increment();
  counter.Increment(94);
  EXPECT_EQ(counter.Value(), 100u);
}

TEST(ObsGaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0);
  gauge.Set(42);
  EXPECT_EQ(gauge.Value(), 42);
  gauge.Add(-50);
  EXPECT_EQ(gauge.Value(), -8);
}

TEST(ObsHistogramTest, BucketAssignmentFollowsLeConvention) {
  Histogram histogram({1.0, 2.0, 4.0});
  histogram.Observe(0.5);   // <= 1.0
  histogram.Observe(1.0);   // <= 1.0 (le is inclusive)
  histogram.Observe(1.5);   // <= 2.0
  histogram.Observe(4.0);   // <= 4.0
  histogram.Observe(100.0); // +Inf
  const HistogramSnapshot snapshot = histogram.Snapshot();
  ASSERT_EQ(snapshot.counts.size(), 3u);
  EXPECT_EQ(snapshot.counts[0], 2u);  // cumulative
  EXPECT_EQ(snapshot.counts[1], 3u);
  EXPECT_EQ(snapshot.counts[2], 4u);
  EXPECT_EQ(snapshot.count, 5u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 0.5 + 1.0 + 1.5 + 4.0 + 100.0);
}

TEST(ObsHistogramTest, MergeIsExactAndDeterministicAcrossThreadCounts) {
  // The same observation multiset, spread over 1/4/13 threads, must
  // merge to the same counts — and the counts must be exact, not
  // sampled: per-thread stripes never drop an observation.
  HistogramSnapshot reference;
  for (std::size_t variant = 0; variant < 3; ++variant) {
    const int threads = kThreadCounts[variant];
    Histogram histogram(ExponentialBuckets(1e-3, 2.0, 10));
    constexpr int kTotal = 60000;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&histogram, threads, t] {
        // Every thread observes a disjoint residue class of the same
        // global sequence, so the union is thread-count independent.
        for (int i = t; i < kTotal; i += threads) {
          histogram.Observe(1e-3 * static_cast<double>(1 + i % 2048));
        }
      });
    }
    for (std::thread& thread : pool) thread.join();
    const HistogramSnapshot snapshot = histogram.Snapshot();
    EXPECT_EQ(snapshot.count, static_cast<std::uint64_t>(kTotal));
    if (variant == 0) {
      reference = snapshot;
    } else {
      EXPECT_EQ(snapshot.counts, reference.counts) << threads << " threads";
      EXPECT_EQ(snapshot.count, reference.count) << threads << " threads";
      EXPECT_NEAR(snapshot.sum, reference.sum, 1e-6 * reference.sum);
    }
  }
}

TEST(ObsHistogramTest, ApproxPercentileReturnsCoveringBound) {
  Histogram histogram({1.0, 10.0, 100.0});
  for (int i = 0; i < 90; ++i) histogram.Observe(0.5);
  for (int i = 0; i < 10; ++i) histogram.Observe(50.0);
  EXPECT_DOUBLE_EQ(histogram.ApproxPercentile(50.0), 1.0);
  EXPECT_DOUBLE_EQ(histogram.ApproxPercentile(99.0), 100.0);
}

TEST(ObsHistogramTest, RejectsMalformedBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(ObsBucketsTest, ExponentialLadderAndValidation) {
  const std::vector<double> bounds = ExponentialBuckets(1.0, 2.0, 4);
  EXPECT_EQ(bounds, (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  EXPECT_THROW(ExponentialBuckets(0.0, 2.0, 4), std::invalid_argument);
  EXPECT_THROW(ExponentialBuckets(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(ExponentialBuckets(1.0, 2.0, 0), std::invalid_argument);
}

TEST(ObsRegistryTest, GetOrCreateIsIdempotent) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("requests", "help");
  EXPECT_EQ(counter, registry.GetCounter("requests", "other help"));
  Gauge* gauge = registry.GetGauge("depth", "help");
  EXPECT_EQ(gauge, registry.GetGauge("depth", "help"));
  Histogram* histogram =
      registry.GetHistogram("latency", "help", {1.0, 2.0});
  EXPECT_EQ(histogram, registry.GetHistogram("latency", "help", {1.0, 2.0}));
}

TEST(ObsRegistryTest, TypeAndBoundsMismatchesThrow) {
  MetricsRegistry registry;
  registry.GetCounter("requests", "help");
  EXPECT_THROW(registry.GetGauge("requests", "help"), std::invalid_argument);
  EXPECT_THROW(registry.GetHistogram("requests", "help", {1.0}),
               std::invalid_argument);
  registry.GetHistogram("latency", "help", {1.0, 2.0});
  EXPECT_THROW(registry.GetHistogram("latency", "help", {1.0, 4.0}),
               std::invalid_argument);
}

TEST(ObsRegistryTest, ConcurrentGetOrCreateReturnsOneInstance) {
  for (const int threads : kThreadCounts) {
    MetricsRegistry registry;
    std::vector<Counter*> seen(static_cast<std::size_t>(threads), nullptr);
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&registry, &seen, t] {
        Counter* counter = registry.GetCounter("shared", "help");
        counter->Increment();
        seen[static_cast<std::size_t>(t)] = counter;
      });
    }
    for (std::thread& thread : pool) thread.join();
    for (Counter* counter : seen) EXPECT_EQ(counter, seen[0]);
    EXPECT_EQ(seen[0]->Value(), static_cast<std::uint64_t>(threads));
  }
}

TEST(ObsRegistryTest, ExpositionTextCarriesEverySampleKind) {
  MetricsRegistry registry;
  registry.GetCounter("ptucker_requests_total", "Requests seen.")
      ->Increment(7);
  registry.GetGauge("ptucker_queue_depth", "Queued requests.")->Set(-3);
  Histogram* histogram = registry.GetHistogram(
      "ptucker_latency_seconds", "Request latency.", {0.5, 2.0});
  histogram->Observe(0.1);
  histogram->Observe(1.0);
  histogram->Observe(9.0);

  const std::string text = registry.ExpositionText();
  EXPECT_NE(text.find("# HELP ptucker_requests_total Requests seen.\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ptucker_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("ptucker_requests_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ptucker_queue_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("ptucker_queue_depth -3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ptucker_latency_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("ptucker_latency_seconds_bucket{le=\"0.5\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("ptucker_latency_seconds_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("ptucker_latency_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("ptucker_latency_seconds_count 3\n"),
            std::string::npos);
}

TEST(ObsRegistryTest, LogLineIsCompactNameValue) {
  MetricsRegistry registry;
  registry.GetCounter("b_total", "help")->Increment(2);
  registry.GetGauge("a_depth", "help")->Set(5);
  Histogram* histogram = registry.GetHistogram("c_seconds", "help", {1.0});
  histogram->Observe(0.25);
  // Names sort, histograms expand to _count/_sum.
  EXPECT_EQ(registry.LogLine(),
            "a_depth=5 b_total=2 c_seconds_count=1 c_seconds_sum=0.25");
}

TEST(ObsRegistryTest, GlobalRegistryIsAProcessSingleton) {
  EXPECT_EQ(&GlobalMetrics(), &GlobalMetrics());
}

}  // namespace
}  // namespace obs
}  // namespace ptucker
