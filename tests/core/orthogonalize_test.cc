#include "core/orthogonalize.h"

#include <gtest/gtest.h>

#include "core/reconstruction.h"
#include "data/synthetic.h"
#include "linalg/qr.h"
#include "tensor/nmode.h"
#include "util/random.h"

namespace ptucker {
namespace {

struct Ctx {
  DenseTensor core;
  std::vector<Matrix> factors;
};

Ctx MakeCtx(const std::vector<std::int64_t>& dims,
                const std::vector<std::int64_t>& ranks, std::uint64_t seed) {
  Rng rng(seed);
  Ctx s;
  s.core = DenseTensor(ranks);
  s.core.FillUniform(rng);
  for (std::size_t k = 0; k < dims.size(); ++k) {
    Matrix factor(dims[k], ranks[k]);
    factor.FillUniform(rng);
    s.factors.push_back(std::move(factor));
  }
  return s;
}

TEST(OrthogonalizeTest, FactorsBecomeOrthonormal) {
  Ctx s = MakeCtx({8, 7, 6}, {3, 2, 3}, 1);
  OrthogonalizeFactors(&s.factors, &s.core);
  for (const auto& factor : s.factors) {
    EXPECT_LT(OrthonormalityDefect(factor), 1e-10);
  }
}

TEST(OrthogonalizeTest, ReconstructionUnchangedDense) {
  Ctx s = MakeCtx({5, 4, 6}, {2, 2, 2}, 2);
  DenseTensor before = ReconstructDense(s.core, s.factors);
  OrthogonalizeFactors(&s.factors, &s.core);
  DenseTensor after = ReconstructDense(s.core, s.factors);
  EXPECT_LT(MaxAbsDiff(before, after), 1e-10);
}

TEST(OrthogonalizeTest, ReconstructionErrorUnchangedOnObservedEntries) {
  // The P-Tucker invariant: Algorithm 2 lines 8-11 keep Eq. 5 constant.
  Rng rng(3);
  SparseTensor x = UniformSparseTensor({6, 6, 6}, 40, rng);
  Ctx s = MakeCtx({6, 6, 6}, {3, 2, 2}, 4);
  const double before = ReconstructionError(x, s.core, s.factors);
  OrthogonalizeFactors(&s.factors, &s.core);
  const double after = ReconstructionError(x, s.core, s.factors);
  EXPECT_NEAR(before, after, 1e-9);
}

TEST(OrthogonalizeTest, CoreShapePreserved) {
  Ctx s = MakeCtx({9, 8}, {4, 3}, 5);
  OrthogonalizeFactors(&s.factors, &s.core);
  EXPECT_EQ(s.core.dims(), (std::vector<std::int64_t>{4, 3}));
}

TEST(OrthogonalizeTest, HigherOrder) {
  Ctx s = MakeCtx({4, 5, 3, 4, 3}, {2, 2, 2, 2, 2}, 6);
  DenseTensor before = ReconstructDense(s.core, s.factors);
  OrthogonalizeFactors(&s.factors, &s.core);
  DenseTensor after = ReconstructDense(s.core, s.factors);
  EXPECT_LT(MaxAbsDiff(before, after), 1e-10);
  for (const auto& factor : s.factors) {
    EXPECT_LT(OrthonormalityDefect(factor), 1e-10);
  }
}

TEST(OrthogonalizeTest, IdempotentOnOrthonormalFactors) {
  Ctx s = MakeCtx({7, 6}, {3, 3}, 7);
  OrthogonalizeFactors(&s.factors, &s.core);
  std::vector<Matrix> factors_copy = s.factors;
  DenseTensor core_copy = s.core;
  OrthogonalizeFactors(&s.factors, &s.core);
  for (std::size_t k = 0; k < s.factors.size(); ++k) {
    EXPECT_TRUE(AllClose(s.factors[k], factors_copy[k], 1e-9));
  }
  EXPECT_LT(MaxAbsDiff(s.core, core_copy), 1e-9);
}

}  // namespace
}  // namespace ptucker
