#include "core/reconstruction.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/delta_engine.h"
#include "data/synthetic.h"
#include "tensor/nmode.h"
#include "util/random.h"

namespace ptucker {
namespace {

struct Ctx {
  SparseTensor x;
  DenseTensor core;
  std::vector<Matrix> factors;
};

Ctx MakeCtx(std::uint64_t seed) {
  Rng rng(seed);
  Ctx s;
  s.x = UniformSparseTensor({7, 6, 5}, 60, rng);
  s.core = DenseTensor({2, 2, 3});
  s.core.FillUniform(rng);
  for (std::int64_t k = 0; k < 3; ++k) {
    Matrix factor(s.x.dim(k), s.core.dim(k));
    factor.FillUniform(rng);
    s.factors.push_back(std::move(factor));
  }
  return s;
}

TEST(ReconstructionErrorTest, MatchesManualEq5) {
  Ctx s = MakeCtx(1);
  double expected_sq = 0.0;
  for (std::int64_t e = 0; e < s.x.nnz(); ++e) {
    const double diff =
        s.x.value(e) - ReconstructEntry(s.core, s.factors, s.x.index(e));
    expected_sq += diff * diff;
  }
  EXPECT_NEAR(ReconstructionError(s.x, s.core, s.factors),
              std::sqrt(expected_sq), 1e-10);
}

TEST(ReconstructionErrorTest, PerfectModelGivesZero) {
  // Build x directly from the model's reconstruction.
  Ctx s = MakeCtx(2);
  SparseTensor exact(s.x.dims());
  for (std::int64_t e = 0; e < s.x.nnz(); ++e) {
    exact.AddEntry(s.x.index(e),
                   ReconstructEntry(s.core, s.factors, s.x.index(e)));
  }
  EXPECT_NEAR(ReconstructionError(exact, s.core, s.factors), 0.0, 1e-10);
}

TEST(ReconstructionErrorTest, ZeroModelGivesInputNorm) {
  Ctx s = MakeCtx(3);
  s.core.Fill(0.0);
  EXPECT_NEAR(ReconstructionError(s.x, s.core, s.factors),
              s.x.FrobeniusNorm(), 1e-10);
}

TEST(ReconstructionErrorTest, ListAndDenseOverloadsAgree) {
  Ctx s = MakeCtx(4);
  CoreEntryList list(s.core);
  EXPECT_DOUBLE_EQ(ReconstructionError(s.x, list, s.factors),
                   ReconstructionError(s.x, s.core, s.factors));
}

TEST(TestRmseTest, MatchesManual) {
  Ctx s = MakeCtx(5);
  double sq = 0.0;
  for (std::int64_t e = 0; e < s.x.nnz(); ++e) {
    const double diff =
        s.x.value(e) - ReconstructEntry(s.core, s.factors, s.x.index(e));
    sq += diff * diff;
  }
  EXPECT_NEAR(TestRmse(s.x, s.core, s.factors),
              std::sqrt(sq / static_cast<double>(s.x.nnz())), 1e-10);
}

TEST(TestRmseTest, EmptyTestSetIsZero) {
  Ctx s = MakeCtx(6);
  SparseTensor empty(s.x.dims());
  EXPECT_EQ(TestRmse(empty, s.core, s.factors), 0.0);
}

TEST(PredictEntriesTest, MatchesPerEntryReconstruction) {
  Ctx s = MakeCtx(7);
  const auto predictions = PredictEntries(s.x, s.core, s.factors);
  ASSERT_EQ(predictions.size(), static_cast<std::size_t>(s.x.nnz()));
  for (std::int64_t e = 0; e < s.x.nnz(); ++e) {
    EXPECT_NEAR(predictions[static_cast<std::size_t>(e)],
                ReconstructEntry(s.core, s.factors, s.x.index(e)), 1e-11);
  }
}

TEST(PredictEntriesTest, EngineOverloadMatchesDenseOverload) {
  // The engine overload tiles arbitrary query coordinates through
  // ReconstructBatch; predictions must match the dense-core convenience
  // overload for a batch-1 engine and stay bit-identical to the
  // mode-major per-entry scan for the tiled engine at any width.
  Ctx s = MakeCtx(9);
  const auto expected = PredictEntries(s.x, s.core, s.factors);
  const CoreEntryList list(s.core);
  const NaiveDeltaEngine naive(list, s.factors);
  const auto via_naive = PredictEntries(s.x, naive);
  ASSERT_EQ(via_naive.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(via_naive[i], expected[i]);
  }
  const ModeMajorDeltaEngine mode_major(list, s.factors, nullptr);
  const auto via_mode_major = PredictEntries(s.x, mode_major);
  const TiledDeltaEngine tiled(list, s.factors, nullptr, 16);
  const auto via_tiled = PredictEntries(s.x, tiled);
  ASSERT_EQ(via_tiled.size(), via_mode_major.size());
  for (std::size_t i = 0; i < via_tiled.size(); ++i) {
    EXPECT_EQ(via_tiled[i], via_mode_major[i]);
    EXPECT_NEAR(via_tiled[i], expected[i], 1e-11);
  }
}

TEST(TestRmseTest, TiledEngineMatchesModeMajorOnHeldOutCoordinates) {
  // TestRmse reconstructs coordinates outside the tensor the engine was
  // built over; the tiled ReconstructBatch path must handle them (only
  // coordinates are consumed) and stay bit-identical to mode-major.
  Ctx s = MakeCtx(10);
  Rng rng(11);
  const SparseTensor held_out = UniformSparseTensor({7, 6, 5}, 40, rng);
  const CoreEntryList list(s.core);
  const ModeMajorDeltaEngine mode_major(list, s.factors, nullptr);
  const TiledDeltaEngine tiled(list, s.factors, nullptr, 32);
  EXPECT_EQ(TestRmse(held_out, tiled), TestRmse(held_out, mode_major));
  EXPECT_NEAR(TestRmse(held_out, tiled),
              TestRmse(held_out, s.core, s.factors), 1e-10);
}

TEST(ReconstructionErrorTest, ScalingLinearity) {
  // Scaling the core by t scales every prediction by t; with x = 0 the
  // error is t · ‖x̂‖.
  Ctx s = MakeCtx(8);
  SparseTensor zeros(s.x.dims());
  for (std::int64_t e = 0; e < s.x.nnz(); ++e) {
    zeros.AddEntry(s.x.index(e), 0.0);
  }
  const double base = ReconstructionError(zeros, s.core, s.factors);
  s.core.Scale(3.0);
  EXPECT_NEAR(ReconstructionError(zeros, s.core, s.factors), 3.0 * base,
              1e-8);
}

}  // namespace
}  // namespace ptucker
