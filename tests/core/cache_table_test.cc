#include "core/cache_table.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "util/random.h"

namespace ptucker {
namespace {

struct Ctx {
  SparseTensor x;
  DenseTensor core;
  CoreEntryList list;
  std::vector<Matrix> factors;
};

Ctx MakeCtx(std::uint64_t seed) {
  Rng rng(seed);
  Ctx s;
  s.x = UniformSparseTensor({6, 5, 4}, 40, rng);
  s.core = DenseTensor({2, 3, 2});
  s.core.FillUniform(rng);
  s.list = CoreEntryList(s.core);
  for (std::int64_t k = 0; k < 3; ++k) {
    Matrix factor(s.x.dim(k), s.core.dim(k));
    factor.FillUniform(rng);
    s.factors.push_back(std::move(factor));
  }
  return s;
}

TEST(CacheTableTest, EntriesMatchDirectProducts) {
  Ctx s = MakeCtx(1);
  CacheTable cache(s.x, s.list, s.factors, nullptr);
  for (std::int64_t e = 0; e < s.x.nnz(); ++e) {
    const std::int64_t* idx = s.x.index(e);
    for (std::int64_t b = 0; b < s.list.size(); ++b) {
      double expected = s.list.value(b);
      for (std::int64_t k = 0; k < 3; ++k) {
        expected *= s.factors[static_cast<std::size_t>(k)](
            idx[k], s.list.index(b)[k]);
      }
      EXPECT_NEAR(cache.Row(e)[b], expected, 1e-12);
    }
  }
}

TEST(CacheTableTest, CachedDeltaMatchesDirectDelta) {
  Ctx s = MakeCtx(2);
  CacheTable cache(s.x, s.list, s.factors, nullptr);
  for (std::int64_t e = 0; e < s.x.nnz(); ++e) {
    const std::int64_t* idx = s.x.index(e);
    for (std::int64_t mode = 0; mode < 3; ++mode) {
      const std::int64_t rank = s.core.dim(mode);
      std::vector<double> cached(static_cast<std::size_t>(rank));
      std::vector<double> direct(static_cast<std::size_t>(rank));
      cache.ComputeDeltaCached(s.list, s.factors, e, idx, mode,
                               cached.data());
      ComputeDelta(s.list, s.factors, idx, mode, direct.data());
      for (std::int64_t j = 0; j < rank; ++j) {
        EXPECT_NEAR(cached[static_cast<std::size_t>(j)],
                    direct[static_cast<std::size_t>(j)], 1e-9);
      }
    }
  }
}

TEST(CacheTableTest, ZeroCoefficientFallback) {
  Ctx s = MakeCtx(3);
  // Zero an entire factor row touched by entry 0 so the division path is
  // impossible for it.
  const std::int64_t row = s.x.index(0, 1);
  for (std::int64_t j = 0; j < s.factors[1].cols(); ++j) {
    s.factors[1](row, j) = 0.0;
  }
  CacheTable cache(s.x, s.list, s.factors, nullptr);
  const std::int64_t rank = s.core.dim(1);
  std::vector<double> cached(static_cast<std::size_t>(rank));
  std::vector<double> direct(static_cast<std::size_t>(rank));
  cache.ComputeDeltaCached(s.list, s.factors, 0, s.x.index(0), 1,
                           cached.data());
  ComputeDelta(s.list, s.factors, s.x.index(0), 1, direct.data());
  for (std::int64_t j = 0; j < rank; ++j) {
    EXPECT_NEAR(cached[static_cast<std::size_t>(j)],
                direct[static_cast<std::size_t>(j)], 1e-12);
  }
}

TEST(CacheTableTest, UpdateAfterModeTracksNewFactor) {
  Ctx s = MakeCtx(4);
  CacheTable cache(s.x, s.list, s.factors, nullptr);
  // Change mode 2's factor, then rescale the table.
  Matrix old_factor = s.factors[2];
  Rng rng(99);
  s.factors[2].FillUniform(rng);
  cache.UpdateAfterMode(s.x, s.list, s.factors, 2, old_factor);
  // Table must now equal a fresh build against the new factors.
  CacheTable fresh(s.x, s.list, s.factors, nullptr);
  for (std::int64_t e = 0; e < s.x.nnz(); ++e) {
    for (std::int64_t b = 0; b < s.list.size(); ++b) {
      EXPECT_NEAR(cache.Row(e)[b], fresh.Row(e)[b], 1e-9);
    }
  }
}

TEST(CacheTableTest, UpdateAfterModeWithZeroOldCoefficient) {
  Ctx s = MakeCtx(5);
  Matrix old_factor = s.factors[0];
  const std::int64_t row = s.x.index(0, 0);
  for (std::int64_t j = 0; j < old_factor.cols(); ++j) {
    old_factor(row, j) = 0.0;
  }
  // Build the cache against the zeroed old factor, then restore.
  std::vector<Matrix> old_factors = s.factors;
  old_factors[0] = old_factor;
  CacheTable cache(s.x, s.list, old_factors, nullptr);
  cache.UpdateAfterMode(s.x, s.list, s.factors, 0, old_factor);
  CacheTable fresh(s.x, s.list, s.factors, nullptr);
  for (std::int64_t e = 0; e < s.x.nnz(); ++e) {
    for (std::int64_t b = 0; b < s.list.size(); ++b) {
      EXPECT_NEAR(cache.Row(e)[b], fresh.Row(e)[b], 1e-9);
    }
  }
}

TEST(CacheTableTest, ChargesOmegaTimesCoreBytes) {
  Ctx s = MakeCtx(6);
  MemoryTracker tracker;
  {
    CacheTable cache(s.x, s.list, s.factors, &tracker);
    EXPECT_EQ(tracker.current_bytes(),
              s.x.nnz() * s.list.size() *
                  static_cast<std::int64_t>(sizeof(double)));
  }
  EXPECT_EQ(tracker.current_bytes(), 0);  // released on destruction
}

TEST(CacheTableTest, BudgetTriggersOom) {
  Ctx s = MakeCtx(7);
  MemoryTracker tracker(64);  // tiny budget
  EXPECT_THROW(CacheTable(s.x, s.list, s.factors, &tracker),
               OutOfMemoryBudget);
}

}  // namespace
}  // namespace ptucker
