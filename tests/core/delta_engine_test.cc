// Equivalence and maintenance tests for the pluggable δ-engines: the
// mode-major, cached, adaptive (ε = 0) and tiled (B ∈ {1, 4, 32}) engines
// must agree with the naive entry-major oracle on every kernel, stay
// consistent through core-list mutations (Remove, RefreshValues) and
// factor updates, and hold across thread counts. Every batch entry point
// (DeltaBatch, ReconstructBatch, ProductsBatch) must equal its per-entry
// loop on every engine, adaptive ε > 0 must stay inside its documented
// error budget, and the solver-level guarantees are pinned: exact engines
// produce the same trajectories — including the batched truncation and
// metric paths at every tile width — each bit-reproducibly.
#include "core/delta_engine.h"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>
#include <omp.h>

#include "core/ptucker.h"
#include "core/reconstruction.h"
#include "core/truncation.h"
#include "data/synthetic.h"
#include "util/random.h"

namespace ptucker {
namespace {

// Scopes omp_set_num_threads so a test can pin the team size.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int threads) : saved_(omp_get_max_threads()) {
    omp_set_num_threads(threads);
  }
  ~ThreadCountGuard() { omp_set_num_threads(saved_); }

 private:
  int saved_;
};

struct Ctx {
  SparseTensor x;
  DenseTensor core;
  CoreEntryList list;
  std::vector<Matrix> factors;
};

// order-many tensor dims / uniform core rank, with ~30% of the core
// zeroed so the entry list is genuinely sparse and groups are ragged.
Ctx MakeCtx(std::int64_t order, std::int64_t rank, std::uint64_t seed) {
  Rng rng(seed);
  Ctx s;
  std::vector<std::int64_t> dims;
  std::vector<std::int64_t> ranks;
  for (std::int64_t k = 0; k < order; ++k) {
    dims.push_back(12 - k);
    ranks.push_back(rank);
  }
  s.x = UniformSparseTensor(dims, 150, rng);
  s.core = DenseTensor(ranks);
  s.core.FillUniform(rng);
  for (std::int64_t linear = 0; linear < s.core.size(); ++linear) {
    if (rng.Uniform() < 0.3) s.core[linear] = 0.0;
  }
  if (s.core.CountNonZeros() == 0) s.core[0] = 0.5;
  s.list = CoreEntryList(s.core);
  for (std::int64_t k = 0; k < order; ++k) {
    Matrix factor(s.x.dim(k), rank);
    factor.FillUniform(rng);
    // Sprinkle exact zeros so the group-level skip and the cache's
    // division fallback both execute.
    for (std::int64_t i = 0; i < factor.rows(); ++i) {
      for (std::int64_t j = 0; j < factor.cols(); ++j) {
        if (rng.Uniform() < 0.1) factor(i, j) = 0.0;
      }
    }
    s.factors.push_back(std::move(factor));
  }
  return s;
}

struct Engines {
  NaiveDeltaEngine naive;
  ModeMajorDeltaEngine mode_major;
  CachedDeltaEngine cached;
  AdaptiveDeltaEngine adaptive0;  // ε = 0: must be bit-identical
  TiledDeltaEngine tiled1;
  TiledDeltaEngine tiled4;
  TiledDeltaEngine tiled32;

  explicit Engines(const Ctx& s)
      : naive(s.list, s.factors),
        mode_major(s.list, s.factors, nullptr),
        cached(s.x, s.list, s.factors, nullptr),
        adaptive0(s.list, s.factors, nullptr, 0.0),
        tiled1(s.list, s.factors, nullptr, 1),
        tiled4(s.list, s.factors, nullptr, 4),
        tiled32(s.list, s.factors, nullptr, 32) {}

  // The engines with derived state, for broadcasting the mutation hooks.
  std::vector<DeltaEngine*> All() {
    return {&naive,  &mode_major, &cached, &adaptive0,
            &tiled1, &tiled4,     &tiled32};
  }
};

// DeltaBatch over every observed entry at once must equal the per-entry
// ComputeDelta loop bit-for-bit — for every engine, including partial
// final tiles (nnz is no multiple of the tile widths).
void ExpectBatchMatchesLoop(const Ctx& s, const DeltaEngine& engine) {
  const std::int64_t order = s.x.order();
  const std::int64_t nnz = s.x.nnz();
  std::vector<std::int64_t> entries(static_cast<std::size_t>(nnz));
  std::vector<const std::int64_t*> indices(static_cast<std::size_t>(nnz));
  for (std::int64_t e = 0; e < nnz; ++e) {
    entries[static_cast<std::size_t>(e)] = e;
    indices[static_cast<std::size_t>(e)] = s.x.index(e);
  }
  for (std::int64_t mode = 0; mode < order; ++mode) {
    const std::int64_t rank = s.core.dim(mode);
    std::vector<double> batched(static_cast<std::size_t>(nnz * rank));
    engine.DeltaBatch(nnz, entries.data(), indices.data(), mode,
                      batched.data());
    std::vector<double> single(static_cast<std::size_t>(rank));
    for (std::int64_t e = 0; e < nnz; ++e) {
      engine.ComputeDelta(e, s.x.index(e), mode, single.data());
      for (std::int64_t j = 0; j < rank; ++j) {
        EXPECT_EQ(batched[static_cast<std::size_t>(e * rank + j)],
                  single[static_cast<std::size_t>(j)])
            << engine.name() << " batch, entry " << e << " mode " << mode;
      }
    }
  }
}

// ReconstructBatch over every observed entry at once must equal the
// per-entry Reconstruct loop bit-for-bit — for every engine, including
// partial final tiles and (for the tiled engine at B >= its SIMD
// threshold) the packed SIMD reconstruct kernel.
void ExpectReconstructBatchMatchesLoop(const Ctx& s,
                                       const DeltaEngine& engine) {
  const std::int64_t nnz = s.x.nnz();
  std::vector<const std::int64_t*> indices(static_cast<std::size_t>(nnz));
  for (std::int64_t e = 0; e < nnz; ++e) {
    indices[static_cast<std::size_t>(e)] = s.x.index(e);
  }
  std::vector<double> batched(static_cast<std::size_t>(nnz));
  engine.ReconstructBatch(nnz, indices.data(), batched.data());
  for (std::int64_t e = 0; e < nnz; ++e) {
    EXPECT_EQ(batched[static_cast<std::size_t>(e)],
              engine.Reconstruct(s.x.index(e)))
        << engine.name() << " reconstruct batch, entry " << e;
  }
}

// ProductsBatch over every observed entry at once must equal the
// per-entry ComputeProducts loop bit-for-bit — same coverage notes as
// ExpectReconstructBatchMatchesLoop.
void ExpectProductsBatchMatchesLoop(const Ctx& s, const DeltaEngine& engine) {
  const std::int64_t nnz = s.x.nnz();
  const std::int64_t n_core = s.list.size();
  std::vector<const std::int64_t*> indices(static_cast<std::size_t>(nnz));
  for (std::int64_t e = 0; e < nnz; ++e) {
    indices[static_cast<std::size_t>(e)] = s.x.index(e);
  }
  std::vector<double> batched(static_cast<std::size_t>(nnz * n_core));
  engine.ProductsBatch(nnz, indices.data(), batched.data());
  std::vector<double> single(static_cast<std::size_t>(n_core));
  for (std::int64_t e = 0; e < nnz; ++e) {
    engine.ComputeProducts(s.x.index(e), single.data());
    for (std::int64_t b = 0; b < n_core; ++b) {
      EXPECT_EQ(batched[static_cast<std::size_t>(e * n_core + b)],
                single[static_cast<std::size_t>(b)])
          << engine.name() << " products batch, entry " << e << " core " << b;
    }
  }
}

// Asserts every engine kernel agrees with the naive oracle within 1e-12
// over all observed entries, that the regrouped derivatives (adaptive at
// ε = 0, tiled at every width) are bit-identical to mode-major, and that
// every batch entry point equals its per-entry loop on every engine.
void ExpectEnginesAgree(const Ctx& s, const Engines& e) {
  {
    const std::int64_t order = s.x.order();
    std::vector<double> reference;
    std::vector<double> actual;
    const DeltaEngine* regrouped[] = {&e.adaptive0, &e.tiled1, &e.tiled4,
                                      &e.tiled32};
    for (std::int64_t entry = 0; entry < s.x.nnz(); ++entry) {
      for (std::int64_t mode = 0; mode < order; ++mode) {
        const std::int64_t rank = s.core.dim(mode);
        reference.assign(static_cast<std::size_t>(rank), 0.0);
        actual.assign(static_cast<std::size_t>(rank), 0.0);
        e.mode_major.ComputeDelta(entry, s.x.index(entry), mode,
                                  reference.data());
        for (const DeltaEngine* engine : regrouped) {
          engine->ComputeDelta(entry, s.x.index(entry), mode, actual.data());
          for (std::int64_t j = 0; j < rank; ++j) {
            EXPECT_EQ(actual[static_cast<std::size_t>(j)],
                      reference[static_cast<std::size_t>(j)])
                << engine->name() << " delta, entry " << entry << " mode "
                << mode;
          }
        }
      }
    }
  }
  const DeltaEngine* all_engines[] = {&e.naive,  &e.mode_major, &e.cached,
                                      &e.adaptive0, &e.tiled1,  &e.tiled4,
                                      &e.tiled32};
  for (const DeltaEngine* engine : all_engines) {
    ExpectBatchMatchesLoop(s, *engine);
    ExpectReconstructBatchMatchesLoop(s, *engine);
    ExpectProductsBatchMatchesLoop(s, *engine);
  }
  const std::int64_t order = s.x.order();
  const std::int64_t n_core = s.list.size();
  std::vector<double> g(static_cast<std::size_t>(n_core));
  for (std::int64_t b = 0; b < n_core; ++b) {
    g[static_cast<std::size_t>(b)] = 0.25 + 0.5 * static_cast<double>(b % 3);
  }
  for (std::int64_t entry = 0; entry < s.x.nnz(); ++entry) {
    const std::int64_t* idx = s.x.index(entry);
    for (std::int64_t mode = 0; mode < order; ++mode) {
      const std::int64_t rank = s.core.dim(mode);
      std::vector<double> expected(static_cast<std::size_t>(rank));
      std::vector<double> actual(static_cast<std::size_t>(rank));
      e.naive.ComputeDelta(entry, idx, mode, expected.data());
      e.mode_major.ComputeDelta(entry, idx, mode, actual.data());
      for (std::int64_t j = 0; j < rank; ++j) {
        EXPECT_NEAR(actual[static_cast<std::size_t>(j)],
                    expected[static_cast<std::size_t>(j)], 1e-12)
            << "modemajor delta, entry " << entry << " mode " << mode;
      }
      e.cached.ComputeDelta(entry, idx, mode, actual.data());
      for (std::int64_t j = 0; j < rank; ++j) {
        EXPECT_NEAR(actual[static_cast<std::size_t>(j)],
                    expected[static_cast<std::size_t>(j)], 1e-12)
            << "cached delta, entry " << entry << " mode " << mode;
      }
      // The cached engine must also handle unknown coordinates.
      e.cached.ComputeDelta(-1, idx, mode, actual.data());
      for (std::int64_t j = 0; j < rank; ++j) {
        EXPECT_NEAR(actual[static_cast<std::size_t>(j)],
                    expected[static_cast<std::size_t>(j)], 1e-12)
            << "cached fallback delta, entry " << entry << " mode " << mode;
      }
    }

    const double expected_hat = e.naive.Reconstruct(idx);
    EXPECT_NEAR(e.mode_major.Reconstruct(idx), expected_hat, 1e-12);
    EXPECT_NEAR(e.cached.Reconstruct(idx), expected_hat, 1e-12);

    std::vector<double> expected_products(static_cast<std::size_t>(n_core));
    std::vector<double> actual_products(static_cast<std::size_t>(n_core));
    e.naive.ComputeProducts(idx, expected_products.data());
    e.mode_major.ComputeProducts(idx, actual_products.data());
    for (std::int64_t b = 0; b < n_core; ++b) {
      EXPECT_NEAR(actual_products[static_cast<std::size_t>(b)],
                  expected_products[static_cast<std::size_t>(b)], 1e-12);
    }

    EXPECT_NEAR(e.mode_major.DesignDot(idx, g.data()),
                e.naive.DesignDot(idx, g.data()), 1e-12);

    std::vector<double> expected_z(static_cast<std::size_t>(n_core), 0.5);
    std::vector<double> actual_z(static_cast<std::size_t>(n_core), 0.5);
    e.naive.DesignAccumulate(idx, 1.5, expected_z.data());
    e.mode_major.DesignAccumulate(idx, 1.5, actual_z.data());
    for (std::int64_t b = 0; b < n_core; ++b) {
      EXPECT_NEAR(actual_z[static_cast<std::size_t>(b)],
                  expected_z[static_cast<std::size_t>(b)], 1e-12);
    }
  }
}

struct Param {
  std::int64_t order;
  std::int64_t rank;
  int threads;
};

std::vector<Param> AllParams() {
  std::vector<Param> params;
  for (const std::int64_t order : {3, 4}) {
    for (const std::int64_t rank : {2, 5}) {
      for (const int threads : {1, 4, 13}) {
        params.push_back({order, rank, threads});
      }
    }
  }
  return params;
}

class DeltaEngineEquivalence : public ::testing::TestWithParam<Param> {};

TEST_P(DeltaEngineEquivalence, AllKernelsMatchNaive) {
  const Param p = GetParam();
  ThreadCountGuard guard(p.threads);
  Ctx s = MakeCtx(p.order, p.rank, 17 * static_cast<std::uint64_t>(p.order) +
                                       static_cast<std::uint64_t>(p.rank));
  Engines e(s);
  ExpectEnginesAgree(s, e);
}

TEST_P(DeltaEngineEquivalence, ConsistentAfterRemove) {
  const Param p = GetParam();
  ThreadCountGuard guard(p.threads);
  Ctx s = MakeCtx(p.order, p.rank, 31 * static_cast<std::uint64_t>(p.order) +
                                       static_cast<std::uint64_t>(p.rank));
  Engines e(s);

  // Flag ~every 4th entry (always keeping at least one).
  std::vector<char> remove(static_cast<std::size_t>(s.list.size()), 0);
  for (std::int64_t b = 0; b + 1 < s.list.size(); b += 4) {
    remove[static_cast<std::size_t>(b)] = 1;
  }
  s.list.Remove(remove, &s.core);
  for (DeltaEngine* engine : e.All()) engine->OnCoreEntriesRemoved(remove);
  ExpectEnginesAgree(s, e);
}

TEST_P(DeltaEngineEquivalence, ConsistentAfterRefreshValues) {
  const Param p = GetParam();
  ThreadCountGuard guard(p.threads);
  Ctx s = MakeCtx(p.order, p.rank, 47 * static_cast<std::uint64_t>(p.order) +
                                       static_cast<std::uint64_t>(p.rank));
  Engines e(s);

  // Rewrite the core values on the existing pattern.
  std::vector<std::int64_t> index(static_cast<std::size_t>(s.core.order()));
  for (std::int64_t b = 0; b < s.list.size(); ++b) {
    const std::int32_t* beta = s.list.index(b);
    for (std::int64_t k = 0; k < s.core.order(); ++k) {
      index[static_cast<std::size_t>(k)] = beta[k];
    }
    s.core.at(index.data()) = 0.1 + 0.01 * static_cast<double>(b);
  }
  s.list.RefreshValues(s.core);
  for (DeltaEngine* engine : e.All()) engine->OnCoreValuesChanged();
  ExpectEnginesAgree(s, e);
}

TEST_P(DeltaEngineEquivalence, ConsistentAfterFactorUpdate) {
  const Param p = GetParam();
  ThreadCountGuard guard(p.threads);
  Ctx s = MakeCtx(p.order, p.rank, 63 * static_cast<std::uint64_t>(p.order) +
                                       static_cast<std::uint64_t>(p.rank));
  Engines e(s);

  const std::int64_t mode = s.x.order() - 1;
  Matrix old_factor = s.factors[static_cast<std::size_t>(mode)];
  Rng rng(99);
  s.factors[static_cast<std::size_t>(mode)].FillUniform(rng);
  for (DeltaEngine* engine : e.All()) engine->OnFactorUpdated(mode, old_factor);
  ExpectEnginesAgree(s, e);
}

INSTANTIATE_TEST_SUITE_P(
    OrdersRanksThreads, DeltaEngineEquivalence,
    ::testing::ValuesIn(AllParams()),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "order" + std::to_string(info.param.order) + "_rank" +
             std::to_string(info.param.rank) + "_threads" +
             std::to_string(info.param.threads);
    });

TEST(DeltaEngineTest, AdaptiveStaysWithinErrorBudget) {
  // The adaptive engine's documented bound: per (entry, mode), the summed
  // absolute δ error is at most ε · Σ_β |G_β| · max|A|^(N−1) — the skipped
  // groups' magnitude mass times the largest possible factor product.
  Ctx s = MakeCtx(3, 5, 23);
  const std::int64_t order = s.x.order();
  NaiveDeltaEngine oracle(s.list, s.factors);
  double total_mass = 0.0;
  for (std::int64_t b = 0; b < s.list.size(); ++b) {
    total_mass += std::fabs(s.list.value(b));
  }
  double max_factor = 0.0;
  for (const Matrix& factor : s.factors) {
    for (std::int64_t i = 0; i < factor.rows(); ++i) {
      for (std::int64_t j = 0; j < factor.cols(); ++j) {
        max_factor = std::max(max_factor, std::fabs(factor(i, j)));
      }
    }
  }
  for (const double eps : {0.05, 0.45}) {
    AdaptiveDeltaEngine adaptive(s.list, s.factors, nullptr, eps);
    const double bound =
        eps * total_mass * std::pow(max_factor, static_cast<double>(order - 1));
    for (std::int64_t entry = 0; entry < s.x.nnz(); ++entry) {
      for (std::int64_t mode = 0; mode < order; ++mode) {
        const std::int64_t rank = s.core.dim(mode);
        std::vector<double> exact(static_cast<std::size_t>(rank));
        std::vector<double> lossy(static_cast<std::size_t>(rank));
        oracle.ComputeDelta(entry, s.x.index(entry), mode, exact.data());
        adaptive.ComputeDelta(entry, s.x.index(entry), mode, lossy.data());
        double summed_error = 0.0;
        for (std::int64_t j = 0; j < rank; ++j) {
          summed_error += std::fabs(lossy[static_cast<std::size_t>(j)] -
                                    exact[static_cast<std::size_t>(j)]);
        }
        EXPECT_LE(summed_error, bound + 1e-12)
            << "eps " << eps << " entry " << entry << " mode " << mode;
      }
    }
  }
}

TEST(DeltaEngineTest, AdaptiveSkipsGroupsOnlyAtPositiveEpsilon) {
  Ctx s = MakeCtx(3, 5, 29);
  AdaptiveDeltaEngine exact(s.list, s.factors, nullptr, 0.0);
  AdaptiveDeltaEngine lossy(s.list, s.factors, nullptr, 0.45);
  std::int64_t exact_skips = 0;
  std::int64_t lossy_skips = 0;
  for (std::int64_t mode = 0; mode < s.x.order(); ++mode) {
    exact_skips += exact.SkippedGroups(mode);
    lossy_skips += lossy.SkippedGroups(mode);
  }
  // At ε = 0 only zero-weight (empty) groups may be flagged, and the core
  // list holds only nonzeros, so a non-degenerate core skips nothing.
  EXPECT_EQ(exact_skips, 0);
  EXPECT_GT(lossy_skips, 0);
  EXPECT_EQ(lossy.epsilon(), 0.45);
}

TEST(DeltaEngineTest, CatalogCoversEveryChoiceAndParsesNames) {
  // One row per enumerator, names round-trip, alias resolves, unknown
  // names are rejected — the CLI parser and --help both lean on this.
  EXPECT_EQ(DeltaEngineCatalog().size(), 6u);
  for (const DeltaEngineDescriptor& descriptor : DeltaEngineCatalog()) {
    const DeltaEngineDescriptor* found =
        FindDeltaEngineByName(descriptor.name);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->choice, descriptor.choice);
    EXPECT_STREQ(DeltaEngineChoiceName(descriptor.choice), descriptor.name);
  }
  const DeltaEngineDescriptor* alias = FindDeltaEngineByName("cached");
  ASSERT_NE(alias, nullptr);
  EXPECT_EQ(alias->choice, DeltaEngineChoice::kCached);
  EXPECT_EQ(FindDeltaEngineByName("warp"), nullptr);
}

TEST(DeltaEngineTest, ModeMajorDeltaIsBitIdenticalToNaive) {
  // The mode-major layout preserves the naive scan's per-group operation
  // order exactly, so δ must match bit-for-bit (not just within 1e-12).
  Ctx s = MakeCtx(3, 5, 5);
  Engines e(s);
  for (std::int64_t entry = 0; entry < s.x.nnz(); ++entry) {
    for (std::int64_t mode = 0; mode < 3; ++mode) {
      const std::int64_t rank = s.core.dim(mode);
      std::vector<double> expected(static_cast<std::size_t>(rank));
      std::vector<double> actual(static_cast<std::size_t>(rank));
      e.naive.ComputeDelta(entry, s.x.index(entry), mode, expected.data());
      e.mode_major.ComputeDelta(entry, s.x.index(entry), mode, actual.data());
      for (std::int64_t j = 0; j < rank; ++j) {
        EXPECT_EQ(actual[static_cast<std::size_t>(j)],
                  expected[static_cast<std::size_t>(j)]);
      }
    }
  }
}

TEST(DeltaEngineTest, ModeMajorChargesAndReleasesTracker) {
  Ctx s = MakeCtx(3, 5, 7);
  MemoryTracker tracker;
  {
    ModeMajorDeltaEngine engine(s.list, s.factors, &tracker);
    EXPECT_GT(tracker.current_bytes(), 0);
    EXPECT_EQ(tracker.current_bytes(), engine.ByteSize());

    // Removing entries shrinks the views and the charge with them.
    const std::int64_t before = tracker.current_bytes();
    std::vector<char> remove(static_cast<std::size_t>(s.list.size()), 0);
    remove[0] = 1;
    remove[1] = 1;
    s.list.Remove(remove, &s.core);
    engine.OnCoreEntriesRemoved(remove);
    EXPECT_LT(tracker.current_bytes(), before);
    EXPECT_EQ(tracker.current_bytes(), engine.ByteSize());
  }
  EXPECT_EQ(tracker.current_bytes(), 0);
}

TEST(DeltaEngineTest, ModeMajorBudgetTriggersOom) {
  Ctx s = MakeCtx(3, 5, 9);
  MemoryTracker tracker(16);  // tiny budget
  EXPECT_THROW(ModeMajorDeltaEngine(s.list, s.factors, &tracker),
               OutOfMemoryBudget);
}

TEST(DeltaEngineTest, FactoryResolvesAutoFromVariant) {
  PTuckerOptions options;
  EXPECT_EQ(ResolveDeltaEngineChoice(options), DeltaEngineChoice::kModeMajor);
  options.variant = PTuckerVariant::kCache;
  EXPECT_EQ(ResolveDeltaEngineChoice(options), DeltaEngineChoice::kCached);
  options.delta_engine = DeltaEngineChoice::kNaive;
  EXPECT_EQ(ResolveDeltaEngineChoice(options), DeltaEngineChoice::kNaive);

  Ctx s = MakeCtx(3, 2, 11);
  const auto engine = MakeDeltaEngine(DeltaEngineChoice::kModeMajor, s.x,
                                      s.list, s.factors, nullptr);
  EXPECT_EQ(engine->kind(), DeltaEngineChoice::kModeMajor);
  EXPECT_STREQ(engine->name(), "modemajor");
  EXPECT_EQ(engine->PreferredBatch(), 1);

  const auto adaptive =
      MakeDeltaEngine(DeltaEngineChoice::kAdaptive, s.x, s.list, s.factors,
                      nullptr, /*adaptive_epsilon=*/0.2);
  EXPECT_EQ(adaptive->kind(), DeltaEngineChoice::kAdaptive);
  EXPECT_STREQ(adaptive->name(), "adaptive");

  const auto tiled =
      MakeDeltaEngine(DeltaEngineChoice::kTiled, s.x, s.list, s.factors,
                      nullptr, /*adaptive_epsilon=*/0.0, /*tile_width=*/32);
  EXPECT_EQ(tiled->kind(), DeltaEngineChoice::kTiled);
  EXPECT_STREQ(tiled->name(), "tiled");
  EXPECT_EQ(tiled->PreferredBatch(), 32);

  // Wider-than-kMaxTile requests are clamped, not rejected.
  const TiledDeltaEngine clamped(s.list, s.factors, nullptr, 10000);
  EXPECT_EQ(clamped.PreferredBatch(), TiledDeltaEngine::kMaxTile);
}

TEST(DeltaEngineTest, TruncationKeepsEnginesConsistent) {
  // TruncateNoisyEntries must both score through the engine and notify it
  // of the removal, so the compacted views still match the oracle.
  Ctx s = MakeCtx(3, 5, 13);
  ModeMajorDeltaEngine engine(s.list, s.factors, nullptr);
  const std::int64_t removed =
      TruncateNoisyEntries(s.x, &s.core, &s.list, s.factors, 0.3, &engine);
  EXPECT_GT(removed, 0);
  NaiveDeltaEngine oracle(s.list, s.factors);
  for (std::int64_t entry = 0; entry < s.x.nnz(); ++entry) {
    for (std::int64_t mode = 0; mode < 3; ++mode) {
      const std::int64_t rank = s.core.dim(mode);
      std::vector<double> expected(static_cast<std::size_t>(rank));
      std::vector<double> actual(static_cast<std::size_t>(rank));
      oracle.ComputeDelta(entry, s.x.index(entry), mode, expected.data());
      engine.ComputeDelta(entry, s.x.index(entry), mode, actual.data());
      for (std::int64_t j = 0; j < rank; ++j) {
        EXPECT_NEAR(actual[static_cast<std::size_t>(j)],
                    expected[static_cast<std::size_t>(j)], 1e-12);
      }
    }
  }
}

TEST(DeltaEngineTest, BatchedMetricsMatchPerEntryBitForBit) {
  // The metric paths tile entries through ReconstructBatch; since the
  // tiled kernels are bit-identical to mode-major per entry and the
  // blocked deterministic sums add residuals in entry order, whole
  // metrics must be EXPECT_EQ across engines and tile widths — including
  // widths that exercise the packed SIMD kernel (B >= kSimdMinTile) and
  // partial trailing tiles (nnz is no multiple of any width here).
  Ctx s = MakeCtx(3, 5, 37);
  ModeMajorDeltaEngine mode_major(s.list, s.factors, nullptr);
  const double expected_error = ReconstructionError(s.x, mode_major);
  const double expected_rmse = TestRmse(s.x, mode_major);
  const std::vector<double> expected_pred = PredictEntries(s.x, mode_major);
  for (const std::int64_t tile :
       {std::int64_t{1}, std::int64_t{4}, std::int64_t{32},
        std::int64_t{33}}) {
    const TiledDeltaEngine tiled(s.list, s.factors, nullptr, tile);
    EXPECT_EQ(ReconstructionError(s.x, tiled), expected_error)
        << "tile " << tile;
    EXPECT_EQ(TestRmse(s.x, tiled), expected_rmse) << "tile " << tile;
    const std::vector<double> pred = PredictEntries(s.x, tiled);
    ASSERT_EQ(pred.size(), expected_pred.size());
    for (std::size_t i = 0; i < pred.size(); ++i) {
      EXPECT_EQ(pred[i], expected_pred[i]) << "tile " << tile << " entry "
                                           << i;
    }
  }
  const AdaptiveDeltaEngine adaptive0(s.list, s.factors, nullptr, 0.0);
  EXPECT_EQ(ReconstructionError(s.x, adaptive0), expected_error);
}

TEST(DeltaEngineTest, BatchedPartialErrorsMatchPerEntryBitForBit) {
  // The truncation scorer tiles entries through ProductsBatch; the scores
  // (and therefore the removal set) must be EXPECT_EQ across engines and
  // tile widths, and the per-thread tile scratch must be charged to the
  // tracker only for the duration of the scan.
  Ctx s = MakeCtx(4, 5, 41);
  ModeMajorDeltaEngine mode_major(s.list, s.factors, nullptr);
  const std::vector<double> expected =
      ComputePartialErrors(s.x, s.list, s.factors, &mode_major);
  for (const std::int64_t tile :
       {std::int64_t{1}, std::int64_t{4}, std::int64_t{32}}) {
    const TiledDeltaEngine tiled(s.list, s.factors, nullptr, tile);
    MemoryTracker tracker;
    const std::vector<double> scores =
        ComputePartialErrors(s.x, s.list, s.factors, &tiled, &tracker);
    ASSERT_EQ(scores.size(), expected.size());
    for (std::size_t b = 0; b < scores.size(); ++b) {
      EXPECT_EQ(scores[b], expected[b]) << "tile " << tile << " core " << b;
    }
    EXPECT_GT(tracker.peak_bytes(), 0) << "tile " << tile;
    EXPECT_EQ(tracker.current_bytes(), 0) << "tile " << tile;
  }
}

// --- Solver-level guarantees across engines. ---

PTuckerResult Solve(const SparseTensor& x, DeltaEngineChoice engine,
                    PTuckerVariant variant = PTuckerVariant::kMemory,
                    bool update_core = false, double adaptive_epsilon = 0.0,
                    std::int64_t tile_width = kDefaultTileWidth) {
  PTuckerOptions options;
  options.core_dims = {3, 3, 3};
  options.max_iterations = 5;
  options.tolerance = 0.0;
  options.delta_engine = engine;
  options.variant = variant;
  options.update_core = update_core;
  options.adaptive_epsilon = adaptive_epsilon;
  options.tile_width = tile_width;
  return PTuckerDecompose(x, options);
}

class DeltaEngineTrajectories : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(21);
    x_ = UniformSparseTensor({14, 12, 10}, 400, rng);
  }
  SparseTensor x_;
};

TEST_F(DeltaEngineTrajectories, AllEnginesProduceTheSameTrajectory) {
  const PTuckerResult naive = Solve(x_, DeltaEngineChoice::kNaive);
  const PTuckerResult mode_major = Solve(x_, DeltaEngineChoice::kModeMajor);
  const PTuckerResult cached = Solve(x_, DeltaEngineChoice::kCached);
  ASSERT_EQ(naive.iterations.size(), mode_major.iterations.size());
  ASSERT_EQ(naive.iterations.size(), cached.iterations.size());
  for (std::size_t i = 0; i < naive.iterations.size(); ++i) {
    EXPECT_NEAR(mode_major.iterations[i].error, naive.iterations[i].error,
                1e-7)
        << "iter " << i;
    EXPECT_NEAR(cached.iterations[i].error, naive.iterations[i].error, 1e-7)
        << "iter " << i;
  }
}

TEST_F(DeltaEngineTrajectories, RegroupedEnginesMatchModeMajorBitForBit) {
  // Adaptive at ε = 0 and tiled at any width compute bit-identical δ and
  // consume it in the same entry order, so whole solver trajectories —
  // not just single kernels — must match mode-major exactly.
  const PTuckerResult mode_major = Solve(x_, DeltaEngineChoice::kModeMajor);
  const PTuckerResult adaptive =
      Solve(x_, DeltaEngineChoice::kAdaptive, PTuckerVariant::kMemory, false,
            /*adaptive_epsilon=*/0.0);
  for (const std::int64_t tile : {std::int64_t{1}, std::int64_t{4},
                                  std::int64_t{32}}) {
    const PTuckerResult tiled =
        Solve(x_, DeltaEngineChoice::kTiled, PTuckerVariant::kMemory, false,
              0.0, tile);
    ASSERT_EQ(tiled.iterations.size(), mode_major.iterations.size());
    for (std::size_t i = 0; i < tiled.iterations.size(); ++i) {
      EXPECT_EQ(tiled.iterations[i].error, mode_major.iterations[i].error)
          << "tile " << tile << " iter " << i;
    }
  }
  ASSERT_EQ(adaptive.iterations.size(), mode_major.iterations.size());
  for (std::size_t i = 0; i < adaptive.iterations.size(); ++i) {
    EXPECT_EQ(adaptive.iterations[i].error, mode_major.iterations[i].error)
        << "iter " << i;
  }
}

TEST_F(DeltaEngineTrajectories, TiledTruncationTrajectoriesMatchModeMajor) {
  // Under P-TUCKER-APPROX the truncation scorer runs through
  // ProductsBatch and the error metric through ReconstructBatch, both
  // tiled. The scores, the removal sets, and the error trajectory must
  // stay bit-identical to the mode-major per-entry flow at every width.
  const PTuckerResult mode_major =
      Solve(x_, DeltaEngineChoice::kModeMajor, PTuckerVariant::kApprox);
  for (const std::int64_t tile :
       {std::int64_t{1}, std::int64_t{4}, std::int64_t{32}}) {
    const PTuckerResult tiled = Solve(x_, DeltaEngineChoice::kTiled,
                                      PTuckerVariant::kApprox, false, 0.0,
                                      tile);
    ASSERT_EQ(tiled.iterations.size(), mode_major.iterations.size());
    for (std::size_t i = 0; i < tiled.iterations.size(); ++i) {
      EXPECT_EQ(tiled.iterations[i].error, mode_major.iterations[i].error)
          << "tile " << tile << " iter " << i;
      EXPECT_EQ(tiled.iterations[i].core_nnz,
                mode_major.iterations[i].core_nnz)
          << "tile " << tile << " iter " << i;
    }
    EXPECT_EQ(tiled.final_error, mode_major.final_error) << "tile " << tile;
  }
}

TEST_F(DeltaEngineTrajectories, AdaptiveWithBudgetTradesBoundedAccuracy) {
  // ε > 0 degrades δ but the solve must stay well-behaved: same iteration
  // count, finite errors, and a final model in the same quality ballpark
  // as the exact engine (the documented speed-for-accuracy trade).
  const PTuckerResult exact = Solve(x_, DeltaEngineChoice::kModeMajor);
  const PTuckerResult lossy =
      Solve(x_, DeltaEngineChoice::kAdaptive, PTuckerVariant::kMemory, false,
            /*adaptive_epsilon=*/0.4);
  ASSERT_EQ(lossy.iterations.size(), exact.iterations.size());
  for (std::size_t i = 0; i < lossy.iterations.size(); ++i) {
    EXPECT_TRUE(std::isfinite(lossy.iterations[i].error)) << "iter " << i;
  }
  EXPECT_GT(lossy.final_error, 0.0);
  EXPECT_LE(lossy.final_error, 1.5 * exact.final_error);
}

TEST_F(DeltaEngineTrajectories, EachEngineIsRunToRunDeterministic) {
  for (const DeltaEngineChoice choice :
       {DeltaEngineChoice::kNaive, DeltaEngineChoice::kModeMajor,
        DeltaEngineChoice::kCached, DeltaEngineChoice::kAdaptive,
        DeltaEngineChoice::kTiled}) {
    // Give the lossy/batched engines non-trivial knobs so determinism is
    // exercised on the interesting code paths.
    const double eps = choice == DeltaEngineChoice::kAdaptive ? 0.4 : 0.0;
    const PTuckerResult a =
        Solve(x_, choice, PTuckerVariant::kMemory, false, eps, 4);
    const PTuckerResult b =
        Solve(x_, choice, PTuckerVariant::kMemory, false, eps, 4);
    ASSERT_EQ(a.iterations.size(), b.iterations.size());
    for (std::size_t i = 0; i < a.iterations.size(); ++i) {
      EXPECT_EQ(a.iterations[i].error, b.iterations[i].error)
          << "engine " << static_cast<int>(choice) << " iter " << i;
    }
  }
}

TEST_F(DeltaEngineTrajectories, EnginesAgreeUnderApproxTruncation) {
  const PTuckerResult naive =
      Solve(x_, DeltaEngineChoice::kNaive, PTuckerVariant::kApprox);
  const PTuckerResult mode_major =
      Solve(x_, DeltaEngineChoice::kModeMajor, PTuckerVariant::kApprox);
  ASSERT_EQ(naive.iterations.size(), mode_major.iterations.size());
  for (std::size_t i = 0; i < naive.iterations.size(); ++i) {
    EXPECT_NEAR(mode_major.iterations[i].error, naive.iterations[i].error,
                1e-7);
    EXPECT_EQ(mode_major.iterations[i].core_nnz, naive.iterations[i].core_nnz);
  }
}

TEST_F(DeltaEngineTrajectories, EnginesAgreeUnderCoreUpdate) {
  const PTuckerResult naive = Solve(x_, DeltaEngineChoice::kNaive,
                                    PTuckerVariant::kMemory, true);
  const PTuckerResult mode_major = Solve(x_, DeltaEngineChoice::kModeMajor,
                                         PTuckerVariant::kMemory, true);
  ASSERT_EQ(naive.iterations.size(), mode_major.iterations.size());
  for (std::size_t i = 0; i < naive.iterations.size(); ++i) {
    EXPECT_NEAR(mode_major.iterations[i].error, naive.iterations[i].error,
                1e-6);
  }
}

}  // namespace
}  // namespace ptucker
