// Equivalence and maintenance tests for the pluggable δ-engines: the
// mode-major and cached engines must agree with the naive entry-major
// oracle on every kernel, stay consistent through core-list mutations
// (Remove, RefreshValues) and factor updates, and hold across thread
// counts. Also pins the solver-level guarantees: all engines produce the
// same trajectories, each bit-reproducibly.
#include "core/delta_engine.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>
#include <omp.h>

#include "core/ptucker.h"
#include "core/truncation.h"
#include "data/synthetic.h"
#include "util/random.h"

namespace ptucker {
namespace {

// Scopes omp_set_num_threads so a test can pin the team size.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int threads) : saved_(omp_get_max_threads()) {
    omp_set_num_threads(threads);
  }
  ~ThreadCountGuard() { omp_set_num_threads(saved_); }

 private:
  int saved_;
};

struct Ctx {
  SparseTensor x;
  DenseTensor core;
  CoreEntryList list;
  std::vector<Matrix> factors;
};

// order-many tensor dims / uniform core rank, with ~30% of the core
// zeroed so the entry list is genuinely sparse and groups are ragged.
Ctx MakeCtx(std::int64_t order, std::int64_t rank, std::uint64_t seed) {
  Rng rng(seed);
  Ctx s;
  std::vector<std::int64_t> dims;
  std::vector<std::int64_t> ranks;
  for (std::int64_t k = 0; k < order; ++k) {
    dims.push_back(12 - k);
    ranks.push_back(rank);
  }
  s.x = UniformSparseTensor(dims, 150, rng);
  s.core = DenseTensor(ranks);
  s.core.FillUniform(rng);
  for (std::int64_t linear = 0; linear < s.core.size(); ++linear) {
    if (rng.Uniform() < 0.3) s.core[linear] = 0.0;
  }
  if (s.core.CountNonZeros() == 0) s.core[0] = 0.5;
  s.list = CoreEntryList(s.core);
  for (std::int64_t k = 0; k < order; ++k) {
    Matrix factor(s.x.dim(k), rank);
    factor.FillUniform(rng);
    // Sprinkle exact zeros so the group-level skip and the cache's
    // division fallback both execute.
    for (std::int64_t i = 0; i < factor.rows(); ++i) {
      for (std::int64_t j = 0; j < factor.cols(); ++j) {
        if (rng.Uniform() < 0.1) factor(i, j) = 0.0;
      }
    }
    s.factors.push_back(std::move(factor));
  }
  return s;
}

struct Engines {
  NaiveDeltaEngine naive;
  ModeMajorDeltaEngine mode_major;
  CachedDeltaEngine cached;

  explicit Engines(const Ctx& s)
      : naive(s.list, s.factors),
        mode_major(s.list, s.factors, nullptr),
        cached(s.x, s.list, s.factors, nullptr) {}
};

// Asserts every engine kernel agrees with the naive oracle within 1e-12
// over all observed entries.
void ExpectEnginesAgree(const Ctx& s, const Engines& e) {
  const std::int64_t order = s.x.order();
  const std::int64_t n_core = s.list.size();
  std::vector<double> g(static_cast<std::size_t>(n_core));
  for (std::int64_t b = 0; b < n_core; ++b) {
    g[static_cast<std::size_t>(b)] = 0.25 + 0.5 * static_cast<double>(b % 3);
  }
  for (std::int64_t entry = 0; entry < s.x.nnz(); ++entry) {
    const std::int64_t* idx = s.x.index(entry);
    for (std::int64_t mode = 0; mode < order; ++mode) {
      const std::int64_t rank = s.core.dim(mode);
      std::vector<double> expected(static_cast<std::size_t>(rank));
      std::vector<double> actual(static_cast<std::size_t>(rank));
      e.naive.ComputeDelta(entry, idx, mode, expected.data());
      e.mode_major.ComputeDelta(entry, idx, mode, actual.data());
      for (std::int64_t j = 0; j < rank; ++j) {
        EXPECT_NEAR(actual[static_cast<std::size_t>(j)],
                    expected[static_cast<std::size_t>(j)], 1e-12)
            << "modemajor delta, entry " << entry << " mode " << mode;
      }
      e.cached.ComputeDelta(entry, idx, mode, actual.data());
      for (std::int64_t j = 0; j < rank; ++j) {
        EXPECT_NEAR(actual[static_cast<std::size_t>(j)],
                    expected[static_cast<std::size_t>(j)], 1e-12)
            << "cached delta, entry " << entry << " mode " << mode;
      }
      // The cached engine must also handle unknown coordinates.
      e.cached.ComputeDelta(-1, idx, mode, actual.data());
      for (std::int64_t j = 0; j < rank; ++j) {
        EXPECT_NEAR(actual[static_cast<std::size_t>(j)],
                    expected[static_cast<std::size_t>(j)], 1e-12)
            << "cached fallback delta, entry " << entry << " mode " << mode;
      }
    }

    const double expected_hat = e.naive.Reconstruct(idx);
    EXPECT_NEAR(e.mode_major.Reconstruct(idx), expected_hat, 1e-12);
    EXPECT_NEAR(e.cached.Reconstruct(idx), expected_hat, 1e-12);

    std::vector<double> expected_products(static_cast<std::size_t>(n_core));
    std::vector<double> actual_products(static_cast<std::size_t>(n_core));
    e.naive.ComputeProducts(idx, expected_products.data());
    e.mode_major.ComputeProducts(idx, actual_products.data());
    for (std::int64_t b = 0; b < n_core; ++b) {
      EXPECT_NEAR(actual_products[static_cast<std::size_t>(b)],
                  expected_products[static_cast<std::size_t>(b)], 1e-12);
    }

    EXPECT_NEAR(e.mode_major.DesignDot(idx, g.data()),
                e.naive.DesignDot(idx, g.data()), 1e-12);

    std::vector<double> expected_z(static_cast<std::size_t>(n_core), 0.5);
    std::vector<double> actual_z(static_cast<std::size_t>(n_core), 0.5);
    e.naive.DesignAccumulate(idx, 1.5, expected_z.data());
    e.mode_major.DesignAccumulate(idx, 1.5, actual_z.data());
    for (std::int64_t b = 0; b < n_core; ++b) {
      EXPECT_NEAR(actual_z[static_cast<std::size_t>(b)],
                  expected_z[static_cast<std::size_t>(b)], 1e-12);
    }
  }
}

struct Param {
  std::int64_t order;
  std::int64_t rank;
  int threads;
};

std::vector<Param> AllParams() {
  std::vector<Param> params;
  for (const std::int64_t order : {3, 4}) {
    for (const std::int64_t rank : {2, 5}) {
      for (const int threads : {1, 4, 13}) {
        params.push_back({order, rank, threads});
      }
    }
  }
  return params;
}

class DeltaEngineEquivalence : public ::testing::TestWithParam<Param> {};

TEST_P(DeltaEngineEquivalence, AllKernelsMatchNaive) {
  const Param p = GetParam();
  ThreadCountGuard guard(p.threads);
  Ctx s = MakeCtx(p.order, p.rank, 17 * static_cast<std::uint64_t>(p.order) +
                                       static_cast<std::uint64_t>(p.rank));
  Engines e(s);
  ExpectEnginesAgree(s, e);
}

TEST_P(DeltaEngineEquivalence, ConsistentAfterRemove) {
  const Param p = GetParam();
  ThreadCountGuard guard(p.threads);
  Ctx s = MakeCtx(p.order, p.rank, 31 * static_cast<std::uint64_t>(p.order) +
                                       static_cast<std::uint64_t>(p.rank));
  Engines e(s);

  // Flag ~every 4th entry (always keeping at least one).
  std::vector<char> remove(static_cast<std::size_t>(s.list.size()), 0);
  for (std::int64_t b = 0; b + 1 < s.list.size(); b += 4) {
    remove[static_cast<std::size_t>(b)] = 1;
  }
  s.list.Remove(remove, &s.core);
  e.naive.OnCoreEntriesRemoved(remove);
  e.mode_major.OnCoreEntriesRemoved(remove);
  e.cached.OnCoreEntriesRemoved(remove);
  ExpectEnginesAgree(s, e);
}

TEST_P(DeltaEngineEquivalence, ConsistentAfterRefreshValues) {
  const Param p = GetParam();
  ThreadCountGuard guard(p.threads);
  Ctx s = MakeCtx(p.order, p.rank, 47 * static_cast<std::uint64_t>(p.order) +
                                       static_cast<std::uint64_t>(p.rank));
  Engines e(s);

  // Rewrite the core values on the existing pattern.
  std::vector<std::int64_t> index(static_cast<std::size_t>(s.core.order()));
  for (std::int64_t b = 0; b < s.list.size(); ++b) {
    const std::int32_t* beta = s.list.index(b);
    for (std::int64_t k = 0; k < s.core.order(); ++k) {
      index[static_cast<std::size_t>(k)] = beta[k];
    }
    s.core.at(index.data()) = 0.1 + 0.01 * static_cast<double>(b);
  }
  s.list.RefreshValues(s.core);
  e.naive.OnCoreValuesChanged();
  e.mode_major.OnCoreValuesChanged();
  e.cached.OnCoreValuesChanged();
  ExpectEnginesAgree(s, e);
}

TEST_P(DeltaEngineEquivalence, ConsistentAfterFactorUpdate) {
  const Param p = GetParam();
  ThreadCountGuard guard(p.threads);
  Ctx s = MakeCtx(p.order, p.rank, 63 * static_cast<std::uint64_t>(p.order) +
                                       static_cast<std::uint64_t>(p.rank));
  Engines e(s);

  const std::int64_t mode = s.x.order() - 1;
  Matrix old_factor = s.factors[static_cast<std::size_t>(mode)];
  Rng rng(99);
  s.factors[static_cast<std::size_t>(mode)].FillUniform(rng);
  e.naive.OnFactorUpdated(mode, old_factor);
  e.mode_major.OnFactorUpdated(mode, old_factor);
  e.cached.OnFactorUpdated(mode, old_factor);
  ExpectEnginesAgree(s, e);
}

INSTANTIATE_TEST_SUITE_P(
    OrdersRanksThreads, DeltaEngineEquivalence,
    ::testing::ValuesIn(AllParams()),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "order" + std::to_string(info.param.order) + "_rank" +
             std::to_string(info.param.rank) + "_threads" +
             std::to_string(info.param.threads);
    });

TEST(DeltaEngineTest, ModeMajorDeltaIsBitIdenticalToNaive) {
  // The mode-major layout preserves the naive scan's per-group operation
  // order exactly, so δ must match bit-for-bit (not just within 1e-12).
  Ctx s = MakeCtx(3, 5, 5);
  Engines e(s);
  for (std::int64_t entry = 0; entry < s.x.nnz(); ++entry) {
    for (std::int64_t mode = 0; mode < 3; ++mode) {
      const std::int64_t rank = s.core.dim(mode);
      std::vector<double> expected(static_cast<std::size_t>(rank));
      std::vector<double> actual(static_cast<std::size_t>(rank));
      e.naive.ComputeDelta(entry, s.x.index(entry), mode, expected.data());
      e.mode_major.ComputeDelta(entry, s.x.index(entry), mode, actual.data());
      for (std::int64_t j = 0; j < rank; ++j) {
        EXPECT_EQ(actual[static_cast<std::size_t>(j)],
                  expected[static_cast<std::size_t>(j)]);
      }
    }
  }
}

TEST(DeltaEngineTest, ModeMajorChargesAndReleasesTracker) {
  Ctx s = MakeCtx(3, 5, 7);
  MemoryTracker tracker;
  {
    ModeMajorDeltaEngine engine(s.list, s.factors, &tracker);
    EXPECT_GT(tracker.current_bytes(), 0);
    EXPECT_EQ(tracker.current_bytes(), engine.ByteSize());

    // Removing entries shrinks the views and the charge with them.
    const std::int64_t before = tracker.current_bytes();
    std::vector<char> remove(static_cast<std::size_t>(s.list.size()), 0);
    remove[0] = 1;
    remove[1] = 1;
    s.list.Remove(remove, &s.core);
    engine.OnCoreEntriesRemoved(remove);
    EXPECT_LT(tracker.current_bytes(), before);
    EXPECT_EQ(tracker.current_bytes(), engine.ByteSize());
  }
  EXPECT_EQ(tracker.current_bytes(), 0);
}

TEST(DeltaEngineTest, ModeMajorBudgetTriggersOom) {
  Ctx s = MakeCtx(3, 5, 9);
  MemoryTracker tracker(16);  // tiny budget
  EXPECT_THROW(ModeMajorDeltaEngine(s.list, s.factors, &tracker),
               OutOfMemoryBudget);
}

TEST(DeltaEngineTest, FactoryResolvesAutoFromVariant) {
  PTuckerOptions options;
  EXPECT_EQ(ResolveDeltaEngineChoice(options), DeltaEngineChoice::kModeMajor);
  options.variant = PTuckerVariant::kCache;
  EXPECT_EQ(ResolveDeltaEngineChoice(options), DeltaEngineChoice::kCached);
  options.delta_engine = DeltaEngineChoice::kNaive;
  EXPECT_EQ(ResolveDeltaEngineChoice(options), DeltaEngineChoice::kNaive);

  Ctx s = MakeCtx(3, 2, 11);
  const auto engine = MakeDeltaEngine(DeltaEngineChoice::kModeMajor, s.x,
                                      s.list, s.factors, nullptr);
  EXPECT_EQ(engine->kind(), DeltaEngineChoice::kModeMajor);
  EXPECT_STREQ(engine->name(), "modemajor");
}

TEST(DeltaEngineTest, TruncationKeepsEnginesConsistent) {
  // TruncateNoisyEntries must both score through the engine and notify it
  // of the removal, so the compacted views still match the oracle.
  Ctx s = MakeCtx(3, 5, 13);
  ModeMajorDeltaEngine engine(s.list, s.factors, nullptr);
  const std::int64_t removed =
      TruncateNoisyEntries(s.x, &s.core, &s.list, s.factors, 0.3, &engine);
  EXPECT_GT(removed, 0);
  NaiveDeltaEngine oracle(s.list, s.factors);
  for (std::int64_t entry = 0; entry < s.x.nnz(); ++entry) {
    for (std::int64_t mode = 0; mode < 3; ++mode) {
      const std::int64_t rank = s.core.dim(mode);
      std::vector<double> expected(static_cast<std::size_t>(rank));
      std::vector<double> actual(static_cast<std::size_t>(rank));
      oracle.ComputeDelta(entry, s.x.index(entry), mode, expected.data());
      engine.ComputeDelta(entry, s.x.index(entry), mode, actual.data());
      for (std::int64_t j = 0; j < rank; ++j) {
        EXPECT_NEAR(actual[static_cast<std::size_t>(j)],
                    expected[static_cast<std::size_t>(j)], 1e-12);
      }
    }
  }
}

// --- Solver-level guarantees across engines. ---

PTuckerResult Solve(const SparseTensor& x, DeltaEngineChoice engine,
                    PTuckerVariant variant = PTuckerVariant::kMemory,
                    bool update_core = false) {
  PTuckerOptions options;
  options.core_dims = {3, 3, 3};
  options.max_iterations = 5;
  options.tolerance = 0.0;
  options.delta_engine = engine;
  options.variant = variant;
  options.update_core = update_core;
  return PTuckerDecompose(x, options);
}

class DeltaEngineTrajectories : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(21);
    x_ = UniformSparseTensor({14, 12, 10}, 400, rng);
  }
  SparseTensor x_;
};

TEST_F(DeltaEngineTrajectories, AllEnginesProduceTheSameTrajectory) {
  const PTuckerResult naive = Solve(x_, DeltaEngineChoice::kNaive);
  const PTuckerResult mode_major = Solve(x_, DeltaEngineChoice::kModeMajor);
  const PTuckerResult cached = Solve(x_, DeltaEngineChoice::kCached);
  ASSERT_EQ(naive.iterations.size(), mode_major.iterations.size());
  ASSERT_EQ(naive.iterations.size(), cached.iterations.size());
  for (std::size_t i = 0; i < naive.iterations.size(); ++i) {
    EXPECT_NEAR(mode_major.iterations[i].error, naive.iterations[i].error,
                1e-7)
        << "iter " << i;
    EXPECT_NEAR(cached.iterations[i].error, naive.iterations[i].error, 1e-7)
        << "iter " << i;
  }
}

TEST_F(DeltaEngineTrajectories, EachEngineIsRunToRunDeterministic) {
  for (const DeltaEngineChoice choice :
       {DeltaEngineChoice::kNaive, DeltaEngineChoice::kModeMajor,
        DeltaEngineChoice::kCached}) {
    const PTuckerResult a = Solve(x_, choice);
    const PTuckerResult b = Solve(x_, choice);
    ASSERT_EQ(a.iterations.size(), b.iterations.size());
    for (std::size_t i = 0; i < a.iterations.size(); ++i) {
      EXPECT_EQ(a.iterations[i].error, b.iterations[i].error)
          << "engine " << static_cast<int>(choice) << " iter " << i;
    }
  }
}

TEST_F(DeltaEngineTrajectories, EnginesAgreeUnderApproxTruncation) {
  const PTuckerResult naive =
      Solve(x_, DeltaEngineChoice::kNaive, PTuckerVariant::kApprox);
  const PTuckerResult mode_major =
      Solve(x_, DeltaEngineChoice::kModeMajor, PTuckerVariant::kApprox);
  ASSERT_EQ(naive.iterations.size(), mode_major.iterations.size());
  for (std::size_t i = 0; i < naive.iterations.size(); ++i) {
    EXPECT_NEAR(mode_major.iterations[i].error, naive.iterations[i].error,
                1e-7);
    EXPECT_EQ(mode_major.iterations[i].core_nnz, naive.iterations[i].core_nnz);
  }
}

TEST_F(DeltaEngineTrajectories, EnginesAgreeUnderCoreUpdate) {
  const PTuckerResult naive = Solve(x_, DeltaEngineChoice::kNaive,
                                    PTuckerVariant::kMemory, true);
  const PTuckerResult mode_major = Solve(x_, DeltaEngineChoice::kModeMajor,
                                         PTuckerVariant::kMemory, true);
  ASSERT_EQ(naive.iterations.size(), mode_major.iterations.size());
  for (std::size_t i = 0; i < naive.iterations.size(); ++i) {
    EXPECT_NEAR(mode_major.iterations[i].error, naive.iterations[i].error,
                1e-6);
  }
}

}  // namespace
}  // namespace ptucker
