#include "core/truncation.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/reconstruction.h"
#include "data/synthetic.h"
#include "util/random.h"

namespace ptucker {
namespace {

struct Ctx {
  SparseTensor x;
  DenseTensor core;
  CoreEntryList list;
  std::vector<Matrix> factors;
};

Ctx MakeCtx(std::uint64_t seed) {
  Rng rng(seed);
  Ctx s;
  s.x = UniformSparseTensor({6, 5, 4}, 50, rng);
  s.core = DenseTensor({2, 2, 2});
  s.core.FillUniform(rng);
  s.list = CoreEntryList(s.core);
  for (std::int64_t k = 0; k < 3; ++k) {
    Matrix factor(s.x.dim(k), s.core.dim(k));
    factor.FillUniform(rng);
    s.factors.push_back(std::move(factor));
  }
  return s;
}

double SquaredError(const SparseTensor& x, const DenseTensor& core,
                    const std::vector<Matrix>& factors) {
  const double err = ReconstructionError(x, core, factors);
  return err * err;
}

TEST(PartialErrorsTest, MatchEq13BruteForce) {
  // R(β) must equal err²(with β) − err²(without β) computed by actually
  // deleting the entry — the definition behind Eq. 13.
  Ctx s = MakeCtx(1);
  const auto partial = ComputePartialErrors(s.x, s.list, s.factors);
  ASSERT_EQ(static_cast<std::int64_t>(partial.size()), s.list.size());

  const double with_all = SquaredError(s.x, s.core, s.factors);
  std::vector<std::int64_t> beta(3);
  for (std::int64_t b = 0; b < s.list.size(); ++b) {
    DenseTensor without = s.core;
    for (int k = 0; k < 3; ++k) {
      beta[static_cast<std::size_t>(k)] = s.list.index(b)[k];
    }
    without.at(beta.data()) = 0.0;
    const double err_without = SquaredError(s.x, without, s.factors);
    EXPECT_NEAR(partial[static_cast<std::size_t>(b)],
                with_all - err_without, 1e-8)
        << "core entry " << b;
  }
}

TEST(TruncationTest, RemovesRequestedFraction) {
  Ctx s = MakeCtx(2);
  ASSERT_EQ(s.list.size(), 8);
  const std::int64_t removed =
      TruncateNoisyEntries(s.x, &s.core, &s.list, s.factors, 0.25);
  EXPECT_EQ(removed, 2);
  EXPECT_EQ(s.list.size(), 6);
  EXPECT_EQ(s.core.CountNonZeros(), 6);
}

TEST(TruncationTest, ZeroRateIsNoop) {
  Ctx s = MakeCtx(3);
  EXPECT_EQ(TruncateNoisyEntries(s.x, &s.core, &s.list, s.factors, 0.0), 0);
  EXPECT_EQ(s.list.size(), 8);
}

TEST(TruncationTest, NeverEmptiesCore) {
  Ctx s = MakeCtx(4);
  for (int round = 0; round < 50; ++round) {
    TruncateNoisyEntries(s.x, &s.core, &s.list, s.factors, 0.9);
  }
  EXPECT_GE(s.list.size(), 1);
}

TEST(TruncationTest, RemovesTheNoisiestEntries) {
  Ctx s = MakeCtx(5);
  const auto partial = ComputePartialErrors(s.x, s.list, s.factors);
  // Find the two largest R(β).
  std::vector<double> sorted = partial;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  const double cutoff = sorted[1];

  std::vector<std::vector<std::int32_t>> expected_removed;
  for (std::int64_t b = 0; b < s.list.size(); ++b) {
    if (partial[static_cast<std::size_t>(b)] >= cutoff) {
      expected_removed.push_back(
          {s.list.index(b)[0], s.list.index(b)[1], s.list.index(b)[2]});
    }
  }
  TruncateNoisyEntries(s.x, &s.core, &s.list, s.factors, 0.25);
  // The removed entries' core positions must now be zero.
  std::vector<std::int64_t> beta(3);
  for (const auto& idx : expected_removed) {
    for (int k = 0; k < 3; ++k) beta[static_cast<std::size_t>(k)] = idx[k];
    EXPECT_EQ(s.core.at(beta.data()), 0.0);
  }
}

TEST(TruncationTest, RemovingPositiveRBetaReducesError) {
  // By definition R(β) > 0 means the fit improves without β; removing all
  // positive-R entries must therefore not increase the error.
  Ctx s = MakeCtx(6);
  const auto partial = ComputePartialErrors(s.x, s.list, s.factors);
  double positive_fraction = 0.0;
  for (double r : partial) positive_fraction += (r > 0.0) ? 1.0 : 0.0;
  positive_fraction /= static_cast<double>(partial.size());
  if (positive_fraction == 0.0) GTEST_SKIP() << "no noisy entries drawn";

  const double before = ReconstructionError(s.x, s.core, s.factors);
  // Remove exactly the largest-R entry (rate chosen to drop 1 of 8).
  TruncateNoisyEntries(s.x, &s.core, &s.list, s.factors, 0.125);
  const double after = ReconstructionError(s.x, s.core, s.factors);
  const double max_r = *std::max_element(partial.begin(), partial.end());
  if (max_r > 0.0) {
    EXPECT_LE(after, before + 1e-10);
  }
}

}  // namespace
}  // namespace ptucker
