// The shared row-subset entry point (core/row_update.h) that both the
// ALS sweep and the streaming ingest pipeline solve through. Pins the
// contracts the pipeline's determinism rests on: rows == nullptr is
// bit-identical to passing every row explicitly, a subset call touches
// only the listed rows, results are independent of thread count and
// scheduling, and the full-sweep path is exactly what PTuckerDecompose
// runs (the golden-trajectory tests in ptucker_test.cc cover that end
// to end).
#include "core/row_update.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>
#include <omp.h>

#include "core/delta_engine.h"
#include "data/synthetic.h"
#include "tensor/dense_tensor.h"
#include "util/random.h"

namespace ptucker {
namespace {

class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int threads) : saved_(omp_get_max_threads()) {
    omp_set_num_threads(threads);
  }
  ~ThreadCountGuard() { omp_set_num_threads(saved_); }

 private:
  int saved_;
};

struct Ctx {
  SparseTensor x;
  DenseTensor core;
  std::unique_ptr<CoreEntryList> list;
  std::vector<Matrix> factors;
};

Ctx MakeCtx(std::uint64_t seed) {
  Rng rng(seed);
  Ctx s;
  s.x = UniformSparseTensor({14, 11, 9}, 180, rng);
  s.x.BuildModeIndex();
  s.core = DenseTensor({4, 3, 3});
  s.core.FillUniform(rng);
  s.list = std::make_unique<CoreEntryList>(s.core);
  for (std::int64_t n = 0; n < 3; ++n) {
    Matrix factor(s.x.dim(n), s.core.dim(n));
    factor.FillUniform(rng);
    s.factors.push_back(std::move(factor));
  }
  return s;
}

void ExpectSameMatrix(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::int64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]) << "flat index " << i;
  }
}

TEST(RowUpdateTest, NullRowsEqualsExplicitAllRows) {
  for (const DeltaEngineChoice choice :
       {DeltaEngineChoice::kNaive, DeltaEngineChoice::kModeMajor,
        DeltaEngineChoice::kCached, DeltaEngineChoice::kAdaptive,
        DeltaEngineChoice::kTiled}) {
    Ctx ctx = MakeCtx(11);
    const auto engine = MakeDeltaEngine(choice, ctx.x, *ctx.list,
                                        ctx.factors, nullptr);
    for (std::int64_t mode = 0; mode < 3; ++mode) {
      Matrix full = ctx.factors[static_cast<std::size_t>(mode)];
      Matrix listed = full;
      std::vector<std::int64_t> all(
          static_cast<std::size_t>(ctx.x.dim(mode)));
      std::iota(all.begin(), all.end(), 0);
      RowUpdateOptions options;
      {
        OmpEnvironmentGuard omp(1, Scheduling::kDynamic);
        UpdateFactorRows(ctx.x, mode, nullptr, 0, *engine, &full, options);
        UpdateFactorRows(ctx.x, mode, all.data(),
                         static_cast<std::int64_t>(all.size()), *engine,
                         &listed, options);
      }
      ExpectSameMatrix(full, listed);
    }
  }
}

TEST(RowUpdateTest, SubsetTouchesOnlyListedRows) {
  Ctx ctx = MakeCtx(12);
  const auto engine = MakeDeltaEngine(DeltaEngineChoice::kModeMajor, ctx.x,
                                      *ctx.list, ctx.factors, nullptr);
  const Matrix before = ctx.factors[0];
  Matrix updated = before;
  const std::vector<std::int64_t> rows = {2, 5, 7};
  RowUpdateOptions options;
  {
    OmpEnvironmentGuard omp(2, Scheduling::kDynamic);
    UpdateFactorRows(ctx.x, 0, rows.data(),
                     static_cast<std::int64_t>(rows.size()), *engine,
                     &updated, options);
  }
  // Listed rows with observed entries change; everything else is
  // bit-untouched.
  for (std::int64_t i = 0; i < before.rows(); ++i) {
    const bool listed =
        std::find(rows.begin(), rows.end(), i) != rows.end();
    for (std::int64_t j = 0; j < before.cols(); ++j) {
      if (!listed) {
        EXPECT_EQ(updated(i, j), before(i, j)) << "row " << i;
      }
    }
  }
  // And a full sweep restricted to those rows agrees with re-solving
  // them out of a fresh full sweep's result.
  Matrix full = before;
  {
    OmpEnvironmentGuard omp(2, Scheduling::kDynamic);
    UpdateFactorRows(ctx.x, 0, nullptr, 0, *engine, &full, options);
  }
  for (const std::int64_t row : rows) {
    for (std::int64_t j = 0; j < before.cols(); ++j) {
      EXPECT_EQ(updated(row, j), full(row, j)) << "row " << row;
    }
  }
}

TEST(RowUpdateTest, DeterministicAcrossThreadCountsAndScheduling) {
  const std::vector<std::int64_t> rows = {0, 3, 4, 8, 10};
  Matrix reference;
  for (const int threads : {1, 4, 13}) {
    for (const Scheduling scheduling :
         {Scheduling::kDynamic, Scheduling::kStatic}) {
      Ctx ctx = MakeCtx(13);
      const auto engine = MakeDeltaEngine(DeltaEngineChoice::kTiled, ctx.x,
                                          *ctx.list, ctx.factors, nullptr);
      Matrix factor = ctx.factors[0];
      RowUpdateOptions options;
      ThreadCountGuard ambient(threads);
      {
        OmpEnvironmentGuard omp(threads, scheduling);
        UpdateFactorRows(ctx.x, 0, rows.data(),
                         static_cast<std::int64_t>(rows.size()), *engine,
                         &factor, options);
      }
      if (reference.rows() == 0) {
        reference = factor;
      } else {
        ExpectSameMatrix(factor, reference);
      }
    }
  }
}

TEST(RowUpdateTest, RejectsBadArguments) {
  Ctx ctx = MakeCtx(14);
  const auto engine = MakeDeltaEngine(DeltaEngineChoice::kModeMajor, ctx.x,
                                      *ctx.list, ctx.factors, nullptr);
  Matrix factor = ctx.factors[0];
  RowUpdateOptions options;
  EXPECT_THROW(
      UpdateFactorRows(ctx.x, 3, nullptr, 0, *engine, &factor, options),
      std::invalid_argument);
  EXPECT_THROW(
      UpdateFactorRows(ctx.x, 0, nullptr, 0, *engine, nullptr, options),
      std::invalid_argument);
  const std::int64_t bad_row = ctx.x.dim(0);
  EXPECT_THROW(UpdateFactorRows(ctx.x, 0, &bad_row, 1, *engine, &factor,
                                options),
               std::invalid_argument);
}

}  // namespace
}  // namespace ptucker
