#include "core/core_update.h"

#include <gtest/gtest.h>

#include "core/reconstruction.h"
#include "tensor/nmode.h"
#include "data/lowrank.h"
#include "data/synthetic.h"
#include "util/random.h"

namespace ptucker {
namespace {

struct Ctx {
  SparseTensor x;
  DenseTensor core;
  CoreEntryList list;
  std::vector<Matrix> factors;
};

Ctx MakeCtx(std::uint64_t seed, std::int64_t nnz = 80) {
  Rng rng(seed);
  Ctx s;
  s.x = UniformSparseTensor({8, 7, 6}, nnz, rng);
  s.core = DenseTensor({2, 2, 2});
  s.core.FillUniform(rng);
  s.list = CoreEntryList(s.core);
  for (std::int64_t k = 0; k < 3; ++k) {
    Matrix factor(s.x.dim(k), s.core.dim(k));
    factor.FillUniform(rng);
    s.factors.push_back(std::move(factor));
  }
  return s;
}

double Objective(const Ctx& s, double lambda) {
  const double err = ReconstructionError(s.x, s.core, s.factors);
  return err * err + lambda * s.core.FrobeniusNorm() *
                         s.core.FrobeniusNorm();
}

TEST(CoreUpdateTest, ObjectiveNeverIncreases) {
  Ctx s = MakeCtx(1);
  const double lambda = 0.01;
  const double before = Objective(s, lambda);
  UpdateCoreTensor(s.x, &s.core, &s.list, s.factors, lambda, 10);
  EXPECT_LE(Objective(s, lambda), before + 1e-9);
}

TEST(CoreUpdateTest, ErrorStrictlyImprovesFromRandomCore) {
  Ctx s = MakeCtx(2);
  const double before = ReconstructionError(s.x, s.core, s.factors);
  UpdateCoreTensor(s.x, &s.core, &s.list, s.factors, 1e-6, 20);
  const double after = ReconstructionError(s.x, s.core, s.factors);
  EXPECT_LT(after, before * 0.9);
}

TEST(CoreUpdateTest, RecoversPlantedCoreOnNoiselessData) {
  // Data sampled exactly from a model; fitting the core with the true
  // factors should drive the error near zero (|Ω| >> |G| so the system is
  // overdetermined and consistent).
  Rng rng(3);
  PlantedTucker model = RandomTuckerModel({8, 8, 8}, {2, 2, 2}, rng);
  // Keep values unclamped: sample from the model's raw reconstruction.
  SparseTensor x(std::vector<std::int64_t>{8, 8, 8});
  for (int e = 0; e < 200; ++e) {
    std::int64_t index[3] = {
        static_cast<std::int64_t>(rng.UniformInt(8)),
        static_cast<std::int64_t>(rng.UniformInt(8)),
        static_cast<std::int64_t>(rng.UniformInt(8))};
    x.AddEntry(index, ReconstructEntry(model.core, model.factors, index));
  }
  x.BuildModeIndex();

  DenseTensor core({2, 2, 2});
  core.Fill(0.5);  // wrong start
  CoreEntryList list(core);
  UpdateCoreTensor(x, &core, &list, model.factors, 0.0, 40);
  EXPECT_LT(ReconstructionError(x, core, model.factors), 1e-6);
}

TEST(CoreUpdateTest, ListValuesStayInSyncWithCore) {
  Ctx s = MakeCtx(4);
  UpdateCoreTensor(s.x, &s.core, &s.list, s.factors, 0.01, 5);
  std::vector<std::int64_t> beta(3);
  for (std::int64_t b = 0; b < s.list.size(); ++b) {
    for (int k = 0; k < 3; ++k) {
      beta[static_cast<std::size_t>(k)] = s.list.index(b)[k];
    }
    EXPECT_EQ(s.list.value(b), s.core.at(beta.data()));
  }
}

TEST(CoreUpdateTest, PreservesSparsityPattern) {
  Ctx s = MakeCtx(5);
  // Truncate half the core first.
  std::vector<char> remove(8, 0);
  remove[0] = remove[2] = remove[5] = remove[7] = 1;
  s.list.Remove(remove, &s.core);
  ASSERT_EQ(s.core.CountNonZeros(), 4);
  UpdateCoreTensor(s.x, &s.core, &s.list, s.factors, 0.01, 10);
  // Removed positions stay zero (the update only refits live entries).
  EXPECT_LE(s.core.CountNonZeros(), 4);
  EXPECT_EQ(s.list.size(), 4);
}

TEST(CoreUpdateTest, ZeroIterationsIsNoop) {
  Ctx s = MakeCtx(6);
  DenseTensor before = s.core;
  UpdateCoreTensor(s.x, &s.core, &s.list, s.factors, 0.01, 0);
  EXPECT_LT(MaxAbsDiff(before, s.core), 1e-15);
}

TEST(CoreUpdateTest, StrongRegularizationShrinksCore) {
  Ctx s = MakeCtx(7);
  const double norm_before = s.core.FrobeniusNorm();
  UpdateCoreTensor(s.x, &s.core, &s.list, s.factors, 1e6, 20);
  EXPECT_LT(s.core.FrobeniusNorm(), norm_before * 0.1);
}

}  // namespace
}  // namespace ptucker
