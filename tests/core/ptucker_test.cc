#include "core/ptucker.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "core/reconstruction.h"
#include "data/lowrank.h"
#include "data/synthetic.h"
#include "linalg/qr.h"
#include "util/random.h"

namespace ptucker {
namespace {

SparseTensor SmallTensor(std::uint64_t seed, std::int64_t nnz = 300) {
  Rng rng(seed);
  return UniformSparseTensor({12, 10, 8}, nnz, rng);
}

PTuckerOptions SmallOptions() {
  PTuckerOptions options;
  options.core_dims = {3, 3, 3};
  options.max_iterations = 6;
  return options;
}

TEST(PTuckerValidationTest, RejectsEmptyTensor) {
  SparseTensor empty({4, 4});
  empty.BuildModeIndex();
  PTuckerOptions options;
  options.core_dims = {2, 2};
  EXPECT_THROW(PTuckerDecompose(empty, options), std::invalid_argument);
}

TEST(PTuckerValidationTest, RejectsMissingModeIndex) {
  SparseTensor x({4, 4});
  x.AddEntry({0, 0}, 1.0);
  PTuckerOptions options;
  options.core_dims = {2, 2};
  EXPECT_THROW(PTuckerDecompose(x, options), std::invalid_argument);
}

TEST(PTuckerValidationTest, RejectsWrongOrderCoreDims) {
  SparseTensor x = SmallTensor(1);
  PTuckerOptions options;
  options.core_dims = {2, 2};  // tensor is 3-order
  EXPECT_THROW(PTuckerDecompose(x, options), std::invalid_argument);
}

TEST(PTuckerValidationTest, RejectsRankAboveDimWithQr) {
  SparseTensor x = SmallTensor(2);
  PTuckerOptions options;
  options.core_dims = {3, 3, 20};  // 20 > dim 8
  EXPECT_THROW(PTuckerDecompose(x, options), std::invalid_argument);
  // Without orthogonalization the same config must be accepted.
  options.orthogonalize_output = false;
  options.max_iterations = 1;
  EXPECT_NO_THROW(PTuckerDecompose(x, options));
}

TEST(PTuckerValidationTest, RejectsBadScalarOptions) {
  SparseTensor x = SmallTensor(3);
  PTuckerOptions options = SmallOptions();
  options.lambda = -1.0;
  EXPECT_THROW(PTuckerDecompose(x, options), std::invalid_argument);
  options = SmallOptions();
  options.max_iterations = 0;
  EXPECT_THROW(PTuckerDecompose(x, options), std::invalid_argument);
  options = SmallOptions();
  options.truncation_rate = 1.0;
  EXPECT_THROW(PTuckerDecompose(x, options), std::invalid_argument);
  options = SmallOptions();
  options.num_threads = -2;
  EXPECT_THROW(PTuckerDecompose(x, options), std::invalid_argument);
}

TEST(PTuckerTest, ErrorMonotoneNonIncreasing) {
  // Theorem 2: the loss decreases monotonically, so the recorded
  // reconstruction errors must never increase.
  SparseTensor x = SmallTensor(4);
  PTuckerOptions options = SmallOptions();
  options.max_iterations = 8;
  PTuckerResult result = PTuckerDecompose(x, options);
  ASSERT_GE(result.iterations.size(), 2u);
  for (std::size_t i = 1; i < result.iterations.size(); ++i) {
    EXPECT_LE(result.iterations[i].error,
              result.iterations[i - 1].error + 1e-9);
  }
}

TEST(PTuckerTest, OutputShapes) {
  SparseTensor x = SmallTensor(5);
  PTuckerResult result = PTuckerDecompose(x, SmallOptions());
  ASSERT_EQ(result.model.factors.size(), 3u);
  EXPECT_EQ(result.model.factors[0].rows(), 12);
  EXPECT_EQ(result.model.factors[0].cols(), 3);
  EXPECT_EQ(result.model.factors[2].rows(), 8);
  EXPECT_EQ(result.model.core.dims(), (std::vector<std::int64_t>{3, 3, 3}));
}

TEST(PTuckerTest, OutputFactorsOrthonormal) {
  SparseTensor x = SmallTensor(6);
  PTuckerResult result = PTuckerDecompose(x, SmallOptions());
  for (const auto& factor : result.model.factors) {
    EXPECT_LT(OrthonormalityDefect(factor), 1e-9);
  }
}

TEST(PTuckerTest, FinalErrorMatchesModel) {
  SparseTensor x = SmallTensor(7);
  PTuckerResult result = PTuckerDecompose(x, SmallOptions());
  EXPECT_NEAR(result.final_error,
              ReconstructionError(x, result.model.core,
                                  result.model.factors),
              1e-9);
}

TEST(PTuckerTest, RecoversPlantedLowRankStructure) {
  Rng rng(8);
  PlantedTucker model = RandomTuckerModel({20, 18, 16}, {3, 3, 3}, rng);
  SparseTensor x = SampleFromModel(model, 3000, 0.01, rng);
  PTuckerOptions options;
  options.core_dims = {3, 3, 3};
  options.max_iterations = 15;
  PTuckerResult result = PTuckerDecompose(x, options);
  // RMSE on the training entries ~ noise level.
  EXPECT_LT(TestRmse(x, result.model.core, result.model.factors), 0.05);
}

TEST(PTuckerTest, DeterministicAcrossThreadCounts) {
  // Rows are independent (the §III-B property), so results must be
  // identical regardless of the parallel schedule.
  SparseTensor x = SmallTensor(9);
  PTuckerOptions options = SmallOptions();
  options.num_threads = 1;
  PTuckerResult serial = PTuckerDecompose(x, options);
  options.num_threads = 2;
  options.scheduling = Scheduling::kStatic;
  PTuckerResult parallel = PTuckerDecompose(x, options);
  EXPECT_NEAR(serial.final_error, parallel.final_error, 1e-9);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_TRUE(AllClose(serial.model.factors[k],
                         parallel.model.factors[k], 1e-9));
  }
}

TEST(PTuckerTest, ConvergenceFlagOnTightTolerance) {
  SparseTensor x = SmallTensor(10);
  PTuckerOptions options = SmallOptions();
  options.max_iterations = 50;
  options.tolerance = 1e-3;
  PTuckerResult result = PTuckerDecompose(x, options);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.iterations.size(), 50u);
}

TEST(PTuckerTest, RowsWithoutObservationsAreZero) {
  // Leave slice 0 of mode 0 empty; its factor row must be exactly zero
  // (the regularized minimizer) before orthogonalization.
  SparseTensor x({5, 4, 4});
  Rng rng(11);
  for (int e = 0; e < 30; ++e) {
    std::int64_t index[3] = {
        1 + static_cast<std::int64_t>(rng.UniformInt(4)),  // never 0
        static_cast<std::int64_t>(rng.UniformInt(4)),
        static_cast<std::int64_t>(rng.UniformInt(4))};
    x.AddEntry(index, rng.Uniform());
  }
  x.BuildModeIndex();
  PTuckerOptions options;
  options.core_dims = {2, 2, 2};
  options.max_iterations = 3;
  options.orthogonalize_output = false;
  PTuckerResult result = PTuckerDecompose(x, options);
  for (std::int64_t j = 0; j < 2; ++j) {
    EXPECT_EQ(result.model.factors[0](0, j), 0.0);
  }
}

TEST(PTuckerTest, PredictMatchesReconstruction) {
  SparseTensor x = SmallTensor(12);
  PTuckerResult result = PTuckerDecompose(x, SmallOptions());
  const std::vector<std::int64_t> index = {3, 5, 2};
  const double via_struct = result.model.Predict(index);
  CoreEntryList list(result.model.core);
  EXPECT_NEAR(via_struct,
              ReconstructFromList(list, result.model.factors, index.data()),
              1e-10);
}

TEST(PTuckerTest, MemoryScratchTrackedAsTJ2) {
  SparseTensor x = SmallTensor(13);
  MemoryTracker tracker;
  PTuckerOptions options = SmallOptions();
  options.tracker = &tracker;
  options.num_threads = 2;
  PTuckerDecompose(x, options);
  // Theorem 4: intermediate data O(T J²) — tiny, and definitely far below
  // |Ω|·|G| (the cache table size).
  EXPECT_GT(tracker.peak_bytes(), 0);
  EXPECT_LT(tracker.peak_bytes(),
            x.nnz() * 27 * static_cast<std::int64_t>(sizeof(double)));
  EXPECT_EQ(tracker.current_bytes(), 0);
}

TEST(PTuckerTest, TraceRecordsCoreNnzAndTimes) {
  SparseTensor x = SmallTensor(14);
  PTuckerResult result = PTuckerDecompose(x, SmallOptions());
  for (const auto& stats : result.iterations) {
    EXPECT_EQ(stats.core_nnz, 27);
    EXPECT_GE(stats.seconds, 0.0);
  }
  EXPECT_GT(result.SecondsPerIteration(), 0.0);
  EXPECT_GT(result.total_seconds, 0.0);
}

TEST(PTuckerTest, LambdaZeroStillRuns) {
  SparseTensor x = SmallTensor(15);
  PTuckerOptions options = SmallOptions();
  options.lambda = 0.0;  // exercises the LU fallback path
  PTuckerResult result = PTuckerDecompose(x, options);
  EXPECT_GT(result.final_error, 0.0);
  EXPECT_TRUE(std::isfinite(result.final_error));
}

TEST(PTuckerCacheTest, CacheVariantMatchesMemoryVariant) {
  // §III-C: the cache changes the cost, not the math. Same seed must give
  // the same factorization.
  SparseTensor x = SmallTensor(16);
  PTuckerOptions options = SmallOptions();
  PTuckerResult memory_result = PTuckerDecompose(x, options);
  options.variant = PTuckerVariant::kCache;
  PTuckerResult cache_result = PTuckerDecompose(x, options);
  EXPECT_NEAR(memory_result.final_error, cache_result.final_error, 1e-8);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_TRUE(AllClose(memory_result.model.factors[k],
                         cache_result.model.factors[k], 1e-7));
  }
}

TEST(PTuckerCacheTest, CacheChargesOmegaCoreMemory) {
  SparseTensor x = SmallTensor(17);
  MemoryTracker tracker;
  PTuckerOptions options = SmallOptions();
  options.variant = PTuckerVariant::kCache;
  options.tracker = &tracker;
  PTuckerDecompose(x, options);
  // Theorem 6: O(|Ω|·|G|) intermediate data.
  EXPECT_GE(tracker.peak_bytes(),
            x.nnz() * 27 * static_cast<std::int64_t>(sizeof(double)));
  EXPECT_EQ(tracker.current_bytes(), 0);
}

TEST(PTuckerCacheTest, CacheOverBudgetThrowsOom) {
  SparseTensor x = SmallTensor(18);
  MemoryTracker tracker(1024);
  PTuckerOptions options = SmallOptions();
  options.variant = PTuckerVariant::kCache;
  options.tracker = &tracker;
  EXPECT_THROW(PTuckerDecompose(x, options), OutOfMemoryBudget);
}

TEST(PTuckerApproxTest, CoreShrinksEachIteration) {
  SparseTensor x = SmallTensor(19);
  PTuckerOptions options = SmallOptions();
  options.variant = PTuckerVariant::kApprox;
  options.truncation_rate = 0.2;
  options.max_iterations = 5;
  options.tolerance = 0.0;  // force all iterations
  PTuckerResult result = PTuckerDecompose(x, options);
  ASSERT_GE(result.iterations.size(), 3u);
  for (std::size_t i = 1; i < result.iterations.size(); ++i) {
    EXPECT_LE(result.iterations[i].core_nnz,
              result.iterations[i - 1].core_nnz);
  }
  EXPECT_LT(result.iterations.back().core_nnz, 27);
}

TEST(PTuckerApproxTest, ZeroTruncationRateMatchesDefaultVariant) {
  SparseTensor x = SmallTensor(20);
  PTuckerOptions options = SmallOptions();
  PTuckerResult plain = PTuckerDecompose(x, options);
  options.variant = PTuckerVariant::kApprox;
  options.truncation_rate = 0.0;
  PTuckerResult approx = PTuckerDecompose(x, options);
  EXPECT_NEAR(plain.final_error, approx.final_error, 1e-9);
}

TEST(PTuckerCoreUpdateTest, ExtensionImprovesFit) {
  SparseTensor x = SmallTensor(21);
  PTuckerOptions options = SmallOptions();
  PTuckerResult fixed_core = PTuckerDecompose(x, options);
  options.update_core = true;
  PTuckerResult updated_core = PTuckerDecompose(x, options);
  EXPECT_LE(updated_core.final_error, fixed_core.final_error + 1e-9);
}

TEST(PTuckerCoreUpdateTest, WorksCombinedWithCacheVariant) {
  SparseTensor x = SmallTensor(22);
  PTuckerOptions options = SmallOptions();
  options.max_iterations = 3;
  options.update_core = true;
  PTuckerResult plain = PTuckerDecompose(x, options);
  options.variant = PTuckerVariant::kCache;
  PTuckerResult cached = PTuckerDecompose(x, options);
  EXPECT_NEAR(plain.final_error, cached.final_error, 1e-7);
}

// Property sweep: all variants on tensors of different orders stay finite
// and monotone.
class PTuckerVariantSweep
    : public ::testing::TestWithParam<std::tuple<int, PTuckerVariant>> {};

TEST_P(PTuckerVariantSweep, MonotoneAndFinite) {
  const auto [order, variant] = GetParam();
  Rng rng(100 + order);
  std::int64_t total = 1;
  for (int k = 0; k < order; ++k) total *= 8;
  SparseTensor x = UniformCubicTensor(
      order, 8, std::min<std::int64_t>(150, total), rng);
  PTuckerOptions options;
  options.core_dims.assign(static_cast<std::size_t>(order), 2);
  options.max_iterations = 4;
  options.variant = variant;
  PTuckerResult result = PTuckerDecompose(x, options);
  EXPECT_TRUE(std::isfinite(result.final_error));
  for (std::size_t i = 1; i < result.iterations.size(); ++i) {
    if (variant == PTuckerVariant::kApprox) continue;  // truncation may bump
    EXPECT_LE(result.iterations[i].error,
              result.iterations[i - 1].error + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    OrdersAndVariants, PTuckerVariantSweep,
    ::testing::Combine(::testing::Values(2, 3, 4, 5),
                       ::testing::Values(PTuckerVariant::kMemory,
                                         PTuckerVariant::kCache,
                                         PTuckerVariant::kApprox)));

}  // namespace
}  // namespace ptucker
