// Tests of the entry-sampling extension (the paper's future-work
// direction): each row update uses a Bernoulli(sample_rate) subsample of
// its slice.
#include <cmath>

#include <gtest/gtest.h>

#include "core/ptucker.h"
#include "core/reconstruction.h"
#include "data/lowrank.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "util/random.h"

namespace ptucker {
namespace {

TEST(SamplingTest, RejectsInvalidRate) {
  Rng rng(1);
  SparseTensor x = UniformSparseTensor({10, 10, 10}, 100, rng);
  PTuckerOptions options;
  options.core_dims = {2, 2, 2};
  options.sample_rate = 0.0;
  EXPECT_THROW(PTuckerDecompose(x, options), std::invalid_argument);
  options.sample_rate = 1.5;
  EXPECT_THROW(PTuckerDecompose(x, options), std::invalid_argument);
}

TEST(SamplingTest, FullRateIsExactAlgorithm) {
  Rng rng(2);
  SparseTensor x = UniformSparseTensor({15, 12, 10}, 400, rng);
  PTuckerOptions options;
  options.core_dims = {3, 3, 3};
  options.max_iterations = 5;
  PTuckerResult exact = PTuckerDecompose(x, options);
  options.sample_rate = 1.0;  // explicit full rate
  PTuckerResult full = PTuckerDecompose(x, options);
  EXPECT_DOUBLE_EQ(exact.final_error, full.final_error);
}

TEST(SamplingTest, SampledRunStaysFiniteAndUseful) {
  Rng rng(3);
  PlantedTucker model = RandomTuckerModel({25, 20, 15}, {3, 3, 3}, rng);
  SparseTensor x = SampleFromModel(model, 3000, 0.02, rng);
  PTuckerOptions options;
  options.core_dims = {3, 3, 3};
  options.max_iterations = 10;
  options.sample_rate = 0.5;
  PTuckerResult result = PTuckerDecompose(x, options);
  EXPECT_TRUE(std::isfinite(result.final_error));
  // Still a real model: beats predicting zero by a wide margin.
  EXPECT_LT(result.final_error, 0.5 * x.FrobeniusNorm());
}

TEST(SamplingTest, AccuracyDegradesGracefully) {
  // "Sacrificing little accuracy": half-rate sampling should stay within a
  // modest factor of the exact solve on well-conditioned data.
  Rng rng(4);
  PlantedTucker model = RandomTuckerModel({30, 25, 20}, {3, 3, 3}, rng);
  SparseTensor x = SampleFromModel(model, 5000, 0.02, rng);
  auto split = SplitObservedEntries(x, 0.1, rng);

  PTuckerOptions options;
  options.core_dims = {3, 3, 3};
  options.max_iterations = 10;
  PTuckerResult exact = PTuckerDecompose(split.train, options);
  options.sample_rate = 0.5;
  PTuckerResult sampled = PTuckerDecompose(split.train, options);

  const double exact_rmse =
      TestRmse(split.test, exact.model.core, exact.model.factors);
  const double sampled_rmse =
      TestRmse(split.test, sampled.model.core, sampled.model.factors);
  EXPECT_LT(sampled_rmse, 2.0 * exact_rmse + 1e-6);
}

TEST(SamplingTest, DeterministicForSeed) {
  Rng rng(5);
  SparseTensor x = UniformSparseTensor({15, 15, 15}, 500, rng);
  PTuckerOptions options;
  options.core_dims = {2, 2, 2};
  options.max_iterations = 4;
  options.sample_rate = 0.4;
  PTuckerResult a = PTuckerDecompose(x, options);
  PTuckerResult b = PTuckerDecompose(x, options);
  EXPECT_DOUBLE_EQ(a.final_error, b.final_error);
  options.seed += 1;
  PTuckerResult c = PTuckerDecompose(x, options);
  EXPECT_NE(a.final_error, c.final_error);
}

TEST(SamplingTest, TinyRateStillAnchorsEveryObservedRow) {
  // Even at a vanishing rate, rows with observations must not collapse to
  // zero (the at-least-one-entry guarantee).
  Rng rng(6);
  SparseTensor x = UniformSparseTensor({12, 12, 12}, 300, rng);
  PTuckerOptions options;
  options.core_dims = {2, 2, 2};
  options.max_iterations = 3;
  options.sample_rate = 1e-6;
  options.orthogonalize_output = false;
  PTuckerResult result = PTuckerDecompose(x, options);
  for (std::int64_t row = 0; row < x.dim(0); ++row) {
    if (x.SliceSize(0, row) == 0) continue;
    double norm = 0.0;
    for (std::int64_t j = 0; j < 2; ++j) {
      norm += std::fabs(result.model.factors[0](row, j));
    }
    EXPECT_GT(norm, 0.0) << "row " << row;
  }
}

TEST(SamplingTest, WorksWithCacheVariant) {
  Rng rng(7);
  SparseTensor x = UniformSparseTensor({12, 10, 8}, 300, rng);
  PTuckerOptions options;
  options.core_dims = {2, 2, 2};
  options.max_iterations = 4;
  options.sample_rate = 0.5;
  PTuckerResult plain = PTuckerDecompose(x, options);
  options.variant = PTuckerVariant::kCache;
  PTuckerResult cached = PTuckerDecompose(x, options);
  // Same subsample stream (seeded by iteration/mode/row) -> same result.
  EXPECT_NEAR(plain.final_error, cached.final_error, 1e-7);
}

}  // namespace
}  // namespace ptucker
