#include "core/delta.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace ptucker {
namespace {

DenseTensor RandomCore(const std::vector<std::int64_t>& dims,
                       std::uint64_t seed) {
  Rng rng(seed);
  DenseTensor core(dims);
  core.FillUniform(rng);
  return core;
}

std::vector<Matrix> RandomFactors(const std::vector<std::int64_t>& dims,
                                  const std::vector<std::int64_t>& ranks,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Matrix> factors;
  for (std::size_t k = 0; k < dims.size(); ++k) {
    Matrix factor(dims[k], ranks[k]);
    factor.FillUniform(rng);
    factors.push_back(std::move(factor));
  }
  return factors;
}

// Brute-force Eq. 12: delta[j] = Σ_{β: βn=j} G_β Π_{k≠n} A(k)(ik, jk).
std::vector<double> BruteForceDelta(const DenseTensor& core,
                                    const std::vector<Matrix>& factors,
                                    const std::int64_t* entry_index,
                                    std::int64_t mode) {
  std::vector<double> delta(
      static_cast<std::size_t>(core.dim(mode)), 0.0);
  std::vector<std::int64_t> beta(static_cast<std::size_t>(core.order()));
  for (std::int64_t linear = 0; linear < core.size(); ++linear) {
    core.IndexOf(linear, beta.data());
    double product = core[linear];
    for (std::int64_t k = 0; k < core.order(); ++k) {
      if (k == mode) continue;
      product *= factors[static_cast<std::size_t>(k)](
          entry_index[k], beta[static_cast<std::size_t>(k)]);
    }
    delta[static_cast<std::size_t>(beta[static_cast<std::size_t>(mode)])] +=
        product;
  }
  return delta;
}

TEST(CoreEntryListTest, CollectsNonZeros) {
  DenseTensor core({2, 3});
  core[1] = 1.5;
  core[4] = -2.0;
  CoreEntryList list(core);
  EXPECT_EQ(list.size(), 2);
  EXPECT_EQ(list.order(), 2);
  // Entry 0: linear 1 = index (1, 0).
  EXPECT_EQ(list.index(0)[0], 1);
  EXPECT_EQ(list.index(0)[1], 0);
  EXPECT_EQ(list.value(0), 1.5);
  // Entry 1: linear 4 = index (0, 2).
  EXPECT_EQ(list.index(1)[0], 0);
  EXPECT_EQ(list.index(1)[1], 2);
  EXPECT_EQ(list.value(1), -2.0);
}

TEST(CoreEntryListTest, RefreshValues) {
  DenseTensor core = RandomCore({2, 2, 2}, 1);
  CoreEntryList list(core);
  core[3] = 42.0;
  list.RefreshValues(core);
  bool found = false;
  for (std::int64_t b = 0; b < list.size(); ++b) {
    if (list.value(b) == 42.0) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(CoreEntryListTest, RemoveZeroesCoreAndCompacts) {
  DenseTensor core = RandomCore({2, 2}, 2);
  CoreEntryList list(core);
  ASSERT_EQ(list.size(), 4);
  std::vector<char> remove = {1, 0, 0, 1};
  const std::int64_t removed = list.Remove(remove, &core);
  EXPECT_EQ(removed, 2);
  EXPECT_EQ(list.size(), 2);
  EXPECT_EQ(core.CountNonZeros(), 2);
}

TEST(CoreEntryListTest, RemoveNothing) {
  DenseTensor core = RandomCore({3, 2}, 3);
  CoreEntryList list(core);
  std::vector<char> remove(static_cast<std::size_t>(list.size()), 0);
  EXPECT_EQ(list.Remove(remove, &core), 0);
  EXPECT_EQ(list.size(), 6);
}

TEST(ComputeDeltaTest, MatchesBruteForceEq12) {
  const std::vector<std::int64_t> dims = {6, 5, 4};
  const std::vector<std::int64_t> ranks = {3, 2, 3};
  DenseTensor core = RandomCore(ranks, 4);
  auto factors = RandomFactors(dims, ranks, 5);
  CoreEntryList list(core);

  const std::int64_t entry[3] = {2, 4, 1};
  for (std::int64_t mode = 0; mode < 3; ++mode) {
    std::vector<double> delta(
        static_cast<std::size_t>(ranks[static_cast<std::size_t>(mode)]));
    ComputeDelta(list, factors, entry, mode, delta.data());
    const auto expected = BruteForceDelta(core, factors, entry, mode);
    for (std::size_t j = 0; j < expected.size(); ++j) {
      EXPECT_NEAR(delta[j], expected[j], 1e-12) << "mode " << mode;
    }
  }
}

TEST(ComputeDeltaTest, SparseCoreSkipsZeros) {
  DenseTensor core({2, 2});
  core[0] = 3.0;  // only (0, 0) nonzero
  CoreEntryList list(core);
  std::vector<Matrix> factors = {Matrix(3, 2, {1, 2, 3, 4, 5, 6}),
                                 Matrix(3, 2, {1, 0, 0, 1, 1, 1})};
  const std::int64_t entry[2] = {1, 2};
  double delta[2];
  ComputeDelta(list, factors, entry, 0, delta);
  // delta[0] = G(0,0) * A2(2, 0) = 3 * 1 = 3; delta[1] = 0.
  EXPECT_DOUBLE_EQ(delta[0], 3.0);
  EXPECT_DOUBLE_EQ(delta[1], 0.0);
}

TEST(ReconstructFromListTest, MatchesEq4) {
  const std::vector<std::int64_t> dims = {4, 5, 3};
  const std::vector<std::int64_t> ranks = {2, 2, 2};
  DenseTensor core = RandomCore(ranks, 6);
  auto factors = RandomFactors(dims, ranks, 7);
  CoreEntryList list(core);

  const std::int64_t entry[3] = {3, 0, 2};
  // Eq. 4 via delta: x̂ = Σ_j delta(j) * A(n)(in, j) for any mode n.
  for (std::int64_t mode = 0; mode < 3; ++mode) {
    std::vector<double> delta(2);
    ComputeDelta(list, factors, entry, mode, delta.data());
    double via_delta = 0.0;
    for (int j = 0; j < 2; ++j) {
      via_delta += delta[static_cast<std::size_t>(j)] *
                   factors[static_cast<std::size_t>(mode)](entry[mode], j);
    }
    EXPECT_NEAR(ReconstructFromList(list, factors, entry), via_delta, 1e-12);
  }
}

}  // namespace
}  // namespace ptucker
