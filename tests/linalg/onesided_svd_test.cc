#include <cmath>

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "linalg/qr.h"
#include "linalg/svd.h"
#include "util/random.h"

namespace ptucker {
namespace {

Matrix RandomMatrix(std::int64_t rows, std::int64_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  m.FillUniform(rng);
  return m;
}

TEST(OneSidedJacobiTest, ReconstructsInput) {
  Matrix a = RandomMatrix(10, 5, 1);
  SvdResult svd = OneSidedJacobiSvd(a);
  Matrix us(10, 5);
  for (std::int64_t i = 0; i < 10; ++i) {
    for (std::int64_t j = 0; j < 5; ++j) {
      us(i, j) = svd.u(i, j) * svd.singular_values[static_cast<std::size_t>(j)];
    }
  }
  EXPECT_TRUE(AllClose(MatMulT(us, svd.v), a, 1e-10));
}

TEST(OneSidedJacobiTest, FactorsOrthonormal) {
  Matrix a = RandomMatrix(12, 6, 2);
  SvdResult svd = OneSidedJacobiSvd(a);
  EXPECT_LT(OrthonormalityDefect(svd.u), 1e-10);
  EXPECT_LT(OrthonormalityDefect(svd.v), 1e-10);
}

TEST(OneSidedJacobiTest, SingularValuesMatchGramRoute) {
  Matrix a = RandomMatrix(9, 4, 3);
  SvdResult jacobi = OneSidedJacobiSvd(a);
  SvdResult gram = ThinSvd(a, 4);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(jacobi.singular_values[j], gram.singular_values[j], 1e-9);
  }
}

TEST(OneSidedJacobiTest, DescendingSingularValues) {
  Matrix a = RandomMatrix(15, 7, 4);
  SvdResult svd = OneSidedJacobiSvd(a);
  for (std::size_t j = 0; j + 1 < svd.singular_values.size(); ++j) {
    EXPECT_GE(svd.singular_values[j], svd.singular_values[j + 1]);
  }
}

TEST(OneSidedJacobiTest, HighRelativeAccuracyOnIllConditioned) {
  // σ spread over 10 orders of magnitude: the Gram route loses the small
  // σ entirely (σ² underflows the eigenvalue gap) while one-sided Jacobi
  // keeps full relative accuracy — the reason LAPACK-class SVDs matter.
  const std::int64_t n = 4;
  Matrix q1 = HouseholderQr(RandomMatrix(12, n, 5)).q;
  Matrix q2 = HouseholderQr(RandomMatrix(n, n, 6)).q;
  const double sigmas[4] = {1e4, 1.0, 1e-3, 1e-6};
  Matrix scaled(12, n);
  for (std::int64_t i = 0; i < 12; ++i) {
    for (std::int64_t j = 0; j < n; ++j) scaled(i, j) = q1(i, j) * sigmas[j];
  }
  Matrix a = MatMulT(scaled, q2.Transposed());
  SvdResult svd = OneSidedJacobiSvd(a);
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(svd.singular_values[static_cast<std::size_t>(j)] /
                    sigmas[j],
                1.0, 1e-6)
        << "sigma " << sigmas[j];
  }
}

TEST(OneSidedJacobiTest, RankDeficientCompletesBasis) {
  Matrix a(8, 3);
  for (std::int64_t i = 0; i < 8; ++i) {
    const double base = static_cast<double>(i + 1);
    a(i, 0) = base;
    a(i, 1) = 2.0 * base;  // dependent
    a(i, 2) = base * base; // independent
  }
  SvdResult svd = OneSidedJacobiSvd(a);
  EXPECT_LT(OrthonormalityDefect(svd.u), 1e-8);
  EXPECT_NEAR(svd.singular_values.back(), 0.0, 1e-8);
}

TEST(ExactSvdLeftSingularVectorsTest, MatchesTruncatedOnLeadingColumns) {
  Matrix a = RandomMatrix(20, 6, 7);
  Matrix exact = ExactSvdLeftSingularVectors(a, 3);
  Matrix truncated = LeadingLeftSingularVectors(a, 3);
  ASSERT_EQ(exact.cols(), 3);
  // Columns agree up to sign.
  for (std::int64_t j = 0; j < 3; ++j) {
    double dot = 0.0;
    for (std::int64_t i = 0; i < 20; ++i) dot += exact(i, j) * truncated(i, j);
    EXPECT_NEAR(std::fabs(dot), 1.0, 1e-8) << "column " << j;
  }
}

TEST(ExactSvdLeftSingularVectorsTest, WideMatrixFallback) {
  Matrix a = RandomMatrix(4, 10, 8);
  Matrix u = ExactSvdLeftSingularVectors(a, 2);
  ASSERT_EQ(u.rows(), 4);
  ASSERT_EQ(u.cols(), 2);
  EXPECT_LT(OrthonormalityDefect(u), 1e-9);
}

}  // namespace
}  // namespace ptucker
