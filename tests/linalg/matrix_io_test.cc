#include "linalg/matrix_io.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "util/random.h"

namespace ptucker {
namespace {

TEST(MatrixIoTest, RoundTripExact) {
  Rng rng(1);
  Matrix original(7, 4);
  original.FillUniform(rng);
  Matrix parsed = ParseMatrix(FormatMatrix(original));
  ASSERT_EQ(parsed.rows(), 7);
  ASSERT_EQ(parsed.cols(), 4);
  EXPECT_EQ(original.MaxAbsDiff(parsed), 0.0);  // %.17g is bit-exact
}

TEST(MatrixIoTest, ParsesNegativeAndExponent) {
  Matrix m = ParseMatrix("-1.5 2e3\n0 -4e-2\n");
  EXPECT_EQ(m(0, 0), -1.5);
  EXPECT_EQ(m(0, 1), 2000.0);
  EXPECT_EQ(m(1, 1), -0.04);
}

TEST(MatrixIoTest, SkipsBlankLines) {
  Matrix m = ParseMatrix("1 2\n\n3 4\n");
  ASSERT_EQ(m.rows(), 2);
  EXPECT_EQ(m(1, 0), 3.0);
}

TEST(MatrixIoTest, RejectsRaggedRows) {
  EXPECT_THROW(ParseMatrix("1 2\n3\n"), std::runtime_error);
}

TEST(MatrixIoTest, RejectsNonNumeric) {
  EXPECT_THROW(ParseMatrix("1 x\n"), std::runtime_error);
}

TEST(MatrixIoTest, RejectsEmpty) {
  EXPECT_THROW(ParseMatrix("  \n"), std::runtime_error);
}

TEST(MatrixIoTest, FileRoundTrip) {
  Rng rng(2);
  Matrix original(5, 5);
  original.FillUniform(rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "ptucker_matrix_io.txt")
          .string();
  WriteMatrix(path, original);
  Matrix loaded = ReadMatrix(path);
  EXPECT_EQ(original.MaxAbsDiff(loaded), 0.0);
  std::remove(path.c_str());
}

TEST(MatrixIoTest, MissingFileThrows) {
  EXPECT_THROW(ReadMatrix("/nonexistent/ptucker.txt"), std::runtime_error);
}

}  // namespace
}  // namespace ptucker
