#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace ptucker {
namespace {

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) EXPECT_EQ(m(i, j), 0.0);
  }
}

TEST(MatrixTest, FillValueConstructor) {
  Matrix m(2, 2, 7.5);
  EXPECT_EQ(m(0, 0), 7.5);
  EXPECT_EQ(m(1, 1), 7.5);
}

TEST(MatrixTest, DataConstructorRowMajor) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m(0, 0), 1);
  EXPECT_EQ(m(0, 2), 3);
  EXPECT_EQ(m(1, 0), 4);
  EXPECT_EQ(m(1, 2), 6);
}

TEST(MatrixTest, Identity) {
  Matrix eye = Matrix::Identity(3);
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < 3; ++j) {
      EXPECT_EQ(eye(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, RowPointerMatchesElements) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  const double* row = m.Row(1);
  EXPECT_EQ(row[0], 4);
  EXPECT_EQ(row[2], 6);
  m.Row(0)[1] = 42;
  EXPECT_EQ(m(0, 1), 42);
}

TEST(MatrixTest, Transposed) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_EQ(t(0, 1), 4);
  EXPECT_EQ(t(2, 0), 3);
}

TEST(MatrixTest, TransposeTwiceIsIdentityOp) {
  Rng rng(5);
  Matrix m(4, 7);
  m.FillUniform(rng);
  EXPECT_TRUE(AllClose(m, m.Transposed().Transposed(), 0.0));
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix m(2, 2, {3, 0, 0, 4});
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

TEST(MatrixTest, MaxAbsDiff) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 2, {1, 2.5, 3, 4});
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 0.5);
}

TEST(MatrixTest, Scale) {
  Matrix m(1, 3, {1, -2, 3});
  m.Scale(-2.0);
  EXPECT_EQ(m(0, 0), -2);
  EXPECT_EQ(m(0, 1), 4);
  EXPECT_EQ(m(0, 2), -6);
}

TEST(MatrixTest, FillUniformInRange) {
  Rng rng(9);
  Matrix m(10, 10);
  m.FillUniform(rng);
  for (std::int64_t i = 0; i < m.size(); ++i) {
    EXPECT_GE(m.data()[i], 0.0);
    EXPECT_LT(m.data()[i], 1.0);
  }
}

TEST(MatrixTest, AllCloseShapeMismatch) {
  EXPECT_FALSE(AllClose(Matrix(2, 2), Matrix(2, 3), 1.0));
}

TEST(MatrixTest, ByteSize) {
  Matrix m(3, 5);
  EXPECT_EQ(m.ByteSize(), 3 * 5 * static_cast<std::int64_t>(sizeof(double)));
}

}  // namespace
}  // namespace ptucker
