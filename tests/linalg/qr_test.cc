#include "linalg/qr.h"

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "util/random.h"

namespace ptucker {
namespace {

Matrix RandomMatrix(std::int64_t rows, std::int64_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  m.FillUniform(rng);
  return m;
}

TEST(QrTest, ReconstructsInput) {
  Matrix a = RandomMatrix(8, 4, 1);
  QrResult qr = HouseholderQr(a);
  EXPECT_TRUE(AllClose(MatMul(qr.q, qr.r), a, 1e-10));
}

TEST(QrTest, QHasOrthonormalColumns) {
  Matrix a = RandomMatrix(10, 5, 2);
  QrResult qr = HouseholderQr(a);
  EXPECT_LT(OrthonormalityDefect(qr.q), 1e-10);
}

TEST(QrTest, RIsUpperTriangularWithNonNegativeDiagonal) {
  Matrix a = RandomMatrix(7, 5, 3);
  QrResult qr = HouseholderQr(a);
  for (std::int64_t i = 0; i < 5; ++i) {
    EXPECT_GE(qr.r(i, i), 0.0);
    for (std::int64_t j = 0; j < i; ++j) EXPECT_EQ(qr.r(i, j), 0.0);
  }
}

TEST(QrTest, SquareMatrix) {
  Matrix a = RandomMatrix(5, 5, 4);
  QrResult qr = HouseholderQr(a);
  EXPECT_TRUE(AllClose(MatMul(qr.q, qr.r), a, 1e-10));
  EXPECT_LT(OrthonormalityDefect(qr.q), 1e-10);
}

TEST(QrTest, SingleColumn) {
  Matrix a(3, 1, {3, 0, 4});
  QrResult qr = HouseholderQr(a);
  EXPECT_NEAR(qr.r(0, 0), 5.0, 1e-12);
  EXPECT_NEAR(qr.q(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(qr.q(2, 0), 0.8, 1e-12);
}

TEST(QrTest, AlreadyOrthogonalInput) {
  // QR of an orthonormal matrix: Q ≈ input, R ≈ I.
  Matrix a = RandomMatrix(6, 3, 5);
  Matrix q1 = HouseholderQr(a).q;
  QrResult qr = HouseholderQr(q1);
  EXPECT_TRUE(AllClose(qr.r, Matrix::Identity(3), 1e-10));
  EXPECT_TRUE(AllClose(qr.q, q1, 1e-10));
}

TEST(QrTest, RankDeficientStillReconstructs) {
  // Two identical columns.
  Matrix a(4, 2);
  for (std::int64_t i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = static_cast<double>(i + 1);
  }
  QrResult qr = HouseholderQr(a);
  EXPECT_TRUE(AllClose(MatMul(qr.q, qr.r), a, 1e-10));
}

TEST(QrTest, ZeroMatrix) {
  Matrix a(3, 2);
  QrResult qr = HouseholderQr(a);
  EXPECT_TRUE(AllClose(MatMul(qr.q, qr.r), a, 1e-12));
}

class QrShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(QrShapeSweep, FactorizationProperties) {
  const auto [m, n] = GetParam();
  Matrix a = RandomMatrix(m, n, 50 + m * 7 + n);
  QrResult qr = HouseholderQr(a);
  ASSERT_EQ(qr.q.rows(), m);
  ASSERT_EQ(qr.q.cols(), n);
  ASSERT_EQ(qr.r.rows(), n);
  ASSERT_EQ(qr.r.cols(), n);
  EXPECT_TRUE(AllClose(MatMul(qr.q, qr.r), a, 1e-9));
  EXPECT_LT(OrthonormalityDefect(qr.q), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QrShapeSweep,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(3, 1),
                      std::make_tuple(4, 4), std::make_tuple(10, 3),
                      std::make_tuple(50, 10), std::make_tuple(100, 2)));

}  // namespace
}  // namespace ptucker
