#include "linalg/lu.h"

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "util/random.h"

namespace ptucker {
namespace {

TEST(LuTest, SolveKnownSystem) {
  Matrix a(2, 2, {2, 1, 1, 3});
  const double b[2] = {5, 10};
  double x[2];
  LuDecomposition lu(a);
  ASSERT_TRUE(lu.ok());
  lu.Solve(b, x);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LuTest, SolveNeedsPivoting) {
  // Zero leading pivot forces a row swap.
  Matrix a(2, 2, {0, 1, 1, 0});
  const double b[2] = {3, 7};
  double x[2];
  LuDecomposition lu(a);
  ASSERT_TRUE(lu.ok());
  lu.Solve(b, x);
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LuTest, DetectsSingular) {
  Matrix a(2, 2, {1, 2, 2, 4});
  LuDecomposition lu(a);
  EXPECT_FALSE(lu.ok());
  EXPECT_EQ(lu.Determinant(), 0.0);
}

TEST(LuTest, DeterminantKnown) {
  Matrix a(2, 2, {3, 1, 4, 2});
  LuDecomposition lu(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu.Determinant(), 2.0, 1e-12);
}

TEST(LuTest, DeterminantSignUnderPermutation) {
  Matrix a(2, 2, {0, 1, 1, 0});  // det = -1
  LuDecomposition lu(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu.Determinant(), -1.0, 1e-12);
}

TEST(LuTest, InverseRoundTrip) {
  Rng rng(3);
  Matrix a(5, 5);
  a.FillUniform(rng);
  for (int i = 0; i < 5; ++i) a(i, i) += 2.0;  // diagonally dominant
  LuDecomposition lu(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_TRUE(AllClose(MatMul(a, lu.Inverse()), Matrix::Identity(5), 1e-10));
}

TEST(LuTest, MatrixSolveMultipleRhs) {
  Rng rng(4);
  Matrix a(4, 4);
  a.FillUniform(rng);
  for (int i = 0; i < 4; ++i) a(i, i) += 3.0;
  Matrix b(4, 3);
  b.FillUniform(rng);
  LuDecomposition lu(a);
  ASSERT_TRUE(lu.ok());
  Matrix x = lu.Solve(b);
  EXPECT_TRUE(AllClose(MatMul(a, x), b, 1e-10));
}

class LuSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(LuSizeSweep, RandomDiagonallyDominantSolves) {
  const int n = GetParam();
  Rng rng(17 + n);
  Matrix a(n, n);
  a.FillUniform(rng);
  for (int i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  std::vector<double> b(n), x(n), check(n);
  for (auto& v : b) v = rng.Normal();
  LuDecomposition lu(a);
  ASSERT_TRUE(lu.ok());
  lu.Solve(b.data(), x.data());
  MatVec(a, x.data(), check.data());
  for (int i = 0; i < n; ++i) EXPECT_NEAR(check[i], b[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuSizeSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 32));

}  // namespace
}  // namespace ptucker
