#include "linalg/cholesky.h"

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "util/random.h"

namespace ptucker {
namespace {

// A(i,j) = Bᵀ B + lambda I: SPD by construction, the exact structure of
// P-Tucker's Eq. 9 system.
Matrix RandomSpd(std::int64_t n, double lambda, std::uint64_t seed) {
  Rng rng(seed);
  Matrix b(n + 2, n);
  b.FillUniform(rng);
  Matrix a = MatTMul(b, b);
  for (std::int64_t i = 0; i < n; ++i) a(i, i) += lambda;
  return a;
}

TEST(CholeskyTest, FactorReconstructs) {
  Matrix a = RandomSpd(5, 0.1, 1);
  Matrix lower;
  ASSERT_TRUE(CholeskyFactor(a, &lower));
  Matrix reconstructed = MatMulT(lower, lower);
  EXPECT_TRUE(AllClose(a, reconstructed, 1e-10));
}

TEST(CholeskyTest, FactorIsLowerTriangular) {
  Matrix a = RandomSpd(4, 0.5, 2);
  Matrix lower;
  ASSERT_TRUE(CholeskyFactor(a, &lower));
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t j = i + 1; j < 4; ++j) EXPECT_EQ(lower(i, j), 0.0);
  }
}

TEST(CholeskyTest, SolveMatchesResidual) {
  Matrix a = RandomSpd(6, 0.01, 3);
  Rng rng(4);
  std::vector<double> b(6), x(6), ax(6);
  for (auto& v : b) v = rng.Normal();
  ASSERT_TRUE(CholeskySolve(a, b.data(), x.data()));
  MatVec(a, x.data(), ax.data());
  for (int i = 0; i < 6; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a(2, 2, {1, 2, 2, 1});  // eigenvalues 3, -1
  Matrix lower;
  EXPECT_FALSE(CholeskyFactor(a, &lower));
}

TEST(CholeskyTest, RejectsZeroMatrix) {
  Matrix a(3, 3);
  Matrix lower;
  EXPECT_FALSE(CholeskyFactor(a, &lower));
}

TEST(CholeskyTest, InverseTimesOriginalIsIdentity) {
  Matrix a = RandomSpd(5, 0.2, 5);
  Matrix inverse;
  ASSERT_TRUE(CholeskyInverse(a, &inverse));
  EXPECT_TRUE(AllClose(MatMul(a, inverse), Matrix::Identity(5), 1e-9));
}

TEST(CholeskyTest, SolveRowEquivalentToExplicitInverse) {
  // Eq. 9's two forms: row = c·(B+λI)⁻¹ vs solving the symmetric system.
  Matrix a = RandomSpd(4, 0.01, 6);
  Rng rng(7);
  std::vector<double> c(4), row(4);
  for (auto& v : c) v = rng.Normal();
  ASSERT_TRUE(CholeskySolveRow(a, c.data(), row.data()));

  Matrix inverse;
  ASSERT_TRUE(CholeskyInverse(a, &inverse));
  for (int j = 0; j < 4; ++j) {
    double expected = 0.0;
    for (int i = 0; i < 4; ++i) expected += c[i] * inverse(i, j);
    EXPECT_NEAR(row[j], expected, 1e-9);
  }
}

TEST(CholeskyTest, SolveInPlaceAliasing) {
  Matrix a = RandomSpd(3, 0.1, 8);
  Rng rng(9);
  std::vector<double> b(3);
  for (auto& v : b) v = rng.Normal();
  const auto b_copy = b;
  Matrix lower;
  ASSERT_TRUE(CholeskyFactor(a, &lower));
  CholeskySolveFactored(lower, b.data(), b.data());  // x aliases b
  std::vector<double> ax(3);
  MatVec(a, b.data(), ax.data());
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(ax[i], b_copy[i], 1e-9);
}

// Property sweep: Eq. 9-style systems are solvable for every J and λ > 0.
class CholeskySweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(CholeskySweep, RankDeficientGramPlusLambdaIsSolvable) {
  const auto [n, lambda] = GetParam();
  // Gram of a single vector: rank 1 (deficient for n > 1).
  Rng rng(n);
  Matrix b(n, n);
  std::vector<double> v(n);
  for (auto& value : v) value = rng.Normal();
  SymmetricRank1Update(b, v.data());
  for (int i = 0; i < n; ++i) b(i, i) += lambda;

  std::vector<double> rhs(n, 1.0), x(n), check(n);
  ASSERT_TRUE(CholeskySolve(b, rhs.data(), x.data()));
  MatVec(b, x.data(), check.data());
  for (int i = 0; i < n; ++i) EXPECT_NEAR(check[i], 1.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CholeskySweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 13),
                       ::testing::Values(1e-3, 1e-2, 1.0)));

}  // namespace
}  // namespace ptucker
