// FactorView tests: the non-owning view mirrors Matrix's const API
// element-for-element, and a δ-engine constructed from views computes
// bit-identical results to one constructed from the owning matrices —
// the contract the zero-copy serving plane (serve/snapshot_v2.h) rests
// on.
#include "linalg/factor_view.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/delta_engine.h"
#include "tensor/dense_tensor.h"
#include "util/random.h"

namespace ptucker {
namespace {

TEST(FactorViewTest, MirrorsMatrixConstApi) {
  Rng rng(3);
  Matrix m(5, 3);
  m.FillUniform(rng);
  const FactorView view(m);
  EXPECT_EQ(view.rows(), m.rows());
  EXPECT_EQ(view.cols(), m.cols());
  EXPECT_EQ(view.size(), m.size());
  EXPECT_EQ(view.data(), m.data());  // a view, not a copy
  for (std::int64_t i = 0; i < m.rows(); ++i) {
    EXPECT_EQ(view.Row(i), m.Row(i));
    for (std::int64_t j = 0; j < m.cols(); ++j) {
      EXPECT_EQ(view(i, j), m(i, j));
    }
  }
}

TEST(FactorViewTest, MakeFactorViewsCoversEveryFactor) {
  Rng rng(4);
  std::vector<Matrix> factors;
  for (std::int64_t n = 0; n < 3; ++n) {
    Matrix factor(6 + n, 2);
    factor.FillUniform(rng);
    factors.push_back(std::move(factor));
  }
  const std::vector<FactorView> views = MakeFactorViews(factors);
  ASSERT_EQ(views.size(), factors.size());
  for (std::size_t n = 0; n < factors.size(); ++n) {
    EXPECT_EQ(views[n].data(), factors[n].data());
    EXPECT_EQ(views[n].rows(), factors[n].rows());
    EXPECT_EQ(views[n].cols(), factors[n].cols());
  }
}

// Engines built from owning matrices and from views over the same bits
// must agree exactly on every kernel — construction path cannot change
// results.
TEST(FactorViewTest, ViewBuiltEnginesMatchMatrixBuiltEnginesExactly) {
  Rng rng(9);
  const std::vector<std::int64_t> dims = {11, 9, 8};
  const std::vector<std::int64_t> ranks = {3, 2, 2};
  DenseTensor core(ranks);
  core.FillUniform(rng);
  const CoreEntryList list(core);
  std::vector<Matrix> factors;
  for (std::size_t n = 0; n < dims.size(); ++n) {
    Matrix factor(dims[n], ranks[n]);
    factor.FillUniform(rng);
    factors.push_back(std::move(factor));
  }

  const auto compare = [&](const DeltaEngine& by_matrix,
                           const DeltaEngine& by_view) {
    std::vector<std::int64_t> index(dims.size(), 0);
    std::vector<double> delta_m(8);
    std::vector<double> delta_v(8);
    for (std::uint64_t q = 0; q < 25; ++q) {
      for (std::size_t n = 0; n < dims.size(); ++n) {
        index[n] = static_cast<std::int64_t>(
            rng.UniformInt(static_cast<std::uint64_t>(dims[n])));
      }
      EXPECT_EQ(by_matrix.Reconstruct(index.data()),
                by_view.Reconstruct(index.data()));
      for (std::size_t mode = 0; mode < dims.size(); ++mode) {
        const std::size_t rank = static_cast<std::size_t>(
            ranks[mode]);
        by_matrix.ComputeDelta(-1, index.data(),
                               static_cast<std::int64_t>(mode),
                               delta_m.data());
        by_view.ComputeDelta(-1, index.data(),
                             static_cast<std::int64_t>(mode),
                             delta_v.data());
        for (std::size_t j = 0; j < rank; ++j) {
          EXPECT_EQ(delta_m[j], delta_v[j]) << "mode " << mode;
        }
      }
    }
  };

  {
    const ModeMajorDeltaEngine by_matrix(list, factors, nullptr);
    const ModeMajorDeltaEngine by_view(list, MakeFactorViews(factors),
                                       nullptr);
    compare(by_matrix, by_view);
  }
  {
    const AdaptiveDeltaEngine by_matrix(list, factors, nullptr, 0.0);
    const AdaptiveDeltaEngine by_view(list, MakeFactorViews(factors), nullptr,
                                      0.0);
    compare(by_matrix, by_view);
  }
  {
    const TiledDeltaEngine by_matrix(list, factors, nullptr, 32);
    const TiledDeltaEngine by_view(list, MakeFactorViews(factors), nullptr,
                                   32);
    compare(by_matrix, by_view);
  }
}

}  // namespace
}  // namespace ptucker
