#include "linalg/blas.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace ptucker {
namespace {

Matrix RandomMatrix(std::int64_t rows, std::int64_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  m.FillUniform(rng);
  return m;
}

TEST(BlasTest, MatMulSmallKnown) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 2, {5, 6, 7, 8});
  Matrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(BlasTest, MatMulIdentity) {
  Matrix a = RandomMatrix(4, 6, 1);
  EXPECT_TRUE(AllClose(MatMul(Matrix::Identity(4), a), a, 1e-14));
  EXPECT_TRUE(AllClose(MatMul(a, Matrix::Identity(6)), a, 1e-14));
}

TEST(BlasTest, MatTMulMatchesExplicitTranspose) {
  Matrix a = RandomMatrix(5, 3, 2);
  Matrix b = RandomMatrix(5, 4, 3);
  EXPECT_TRUE(AllClose(MatTMul(a, b), MatMul(a.Transposed(), b), 1e-12));
}

TEST(BlasTest, MatMulTMatchesExplicitTranspose) {
  Matrix a = RandomMatrix(4, 6, 4);
  Matrix b = RandomMatrix(3, 6, 5);
  EXPECT_TRUE(AllClose(MatMulT(a, b), MatMul(a, b.Transposed()), 1e-12));
}

TEST(BlasTest, MatMulAssociativity) {
  Matrix a = RandomMatrix(3, 4, 6);
  Matrix b = RandomMatrix(4, 5, 7);
  Matrix c = RandomMatrix(5, 2, 8);
  EXPECT_TRUE(AllClose(MatMul(MatMul(a, b), c), MatMul(a, MatMul(b, c)),
                       1e-12));
}

TEST(BlasTest, MatVec) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const double x[3] = {1, 0, -1};
  double y[2];
  MatVec(a, x, y);
  EXPECT_DOUBLE_EQ(y[0], -2);
  EXPECT_DOUBLE_EQ(y[1], -2);
}

TEST(BlasTest, MatTVec) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const double x[2] = {1, -1};
  double y[3];
  MatTVec(a, x, y);
  EXPECT_DOUBLE_EQ(y[0], -3);
  EXPECT_DOUBLE_EQ(y[1], -3);
  EXPECT_DOUBLE_EQ(y[2], -3);
}

TEST(BlasTest, DotAxpyNorm) {
  const double x[3] = {1, 2, 3};
  double y[3] = {4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(x, y, 3), 32);
  Axpy(2.0, x, y, 3);
  EXPECT_DOUBLE_EQ(y[0], 6);
  EXPECT_DOUBLE_EQ(y[2], 12);
  const double z[2] = {3, 4};
  EXPECT_DOUBLE_EQ(Norm2(z, 2), 5);
}

TEST(BlasTest, SymmetricRank1Update) {
  Matrix b(3, 3);
  const double x[3] = {1, 2, 3};
  SymmetricRank1Update(b, x);
  SymmetricRank1Update(b, x);
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(b(i, j), 2.0 * x[i] * x[j]);
    }
  }
}

TEST(BlasTest, SymmetricRank1UpdateKeepsSymmetry) {
  Rng rng(11);
  Matrix b(5, 5);
  std::vector<double> x(5);
  for (int round = 0; round < 10; ++round) {
    for (auto& v : x) v = rng.Normal();
    SymmetricRank1Update(b, x.data());
  }
  for (std::int64_t i = 0; i < 5; ++i) {
    for (std::int64_t j = 0; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(b(i, j), b(j, i));
    }
  }
}

// Property sweep: MatMul dimensions compose for many shapes.
class MatMulShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulShapeTest, ShapesAndValues) {
  const auto [m, k, n] = GetParam();
  Matrix a = RandomMatrix(m, k, 100 + m);
  Matrix b = RandomMatrix(k, n, 200 + n);
  Matrix c = MatMul(a, b);
  ASSERT_EQ(c.rows(), m);
  ASSERT_EQ(c.cols(), n);
  // Check one random element against a scalar loop.
  Rng rng(m * 31 + n);
  const std::int64_t i = static_cast<std::int64_t>(rng.UniformInt(m));
  const std::int64_t j = static_cast<std::int64_t>(rng.UniformInt(n));
  double expected = 0.0;
  for (std::int64_t t = 0; t < k; ++t) expected += a(i, t) * b(t, j);
  EXPECT_NEAR(c(i, j), expected, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(7, 1, 5), std::make_tuple(1, 9, 1),
                      std::make_tuple(16, 16, 16), std::make_tuple(5, 30, 2)));

}  // namespace
}  // namespace ptucker
