#include <cmath>

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "linalg/jacobi_eigen.h"
#include "linalg/qr.h"
#include "linalg/svd.h"
#include "util/random.h"

namespace ptucker {
namespace {

Matrix RandomMatrix(std::int64_t rows, std::int64_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  m.FillUniform(rng);
  return m;
}

TEST(JacobiEigenTest, DiagonalMatrix) {
  Matrix a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = 5.0;
  a(2, 2) = 3.0;
  EigenResult eigen = JacobiEigen(a);
  EXPECT_NEAR(eigen.eigenvalues[0], 5.0, 1e-12);
  EXPECT_NEAR(eigen.eigenvalues[1], 3.0, 1e-12);
  EXPECT_NEAR(eigen.eigenvalues[2], 1.0, 1e-12);
}

TEST(JacobiEigenTest, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix a(2, 2, {2, 1, 1, 2});
  EigenResult eigen = JacobiEigen(a);
  EXPECT_NEAR(eigen.eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(eigen.eigenvalues[1], 1.0, 1e-12);
}

TEST(JacobiEigenTest, ReconstructsMatrix) {
  Rng rng(1);
  Matrix b = RandomMatrix(6, 6, 1);
  Matrix a = MatTMul(b, b);  // symmetric PSD
  EigenResult eigen = JacobiEigen(a);
  // A = V diag(λ) Vᵀ
  Matrix lambda_vt(6, 6);
  for (std::int64_t i = 0; i < 6; ++i) {
    for (std::int64_t j = 0; j < 6; ++j) {
      lambda_vt(i, j) = eigen.eigenvalues[static_cast<std::size_t>(i)] *
                        eigen.eigenvectors(j, i);
    }
  }
  EXPECT_TRUE(AllClose(MatMul(eigen.eigenvectors, lambda_vt), a, 1e-9));
}

TEST(JacobiEigenTest, EigenvectorsOrthonormal) {
  Matrix b = RandomMatrix(8, 8, 2);
  Matrix a = MatTMul(b, b);
  EigenResult eigen = JacobiEigen(a);
  EXPECT_LT(OrthonormalityDefect(eigen.eigenvectors), 1e-10);
}

TEST(JacobiEigenTest, TraceEqualsEigenvalueSum) {
  Matrix b = RandomMatrix(5, 5, 3);
  Matrix a = MatTMul(b, b);
  EigenResult eigen = JacobiEigen(a);
  double trace = 0.0, sum = 0.0;
  for (std::int64_t i = 0; i < 5; ++i) trace += a(i, i);
  for (double lambda : eigen.eigenvalues) sum += lambda;
  EXPECT_NEAR(trace, sum, 1e-9);
}

TEST(ThinSvdTest, ReconstructsLowRankExactly) {
  // Build a rank-2 matrix and recover it with rank-2 SVD.
  Matrix u = RandomMatrix(8, 2, 4);
  Matrix v = RandomMatrix(5, 2, 5);
  Matrix a = MatMulT(u, v);
  SvdResult svd = ThinSvd(a, 2);
  // U Σ Vᵀ
  Matrix us(8, 2);
  for (std::int64_t i = 0; i < 8; ++i) {
    for (std::int64_t j = 0; j < 2; ++j) {
      us(i, j) = svd.u(i, j) * svd.singular_values[static_cast<std::size_t>(j)];
    }
  }
  EXPECT_TRUE(AllClose(MatMulT(us, svd.v), a, 1e-9));
}

TEST(ThinSvdTest, SingularValuesDescendingNonNegative) {
  Matrix a = RandomMatrix(10, 6, 6);
  SvdResult svd = ThinSvd(a, 6);
  for (std::size_t i = 0; i + 1 < svd.singular_values.size(); ++i) {
    EXPECT_GE(svd.singular_values[i], svd.singular_values[i + 1]);
  }
  EXPECT_GE(svd.singular_values.back(), 0.0);
}

TEST(ThinSvdTest, MatchesFrobeniusNorm) {
  Matrix a = RandomMatrix(7, 4, 7);
  SvdResult svd = ThinSvd(a, 4);
  double sum_sq = 0.0;
  for (double s : svd.singular_values) sum_sq += s * s;
  EXPECT_NEAR(std::sqrt(sum_sq), a.FrobeniusNorm(), 1e-9);
}

TEST(LeadingLeftSingularVectorsTest, OrthonormalAndOptimal) {
  Matrix a = RandomMatrix(12, 6, 8);
  Matrix u = LeadingLeftSingularVectors(a, 3);
  ASSERT_EQ(u.rows(), 12);
  ASSERT_EQ(u.cols(), 3);
  EXPECT_LT(OrthonormalityDefect(u), 1e-9);
  // Optimality: projection energy ‖Uᵀa‖ must beat a random orthonormal
  // basis of the same size.
  Matrix random_basis = HouseholderQr(RandomMatrix(12, 3, 9)).q;
  EXPECT_GT(MatTMul(u, a).FrobeniusNorm(),
            MatTMul(random_basis, a).FrobeniusNorm() - 1e-12);
}

TEST(LeadingLeftSingularVectorsTest, RankDeficientInputCompletesBasis) {
  // Rank-1 matrix, ask for 3 left singular vectors: columns 2-3 are a
  // basis completion and must stay orthonormal.
  Matrix a(6, 4);
  for (std::int64_t i = 0; i < 6; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) {
      a(i, j) = static_cast<double>(i + 1);
    }
  }
  Matrix u = LeadingLeftSingularVectors(a, 3);
  EXPECT_LT(OrthonormalityDefect(u), 1e-8);
}

TEST(RightSingularVectorsFromGramTest, MatchesThinSvd) {
  Matrix a = RandomMatrix(9, 5, 10);
  Matrix gram = MatTMul(a, a);
  GramSvd from_gram = RightSingularVectorsFromGram(gram, 5);
  SvdResult svd = ThinSvd(a, 5);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(from_gram.singular_values[i], svd.singular_values[i], 1e-9);
  }
}

class SvdRankSweep : public ::testing::TestWithParam<int> {};

TEST_P(SvdRankSweep, TruncationErrorDecreasesWithRank) {
  const int rank = GetParam();
  Matrix a = RandomMatrix(15, 8, 11);
  SvdResult svd = ThinSvd(a, rank);
  // Residual ‖A − U Σ Vᵀ‖² = Σ_{i>rank} σ²  (Eckart-Young).
  Matrix us(15, rank);
  for (std::int64_t i = 0; i < 15; ++i) {
    for (int j = 0; j < rank; ++j) {
      us(i, j) = svd.u(i, j) * svd.singular_values[static_cast<std::size_t>(j)];
    }
  }
  Matrix approx = MatMulT(us, svd.v);
  double residual_sq = 0.0;
  for (std::int64_t i = 0; i < 15; ++i) {
    for (std::int64_t j = 0; j < 8; ++j) {
      const double d = a(i, j) - approx(i, j);
      residual_sq += d * d;
    }
  }
  SvdResult full = ThinSvd(a, 8);
  double expected = 0.0;
  for (int j = rank; j < 8; ++j) {
    expected += full.singular_values[static_cast<std::size_t>(j)] *
                full.singular_values[static_cast<std::size_t>(j)];
  }
  EXPECT_NEAR(residual_sq, expected, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Ranks, SvdRankSweep, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace ptucker
