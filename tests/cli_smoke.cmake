# CLI smoke test: run ptucker_cli end-to-end on a tiny synthetic tensor
# (--selftest) and assert exit code 0 plus parseable output.
#
# Invoked by ctest as:
#   cmake -DPTUCKER_CLI=<path> -P cli_smoke.cmake

if(NOT PTUCKER_CLI)
  message(FATAL_ERROR "PTUCKER_CLI not set")
endif()

execute_process(
  COMMAND ${PTUCKER_CLI} --selftest --max-iters 5 --seed 42
  OUTPUT_VARIABLE smoke_out
  ERROR_VARIABLE smoke_err
  RESULT_VARIABLE smoke_rc
)

if(NOT smoke_rc EQUAL 0)
  message(FATAL_ERROR
    "ptucker_cli --selftest exited with ${smoke_rc}\n"
    "stdout:\n${smoke_out}\nstderr:\n${smoke_err}")
endif()

# The run must report a parseable final error line and the selftest gate.
if(NOT smoke_out MATCHES "final reconstruction error \\(Eq\\. 5\\): [0-9]+\\.[0-9]+")
  message(FATAL_ERROR "missing/unparseable final-error line in:\n${smoke_out}")
endif()
if(NOT smoke_out MATCHES "selftest OK")
  message(FATAL_ERROR "missing 'selftest OK' in:\n${smoke_out}")
endif()

message(STATUS "cli_smoke passed")
