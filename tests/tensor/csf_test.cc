#include "tensor/csf.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "tensor/nmode.h"
#include "util/random.h"

namespace ptucker {
namespace {

Matrix RandomMatrix(std::int64_t rows, std::int64_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  m.FillUniform(rng);
  return m;
}

std::vector<std::int64_t> RootedOrder(std::int64_t order, std::int64_t root) {
  std::vector<std::int64_t> result{root};
  for (std::int64_t k = 0; k < order; ++k) {
    if (k != root) result.push_back(k);
  }
  return result;
}

TEST(CsfTest, LeafCountEqualsNnz) {
  Rng rng(1);
  SparseTensor x = UniformCubicTensor(3, 8, 60, rng);
  CsfTensor csf(x, {0, 1, 2});
  EXPECT_EQ(csf.nnz(), x.nnz());
}

TEST(CsfTest, PrefixCompression) {
  // Three entries sharing the mode-0 index must share one root node.
  SparseTensor x({4, 4, 4});
  x.AddEntry({2, 0, 0}, 1.0);
  x.AddEntry({2, 1, 0}, 2.0);
  x.AddEntry({2, 1, 3}, 3.0);
  x.AddEntry({0, 0, 0}, 4.0);
  CsfTensor csf(x, {0, 1, 2});
  EXPECT_EQ(csf.num_nodes(0), 2);  // roots {0, 2}
  EXPECT_EQ(csf.num_nodes(1), 3);  // (0,0), (2,0), (2,1)
  EXPECT_EQ(csf.num_nodes(2), 4);
}

TEST(CsfTest, FptrRangesAreConsistent) {
  Rng rng(2);
  SparseTensor x = UniformCubicTensor(4, 5, 40, rng);
  CsfTensor csf(x, {0, 1, 2, 3});
  for (std::int64_t level = 0; level < 3; ++level) {
    const auto& ptr = csf.fptr(level);
    ASSERT_EQ(static_cast<std::int64_t>(ptr.size()),
              csf.num_nodes(level) + 1);
    EXPECT_EQ(ptr.front(), 0);
    EXPECT_EQ(ptr.back(), csf.num_nodes(level + 1));
    for (std::size_t i = 1; i < ptr.size(); ++i) {
      EXPECT_LT(ptr[i - 1], ptr[i]);  // every node has >= 1 child
    }
  }
}

TEST(CsfTest, DuplicateCoordinatesCollapse) {
  SparseTensor x({3, 3});
  x.AddEntry({1, 2}, 1.5);
  x.AddEntry({1, 2}, 2.5);
  CsfTensor csf(x, {0, 1});
  EXPECT_EQ(csf.nnz(), 1);
  EXPECT_DOUBLE_EQ(csf.leaf_values()[0], 4.0);
}

TEST(CsfTest, TtmcRootMatchesCooStreaming) {
  Rng rng(3);
  SparseTensor x = UniformSparseTensor({6, 5, 4}, 30, rng);
  std::vector<Matrix> factors = {RandomMatrix(6, 3, 10),
                                 RandomMatrix(5, 2, 11),
                                 RandomMatrix(4, 2, 12)};
  for (std::int64_t root = 0; root < 3; ++root) {
    CsfTensor csf(x, RootedOrder(3, root));
    Matrix from_csf = csf.TtmcRoot(factors);
    Matrix from_coo = SparseTtmChain(x, factors, root);
    EXPECT_TRUE(AllClose(from_csf, from_coo, 1e-10)) << "root " << root;
  }
}

TEST(CsfTest, TtmcRootOrderFour) {
  Rng rng(4);
  SparseTensor x = UniformSparseTensor({4, 3, 5, 3}, 25, rng);
  std::vector<Matrix> factors = {RandomMatrix(4, 2, 13),
                                 RandomMatrix(3, 2, 14),
                                 RandomMatrix(5, 3, 15),
                                 RandomMatrix(3, 2, 16)};
  for (std::int64_t root = 0; root < 4; ++root) {
    CsfTensor csf(x, RootedOrder(4, root));
    EXPECT_TRUE(AllClose(csf.TtmcRoot(factors),
                         SparseTtmChain(x, factors, root), 1e-10))
        << "root " << root;
  }
}

TEST(CsfTest, TtmcOrderTwo) {
  SparseTensor x({3, 4});
  x.AddEntry({0, 1}, 2.0);
  x.AddEntry({2, 3}, -1.0);
  std::vector<Matrix> factors = {RandomMatrix(3, 2, 17),
                                 RandomMatrix(4, 2, 18)};
  CsfTensor csf(x, {0, 1});
  EXPECT_TRUE(AllClose(csf.TtmcRoot(factors),
                       SparseTtmChain(x, factors, 0), 1e-12));
}

TEST(CsfTest, ByteSizeIsPositiveAndBounded) {
  Rng rng(5);
  SparseTensor x = UniformCubicTensor(3, 10, 100, rng);
  CsfTensor csf(x, {0, 1, 2});
  EXPECT_GT(csf.ByteSize(), 0);
  // Tree cannot exceed the raw COO footprint by more than the fptr
  // overhead.
  EXPECT_LE(csf.ByteSize(), x.ByteSize() + static_cast<std::int64_t>(
      (x.nnz() + 3) * 3 * sizeof(std::int64_t)));
}

TEST(CsfTest, TracksScratchMemory) {
  Rng rng(6);
  SparseTensor x = UniformCubicTensor(3, 6, 20, rng);
  std::vector<Matrix> factors = {RandomMatrix(6, 2, 19),
                                 RandomMatrix(6, 2, 20),
                                 RandomMatrix(6, 2, 21)};
  MemoryTracker tracker;
  CsfTensor csf(x, {0, 1, 2});
  csf.TtmcRoot(factors, &tracker);
  EXPECT_GT(tracker.peak_bytes(), 0);
  EXPECT_EQ(tracker.current_bytes(), 0);
}

class CsfModeOrderSweep : public ::testing::TestWithParam<int> {};

TEST_P(CsfModeOrderSweep, AnyRootMatchesCoo) {
  const int root = GetParam();
  Rng rng(30 + root);
  SparseTensor x = UniformSparseTensor({7, 6, 5, 4}, 50, rng);
  std::vector<Matrix> factors = {RandomMatrix(7, 2, 31),
                                 RandomMatrix(6, 3, 32),
                                 RandomMatrix(5, 2, 33),
                                 RandomMatrix(4, 2, 34)};
  CsfTensor csf(x, RootedOrder(4, root));
  EXPECT_TRUE(AllClose(csf.TtmcRoot(factors),
                       SparseTtmChain(x, factors, root), 1e-10));
}

INSTANTIATE_TEST_SUITE_P(Roots, CsfModeOrderSweep,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace ptucker
