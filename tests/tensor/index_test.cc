#include "tensor/index.h"

#include <gtest/gtest.h>

namespace ptucker {
namespace {

TEST(IndexTest, NumElements) {
  EXPECT_EQ(NumElements({2, 3, 4}), 24);
  EXPECT_EQ(NumElements({7}), 7);
  EXPECT_EQ(NumElements({}), 1);
}

TEST(IndexTest, StridesMode0Fastest) {
  const auto strides = ComputeStrides({2, 3, 4});
  EXPECT_EQ(strides[0], 1);
  EXPECT_EQ(strides[1], 2);
  EXPECT_EQ(strides[2], 6);
}

TEST(IndexTest, LinearizeDelinearizeRoundTrip) {
  const std::vector<std::int64_t> dims = {3, 4, 5};
  const auto strides = ComputeStrides(dims);
  std::int64_t index[3];
  for (std::int64_t linear = 0; linear < NumElements(dims); ++linear) {
    Delinearize(linear, dims, index);
    EXPECT_EQ(Linearize(index, strides, 3), linear);
    EXPECT_TRUE(IndexInBounds(index, dims));
  }
}

TEST(IndexTest, LinearizeKnownValues) {
  const std::vector<std::int64_t> dims = {2, 3};
  const auto strides = ComputeStrides(dims);
  const std::int64_t idx_a[2] = {1, 0};
  const std::int64_t idx_b[2] = {0, 1};
  const std::int64_t idx_c[2] = {1, 2};
  EXPECT_EQ(Linearize(idx_a, strides, 2), 1);
  EXPECT_EQ(Linearize(idx_b, strides, 2), 2);
  EXPECT_EQ(Linearize(idx_c, strides, 2), 5);
}

TEST(IndexTest, MatricizeColumnStridesMatchEq1) {
  // Eq. 1 with dims I = (2, 3, 4), skip mode 1: strides over modes (0, 2)
  // are (1, 2): j = i0 + 2·i2.
  const auto strides = MatricizeColumnStrides({2, 3, 4}, 1);
  EXPECT_EQ(strides[0], 1);
  EXPECT_EQ(strides[1], 0);  // skipped
  EXPECT_EQ(strides[2], 2);
}

TEST(IndexTest, MatricizeColumnStridesSkipFirst) {
  const auto strides = MatricizeColumnStrides({5, 3, 4}, 0);
  EXPECT_EQ(strides[0], 0);
  EXPECT_EQ(strides[1], 1);
  EXPECT_EQ(strides[2], 3);
}

TEST(IndexTest, MatricizeColumnsCoverAllCombinations) {
  // Distinct (i0, i2) pairs must map to distinct columns in [0, 8).
  const std::vector<std::int64_t> dims = {2, 3, 4};
  const auto strides = MatricizeColumnStrides(dims, 1);
  std::vector<bool> seen(8, false);
  for (std::int64_t i0 = 0; i0 < 2; ++i0) {
    for (std::int64_t i2 = 0; i2 < 4; ++i2) {
      const std::int64_t col = i0 * strides[0] + i2 * strides[2];
      ASSERT_GE(col, 0);
      ASSERT_LT(col, 8);
      EXPECT_FALSE(seen[static_cast<std::size_t>(col)]);
      seen[static_cast<std::size_t>(col)] = true;
    }
  }
}

TEST(IndexTest, IndexInBounds) {
  const std::vector<std::int64_t> dims = {2, 2};
  const std::int64_t good[2] = {1, 1};
  const std::int64_t negative[2] = {-1, 0};
  const std::int64_t too_big[2] = {0, 2};
  EXPECT_TRUE(IndexInBounds(good, dims));
  EXPECT_FALSE(IndexInBounds(negative, dims));
  EXPECT_FALSE(IndexInBounds(too_big, dims));
}

}  // namespace
}  // namespace ptucker
