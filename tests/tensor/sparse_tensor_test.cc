#include "tensor/sparse_tensor.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "util/random.h"

namespace ptucker {
namespace {

SparseTensor MakeSmall() {
  SparseTensor t({3, 4, 2});
  t.AddEntry({0, 0, 0}, 1.0);
  t.AddEntry({1, 2, 1}, -2.0);
  t.AddEntry({2, 3, 0}, 0.5);
  t.AddEntry({1, 0, 1}, 3.0);
  return t;
}

TEST(SparseTensorTest, BasicAccessors) {
  SparseTensor t = MakeSmall();
  EXPECT_EQ(t.order(), 3);
  EXPECT_EQ(t.nnz(), 4);
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t.dim(2), 2);
  EXPECT_EQ(t.index(1, 1), 2);
  EXPECT_EQ(t.value(1), -2.0);
}

TEST(SparseTensorTest, FrobeniusNorm) {
  SparseTensor t({2, 2});
  t.AddEntry({0, 0}, 3.0);
  t.AddEntry({1, 1}, 4.0);
  EXPECT_DOUBLE_EQ(t.FrobeniusNorm(), 5.0);
}

TEST(SparseTensorTest, SetValue) {
  SparseTensor t = MakeSmall();
  t.set_value(0, 9.0);
  EXPECT_EQ(t.value(0), 9.0);
}

TEST(SparseTensorTest, ModeIndexPartitionsEntries) {
  SparseTensor t = MakeSmall();
  t.BuildModeIndex();
  for (std::int64_t mode = 0; mode < t.order(); ++mode) {
    std::int64_t total = 0;
    std::set<std::int64_t> seen;
    for (std::int64_t i = 0; i < t.dim(mode); ++i) {
      for (std::int64_t e : t.Slice(mode, i)) {
        EXPECT_EQ(t.index(e, mode), i);
        seen.insert(e);
        ++total;
      }
      EXPECT_EQ(t.SliceSize(mode, i),
                static_cast<std::int64_t>(t.Slice(mode, i).size()));
    }
    EXPECT_EQ(total, t.nnz());
    EXPECT_EQ(static_cast<std::int64_t>(seen.size()), t.nnz());
  }
}

TEST(SparseTensorTest, SliceContents) {
  SparseTensor t = MakeSmall();
  t.BuildModeIndex();
  // Mode 0, slice 1 holds entries 1 and 3.
  auto slice = t.Slice(0, 1);
  std::set<std::int64_t> ids(slice.begin(), slice.end());
  EXPECT_EQ(ids, (std::set<std::int64_t>{1, 3}));
  // Empty slice.
  SparseTensor t2({5, 5});
  t2.AddEntry({0, 0}, 1.0);
  t2.BuildModeIndex();
  EXPECT_TRUE(t2.Slice(0, 3).empty());
}

TEST(SparseTensorTest, AddEntryInvalidatesModeIndex) {
  SparseTensor t = MakeSmall();
  t.BuildModeIndex();
  EXPECT_TRUE(t.has_mode_index());
  t.AddEntry({0, 1, 1}, 4.0);
  EXPECT_FALSE(t.has_mode_index());
  t.BuildModeIndex();
  EXPECT_EQ(t.SliceSize(0, 0), 2);
}

TEST(SparseTensorTest, ByteSizeGrowsWithEntries) {
  SparseTensor t({10, 10});
  const std::int64_t empty = t.ByteSize();
  t.AddEntry({1, 1}, 1.0);
  EXPECT_GT(t.ByteSize(), empty);
}

TEST(SparseTensorDeathTest, OutOfBoundsEntryChecks) {
  SparseTensor t({2, 2});
  EXPECT_DEATH(t.AddEntry({2, 0}, 1.0), "CHECK failed");
}

// Property: the mode index is consistent on random tensors of any order.
class ModeIndexSweep : public ::testing::TestWithParam<int> {};

TEST_P(ModeIndexSweep, RandomTensorPartition) {
  const int order = GetParam();
  Rng rng(order);
  std::int64_t total = 1;
  for (int k = 0; k < order; ++k) total *= 6;
  SparseTensor t =
      UniformCubicTensor(order, 6, std::min<std::int64_t>(50, total), rng);
  for (std::int64_t mode = 0; mode < order; ++mode) {
    std::int64_t total = 0;
    for (std::int64_t i = 0; i < t.dim(mode); ++i) {
      total += t.SliceSize(mode, i);
      for (std::int64_t e : t.Slice(mode, i)) {
        ASSERT_EQ(t.index(e, mode), i);
      }
    }
    EXPECT_EQ(total, t.nnz());
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, ModeIndexSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(SparseTensorTest, RemoveEntriesCompactsInOrder) {
  SparseTensor t = MakeSmall();
  t.BuildModeIndex();
  // Drop entries 1 and 3; survivors keep their relative order with ids
  // shifted down.
  const std::vector<char> remove = {0, 1, 0, 1};
  EXPECT_EQ(t.RemoveEntries(remove), 2);
  ASSERT_EQ(t.nnz(), 2);
  EXPECT_EQ(t.value(0), 1.0);
  EXPECT_EQ(t.index(0, 0), 0);
  EXPECT_EQ(t.value(1), 0.5);
  EXPECT_EQ(t.index(1, 0), 2);
  // The mode index is invalidated, and rebuilding it sees only the
  // survivors.
  EXPECT_FALSE(t.has_mode_index());
  t.BuildModeIndex();
  EXPECT_EQ(t.SliceSize(0, 1), 0);  // both mode-0=1 entries removed
  EXPECT_EQ(t.SliceSize(0, 2), 1);
}

TEST(SparseTensorTest, RemoveEntriesEdgeCases) {
  SparseTensor t = MakeSmall();
  EXPECT_EQ(t.RemoveEntries(std::vector<char>(4, 0)), 0);  // no-op
  EXPECT_EQ(t.nnz(), 4);
  EXPECT_EQ(t.RemoveEntries(std::vector<char>(4, 1)), 4);  // remove all
  EXPECT_EQ(t.nnz(), 0);
}

TEST(SparseTensorDeathTest, RemoveEntriesFlagCountMustMatchNnz) {
  SparseTensor t = MakeSmall();
  EXPECT_DEATH(t.RemoveEntries(std::vector<char>(3, 0)), "CHECK failed");
}

}  // namespace
}  // namespace ptucker
