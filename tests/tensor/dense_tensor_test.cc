#include "tensor/dense_tensor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace ptucker {
namespace {

TEST(DenseTensorTest, ZeroInitialized) {
  DenseTensor t({2, 3, 4});
  EXPECT_EQ(t.order(), 3);
  EXPECT_EQ(t.size(), 24);
  for (std::int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0);
}

TEST(DenseTensorTest, MultiIndexAccess) {
  DenseTensor t({2, 3});
  const std::int64_t idx[2] = {1, 2};
  t.at(idx) = 7.0;
  EXPECT_EQ(t.at(idx), 7.0);
  // Mode-0-fastest layout: linear = 1 + 2*2 = 5.
  EXPECT_EQ(t[5], 7.0);
}

TEST(DenseTensorTest, IndexOfRoundTrip) {
  DenseTensor t({3, 2, 4});
  std::int64_t index[3];
  for (std::int64_t linear = 0; linear < t.size(); ++linear) {
    t.IndexOf(linear, index);
    EXPECT_EQ(&t.at(index), &t[linear]);
  }
}

TEST(DenseTensorTest, FillAndNorm) {
  DenseTensor t({2, 2});
  t.Fill(2.0);
  EXPECT_DOUBLE_EQ(t.FrobeniusNorm(), 4.0);
}

TEST(DenseTensorTest, Scale) {
  DenseTensor t({3});
  t.Fill(2.0);
  t.Scale(-1.5);
  EXPECT_EQ(t[0], -3.0);
}

TEST(DenseTensorTest, CountNonZeros) {
  DenseTensor t({2, 3});
  EXPECT_EQ(t.CountNonZeros(), 0);
  t[0] = 1.0;
  t[5] = -2.0;
  EXPECT_EQ(t.CountNonZeros(), 2);
}

TEST(DenseTensorTest, FillUniform) {
  Rng rng(3);
  DenseTensor t({4, 4});
  t.FillUniform(rng);
  EXPECT_GT(t.CountNonZeros(), 0);
  for (std::int64_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t[i], 0.0);
    EXPECT_LT(t[i], 1.0);
  }
}

TEST(DenseTensorTest, MaxAbsDiff) {
  DenseTensor a({2, 2}), b({2, 2});
  a[3] = 1.0;
  b[3] = -1.0;
  EXPECT_DOUBLE_EQ(MaxAbsDiff(a, b), 2.0);
}

TEST(DenseTensorTest, OrderOneTensor) {
  DenseTensor t({5});
  EXPECT_EQ(t.size(), 5);
  const std::int64_t idx[1] = {4};
  t.at(idx) = 1.0;
  EXPECT_EQ(t[4], 1.0);
}

}  // namespace
}  // namespace ptucker
