#include "tensor/io.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "util/random.h"

namespace ptucker {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(TnsParseTest, BasicContent) {
  const std::string content =
      "# a comment\n"
      "1 1 1 1.5\n"
      "\n"
      "2 3 1 -2.0\n";
  SparseTensor t = ParseTns(content);
  EXPECT_EQ(t.order(), 3);
  EXPECT_EQ(t.nnz(), 2);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.dim(2), 1);
  EXPECT_EQ(t.index(1, 1), 2);  // 1-based on disk -> 0-based in memory
  EXPECT_EQ(t.value(0), 1.5);
}

TEST(TnsParseTest, ExplicitDims) {
  SparseTensor t = ParseTns("1 1 0.5\n", {10, 20});
  EXPECT_EQ(t.dim(0), 10);
  EXPECT_EQ(t.dim(1), 20);
}

TEST(TnsParseTest, RejectsOutOfBoundsForExplicitDims) {
  EXPECT_THROW(ParseTns("5 1 0.5\n", {4, 4}), std::runtime_error);
}

TEST(TnsParseTest, RejectsNonNumeric) {
  EXPECT_THROW(ParseTns("1 abc 0.5\n"), std::runtime_error);
}

TEST(TnsParseTest, RejectsZeroIndex) {
  EXPECT_THROW(ParseTns("0 1 0.5\n"), std::runtime_error);
}

TEST(TnsParseTest, RejectsFractionalIndex) {
  EXPECT_THROW(ParseTns("1.5 1 0.5\n"), std::runtime_error);
}

TEST(TnsParseTest, RejectsInconsistentOrder) {
  EXPECT_THROW(ParseTns("1 1 0.5\n1 1 1 0.5\n"), std::runtime_error);
}

TEST(TnsParseTest, RejectsValueOnlyLine) {
  EXPECT_THROW(ParseTns("0.5\n"), std::runtime_error);
}

TEST(TnsParseTest, EmptyContentWithoutDimsThrows) {
  EXPECT_THROW(ParseTns("# nothing\n"), std::runtime_error);
}

TEST(TnsRoundTripTest, FormatThenParse) {
  Rng rng(1);
  SparseTensor original = UniformSparseTensor({5, 7, 3}, 20, rng);
  SparseTensor parsed = ParseTns(FormatTns(original), original.dims());
  ASSERT_EQ(parsed.nnz(), original.nnz());
  for (std::int64_t e = 0; e < original.nnz(); ++e) {
    for (std::int64_t k = 0; k < 3; ++k) {
      EXPECT_EQ(parsed.index(e, k), original.index(e, k));
    }
    EXPECT_DOUBLE_EQ(parsed.value(e), original.value(e));
  }
}

TEST(TnsFileTest, WriteAndReadBack) {
  Rng rng(2);
  SparseTensor original = UniformSparseTensor({4, 4, 4}, 10, rng);
  const std::string path = TempPath("ptucker_io_test.tns");
  WriteTns(path, original);
  SparseTensor loaded = ReadTns(path, original.dims());
  EXPECT_EQ(loaded.nnz(), original.nnz());
  std::remove(path.c_str());
}

TEST(TnsFileTest, MissingFileThrows) {
  EXPECT_THROW(ReadTns(TempPath("does_not_exist_ptucker.tns")),
               std::runtime_error);
}

TEST(BinaryIoTest, RoundTripExact) {
  Rng rng(3);
  SparseTensor original = UniformSparseTensor({9, 5, 6, 2}, 40, rng);
  const std::string path = TempPath("ptucker_io_test.ptnb");
  WriteBinary(path, original);
  SparseTensor loaded = ReadBinary(path);
  ASSERT_EQ(loaded.dims(), original.dims());
  ASSERT_EQ(loaded.nnz(), original.nnz());
  for (std::int64_t e = 0; e < original.nnz(); ++e) {
    EXPECT_EQ(loaded.value(e), original.value(e));  // bit-exact
    for (std::int64_t k = 0; k < 4; ++k) {
      EXPECT_EQ(loaded.index(e, k), original.index(e, k));
    }
  }
  std::remove(path.c_str());
}

TEST(BinaryIoTest, BadMagicThrows) {
  const std::string path = TempPath("ptucker_bad_magic.ptnb");
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("NOPE garbage", f);
  std::fclose(f);
  EXPECT_THROW(ReadBinary(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, TruncatedFileThrows) {
  Rng rng(4);
  SparseTensor original = UniformSparseTensor({5, 5}, 10, rng);
  const std::string path = TempPath("ptucker_truncated.ptnb");
  WriteBinary(path, original);
  // Truncate the file to half.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(ReadBinary(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ptucker
