#include "tensor/nmode.h"

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "tensor/index.h"
#include "tensor/matricize.h"
#include "util/random.h"

namespace ptucker {
namespace {

DenseTensor RandomTensor(const std::vector<std::int64_t>& dims,
                         std::uint64_t seed) {
  Rng rng(seed);
  DenseTensor t(dims);
  t.FillUniform(rng);
  return t;
}

Matrix RandomMatrix(std::int64_t rows, std::int64_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  m.FillUniform(rng);
  return m;
}

// Brute-force Eq. 2.
double BruteForceModeProductEntry(const DenseTensor& x, const Matrix& u,
                                  std::int64_t mode,
                                  const std::int64_t* out_index) {
  std::vector<std::int64_t> index(out_index, out_index + x.order());
  double sum = 0.0;
  for (std::int64_t i = 0; i < x.dim(mode); ++i) {
    index[static_cast<std::size_t>(mode)] = i;
    sum += x.at(index.data()) * u(out_index[mode], i);
  }
  return sum;
}

TEST(ModeProductTest, MatchesBruteForceEq2) {
  DenseTensor x = RandomTensor({3, 4, 2}, 1);
  for (std::int64_t mode = 0; mode < 3; ++mode) {
    Matrix u = RandomMatrix(5, x.dim(mode), 10 + mode);
    DenseTensor y = ModeProduct(x, u, mode);
    ASSERT_EQ(y.dim(mode), 5);
    std::vector<std::int64_t> index(3);
    for (std::int64_t linear = 0; linear < y.size(); ++linear) {
      y.IndexOf(linear, index.data());
      EXPECT_NEAR(y[linear],
                  BruteForceModeProductEntry(x, u, mode, index.data()),
                  1e-12);
    }
  }
}

TEST(ModeProductTest, UnfoldingIdentity) {
  // (X ×n U)(n) = U · X(n), the defining property.
  DenseTensor x = RandomTensor({4, 3, 2}, 2);
  const std::int64_t mode = 1;
  Matrix u = RandomMatrix(6, 3, 3);
  DenseTensor y = ModeProduct(x, u, mode);
  Matrix lhs = Matricize(y, mode);
  Matrix rhs = MatMul(u, Matricize(x, mode));
  EXPECT_TRUE(AllClose(lhs, rhs, 1e-12));
}

TEST(ModeProductTest, IdentityMatrixIsNoop) {
  DenseTensor x = RandomTensor({3, 3, 3}, 4);
  DenseTensor y = ModeProduct(x, Matrix::Identity(3), 1);
  EXPECT_LT(MaxAbsDiff(x, y), 1e-15);
}

TEST(ModeProductTest, CommutesAcrossDistinctModes) {
  DenseTensor x = RandomTensor({3, 4, 5}, 5);
  Matrix u = RandomMatrix(2, 3, 6);
  Matrix v = RandomMatrix(6, 5, 7);
  DenseTensor a = ModeProduct(ModeProduct(x, u, 0), v, 2);
  DenseTensor b = ModeProduct(ModeProduct(x, v, 2), u, 0);
  EXPECT_LT(MaxAbsDiff(a, b), 1e-12);
}

TEST(ModeProductTest, SequentialSameModeComposes) {
  // X ×n U ×n V = X ×n (V U).
  DenseTensor x = RandomTensor({3, 4}, 8);
  Matrix u = RandomMatrix(5, 4, 9);
  Matrix v = RandomMatrix(2, 5, 10);
  DenseTensor lhs = ModeProduct(ModeProduct(x, u, 1), v, 1);
  DenseTensor rhs = ModeProduct(x, MatMul(v, u), 1);
  EXPECT_LT(MaxAbsDiff(lhs, rhs), 1e-12);
}

TEST(ModeProductChainTest, SkipModeLeavesDimension) {
  DenseTensor x = RandomTensor({3, 4, 5}, 11);
  std::vector<Matrix> mats = {RandomMatrix(2, 3, 12), RandomMatrix(2, 4, 13),
                              RandomMatrix(2, 5, 14)};
  DenseTensor y = ModeProductChain(x, mats, 1);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 4);
  EXPECT_EQ(y.dim(2), 2);
}

TEST(SparseTtmChainTest, MatchesDenseComputation) {
  // Sparse X (zeros elsewhere) -> TTMc must equal the dense chain's
  // matricization.
  Rng rng(15);
  SparseTensor sparse({4, 3, 5});
  DenseTensor dense({4, 3, 5});
  for (int e = 0; e < 10; ++e) {
    std::int64_t index[3] = {
        static_cast<std::int64_t>(rng.UniformInt(4)),
        static_cast<std::int64_t>(rng.UniformInt(3)),
        static_cast<std::int64_t>(rng.UniformInt(5))};
    const double value = rng.Normal();
    dense.at(index) += value;  // duplicates accumulate in both versions
    sparse.AddEntry(index, value);
  }
  std::vector<Matrix> factors = {RandomMatrix(4, 2, 16),
                                 RandomMatrix(3, 2, 17),
                                 RandomMatrix(5, 2, 18)};
  for (std::int64_t mode = 0; mode < 3; ++mode) {
    // Dense reference: X ×_{k≠mode} A(k)ᵀ then unfold.
    std::vector<Matrix> transposed;
    for (const auto& f : factors) transposed.push_back(f.Transposed());
    DenseTensor chain = ModeProductChain(dense, transposed, mode);
    Matrix expected = Matricize(chain, mode);
    Matrix actual = SparseTtmChain(sparse, factors, mode);
    EXPECT_TRUE(AllClose(actual, expected, 1e-10)) << "mode " << mode;
  }
}

TEST(SparseTtmChainTest, ChargesTracker) {
  SparseTensor sparse({10, 10, 10});
  sparse.AddEntry({0, 0, 0}, 1.0);
  std::vector<Matrix> factors = {Matrix(10, 3), Matrix(10, 3),
                                 Matrix(10, 3)};
  MemoryTracker tracker;
  SparseTtmChain(sparse, factors, 0, &tracker);
  // Y is 10 x 9 doubles.
  EXPECT_GE(tracker.peak_bytes(), 10 * 9 * 8);
  EXPECT_EQ(tracker.current_bytes(), 0);
}

TEST(SparseTtmChainTest, BudgetTriggersOom) {
  SparseTensor sparse({1000, 1000, 1000});
  sparse.AddEntry({0, 0, 0}, 1.0);
  std::vector<Matrix> factors = {Matrix(1000, 10), Matrix(1000, 10),
                                 Matrix(1000, 10)};
  MemoryTracker tracker(1024);  // 1 KB: far below 1000x100 doubles
  EXPECT_THROW(SparseTtmChain(sparse, factors, 0, &tracker),
               OutOfMemoryBudget);
}

TEST(ReconstructTest, EntryMatchesDense) {
  DenseTensor core = RandomTensor({2, 3, 2}, 19);
  std::vector<Matrix> factors = {RandomMatrix(4, 2, 20),
                                 RandomMatrix(5, 3, 21),
                                 RandomMatrix(3, 2, 22)};
  DenseTensor full = ReconstructDense(core, factors);
  std::vector<std::int64_t> index(3);
  for (std::int64_t linear = 0; linear < full.size(); ++linear) {
    full.IndexOf(linear, index.data());
    EXPECT_NEAR(full[linear], ReconstructEntry(core, factors, index.data()),
                1e-11);
  }
}

}  // namespace
}  // namespace ptucker
