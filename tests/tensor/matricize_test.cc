#include "tensor/matricize.h"

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "tensor/index.h"
#include "util/random.h"

namespace ptucker {
namespace {

DenseTensor RandomTensor(const std::vector<std::int64_t>& dims,
                         std::uint64_t seed) {
  Rng rng(seed);
  DenseTensor t(dims);
  t.FillUniform(rng);
  return t;
}

TEST(MatricizeTest, ShapeAndRoundTrip) {
  DenseTensor t = RandomTensor({3, 4, 5}, 1);
  for (std::int64_t mode = 0; mode < 3; ++mode) {
    Matrix unfolded = Matricize(t, mode);
    EXPECT_EQ(unfolded.rows(), t.dim(mode));
    EXPECT_EQ(unfolded.cols(), t.size() / t.dim(mode));
    DenseTensor back = Dematricize(unfolded, t.dims(), mode);
    EXPECT_LT(MaxAbsDiff(t, back), 1e-15);
  }
}

TEST(MatricizeTest, KoldaExampleMode0) {
  // The standard 3x4x2 example from Kolda & Bader: X(:,:,1) fills values
  // 1..12 column-wise, X(:,:,2) fills 13..24. Mode-1 (0-based mode 0)
  // unfolding is [1..12 | 13..24] side by side.
  DenseTensor t({3, 4, 2});
  std::int64_t index[3];
  double value = 1.0;
  for (std::int64_t k = 0; k < 2; ++k) {
    for (std::int64_t j = 0; j < 4; ++j) {
      for (std::int64_t i = 0; i < 3; ++i) {
        index[0] = i;
        index[1] = j;
        index[2] = k;
        t.at(index) = value;
        value += 1.0;
      }
    }
  }
  Matrix unfolded = Matricize(t, 0);
  ASSERT_EQ(unfolded.rows(), 3);
  ASSERT_EQ(unfolded.cols(), 8);
  EXPECT_EQ(unfolded(0, 0), 1.0);
  EXPECT_EQ(unfolded(1, 0), 2.0);
  EXPECT_EQ(unfolded(0, 1), 4.0);
  EXPECT_EQ(unfolded(0, 4), 13.0);
  EXPECT_EQ(unfolded(2, 7), 24.0);
}

TEST(MatricizeTest, Eq1ColumnFormula) {
  // Verify element placement against Eq. (1) directly (0-based form).
  DenseTensor t = RandomTensor({2, 3, 2, 2}, 2);
  const std::int64_t mode = 2;
  Matrix unfolded = Matricize(t, mode);
  const auto col_strides = MatricizeColumnStrides(t.dims(), mode);
  std::int64_t index[4];
  for (std::int64_t linear = 0; linear < t.size(); ++linear) {
    t.IndexOf(linear, index);
    std::int64_t col = 0;
    for (std::int64_t k = 0; k < 4; ++k) {
      if (k == mode) continue;
      col += index[k] * col_strides[static_cast<std::size_t>(k)];
    }
    EXPECT_EQ(unfolded(index[mode], col), t[linear]);
  }
}

TEST(MatricizeTest, PreservesFrobeniusNorm) {
  DenseTensor t = RandomTensor({4, 3, 5}, 3);
  for (std::int64_t mode = 0; mode < 3; ++mode) {
    EXPECT_NEAR(Matricize(t, mode).FrobeniusNorm(), t.FrobeniusNorm(),
                1e-12);
  }
}

TEST(MatricizeTest, OrderTwoIsMatrixOrTranspose) {
  DenseTensor t = RandomTensor({3, 4}, 4);
  Matrix m0 = Matricize(t, 0);
  Matrix m1 = Matricize(t, 1);
  EXPECT_TRUE(AllClose(m0, m1.Transposed(), 1e-15));
}

class MatricizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(MatricizeSweep, RoundTripAllModes) {
  const int order = GetParam();
  std::vector<std::int64_t> dims;
  for (int k = 0; k < order; ++k) dims.push_back(2 + (k % 3));
  DenseTensor t = RandomTensor(dims, 40 + order);
  for (std::int64_t mode = 0; mode < order; ++mode) {
    DenseTensor back = Dematricize(Matricize(t, mode), dims, mode);
    EXPECT_LT(MaxAbsDiff(t, back), 1e-15);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, MatricizeSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace ptucker
