// Snapshot format v2 tests: bit-identical round trips through the
// mmap-ed loader, the v1 fallback, IVF section round trips, and an
// exhaustive corruption sweep — a bit flip or truncation at *every* byte
// offset of a v2 file must be rejected loudly (never UB, never a
// silently wrong model) when payload verification is on.
#include "serve/snapshot_v2.h"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ptucker.h"
#include "serve/snapshot.h"
#include "tensor/dense_tensor.h"
#include "util/random.h"

namespace ptucker {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.is_open());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// A small random model built directly (no training), with a VeST-sparse
// core. Mode 0 is tall enough (>= 64 rows) to receive an IVF section.
TuckerFactorization MakeModel(std::uint64_t seed = 11) {
  Rng rng(seed);
  TuckerFactorization model;
  const std::vector<std::int64_t> dims = {96, 10, 8};
  const std::vector<std::int64_t> ranks = {3, 2, 2};
  for (std::size_t n = 0; n < dims.size(); ++n) {
    Matrix factor(dims[n], ranks[n]);
    for (std::int64_t i = 0; i < factor.size(); ++i) {
      factor.data()[i] = rng.Uniform(-1.0, 1.0);
    }
    model.factors.push_back(std::move(factor));
  }
  model.core = DenseTensor(ranks);
  for (std::int64_t i = 0; i < model.core.size(); ++i) {
    model.core[i] = i % 3 == 0 ? 0.0 : rng.Uniform(-1.0, 1.0);
  }
  return model;
}

void ExpectBitIdentical(const TuckerFactorization& a,
                        const TuckerFactorization& b) {
  ASSERT_EQ(a.factors.size(), b.factors.size());
  for (std::size_t n = 0; n < a.factors.size(); ++n) {
    ASSERT_TRUE(a.factors[n].SameShape(b.factors[n]));
    EXPECT_EQ(a.factors[n].MaxAbsDiff(b.factors[n]), 0.0) << "factor " << n;
  }
  ASSERT_EQ(a.core.dims(), b.core.dims());
  EXPECT_EQ(MaxAbsDiff(a.core, b.core), 0.0);
}

TEST(SnapshotV2Test, FileRoundTripIsBitIdentical) {
  const TuckerFactorization model = MakeModel();
  const std::string path = TempPath("snapshot_v2_rt.ptks");
  SaveSnapshotV2(path, model, /*with_centroids=*/false);
  const std::unique_ptr<MmapSnapshot> snap =
      MmapSnapshot::Open(path, /*verify_payload=*/true);
  ExpectBitIdentical(model, MaterializeModel(*snap));
  std::filesystem::remove(path);
}

TEST(SnapshotV2Test, LoadSnapshotDispatchesOnVersion) {
  const TuckerFactorization model = MakeModel();
  const std::string path = TempPath("snapshot_v2_dispatch.ptks");
  SaveSnapshotV2(path, model, /*with_centroids=*/true);
  ExpectBitIdentical(model, LoadSnapshot(path));
  std::filesystem::remove(path);
}

TEST(SnapshotV2Test, V1FileFallsBackBehindTheSameInterface) {
  const TuckerFactorization model = MakeModel();
  const std::string path = TempPath("snapshot_v2_v1fb.ptks");
  SaveSnapshot(path, model);  // v1 writer
  const std::unique_ptr<MmapSnapshot> snap = MmapSnapshot::Open(path);
  EXPECT_FALSE(snap->mapped());  // converted in memory, not mapped
  ExpectBitIdentical(model, MaterializeModel(*snap));
  std::filesystem::remove(path);
}

TEST(SnapshotV2Test, IvfSectionRoundTrips) {
  const TuckerFactorization model = MakeModel();
  const std::string path = TempPath("snapshot_v2_ivf.ptks");
  SaveSnapshotV2(path, model, /*with_centroids=*/true);
  const std::unique_ptr<MmapSnapshot> snap =
      MmapSnapshot::Open(path, /*verify_payload=*/true);

  // Mode 0 has 96 rows — indexed; modes 1 and 2 are under the 64-row
  // floor and must be skipped.
  const IvfModeView* ivf = snap->ivf(0);
  ASSERT_NE(ivf, nullptr);
  EXPECT_EQ(snap->ivf(1), nullptr);
  EXPECT_EQ(snap->ivf(2), nullptr);
  EXPECT_GT(ivf->k, 0);
  EXPECT_EQ(ivf->centroids.rows(), ivf->k);
  EXPECT_EQ(ivf->centroids.cols(), 3);
  ASSERT_EQ(ivf->offsets.size(), static_cast<std::size_t>(ivf->k) + 1);
  EXPECT_EQ(ivf->offsets[0], 0);
  EXPECT_EQ(ivf->offsets[static_cast<std::size_t>(ivf->k)], 96);
  // The member lists partition [0, 96): every id exactly once.
  std::vector<int> seen(96, 0);
  for (std::size_t i = 0; i < ivf->ids.size(); ++i) {
    ASSERT_GE(ivf->ids[i], 0);
    ASSERT_LT(ivf->ids[i], 96);
    ++seen[static_cast<std::size_t>(ivf->ids[i])];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
  std::filesystem::remove(path);
}

TEST(SnapshotV2Test, ErrorsNameTheFileAndSection) {
  const TuckerFactorization model = MakeModel();
  const std::string path = TempPath("snapshot_v2_err.ptks");
  std::string bytes = SerializeSnapshotV2(model, nullptr);
  bytes[0] = 'X';
  WriteFile(path, bytes);
  try {
    MmapSnapshot::Open(path);
    FAIL() << "bad magic not rejected";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("section"), std::string::npos) << what;
  }
  std::filesystem::remove(path);
}

// The corruption sweep: with payload verification on, a single flipped
// bit at ANY byte offset — header fields, meta, padding gaps, factor
// payload, IVF lists — must throw, never load a silently wrong model.
TEST(SnapshotV2Test, BitFlipAtEveryOffsetIsRejected) {
  const TuckerFactorization model = MakeModel();
  std::vector<IvfIndex> ivf;
  for (const Matrix& factor : model.factors) {
    ivf.push_back(BuildIvfRows(FactorView(factor), IvfBuildOptions{}));
  }
  const std::string pristine = SerializeSnapshotV2(model, &ivf);
  const std::string path = TempPath("snapshot_v2_flip.ptks");
  for (std::size_t offset = 0; offset < pristine.size(); ++offset) {
    std::string bytes = pristine;
    bytes[offset] = static_cast<char>(bytes[offset] ^ 0x10);
    WriteFile(path, bytes);
    EXPECT_THROW(MmapSnapshot::Open(path, /*verify_payload=*/true),
                 std::runtime_error)
        << "flip at offset " << offset << " not rejected";
  }
  std::filesystem::remove(path);
}

// Truncating the file at any length — inside the header, the meta, or
// any payload section — must also throw.
TEST(SnapshotV2Test, TruncationAtEveryLengthIsRejected) {
  const TuckerFactorization model = MakeModel();
  const std::string pristine = SerializeSnapshotV2(model, nullptr);
  const std::string path = TempPath("snapshot_v2_trunc.ptks");
  for (std::size_t length = 0; length < pristine.size(); ++length) {
    WriteFile(path, pristine.substr(0, length));
    EXPECT_THROW(MmapSnapshot::Open(path, /*verify_payload=*/true),
                 std::runtime_error)
        << "truncation to " << length << " bytes not rejected";
  }
  WriteFile(path, pristine + "x");  // trailing garbage
  EXPECT_THROW(MmapSnapshot::Open(path, /*verify_payload=*/true),
               std::runtime_error);
  std::filesystem::remove(path);
}

// Payload verification is opt-in (structural checks always run): a flip
// inside the factor payload loads without it — the documented tradeoff
// that keeps open() cost independent of model size — and is caught the
// moment it is requested.
TEST(SnapshotV2Test, PayloadVerificationIsOptIn) {
  const TuckerFactorization model = MakeModel();
  std::string bytes = SerializeSnapshotV2(model, nullptr);
  std::uint64_t payload_offset = 0;
  std::memcpy(&payload_offset, bytes.data() + 40, sizeof(payload_offset));
  bytes[static_cast<std::size_t>(payload_offset)] ^= 0x10;  // factor 0 bits
  const std::string path = TempPath("snapshot_v2_optin.ptks");
  WriteFile(path, bytes);
  EXPECT_NO_THROW(MmapSnapshot::Open(path, /*verify_payload=*/false));
  EXPECT_THROW(MmapSnapshot::Open(path, /*verify_payload=*/true),
               std::runtime_error);
  std::filesystem::remove(path);
}

// Hostile header: a correctly-checksummed v2 file declaring a 2^40-row
// factor in a ~4 KB body must be rejected from the byte budget before
// any view is built or memory allocated.
TEST(SnapshotV2Test, RejectsHugeDeclaredShapes) {
  const TuckerFactorization model = MakeModel();
  std::string bytes = SerializeSnapshotV2(model, nullptr);
  std::uint64_t payload_offset = 0;
  std::memcpy(&payload_offset, bytes.data() + 40, sizeof(payload_offset));
  // meta layout: order, dims[0..2], ... — patch dims[0] at meta + 8.
  const std::int64_t huge = std::int64_t{1} << 40;
  std::memcpy(&bytes[64 + 8], &huge, sizeof(huge));
  const std::uint32_t meta_crc = SnapshotCrc32(
      bytes.data() + 64, static_cast<std::size_t>(payload_offset) - 64);
  std::memcpy(&bytes[8], &meta_crc, sizeof(meta_crc));
  const std::string path = TempPath("snapshot_v2_huge.ptks");
  WriteFile(path, bytes);
  try {
    MmapSnapshot::Open(path);
    FAIL() << "huge declared factor not rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("factor 0"), std::string::npos)
        << e.what();
  }
  std::filesystem::remove(path);
}

TEST(SnapshotV2Test, OpenMissingFileThrows) {
  EXPECT_THROW(MmapSnapshot::Open("/nonexistent/model_v2.ptks"),
               std::runtime_error);
}

}  // namespace
}  // namespace ptucker
