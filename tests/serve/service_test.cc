// PredictionService tests: batched predictions bit-identical to the
// per-entry PredictEntries path at several tile widths, deterministic
// top-K against brute force, validation, and snapshot hot-reload safety
// while a query loop is running.
#include "serve/service.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <omp.h>

#include "core/delta.h"
#include "core/ptucker.h"
#include "core/reconstruction.h"
#include "data/synthetic.h"
#include "util/random.h"

namespace ptucker {
namespace {

TuckerFactorization MakeModel(const std::vector<std::int64_t>& dims,
                              const std::vector<std::int64_t>& ranks,
                              std::uint64_t seed) {
  Rng rng(seed);
  TuckerFactorization model;
  for (std::size_t n = 0; n < dims.size(); ++n) {
    Matrix factor(dims[n], ranks[n]);
    factor.FillUniform(rng);
    model.factors.push_back(std::move(factor));
  }
  model.core = DenseTensor(ranks);
  model.core.FillUniform(rng);
  return model;
}

SparseTensor MakeQueries(const std::vector<std::int64_t>& dims,
                         std::int64_t count, std::uint64_t seed) {
  Rng rng(seed);
  SparseTensor queries(dims);
  std::vector<std::int64_t> index(dims.size());
  for (std::int64_t q = 0; q < count; ++q) {
    for (std::size_t n = 0; n < dims.size(); ++n) {
      index[n] = static_cast<std::int64_t>(
          rng.UniformInt(static_cast<std::uint64_t>(dims[n])));
    }
    queries.AddEntry(index, 0.0);
  }
  queries.BuildModeIndex();
  return queries;
}

// The acceptance contract: the service's batched path must EXPECT_EQ the
// per-entry PredictEntries flow (driven by a batch-1 mode-major engine
// over the same model) at B ∈ {1, 4, 32}.
TEST(PredictionServiceTest, PredictBatchMatchesPredictEntriesPath) {
  const std::vector<std::int64_t> dims = {30, 25, 18};
  const std::vector<std::int64_t> ranks = {4, 3, 5};
  const TuckerFactorization model = MakeModel(dims, ranks, 11);
  const SparseTensor queries = MakeQueries(dims, 500, 12);

  const CoreEntryList list(model.core);
  const ModeMajorDeltaEngine per_entry_engine(list, model.factors, nullptr);
  const std::vector<double> reference =
      PredictEntries(queries, per_entry_engine);

  for (const std::int64_t tile : {std::int64_t{1}, std::int64_t{4},
                                  std::int64_t{32}}) {
    const PredictionService service(ModelSnapshot::Create(model, tile));
    const std::vector<double> batched = service.PredictBatch(queries);
    ASSERT_EQ(batched.size(), reference.size());
    for (std::size_t q = 0; q < reference.size(); ++q) {
      EXPECT_EQ(batched[q], reference[q]) << "tile " << tile << " query "
                                          << q;
    }
    // Single-entry Predict agrees with its own batch.
    std::vector<std::int64_t> index(dims.size());
    for (std::size_t q = 0; q < 25; ++q) {
      for (std::size_t n = 0; n < dims.size(); ++n) {
        index[n] = queries.index(static_cast<std::int64_t>(q),
                                 static_cast<std::int64_t>(n));
      }
      EXPECT_EQ(service.Predict(index), batched[q]);
    }
  }
}

TEST(PredictionServiceTest, TopKMatchesBruteForce) {
  const std::vector<std::int64_t> dims = {12, 60, 9};
  const std::vector<std::int64_t> ranks = {3, 4, 3};
  const TuckerFactorization model = MakeModel(dims, ranks, 21);
  const PredictionService service(ModelSnapshot::Create(model, 16));

  const std::vector<std::int64_t> at = {5, 0, 2};
  std::vector<char> exclude(static_cast<std::size_t>(dims[1]), 0);
  exclude[3] = exclude[40] = 1;

  for (const std::vector<char>* mask :
       {static_cast<const std::vector<char>*>(nullptr),
        static_cast<const std::vector<char>*>(&exclude)}) {
    std::vector<ScoredIndex> brute;
    for (std::int64_t movie = 0; movie < dims[1]; ++movie) {
      if (mask != nullptr && (*mask)[static_cast<std::size_t>(movie)]) {
        continue;
      }
      brute.push_back({movie, service.Predict({5, movie, 2})});
    }
    std::sort(brute.begin(), brute.end(),
              [](const ScoredIndex& a, const ScoredIndex& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.index < b.index;
              });
    for (const std::int64_t k : {std::int64_t{1}, std::int64_t{7},
                                 std::int64_t{1000}}) {
      const std::vector<ScoredIndex> top = service.TopK(1, at, k, mask);
      const std::size_t want =
          std::min<std::size_t>(brute.size(), static_cast<std::size_t>(k));
      ASSERT_EQ(top.size(), want) << "k=" << k;
      for (std::size_t r = 0; r < want; ++r) {
        EXPECT_EQ(top[r].index, brute[r].index) << "k=" << k << " rank " << r;
        EXPECT_EQ(top[r].score, brute[r].score) << "k=" << k << " rank " << r;
      }
    }
  }
}

TEST(PredictionServiceTest, TopKDeterministicAcrossThreadsAndTiles) {
  const std::vector<std::int64_t> dims = {10, 300, 8};
  const std::vector<std::int64_t> ranks = {3, 3, 3};
  const TuckerFactorization model = MakeModel(dims, ranks, 31);
  const std::vector<std::int64_t> at = {7, 0, 1};

  std::vector<ScoredIndex> reference;
  const int saved_threads = omp_get_max_threads();
  for (const int threads : {1, 3, 8}) {
    omp_set_num_threads(threads);
    for (const std::int64_t tile : {std::int64_t{1}, std::int64_t{16},
                                    std::int64_t{64}}) {
      const PredictionService service(ModelSnapshot::Create(model, tile));
      const std::vector<ScoredIndex> top = service.TopK(1, at, 17);
      if (reference.empty()) {
        reference = top;
        continue;
      }
      ASSERT_EQ(top.size(), reference.size());
      for (std::size_t r = 0; r < top.size(); ++r) {
        EXPECT_EQ(top[r].index, reference[r].index)
            << "threads " << threads << " tile " << tile << " rank " << r;
        EXPECT_EQ(top[r].score, reference[r].score)
            << "threads " << threads << " tile " << tile << " rank " << r;
      }
    }
  }
  omp_set_num_threads(saved_threads);
}

TEST(PredictionServiceTest, ValidatesQueriesAndConstruction) {
  const TuckerFactorization model = MakeModel({8, 6, 5}, {2, 2, 2}, 41);
  const PredictionService service(ModelSnapshot::Create(model, 8));

  EXPECT_THROW(service.Predict({1, 2}), std::invalid_argument);
  EXPECT_THROW(service.Predict({8, 0, 0}), std::invalid_argument);
  EXPECT_THROW(service.Predict({0, -1, 0}), std::invalid_argument);
  EXPECT_THROW(service.TopK(3, {0, 0, 0}, 5), std::invalid_argument);
  EXPECT_THROW(service.TopK(1, {0, 0, 0}, 0), std::invalid_argument);
  EXPECT_THROW(service.TopK(1, {0, 0, 9}, 5), std::invalid_argument);
  const std::vector<char> short_mask(3, 0);
  EXPECT_THROW(service.TopK(1, {0, 0, 0}, 5, &short_mask),
               std::invalid_argument);

  EXPECT_THROW(PredictionService(nullptr), std::invalid_argument);
  TuckerFactorization broken = MakeModel({8, 6, 5}, {2, 2, 2}, 41);
  broken.factors[1] = Matrix(6, 3);  // cols disagree with the core rank
  EXPECT_THROW(ModelSnapshot::Create(std::move(broken), 8),
               std::invalid_argument);
  EXPECT_THROW(ModelSnapshot::Create(MakeModel({8, 6, 5}, {2, 2, 2}, 41), 0),
               std::invalid_argument);
}

// Hot-reload sanity: a writer thread flips the service between two
// models while the reader keeps issuing PredictBatch. Every batch must
// equal exactly one model's output end-to-end — a reload can never mix
// models inside a batch, lose the snapshot under a reader, or tear.
TEST(PredictionServiceTest, ConcurrentReloadDuringPredictBatch) {
  const std::vector<std::int64_t> dims = {20, 15, 10};
  const std::vector<std::int64_t> ranks = {3, 3, 3};
  const TuckerFactorization model_a = MakeModel(dims, ranks, 51);
  const TuckerFactorization model_b = MakeModel(dims, ranks, 52);
  const SparseTensor queries = MakeQueries(dims, 200, 53);

  const auto snapshot_a = ModelSnapshot::Create(model_a, 16);
  const auto snapshot_b = ModelSnapshot::Create(model_b, 16);
  PredictionService service(snapshot_a);
  const std::vector<double> expected_a = service.PredictBatch(queries);
  service.ReloadSnapshot(snapshot_b);
  const std::vector<double> expected_b = service.PredictBatch(queries);
  service.ReloadSnapshot(snapshot_a);

  std::atomic<bool> stop{false};
  std::thread reloader([&] {
    for (int flip = 0; !stop.load(std::memory_order_relaxed); ++flip) {
      service.ReloadSnapshot((flip & 1) != 0 ? snapshot_a : snapshot_b);
    }
  });

  int saw_a = 0;
  int saw_b = 0;
  for (int round = 0; round < 200; ++round) {
    const std::vector<double> got = service.PredictBatch(queries);
    const bool is_a = got == expected_a;
    const bool is_b = got == expected_b;
    ASSERT_TRUE(is_a || is_b) << "round " << round
                              << ": batch mixed two snapshots";
    saw_a += is_a ? 1 : 0;
    saw_b += is_b ? 1 : 0;
  }
  stop.store(true, std::memory_order_relaxed);
  reloader.join();
  EXPECT_EQ(saw_a + saw_b, 200);
}

}  // namespace
}  // namespace ptucker
