// Snapshot format tests: bit-identical round trips, rejection of
// corrupt/truncated/mismatched files, and warm-start trajectory
// continuation through PTuckerOptions::init_snapshot.
#include "serve/snapshot.h"

#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "core/ptucker.h"
#include "data/synthetic.h"
#include "util/random.h"

namespace ptucker {
namespace {

SparseTensor MakeTensor(std::uint64_t seed = 7) {
  Rng rng(seed);
  return UniformSparseTensor({20, 15, 12}, 900, rng);
}

TuckerFactorization TrainModel(const SparseTensor& x, int iterations,
                               bool orthogonalize = true) {
  PTuckerOptions options;
  options.core_dims = {3, 4, 2};
  options.max_iterations = iterations;
  options.tolerance = 0.0;
  options.orthogonalize_output = orthogonalize;
  return PTuckerDecompose(x, options).model;
}

void ExpectBitIdentical(const TuckerFactorization& a,
                        const TuckerFactorization& b) {
  ASSERT_EQ(a.factors.size(), b.factors.size());
  for (std::size_t n = 0; n < a.factors.size(); ++n) {
    ASSERT_TRUE(a.factors[n].SameShape(b.factors[n]));
    EXPECT_EQ(a.factors[n].MaxAbsDiff(b.factors[n]), 0.0) << "factor " << n;
  }
  ASSERT_EQ(a.core.dims(), b.core.dims());
  EXPECT_EQ(MaxAbsDiff(a.core, b.core), 0.0);
}

TEST(SnapshotTest, RoundTripIsBitIdentical) {
  const SparseTensor x = MakeTensor();
  const TuckerFactorization model = TrainModel(x, 3);
  const TuckerFactorization reloaded =
      ParseSnapshot(SerializeSnapshot(model));
  ExpectBitIdentical(model, reloaded);
}

TEST(SnapshotTest, FileRoundTripIsBitIdentical) {
  const SparseTensor x = MakeTensor();
  const TuckerFactorization model = TrainModel(x, 3);
  const std::string path =
      (std::filesystem::temp_directory_path() / "snapshot_test_rt.ptks")
          .string();
  SaveSnapshot(path, model);
  const TuckerFactorization reloaded = LoadSnapshot(path);
  std::filesystem::remove(path);
  ExpectBitIdentical(model, reloaded);
}

TEST(SnapshotTest, StoresOnlyCoreNonzeros) {
  const SparseTensor x = MakeTensor();
  TuckerFactorization model = TrainModel(x, 2, /*orthogonalize=*/false);
  // Sparsify the core the way P-TUCKER-APPROX truncation does; the
  // snapshot must round-trip the zeros and shrink with them.
  const std::string dense_bytes = SerializeSnapshot(model);
  for (std::int64_t i = 0; i < model.core.size(); i += 2) model.core[i] = 0.0;
  const std::string sparse_bytes = SerializeSnapshot(model);
  EXPECT_LT(sparse_bytes.size(), dense_bytes.size());
  ExpectBitIdentical(model, ParseSnapshot(sparse_bytes));
}

TEST(SnapshotTest, RejectsBadMagic) {
  const TuckerFactorization model = TrainModel(MakeTensor(), 1);
  std::string bytes = SerializeSnapshot(model);
  bytes[0] = 'X';
  EXPECT_THROW(ParseSnapshot(bytes), std::runtime_error);
}

TEST(SnapshotTest, RejectsVersionMismatch) {
  const TuckerFactorization model = TrainModel(MakeTensor(), 1);
  std::string bytes = SerializeSnapshot(model);
  bytes[4] = static_cast<char>(kSnapshotVersion + 1);  // version field
  try {
    ParseSnapshot(bytes);
    FAIL() << "version mismatch not rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
}

TEST(SnapshotTest, RejectsCorruptBody) {
  const TuckerFactorization model = TrainModel(MakeTensor(), 1);
  const std::string pristine = SerializeSnapshot(model);
  // A flipped bit anywhere in the body must trip the CRC, never load a
  // silently wrong model.
  for (const std::size_t offset :
       {std::size_t{20}, std::size_t{40}, pristine.size() - 1}) {
    std::string bytes = pristine;
    bytes[offset] = static_cast<char>(bytes[offset] ^ 0x20);
    try {
      ParseSnapshot(bytes);
      FAIL() << "corruption at offset " << offset << " not rejected";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos)
          << e.what();
    }
  }
}

TEST(SnapshotTest, RejectsTruncationAndTrailingBytes) {
  const TuckerFactorization model = TrainModel(MakeTensor(), 1);
  const std::string pristine = SerializeSnapshot(model);
  EXPECT_THROW(ParseSnapshot(pristine.substr(0, 10)), std::runtime_error);
  EXPECT_THROW(ParseSnapshot(pristine.substr(0, pristine.size() / 2)),
               std::runtime_error);
  EXPECT_THROW(ParseSnapshot(pristine + "extra"), std::runtime_error);
  EXPECT_THROW(ParseSnapshot(""), std::runtime_error);
}

// Crafted hostile header: correct magic/version/CRC (the CRC is
// computable by anyone) but dims/ranks declaring terabyte-scale
// factors/core in a ~100-byte body. The parser must reject it from the
// byte budget *before* allocating, not OOM or overflow rows*cols.
TEST(SnapshotTest, RejectsHugeDeclaredShapesWithoutAllocating) {
  const auto crc32 = [](const std::string& data) {
    std::uint32_t crc = 0xFFFFFFFFu;
    for (const char ch : data) {
      crc ^= static_cast<unsigned char>(ch);
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) != 0 ? 0xEDB88320u ^ (crc >> 1) : crc >> 1;
      }
    }
    return crc ^ 0xFFFFFFFFu;
  };
  const auto append_i64 = [](std::string* out, std::int64_t value) {
    out->append(reinterpret_cast<const char*>(&value), sizeof(value));
  };
  const auto make_snapshot = [&](const std::vector<std::int64_t>& dims,
                                 const std::vector<std::int64_t>& ranks,
                                 std::int64_t core_nnz) {
    std::string body;
    append_i64(&body, static_cast<std::int64_t>(dims.size()));
    for (const std::int64_t d : dims) append_i64(&body, d);
    for (const std::int64_t r : ranks) append_i64(&body, r);
    append_i64(&body, core_nnz);
    std::string bytes = "PTKS";
    const std::uint32_t version = kSnapshotVersion;
    bytes.append(reinterpret_cast<const char*>(&version), sizeof(version));
    const std::uint32_t crc = crc32(body);
    bytes.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
    const std::uint64_t body_bytes = body.size();
    bytes.append(reinterpret_cast<const char*>(&body_bytes),
                 sizeof(body_bytes));
    return bytes + body;
  };
  // Factor 0 would be 2^40 x 8 doubles (64 TiB).
  EXPECT_THROW(ParseSnapshot(make_snapshot({std::int64_t{1} << 40, 2, 2},
                                           {8, 1, 1}, 0)),
               std::runtime_error);
  // rows * cols would overflow std::int64_t.
  EXPECT_THROW(ParseSnapshot(make_snapshot({std::int64_t{1} << 62, 2, 2},
                                           {512, 1, 1}, 0)),
               std::runtime_error);
  // Dense core would be 2^39 doubles (4 TiB).
  EXPECT_THROW(ParseSnapshot(make_snapshot({2, 2, 2},
                                           {std::int64_t{1} << 13,
                                            std::int64_t{1} << 13,
                                            std::int64_t{1} << 13},
                                           0)),
               std::runtime_error);
  // core_nnz claims far more entries than the body holds.
  EXPECT_THROW(ParseSnapshot(make_snapshot({1, 1, 1}, {1, 1, 1},
                                           /*core_nnz=*/1)),
               std::runtime_error);
}

TEST(SnapshotTest, LoadMissingFileThrows) {
  EXPECT_THROW(LoadSnapshot("/nonexistent/snapshot.ptks"),
               std::runtime_error);
}

// The warm-start contract: checkpoint after k iterations (no
// orthogonalization), resume through init_snapshot, and the resumed run
// reproduces the straight run's remaining iterations bit-for-bit —
// row-wise ALS is deterministic in the (factors, core) state.
TEST(SnapshotTest, WarmStartContinuesTrajectoryBitIdentically) {
  const SparseTensor x = MakeTensor(21);
  PTuckerOptions options;
  options.core_dims = {3, 3, 3};
  options.tolerance = 0.0;
  options.orthogonalize_output = false;

  options.max_iterations = 6;
  const PTuckerResult straight = PTuckerDecompose(x, options);

  options.max_iterations = 3;
  const PTuckerResult half = PTuckerDecompose(x, options);
  const TuckerFactorization checkpoint =
      ParseSnapshot(SerializeSnapshot(half.model));

  options.init_snapshot = &checkpoint;
  const PTuckerResult resumed = PTuckerDecompose(x, options);

  ASSERT_EQ(straight.iterations.size(), 6u);
  ASSERT_EQ(resumed.iterations.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(resumed.iterations[i].error, straight.iterations[i + 3].error)
        << "iteration " << i;
  }
  EXPECT_EQ(resumed.final_error, straight.final_error);
  ExpectBitIdentical(resumed.model, straight.model);
}

TEST(SnapshotTest, WarmStartShapeMismatchThrows) {
  const SparseTensor x = MakeTensor();
  const TuckerFactorization model = TrainModel(x, 1);  // ranks {3,4,2}
  PTuckerOptions options;
  options.core_dims = {3, 4, 3};  // mode-2 rank disagrees
  options.init_snapshot = &model;
  EXPECT_THROW(PTuckerDecompose(x, options), std::invalid_argument);

  Rng rng(3);
  const SparseTensor other = UniformSparseTensor({9, 15, 12}, 200, rng);
  options.core_dims = {3, 4, 2};
  EXPECT_THROW(PTuckerDecompose(other, options), std::invalid_argument);
}

TEST(SnapshotTest, SerializeRejectsInconsistentModel) {
  TuckerFactorization model = TrainModel(MakeTensor(), 1);
  model.factors.pop_back();
  EXPECT_THROW(SerializeSnapshot(model), std::runtime_error);
}

}  // namespace
}  // namespace ptucker
