// Hot reload under live socket load (ISSUE satellite): client threads
// hammer predicts over real TCP while another thread ReloadSnapshot()s
// the served service back and forth between two models. Every reply
// must match EXACTLY one model's prediction — bit-identical to model A
// or bit-identical to model B, never a blend, never a torn frame — and
// the connection-level byte stream must stay decodable throughout.
// Coalesced batches make this sharper than the in-process reload test:
// requests decoded before a swap may execute after it, and batchmates
// from different clients must still each see a single coherent
// snapshot.
#include "serve/net/server.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/ptucker.h"
#include "linalg/matrix.h"
#include "serve/net/client.h"
#include "serve/service.h"
#include "tensor/dense_tensor.h"
#include "util/random.h"

namespace ptucker {
namespace {

TuckerFactorization MakeModel(const std::vector<std::int64_t>& dims,
                              const std::vector<std::int64_t>& ranks,
                              std::uint64_t seed) {
  Rng rng(seed);
  TuckerFactorization model;
  for (std::size_t n = 0; n < dims.size(); ++n) {
    Matrix factor(dims[n], ranks[n]);
    factor.FillUniform(rng);
    model.factors.push_back(std::move(factor));
  }
  model.core = DenseTensor(ranks);
  model.core.FillUniform(rng);
  return model;
}

TEST(ServeNetReloadTest, EveryReplyMatchesExactlyOneModelUnderLiveLoad) {
  const std::vector<std::int64_t> dims = {16, 14, 10};
  const std::vector<std::int64_t> ranks = {3, 4, 2};
  const TuckerFactorization model_a = MakeModel(dims, ranks, 51);
  const TuckerFactorization model_b = MakeModel(dims, ranks, 52);
  const auto snapshot_a = ModelSnapshot::Create(model_a, 16);
  const auto snapshot_b = ModelSnapshot::Create(model_b, 16);

  // Ground truth per model, pinned once up front.
  const PredictionService truth_a(snapshot_a);
  const PredictionService truth_b(snapshot_b);
  std::vector<std::vector<std::int64_t>> queries;
  for (std::int64_t i = 0; i < dims[0]; ++i) {
    for (std::int64_t j = 0; j < dims[1]; ++j) {
      queries.push_back({i, j, (i + j) % dims[2]});
    }
  }
  std::vector<double> expected_a(queries.size()), expected_b(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    expected_a[q] = truth_a.Predict(queries[q]);
    expected_b[q] = truth_b.Predict(queries[q]);
    // The test is vacuous wherever the models agree.
    ASSERT_NE(expected_a[q], expected_b[q]) << "query " << q;
  }

  auto service = std::make_shared<PredictionService>(snapshot_a);
  NetServerOptions options;
  options.listen_threads = 2;
  options.worker_threads = 2;
  options.max_batch = 32;
  options.batch_window_us = 200;  // force cross-client coalescing
  NetServer server(service, options);
  server.Start();

  std::atomic<bool> stop_reloading{false};
  std::atomic<std::uint64_t> reloads{0};
  std::thread reloader([&] {
    bool use_b = true;
    while (!stop_reloading.load()) {
      server.service().ReloadSnapshot(use_b ? snapshot_b : snapshot_a);
      use_b = !use_b;
      reloads.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });

  const int kClients = 6;
  const int kRoundsPerClient = 12;
  std::atomic<std::uint64_t> matched_a{0}, matched_b{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      NetClient client("127.0.0.1", server.port());
      for (int round = 0; round < kRoundsPerClient; ++round) {
        for (std::size_t q = static_cast<std::size_t>(c);
             q < queries.size(); q += kClients) {
          const double got = client.Predict(queries[q]);
          if (got == expected_a[q]) {
            matched_a.fetch_add(1);
          } else if (got == expected_b[q]) {
            matched_b.fetch_add(1);
          } else {
            ADD_FAILURE() << "client " << c << " query " << q
                          << ": reply " << got << " matches neither model ("
                          << expected_a[q] << " / " << expected_b[q] << ")";
            return;
          }
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  stop_reloading.store(true);
  reloader.join();
  server.Stop();

  // Each round the clients stripe the query set exactly once.
  const std::uint64_t total = matched_a.load() + matched_b.load();
  EXPECT_EQ(total, static_cast<std::uint64_t>(kRoundsPerClient) *
                       queries.size());
  // The swap actually happened while traffic flowed: both models served,
  // and plenty of reloads landed mid-stream.
  EXPECT_GT(matched_a.load(), 0u);
  EXPECT_GT(matched_b.load(), 0u);
  EXPECT_GT(reloads.load(), 10u);
  // Cross-client coalescing really engaged under this load.
  EXPECT_GT(server.stats().max_batch_observed.load(), 1u);
}

}  // namespace
}  // namespace ptucker
