// serve_net smoke: an in-process NetServer on an ephemeral port driven
// over real TCP sockets by NetClient. Covers the full opcode surface
// (predict / top-K / ping / stats) with replies compared EXPECT_EQ
// against direct PredictionService calls, bad-request handling on a
// surviving connection, loud rejection-then-close for unrecoverable
// framing garbage, clean shutdown with clients attached, and the
// determinism invariant: the same query set produces bit-identical
// replies regardless of connection interleaving, loop threads, worker
// threads, max-batch, or batch window. Runs under the ASan+UBSan CI job
// via the serve_ test-name prefix.
#include "serve/net/server.h"

#include <atomic>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/ptucker.h"
#include "linalg/matrix.h"
#include "serve/net/client.h"
#include "serve/service.h"
#include "tensor/dense_tensor.h"
#include "util/random.h"

namespace ptucker {
namespace {

TuckerFactorization MakeModel(const std::vector<std::int64_t>& dims,
                              const std::vector<std::int64_t>& ranks,
                              std::uint64_t seed) {
  Rng rng(seed);
  TuckerFactorization model;
  for (std::size_t n = 0; n < dims.size(); ++n) {
    Matrix factor(dims[n], ranks[n]);
    factor.FillUniform(rng);
    model.factors.push_back(std::move(factor));
  }
  model.core = DenseTensor(ranks);
  model.core.FillUniform(rng);
  return model;
}

std::vector<std::vector<std::int64_t>> MakeQueries(
    const std::vector<std::int64_t>& dims, std::int64_t count,
    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<std::int64_t>> queries;
  queries.reserve(static_cast<std::size_t>(count));
  for (std::int64_t q = 0; q < count; ++q) {
    std::vector<std::int64_t> index(dims.size());
    for (std::size_t n = 0; n < dims.size(); ++n) {
      index[n] = static_cast<std::int64_t>(
          rng.UniformInt(static_cast<std::uint64_t>(dims[n])));
    }
    queries.push_back(std::move(index));
  }
  return queries;
}

class ServeNetSmokeTest : public ::testing::Test {
 protected:
  ServeNetSmokeTest()
      : dims_({24, 18, 15}),
        model_(MakeModel(dims_, {4, 3, 5}, 33)),
        service_(std::make_shared<PredictionService>(
            ModelSnapshot::Create(model_, 16))) {}

  std::vector<std::int64_t> dims_;
  TuckerFactorization model_;
  std::shared_ptr<PredictionService> service_;
};

TEST_F(ServeNetSmokeTest, FullOpcodeSurfaceOverRealSockets) {
  NetServerOptions options;
  options.listen_threads = 2;
  options.worker_threads = 2;
  options.batch_window_us = 0;  // sequential client: don't add latency
  NetServer server(service_, options);
  server.Start();
  ASSERT_GT(server.port(), 0);

  NetClient client("127.0.0.1", server.port());
  client.Ping();

  const auto queries = MakeQueries(dims_, 50, 34);
  for (const auto& query : queries) {
    EXPECT_EQ(client.Predict(query), service_->Predict(query));
  }

  const std::vector<std::int64_t> probe = {3, 0, 7};
  for (std::int64_t mode = 0; mode < 3; ++mode) {
    const auto got = client.TopK(mode, 6, probe);
    const auto want = service_->TopK(mode, probe, 6);
    ASSERT_EQ(got.size(), want.size()) << "mode " << mode;
    for (std::size_t r = 0; r < want.size(); ++r) {
      EXPECT_EQ(got[r].index, want[r].index);
      EXPECT_EQ(got[r].score, want[r].score);
    }
  }
  // k beyond the mode's dimension returns everything, same as in-process.
  EXPECT_EQ(client.TopK(2, 1000, probe).size(),
            static_cast<std::size_t>(dims_[2]));

  const std::vector<std::uint64_t> counters = client.Stats();
  ASSERT_EQ(counters.size(), 10u);  // ServerStats::ToVector order
  EXPECT_GE(counters[0], 1u);       // connections_accepted
  EXPECT_GE(counters[1], 55u);      // requests_received
  EXPECT_GE(counters[2], 50u);      // predicts_served
  EXPECT_GE(counters[3], 4u);       // topks_served
  EXPECT_GE(counters[4], 1u);       // pings_served
  EXPECT_GE(counters[6], 1u);       // batches_executed
  EXPECT_EQ(counters[9], 0u);       // overloads_shed: nothing parked here

  server.Stop();
}

TEST_F(ServeNetSmokeTest, BadRequestsAnsweredOnASurvivingConnection) {
  NetServerOptions options;
  options.batch_window_us = 0;
  NetServer server(service_, options);
  server.Start();
  NetClient client("127.0.0.1", server.port());

  // Model-level violations: loud error reply, connection stays healthy.
  EXPECT_THROW(client.Predict({24, 0, 0}), std::runtime_error);   // range
  EXPECT_THROW(client.Predict({1, 2}), std::runtime_error);       // order
  EXPECT_THROW(client.TopK(3, 5, {0, 0, 0}), std::runtime_error); // mode
  EXPECT_THROW(client.TopK(0, 0, {0, 0, 0}), std::runtime_error); // k = 0

  // Payload-level violation, hand-built: promises 3 coords, ships 1.
  std::vector<std::uint8_t> payload;
  AppendU32(&payload, 3);
  AppendI64(&payload, 5);
  std::vector<std::uint8_t> request;
  EncodeFrame(Opcode::kPredict, WireStatus::kOk, 77, payload.data(),
              payload.size(), &request);
  client.SendBytes(request.data(), request.size());
  WireFrame reply;
  ASSERT_TRUE(client.ReceiveFrame(&reply));
  EXPECT_EQ(reply.request_id, 77u);
  EXPECT_EQ(reply.status, WireStatus::kBadRequest);

  // The same socket still serves good traffic after all five rejections.
  EXPECT_EQ(client.Predict({5, 5, 5}), service_->Predict({5, 5, 5}));
  EXPECT_GE(server.stats().errors_sent.load(), 5u);
  server.Stop();
}

TEST_F(ServeNetSmokeTest, FramingGarbageGetsErrorReplyThenClose) {
  NetServerOptions options;
  NetServer server(service_, options);
  server.Start();

  struct HostileCase {
    const char* name;
    std::vector<std::uint8_t> bytes;
  };
  std::vector<HostileCase> cases;
  cases.push_back({"bad magic", {'H', 'T', 'T', 'P', '/', '1', '.', '1'}});
  {
    std::vector<std::uint8_t> frame = EncodePredictRequest(9, {1, 2, 3});
    frame[4] = 0x66;  // unknown opcode
    cases.push_back({"unknown opcode", frame});
  }
  {
    std::vector<std::uint8_t> frame = EncodePredictRequest(9, {1, 2, 3});
    frame[6] = 0xAB;  // reserved byte
    cases.push_back({"reserved bytes", frame});
  }
  {
    std::vector<std::uint8_t> frame = EncodePredictRequest(9, {1, 2, 3});
    frame[19] = 0xFF;  // payload length far beyond kMaxWirePayload
    cases.push_back({"oversized payload", frame});
  }
  {
    std::vector<std::uint8_t> frame = EncodePredictRequest(9, {1, 2, 3});
    frame[5] = 2;  // nonzero status byte in a *request*
    cases.push_back({"nonzero request status", frame});
  }

  for (const HostileCase& hostile : cases) {
    SCOPED_TRACE(hostile.name);
    NetClient client("127.0.0.1", server.port());
    client.SendBytes(hostile.bytes.data(), hostile.bytes.size());
    WireFrame reply;
    // One loud kMalformed error reply…
    ASSERT_TRUE(client.ReceiveFrame(&reply));
    EXPECT_EQ(reply.status, WireStatus::kMalformed);
    EXPECT_FALSE(reply.payload.empty());  // names the violation
    // …then the server closes: byte sync is unrecoverable.
    EXPECT_FALSE(client.ReceiveFrame(&reply));
  }

  // A client that ships half a frame and vanishes must not wedge the
  // server.
  {
    const std::vector<std::uint8_t> frame = EncodePredictRequest(9, {1, 2, 3});
    NetClient half("127.0.0.1", server.port());
    half.SendBytes(frame.data(), frame.size() / 2);
    half.Close();
  }
  NetClient after("127.0.0.1", server.port());
  after.Ping();
  EXPECT_EQ(after.Predict({0, 0, 0}), service_->Predict({0, 0, 0}));
  server.Stop();
}

TEST_F(ServeNetSmokeTest, CleanShutdownClosesAttachedClients) {
  NetServerOptions options;
  auto server = std::make_unique<NetServer>(service_, options);
  server->Start();
  NetClient client("127.0.0.1", server->port());
  client.Ping();
  server->Stop();
  WireFrame frame;
  EXPECT_FALSE(client.ReceiveFrame(&frame));  // orderly close, no junk
  server.reset();
}

// The determinism invariant from ISSUE acceptance: a fixed query set
// produces bit-identical replies no matter how clients interleave, how
// many loops/workers run, or how the coalescer slices batches.
TEST_F(ServeNetSmokeTest, RepliesAreBitIdenticalAcrossServerShapes) {
  const auto queries = MakeQueries(dims_, 96, 35);

  struct Shape {
    int loops, workers;
    std::int64_t max_batch, window_us;
    int clients;
  };
  const std::vector<Shape> shapes = {
      {1, 1, 1, 0, 1},     // strictly sequential, batch size 1
      {2, 2, 64, 500, 8},  // coalescing on, many interleaved clients
      {3, 2, 16, 0, 4},    // mid-size batches, no window
  };

  std::vector<std::vector<std::uint64_t>> bits_per_shape;
  for (const Shape& shape : shapes) {
    NetServerOptions options;
    options.listen_threads = shape.loops;
    options.worker_threads = shape.workers;
    options.max_batch = shape.max_batch;
    options.batch_window_us = shape.window_us;
    NetServer server(service_, options);
    server.Start();

    std::vector<std::uint64_t> bits(queries.size(), 0);
    std::vector<std::thread> threads;
    std::atomic<std::size_t> next{0};
    for (int c = 0; c < shape.clients; ++c) {
      threads.emplace_back([&] {
        NetClient client("127.0.0.1", server.port());
        std::size_t q;
        while ((q = next.fetch_add(1)) < queries.size()) {
          const double value = client.Predict(queries[q]);
          std::uint64_t raw = 0;
          std::memcpy(&raw, &value, sizeof(raw));
          bits[q] = raw;  // each q is claimed by exactly one thread
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    server.Stop();
    bits_per_shape.push_back(std::move(bits));
  }

  for (std::size_t s = 1; s < bits_per_shape.size(); ++s) {
    for (std::size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(bits_per_shape[s][q], bits_per_shape[0][q])
          << "shape " << s << " query " << q
          << ": reply bytes depend on batching composition";
    }
  }
}

}  // namespace
}  // namespace ptucker
