// The reserved OVERLOADED wire status, live (wire.h / event_loop.h): a
// request parked on a full coalescer queue past the configured deadline
// is answered kOverloaded on a surviving connection and counted in
// overloads_shed. The harness assembles the reactor by hand —
// CreateListenSocket + a 1-slot BatchCoalescer whose workers start only
// when the test says so — so the queue is saturated deterministically
// instead of by racing traffic. Runs under the ASan+UBSan CI job via
// the serve_ test-name prefix.
#include "serve/net/event_loop.h"

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/ptucker.h"
#include "linalg/matrix.h"
#include "serve/net/client.h"
#include "serve/net/coalescer.h"
#include "serve/net/wire.h"
#include "serve/service.h"
#include "tensor/dense_tensor.h"
#include "util/random.h"

namespace ptucker {
namespace {

TuckerFactorization MakeModel(const std::vector<std::int64_t>& dims,
                              const std::vector<std::int64_t>& ranks,
                              std::uint64_t seed) {
  Rng rng(seed);
  TuckerFactorization model;
  for (std::size_t n = 0; n < dims.size(); ++n) {
    Matrix factor(dims[n], ranks[n]);
    factor.FillUniform(rng);
    model.factors.push_back(std::move(factor));
  }
  model.core = DenseTensor(ranks);
  model.core.FillUniform(rng);
  return model;
}

// One reactor over a 1-slot coalescer whose workers the test starts on
// demand. Mirrors NetServer::Start's wiring (space callback included)
// minus the parts that would drain the queue behind the test's back.
class OverloadHarness {
 public:
  explicit OverloadHarness(std::int64_t overload_timeout_ms)
      : service_(ModelSnapshot::Create(MakeModel({12, 9, 7}, {3, 2, 2}, 7))) {
    BatchCoalescer::Options coalescer_options;
    coalescer_options.max_batch = 1;
    coalescer_options.batch_window_us = 0;
    coalescer_options.queue_capacity = 1;
    coalescer_ = std::make_unique<BatchCoalescer>(&service_, &stats_,
                                                  coalescer_options);
    EventLoop::Options loop_options;
    loop_options.overload_timeout_ms = overload_timeout_ms;
    const int listen_fd = CreateListenSocket(&port_);
    loop_ = std::make_unique<EventLoop>(listen_fd, coalescer_.get(),
                                        &stats_, std::uint64_t{1} << 48,
                                        loop_options);
    coalescer_->SetSpaceCallback([this] { loop_->NotifyQueueSpace(); });
    loop_thread_ = std::thread([this] { loop_->Run(); });
  }

  ~OverloadHarness() {
    loop_->Stop();
    loop_thread_.join();
    coalescer_->Stop();
  }

  int port() const { return port_; }
  void StartWorkers() { coalescer_->Start(1); }
  std::uint64_t overloads_shed() const {
    return stats_.overloads_shed.load();
  }

 private:
  PredictionService service_;
  ServerStats stats_;
  std::unique_ptr<BatchCoalescer> coalescer_;
  std::unique_ptr<EventLoop> loop_;
  std::thread loop_thread_;
  int port_ = 0;
};

TEST(OverloadTest, ParkedRequestShedsAfterDeadlineConnectionSurvives) {
  OverloadHarness harness(50);
  NetClient client("127.0.0.1", harness.port());

  // No workers: request 1 fills the only queue slot, request 2 parks.
  const std::vector<std::int64_t> coords = {0, 0, 0};
  const std::vector<std::uint8_t> first = EncodePredictRequest(1, coords);
  const std::vector<std::uint8_t> second = EncodePredictRequest(2, coords);
  client.SendBytes(first.data(), first.size());
  client.SendBytes(second.data(), second.size());

  // The parked request's 50 ms deadline passes: kOverloaded for id 2,
  // while id 1 still waits in the queue.
  WireFrame frame;
  ASSERT_TRUE(client.ReceiveFrame(&frame));
  EXPECT_EQ(frame.status, WireStatus::kOverloaded);
  EXPECT_EQ(frame.request_id, 2u);
  EXPECT_EQ(harness.overloads_shed(), 1u);

  // The connection survived the shed: once workers run, the queued
  // request is answered normally on the same socket.
  harness.StartWorkers();
  ASSERT_TRUE(client.ReceiveFrame(&frame));
  EXPECT_EQ(frame.status, WireStatus::kOk);
  EXPECT_EQ(frame.request_id, 1u);

  // And the freed slot accepts new work.
  const std::vector<std::uint8_t> third = EncodePredictRequest(3, coords);
  client.SendBytes(third.data(), third.size());
  ASSERT_TRUE(client.ReceiveFrame(&frame));
  EXPECT_EQ(frame.status, WireStatus::kOk);
  EXPECT_EQ(frame.request_id, 3u);
  EXPECT_EQ(harness.overloads_shed(), 1u);
}

TEST(OverloadTest, ZeroDeadlineShedsImmediately) {
  OverloadHarness harness(0);
  NetClient client("127.0.0.1", harness.port());

  const std::vector<std::int64_t> coords = {1, 1, 1};
  const std::vector<std::uint8_t> first = EncodePredictRequest(10, coords);
  const std::vector<std::uint8_t> second = EncodePredictRequest(11, coords);
  client.SendBytes(first.data(), first.size());
  client.SendBytes(second.data(), second.size());

  WireFrame frame;
  ASSERT_TRUE(client.ReceiveFrame(&frame));
  EXPECT_EQ(frame.status, WireStatus::kOverloaded);
  EXPECT_EQ(frame.request_id, 11u);
  EXPECT_EQ(harness.overloads_shed(), 1u);
}

TEST(OverloadTest, DefaultDeadlineParksForever) {
  // -1 (the default): the parked request is never shed; it drains once
  // workers start, in submission order, all kOk.
  OverloadHarness harness(-1);
  NetClient client("127.0.0.1", harness.port());

  const std::vector<std::int64_t> coords = {2, 2, 2};
  const std::vector<std::uint8_t> first = EncodePredictRequest(20, coords);
  const std::vector<std::uint8_t> second = EncodePredictRequest(21, coords);
  client.SendBytes(first.data(), first.size());
  client.SendBytes(second.data(), second.size());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  harness.StartWorkers();
  WireFrame frame;
  ASSERT_TRUE(client.ReceiveFrame(&frame));
  EXPECT_EQ(frame.status, WireStatus::kOk);
  EXPECT_EQ(frame.request_id, 20u);
  ASSERT_TRUE(client.ReceiveFrame(&frame));
  EXPECT_EQ(frame.status, WireStatus::kOk);
  EXPECT_EQ(frame.request_id, 21u);
  EXPECT_EQ(harness.overloads_shed(), 0u);
}

}  // namespace
}  // namespace ptucker
