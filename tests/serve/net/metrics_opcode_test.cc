// METRICS wire opcode (docs/observability.md): a live NetServer wired to
// a private MetricsRegistry must serve Prometheus-style exposition text
// over TCP that reflects the traffic it just handled — and the legacy
// STATS counter vector must keep its exact shape alongside it
// (kServerStatsFieldCount, the indexed table in docs/serving.md).
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/ptucker.h"
#include "linalg/matrix.h"
#include "obs/metrics.h"
#include "serve/net/client.h"
#include "serve/net/server.h"
#include "serve/service.h"
#include "tensor/dense_tensor.h"
#include "util/random.h"

namespace ptucker {
namespace {

TuckerFactorization MakeModel(const std::vector<std::int64_t>& dims,
                              const std::vector<std::int64_t>& ranks,
                              std::uint64_t seed) {
  Rng rng(seed);
  TuckerFactorization model;
  for (std::size_t n = 0; n < dims.size(); ++n) {
    Matrix factor(dims[n], ranks[n]);
    factor.FillUniform(rng);
    model.factors.push_back(std::move(factor));
  }
  model.core = DenseTensor(ranks);
  model.core.FillUniform(rng);
  return model;
}

// First sample value for an exact metric name (skips _bucket/_sum lines
// and the # HELP/# TYPE comments).
bool FindSample(const std::string& exposition, const std::string& name,
                long long* value) {
  std::size_t pos = 0;
  while (pos < exposition.size()) {
    std::size_t end = exposition.find('\n', pos);
    if (end == std::string::npos) end = exposition.size();
    const std::string line = exposition.substr(pos, end - pos);
    pos = end + 1;
    if (line.compare(0, name.size(), name) != 0) continue;
    if (line.size() <= name.size() || line[name.size()] != ' ') continue;
    *value = std::stoll(line.substr(name.size() + 1));
    return true;
  }
  return false;
}

TEST(ServeNetMetricsOpcodeTest, MetricsReflectServedTrafficOverTcp) {
  const std::vector<std::int64_t> dims = {24, 18, 15};
  const TuckerFactorization model = MakeModel(dims, {4, 3, 5}, 41);
  auto service = std::make_shared<PredictionService>(
      ModelSnapshot::Create(model, 16));

  obs::MetricsRegistry registry;
  NetServerOptions options;
  options.batch_window_us = 0;
  options.metrics_registry = &registry;
  NetServer server(service, options);
  server.Start();
  ASSERT_GT(server.port(), 0);

  NetClient client("127.0.0.1", server.port());
  for (int q = 0; q < 20; ++q) {
    client.Predict({q % dims[0], q % dims[1], q % dims[2]});
  }
  client.TopK(0, 5, {0, 0, 0});

  // The worker records a request's latency *after* posting its reply
  // (telemetry never delays the reply), so poll until the counts settle.
  std::string text;
  long long value = 0;
  for (int attempt = 0; attempt < 200; ++attempt) {
    text = client.Metrics();
    long long predicts = 0;
    long long topks = 0;
    if (FindSample(text, "ptucker_serve_predict_latency_seconds_count",
                   &predicts) &&
        FindSample(text, "ptucker_serve_topk_latency_seconds_count",
                   &topks) &&
        predicts >= 20 && topks >= 1) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_NE(text.find("# TYPE ptucker_serve_requests_total counter"),
            std::string::npos);
  ASSERT_TRUE(FindSample(text, "ptucker_serve_requests_total", &value));
  EXPECT_GE(value, 21);  // 20 predicts + 1 topk (+ this METRICS frame)
  ASSERT_TRUE(
      FindSample(text, "ptucker_serve_predict_latency_seconds_count", &value));
  EXPECT_EQ(value, 20);
  ASSERT_TRUE(
      FindSample(text, "ptucker_serve_topk_latency_seconds_count", &value));
  EXPECT_EQ(value, 1);
  ASSERT_TRUE(FindSample(text, "ptucker_serve_batch_size_count", &value));
  EXPECT_GE(value, 1);
  EXPECT_NE(text.find("ptucker_serve_queue_depth"), std::string::npos);
  EXPECT_NE(text.find("ptucker_serve_shed_total"), std::string::npos);

  // Legacy STATS rides alongside, shape pinned to the field table.
  const std::vector<std::uint64_t> counters = client.Stats();
  ASSERT_EQ(counters.size(),
            static_cast<std::size_t>(kServerStatsFieldCount));
  EXPECT_GE(counters[2], 20u);  // predicts_served

  server.Stop();
}

TEST(ServeNetMetricsOpcodeTest, NullRegistryStillAnswersMetrics) {
  const std::vector<std::int64_t> dims = {24, 18, 15};
  const TuckerFactorization model = MakeModel(dims, {4, 3, 5}, 42);
  auto service = std::make_shared<PredictionService>(
      ModelSnapshot::Create(model, 16));

  // No registry configured: the server answers METRICS from the global
  // bundle rather than erroring — scrapes never kill a serve.
  NetServerOptions options;
  options.batch_window_us = 0;
  NetServer server(service, options);
  server.Start();
  NetClient client("127.0.0.1", server.port());
  client.Predict({0, 0, 0});
  const std::string text = client.Metrics();
  EXPECT_NE(text.find("ptucker_serve_requests_total"), std::string::npos);
  server.Stop();
}

}  // namespace
}  // namespace ptucker
