// Wire-protocol tests (serve/net/wire.h): typed round trips for every
// opcode, loud specific rejection of bad magic / reserved bytes /
// unknown opcodes / oversized payloads, and the fuzz-style robustness
// sweep the snapshot-v2 corruption tests established: a byte flip at
// every offset and a truncation at every length of a valid frame must
// be classified cleanly (frame / need-more / error) and must never
// invoke UB — the ASan+UBSan CI job runs this suite.
#include "serve/net/wire.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ptucker {
namespace {

std::vector<std::uint8_t> ValidPredictFrame() {
  return EncodePredictRequest(0x1122334455667788ULL, {7, -0, 42});
}

TEST(WireTest, PredictRoundTrip) {
  const std::vector<std::int64_t> coords = {3, 0, 1234567890123LL, -1};
  const std::vector<std::uint8_t> bytes = EncodePredictRequest(99, coords);
  WireFrame frame;
  std::size_t consumed = 0;
  std::string error;
  ASSERT_EQ(DecodeFrame(bytes.data(), bytes.size(), &frame, &consumed,
                        &error),
            DecodeResult::kFrame)
      << error;
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(frame.opcode, Opcode::kPredict);
  EXPECT_EQ(frame.status, WireStatus::kOk);
  EXPECT_EQ(frame.request_id, 99u);
  PredictRequest request;
  ASSERT_TRUE(ParsePredictRequest(frame.payload, &request, &error)) << error;
  EXPECT_EQ(request.coords, coords);
}

TEST(WireTest, TopKRoundTrip) {
  const std::vector<std::int64_t> coords = {5, 0, 2};
  const std::vector<std::uint8_t> bytes = EncodeTopKRequest(7, 1, 10, coords);
  WireFrame frame;
  std::size_t consumed = 0;
  std::string error;
  ASSERT_EQ(DecodeFrame(bytes.data(), bytes.size(), &frame, &consumed,
                        &error),
            DecodeResult::kFrame)
      << error;
  TopKRequest request;
  ASSERT_TRUE(ParseTopKRequest(frame.payload, &request, &error)) << error;
  EXPECT_EQ(request.mode, 1);
  EXPECT_EQ(request.k, 10);
  EXPECT_EQ(request.coords, coords);

  // Reply side: scores survive bit-exactly (raw IEEE-754 bytes).
  const std::vector<ScoredIndex> results = {{4, 1.25}, {0, -3.5e-7}};
  const std::vector<std::uint8_t> reply = EncodeTopKReply(7, results);
  ASSERT_EQ(DecodeFrame(reply.data(), reply.size(), &frame, &consumed,
                        &error),
            DecodeResult::kFrame);
  std::vector<ScoredIndex> decoded;
  ASSERT_TRUE(ParseTopKReply(frame, &decoded, &error)) << error;
  ASSERT_EQ(decoded.size(), results.size());
  for (std::size_t r = 0; r < results.size(); ++r) {
    EXPECT_EQ(decoded[r].index, results[r].index);
    EXPECT_EQ(decoded[r].score, results[r].score);
  }
}

TEST(WireTest, PredictReplyRoundTripAndErrorReply) {
  const std::vector<std::uint8_t> reply = EncodePredictReply(11, 2.75);
  WireFrame frame;
  std::size_t consumed = 0;
  std::string error;
  ASSERT_EQ(DecodeFrame(reply.data(), reply.size(), &frame, &consumed,
                        &error),
            DecodeResult::kFrame);
  double value = 0.0;
  ASSERT_TRUE(ParsePredictReply(frame, &value, &error)) << error;
  EXPECT_EQ(value, 2.75);

  const std::vector<std::uint8_t> err_reply = EncodeErrorReply(
      Opcode::kPredict, 11, WireStatus::kBadRequest, "coordinate out of bounds");
  ASSERT_EQ(DecodeFrame(err_reply.data(), err_reply.size(), &frame, &consumed,
                        &error),
            DecodeResult::kFrame);
  EXPECT_EQ(frame.status, WireStatus::kBadRequest);
  EXPECT_FALSE(ParsePredictReply(frame, &value, &error));
  EXPECT_NE(error.find("coordinate out of bounds"), std::string::npos);
}

TEST(WireTest, StatsRoundTrip) {
  const std::vector<std::uint64_t> counters = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const std::vector<std::uint8_t> reply = EncodeStatsReply(5, counters);
  WireFrame frame;
  std::size_t consumed = 0;
  std::string error;
  ASSERT_EQ(DecodeFrame(reply.data(), reply.size(), &frame, &consumed,
                        &error),
            DecodeResult::kFrame);
  std::vector<std::uint64_t> decoded;
  ASSERT_TRUE(ParseStatsReply(frame, &decoded, &error)) << error;
  EXPECT_EQ(decoded, counters);
}

TEST(WireTest, RejectsBadMagicAtItsFirstWrongByte) {
  std::vector<std::uint8_t> bytes = ValidPredictFrame();
  bytes[2] ^= 0x20;
  WireFrame frame;
  std::size_t consumed = 0;
  std::string error;
  // Even a 3-byte prefix is enough to convict a wrong magic byte.
  EXPECT_EQ(DecodeFrame(bytes.data(), 3, &frame, &consumed, &error),
            DecodeResult::kError);
  EXPECT_NE(error.find("bad magic byte at offset 2"), std::string::npos);
}

TEST(WireTest, RejectsReservedBytesUnknownOpcodeAndOversizedPayload) {
  WireFrame frame;
  std::size_t consumed = 0;
  std::string error;

  std::vector<std::uint8_t> reserved = ValidPredictFrame();
  reserved[6] = 1;
  EXPECT_EQ(DecodeFrame(reserved.data(), reserved.size(), &frame, &consumed,
                        &error),
            DecodeResult::kError);
  EXPECT_NE(error.find("reserved"), std::string::npos);

  std::vector<std::uint8_t> opcode = ValidPredictFrame();
  opcode[4] = 0x77;
  EXPECT_EQ(DecodeFrame(opcode.data(), opcode.size(), &frame, &consumed,
                        &error),
            DecodeResult::kError);
  EXPECT_NE(error.find("unknown opcode 119"), std::string::npos);

  std::vector<std::uint8_t> oversized = ValidPredictFrame();
  oversized[19] = 0xFF;  // length's top byte: ~4 GB payload claim
  EXPECT_EQ(DecodeFrame(oversized.data(), oversized.size(), &frame, &consumed,
                        &error),
            DecodeResult::kError);
  EXPECT_NE(error.find("exceeds"), std::string::npos);
}

// Truncation sweep: every proper prefix of a valid frame is a valid
// prefix — the decoder must ask for more bytes, never error, never
// fabricate a frame, and never read past the prefix (ASan-checked).
TEST(WireTest, TruncationSweepAlwaysNeedsMore) {
  const std::vector<std::uint8_t> bytes = ValidPredictFrame();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    // A fresh exact-size copy puts poisoned redzones right past `len`.
    const std::vector<std::uint8_t> prefix(bytes.begin(),
                                           bytes.begin() +
                                               static_cast<std::ptrdiff_t>(len));
    WireFrame frame;
    std::size_t consumed = 0;
    std::string error;
    EXPECT_EQ(DecodeFrame(prefix.data(), prefix.size(), &frame, &consumed,
                          &error),
              DecodeResult::kNeedMore)
        << "prefix length " << len;
  }
}

// Byte-flip sweep (the snapshot_v2_test discipline): two flips at every
// offset of a valid frame. Every mutation must classify cleanly —
// header corruption is a loud error, payload/id corruption may still
// decode (those bytes are opaque at the framing layer) but the typed
// parser must then either reject it or produce a well-formed request.
// Nothing may crash, hang, or touch memory out of bounds.
TEST(WireTest, ByteFlipSweepNeverMisbehaves) {
  const std::vector<std::uint8_t> bytes = ValidPredictFrame();
  for (std::size_t offset = 0; offset < bytes.size(); ++offset) {
    for (const std::uint8_t flip : {std::uint8_t{0x01}, std::uint8_t{0xFF}}) {
      std::vector<std::uint8_t> mutated = bytes;
      mutated[offset] ^= flip;
      WireFrame frame;
      std::size_t consumed = 0;
      std::string error;
      const DecodeResult result = DecodeFrame(
          mutated.data(), mutated.size(), &frame, &consumed, &error);
      if (offset < 4 || offset == 6 || offset == 7) {
        // Magic and reserved bytes: always a specific, fatal error.
        EXPECT_EQ(result, DecodeResult::kError)
            << "offset " << offset << " flip " << int(flip);
        EXPECT_FALSE(error.empty());
        continue;
      }
      switch (result) {
        case DecodeResult::kFrame: {
          ASSERT_LE(consumed, mutated.size());
          // The typed layer must stay crash-free on whatever survived.
          PredictRequest request;
          std::string parse_error;
          if (!ParsePredictRequest(frame.payload, &request, &parse_error)) {
            EXPECT_FALSE(parse_error.empty());
          }
          break;
        }
        case DecodeResult::kNeedMore:
          break;  // a shrunken length field wants more bytes — fine
        case DecodeResult::kError:
          EXPECT_FALSE(error.empty())
              << "offset " << offset << " flip " << int(flip);
          break;
      }
    }
  }
}

TEST(WireTest, TypedParsersRejectSizeAndRangeViolations) {
  std::string error;
  PredictRequest predict;
  EXPECT_FALSE(ParsePredictRequest({}, &predict, &error));
  EXPECT_NE(error.find("too short"), std::string::npos);

  std::vector<std::uint8_t> zero_order;
  AppendU32(&zero_order, 0);
  EXPECT_FALSE(ParsePredictRequest(zero_order, &predict, &error));
  EXPECT_NE(error.find("outside"), std::string::npos);

  std::vector<std::uint8_t> huge_order;
  AppendU32(&huge_order, kMaxWireOrder + 1);
  EXPECT_FALSE(ParsePredictRequest(huge_order, &predict, &error));

  std::vector<std::uint8_t> short_coords;
  AppendU32(&short_coords, 3);
  AppendI64(&short_coords, 1);  // promises 3 coords, ships 1
  EXPECT_FALSE(ParsePredictRequest(short_coords, &predict, &error));
  EXPECT_NE(error.find("want"), std::string::npos);

  TopKRequest topk;
  std::vector<std::uint8_t> bad_mode;
  AppendU32(&bad_mode, 3);
  AppendU32(&bad_mode, 3);  // mode == order
  AppendU32(&bad_mode, 5);
  for (int n = 0; n < 3; ++n) AppendI64(&bad_mode, 0);
  EXPECT_FALSE(ParseTopKRequest(bad_mode, &topk, &error));
  EXPECT_NE(error.find("mode"), std::string::npos);

  std::vector<std::uint8_t> bad_k;
  AppendU32(&bad_k, 3);
  AppendU32(&bad_k, 1);
  AppendU32(&bad_k, 0);  // k == 0
  for (int n = 0; n < 3; ++n) AppendI64(&bad_k, 0);
  EXPECT_FALSE(ParseTopKRequest(bad_k, &topk, &error));
  EXPECT_NE(error.find("k 0"), std::string::npos);
}

}  // namespace
}  // namespace ptucker
