// BatchCoalescer unit tests, socket-free: a fake ReplySink captures the
// encoded reply frames, so these tests pin down the queue/batch/window
// semantics in isolation — requests pushed from many producers coalesce
// into single PredictBatch calls, a partial batch launches when the
// window expires, one bad request cannot poison its batchmates, TryPush
// refuses at capacity and the space callback fires after the drain, and
// Stop() serves everything already queued.
#include "serve/net/coalescer.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/ptucker.h"
#include "linalg/matrix.h"
#include "serve/service.h"
#include "tensor/dense_tensor.h"
#include "util/random.h"

namespace ptucker {
namespace {

TuckerFactorization MakeModel(const std::vector<std::int64_t>& dims,
                              const std::vector<std::int64_t>& ranks,
                              std::uint64_t seed) {
  Rng rng(seed);
  TuckerFactorization model;
  for (std::size_t n = 0; n < dims.size(); ++n) {
    Matrix factor(dims[n], ranks[n]);
    factor.FillUniform(rng);
    model.factors.push_back(std::move(factor));
  }
  model.core = DenseTensor(ranks);
  model.core.FillUniform(rng);
  return model;
}

// Captures PostReply calls and lets tests block until N frames arrived.
class FakeSink : public ReplySink {
 public:
  void PostReply(std::uint64_t connection_id,
                 std::vector<std::uint8_t> frame) override {
    WireFrame decoded;
    std::size_t consumed = 0;
    std::string error;
    const DecodeResult result = DecodeFrame(frame.data(), frame.size(),
                                            &decoded, &consumed, &error);
    std::lock_guard<std::mutex> lock(mu_);
    EXPECT_EQ(result, DecodeResult::kFrame) << error;
    EXPECT_EQ(consumed, frame.size());
    replies_.emplace_back(connection_id, std::move(decoded));
    cv_.notify_all();
  }

  bool WaitForReplies(std::size_t count, int timeout_ms = 10000) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                        [&] { return replies_.size() >= count; });
  }

  std::vector<std::pair<std::uint64_t, WireFrame>> Snapshot() {
    std::lock_guard<std::mutex> lock(mu_);
    return replies_;
  }

  // The reply frame for `request_id`; fails the test if absent.
  WireFrame Find(std::uint64_t request_id) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& reply : replies_) {
      if (reply.second.request_id == request_id) return reply.second;
    }
    ADD_FAILURE() << "no reply for request id " << request_id;
    return WireFrame{};
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::pair<std::uint64_t, WireFrame>> replies_;
};

NetRequest MakePredict(FakeSink* sink, std::uint64_t id,
                       std::vector<std::int64_t> coords) {
  NetRequest request;
  request.sink = sink;
  request.connection_id = 7;
  request.request_id = id;
  request.opcode = Opcode::kPredict;
  request.coords = std::move(coords);
  return request;
}

class CoalescerTest : public ::testing::Test {
 protected:
  CoalescerTest()
      : model_(MakeModel({12, 10, 8}, {3, 2, 4}, 21)),
        service_(ModelSnapshot::Create(model_, 16)) {}

  double Expected(const std::vector<std::int64_t>& coords) const {
    return service_.Predict(coords);
  }

  TuckerFactorization model_;
  PredictionService service_;
  ServerStats stats_;
};

TEST_F(CoalescerTest, FullBatchCoalescesIntoOneExecution) {
  BatchCoalescer::Options options;
  options.max_batch = 4;
  options.batch_window_us = 200000;  // must not matter: the batch fills
  options.queue_capacity = 16;
  BatchCoalescer coalescer(&service_, &stats_, options);

  FakeSink sink;
  const std::vector<std::vector<std::int64_t>> queries = {
      {0, 0, 0}, {11, 9, 7}, {5, 2, 3}, {1, 8, 6}};
  for (std::size_t q = 0; q < queries.size(); ++q) {
    ASSERT_TRUE(coalescer.TryPush(MakePredict(&sink, q + 1, queries[q])));
  }
  coalescer.Start(1);
  ASSERT_TRUE(sink.WaitForReplies(queries.size()));
  coalescer.Stop();

  for (std::size_t q = 0; q < queries.size(); ++q) {
    const WireFrame frame = sink.Find(q + 1);
    EXPECT_EQ(frame.status, WireStatus::kOk);
    double value = 0.0;
    std::string error;
    ASSERT_TRUE(ParsePredictReply(frame, &value, &error)) << error;
    EXPECT_EQ(value, Expected(queries[q])) << "query " << q;
  }
  // All four ran as ONE batch — the whole point of the coalescer.
  EXPECT_EQ(stats_.batches_executed.load(), 1u);
  EXPECT_EQ(stats_.batched_entries.load(), 4u);
  EXPECT_EQ(stats_.max_batch_observed.load(), 4u);
  EXPECT_EQ(stats_.predicts_served.load(), 4u);
}

TEST_F(CoalescerTest, WindowExpiryServesPartialBatch) {
  BatchCoalescer::Options options;
  options.max_batch = 64;  // never fills
  options.batch_window_us = 5000;
  options.queue_capacity = 128;
  BatchCoalescer coalescer(&service_, &stats_, options);
  coalescer.Start(1);

  FakeSink sink;
  ASSERT_TRUE(coalescer.TryPush(MakePredict(&sink, 1, {3, 3, 3})));
  // The lone request must be served once the window lapses, without a
  // second request ever arriving.
  ASSERT_TRUE(sink.WaitForReplies(1));
  coalescer.Stop();

  const WireFrame frame = sink.Find(1);
  EXPECT_EQ(frame.status, WireStatus::kOk);
  EXPECT_EQ(stats_.batched_entries.load(), 1u);
}

TEST_F(CoalescerTest, BadRequestsDoNotPoisonBatchmates) {
  BatchCoalescer::Options options;
  options.max_batch = 4;
  options.batch_window_us = 0;
  options.queue_capacity = 16;
  BatchCoalescer coalescer(&service_, &stats_, options);

  FakeSink sink;
  ASSERT_TRUE(coalescer.TryPush(MakePredict(&sink, 1, {2, 2, 2})));
  ASSERT_TRUE(coalescer.TryPush(MakePredict(&sink, 2, {12, 0, 0})));  // range
  ASSERT_TRUE(coalescer.TryPush(MakePredict(&sink, 3, {1, 1})));      // order
  ASSERT_TRUE(coalescer.TryPush(MakePredict(&sink, 4, {4, 5, 1})));
  coalescer.Start(1);
  ASSERT_TRUE(sink.WaitForReplies(4));
  coalescer.Stop();

  double value = 0.0;
  std::string error;
  ASSERT_TRUE(ParsePredictReply(sink.Find(1), &value, &error)) << error;
  EXPECT_EQ(value, Expected({2, 2, 2}));
  ASSERT_TRUE(ParsePredictReply(sink.Find(4), &value, &error)) << error;
  EXPECT_EQ(value, Expected({4, 5, 1}));

  EXPECT_EQ(sink.Find(2).status, WireStatus::kBadRequest);
  EXPECT_FALSE(ParsePredictReply(sink.Find(2), &value, &error));
  EXPECT_NE(error.find("out of"), std::string::npos) << error;
  EXPECT_EQ(sink.Find(3).status, WireStatus::kBadRequest);
  EXPECT_EQ(stats_.errors_sent.load(), 2u);
  EXPECT_EQ(stats_.predicts_served.load(), 2u);
}

TEST_F(CoalescerTest, TopKMatchesServiceExactly) {
  BatchCoalescer::Options options;
  options.batch_window_us = 0;
  BatchCoalescer coalescer(&service_, &stats_, options);

  FakeSink sink;
  NetRequest request;
  request.sink = &sink;
  request.connection_id = 1;
  request.request_id = 42;
  request.opcode = Opcode::kTopK;
  request.coords = {3, 0, 5};
  request.mode = 1;
  request.k = 5;
  ASSERT_TRUE(coalescer.TryPush(std::move(request)));
  coalescer.Start(1);
  ASSERT_TRUE(sink.WaitForReplies(1));
  coalescer.Stop();

  std::vector<ScoredIndex> got;
  std::string error;
  ASSERT_TRUE(ParseTopKReply(sink.Find(42), &got, &error)) << error;
  const std::vector<ScoredIndex> want = service_.TopK(1, {3, 0, 5}, 5);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t r = 0; r < want.size(); ++r) {
    EXPECT_EQ(got[r].index, want[r].index);
    EXPECT_EQ(got[r].score, want[r].score);  // bit-exact over the wire
  }
  EXPECT_EQ(stats_.topks_served.load(), 1u);
}

TEST_F(CoalescerTest, TryPushRefusesAtCapacityAndSpaceCallbackFires) {
  BatchCoalescer::Options options;
  options.max_batch = 2;
  options.batch_window_us = 0;
  options.queue_capacity = 4;
  BatchCoalescer coalescer(&service_, &stats_, options);

  std::atomic<int> space_signals{0};
  coalescer.SetSpaceCallback([&] { space_signals.fetch_add(1); });

  FakeSink sink;
  // No workers yet: fill the queue to the brim…
  for (std::uint64_t id = 1; id <= 4; ++id) {
    ASSERT_TRUE(coalescer.TryPush(MakePredict(&sink, id, {1, 1, 1})));
  }
  EXPECT_EQ(coalescer.QueueDepth(), 4u);
  // …then the refusal contract: false, and the request is NOT consumed.
  NetRequest overflow = MakePredict(&sink, 5, {2, 2, 2});
  EXPECT_FALSE(coalescer.TryPush(std::move(overflow)));
  EXPECT_EQ(overflow.coords.size(), 3u);
  EXPECT_EQ(coalescer.QueueDepth(), 4u);

  coalescer.Start(1);
  ASSERT_TRUE(sink.WaitForReplies(4));
  // A drain after a refused push must wake stalled producers.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (space_signals.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(space_signals.load(), 1);

  // With space available the parked request now goes through.
  EXPECT_TRUE(coalescer.TryPush(std::move(overflow)));
  ASSERT_TRUE(sink.WaitForReplies(5));
  coalescer.Stop();
  EXPECT_EQ(sink.Find(5).status, WireStatus::kOk);
}

TEST_F(CoalescerTest, StopDrainsEverythingAlreadyQueued) {
  BatchCoalescer::Options options;
  options.max_batch = 8;
  options.batch_window_us = 1000;
  options.queue_capacity = 256;
  BatchCoalescer coalescer(&service_, &stats_, options);

  FakeSink sink;
  const std::size_t kCount = 100;
  for (std::uint64_t id = 1; id <= kCount; ++id) {
    ASSERT_TRUE(coalescer.TryPush(
        MakePredict(&sink, id, {static_cast<std::int64_t>(id % 12), 0, 1})));
  }
  coalescer.Start(2);
  coalescer.Stop();  // must not abandon queued requests

  ASSERT_TRUE(sink.WaitForReplies(kCount, /*timeout_ms=*/0));
  EXPECT_EQ(sink.Snapshot().size(), kCount);
  EXPECT_EQ(stats_.predicts_served.load(), kCount);
  EXPECT_GE(stats_.batches_executed.load(), kCount / 8);
}

}  // namespace
}  // namespace ptucker
