// IVF top-K tests: the exact path (nprobe < 0) must match a per-entry
// brute force bit-for-bit — owning and file-backed snapshots alike — and
// the approximate path must hit recall@10 >= 0.95 at the default (auto)
// nprobe on a clustered synthetic model. Everything is seeded, so every
// number here is deterministic.
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ptucker.h"
#include "serve/service.h"
#include "serve/snapshot_v2.h"
#include "tensor/dense_tensor.h"
#include "util/random.h"

namespace ptucker {
namespace {

// Mode 0 carries 20 well-separated row clusters (matching the ~√400
// coarse centroids BuildIvfRows picks), so cluster-level pruning can be
// accurate; the other modes and the core are plain uniform noise.
TuckerFactorization MakeClusteredModel(std::uint64_t seed = 5) {
  Rng rng(seed);
  TuckerFactorization model;
  const std::int64_t rows = 400;
  const std::int64_t clusters = 20;
  const std::int64_t rank0 = 4;
  Matrix centers(clusters, rank0);
  for (std::int64_t i = 0; i < centers.size(); ++i) {
    centers.data()[i] = rng.Uniform(-2.0, 2.0);
  }
  Matrix factor0(rows, rank0);
  for (std::int64_t i = 0; i < rows; ++i) {
    const double* center = centers.Row(i % clusters);
    for (std::int64_t j = 0; j < rank0; ++j) {
      factor0(i, j) = center[j] + rng.Normal(0.0, 0.05);
    }
  }
  model.factors.push_back(std::move(factor0));
  for (const std::int64_t dim : {std::int64_t{12}, std::int64_t{10}}) {
    Matrix factor(dim, 3);
    for (std::int64_t i = 0; i < factor.size(); ++i) {
      factor.data()[i] = rng.Uniform(-1.0, 1.0);
    }
    model.factors.push_back(std::move(factor));
  }
  model.core = DenseTensor({rank0, 3, 3});
  for (std::int64_t i = 0; i < model.core.size(); ++i) {
    model.core[i] = rng.Uniform(-1.0, 1.0);
  }
  return model;
}

std::string WriteModelFile(const TuckerFactorization& model,
                           const char* name, bool with_centroids) {
  const std::string path =
      (std::filesystem::temp_directory_path() / name).string();
  SaveSnapshotV2(path, model, with_centroids);
  return path;
}

std::vector<std::int64_t> MakeQuery(Rng& rng, const ModelSnapshot& snap) {
  std::vector<std::int64_t> index(static_cast<std::size_t>(snap.order()), 0);
  for (std::int64_t n = 1; n < snap.order(); ++n) {
    index[static_cast<std::size_t>(n)] = static_cast<std::int64_t>(
        rng.UniformInt(static_cast<std::uint64_t>(snap.dim(n))));
  }
  return index;
}

void ExpectSameResults(const std::vector<ScoredIndex>& a,
                       const std::vector<ScoredIndex>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    EXPECT_EQ(a[r].index, b[r].index) << "rank " << r;
    EXPECT_EQ(a[r].score, b[r].score) << "rank " << r;
  }
}

TEST(IvfTopKTest, ExactPathMatchesBruteForceBitIdentically) {
  const TuckerFactorization model = MakeClusteredModel();
  const std::string path =
      WriteModelFile(model, "ivf_topk_exact.ptks", /*with_centroids=*/true);
  const PredictionService service(ModelSnapshot::CreateFromFile(path));
  std::filesystem::remove(path);

  Rng rng(31);
  std::vector<std::int64_t> index = MakeQuery(rng, *service.snapshot());
  const std::vector<ScoredIndex> top = service.TopK(0, index, 10);

  // Brute force through the single-entry path, which TopK's batch kernel
  // is documented bit-identical to.
  std::vector<ScoredIndex> all;
  for (std::int64_t i = 0; i < service.snapshot()->dim(0); ++i) {
    index[0] = i;
    all.push_back(ScoredIndex{i, service.Predict(index)});
  }
  std::sort(all.begin(), all.end(), [](const ScoredIndex& a,
                                       const ScoredIndex& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.index < b.index;
  });
  all.resize(10);
  ExpectSameResults(top, all);
}

TEST(IvfTopKTest, FileBackedSnapshotMatchesOwningSnapshotExactly) {
  const TuckerFactorization model = MakeClusteredModel();
  const std::string path =
      WriteModelFile(model, "ivf_topk_owning.ptks", /*with_centroids=*/false);
  const PredictionService from_file(ModelSnapshot::CreateFromFile(path));
  std::filesystem::remove(path);
  const PredictionService owning(ModelSnapshot::Create(model));

  Rng rng(32);
  for (int q = 0; q < 5; ++q) {
    const std::vector<std::int64_t> index =
        MakeQuery(rng, *owning.snapshot());
    ExpectSameResults(from_file.TopK(0, index, 10), owning.TopK(0, index, 10));
  }
}

TEST(IvfTopKTest, NprobeAboveClusterCountEqualsExhaustive) {
  const TuckerFactorization model = MakeClusteredModel();
  const std::string path =
      WriteModelFile(model, "ivf_topk_all.ptks", /*with_centroids=*/true);
  const PredictionService service(ModelSnapshot::CreateFromFile(path));
  std::filesystem::remove(path);

  Rng rng(33);
  for (int q = 0; q < 5; ++q) {
    const std::vector<std::int64_t> index =
        MakeQuery(rng, *service.snapshot());
    ExpectSameResults(
        service.TopK(0, index, 10, nullptr, /*nprobe=*/1 << 20),
        service.TopK(0, index, 10, nullptr, /*nprobe=*/-1));
  }
}

TEST(IvfTopKTest, DefaultNprobeRecallAtLeast95Percent) {
  const TuckerFactorization model = MakeClusteredModel();
  const std::string path =
      WriteModelFile(model, "ivf_topk_recall.ptks", /*with_centroids=*/true);
  const PredictionService service(ModelSnapshot::CreateFromFile(path));
  std::filesystem::remove(path);
  ASSERT_NE(service.snapshot()->ivf(0), nullptr);

  Rng rng(34);
  const int queries = 20;
  std::int64_t hits = 0;
  for (int q = 0; q < queries; ++q) {
    const std::vector<std::int64_t> index =
        MakeQuery(rng, *service.snapshot());
    const std::vector<ScoredIndex> exact =
        service.TopK(0, index, 10, nullptr, /*nprobe=*/-1);
    const std::vector<ScoredIndex> approx =
        service.TopK(0, index, 10, nullptr, /*nprobe=*/0);
    for (const ScoredIndex& e : exact) {
      for (const ScoredIndex& a : approx) {
        if (a.index == e.index) {
          ++hits;
          break;
        }
      }
    }
  }
  const double recall =
      static_cast<double>(hits) / static_cast<double>(queries * 10);
  EXPECT_GE(recall, 0.95) << "recall@10 over " << queries << " queries";
}

TEST(IvfTopKTest, ExcludeIsRespectedOnTheIvfPath) {
  const TuckerFactorization model = MakeClusteredModel();
  const std::string path =
      WriteModelFile(model, "ivf_topk_excl.ptks", /*with_centroids=*/true);
  const PredictionService service(ModelSnapshot::CreateFromFile(path));
  std::filesystem::remove(path);

  Rng rng(35);
  const std::vector<std::int64_t> index =
      MakeQuery(rng, *service.snapshot());
  const std::vector<ScoredIndex> top =
      service.TopK(0, index, 1, nullptr, /*nprobe=*/0);
  ASSERT_EQ(top.size(), 1u);
  std::vector<char> exclude(
      static_cast<std::size_t>(service.snapshot()->dim(0)), 0);
  exclude[static_cast<std::size_t>(top[0].index)] = 1;
  const std::vector<ScoredIndex> without =
      service.TopK(0, index, 10, &exclude, /*nprobe=*/0);
  for (const ScoredIndex& r : without) {
    EXPECT_NE(r.index, top[0].index);
  }
}

TEST(IvfTopKTest, NprobeWithoutIvfSectionThrows) {
  const TuckerFactorization model = MakeClusteredModel();
  const std::string path =
      WriteModelFile(model, "ivf_topk_noivf.ptks", /*with_centroids=*/false);
  const PredictionService service(ModelSnapshot::CreateFromFile(path));
  std::filesystem::remove(path);

  std::vector<std::int64_t> index(3, 0);
  EXPECT_THROW(service.TopK(0, index, 5, nullptr, /*nprobe=*/0),
               std::invalid_argument);
  EXPECT_NO_THROW(service.TopK(0, index, 5, nullptr, /*nprobe=*/-1));
}

}  // namespace
}  // namespace ptucker
