#include "data/movielens_sim.h"

#include <gtest/gtest.h>

#include "stream/event_log.h"
#include "stream/ingest_pipeline.h"

namespace ptucker {
namespace {

MovieLensConfig SmallConfig() {
  MovieLensConfig config;
  config.num_users = 80;
  config.num_movies = 40;
  config.num_years = 5;
  config.num_hours = 24;
  config.num_genres = 3;
  config.nnz = 3000;
  return config;
}

TEST(MovieLensSimTest, TensorShape) {
  MovieLensData data = SimulateMovieLens(SmallConfig());
  EXPECT_EQ(data.tensor.order(), 4);
  EXPECT_EQ(data.tensor.dim(0), 80);
  EXPECT_EQ(data.tensor.dim(1), 40);
  EXPECT_EQ(data.tensor.dim(2), 5);
  EXPECT_EQ(data.tensor.dim(3), 24);
  EXPECT_EQ(data.tensor.nnz(), 3000);
  EXPECT_TRUE(data.tensor.has_mode_index());
}

TEST(MovieLensSimTest, GroundTruthSizes) {
  MovieLensData data = SimulateMovieLens(SmallConfig());
  EXPECT_EQ(data.movie_genre.size(), 40u);
  EXPECT_EQ(data.user_genre.size(), 80u);
  EXPECT_EQ(data.genre_hour_boost.size(), 3u * 24u);
  for (std::int64_t genre : data.movie_genre) {
    EXPECT_GE(genre, 0);
    EXPECT_LT(genre, 3);
  }
}

TEST(MovieLensSimTest, RatingsNormalized) {
  MovieLensData data = SimulateMovieLens(SmallConfig());
  for (std::int64_t e = 0; e < data.tensor.nnz(); ++e) {
    EXPECT_GE(data.tensor.value(e), 0.0);
    EXPECT_LE(data.tensor.value(e), 1.0);
  }
}

TEST(MovieLensSimTest, GenreMatchRaisesRatings) {
  MovieLensData data = SimulateMovieLens(SmallConfig());
  double matched_sum = 0.0, unmatched_sum = 0.0;
  std::int64_t matched_count = 0, unmatched_count = 0;
  for (std::int64_t e = 0; e < data.tensor.nnz(); ++e) {
    const std::int64_t user = data.tensor.index(e, 0);
    const std::int64_t movie = data.tensor.index(e, 1);
    const bool match =
        data.user_genre[static_cast<std::size_t>(user)] ==
        data.movie_genre[static_cast<std::size_t>(movie)];
    if (match) {
      matched_sum += data.tensor.value(e);
      ++matched_count;
    } else {
      unmatched_sum += data.tensor.value(e);
      ++unmatched_count;
    }
  }
  ASSERT_GT(matched_count, 0);
  ASSERT_GT(unmatched_count, 0);
  EXPECT_GT(matched_sum / matched_count, unmatched_sum / unmatched_count);
}

TEST(MovieLensSimTest, PopularitySkewed) {
  MovieLensData data = SimulateMovieLens(SmallConfig());
  // The most popular decile of users should hold well over a decile of
  // the ratings under Zipf(1.1).
  std::int64_t top = 0;
  for (std::int64_t u = 0; u < 8; ++u) {
    top += data.tensor.SliceSize(0, u);
  }
  EXPECT_GT(top, data.tensor.nnz() / 5);
}

TEST(MovieLensSimTest, SeedReproducibility) {
  MovieLensConfig config = SmallConfig();
  MovieLensData a = SimulateMovieLens(config);
  MovieLensData b = SimulateMovieLens(config);
  ASSERT_EQ(a.tensor.nnz(), b.tensor.nnz());
  for (std::int64_t e = 0; e < a.tensor.nnz(); ++e) {
    EXPECT_EQ(a.tensor.value(e), b.tensor.value(e));
  }
  config.seed = 99;
  MovieLensData c = SimulateMovieLens(config);
  bool any_diff = false;
  for (std::int64_t e = 0; e < a.tensor.nnz() && !any_diff; ++e) {
    any_diff = a.tensor.value(e) != c.tensor.value(e);
  }
  EXPECT_TRUE(any_diff);
}

MovieLensStreamConfig SmallStreamConfig() {
  MovieLensStreamConfig config;
  config.base = SmallConfig();
  config.num_events = 400;
  config.update_fraction = 0.25;
  config.delete_fraction = 0.15;
  config.max_timestamp_step = 50;
  config.seed = 7;
  return config;
}

TEST(MovieLensStreamTest, SameSeedIsByteIdentical) {
  const MovieLensStreamConfig config = SmallStreamConfig();
  const MovieLensStream a = SimulateMovieLensStream(config);
  const MovieLensStream b = SimulateMovieLensStream(config);
  ASSERT_EQ(a.events.size(), 400u);
  // The serialized logs — coordinates, ops, timestamps, and values at
  // max_digits10 — are byte for byte the same.
  EXPECT_EQ(FormatEventLog(a.events, a.initial.tensor.order()),
            FormatEventLog(b.events, b.initial.tensor.order()));
  // A different stream seed diverges while the initial tensor (driven
  // by base.seed) stays fixed.
  MovieLensStreamConfig reseeded = config;
  reseeded.seed = 8;
  const MovieLensStream c = SimulateMovieLensStream(reseeded);
  EXPECT_EQ(a.initial.tensor.nnz(), c.initial.tensor.nnz());
  EXPECT_NE(FormatEventLog(a.events, a.initial.tensor.order()),
            FormatEventLog(c.events, c.initial.tensor.order()));
}

TEST(MovieLensStreamTest, TimestampsNonDecreasingAndEventsValid) {
  const MovieLensStream stream =
      SimulateMovieLensStream(SmallStreamConfig());
  const SparseTensor& initial = stream.initial.tensor;
  std::int64_t last = stream.events.front().timestamp;
  for (const StreamEvent& event : stream.events) {
    EXPECT_GE(event.timestamp, last);
    last = event.timestamp;
    ASSERT_EQ(event.index.size(), 4u);
    for (std::size_t n = 0; n < 4; ++n) {
      EXPECT_GE(event.index[n], 0);
      EXPECT_LT(event.index[n], initial.dim(static_cast<std::int64_t>(n)));
    }
    if (event.op != StreamOp::kDelete) {
      EXPECT_GE(event.value, 0.0);
      EXPECT_LE(event.value, 1.0);
    }
  }
  // The stream replays cleanly onto its own initial tensor (every
  // update/delete hits a live entry, every append a fresh coordinate).
  const SparseTensor replayed =
      ReplayOmega(initial, stream.events,
                  static_cast<std::int64_t>(stream.events.size()));
  EXPECT_GT(replayed.nnz(), 0);
}

}  // namespace
}  // namespace ptucker
