#include "data/synthetic.h"

#include <set>

#include <gtest/gtest.h>

#include "tensor/index.h"

namespace ptucker {
namespace {

TEST(UniformSparseTensorTest, RequestedShapeAndCount) {
  Rng rng(1);
  SparseTensor t = UniformSparseTensor({20, 30, 10}, 500, rng);
  EXPECT_EQ(t.dims(), (std::vector<std::int64_t>{20, 30, 10}));
  EXPECT_EQ(t.nnz(), 500);
  EXPECT_TRUE(t.has_mode_index());
}

TEST(UniformSparseTensorTest, CoordinatesDistinct) {
  Rng rng(2);
  SparseTensor t = UniformSparseTensor({8, 8, 8}, 300, rng);
  const auto strides = ComputeStrides(t.dims());
  std::set<std::int64_t> seen;
  for (std::int64_t e = 0; e < t.nnz(); ++e) {
    seen.insert(Linearize(t.index(e), strides, 3));
  }
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), t.nnz());
}

TEST(UniformSparseTensorTest, ValuesInUnitInterval) {
  Rng rng(3);
  SparseTensor t = UniformSparseTensor({10, 10}, 90, rng);
  for (std::int64_t e = 0; e < t.nnz(); ++e) {
    EXPECT_GE(t.value(e), 0.0);
    EXPECT_LT(t.value(e), 1.0);
  }
}

TEST(UniformSparseTensorTest, FullyDenseRequest) {
  // nnz == ΠIn exercises the dedup saturation path.
  Rng rng(4);
  SparseTensor t = UniformSparseTensor({4, 4}, 16, rng);
  EXPECT_EQ(t.nnz(), 16);
}

TEST(UniformSparseTensorTest, Deterministic) {
  Rng rng_a(5), rng_b(5);
  SparseTensor a = UniformSparseTensor({10, 10, 10}, 100, rng_a);
  SparseTensor b = UniformSparseTensor({10, 10, 10}, 100, rng_b);
  ASSERT_EQ(a.nnz(), b.nnz());
  for (std::int64_t e = 0; e < a.nnz(); ++e) {
    EXPECT_EQ(a.value(e), b.value(e));
    for (int k = 0; k < 3; ++k) EXPECT_EQ(a.index(e, k), b.index(e, k));
  }
}

TEST(UniformCubicTensorTest, CubicDims) {
  Rng rng(6);
  SparseTensor t = UniformCubicTensor(5, 7, 50, rng);
  EXPECT_EQ(t.order(), 5);
  for (std::int64_t n = 0; n < 5; ++n) EXPECT_EQ(t.dim(n), 7);
}

TEST(SkewedSparseTensorTest, SkewConcentratesMass) {
  Rng rng(7);
  const std::int64_t dim = 100;
  SparseTensor t = SkewedSparseTensor({dim, dim}, 2000, 1.2, rng);
  // The top-10 most popular mode-0 slices must hold far more than 10% of
  // the entries under Zipf(1.2).
  std::int64_t top = 0;
  for (std::int64_t i = 0; i < 10; ++i) top += t.SliceSize(0, i);
  EXPECT_GT(top, t.nnz() / 4);
}

TEST(SkewedSparseTensorTest, ZeroSkewIsRoughlyUniform) {
  Rng rng(8);
  SparseTensor t = SkewedSparseTensor({50, 50}, 1000, 0.0, rng);
  std::int64_t top = 0;
  for (std::int64_t i = 0; i < 5; ++i) top += t.SliceSize(0, i);
  // 5/50 slices should hold about 10% of entries.
  EXPECT_LT(top, t.nnz() / 4);
}

}  // namespace
}  // namespace ptucker
