#include "data/normalize.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "util/random.h"

namespace ptucker {
namespace {

TEST(NormalizeTest, MapsToUnitInterval) {
  SparseTensor t({3, 3});
  t.AddEntry({0, 0}, -4.0);
  t.AddEntry({1, 1}, 6.0);
  t.AddEntry({2, 2}, 1.0);
  NormalizationParams params = NormalizeValues(&t);
  EXPECT_EQ(params.min_value, -4.0);
  EXPECT_EQ(params.max_value, 6.0);
  EXPECT_DOUBLE_EQ(t.value(0), 0.0);
  EXPECT_DOUBLE_EQ(t.value(1), 1.0);
  EXPECT_DOUBLE_EQ(t.value(2), 0.5);
}

TEST(NormalizeTest, InverseRecoversOriginal) {
  Rng rng(1);
  SparseTensor t({10, 10});
  std::vector<double> originals;
  for (int e = 0; e < 30; ++e) {
    const double value = rng.Uniform(-100.0, 250.0);
    originals.push_back(value);
    std::int64_t index[2] = {static_cast<std::int64_t>(rng.UniformInt(10)),
                             static_cast<std::int64_t>(rng.UniformInt(10))};
    t.AddEntry(index, value);
  }
  NormalizationParams params = NormalizeValues(&t);
  for (std::int64_t e = 0; e < t.nnz(); ++e) {
    EXPECT_NEAR(params.Inverse(t.value(e)),
                originals[static_cast<std::size_t>(e)], 1e-10);
    EXPECT_GE(t.value(e), 0.0);
    EXPECT_LE(t.value(e), 1.0);
  }
}

TEST(NormalizeTest, ConstantTensorMapsToMidpoint) {
  SparseTensor t({4, 4});
  t.AddEntry({0, 0}, 7.0);
  t.AddEntry({1, 2}, 7.0);
  NormalizationParams params = NormalizeValues(&t);
  EXPECT_DOUBLE_EQ(t.value(0), 0.5);
  EXPECT_DOUBLE_EQ(params.Inverse(t.value(0)), 7.0);
}

TEST(NormalizeTest, EmptyTensorIsNoop) {
  SparseTensor t({4, 4});
  EXPECT_NO_THROW(NormalizeValues(&t));
}

TEST(NormalizeTest, AlreadyNormalizedIsStable) {
  SparseTensor t({3, 3});
  t.AddEntry({0, 0}, 0.0);
  t.AddEntry({1, 1}, 1.0);
  t.AddEntry({2, 2}, 0.25);
  NormalizeValues(&t);
  EXPECT_DOUBLE_EQ(t.value(2), 0.25);
}

}  // namespace
}  // namespace ptucker
