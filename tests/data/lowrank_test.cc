#include "data/lowrank.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/nmode.h"

namespace ptucker {
namespace {

TEST(RandomTuckerModelTest, Shapes) {
  Rng rng(1);
  PlantedTucker model = RandomTuckerModel({10, 20, 30}, {2, 3, 4}, rng);
  EXPECT_EQ(model.core.dims(), (std::vector<std::int64_t>{2, 3, 4}));
  ASSERT_EQ(model.factors.size(), 3u);
  EXPECT_EQ(model.factors[0].rows(), 10);
  EXPECT_EQ(model.factors[0].cols(), 2);
  EXPECT_EQ(model.factors[2].rows(), 30);
  EXPECT_EQ(model.factors[2].cols(), 4);
}

TEST(SampleFromModelTest, NoiselessSamplesMatchModel) {
  Rng rng(2);
  PlantedTucker model = RandomTuckerModel({8, 8, 8}, {2, 2, 2}, rng);
  SparseTensor x = SampleFromModel(model, 100, 0.0, rng);
  for (std::int64_t e = 0; e < x.nnz(); ++e) {
    const double expected = std::clamp(
        ReconstructEntry(model.core, model.factors, x.index(e)), 0.0, 1.0);
    EXPECT_NEAR(x.value(e), expected, 1e-12);
  }
}

TEST(SampleFromModelTest, ValuesClampedToUnitInterval) {
  Rng rng(3);
  PlantedTucker model = RandomTuckerModel({6, 6}, {2, 2}, rng);
  SparseTensor x = SampleFromModel(model, 30, 10.0, rng);  // huge noise
  for (std::int64_t e = 0; e < x.nnz(); ++e) {
    EXPECT_GE(x.value(e), 0.0);
    EXPECT_LE(x.value(e), 1.0);
  }
}

TEST(SampleFromModelTest, DistinctCoordinatesAndModeIndex) {
  Rng rng(4);
  PlantedTucker model = RandomTuckerModel({5, 5, 5}, {2, 2, 2}, rng);
  SparseTensor x = SampleFromModel(model, 125, 0.01, rng);  // fully dense
  EXPECT_EQ(x.nnz(), 125);
  EXPECT_TRUE(x.has_mode_index());
}

TEST(SampleFromModelTest, NoiseShiftsValues) {
  Rng rng_a(5);
  PlantedTucker model = RandomTuckerModel({8, 8}, {2, 2}, rng_a);
  Rng rng_clean(6), rng_noisy(6);
  SparseTensor clean = SampleFromModel(model, 40, 0.0, rng_clean);
  SparseTensor noisy = SampleFromModel(model, 40, 0.2, rng_noisy);
  // Same coordinates (same rng stream) but different values.
  double max_diff = 0.0;
  for (std::int64_t e = 0; e < clean.nnz(); ++e) {
    max_diff = std::max(max_diff,
                        std::fabs(clean.value(e) - noisy.value(e)));
  }
  EXPECT_GT(max_diff, 1e-4);
}

}  // namespace
}  // namespace ptucker
