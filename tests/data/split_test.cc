#include "data/split.h"

#include <set>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "tensor/index.h"

namespace ptucker {
namespace {

TEST(SplitTest, NinetyTenCounts) {
  Rng rng(1);
  SparseTensor t = UniformSparseTensor({30, 30, 30}, 1000, rng);
  auto split = SplitObservedEntries(t, 0.1, rng);
  EXPECT_EQ(split.test.nnz(), 100);
  EXPECT_EQ(split.train.nnz(), 900);
}

TEST(SplitTest, PartitionIsExactAndDisjoint) {
  Rng rng(2);
  SparseTensor t = UniformSparseTensor({20, 20}, 200, rng);
  auto split = SplitObservedEntries(t, 0.25, rng);
  const auto strides = ComputeStrides(t.dims());
  std::set<std::int64_t> train_keys, test_keys, all_keys;
  for (std::int64_t e = 0; e < split.train.nnz(); ++e) {
    train_keys.insert(Linearize(split.train.index(e), strides, 2));
  }
  for (std::int64_t e = 0; e < split.test.nnz(); ++e) {
    test_keys.insert(Linearize(split.test.index(e), strides, 2));
  }
  for (std::int64_t e = 0; e < t.nnz(); ++e) {
    all_keys.insert(Linearize(t.index(e), strides, 2));
  }
  // Disjoint.
  for (std::int64_t key : test_keys) {
    EXPECT_EQ(train_keys.count(key), 0u);
  }
  // Union covers everything.
  EXPECT_EQ(train_keys.size() + test_keys.size(), all_keys.size());
}

TEST(SplitTest, DimsPreservedAndIndexBuilt) {
  Rng rng(3);
  SparseTensor t = UniformSparseTensor({5, 6, 7}, 100, rng);
  auto split = SplitObservedEntries(t, 0.1, rng);
  EXPECT_EQ(split.train.dims(), t.dims());
  EXPECT_EQ(split.test.dims(), t.dims());
  EXPECT_TRUE(split.train.has_mode_index());
  EXPECT_TRUE(split.test.has_mode_index());
}

TEST(SplitTest, ZeroFractionPutsEverythingInTrain) {
  Rng rng(4);
  SparseTensor t = UniformSparseTensor({10, 10}, 50, rng);
  auto split = SplitObservedEntries(t, 0.0, rng);
  EXPECT_EQ(split.train.nnz(), 50);
  EXPECT_EQ(split.test.nnz(), 0);
}

TEST(SplitTest, ValuesCarriedOver) {
  Rng rng(5);
  SparseTensor t = UniformSparseTensor({10, 10}, 40, rng);
  auto split = SplitObservedEntries(t, 0.5, rng);
  double original_sum = 0.0, split_sum = 0.0;
  for (std::int64_t e = 0; e < t.nnz(); ++e) original_sum += t.value(e);
  for (std::int64_t e = 0; e < split.train.nnz(); ++e) {
    split_sum += split.train.value(e);
  }
  for (std::int64_t e = 0; e < split.test.nnz(); ++e) {
    split_sum += split.test.value(e);
  }
  EXPECT_NEAR(original_sum, split_sum, 1e-10);
}

}  // namespace
}  // namespace ptucker
