#include "distributed/partition.h"

#include <set>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "util/random.h"

namespace ptucker {
namespace {

SparseTensor SkewedTensor(std::uint64_t seed) {
  Rng rng(seed);
  return SkewedSparseTensor({200, 150, 100}, 5000, 1.2, rng);
}

void ExpectValidPartition(const RowPartition& partition, std::int64_t rows) {
  std::set<std::int64_t> seen;
  for (const auto& owned : partition.rows_per_worker) {
    for (const std::int64_t row : owned) {
      EXPECT_TRUE(seen.insert(row).second) << "row " << row << " duplicated";
      EXPECT_GE(row, 0);
      EXPECT_LT(row, rows);
    }
  }
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), rows);
}

TEST(PartitionTest, BlockCoversAllRowsDisjointly) {
  SparseTensor x = SkewedTensor(1);
  for (const std::int64_t workers : {1, 2, 3, 7}) {
    RowPartition partition = PartitionRowsBlock(x, 0, workers);
    ASSERT_EQ(partition.num_workers(), workers);
    ExpectValidPartition(partition, x.dim(0));
  }
}

TEST(PartitionTest, GreedyCoversAllRowsDisjointly) {
  SparseTensor x = SkewedTensor(2);
  for (const std::int64_t workers : {1, 2, 4, 9}) {
    RowPartition partition = PartitionRowsGreedy(x, 1, workers);
    ASSERT_EQ(partition.num_workers(), workers);
    ExpectValidPartition(partition, x.dim(1));
  }
}

TEST(PartitionTest, SingleWorkerOwnsEverything) {
  SparseTensor x = SkewedTensor(3);
  RowPartition partition = PartitionRowsGreedy(x, 0, 1);
  EXPECT_EQ(static_cast<std::int64_t>(partition.rows_per_worker[0].size()),
            x.dim(0));
  EXPECT_DOUBLE_EQ(LoadImbalance(x, 0, partition), 1.0);
}

TEST(PartitionTest, MoreWorkersThanRows) {
  SparseTensor x({3, 3});
  x.AddEntry({0, 0}, 1.0);
  x.AddEntry({1, 1}, 1.0);
  x.AddEntry({2, 2}, 1.0);
  x.BuildModeIndex();
  RowPartition partition = PartitionRowsGreedy(x, 0, 8);
  ExpectValidPartition(partition, 3);
}

TEST(PartitionTest, GreedyBeatsBlockOnSkewedData) {
  // The point of workload-aware partitioning (§III-D's distributed
  // analog): lower imbalance than contiguous blocks under Zipf skew.
  SparseTensor x = SkewedTensor(4);
  for (const std::int64_t workers : {2, 4, 8}) {
    const double block =
        LoadImbalance(x, 0, PartitionRowsBlock(x, 0, workers));
    const double greedy =
        LoadImbalance(x, 0, PartitionRowsGreedy(x, 0, workers));
    EXPECT_LE(greedy, block + 1e-12) << "workers " << workers;
    EXPECT_GE(greedy, 1.0 - 1e-12);
  }
}

TEST(PartitionTest, GreedyNearBalancedOnUniformData) {
  Rng rng(5);
  SparseTensor x = UniformSparseTensor({100, 100, 100}, 4000, rng);
  const double imbalance =
      LoadImbalance(x, 0, PartitionRowsGreedy(x, 0, 4));
  EXPECT_LT(imbalance, 1.05);
}

TEST(PartitionTest, BlockWithMoreWorkersThanRowsLeavesTrailingWorkersEmpty) {
  // The multi-process solver's edge case: dims smaller than the worker
  // count mean some workers own zero rows of a mode — the partition must
  // still be valid, disjoint, and contiguous.
  SparseTensor x({3, 3});
  x.AddEntry({0, 0}, 1.0);
  x.AddEntry({1, 1}, 1.0);
  x.AddEntry({2, 2}, 1.0);
  x.BuildModeIndex();
  RowPartition partition = PartitionRowsBlock(x, 0, 8);
  ASSERT_EQ(partition.num_workers(), 8);
  ExpectValidPartition(partition, 3);
  std::int64_t empty = 0;
  for (const auto& owned : partition.rows_per_worker) {
    if (owned.empty()) ++empty;
  }
  EXPECT_EQ(empty, 5);
}

TEST(PartitionTest, BlockPartitionIsContiguousAndOrdered) {
  // The distributed row exchange ships each worker's rows as one
  // contiguous block, so PartitionRowsBlock must hand out consecutive,
  // ascending runs that chain across workers.
  SparseTensor x = SkewedTensor(6);
  for (const std::int64_t workers : {1, 2, 5, 13, 64}) {
    RowPartition partition = PartitionRowsBlock(x, 2, workers);
    std::int64_t next = 0;
    for (const auto& owned : partition.rows_per_worker) {
      for (const std::int64_t row : owned) {
        EXPECT_EQ(row, next) << "workers " << workers;
        ++next;
      }
    }
    EXPECT_EQ(next, x.dim(2)) << "workers " << workers;
  }
}

TEST(PartitionTest, SingleRowModePutsTheRowOnExactlyOneWorker) {
  SparseTensor x({1, 6});
  x.AddEntry({0, 0}, 1.0);
  x.AddEntry({0, 5}, 2.0);
  x.BuildModeIndex();
  for (const std::int64_t workers : {1, 2, 4}) {
    for (const bool greedy : {false, true}) {
      RowPartition partition = greedy ? PartitionRowsGreedy(x, 0, workers)
                                      : PartitionRowsBlock(x, 0, workers);
      ExpectValidPartition(partition, 1);
      std::int64_t owners = 0;
      for (const auto& owned : partition.rows_per_worker) {
        if (!owned.empty()) ++owners;
      }
      EXPECT_EQ(owners, 1) << (greedy ? "greedy" : "block") << " workers "
                           << workers;
    }
  }
}

TEST(PartitionTest, EmptySlicesStillGetAssignedAndCosted) {
  // Rows with no observed entries (empty Ω(n,in)) are real rows: they
  // must land on some worker (the solver zeroes them) and cost the +1
  // floor, never 0 — otherwise greedy could starve a worker and the
  // imbalance model would divide by zero.
  SparseTensor x({5, 2});
  x.AddEntry({2, 0}, 1.0);  // rows 0, 1, 3, 4 of mode 0 are empty
  x.BuildModeIndex();
  for (std::int64_t row = 0; row < 5; ++row) {
    EXPECT_GE(RowUpdateCost(x, 0, row), 1);
  }
  RowPartition block = PartitionRowsBlock(x, 0, 3);
  ExpectValidPartition(block, 5);
  RowPartition greedy = PartitionRowsGreedy(x, 0, 3);
  ExpectValidPartition(greedy, 5);
  EXPECT_GE(LoadImbalance(x, 0, greedy), 1.0 - 1e-12);
}

TEST(PartitionTest, RowUpdateCostTracksSliceSize) {
  SparseTensor x({4, 4});
  x.AddEntry({1, 0}, 1.0);
  x.AddEntry({1, 1}, 1.0);
  x.AddEntry({1, 2}, 1.0);
  x.AddEntry({3, 0}, 1.0);
  x.BuildModeIndex();
  EXPECT_EQ(RowUpdateCost(x, 0, 0), 1);  // empty slice: the +1 floor
  EXPECT_EQ(RowUpdateCost(x, 0, 1), 4);
  EXPECT_EQ(RowUpdateCost(x, 0, 3), 2);
}

}  // namespace
}  // namespace ptucker
