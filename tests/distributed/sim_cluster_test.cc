#include "distributed/sim_cluster.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "util/random.h"

namespace ptucker {
namespace {

SparseTensor TestTensor(std::uint64_t seed) {
  Rng rng(seed);
  return SkewedSparseTensor({40, 30, 20}, 1500, 1.0, rng);
}

PTuckerOptions TestOptions() {
  PTuckerOptions options;
  options.core_dims = {3, 3, 3};
  options.max_iterations = 5;
  return options;
}

TEST(SimClusterTest, RejectsUnsupportedConfigs) {
  SparseTensor x = TestTensor(1);
  PTuckerOptions options = TestOptions();
  EXPECT_THROW(
      SimulateDistributedPTucker(x, options, 0, PartitionStrategy::kGreedy),
      std::invalid_argument);
  options.variant = PTuckerVariant::kCache;
  EXPECT_THROW(
      SimulateDistributedPTucker(x, options, 2, PartitionStrategy::kGreedy),
      std::invalid_argument);
  options = TestOptions();
  options.update_core = true;
  EXPECT_THROW(
      SimulateDistributedPTucker(x, options, 2, PartitionStrategy::kGreedy),
      std::invalid_argument);
}

TEST(SimClusterTest, MatchesSharedMemorySolverExactly) {
  // Row independence (§III-B) means partitioning cannot change the math:
  // the simulated cluster must reproduce PTuckerDecompose's output.
  SparseTensor x = TestTensor(2);
  PTuckerOptions options = TestOptions();
  PTuckerResult shared = PTuckerDecompose(x, options);
  for (const std::int64_t workers : {1, 3, 8}) {
    DistributedPTuckerResult distributed = SimulateDistributedPTucker(
        x, options, workers, PartitionStrategy::kGreedy);
    EXPECT_NEAR(distributed.result.final_error, shared.final_error, 1e-10)
        << "workers " << workers;
    for (std::size_t k = 0; k < shared.model.factors.size(); ++k) {
      EXPECT_TRUE(AllClose(distributed.result.model.factors[k],
                           shared.model.factors[k], 1e-9));
    }
  }
}

TEST(SimClusterTest, StrategyDoesNotChangeResults) {
  SparseTensor x = TestTensor(3);
  PTuckerOptions options = TestOptions();
  DistributedPTuckerResult block = SimulateDistributedPTucker(
      x, options, 4, PartitionStrategy::kBlock);
  DistributedPTuckerResult greedy = SimulateDistributedPTucker(
      x, options, 4, PartitionStrategy::kGreedy);
  EXPECT_NEAR(block.result.final_error, greedy.result.final_error, 1e-10);
}

TEST(SimClusterTest, CommunicationVolumeMatchesRingModel) {
  SparseTensor x = TestTensor(4);
  PTuckerOptions options = TestOptions();
  options.max_iterations = 3;
  options.tolerance = 0.0;  // run exactly 3 iterations
  const std::int64_t workers = 4;
  DistributedPTuckerResult outcome = SimulateDistributedPTucker(
      x, options, workers, PartitionStrategy::kGreedy);
  // Per iteration: Σ_n (W-1)·In·Jn·8 bytes.
  std::int64_t per_iteration = 0;
  for (std::int64_t n = 0; n < x.order(); ++n) {
    per_iteration += (workers - 1) * x.dim(n) * 3 * 8;
  }
  EXPECT_EQ(outcome.stats.total_comm_bytes, 3 * per_iteration);
  EXPECT_EQ(outcome.stats.iterations_run, 3);
}

TEST(SimClusterTest, SingleWorkerHasNoCommunication) {
  SparseTensor x = TestTensor(5);
  DistributedPTuckerResult outcome = SimulateDistributedPTucker(
      x, TestOptions(), 1, PartitionStrategy::kBlock);
  EXPECT_EQ(outcome.stats.total_comm_bytes, 0);
}

TEST(SimClusterTest, GreedyEfficiencyBeatsBlockOnSkew) {
  SparseTensor x = TestTensor(6);
  PTuckerOptions options = TestOptions();
  options.max_iterations = 2;
  options.tolerance = 0.0;
  DistributedPTuckerResult block = SimulateDistributedPTucker(
      x, options, 4, PartitionStrategy::kBlock);
  DistributedPTuckerResult greedy = SimulateDistributedPTucker(
      x, options, 4, PartitionStrategy::kGreedy);
  EXPECT_GE(greedy.stats.Efficiency(0), block.stats.Efficiency(0) - 1e-12);
}

TEST(SimClusterTest, MakespanShrinksWithWorkers) {
  SparseTensor x = TestTensor(7);
  PTuckerOptions options = TestOptions();
  options.max_iterations = 1;
  options.tolerance = 0.0;
  std::int64_t previous =
      SimulateDistributedPTucker(x, options, 1, PartitionStrategy::kGreedy)
          .stats.makespan_per_iteration[0];
  for (const std::int64_t workers : {2, 4, 8}) {
    const std::int64_t makespan =
        SimulateDistributedPTucker(x, options, workers,
                                   PartitionStrategy::kGreedy)
            .stats.makespan_per_iteration[0];
    EXPECT_LE(makespan, previous);
    previous = makespan;
  }
}

}  // namespace
}  // namespace ptucker
