#include "distributed/proc/dist_solver.h"

#include <gtest/gtest.h>

#include "core/ptucker.h"
#include "data/synthetic.h"
#include "util/random.h"

namespace ptucker {
namespace {

SparseTensor TestTensor(std::uint64_t seed) {
  Rng rng(seed);
  return SkewedSparseTensor({20, 16, 12}, 600, 1.0, rng);
}

PTuckerOptions TestOptions() {
  PTuckerOptions options;
  options.core_dims = {3, 2, 2};
  options.max_iterations = 3;
  return options;
}

// The tentpole invariant: not close, EQUAL. Every factor entry, every
// core entry, every per-iteration error must carry the exact bits the
// single-process solver produces.
void ExpectBitIdentical(const PTuckerResult& expected,
                        const PTuckerResult& actual,
                        const std::string& label) {
  ASSERT_EQ(expected.iterations.size(), actual.iterations.size()) << label;
  for (std::size_t i = 0; i < expected.iterations.size(); ++i) {
    EXPECT_EQ(expected.iterations[i].error, actual.iterations[i].error)
        << label << " iteration " << i + 1;
    EXPECT_EQ(expected.iterations[i].core_nnz, actual.iterations[i].core_nnz)
        << label << " iteration " << i + 1;
  }
  EXPECT_EQ(expected.converged, actual.converged) << label;
  EXPECT_EQ(expected.final_error, actual.final_error) << label;
  ASSERT_EQ(expected.model.factors.size(), actual.model.factors.size());
  for (std::size_t n = 0; n < expected.model.factors.size(); ++n) {
    const Matrix& a = expected.model.factors[n];
    const Matrix& b = actual.model.factors[n];
    ASSERT_EQ(a.rows(), b.rows()) << label;
    ASSERT_EQ(a.cols(), b.cols()) << label;
    for (std::int64_t i = 0; i < a.rows() * a.cols(); ++i) {
      ASSERT_EQ(a.data()[i], b.data()[i])
          << label << " factor " << n << " element " << i;
    }
  }
  ASSERT_EQ(expected.model.core.size(), actual.model.core.size()) << label;
  for (std::int64_t i = 0; i < expected.model.core.size(); ++i) {
    ASSERT_EQ(expected.model.core[i], actual.model.core[i])
        << label << " core element " << i;
  }
}

TEST(DistSolverTest, EveryEngineAndWorkerCountMatchesSingleProcessBitwise) {
  // The property sweep: random tensor x workers {1, 2, 3, 8} x all five
  // δ-engines, in-process transport, EXPECT_EQ against the one-process
  // trajectory. Fixed reduction lanes + rank-ordered merges make this an
  // equality, not a tolerance.
  const SparseTensor x = TestTensor(11);
  const DeltaEngineChoice engines[] = {
      DeltaEngineChoice::kNaive, DeltaEngineChoice::kModeMajor,
      DeltaEngineChoice::kCached, DeltaEngineChoice::kAdaptive,
      DeltaEngineChoice::kTiled};
  for (const DeltaEngineChoice engine : engines) {
    PTuckerOptions options = TestOptions();
    options.delta_engine = engine;
    const PTuckerResult expected = PTuckerDecompose(x, options);
    for (const std::int64_t workers : {1, 2, 3, 8}) {
      DistOptions dist;
      dist.workers = workers;
      dist.transport = DistTransport::kInProcess;
      const DistributedPTuckerResult distributed =
          DistributedPTuckerDecompose(x, options, dist);
      ExpectBitIdentical(expected, distributed.result,
                         "engine " + std::to_string(static_cast<int>(engine)) +
                             ", workers " + std::to_string(workers));
      EXPECT_EQ(distributed.stats.workers, workers);
      EXPECT_EQ(distributed.stats.iterations_run,
                static_cast<int>(expected.iterations.size()));
      EXPECT_GT(distributed.stats.total_comm_bytes, 0);
    }
  }
}

TEST(DistSolverTest, ForkedSocketpairWorkersMatchSingleProcessBitwise) {
  // Real multi-process execution: forked workers over AF_UNIX
  // socketpairs, N in {2, 4, 8}.
  const SparseTensor x = TestTensor(12);
  const PTuckerOptions options = TestOptions();
  const PTuckerResult expected = PTuckerDecompose(x, options);
  for (const std::int64_t workers : {2, 4, 8}) {
    DistOptions dist;
    dist.workers = workers;
    dist.transport = DistTransport::kSocketpair;
    const DistributedPTuckerResult distributed =
        DistributedPTuckerDecompose(x, options, dist);
    ExpectBitIdentical(expected, distributed.result,
                       "socketpair workers " + std::to_string(workers));
  }
}

TEST(DistSolverTest, TcpWorkersMatchSingleProcessBitwise) {
  // The same wire a real multi-host deployment would use.
  const SparseTensor x = TestTensor(13);
  const PTuckerOptions options = TestOptions();
  const PTuckerResult expected = PTuckerDecompose(x, options);
  DistOptions dist;
  dist.workers = 2;
  dist.transport = DistTransport::kTcp;
  const DistributedPTuckerResult distributed =
      DistributedPTuckerDecompose(x, options, dist);
  ExpectBitIdentical(expected, distributed.result, "tcp workers 2");
}

TEST(DistSolverTest, CoreUpdateRunsDistributedCgBitwise) {
  // update_core drives CG through the cluster: the coordinator runs the
  // control flow, workers compute the design products as lane partials.
  const SparseTensor x = TestTensor(14);
  PTuckerOptions options = TestOptions();
  options.update_core = true;
  options.core_update_cg_iterations = 4;
  const PTuckerResult expected = PTuckerDecompose(x, options);
  for (const std::int64_t workers : {2, 3}) {
    DistOptions dist;
    dist.workers = workers;
    dist.transport = DistTransport::kInProcess;
    const DistributedPTuckerResult distributed =
        DistributedPTuckerDecompose(x, options, dist);
    ExpectBitIdentical(expected, distributed.result,
                       "update_core workers " + std::to_string(workers));
  }
}

TEST(DistSolverTest, SubsampledSolveStaysPartitionInvariant) {
  // sample_rate < 1 keys subsample streams by (seed, iteration, mode,
  // row) — never by worker — so the distributed draw is the same draw.
  const SparseTensor x = TestTensor(15);
  PTuckerOptions options = TestOptions();
  options.sample_rate = 0.6;
  const PTuckerResult expected = PTuckerDecompose(x, options);
  DistOptions dist;
  dist.workers = 3;
  dist.transport = DistTransport::kInProcess;
  const DistributedPTuckerResult distributed =
      DistributedPTuckerDecompose(x, options, dist);
  ExpectBitIdentical(expected, distributed.result, "sample_rate 0.6");
}

TEST(DistSolverTest, ModesSmallerThanWorkerCountStillMatch) {
  // dims {3, 2, 5} with 8 workers: most workers own zero rows of most
  // modes and still participate in every merge and reduction.
  Rng rng(16);
  SparseTensor x = SkewedSparseTensor({3, 2, 5}, 25, 0.5, rng);
  PTuckerOptions options;
  options.core_dims = {2, 2, 2};
  options.max_iterations = 3;
  const PTuckerResult expected = PTuckerDecompose(x, options);
  for (const std::int64_t workers : {4, 8}) {
    DistOptions dist;
    dist.workers = workers;
    dist.transport = DistTransport::kInProcess;
    const DistributedPTuckerResult distributed =
        DistributedPTuckerDecompose(x, options, dist);
    ExpectBitIdentical(expected, distributed.result,
                       "tiny modes, workers " + std::to_string(workers));
  }
}

TEST(DistSolverTest, WarmStartSnapshotReplicatesAcrossWorkers) {
  const SparseTensor x = TestTensor(17);
  PTuckerOptions options = TestOptions();
  options.orthogonalize_output = false;
  const PTuckerResult first = PTuckerDecompose(x, options);
  PTuckerOptions resumed = options;
  resumed.init_snapshot = &first.model;
  const PTuckerResult expected = PTuckerDecompose(x, resumed);
  DistOptions dist;
  dist.workers = 2;
  dist.transport = DistTransport::kInProcess;
  const DistributedPTuckerResult distributed =
      DistributedPTuckerDecompose(x, resumed, dist);
  ExpectBitIdentical(expected, distributed.result, "warm start");
}

TEST(DistSolverTest, RejectsUnsupportedConfigurations) {
  const SparseTensor x = TestTensor(18);
  const PTuckerOptions options = TestOptions();
  DistOptions dist;
  dist.transport = DistTransport::kInProcess;

  dist.workers = 0;
  EXPECT_THROW(DistributedPTuckerDecompose(x, options, dist),
               std::invalid_argument);
  dist.workers = 65;  // more workers than reduction lanes
  EXPECT_THROW(DistributedPTuckerDecompose(x, options, dist),
               std::invalid_argument);

  dist.workers = 2;
  PTuckerOptions bad = options;
  bad.variant = PTuckerVariant::kApprox;
  EXPECT_THROW(DistributedPTuckerDecompose(x, bad, dist),
               std::invalid_argument);

  bad = options;
  MemoryTracker tracker(1 << 20);
  bad.tracker = &tracker;
  EXPECT_THROW(DistributedPTuckerDecompose(x, bad, dist),
               std::invalid_argument);

  bad = options;
  bad.core_dims = {3, 2};  // wrong order
  EXPECT_THROW(DistributedPTuckerDecompose(x, bad, dist),
               std::invalid_argument);
}

}  // namespace
}  // namespace ptucker
