#include "distributed/proc/dist_wire.h"

#include <gtest/gtest.h>

#include "serve/net/wire.h"

namespace ptucker {
namespace {

TEST(DistWireTest, FrameRoundTripCarriesOpcodeTagAndPayload) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 250, 255};
  const std::vector<std::uint8_t> bytes =
      EncodeDistFrame(DistOpcode::kRows, 42, payload);
  ASSERT_EQ(bytes.size(), kFrameHeaderSize + payload.size());
  DistFrame frame;
  std::size_t consumed = 0;
  std::string error;
  ASSERT_EQ(DecodeDistFrame(bytes.data(), bytes.size(), &frame, &consumed,
                            &error),
            DecodeResult::kFrame)
      << error;
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(frame.opcode, DistOpcode::kRows);
  EXPECT_EQ(frame.tag, 42u);
  EXPECT_EQ(frame.payload, payload);
}

TEST(DistWireTest, EveryTruncatedPrefixAsksForMoreBytes) {
  const std::vector<std::uint8_t> bytes =
      EncodeDistFrame(DistOpcode::kSolveMode, 7, EncodeSolveMode(2));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    DistFrame frame;
    std::size_t consumed = 0;
    std::string error;
    EXPECT_EQ(DecodeDistFrame(bytes.data(), len, &frame, &consumed, &error),
              DecodeResult::kNeedMore)
        << "prefix length " << len;
  }
}

TEST(DistWireTest, MagicCorruptionConvictedAtFirstBadByte) {
  const std::vector<std::uint8_t> bytes =
      EncodeDistFrame(DistOpcode::kHello, 0, EncodeHello(0, 2, 1));
  for (std::size_t b = 0; b < 4; ++b) {
    std::vector<std::uint8_t> corrupt = bytes;
    corrupt[b] ^= 0x20;
    DistFrame frame;
    std::size_t consumed = 0;
    std::string error;
    // Conviction must not need more than the bad byte itself.
    EXPECT_EQ(DecodeDistFrame(corrupt.data(), b + 1, &frame, &consumed,
                              &error),
              DecodeResult::kError);
    EXPECT_NE(error.find("bad magic byte at offset " + std::to_string(b)),
              std::string::npos)
        << error;
    EXPECT_NE(error.find("not a PTKD stream"), std::string::npos) << error;
  }
}

TEST(DistWireTest, ReservedBytesAndUnknownOpcodesRejected) {
  const std::vector<std::uint8_t> bytes =
      EncodeDistFrame(DistOpcode::kAck, 1, {});
  DistFrame frame;
  std::size_t consumed = 0;
  std::string error;

  std::vector<std::uint8_t> corrupt = bytes;
  corrupt[6] = 1;
  EXPECT_EQ(DecodeDistFrame(corrupt.data(), corrupt.size(), &frame, &consumed,
                            &error),
            DecodeResult::kError);
  EXPECT_NE(error.find("reserved header bytes"), std::string::npos) << error;

  corrupt = bytes;
  corrupt[4] = 0;  // below kHello
  EXPECT_EQ(DecodeDistFrame(corrupt.data(), corrupt.size(), &frame, &consumed,
                            &error),
            DecodeResult::kError);
  EXPECT_NE(error.find("unknown opcode"), std::string::npos) << error;

  corrupt = bytes;
  corrupt[4] = 200;  // above kAbort
  EXPECT_EQ(DecodeDistFrame(corrupt.data(), corrupt.size(), &frame, &consumed,
                            &error),
            DecodeResult::kError);
  EXPECT_NE(error.find("unknown opcode"), std::string::npos) << error;
}

TEST(DistWireTest, HostilePayloadLengthRejected) {
  std::vector<std::uint8_t> bytes = EncodeDistFrame(DistOpcode::kRows, 3, {});
  // Overwrite the length field with something past the 1 GiB cap.
  const std::uint32_t huge = kMaxDistPayload + 1;
  bytes[16] = static_cast<std::uint8_t>(huge & 0xFF);
  bytes[17] = static_cast<std::uint8_t>((huge >> 8) & 0xFF);
  bytes[18] = static_cast<std::uint8_t>((huge >> 16) & 0xFF);
  bytes[19] = static_cast<std::uint8_t>((huge >> 24) & 0xFF);
  DistFrame frame;
  std::size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeDistFrame(bytes.data(), bytes.size(), &frame, &consumed,
                            &error),
            DecodeResult::kError);
  EXPECT_NE(error.find("exceeds the"), std::string::npos) << error;
}

TEST(DistWireTest, CrossProtocolFramesRejectedThroughSharedCodec) {
  // A PTKN serving frame fed to the DIST decoder dies on the magic
  // mismatch — and vice versa — through the one shared header codec.
  const std::vector<std::uint8_t> ptkn = EncodePredictRequest(9, {1, 2, 3});
  DistFrame dist_frame;
  std::size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeDistFrame(ptkn.data(), ptkn.size(), &dist_frame, &consumed,
                            &error),
            DecodeResult::kError);
  EXPECT_NE(error.find("not a PTKD stream"), std::string::npos) << error;

  const std::vector<std::uint8_t> ptkd =
      EncodeDistFrame(DistOpcode::kHello, 0, EncodeHello(1, 2, 1));
  WireFrame wire_frame;
  EXPECT_EQ(DecodeFrame(ptkd.data(), ptkd.size(), &wire_frame, &consumed,
                        &error),
            DecodeResult::kError);
  EXPECT_NE(error.find("not a PTKN stream"), std::string::npos) << error;
}

TEST(DistWireTest, HelloRoundTrip) {
  std::int64_t rank = 0, workers = 0;
  std::uint32_t version = 0;
  std::string error;
  ASSERT_TRUE(ParseHello(EncodeHello(3, 8, kDistProtocolVersion), &rank,
                         &workers, &version, &error))
      << error;
  EXPECT_EQ(rank, 3);
  EXPECT_EQ(workers, 8);
  EXPECT_EQ(version, kDistProtocolVersion);
  EXPECT_FALSE(ParseHello({1, 2, 3}, &rank, &workers, &version, &error));
}

TEST(DistWireTest, RowBlockRoundTripIsBitExact) {
  Matrix factor(5, 3);
  for (std::int64_t i = 0; i < 5; ++i) {
    for (std::int64_t j = 0; j < 3; ++j) {
      // Include values with no short decimal form: bit-exactness matters.
      *(factor.Row(i) + j) = (static_cast<double>(i * 3 + j) + 0.1) / 0.7;
    }
  }
  DistRowBlock block;
  std::string error;
  ASSERT_TRUE(ParseRowBlock(EncodeRowBlock(1, factor, 2, 3), &block, &error))
      << error;
  EXPECT_EQ(block.mode, 1);
  EXPECT_EQ(block.row_begin, 2);
  EXPECT_EQ(block.row_count, 3);
  EXPECT_EQ(block.cols, 3);
  ASSERT_EQ(block.values.size(), 9u);
  for (std::size_t i = 0; i < block.values.size(); ++i) {
    EXPECT_EQ(block.values[i], *(factor.Row(2) + static_cast<std::int64_t>(i)));
  }
}

TEST(DistWireTest, EmptyRowBlockRoundTrips) {
  // Workers owning no rows of a small mode still answer with a (valid,
  // empty) block.
  Matrix factor(2, 4);
  DistRowBlock block;
  std::string error;
  ASSERT_TRUE(ParseRowBlock(EncodeRowBlock(0, factor, 0, 0), &block, &error))
      << error;
  EXPECT_EQ(block.row_count, 0);
  EXPECT_TRUE(block.values.empty());
}

TEST(DistWireTest, RowBlockSizeMismatchRejected) {
  Matrix factor(4, 2);
  std::vector<std::uint8_t> payload = EncodeRowBlock(0, factor, 0, 4);
  payload.pop_back();
  DistRowBlock block;
  std::string error;
  EXPECT_FALSE(ParseRowBlock(payload, &block, &error));
  EXPECT_NE(error.find("want"), std::string::npos) << error;
}

TEST(DistWireTest, DoubleVectorRoundTripIsBitExact) {
  const std::vector<double> values = {0.1, -2.5e300, 3.0 / 7.0, 0.0};
  std::vector<double> decoded;
  std::string error;
  ASSERT_TRUE(ParseDoubleVector(EncodeDoubleVector(values), &decoded, &error))
      << error;
  ASSERT_EQ(decoded.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(decoded[i], values[i]);
  }
}

TEST(DistWireTest, LaneBlockRoundTripAndRangeValidation) {
  const double values[] = {1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5, 8.5};
  DistLaneBlock block;
  std::string error;
  ASSERT_TRUE(ParseLaneBlock(EncodeLaneBlock(10, 3, 2, values), &block,
                             &error))
      << error;
  EXPECT_EQ(block.first_lane, 10);
  EXPECT_EQ(block.lane_count, 3);
  EXPECT_EQ(block.width, 2);
  ASSERT_EQ(block.values.size(), 6u);
  EXPECT_EQ(block.values[5], 6.5);

  // A lane range past the fixed 64-lane partition is a protocol error.
  EXPECT_FALSE(ParseLaneBlock(EncodeLaneBlock(60, 8, 1, values), &block,
                              &error));
  EXPECT_NE(error.find("64-lane partition"), std::string::npos) << error;
}

}  // namespace
}  // namespace ptucker
