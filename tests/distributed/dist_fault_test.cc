#include <sys/wait.h>

#include <cerrno>

#include <gtest/gtest.h>

#include "core/ptucker.h"
#include "data/synthetic.h"
#include "distributed/proc/dist_solver.h"
#include "util/random.h"

namespace ptucker {
namespace {

SparseTensor TestTensor(std::uint64_t seed) {
  Rng rng(seed);
  return SkewedSparseTensor({18, 14, 10}, 400, 1.0, rng);
}

PTuckerOptions TestOptions() {
  PTuckerOptions options;
  options.core_dims = {2, 2, 2};
  options.max_iterations = 3;
  return options;
}

DistOptions FaultyCluster(DistFaultInjection::Kind kind) {
  DistOptions dist;
  dist.workers = 3;
  dist.transport = DistTransport::kSocketpair;
  dist.recv_timeout_ms = 30000;
  dist.fault.kind = kind;
  dist.fault.rank = 1;
  dist.fault.iteration = 2;  // mid-solve, after one clean iteration
  dist.fault.mode = 1;
  return dist;
}

// No zombie children may survive a solve, successful or aborted: with
// every child reaped, waitpid(-1) has nothing to report.
void ExpectNoChildProcesses() {
  const pid_t got = ::waitpid(-1, nullptr, WNOHANG);
  const int err = errno;
  EXPECT_TRUE(got < 0 && err == ECHILD)
      << "unreaped child state: waitpid returned " << got;
}

TEST(DistFaultTest, WorkerDeathMidIterationIsLoudAndLeavesNoZombies) {
  const SparseTensor x = TestTensor(21);
  const DistOptions dist =
      FaultyCluster(DistFaultInjection::Kind::kKillWorker);
  try {
    DistributedPTuckerDecompose(x, TestOptions(), dist);
    FAIL() << "a dead worker must abort the solve";
  } catch (const DistError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("worker 1"), std::string::npos) << message;
    EXPECT_NE(message.find("connection closed"), std::string::npos)
        << message;
  }
  ExpectNoChildProcesses();
}

TEST(DistFaultTest, CorruptFrameConvictsWorkerAtFirstBadByte) {
  const SparseTensor x = TestTensor(22);
  const DistOptions dist =
      FaultyCluster(DistFaultInjection::Kind::kCorruptFrame);
  try {
    DistributedPTuckerDecompose(x, TestOptions(), dist);
    FAIL() << "a corrupt frame must abort the solve";
  } catch (const DistError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("worker 1"), std::string::npos) << message;
    EXPECT_NE(message.find("bad magic byte at offset 0 (0x58)"),
              std::string::npos)
        << message;
    EXPECT_NE(message.find("not a PTKD stream"), std::string::npos)
        << message;
  }
  ExpectNoChildProcesses();
}

TEST(DistFaultTest, TruncatedFrameReportsMidFrameClose) {
  const SparseTensor x = TestTensor(23);
  const DistOptions dist =
      FaultyCluster(DistFaultInjection::Kind::kTruncatedFrame);
  try {
    DistributedPTuckerDecompose(x, TestOptions(), dist);
    FAIL() << "a truncated frame must abort the solve";
  } catch (const DistError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("worker 1"), std::string::npos) << message;
    EXPECT_NE(message.find("closed mid-frame"), std::string::npos) << message;
  }
  ExpectNoChildProcesses();
}

TEST(DistFaultTest, InProcessWorkerDeathAbortsWithoutHanging) {
  // The simulated cluster signals death through queue close, not EOF on
  // a pipe — same conviction, no processes involved.
  const SparseTensor x = TestTensor(24);
  DistOptions dist = FaultyCluster(DistFaultInjection::Kind::kKillWorker);
  dist.transport = DistTransport::kInProcess;
  try {
    DistributedPTuckerDecompose(x, TestOptions(), dist);
    FAIL() << "a dead worker must abort the solve";
  } catch (const DistError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("worker 1"), std::string::npos) << message;
    EXPECT_NE(message.find("connection closed"), std::string::npos)
        << message;
  }
}

TEST(DistFaultTest, CleanSolveReapsAllWorkers) {
  const SparseTensor x = TestTensor(25);
  DistOptions dist;
  dist.workers = 2;
  dist.transport = DistTransport::kSocketpair;
  const DistributedPTuckerResult result =
      DistributedPTuckerDecompose(x, TestOptions(), dist);
  EXPECT_GT(result.result.iterations.size(), 0u);
  ExpectNoChildProcesses();
}

TEST(DistFaultTest, FaultBeforeFirstCleanIterationStillAborts) {
  // Death during iteration 1, mode 0 — nothing has been merged yet.
  const SparseTensor x = TestTensor(26);
  DistOptions dist = FaultyCluster(DistFaultInjection::Kind::kKillWorker);
  dist.fault.rank = 0;
  dist.fault.iteration = 1;
  dist.fault.mode = 0;
  EXPECT_THROW(DistributedPTuckerDecompose(x, TestOptions(), dist),
               DistError);
  ExpectNoChildProcesses();
}

}  // namespace
}  // namespace ptucker
