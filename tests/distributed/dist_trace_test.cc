// Distributed span collection (docs/observability.md): with tracing on,
// a forked-worker solve must land each rank's dist.* spans in the
// coordinator's tracer via the kBye payload, stamped pid = rank + 1 —
// the merged timeline --trace-out exports. And tracing must stay
// observability-only: the traced distributed trajectory is bit-identical
// to the untraced single-process one.
#include "distributed/proc/dist_solver.h"

#include <cstring>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ptucker.h"
#include "data/synthetic.h"
#include "obs/trace.h"
#include "util/random.h"

namespace ptucker {
namespace {

SparseTensor TestTensor(std::uint64_t seed) {
  Rng rng(seed);
  return SkewedSparseTensor({20, 16, 12}, 600, 1.0, rng);
}

PTuckerOptions TestOptions() {
  PTuckerOptions options;
  options.core_dims = {3, 2, 2};
  options.max_iterations = 3;
  return options;
}

TEST(DistTraceTest, ForkedWorkersShipSpansPerRankWithoutPerturbingSolve) {
  const SparseTensor x = TestTensor(21);
  const PTuckerOptions options = TestOptions();

  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Disable();
  tracer.Clear();
  const PTuckerResult expected = PTuckerDecompose(x, options);

  DistOptions dist;
  dist.workers = 4;
  dist.transport = DistTransport::kSocketpair;
  tracer.Enable();
  const DistributedPTuckerResult traced =
      DistributedPTuckerDecompose(x, options, dist);
  const std::vector<obs::TraceEvent> events = tracer.Snapshot();
  tracer.Disable();
  tracer.Clear();

  // Spans arrived from at least 2 distinct worker ranks (pid = rank + 1;
  // pid 0 is the coordinator), and they carry the dist.* phase names.
  std::set<int> worker_pids;
  std::set<std::string> worker_span_names;
  for (const obs::TraceEvent& event : events) {
    if (event.pid > 0) {
      worker_pids.insert(event.pid);
      worker_span_names.insert(event.name);
    }
  }
  EXPECT_GE(worker_pids.size(), 2u);
  EXPECT_NE(worker_span_names.count("dist.row_solve"), 0u);
  EXPECT_NE(worker_span_names.count("dist.row_exchange"), 0u);

  // Tracing never touches the numbers: bit-equal to the untraced
  // single-process trajectory.
  ASSERT_EQ(expected.iterations.size(), traced.result.iterations.size());
  for (std::size_t i = 0; i < expected.iterations.size(); ++i) {
    EXPECT_EQ(std::memcmp(&expected.iterations[i].error,
                          &traced.result.iterations[i].error,
                          sizeof(double)),
              0)
        << "iteration " << i;
  }
  EXPECT_EQ(std::memcmp(&expected.final_error, &traced.result.final_error,
                        sizeof(double)),
            0);
}

TEST(DistTraceTest, InProcessWorkersRecordSpansWithoutImport) {
  // kInProcess workers share the coordinator's live tracer: spans appear
  // directly (pid 0) and the kBye payload stays empty — no
  // double-counting through the import path.
  const SparseTensor x = TestTensor(22);
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Disable();
  tracer.Clear();

  DistOptions dist;
  dist.workers = 3;
  dist.transport = DistTransport::kInProcess;
  tracer.Enable();
  DistributedPTuckerDecompose(x, TestOptions(), dist);
  const std::vector<obs::TraceEvent> events = tracer.Snapshot();
  tracer.Disable();
  tracer.Clear();

  bool saw_row_solve = false;
  for (const obs::TraceEvent& event : events) {
    EXPECT_EQ(event.pid, 0);  // nothing imported
    if (std::strcmp(event.name, "dist.row_solve") == 0) saw_row_solve = true;
  }
  EXPECT_TRUE(saw_row_solve);
}

}  // namespace
}  // namespace ptucker
