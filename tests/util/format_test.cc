#include "util/format.h"

#include <gtest/gtest.h>

namespace ptucker {
namespace {

TEST(FormatBytesTest, PlainBytes) {
  EXPECT_EQ(FormatBytes(0), "0 B");
  EXPECT_EQ(FormatBytes(512), "512 B");
}

TEST(FormatBytesTest, Kilobytes) {
  EXPECT_EQ(FormatBytes(1536), "1.50 KB");
}

TEST(FormatBytesTest, MegabytesAndUp) {
  EXPECT_EQ(FormatBytes(std::int64_t{3} * 1024 * 1024), "3.00 MB");
  EXPECT_EQ(FormatBytes(std::int64_t{5} * 1024 * 1024 * 1024), "5.00 GB");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

TEST(JoinIntsTest, JoinsWithSeparator) {
  EXPECT_EQ(JoinInts({1, 2, 3}, "x"), "1x2x3");
  EXPECT_EQ(JoinInts({7}, ","), "7");
  EXPECT_EQ(JoinInts({}, ","), "");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"method", "time"});
  table.AddRow({"P-Tucker", "1.5"});
  table.AddRow({"HOOI", "20.25"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| method   | time  |"), std::string::npos);
  EXPECT_NE(out.find("| P-Tucker | 1.5   |"), std::string::npos);
  EXPECT_NE(out.find("| HOOI     | 20.25 |"), std::string::npos);
}

TEST(TablePrinterTest, HeaderOnly) {
  TablePrinter table({"a"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| a |"), std::string::npos);
}

}  // namespace
}  // namespace ptucker
