#include "util/memory_tracker.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ptucker {
namespace {

TEST(MemoryTrackerTest, ChargeAndRelease) {
  MemoryTracker tracker;
  tracker.Charge(100);
  EXPECT_EQ(tracker.current_bytes(), 100);
  tracker.Charge(50);
  EXPECT_EQ(tracker.current_bytes(), 150);
  tracker.Release(100);
  EXPECT_EQ(tracker.current_bytes(), 50);
}

TEST(MemoryTrackerTest, PeakIsHighWaterMark) {
  MemoryTracker tracker;
  tracker.Charge(100);
  tracker.Release(100);
  tracker.Charge(60);
  EXPECT_EQ(tracker.peak_bytes(), 100);
  tracker.Charge(70);
  EXPECT_EQ(tracker.peak_bytes(), 130);
}

TEST(MemoryTrackerTest, BudgetEnforced) {
  MemoryTracker tracker(1000);
  tracker.Charge(900);
  EXPECT_THROW(tracker.Charge(200), OutOfMemoryBudget);
  // The failed charge must not leak into the running total.
  EXPECT_EQ(tracker.current_bytes(), 900);
  tracker.Charge(100);  // exactly at budget is fine
  EXPECT_EQ(tracker.current_bytes(), 1000);
}

TEST(MemoryTrackerTest, ExceptionCarriesDetails) {
  MemoryTracker tracker(1000);
  try {
    tracker.Charge(1500);
    FAIL() << "expected OutOfMemoryBudget";
  } catch (const OutOfMemoryBudget& e) {
    EXPECT_EQ(e.requested_bytes, 1500);
    EXPECT_EQ(e.budget_bytes, 1000);
  }
}

TEST(MemoryTrackerTest, UnlimitedWhenBudgetZero) {
  MemoryTracker tracker(0);
  EXPECT_NO_THROW(tracker.Charge(std::int64_t{1} << 50));
}

TEST(MemoryTrackerTest, ResetClearsCounters) {
  MemoryTracker tracker(1000);
  tracker.Charge(500);
  tracker.Reset();
  EXPECT_EQ(tracker.current_bytes(), 0);
  EXPECT_EQ(tracker.peak_bytes(), 0);
  EXPECT_EQ(tracker.budget_bytes(), 1000);
}

TEST(MemoryTrackerTest, ScopedChargeReleasesOnExit) {
  MemoryTracker tracker;
  {
    ScopedCharge charge(&tracker, 123);
    EXPECT_EQ(tracker.current_bytes(), 123);
  }
  EXPECT_EQ(tracker.current_bytes(), 0);
  EXPECT_EQ(tracker.peak_bytes(), 123);
}

TEST(MemoryTrackerTest, ScopedChargeNullTrackerIsNoop) {
  ScopedCharge charge(nullptr, 1 << 20);  // must not crash
}

TEST(MemoryTrackerTest, ConcurrentChargesBalance) {
  MemoryTracker tracker;
  constexpr int kThreads = 4;
  constexpr int kIterations = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&tracker]() {
      for (int i = 0; i < kIterations; ++i) {
        tracker.Charge(8);
        tracker.Release(8);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(tracker.current_bytes(), 0);
  EXPECT_GE(tracker.peak_bytes(), 8);
}

}  // namespace
}  // namespace ptucker
