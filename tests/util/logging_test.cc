#include "util/logging.h"

#include <gtest/gtest.h>

#include "obs/stopwatch.h"

namespace ptucker {
namespace {

TEST(LoggerTest, LevelFiltering) {
  Logger& logger = Logger::Get();
  const LogLevel saved = logger.level();
  logger.set_level(LogLevel::kOff);
  // Below-threshold logs must be swallowed without side effects.
  PTUCKER_LOG(kDebug) << "invisible " << 42;
  PTUCKER_LOG(kError) << "also invisible at kOff";
  logger.set_level(LogLevel::kError);
  EXPECT_EQ(logger.level(), LogLevel::kError);
  logger.set_level(saved);
}

TEST(LoggerTest, SingletonIdentity) {
  EXPECT_EQ(&Logger::Get(), &Logger::Get());
}

TEST(LoggerTest, StreamComposesTypes) {
  Logger& logger = Logger::Get();
  const LogLevel saved = logger.level();
  logger.set_level(LogLevel::kOff);
  // Must compile and run for mixed operand types.
  PTUCKER_LOG(kInfo) << "x=" << 1.5 << " n=" << 7 << " s=" << std::string("t");
  logger.set_level(saved);
}

TEST(CheckTest, PassingCheckIsSilent) {
  PTUCKER_CHECK(1 + 1 == 2);  // must not abort
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(PTUCKER_CHECK(false), "CHECK failed: false");
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  // Busy loop a little; elapsed must be positive and monotone.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += static_cast<double>(i);
  const double first = watch.ElapsedSeconds();
  EXPECT_GT(first, 0.0);
  for (int i = 0; i < 100000; ++i) sink += static_cast<double>(i);
  EXPECT_GE(watch.ElapsedSeconds(), first);
  EXPECT_NEAR(watch.ElapsedMillis(), watch.ElapsedSeconds() * 1e3,
              watch.ElapsedSeconds() * 1e3);  // same clock, looser bound
}

TEST(StopwatchTest, ResetRestarts) {
  Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 200000; ++i) sink += static_cast<double>(i);
  const double before = watch.ElapsedSeconds();
  watch.Reset();
  EXPECT_LT(watch.ElapsedSeconds(), before + 1e-3);
}

}  // namespace
}  // namespace ptucker
