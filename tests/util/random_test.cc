#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace ptucker {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next()) ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRangeUniformly) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(RngTest, UniformIntOneAlwaysZero) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformInt(1), 0u);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(23);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.Normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, NormalWithParameters) {
  Rng rng(29);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, SampleDistinctAndInRange) {
  Rng rng(31);
  auto sample = rng.Sample(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  std::set<std::int64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::int64_t v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, SampleAllElements) {
  Rng rng(37);
  auto sample = rng.Sample(10, 10);
  std::sort(sample.begin(), sample.end());
  for (std::int64_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, SampleZero) {
  Rng rng(41);
  EXPECT_TRUE(rng.Sample(10, 0).empty());
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(43);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7};
  auto original = values;
  rng.Shuffle(values);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, original);
}

}  // namespace
}  // namespace ptucker
