# Telemetry smoke test: METRICS round-trips through `ptucker_cli stats`
# against a live serve. Trains a tiny model, runs a bounded serve on an
# ephemeral port with --metrics-log-ms enabled, scrapes it with the
# stats subcommand from a second CLI process, and checks that the
# Prometheus-style exposition text (docs/observability.md) and the
# periodic metrics log lines both appear. The wire-level METRICS opcode
# itself is covered by tests/serve/net/metrics_opcode_test.cc; this
# exercises the operator-facing path end to end over real TCP.
#
# Invoked by ctest as:
#   cmake -DPTUCKER_CLI=<path> -DWORK_DIR=<dir> -P stats_smoke.cmake

if(NOT PTUCKER_CLI)
  message(FATAL_ERROR "PTUCKER_CLI not set")
endif()
if(NOT WORK_DIR)
  message(FATAL_ERROR "WORK_DIR not set")
endif()

file(MAKE_DIRECTORY ${WORK_DIR})
set(model_path ${WORK_DIR}/stats_smoke_model.ptks)
set(serve_log ${WORK_DIR}/stats_smoke_serve.log)
file(REMOVE ${model_path} ${serve_log})

# 1. Train on synthetic data and checkpoint the model.
execute_process(
  COMMAND ${PTUCKER_CLI} --selftest --max-iters 2 --seed 7 --quiet
          --save-model ${model_path}
  OUTPUT_VARIABLE train_out
  ERROR_VARIABLE train_err
  RESULT_VARIABLE train_rc
)
if(NOT train_rc EQUAL 0)
  message(FATAL_ERROR "training exited with ${train_rc}\n"
                      "stdout:\n${train_out}\nstderr:\n${train_err}")
endif()

# 2. Background a bounded serve, discover its ephemeral port from the
# startup banner, scrape it with `ptucker_cli stats`, then wait for the
# serve to exit cleanly. Needs a shell for the background process; the
# CI and dev environments are POSIX.
execute_process(
  COMMAND sh -ec "\
'${PTUCKER_CLI}' serve --load-model '${model_path}' --port 0 \
    --serve-seconds 5 --metrics-log-ms 500 > '${serve_log}' 2>&1 & \
serve_pid=$!; \
port=''; \
for i in $(seq 1 100); do \
  port=$(sed -n 's/.*serving on port \\([0-9][0-9]*\\).*/\\1/p' \
         '${serve_log}' | head -n 1); \
  [ -n \"$port\" ] && break; \
  sleep 0.1; \
done; \
if [ -z \"$port\" ]; then \
  echo 'serve never reported a port'; cat '${serve_log}'; exit 1; \
fi; \
'${PTUCKER_CLI}' stats 127.0.0.1:$port; \
wait $serve_pid"
  OUTPUT_VARIABLE scrape_out
  ERROR_VARIABLE scrape_err
  RESULT_VARIABLE scrape_rc
)
if(NOT scrape_rc EQUAL 0)
  message(FATAL_ERROR "stats scrape failed with ${scrape_rc}\n"
                      "stdout:\n${scrape_out}\nstderr:\n${scrape_err}")
endif()

# 3. The scrape returned real exposition text: HELP/TYPE comments plus
# the serve metric families.
foreach(needle
        "# TYPE ptucker_serve_requests_total counter"
        "ptucker_serve_predict_latency_seconds_bucket"
        "ptucker_serve_queue_depth"
        "ptucker_serve_shed_total")
  if(NOT scrape_out MATCHES "${needle}")
    message(FATAL_ERROR "missing '${needle}' in stats output:\n${scrape_out}")
  endif()
endforeach()

# 4. The serve logged periodic metrics lines on the --metrics-log-ms
# cadence and shut down cleanly.
file(READ ${serve_log} serve_out)
if(NOT serve_out MATCHES "metrics: ")
  message(FATAL_ERROR "missing --metrics-log-ms lines in:\n${serve_out}")
endif()
if(NOT serve_out MATCHES "stopped after 5s")
  message(FATAL_ERROR "missing clean-shutdown line in:\n${serve_out}")
endif()

file(REMOVE ${model_path} ${serve_log})
message(STATUS "stats_smoke passed")
