# Serving smoke test: drive the full checkpoint-and-serve loop through
# ptucker_cli — train a tiny model, save a snapshot, warm-start from it,
# answer predict and topk queries, validate every serve flag at the
# parser boundary, run a bounded `serve` over TCP, and check that
# unknown subcommands fail loudly (not by silently defaulting to
# decompose). The wire-level behavior of the server itself is covered by
# tests/serve/net/.
#
# Invoked by ctest as:
#   cmake -DPTUCKER_CLI=<path> -DWORK_DIR=<dir> -P serve_smoke.cmake

if(NOT PTUCKER_CLI)
  message(FATAL_ERROR "PTUCKER_CLI not set")
endif()
if(NOT WORK_DIR)
  message(FATAL_ERROR "WORK_DIR not set")
endif()

file(MAKE_DIRECTORY ${WORK_DIR})
set(model_path ${WORK_DIR}/serve_smoke_model.ptks)
set(queries_path ${WORK_DIR}/serve_smoke_queries.tns)
file(REMOVE ${model_path})

# run(<outvar> <expected_rc> args...): run the CLI, assert the exit code.
function(run outvar expected_rc)
  execute_process(
    COMMAND ${PTUCKER_CLI} ${ARGN}
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc
  )
  if(NOT rc EQUAL ${expected_rc})
    message(FATAL_ERROR
      "ptucker_cli ${ARGN} exited with ${rc} (want ${expected_rc})\n"
      "stdout:\n${out}\nstderr:\n${err}")
  endif()
  set(${outvar} "${out}\n${err}" PARENT_SCOPE)
endfunction()

# 1. Train on synthetic data and checkpoint the model.
run(train_out 0 --selftest --max-iters 4 --seed 42 --quiet
    --save-model ${model_path})
if(NOT train_out MATCHES "model snapshot written to")
  message(FATAL_ERROR "missing snapshot confirmation in:\n${train_out}")
endif()
if(NOT EXISTS ${model_path})
  message(FATAL_ERROR "snapshot file was not created: ${model_path}")
endif()

# 2. Warm-start a short resume from the checkpoint.
run(warm_out 0 --selftest --max-iters 2 --seed 42 --quiet
    --load-model ${model_path})
if(NOT warm_out MATCHES "warm start from")
  message(FATAL_ERROR "missing warm-start confirmation in:\n${warm_out}")
endif()

# 3. Batched predictions at three coordinates (selftest tensor is
# 50x40x30; .tns values are ignored by predict).
file(WRITE ${queries_path} "1 1 1 0\n25 20 15 0\n50 40 30 0\n")
run(predict_out 0 predict --load-model ${model_path}
    --queries ${queries_path})
if(NOT predict_out MATCHES "3 predictions")
  message(FATAL_ERROR "missing predictions header in:\n${predict_out}")
endif()
if(NOT predict_out MATCHES "25 20 15 [-0-9.]+")
  message(FATAL_ERROR "missing/unparseable prediction line in:\n${predict_out}")
endif()

# 4. Top-K recommendation along mode 2.
run(topk_out 0 topk --load-model ${model_path} --mode 2 --index 3,1,5 --k 3)
if(NOT topk_out MATCHES "top-3 along mode 2")
  message(FATAL_ERROR "missing topk header in:\n${topk_out}")
endif()
if(NOT topk_out MATCHES "  3\\. index [0-9]+  predicted [-0-9.]+")
  message(FATAL_ERROR "missing third topk result in:\n${topk_out}")
endif()

# 5. Exact-scan nprobe spelling and the v2 conversion round trip.
run(topk_all_out 0 topk --load-model ${model_path} --mode 2 --index 3,1,5
    --k 3 --topk-nprobe all)
if(NOT topk_all_out MATCHES "top-3 along mode 2")
  message(FATAL_ERROR "missing nprobe=all topk header in:\n${topk_all_out}")
endif()
set(converted_path ${WORK_DIR}/serve_smoke_model_v2.ptks)
run(convert_out 0 convert-model --load-model ${model_path}
    --save-model ${converted_path})
if(NOT convert_out MATCHES "model snapshot written to")
  message(FATAL_ERROR "missing convert confirmation in:\n${convert_out}")
endif()
run(converted_topk_out 0 topk --load-model ${converted_path} --mode 2
    --index 3,1,5 --k 3)
if(NOT converted_topk_out MATCHES "top-3 along mode 2")
  message(FATAL_ERROR "converted snapshot unservable:\n${converted_topk_out}")
endif()

# 6. Knob validation: out-of-range engine knobs die at the flag parser
# with exit code 2, not deep inside the library.
run(bad_tile_out 2 --selftest --tile-width 0)
if(NOT bad_tile_out MATCHES "--tile-width must be in")
  message(FATAL_ERROR "missing tile-width validation in:\n${bad_tile_out}")
endif()
run(bad_eps_out 2 --selftest --adaptive-eps 1.5)
if(NOT bad_eps_out MATCHES "--adaptive-eps must be in")
  message(FATAL_ERROR "missing adaptive-eps validation in:\n${bad_eps_out}")
endif()
run(bad_nprobe_out 2 topk --load-model ${model_path} --mode 2 --index 3,1,5
    --topk-nprobe maybe)
if(NOT bad_nprobe_out MATCHES "bad --topk-nprobe value")
  message(FATAL_ERROR "missing nprobe validation in:\n${bad_nprobe_out}")
endif()

# 7. Serving-flag validation: every serve knob dies at the flag parser
# with exit code 2 and a message naming the flag — before any socket or
# model file is touched (no --load-model given on purpose).
run(bad_port_out 2 serve --port 65536)
if(NOT bad_port_out MATCHES "--port must be in \\[0, 65535\\]")
  message(FATAL_ERROR "missing port validation in:\n${bad_port_out}")
endif()
run(bad_listen_out 2 serve --listen-threads 0)
if(NOT bad_listen_out MATCHES "--listen-threads must be in \\[1, 64\\]")
  message(FATAL_ERROR "missing listen-threads validation in:\n${bad_listen_out}")
endif()
run(bad_workers_out 2 serve --worker-threads 65)
if(NOT bad_workers_out MATCHES "--worker-threads must be in \\[1, 64\\]")
  message(FATAL_ERROR "missing worker-threads validation in:\n${bad_workers_out}")
endif()
run(bad_batch_out 2 serve --max-batch 5000)
if(NOT bad_batch_out MATCHES "--max-batch must be in \\[1, 4096\\]")
  message(FATAL_ERROR "missing max-batch validation in:\n${bad_batch_out}")
endif()
run(bad_window_out 2 serve --batch-window-us -1)
if(NOT bad_window_out MATCHES "--batch-window-us must be in \\[0, 1000000\\]")
  message(FATAL_ERROR "missing batch-window validation in:\n${bad_window_out}")
endif()
run(bad_queue_out 2 serve --max-batch 64 --queue-capacity 10)
if(NOT bad_queue_out MATCHES "--queue-capacity must be >= --max-batch")
  message(FATAL_ERROR "missing queue-capacity validation in:\n${bad_queue_out}")
endif()
run(bad_seconds_out 2 serve --serve-seconds 90000)
if(NOT bad_seconds_out MATCHES "--serve-seconds must be in \\[0, 86400\\]")
  message(FATAL_ERROR "missing serve-seconds validation in:\n${bad_seconds_out}")
endif()
run(no_model_out 2 serve)
if(NOT no_model_out MATCHES "serve requires --load-model")
  message(FATAL_ERROR "missing serve load-model error in:\n${no_model_out}")
endif()

# 8. A bounded serve run actually binds, serves, and exits cleanly.
run(serve_out 0 serve --load-model ${model_path} --port 0 --serve-seconds 1)
if(NOT serve_out MATCHES "serving on port [0-9]+")
  message(FATAL_ERROR "missing serve startup banner in:\n${serve_out}")
endif()
if(NOT serve_out MATCHES "stopped after 1s")
  message(FATAL_ERROR "missing clean-shutdown line in:\n${serve_out}")
endif()

# 9. Unknown subcommands and flags must fail with a clear error.
run(bad_sub_out 2 serveur --load-model ${model_path})
if(NOT bad_sub_out MATCHES "unknown subcommand 'serveur'")
  message(FATAL_ERROR "missing unknown-subcommand error in:\n${bad_sub_out}")
endif()
run(bad_flag_out 2 predict --load-model ${model_path} --wat 1)
if(NOT bad_flag_out MATCHES "unknown flag: --wat")
  message(FATAL_ERROR "missing unknown-flag error in:\n${bad_flag_out}")
endif()
run(positional_out 2 predict ${model_path})
if(NOT positional_out MATCHES "unexpected positional argument")
  message(FATAL_ERROR "missing positional-argument error in:\n${positional_out}")
endif()

file(REMOVE ${model_path} ${queries_path} ${converted_path})
message(STATUS "serve_smoke passed")
