/// \file
/// \brief IVF-style coarse quantization of factor rows for sublinear
/// top-K: k-means centroids over a mode's factor matrix plus CSR inverted
/// lists mapping each centroid to its member rows. Built at
/// snapshot-write time (serialized into snapshot v2 as an optional
/// section) and probed by PredictionService::TopK, which scans only the
/// `nprobe` clusters whose centroids score best against the query's δ
/// vector instead of all I_n rows.
#ifndef PTUCKER_ANALYTICS_IVF_H_
#define PTUCKER_ANALYTICS_IVF_H_

#include <cstdint>
#include <vector>

#include "linalg/factor_view.h"
#include "linalg/matrix.h"
#include "util/span.h"

namespace ptucker {

/// A coarse inverted-file index over one mode's factor rows. `k == 0`
/// means no index was built for the mode (too few rows); consumers must
/// fall back to the exhaustive scan.
struct IvfIndex {
  /// Number of coarse clusters (0 = index absent).
  std::int64_t k = 0;
  /// k x rank centroid matrix.
  Matrix centroids;
  /// CSR cluster boundaries: cluster c's member rows are
  /// ids[offsets[c] .. offsets[c+1]). Size k + 1.
  std::vector<std::int64_t> offsets;
  /// Member row ids grouped by cluster, ascending within each cluster.
  /// Size = the mode's row count (every row belongs to exactly one
  /// cluster).
  std::vector<std::int32_t> ids;
};

/// Non-owning view of a serialized IvfIndex (the snapshot-v2 centroid
/// section); same shape contract as IvfIndex.
struct IvfModeView {
  std::int64_t k = 0;                  ///< clusters (0 = section absent)
  FactorView centroids;                ///< k x rank
  Span<const std::int64_t> offsets;    ///< k + 1 CSR boundaries
  Span<const std::int32_t> ids;        ///< rows, grouped by cluster
};

struct IvfBuildOptions {
  /// Coarse cluster count; 0 picks min(1024, ceil(sqrt(rows))) — the
  /// classic IVF √I sizing.
  std::int64_t k = 0;
  /// Rows below this skip index construction entirely (a linear scan is
  /// already cheap).
  std::int64_t min_rows = 64;
  /// k-means trains on at most this many sampled rows; assignment still
  /// covers every row.
  std::int64_t max_train_rows = 16384;
  /// Lloyd iterations for the coarse centroids (a rough quantizer is
  /// enough — recall comes from nprobe, not centroid polish).
  int max_iterations = 12;
  /// Deterministic training-sample / k-means seed.
  std::uint64_t seed = 0x1f5eedULL;
};

/// Builds the coarse index over `rows` (a mode's factor matrix).
/// Deterministic for fixed options: the training sample, k-means seeding,
/// and the full assignment pass (nearest centroid, ties to the lowest
/// cluster id) are all seed-driven, and member lists are ascending.
/// Returns an empty index (k = 0) when rows < min_rows.
IvfIndex BuildIvfRows(const FactorView& rows, const IvfBuildOptions& options);

/// View of an owning index (for probing code shared with the mmap path).
inline IvfModeView MakeIvfView(const IvfIndex& index) {
  IvfModeView view;
  view.k = index.k;
  view.centroids = FactorView(index.centroids);
  view.offsets = {index.offsets.data(), index.offsets.size()};
  view.ids = {index.ids.data(), index.ids.size()};
  return view;
}

}  // namespace ptucker

#endif  // PTUCKER_ANALYTICS_IVF_H_
