#ifndef PTUCKER_ANALYTICS_DISCOVERY_H_
#define PTUCKER_ANALYTICS_DISCOVERY_H_

#include <cstdint>
#include <vector>

#include "analytics/kmeans.h"
#include "core/ptucker.h"

namespace ptucker {

/// §V discovery tooling on a fitted Tucker model.

/// A concept: a cluster of mode entities with similar latent rows
/// (Table V: movie genres found by clustering the movie factor matrix).
struct Concept {
  std::int64_t cluster_id = 0;
  /// Row ids (entity indices of the mode) belonging to the concept,
  /// ordered by distance to the centroid (most representative first).
  std::vector<std::int64_t> members;
};

/// Clusters the rows of factor matrix `mode` into `k` concepts.
std::vector<Concept> DiscoverConcepts(const TuckerFactorization& model,
                                      std::int64_t mode, std::int64_t k,
                                      std::uint64_t seed = 0x5eedULL);

/// A relation: a large-magnitude core entry linking one column of every
/// factor matrix (Table VI: "an entry (j1,…,jN) of G is associated with
/// the jn-th column of A(n) … with a strength G(j1,…,jN)").
struct Relation {
  std::vector<std::int64_t> core_index;  // (j1, …, jN)
  double strength = 0.0;                 // G value (signed)
};

/// The top-k core entries by |G| in descending order.
std::vector<Relation> DiscoverRelations(const TuckerFactorization& model,
                                        std::int64_t top_k);

/// For a relation and a mode, the entity indices most aligned with the
/// relation's mode-`mode` column — e.g. the hours participating in a
/// (genre, hour) relation. Returns the top `count` row ids of A(mode)
/// by column-jn coefficient.
std::vector<std::int64_t> TopEntitiesForRelation(
    const TuckerFactorization& model, const Relation& relation,
    std::int64_t mode, std::int64_t count);

}  // namespace ptucker

#endif  // PTUCKER_ANALYTICS_DISCOVERY_H_
