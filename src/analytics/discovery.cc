#include "analytics/discovery.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace ptucker {

std::vector<Concept> DiscoverConcepts(const TuckerFactorization& model,
                                      std::int64_t mode, std::int64_t k,
                                      std::uint64_t seed) {
  PTUCKER_CHECK(mode >= 0 &&
                mode < static_cast<std::int64_t>(model.factors.size()));
  const Matrix& factor = model.factors[static_cast<std::size_t>(mode)];

  KMeansOptions options;
  options.k = k;
  options.seed = seed;
  const KMeansResult clustering = KMeansRows(factor, options);

  std::vector<Concept> concepts(static_cast<std::size_t>(k));
  for (std::int64_t c = 0; c < k; ++c) {
    concepts[static_cast<std::size_t>(c)].cluster_id = c;
  }
  for (std::int64_t row = 0; row < factor.rows(); ++row) {
    const std::int64_t c = clustering.assignments[static_cast<std::size_t>(row)];
    concepts[static_cast<std::size_t>(c)].members.push_back(row);
  }
  // Order members by distance to centroid: representative entities first.
  for (auto& found : concepts) {
    const double* centroid = clustering.centroids.Row(found.cluster_id);
    std::sort(found.members.begin(), found.members.end(),
              [&](std::int64_t a, std::int64_t b) {
                double da = 0.0, db = 0.0;
                for (std::int64_t j = 0; j < factor.cols(); ++j) {
                  const double xa = factor(a, j) - centroid[j];
                  const double xb = factor(b, j) - centroid[j];
                  da += xa * xa;
                  db += xb * xb;
                }
                return da < db;
              });
  }
  return concepts;
}

std::vector<Relation> DiscoverRelations(const TuckerFactorization& model,
                                        std::int64_t top_k) {
  const DenseTensor& core = model.core;
  std::vector<std::int64_t> order(static_cast<std::size_t>(core.size()));
  std::iota(order.begin(), order.end(), 0);
  top_k = std::min<std::int64_t>(top_k, core.size());
  std::partial_sort(order.begin(), order.begin() + top_k, order.end(),
                    [&](std::int64_t a, std::int64_t b) {
                      return std::fabs(core[a]) > std::fabs(core[b]);
                    });

  std::vector<Relation> relations;
  relations.reserve(static_cast<std::size_t>(top_k));
  for (std::int64_t r = 0; r < top_k; ++r) {
    Relation relation;
    relation.core_index.resize(static_cast<std::size_t>(core.order()));
    core.IndexOf(order[static_cast<std::size_t>(r)],
                 relation.core_index.data());
    relation.strength = core[order[static_cast<std::size_t>(r)]];
    relations.push_back(std::move(relation));
  }
  return relations;
}

std::vector<std::int64_t> TopEntitiesForRelation(
    const TuckerFactorization& model, const Relation& relation,
    std::int64_t mode, std::int64_t count) {
  PTUCKER_CHECK(mode >= 0 &&
                mode < static_cast<std::int64_t>(model.factors.size()));
  const Matrix& factor = model.factors[static_cast<std::size_t>(mode)];
  const std::int64_t column =
      relation.core_index[static_cast<std::size_t>(mode)];
  PTUCKER_CHECK(column >= 0 && column < factor.cols());

  std::vector<std::int64_t> order(static_cast<std::size_t>(factor.rows()));
  std::iota(order.begin(), order.end(), 0);
  count = std::min<std::int64_t>(count, factor.rows());
  std::partial_sort(order.begin(), order.begin() + count, order.end(),
                    [&](std::int64_t a, std::int64_t b) {
                      return std::fabs(factor(a, column)) >
                             std::fabs(factor(b, column));
                    });
  order.resize(static_cast<std::size_t>(count));
  return order;
}

}  // namespace ptucker
