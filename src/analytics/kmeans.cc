#include "analytics/kmeans.h"

#include <cmath>
#include <limits>
#include <map>

#include "util/logging.h"

namespace ptucker {

namespace {

double SquaredDistance(const double* a, const double* b, std::int64_t n) {
  double sum = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const double diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

}  // namespace

KMeansResult KMeansRows(const Matrix& rows, const KMeansOptions& options) {
  const std::int64_t n = rows.rows();
  const std::int64_t dims = rows.cols();
  const std::int64_t k = options.k;
  PTUCKER_CHECK(k >= 1 && k <= n);

  Rng rng(options.seed);
  KMeansResult result;
  result.centroids = Matrix(k, dims);

  // --- k-means++ seeding. ---
  std::vector<double> min_dist(static_cast<std::size_t>(n),
                               std::numeric_limits<double>::infinity());
  std::int64_t first = static_cast<std::int64_t>(
      rng.UniformInt(static_cast<std::uint64_t>(n)));
  for (std::int64_t j = 0; j < dims; ++j) {
    result.centroids(0, j) = rows(first, j);
  }
  for (std::int64_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      const double d = SquaredDistance(rows.Row(i),
                                       result.centroids.Row(c - 1), dims);
      min_dist[static_cast<std::size_t>(i)] =
          std::min(min_dist[static_cast<std::size_t>(i)], d);
      total += min_dist[static_cast<std::size_t>(i)];
    }
    // Sample proportional to D²; degenerate case falls back to uniform.
    std::int64_t chosen = -1;
    if (total > 0.0) {
      double threshold = rng.Uniform() * total;
      for (std::int64_t i = 0; i < n; ++i) {
        threshold -= min_dist[static_cast<std::size_t>(i)];
        if (threshold <= 0.0) {
          chosen = i;
          break;
        }
      }
    }
    if (chosen < 0) {
      chosen = static_cast<std::int64_t>(
          rng.UniformInt(static_cast<std::uint64_t>(n)));
    }
    for (std::int64_t j = 0; j < dims; ++j) {
      result.centroids(c, j) = rows(chosen, j);
    }
  }

  // --- Lloyd iterations. ---
  result.assignments.assign(static_cast<std::size_t>(n), -1);
  std::vector<std::int64_t> counts(static_cast<std::size_t>(k));
  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    bool changed = false;
    for (std::int64_t i = 0; i < n; ++i) {
      std::int64_t best = 0;
      double best_dist = std::numeric_limits<double>::infinity();
      for (std::int64_t c = 0; c < k; ++c) {
        const double d =
            SquaredDistance(rows.Row(i), result.centroids.Row(c), dims);
        if (d < best_dist) {
          best_dist = d;
          best = c;
        }
      }
      if (result.assignments[static_cast<std::size_t>(i)] != best) {
        result.assignments[static_cast<std::size_t>(i)] = best;
        changed = true;
      }
    }
    result.iterations_run = iteration + 1;
    if (!changed) break;

    result.centroids.Fill(0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::int64_t i = 0; i < n; ++i) {
      const std::int64_t c = result.assignments[static_cast<std::size_t>(i)];
      ++counts[static_cast<std::size_t>(c)];
      for (std::int64_t j = 0; j < dims; ++j) {
        result.centroids(c, j) += rows(i, j);
      }
    }
    for (std::int64_t c = 0; c < k; ++c) {
      const std::int64_t count = counts[static_cast<std::size_t>(c)];
      if (count == 0) {
        // Re-seed an empty cluster at a random row.
        const std::int64_t r = static_cast<std::int64_t>(
            rng.UniformInt(static_cast<std::uint64_t>(n)));
        for (std::int64_t j = 0; j < dims; ++j) {
          result.centroids(c, j) = rows(r, j);
        }
        continue;
      }
      for (std::int64_t j = 0; j < dims; ++j) {
        result.centroids(c, j) /= static_cast<double>(count);
      }
    }
  }

  result.inertia = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    result.inertia += SquaredDistance(
        rows.Row(i),
        result.centroids.Row(result.assignments[static_cast<std::size_t>(i)]),
        dims);
  }
  return result;
}

double ClusterPurity(const std::vector<std::int64_t>& assignments,
                     const std::vector<std::int64_t>& labels) {
  PTUCKER_CHECK(assignments.size() == labels.size());
  if (assignments.empty()) return 1.0;
  // Purity: each cluster votes for its majority label.
  std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t> counts;
  for (std::size_t i = 0; i < assignments.size(); ++i) {
    ++counts[{assignments[i], labels[i]}];
  }
  std::map<std::int64_t, std::int64_t> best_per_cluster;
  for (const auto& [key, count] : counts) {
    auto& best = best_per_cluster[key.first];
    best = std::max(best, count);
  }
  std::int64_t correct = 0;
  for (const auto& [cluster, count] : best_per_cluster) correct += count;
  return static_cast<double>(correct) /
         static_cast<double>(assignments.size());
}

}  // namespace ptucker
