#include "analytics/ivf.h"

#include <algorithm>
#include <cmath>

#include "analytics/kmeans.h"
#include "util/logging.h"
#include "util/random.h"

namespace ptucker {

IvfIndex BuildIvfRows(const FactorView& rows, const IvfBuildOptions& options) {
  IvfIndex index;
  const std::int64_t n = rows.rows();
  const std::int64_t rank = rows.cols();
  if (n < options.min_rows || rank < 1) return index;

  std::int64_t k = options.k;
  if (k <= 0) {
    k = std::min<std::int64_t>(
        1024, static_cast<std::int64_t>(
                  std::ceil(std::sqrt(static_cast<double>(n)))));
  }
  k = std::max<std::int64_t>(1, std::min(k, n));

  // Train the coarse quantizer on a deterministic sample so index build
  // time stays bounded on very tall factors; the assignment pass below
  // still covers every row.
  Rng rng(options.seed);
  Matrix train;
  if (n <= options.max_train_rows) {
    train = Matrix(n, rank);
    for (std::int64_t i = 0; i < n; ++i) {
      const double* src = rows.Row(i);
      std::copy(src, src + rank, train.Row(i));
    }
  } else {
    std::vector<std::int64_t> sample = rng.Sample(n, options.max_train_rows);
    std::sort(sample.begin(), sample.end());
    train = Matrix(options.max_train_rows, rank);
    for (std::int64_t i = 0; i < options.max_train_rows; ++i) {
      const double* src = rows.Row(sample[static_cast<std::size_t>(i)]);
      std::copy(src, src + rank, train.Row(i));
    }
    k = std::min(k, options.max_train_rows);
  }

  KMeansOptions km;
  km.k = k;
  km.max_iterations = options.max_iterations;
  km.seed = options.seed;
  const KMeansResult result = KMeansRows(train, km);

  index.k = k;
  index.centroids = result.centroids;

  // Full assignment pass: nearest centroid by squared L2, ties broken to
  // the lowest cluster id — per-row independent, so the parallel loop is
  // deterministic regardless of thread count.
  std::vector<std::int32_t> assignment(static_cast<std::size_t>(n), 0);
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    const double* row = rows.Row(i);
    std::int64_t best = 0;
    double best_dist = 0.0;
    for (std::int64_t c = 0; c < k; ++c) {
      const double* centroid = index.centroids.Row(c);
      double dist = 0.0;
      for (std::int64_t j = 0; j < rank; ++j) {
        const double d = row[j] - centroid[j];
        dist += d * d;
      }
      if (c == 0 || dist < best_dist) {
        best = c;
        best_dist = dist;
      }
    }
    assignment[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(best);
  }

  // Counting sort into CSR lists; iterating rows ascending makes each
  // cluster's member list ascending, which the exact-probe merge relies
  // on for its (score desc, index asc) total order.
  index.offsets.assign(static_cast<std::size_t>(k) + 1, 0);
  for (std::int64_t i = 0; i < n; ++i) {
    ++index.offsets[static_cast<std::size_t>(assignment[
        static_cast<std::size_t>(i)]) + 1];
  }
  for (std::int64_t c = 0; c < k; ++c) {
    index.offsets[static_cast<std::size_t>(c) + 1] +=
        index.offsets[static_cast<std::size_t>(c)];
  }
  index.ids.resize(static_cast<std::size_t>(n));
  std::vector<std::int64_t> cursor(index.offsets.begin(),
                                   index.offsets.end() - 1);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::size_t c =
        static_cast<std::size_t>(assignment[static_cast<std::size_t>(i)]);
    index.ids[static_cast<std::size_t>(cursor[c]++)] =
        static_cast<std::int32_t>(i);
  }
  return index;
}

}  // namespace ptucker
