#ifndef PTUCKER_ANALYTICS_KMEANS_H_
#define PTUCKER_ANALYTICS_KMEANS_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "util/random.h"

namespace ptucker {

/// K-means over the rows of a matrix — the paper applies this to factor
/// matrices for concept discovery (§V, Table V): "each row of factor
/// matrices represents latent features of the row".
struct KMeansResult {
  /// Cluster id of each row.
  std::vector<std::int64_t> assignments;
  /// k x dims centroid matrix.
  Matrix centroids;
  /// Final within-cluster sum of squared distances.
  double inertia = 0.0;
  int iterations_run = 0;
};

struct KMeansOptions {
  std::int64_t k = 8;
  int max_iterations = 100;
  /// Stop when no assignment changes.
  std::uint64_t seed = 0x5eedULL;
};

/// Lloyd's algorithm with k-means++ seeding. Requires 1 <= k <= rows.
KMeansResult KMeansRows(const Matrix& rows, const KMeansOptions& options);

/// Fraction of pairs of same-label items placed in the same cluster —
/// a simple external quality score used to validate Table V recovery
/// against planted ground truth (1.0 = perfect, chance ≈ 1/k).
double ClusterPurity(const std::vector<std::int64_t>& assignments,
                     const std::vector<std::int64_t>& labels);

}  // namespace ptucker

#endif  // PTUCKER_ANALYTICS_KMEANS_H_
