/// \file
/// \brief The streaming ingest pipeline: online append/update/delete of
/// Ω entries with touched-row re-solves, continuous snapshot-v2
/// checkpoints, and atomic hot swap into a live PredictionService.
///
/// P-Tucker's Lemma 1 makes factor rows independent within a mode, so a
/// changed entry at coordinate (i1..iN) only invalidates row i_n of each
/// factor A(n) — the pipeline buffers mutations, applies them to Ω in
/// arrival order, and re-solves exactly those rows through the shared
/// batched row update (core/row_update.h). Every flush is deterministic:
/// the resulting factors depend only on (initial state, event prefix,
/// options), never on thread count or flush timing, which is what makes
/// crash recovery bit-exact (replay the tail from the last durable
/// checkpoint and land on the same factors). See docs/streaming.md.
#ifndef PTUCKER_STREAM_INGEST_PIPELINE_H_
#define PTUCKER_STREAM_INGEST_PIPELINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/delta_engine.h"
#include "core/ptucker.h"
#include "obs/metrics.h"
#include "serve/service.h"
#include "stream/event_log.h"
#include "tensor/sparse_tensor.h"

namespace ptucker {

/// Configuration of an IngestPipeline.
struct IngestOptions {
  /// L2 regularization λ of the row re-solves (matches the solve that
  /// produced the initial model).
  double lambda = 0.01;

  /// δ-engine for the re-solves. kAuto picks kModeMajor. kCached
  /// rebuilds its Pres table whenever Ω changes structurally (the table
  /// is keyed by entry ids).
  DeltaEngineChoice delta_engine = DeltaEngineChoice::kAuto;

  /// ε of kAdaptive (exact at 0) and tile width of kTiled.
  double adaptive_epsilon = 0.0;
  std::int64_t tile_width = kDefaultTileWidth;

  /// OpenMP environment of the re-solves (0 threads = ambient).
  int num_threads = 0;
  Scheduling scheduling = Scheduling::kDynamic;

  /// Row-update sweeps over the touched rows per flush. One pass is the
  /// pure incremental step; more passes trade latency for accuracy.
  int solve_passes = 1;

  /// Buffered mutations before a flush applies them and re-solves. 1
  /// flushes every mutation immediately.
  std::int64_t flush_every = 64;

  /// Applied-mutation count between automatic checkpoints; 0 disables
  /// them (Checkpoint() can still be called explicitly). Checkpoints
  /// fire when ops_applied() crosses a multiple of this, so the cadence
  /// — and therefore the recovery cadence — is a pure function of the
  /// event prefix. Keep it a multiple of flush_every so boundaries land
  /// on flushes.
  std::int64_t checkpoint_every = 0;

  /// Directory for `ckpt-<seq>.ptks` snapshot-v2 files and the MANIFEST.
  /// Empty publishes in-memory snapshots only (nothing durable).
  std::string checkpoint_dir;

  /// When set, every checkpoint is published here via atomic hot reload
  /// (from the checkpoint file when checkpoint_dir is set, else from an
  /// in-memory copy of the model).
  PredictionService* service = nullptr;

  /// Fault-injection hook for crash tests: runs after the checkpoint
  /// file and MANIFEST are durable but before the snapshot is published.
  /// Throwing from it simulates a crash in that window.
  std::function<void()> fault_hook;

  /// Memory accounting for the engine's derived state (may be null).
  MemoryTracker* tracker = nullptr;

  /// Mutation count already folded into the initial model — set when
  /// resuming from a checkpoint's MANIFEST so the checkpoint cadence
  /// continues where the crashed run left off.
  std::int64_t ops_already_applied = 0;

  /// Registry the pipeline's telemetry records into (applied-event and
  /// checkpoint counters, pending-event and publish-staleness gauges,
  /// flush-duration histogram — docs/observability.md). nullptr
  /// disables stream telemetry entirely.
  obs::MetricsRegistry* metrics_registry = nullptr;
};

/// A durable checkpoint as recorded in a checkpoint directory MANIFEST.
struct CheckpointInfo {
  std::int64_t seq = 0;          ///< checkpoint sequence number
  std::string path;              ///< the snapshot-v2 file
  std::int64_t ops_applied = 0;  ///< mutations folded in at write time
};

/// Accepts append/update/delete mutations of Ω, re-solves only the
/// touched factor rows per mode, checkpoints the model to snapshot v2,
/// and hot-swaps each checkpoint into a PredictionService. Not
/// thread-safe: mutations come from one writer thread (readers query the
/// service, which is lock-free against the swap).
///
/// Mutation semantics are strict — Append of a live coordinate, or
/// Update/Delete of an unobserved one, throws std::invalid_argument and
/// leaves the pipeline unchanged (duplicate Ω coordinates would silently
/// double-count in every engine).
class IngestPipeline {
 public:
  /// Takes ownership of the tensor (the live Ω) and the model fitted to
  /// it. The tensor's coordinates must be unique; its mode index is
  /// (re)built here. Throws std::invalid_argument on shape mismatch
  /// between model and tensor or on duplicate coordinates.
  IngestPipeline(SparseTensor tensor, TuckerFactorization model,
                 IngestOptions options);
  ~IngestPipeline();

  IngestPipeline(const IngestPipeline&) = delete;             ///< has refs
  IngestPipeline& operator=(const IngestPipeline&) = delete;  ///< has refs

  /// Buffers a new observation at an unobserved coordinate.
  void Append(const std::vector<std::int64_t>& index, double value);
  /// Buffers a new value for a live coordinate.
  void Update(const std::vector<std::int64_t>& index, double value);
  /// Buffers removal of a live coordinate from Ω.
  void Delete(const std::vector<std::int64_t>& index);
  /// Dispatches one replay-log event to Append/Update/Delete.
  void Apply(const StreamEvent& event);

  /// Applies every buffered mutation to Ω in arrival order, re-solves
  /// the touched factor rows (solve_passes sweeps per mode, modes in
  /// order), and fires any checkpoint whose boundary was crossed. No-op
  /// when nothing is buffered. Called automatically when the buffer
  /// reaches flush_every.
  void Flush();

  /// Flushes, then writes the next checkpoint (file + MANIFEST when
  /// checkpoint_dir is set, durable via temp-file + rename), runs the
  /// fault hook, and publishes to the service. Automatic checkpoints
  /// number themselves ops_applied() / checkpoint_every so a resumed run
  /// continues the sequence; explicit calls take the next number.
  /// Returns the checkpoint's sequence number.
  std::int64_t Checkpoint();

  /// The live Ω (buffered mutations not yet folded in).
  const SparseTensor& tensor() const { return tensor_; }
  /// The live model (buffered mutations not yet folded in).
  const TuckerFactorization& model() const { return model_; }
  /// Mutations applied to Ω so far (including ops_already_applied).
  std::int64_t ops_applied() const { return ops_applied_; }
  /// Mutations buffered but not yet applied.
  std::int64_t pending() const {
    return static_cast<std::int64_t>(pending_.size());
  }
  /// Checkpoints written by this pipeline (not counting a resumed-from
  /// run's — but sequence numbers continue from ops_already_applied).
  std::int64_t checkpoints_written() const { return checkpoints_written_; }

 private:
  void ValidateIndex(const std::vector<std::int64_t>& index) const;
  void RebuildKeyMap();
  void RebuildEngine();
  void SolveTouchedRows(const std::vector<std::vector<std::int64_t>>& rows);
  void WriteCheckpoint(std::int64_t seq);

  SparseTensor tensor_;
  TuckerFactorization model_;
  IngestOptions options_;
  DeltaEngineChoice engine_choice_;  // resolved, never kAuto

  std::vector<std::int64_t> strides_;
  // Linearized coordinate → live entry id in tensor_. Reflects applied
  // state only; live_ below also covers buffered mutations.
  std::unordered_map<std::int64_t, std::int64_t> key_to_entry_;
  // Linearized coordinates observed after all buffered mutations run —
  // what Append/Update/Delete validate against.
  std::unordered_map<std::int64_t, char> live_;

  std::vector<StreamEvent> pending_;
  std::int64_t ops_applied_ = 0;
  std::int64_t checkpoints_written_ = 0;
  std::int64_t next_seq_ = 0;  // last sequence number handed out

  std::unique_ptr<CoreEntryList> core_list_;
  std::unique_ptr<DeltaEngine> engine_;

  // Telemetry handles, all null when options_.metrics_registry is null
  // (every update site null-checks, so telemetry off costs one branch).
  obs::Counter* metric_events_ = nullptr;
  obs::Counter* metric_checkpoints_ = nullptr;
  obs::Gauge* metric_pending_ = nullptr;
  obs::Gauge* metric_staleness_ = nullptr;
  obs::Histogram* metric_flush_seconds_ = nullptr;
  std::int64_t ops_at_last_publish_ = 0;
};

/// Reads the MANIFEST in `dir` into `info`. Returns false when no
/// MANIFEST exists; throws std::runtime_error on a malformed one.
bool LatestCheckpoint(const std::string& dir, CheckpointInfo* info);

/// Structurally replays `events[0..count)` onto a copy of `initial`
/// (no solving): appends add, updates overwrite, deletes remove. The
/// result has its mode index built — it is the Ω a pipeline that applied
/// the same prefix holds. Throws std::invalid_argument on a mutation
/// that violates the strict semantics, std::out_of_range when count
/// exceeds events.size().
SparseTensor ReplayOmega(const SparseTensor& initial,
                         const std::vector<StreamEvent>& events,
                         std::int64_t count);

}  // namespace ptucker

#endif  // PTUCKER_STREAM_INGEST_PIPELINE_H_
