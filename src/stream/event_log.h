#ifndef PTUCKER_STREAM_EVENT_LOG_H_
#define PTUCKER_STREAM_EVENT_LOG_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ptucker {

/// One mutation of the observed set Ω.
enum class StreamOp : std::uint8_t {
  kAppend = 0,  ///< a new entry at a previously unobserved coordinate
  kUpdate = 1,  ///< a new value for an already-observed coordinate
  kDelete = 2,  ///< removal of an observed coordinate from Ω
};

/// A timestamped Ω mutation. Deletes carry no value (it is ignored).
struct StreamEvent {
  std::int64_t timestamp = 0;        ///< event time, non-decreasing in a log
  StreamOp op = StreamOp::kAppend;   ///< what happened at `index`
  std::vector<std::int64_t> index;   ///< coordinate (0-based, length = order)
  double value = 0.0;                ///< new value for append/update
};

/// Renders events as a replay log:
///
/// ```
/// ptucker-stream v1 <order>
/// <timestamp> a <i1> ... <iN> <value>
/// <timestamp> u <i1> ... <iN> <value>
/// <timestamp> d <i1> ... <iN>
/// ```
///
/// Coordinates are 1-based on the wire (matching the .tns convention);
/// values print with max_digits10 so a round trip is bit-exact. Every
/// event must have `order` coordinates.
std::string FormatEventLog(const std::vector<StreamEvent>& events,
                           std::int64_t order);

/// Parses a replay log produced by FormatEventLog (or by hand). Throws
/// std::runtime_error with a line number on malformed input: bad header,
/// wrong coordinate count, non-positive coordinates, unknown op, a value
/// on a delete / a missing value elsewhere, or a timestamp that
/// decreases. `order` (if non-null) receives the header's order.
std::vector<StreamEvent> ParseEventLog(const std::string& text,
                                       std::int64_t* order);

/// FormatEventLog straight to a file. Throws std::runtime_error when the
/// file cannot be written.
void WriteEventLog(const std::string& path,
                   const std::vector<StreamEvent>& events, std::int64_t order);

/// ParseEventLog straight from a file. Throws std::runtime_error when the
/// file cannot be read or is malformed.
std::vector<StreamEvent> ReadEventLog(const std::string& path,
                                      std::int64_t* order);

}  // namespace ptucker

#endif  // PTUCKER_STREAM_EVENT_LOG_H_
