#include "stream/ingest_pipeline.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/row_update.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"
#include "serve/snapshot_v2.h"
#include "tensor/index.h"

namespace ptucker {

namespace {

// Durable write: bytes land in `path + ".tmp"` first, then rename into
// place, so a crash never leaves a torn file at `path`.
void AtomicWriteFile(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("checkpoint: cannot write " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) throw std::runtime_error("checkpoint: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("checkpoint: cannot rename " + tmp + " to " +
                             path);
  }
}

std::string CheckpointFileName(std::int64_t seq) {
  return "ckpt-" + std::to_string(seq) + ".ptks";
}

}  // namespace

IngestPipeline::IngestPipeline(SparseTensor tensor, TuckerFactorization model,
                               IngestOptions options)
    : tensor_(std::move(tensor)),
      model_(std::move(model)),
      options_(std::move(options)) {
  const std::int64_t order = tensor_.order();
  if (order < 1) {
    throw std::invalid_argument("ingest: tensor must have at least one mode");
  }
  if (static_cast<std::int64_t>(model_.factors.size()) != order ||
      model_.core.order() != order) {
    throw std::invalid_argument(
        "ingest: model order does not match the tensor");
  }
  for (std::int64_t n = 0; n < order; ++n) {
    const Matrix& factor = model_.factors[static_cast<std::size_t>(n)];
    if (factor.rows() != tensor_.dim(n) ||
        factor.cols() != model_.core.dim(n)) {
      throw std::invalid_argument(
          "ingest: model shape mismatch in mode " + std::to_string(n));
    }
  }
  if (options_.lambda < 0.0) {
    throw std::invalid_argument("ingest: lambda must be non-negative");
  }
  if (options_.flush_every < 1) {
    throw std::invalid_argument("ingest: flush_every must be >= 1");
  }
  if (options_.checkpoint_every < 0) {
    throw std::invalid_argument("ingest: checkpoint_every must be >= 0");
  }
  if (options_.solve_passes < 1) {
    throw std::invalid_argument("ingest: solve_passes must be >= 1");
  }
  if (options_.ops_already_applied < 0) {
    throw std::invalid_argument("ingest: ops_already_applied must be >= 0");
  }

  engine_choice_ = options_.delta_engine == DeltaEngineChoice::kAuto
                       ? DeltaEngineChoice::kModeMajor
                       : options_.delta_engine;
  if (!options_.checkpoint_dir.empty()) {
    std::filesystem::create_directories(options_.checkpoint_dir);
  }
  strides_ = ComputeStrides(tensor_.dims());
  ops_applied_ = options_.ops_already_applied;
  next_seq_ = options_.checkpoint_every > 0
                  ? ops_applied_ / options_.checkpoint_every
                  : 0;

  tensor_.BuildModeIndex();
  RebuildKeyMap();
  if (static_cast<std::int64_t>(key_to_entry_.size()) != tensor_.nnz()) {
    throw std::invalid_argument("ingest: tensor has duplicate coordinates");
  }
  live_.reserve(key_to_entry_.size() * 2);
  for (const auto& kv : key_to_entry_) live_.emplace(kv.first, 1);

  core_list_ = std::make_unique<CoreEntryList>(model_.core);
  RebuildEngine();

  ops_at_last_publish_ = ops_applied_;
  if (options_.metrics_registry != nullptr) {
    obs::MetricsRegistry& registry = *options_.metrics_registry;
    metric_events_ = registry.GetCounter(
        "ptucker_stream_events_applied_total",
        "Mutations folded into the live tensor by flushes.");
    metric_checkpoints_ = registry.GetCounter(
        "ptucker_stream_checkpoints_total",
        "Checkpoints written (and published when a service is attached).");
    metric_pending_ = registry.GetGauge(
        "ptucker_stream_pending_events",
        "Mutations buffered but not yet applied (ingest lag in events).");
    metric_staleness_ = registry.GetGauge(
        "ptucker_stream_publish_staleness_ops",
        "Applied mutations not yet covered by a published checkpoint.");
    metric_flush_seconds_ = registry.GetHistogram(
        "ptucker_stream_flush_seconds",
        "Wall time of each flush (apply + touched-row re-solves).",
        obs::ExponentialBuckets(1e-5, 2.0, 20));
  }
}

IngestPipeline::~IngestPipeline() = default;

void IngestPipeline::ValidateIndex(
    const std::vector<std::int64_t>& index) const {
  if (static_cast<std::int64_t>(index.size()) != tensor_.order() ||
      !IndexInBounds(index.data(), tensor_.dims())) {
    throw std::invalid_argument("ingest: coordinate out of bounds");
  }
}

void IngestPipeline::Append(const std::vector<std::int64_t>& index,
                            double value) {
  ValidateIndex(index);
  const std::int64_t key = Linearize(index.data(), strides_, tensor_.order());
  if (live_.count(key) != 0) {
    throw std::invalid_argument(
        "ingest: append to an already-observed coordinate (update instead)");
  }
  live_.emplace(key, 1);
  StreamEvent event;
  event.op = StreamOp::kAppend;
  event.index = index;
  event.value = value;
  pending_.push_back(std::move(event));
  if (metric_pending_ != nullptr) metric_pending_->Set(pending());
  if (pending() >= options_.flush_every) Flush();
}

void IngestPipeline::Update(const std::vector<std::int64_t>& index,
                            double value) {
  ValidateIndex(index);
  const std::int64_t key = Linearize(index.data(), strides_, tensor_.order());
  if (live_.count(key) == 0) {
    throw std::invalid_argument(
        "ingest: update of an unobserved coordinate (append instead)");
  }
  StreamEvent event;
  event.op = StreamOp::kUpdate;
  event.index = index;
  event.value = value;
  pending_.push_back(std::move(event));
  if (metric_pending_ != nullptr) metric_pending_->Set(pending());
  if (pending() >= options_.flush_every) Flush();
}

void IngestPipeline::Delete(const std::vector<std::int64_t>& index) {
  ValidateIndex(index);
  const std::int64_t key = Linearize(index.data(), strides_, tensor_.order());
  if (live_.count(key) == 0) {
    throw std::invalid_argument("ingest: delete of an unobserved coordinate");
  }
  live_.erase(key);
  StreamEvent event;
  event.op = StreamOp::kDelete;
  event.index = index;
  pending_.push_back(std::move(event));
  if (metric_pending_ != nullptr) metric_pending_->Set(pending());
  if (pending() >= options_.flush_every) Flush();
}

void IngestPipeline::Apply(const StreamEvent& event) {
  switch (event.op) {
    case StreamOp::kAppend:
      Append(event.index, event.value);
      return;
    case StreamOp::kUpdate:
      Update(event.index, event.value);
      return;
    case StreamOp::kDelete:
      Delete(event.index);
      return;
  }
  throw std::invalid_argument("ingest: unknown stream op");
}

void IngestPipeline::Flush() {
  if (pending_.empty()) return;
  PTUCKER_TRACE_SPAN("stream.flush");
  Stopwatch flush_clock;
  const std::int64_t order = tensor_.order();

  // Apply the buffered mutations to Ω in arrival order. Deletes only
  // flag entries; the compaction runs once at the end so earlier ids
  // stay valid throughout the batch.
  bool structural = false;
  std::vector<std::int64_t> delete_ids;
  std::vector<std::vector<std::int64_t>> touched(
      static_cast<std::size_t>(order));
  for (const StreamEvent& event : pending_) {
    const std::int64_t key =
        Linearize(event.index.data(), strides_, order);
    switch (event.op) {
      case StreamOp::kAppend: {
        const std::int64_t id = tensor_.nnz();
        tensor_.AddEntry(event.index, event.value);
        key_to_entry_[key] = id;
        structural = true;
        break;
      }
      case StreamOp::kUpdate:
        tensor_.set_value(key_to_entry_.at(key), event.value);
        break;
      case StreamOp::kDelete:
        delete_ids.push_back(key_to_entry_.at(key));
        key_to_entry_.erase(key);
        structural = true;
        break;
    }
    for (std::int64_t n = 0; n < order; ++n) {
      touched[static_cast<std::size_t>(n)].push_back(
          event.index[static_cast<std::size_t>(n)]);
    }
  }
  if (!delete_ids.empty()) {
    std::vector<char> remove(static_cast<std::size_t>(tensor_.nnz()), 0);
    for (const std::int64_t id : delete_ids) {
      remove[static_cast<std::size_t>(id)] = 1;
    }
    tensor_.RemoveEntries(remove);
    RebuildKeyMap();
  }
  if (!tensor_.has_mode_index()) tensor_.BuildModeIndex();

  if (metric_events_ != nullptr) {
    metric_events_->Increment(static_cast<std::uint64_t>(pending()));
  }
  ops_applied_ += pending();
  pending_.clear();
  if (metric_pending_ != nullptr) metric_pending_->Set(0);

  // Engines with Ω-keyed derived state (the Pres table) see a different
  // entry set now; value-only batches keep the engine as-is.
  if (structural) RebuildEngine();

  for (auto& rows : touched) {
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  }
  SolveTouchedRows(touched);

  if (options_.checkpoint_every > 0) {
    const std::int64_t target = ops_applied_ / options_.checkpoint_every;
    while (next_seq_ < target) {
      ++next_seq_;
      WriteCheckpoint(next_seq_);
    }
  }

  if (metric_flush_seconds_ != nullptr) {
    metric_flush_seconds_->Observe(flush_clock.ElapsedSeconds());
  }
  if (metric_staleness_ != nullptr) {
    metric_staleness_->Set(ops_applied_ - ops_at_last_publish_);
  }
}

std::int64_t IngestPipeline::Checkpoint() {
  Flush();
  ++next_seq_;
  WriteCheckpoint(next_seq_);
  return next_seq_;
}

void IngestPipeline::WriteCheckpoint(std::int64_t seq) {
  PTUCKER_TRACE_SPAN("stream.checkpoint");
  std::string snapshot_path;
  if (!options_.checkpoint_dir.empty()) {
    const std::string file = CheckpointFileName(seq);
    snapshot_path = options_.checkpoint_dir + "/" + file;
    // Snapshot first, MANIFEST last: the MANIFEST only ever names a
    // fully-written snapshot, whichever instant a crash hits.
    AtomicWriteFile(snapshot_path, SerializeSnapshotV2(model_, nullptr));
    std::ostringstream manifest;
    manifest << "ptucker-checkpoint v1\n"
             << "seq " << seq << "\n"
             << "file " << file << "\n"
             << "ops " << ops_applied_ << "\n";
    AtomicWriteFile(options_.checkpoint_dir + "/MANIFEST", manifest.str());
  }

  // The crash window the fault hook targets: the checkpoint is durable
  // but not yet serving.
  if (options_.fault_hook) options_.fault_hook();

  if (options_.service != nullptr) {
    if (!snapshot_path.empty()) {
      options_.service->ReloadSnapshot(ModelSnapshot::CreateFromFile(
          snapshot_path, options_.tile_width, options_.tracker));
    } else {
      TuckerFactorization copy = model_;
      options_.service->ReloadSnapshot(ModelSnapshot::Create(
          std::move(copy), options_.tile_width, options_.tracker));
    }
  }
  ++checkpoints_written_;
  ops_at_last_publish_ = ops_applied_;
  if (metric_checkpoints_ != nullptr) metric_checkpoints_->Increment();
  if (metric_staleness_ != nullptr) metric_staleness_->Set(0);
}

void IngestPipeline::RebuildKeyMap() {
  key_to_entry_.clear();
  key_to_entry_.reserve(static_cast<std::size_t>(tensor_.nnz()) * 2);
  for (std::int64_t e = 0; e < tensor_.nnz(); ++e) {
    key_to_entry_.emplace(Linearize(tensor_.index(e), strides_,
                                    tensor_.order()),
                          e);
  }
}

void IngestPipeline::RebuildEngine() {
  engine_.reset();
  engine_ = MakeDeltaEngine(engine_choice_, tensor_, *core_list_,
                            model_.factors, options_.tracker,
                            options_.adaptive_epsilon, options_.tile_width);
}

void IngestPipeline::SolveTouchedRows(
    const std::vector<std::vector<std::int64_t>>& rows) {
  OmpEnvironmentGuard omp_guard(options_.num_threads, options_.scheduling);
  RowUpdateOptions row_options;
  row_options.lambda = options_.lambda;
  for (int pass = 0; pass < options_.solve_passes; ++pass) {
    for (std::int64_t mode = 0; mode < tensor_.order(); ++mode) {
      const std::vector<std::int64_t>& mode_rows =
          rows[static_cast<std::size_t>(mode)];
      if (mode_rows.empty()) continue;
      Matrix old_factor;
      if (engine_->WantsFactorSnapshot()) {
        old_factor = model_.factors[static_cast<std::size_t>(mode)];
      }
      UpdateFactorRows(tensor_, mode, mode_rows.data(),
                       static_cast<std::int64_t>(mode_rows.size()), *engine_,
                       &model_.factors[static_cast<std::size_t>(mode)],
                       row_options);
      engine_->OnFactorUpdated(mode, old_factor);
    }
  }
}

bool LatestCheckpoint(const std::string& dir, CheckpointInfo* info) {
  std::ifstream in(dir + "/MANIFEST");
  if (!in) return false;
  std::string header;
  if (!std::getline(in, header) || header != "ptucker-checkpoint v1") {
    throw std::runtime_error("checkpoint: bad MANIFEST header in " + dir);
  }
  CheckpointInfo parsed;
  std::string file;
  bool have_seq = false, have_file = false, have_ops = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "seq") {
      have_seq = static_cast<bool>(fields >> parsed.seq);
    } else if (tag == "file") {
      have_file = static_cast<bool>(fields >> file);
    } else if (tag == "ops") {
      have_ops = static_cast<bool>(fields >> parsed.ops_applied);
    } else {
      throw std::runtime_error("checkpoint: unknown MANIFEST field '" + tag +
                               "' in " + dir);
    }
  }
  if (!have_seq || !have_file || !have_ops) {
    throw std::runtime_error("checkpoint: incomplete MANIFEST in " + dir);
  }
  parsed.path = dir + "/" + file;
  if (info != nullptr) *info = std::move(parsed);
  return true;
}

SparseTensor ReplayOmega(const SparseTensor& initial,
                         const std::vector<StreamEvent>& events,
                         std::int64_t count) {
  if (count < 0 || count > static_cast<std::int64_t>(events.size())) {
    throw std::out_of_range("replay: count out of range");
  }
  SparseTensor tensor = initial;
  const std::int64_t order = tensor.order();
  const auto strides = ComputeStrides(tensor.dims());

  std::unordered_map<std::int64_t, std::int64_t> key_to_entry;
  key_to_entry.reserve(static_cast<std::size_t>(tensor.nnz()) * 2);
  for (std::int64_t e = 0; e < tensor.nnz(); ++e) {
    if (!key_to_entry.emplace(Linearize(tensor.index(e), strides, order), e)
             .second) {
      throw std::invalid_argument("replay: tensor has duplicate coordinates");
    }
  }

  std::vector<std::int64_t> delete_ids;
  for (std::int64_t n = 0; n < count; ++n) {
    const StreamEvent& event = events[static_cast<std::size_t>(n)];
    if (static_cast<std::int64_t>(event.index.size()) != order ||
        !IndexInBounds(event.index.data(), tensor.dims())) {
      throw std::invalid_argument("replay: coordinate out of bounds");
    }
    const std::int64_t key = Linearize(event.index.data(), strides, order);
    const auto it = key_to_entry.find(key);
    switch (event.op) {
      case StreamOp::kAppend: {
        if (it != key_to_entry.end()) {
          throw std::invalid_argument(
              "replay: append to an already-observed coordinate");
        }
        const std::int64_t id = tensor.nnz();
        tensor.AddEntry(event.index, event.value);
        key_to_entry.emplace(key, id);
        break;
      }
      case StreamOp::kUpdate:
        if (it == key_to_entry.end()) {
          throw std::invalid_argument(
              "replay: update of an unobserved coordinate");
        }
        tensor.set_value(it->second, event.value);
        break;
      case StreamOp::kDelete:
        if (it == key_to_entry.end()) {
          throw std::invalid_argument(
              "replay: delete of an unobserved coordinate");
        }
        delete_ids.push_back(it->second);
        key_to_entry.erase(it);
        break;
    }
  }
  if (!delete_ids.empty()) {
    std::vector<char> remove(static_cast<std::size_t>(tensor.nnz()), 0);
    for (const std::int64_t id : delete_ids) {
      remove[static_cast<std::size_t>(id)] = 1;
    }
    tensor.RemoveEntries(remove);
  }
  tensor.BuildModeIndex();
  return tensor;
}

}  // namespace ptucker
