#include "stream/event_log.h"

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace ptucker {

namespace {

[[noreturn]] void Malformed(std::size_t line, const std::string& what) {
  throw std::runtime_error("event log line " + std::to_string(line) + ": " +
                           what);
}

char OpChar(StreamOp op) {
  switch (op) {
    case StreamOp::kAppend:
      return 'a';
    case StreamOp::kUpdate:
      return 'u';
    case StreamOp::kDelete:
      return 'd';
  }
  throw std::logic_error("event log: unknown op");
}

}  // namespace

std::string FormatEventLog(const std::vector<StreamEvent>& events,
                           std::int64_t order) {
  if (order < 1) {
    throw std::invalid_argument("event log: order must be >= 1");
  }
  std::ostringstream out;
  out << "ptucker-stream v1 " << order << "\n";
  char value_buf[64];
  for (const StreamEvent& event : events) {
    if (static_cast<std::int64_t>(event.index.size()) != order) {
      throw std::invalid_argument(
          "event log: event coordinate count does not match order");
    }
    out << event.timestamp << ' ' << OpChar(event.op);
    for (const std::int64_t i : event.index) out << ' ' << i + 1;
    if (event.op != StreamOp::kDelete) {
      std::snprintf(value_buf, sizeof(value_buf), "%.*g",
                    std::numeric_limits<double>::max_digits10, event.value);
      out << ' ' << value_buf;
    }
    out << "\n";
  }
  return out.str();
}

std::vector<StreamEvent> ParseEventLog(const std::string& text,
                                       std::int64_t* order) {
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;

  if (!std::getline(in, line)) Malformed(1, "missing header");
  ++line_no;
  std::int64_t log_order = 0;
  {
    std::istringstream header(line);
    std::string magic, version;
    if (!(header >> magic >> version >> log_order) ||
        magic != "ptucker-stream" || version != "v1" || log_order < 1) {
      Malformed(line_no, "bad header (want 'ptucker-stream v1 <order>')");
    }
    std::string extra;
    if (header >> extra) Malformed(line_no, "trailing tokens in header");
  }
  if (order != nullptr) *order = log_order;

  std::vector<StreamEvent> events;
  std::int64_t previous_timestamp = std::numeric_limits<std::int64_t>::min();
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream fields(line);
    StreamEvent event;
    std::string op_token;
    if (!(fields >> event.timestamp >> op_token)) {
      Malformed(line_no, "expected '<timestamp> <op> ...'");
    }
    if (op_token == "a") {
      event.op = StreamOp::kAppend;
    } else if (op_token == "u") {
      event.op = StreamOp::kUpdate;
    } else if (op_token == "d") {
      event.op = StreamOp::kDelete;
    } else {
      Malformed(line_no, "unknown op '" + op_token + "' (want a, u, or d)");
    }
    if (event.timestamp < previous_timestamp) {
      Malformed(line_no, "timestamp decreases");
    }
    previous_timestamp = event.timestamp;
    event.index.resize(static_cast<std::size_t>(log_order));
    for (std::int64_t m = 0; m < log_order; ++m) {
      std::int64_t coord = 0;
      if (!(fields >> coord)) Malformed(line_no, "too few coordinates");
      if (coord < 1) Malformed(line_no, "coordinates are 1-based (got <= 0)");
      event.index[static_cast<std::size_t>(m)] = coord - 1;
    }
    if (event.op != StreamOp::kDelete) {
      if (!(fields >> event.value)) Malformed(line_no, "missing value");
    }
    std::string extra;
    if (fields >> extra) Malformed(line_no, "trailing tokens");
    events.push_back(std::move(event));
  }
  return events;
}

void WriteEventLog(const std::string& path,
                   const std::vector<StreamEvent>& events,
                   std::int64_t order) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("event log: cannot write " + path);
  out << FormatEventLog(events, order);
  out.flush();
  if (!out) throw std::runtime_error("event log: write failed for " + path);
}

std::vector<StreamEvent> ReadEventLog(const std::string& path,
                                      std::int64_t* order) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("event log: cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseEventLog(buffer.str(), order);
}

}  // namespace ptucker
