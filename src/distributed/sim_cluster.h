#ifndef PTUCKER_DISTRIBUTED_SIM_CLUSTER_H_
#define PTUCKER_DISTRIBUTED_SIM_CLUSTER_H_

#include <cstdint>
#include <vector>

#include "core/options.h"
#include "core/ptucker.h"
#include "distributed/partition.h"
#include "tensor/sparse_tensor.h"

namespace ptucker {

/// Simulation of the paper's future-work direction: "extending P-TUCKER
/// to distributed platforms such as Hadoop or Spark".
///
/// The row-wise update rule makes distribution natural: rows of A(n) are
/// independent, so each worker owns a row block per mode (CDTF-style,
/// Shin et al. [24]) and, after updating its rows, allgathers them to the
/// other workers. This module *simulates* that execution on one machine:
/// workers run sequentially over their partitions (producing **bitwise
/// the same factors** as the shared-memory solver — a tested invariant),
/// while a cost model tracks what a real cluster would pay:
///
///  * compute: per-worker Σ RowUpdateCost, makespan = max over workers;
///  * communication: each mode update allgathers In·Jn doubles, i.e.
///    every other worker receives the refreshed rows (ring-allgather
///    volume (W−1)/W · In·Jn·8 bytes per worker, W·that in total).
struct DistributedStats {
  std::int64_t workers = 1;
  int iterations_run = 0;
  /// Σ over modes and iterations of the allgather payload (bytes moved
  /// across the network in total, ring model).
  std::int64_t total_comm_bytes = 0;
  /// Compute makespan per iteration in cost units (max worker load);
  /// sums RowUpdateCost over the worker's rows across all modes.
  std::vector<std::int64_t> makespan_per_iteration;
  /// Total compute cost units per iteration (= serial work).
  std::vector<std::int64_t> total_cost_per_iteration;

  /// Parallel efficiency of iteration `i`: serial / (W · makespan).
  double Efficiency(std::size_t i) const {
    return static_cast<double>(total_cost_per_iteration[i]) /
           (static_cast<double>(workers) *
            static_cast<double>(makespan_per_iteration[i]));
  }
};

enum class PartitionStrategy {
  kBlock,   // contiguous row blocks (naive)
  kGreedy,  // workload-aware LPT (the paper's careful distribution)
};

struct DistributedPTuckerResult {
  PTuckerResult result;
  DistributedStats stats;
};

/// Runs P-Tucker under the simulated cluster. Supports the kMemory
/// variant (the cache table is node-local in a real deployment and the
/// approx variant changes |G| mid-flight, which would need re-planning);
/// throws std::invalid_argument otherwise.
DistributedPTuckerResult SimulateDistributedPTucker(
    const SparseTensor& x, const PTuckerOptions& options,
    std::int64_t workers, PartitionStrategy strategy);

}  // namespace ptucker

#endif  // PTUCKER_DISTRIBUTED_SIM_CLUSTER_H_
