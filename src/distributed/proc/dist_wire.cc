#include "distributed/proc/dist_wire.h"

namespace ptucker {

namespace {

bool KnownDistOpcode(std::uint8_t value) {
  return value >= static_cast<std::uint8_t>(DistOpcode::kHello) &&
         value <= static_cast<std::uint8_t>(DistOpcode::kAbort);
}

}  // namespace

const FrameProtocol& DistProtocol() {
  static const FrameProtocol protocol = {
      {kDistMagic[0], kDistMagic[1], kDistMagic[2], kDistMagic[3]},
      "PTKD",
      kMaxDistPayload,
      &KnownDistOpcode};
  return protocol;
}

std::vector<std::uint8_t> EncodeDistFrame(
    DistOpcode opcode, std::uint64_t tag,
    const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  EncodeFrameHeader(DistProtocol(), static_cast<std::uint8_t>(opcode),
                    /*status=*/0, tag, payload.data(), payload.size(), &out);
  return out;
}

DecodeResult DecodeDistFrame(const std::uint8_t* data, std::size_t size,
                             DistFrame* frame, std::size_t* consumed,
                             std::string* error) {
  RawFrame raw;
  const DecodeResult result =
      DecodeFrameHeader(DistProtocol(), data, size, &raw, consumed, error);
  if (result == DecodeResult::kFrame) {
    frame->opcode = static_cast<DistOpcode>(raw.opcode);
    frame->tag = raw.request_id;
    frame->payload = std::move(raw.payload);
  }
  return result;
}

std::vector<std::uint8_t> EncodeHello(std::int64_t rank, std::int64_t workers,
                                      std::uint32_t version) {
  std::vector<std::uint8_t> payload;
  AppendU32(&payload, static_cast<std::uint32_t>(rank));
  AppendU32(&payload, static_cast<std::uint32_t>(workers));
  AppendU32(&payload, version);
  return payload;
}

bool ParseHello(const std::vector<std::uint8_t>& payload, std::int64_t* rank,
                std::int64_t* workers, std::uint32_t* version,
                std::string* error) {
  if (payload.size() != 12) {
    *error = "hello payload is " + std::to_string(payload.size()) +
             " bytes, want 12";
    return false;
  }
  *rank = ReadU32(payload.data());
  *workers = ReadU32(payload.data() + 4);
  *version = ReadU32(payload.data() + 8);
  return true;
}

std::vector<std::uint8_t> EncodeSolveMode(std::int64_t mode) {
  std::vector<std::uint8_t> payload;
  AppendU32(&payload, static_cast<std::uint32_t>(mode));
  return payload;
}

bool ParseSolveMode(const std::vector<std::uint8_t>& payload,
                    std::int64_t* mode, std::string* error) {
  if (payload.size() != 4) {
    *error = "solve-mode payload is " + std::to_string(payload.size()) +
             " bytes, want 4";
    return false;
  }
  *mode = ReadU32(payload.data());
  return true;
}

std::vector<std::uint8_t> EncodeRowBlock(std::int64_t mode,
                                         const Matrix& factor,
                                         std::int64_t row_begin,
                                         std::int64_t row_count) {
  std::vector<std::uint8_t> payload;
  const std::int64_t cols = factor.cols();
  payload.reserve(28 + static_cast<std::size_t>(row_count * cols) * 8);
  AppendU32(&payload, static_cast<std::uint32_t>(mode));
  AppendI64(&payload, row_begin);
  AppendI64(&payload, row_count);
  AppendU32(&payload, static_cast<std::uint32_t>(cols));
  if (row_count > 0) {
    const double* data = factor.Row(row_begin);
    for (std::int64_t i = 0; i < row_count * cols; ++i) {
      AppendF64(&payload, data[i]);
    }
  }
  return payload;
}

bool ParseRowBlock(const std::vector<std::uint8_t>& payload,
                   DistRowBlock* block, std::string* error) {
  if (payload.size() < 24) {
    *error = "row-block payload too short for its header fields";
    return false;
  }
  block->mode = ReadU32(payload.data());
  block->row_begin = ReadI64(payload.data() + 4);
  block->row_count = ReadI64(payload.data() + 12);
  block->cols = ReadU32(payload.data() + 20);
  if (block->row_begin < 0 || block->row_count < 0 || block->cols < 1) {
    *error = "row-block range [" + std::to_string(block->row_begin) + ", +" +
             std::to_string(block->row_count) + ") x " +
             std::to_string(block->cols) + " is invalid";
    return false;
  }
  const std::size_t want =
      24 + static_cast<std::size_t>(block->row_count) *
               static_cast<std::size_t>(block->cols) * 8;
  if (payload.size() != want) {
    *error = "row-block payload is " + std::to_string(payload.size()) +
             " bytes, want " + std::to_string(want) + " for " +
             std::to_string(block->row_count) + "x" +
             std::to_string(block->cols) + " rows";
    return false;
  }
  block->values.resize(
      static_cast<std::size_t>(block->row_count * block->cols));
  for (std::size_t i = 0; i < block->values.size(); ++i) {
    block->values[i] = ReadF64(payload.data() + 24 + i * 8);
  }
  return true;
}

std::vector<std::uint8_t> EncodeDoubleVector(
    const std::vector<double>& values) {
  std::vector<std::uint8_t> payload;
  payload.reserve(4 + values.size() * 8);
  AppendU32(&payload, static_cast<std::uint32_t>(values.size()));
  for (const double v : values) AppendF64(&payload, v);
  return payload;
}

bool ParseDoubleVector(const std::vector<std::uint8_t>& payload,
                       std::vector<double>* values, std::string* error) {
  if (payload.size() < 4) {
    *error = "vector payload too short for its length field";
    return false;
  }
  const std::uint32_t count = ReadU32(payload.data());
  if (payload.size() != 4 + static_cast<std::size_t>(count) * 8) {
    *error = "vector payload is " + std::to_string(payload.size()) +
             " bytes, want " + std::to_string(4 + count * 8u) +
             " for length " + std::to_string(count);
    return false;
  }
  values->resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    (*values)[i] = ReadF64(payload.data() + 4 + i * 8);
  }
  return true;
}

std::vector<std::uint8_t> EncodeLaneBlock(std::int64_t first_lane,
                                          std::int64_t lane_count,
                                          std::int64_t width,
                                          const double* values) {
  std::vector<std::uint8_t> payload;
  payload.reserve(12 + static_cast<std::size_t>(lane_count * width) * 8);
  AppendU32(&payload, static_cast<std::uint32_t>(first_lane));
  AppendU32(&payload, static_cast<std::uint32_t>(lane_count));
  AppendU32(&payload, static_cast<std::uint32_t>(width));
  for (std::int64_t i = 0; i < lane_count * width; ++i) {
    AppendF64(&payload, values[i]);
  }
  return payload;
}

bool ParseLaneBlock(const std::vector<std::uint8_t>& payload,
                    DistLaneBlock* block, std::string* error) {
  if (payload.size() < 12) {
    *error = "lane-block payload too short for its header fields";
    return false;
  }
  block->first_lane = ReadU32(payload.data());
  block->lane_count = ReadU32(payload.data() + 4);
  block->width = ReadU32(payload.data() + 8);
  if (block->first_lane >= kReductionLanes ||
      block->first_lane + block->lane_count > kReductionLanes ||
      block->width < 1) {
    *error = "lane-block range [" + std::to_string(block->first_lane) + ", +" +
             std::to_string(block->lane_count) + ") x " +
             std::to_string(block->width) + " exceeds the " +
             std::to_string(kReductionLanes) + "-lane partition";
    return false;
  }
  const std::size_t want =
      12 + static_cast<std::size_t>(block->lane_count) *
               static_cast<std::size_t>(block->width) * 8;
  if (payload.size() != want) {
    *error = "lane-block payload is " + std::to_string(payload.size()) +
             " bytes, want " + std::to_string(want);
    return false;
  }
  block->values.resize(
      static_cast<std::size_t>(block->lane_count * block->width));
  for (std::size_t i = 0; i < block->values.size(); ++i) {
    block->values[i] = ReadF64(payload.data() + 12 + i * 8);
  }
  return true;
}

}  // namespace ptucker
