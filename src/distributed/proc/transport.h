/// \file
/// \brief Cluster transports for the multi-process solver: the one
/// ClusterTransport interface behind which the simulated cluster
/// (worker threads in this process) and the real transports (forked
/// worker processes over socketpairs or loopback TCP) all run, so tests
/// drive every path through identical code. A transport launches N
/// workers running the caller's WorkerMain against per-rank duplex
/// FrameChannels speaking the PTKD family (dist_wire.h), consumes each
/// worker's HELLO to bind channels to ranks, and owns failure handling:
/// a dead peer, a corrupt frame, or a receive timeout raises DistError
/// with a specific message, and Abort() force-terminates and reaps every
/// worker (SIGKILL + waitpid for processes, queue close + join for
/// threads) so no call path can leak a zombie or hang.
#ifndef PTUCKER_DISTRIBUTED_PROC_TRANSPORT_H_
#define PTUCKER_DISTRIBUTED_PROC_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "distributed/proc/dist_wire.h"

namespace ptucker {

/// Fatal distributed-protocol failure: a peer died, sent bytes that are
/// not a valid PTKD frame, violated the lock-step protocol, or timed
/// out. The message names the peer and the first bad byte/field; the
/// cluster cannot continue past it (the coordinator aborts and reaps).
class DistError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One blocking duplex PTKD frame channel between the coordinator and a
/// worker. Send/Recv throw DistError on any failure — EOF (peer died),
/// malformed bytes (convicted at the first bad byte via the shared frame
/// codec), or a receive timeout — after which the channel is unusable.
class FrameChannel {
 public:
  virtual ~FrameChannel() = default;

  /// Sends one frame; throws DistError when the peer is gone.
  void SendFrame(DistOpcode opcode, std::uint64_t tag,
                 const std::vector<std::uint8_t>& payload);

  /// Sends raw bytes with no framing — fault-injection hook used by
  /// tests to put garbage on the wire exactly where a frame belongs.
  void SendRaw(const std::uint8_t* data, std::size_t size);

  /// Blocks until one full frame arrives (up to the channel timeout).
  /// Throws DistError naming the violation: connection closed, closed
  /// mid-frame, malformed bytes, or timeout.
  DistFrame RecvFrame();

  /// Half-closes the sending side so the peer's next RecvFrame sees a
  /// clean EOF (used by workers on exit and by death fault injection).
  virtual void CloseSend() = 0;

  /// Bytes pushed onto / pulled off the wire so far (comm accounting).
  std::int64_t bytes_sent() const { return bytes_sent_; }
  /// \copydoc bytes_sent
  std::int64_t bytes_received() const { return bytes_received_; }

 protected:
  /// Writes all of `data` or throws DistError.
  virtual void RawSendAll(const std::uint8_t* data, std::size_t size) = 0;
  /// Reads 1..size bytes; returns 0 on EOF; throws DistError on error or
  /// after `timeout_ms` without data.
  virtual std::size_t RawRecvSome(std::uint8_t* data, std::size_t size) = 0;

  std::int64_t bytes_sent_ = 0;      ///< running SendFrame/SendRaw total
  std::int64_t bytes_received_ = 0;  ///< running RecvFrame byte total

 private:
  std::vector<std::uint8_t> recv_buffer_;
  std::size_t recv_offset_ = 0;
};

/// The worker body a transport launches once per rank, against the
/// worker-side end of that rank's channel. For process transports it
/// runs in the forked child; for the in-process transport, on a thread.
using WorkerMain =
    std::function<void(std::int64_t rank, FrameChannel& channel)>;

/// Which transport carries the PTKD protocol.
enum class DistTransport {
  /// Worker threads inside this process over in-memory byte queues — the
  /// simulated cluster. Identical protocol, no fork, no sockets; what
  /// the bit-exactness property tests sweep.
  kInProcess,
  /// Forked worker processes over AF_UNIX socketpairs (the default).
  kSocketpair,
  /// Forked worker processes over loopback TCP sockets — the same wire
  /// a real multi-host deployment would use.
  kTcp,
};

/// A running cluster of N workers behind rank-indexed channels. The
/// destructor aborts (and always reaps) any workers still running.
class ClusterTransport {
 public:
  virtual ~ClusterTransport() = default;

  /// Number of workers launched.
  virtual std::int64_t workers() const = 0;

  /// Coordinator-side channel to worker `rank`.
  virtual FrameChannel& Channel(std::int64_t rank) = 0;

  /// Graceful teardown after the protocol's SHUTDOWN/BYE exchange:
  /// closes channels and waits for workers to exit; escalates to Abort()
  /// for any worker that fails to exit in time.
  virtual void Shutdown() = 0;

  /// Hard teardown: SIGKILLs worker processes (or closes queues under
  /// worker threads), then reaps every worker (waitpid/join). Never
  /// throws and never leaves a zombie; safe to call more than once.
  virtual void Abort() = 0;

  /// Total bytes moved over every channel, both directions.
  std::int64_t TotalCommBytes();
};

/// Launches `workers` workers running `worker_main` over `transport` and
/// consumes each worker's HELLO (validating rank, cluster size, and
/// protocol version) so the returned transport's channels are bound to
/// ranks and ready for the solve protocol. `recv_timeout_ms` bounds
/// every blocking receive. Throws DistError when a worker fails to come
/// up; workers are reaped before the throw.
std::unique_ptr<ClusterTransport> LaunchCluster(DistTransport transport,
                                                std::int64_t workers,
                                                const WorkerMain& worker_main,
                                                int recv_timeout_ms);

}  // namespace ptucker

#endif  // PTUCKER_DISTRIBUTED_PROC_TRANSPORT_H_
