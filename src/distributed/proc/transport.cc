#include "distributed/proc/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>

namespace ptucker {

namespace {

std::string ErrnoText(int err) { return std::string(std::strerror(err)); }

}  // namespace

// ---------------------------------------------------------------------------
// FrameChannel: framing over the raw byte primitives
// ---------------------------------------------------------------------------

void FrameChannel::SendFrame(DistOpcode opcode, std::uint64_t tag,
                             const std::vector<std::uint8_t>& payload) {
  const std::vector<std::uint8_t> frame =
      EncodeDistFrame(opcode, tag, payload);
  RawSendAll(frame.data(), frame.size());
  bytes_sent_ += static_cast<std::int64_t>(frame.size());
}

void FrameChannel::SendRaw(const std::uint8_t* data, std::size_t size) {
  RawSendAll(data, size);
  bytes_sent_ += static_cast<std::int64_t>(size);
}

DistFrame FrameChannel::RecvFrame() {
  for (;;) {
    if (recv_offset_ < recv_buffer_.size()) {
      DistFrame frame;
      std::size_t consumed = 0;
      std::string error;
      const DecodeResult result = DecodeDistFrame(
          recv_buffer_.data() + recv_offset_,
          recv_buffer_.size() - recv_offset_, &frame, &consumed, &error);
      if (result == DecodeResult::kError) {
        throw DistError("malformed DIST frame: " + error);
      }
      if (result == DecodeResult::kFrame) {
        recv_offset_ += consumed;
        if (recv_offset_ == recv_buffer_.size()) {
          recv_buffer_.clear();
          recv_offset_ = 0;
        }
        return frame;
      }
    }
    std::uint8_t chunk[65536];
    const std::size_t n = RawRecvSome(chunk, sizeof(chunk));
    if (n == 0) {
      if (recv_offset_ < recv_buffer_.size()) {
        throw DistError(
            "connection closed mid-frame (peer died with " +
            std::to_string(recv_buffer_.size() - recv_offset_) +
            " bytes of an incomplete DIST frame in flight)");
      }
      throw DistError("connection closed (peer exited or was killed)");
    }
    recv_buffer_.insert(recv_buffer_.end(), chunk, chunk + n);
    bytes_received_ += static_cast<std::int64_t>(n);
  }
}

// ---------------------------------------------------------------------------
// FdChannel: socketpair / TCP file descriptors (both are stream sockets)
// ---------------------------------------------------------------------------

namespace {

class FdChannel : public FrameChannel {
 public:
  FdChannel(int fd, int timeout_ms) : fd_(fd), timeout_ms_(timeout_ms) {}

  ~FdChannel() override { Close(); }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  void CloseSend() override {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
  }

 protected:
  void RawSendAll(const std::uint8_t* data, std::size_t size) override {
    std::size_t sent = 0;
    while (sent < size) {
      // MSG_NOSIGNAL: a dead peer surfaces as EPIPE, not a SIGPIPE kill.
      const ssize_t n =
          ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw DistError("send failed: " + ErrnoText(errno) +
                        " (peer closed the connection?)");
      }
      sent += static_cast<std::size_t>(n);
    }
  }

  std::size_t RawRecvSome(std::uint8_t* data, std::size_t size) override {
    for (;;) {
      struct pollfd pfd;
      pfd.fd = fd_;
      pfd.events = POLLIN;
      pfd.revents = 0;
      const int ready = ::poll(&pfd, 1, timeout_ms_);
      if (ready < 0) {
        if (errno == EINTR) continue;
        throw DistError("poll failed: " + ErrnoText(errno));
      }
      if (ready == 0) {
        throw DistError("receive timed out after " +
                        std::to_string(timeout_ms_) +
                        " ms (peer hung or deadlocked)");
      }
      const ssize_t n = ::recv(fd_, data, size, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == ECONNRESET) return 0;  // abrupt peer death == EOF
        throw DistError("recv failed: " + ErrnoText(errno));
      }
      return static_cast<std::size_t>(n);
    }
  }

 private:
  int fd_;
  int timeout_ms_;
};

// ---------------------------------------------------------------------------
// InProcChannel: in-memory duplex byte queues (the simulated cluster)
// ---------------------------------------------------------------------------

struct ByteQueue {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::uint8_t> data;
  std::size_t offset = 0;
  bool closed = false;

  void Close() {
    std::lock_guard<std::mutex> lock(mutex);
    closed = true;
    cv.notify_all();
  }
};

class InProcChannel : public FrameChannel {
 public:
  InProcChannel(std::shared_ptr<ByteQueue> send_queue,
                std::shared_ptr<ByteQueue> recv_queue, int timeout_ms)
      : send_queue_(std::move(send_queue)),
        recv_queue_(std::move(recv_queue)),
        timeout_ms_(timeout_ms) {}

  void CloseSend() override { send_queue_->Close(); }

 protected:
  void RawSendAll(const std::uint8_t* data, std::size_t size) override {
    std::lock_guard<std::mutex> lock(send_queue_->mutex);
    if (send_queue_->closed) {
      throw DistError("send failed: peer queue closed (worker gone?)");
    }
    send_queue_->data.insert(send_queue_->data.end(), data, data + size);
    send_queue_->cv.notify_all();
  }

  std::size_t RawRecvSome(std::uint8_t* data, std::size_t size) override {
    std::unique_lock<std::mutex> lock(recv_queue_->mutex);
    const bool got = recv_queue_->cv.wait_for(
        lock, std::chrono::milliseconds(timeout_ms_), [this] {
          return recv_queue_->offset < recv_queue_->data.size() ||
                 recv_queue_->closed;
        });
    if (!got) {
      throw DistError("receive timed out after " +
                      std::to_string(timeout_ms_) +
                      " ms (peer hung or deadlocked)");
    }
    const std::size_t available =
        recv_queue_->data.size() - recv_queue_->offset;
    if (available == 0) return 0;  // closed and drained: EOF
    const std::size_t n = available < size ? available : size;
    std::memcpy(data, recv_queue_->data.data() + recv_queue_->offset, n);
    recv_queue_->offset += n;
    if (recv_queue_->offset == recv_queue_->data.size()) {
      recv_queue_->data.clear();
      recv_queue_->offset = 0;
    }
    return n;
  }

 private:
  std::shared_ptr<ByteQueue> send_queue_;
  std::shared_ptr<ByteQueue> recv_queue_;
  int timeout_ms_;
};

// ---------------------------------------------------------------------------
// Worker-side wrapper shared by every transport
// ---------------------------------------------------------------------------

// Runs HELLO + the worker body; returns the worker's exit status. Never
// throws: the coordinator owns failure reporting, the worker just goes
// away (its EOF is the signal).
int RunWorkerBody(const WorkerMain& worker_main, std::int64_t rank,
                  std::int64_t workers, FrameChannel& channel) {
  try {
    channel.SendFrame(DistOpcode::kHello, 0,
                      EncodeHello(rank, workers, kDistProtocolVersion));
    worker_main(rank, channel);
    channel.CloseSend();
    return 0;
  } catch (const DistError&) {
    // Coordinator died or aborted mid-protocol; exit quietly.
    channel.CloseSend();
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ptucker dist worker %lld failed: %s\n",
                 static_cast<long long>(rank), e.what());
    channel.CloseSend();
    return 4;
  }
}

// ---------------------------------------------------------------------------
// Fork-based transports (socketpair and loopback TCP)
// ---------------------------------------------------------------------------

class ForkTransport : public ClusterTransport {
 public:
  ForkTransport(DistTransport kind, std::int64_t workers,
                const WorkerMain& worker_main, int timeout_ms)
      : timeout_ms_(timeout_ms) {
    pids_.resize(static_cast<std::size_t>(workers), -1);
    channels_.resize(static_cast<std::size_t>(workers));
    try {
      if (kind == DistTransport::kTcp) {
        LaunchTcp(workers, worker_main);
      } else {
        LaunchSocketpair(workers, worker_main);
      }
      BindHellos(workers, kind == DistTransport::kTcp);
    } catch (...) {
      Abort();
      throw;
    }
  }

  ~ForkTransport() override { Abort(); }

  std::int64_t workers() const override {
    return static_cast<std::int64_t>(pids_.size());
  }

  FrameChannel& Channel(std::int64_t rank) override {
    return *channels_[static_cast<std::size_t>(rank)];
  }

  void Shutdown() override {
    // The protocol's BYE already ran; workers are exiting on their own.
    for (auto& channel : channels_) {
      if (channel) channel->CloseSend();
    }
    for (std::size_t r = 0; r < pids_.size(); ++r) {
      if (pids_[r] < 0) continue;
      if (!WaitPid(pids_[r], /*grace_ms=*/5000)) {
        ::kill(pids_[r], SIGKILL);
        WaitPid(pids_[r], /*grace_ms=*/-1);
      }
      pids_[r] = -1;
    }
    channels_.clear();
    channels_.resize(pids_.size());
  }

  void Abort() override {
    for (std::size_t r = 0; r < pids_.size(); ++r) {
      if (pids_[r] < 0) continue;
      ::kill(pids_[r], SIGKILL);
      WaitPid(pids_[r], /*grace_ms=*/-1);
      pids_[r] = -1;
    }
    for (auto& channel : channels_) channel.reset();
  }

 private:
  // Waits for `pid`; grace_ms < 0 blocks until it is reaped. Returns
  // true when the child was reaped.
  static bool WaitPid(pid_t pid, int grace_ms) {
    if (grace_ms < 0) {
      int status = 0;
      while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
      }
      return true;
    }
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(grace_ms);
    for (;;) {
      int status = 0;
      const pid_t got = ::waitpid(pid, &status, WNOHANG);
      if (got == pid || (got < 0 && errno == ECHILD)) return true;
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  [[noreturn]] static void ChildMain(const WorkerMain& worker_main,
                                     std::int64_t rank, std::int64_t workers,
                                     int fd, int timeout_ms) {
    // Die with the coordinator: a crashed test binary must not leave
    // orphan solver processes behind.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    int status = 0;
    {
      FdChannel channel(fd, timeout_ms);
      status = RunWorkerBody(worker_main, rank, workers, channel);
    }
    // _exit, not exit: the child must not run the parent's atexit
    // handlers (gtest, OpenMP, stdio) it inherited mid-flight.
    ::_exit(status);
  }

  void LaunchSocketpair(std::int64_t workers, const WorkerMain& worker_main) {
    struct Pair {
      int parent_fd;
      int child_fd;
    };
    std::vector<Pair> pairs;
    pairs.reserve(static_cast<std::size_t>(workers));
    for (std::int64_t r = 0; r < workers; ++r) {
      int fds[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
        throw DistError("socketpair failed: " + ErrnoText(errno));
      }
      pairs.push_back({fds[0], fds[1]});
    }
    for (std::int64_t r = 0; r < workers; ++r) {
      const pid_t pid = ::fork();
      if (pid < 0) {
        for (const Pair& p : pairs) {
          ::close(p.parent_fd);
          ::close(p.child_fd);
        }
        throw DistError("fork failed: " + ErrnoText(errno));
      }
      if (pid == 0) {
        // Child: keep only this rank's fd.
        for (std::int64_t o = 0; o < workers; ++o) {
          ::close(pairs[static_cast<std::size_t>(o)].parent_fd);
          if (o != r) ::close(pairs[static_cast<std::size_t>(o)].child_fd);
        }
        ChildMain(worker_main, r, workers,
                  pairs[static_cast<std::size_t>(r)].child_fd, timeout_ms_);
      }
      pids_[static_cast<std::size_t>(r)] = pid;
    }
    for (std::int64_t r = 0; r < workers; ++r) {
      const Pair& p = pairs[static_cast<std::size_t>(r)];
      ::close(p.child_fd);
      channels_[static_cast<std::size_t>(r)] =
          std::make_unique<FdChannel>(p.parent_fd, timeout_ms_);
    }
  }

  void LaunchTcp(std::int64_t workers, const WorkerMain& worker_main) {
    const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listener < 0) {
      throw DistError("socket failed: " + ErrnoText(errno));
    }
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(listener, static_cast<int>(workers)) != 0) {
      const int err = errno;
      ::close(listener);
      throw DistError("bind/listen failed: " + ErrnoText(err));
    }
    socklen_t addr_len = sizeof(addr);
    if (::getsockname(listener, reinterpret_cast<sockaddr*>(&addr),
                      &addr_len) != 0) {
      const int err = errno;
      ::close(listener);
      throw DistError("getsockname failed: " + ErrnoText(err));
    }

    for (std::int64_t r = 0; r < workers; ++r) {
      const pid_t pid = ::fork();
      if (pid < 0) {
        const int err = errno;
        ::close(listener);
        throw DistError("fork failed: " + ErrnoText(err));
      }
      if (pid == 0) {
        ::close(listener);
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0 || ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                                sizeof(addr)) != 0) {
          ::_exit(5);
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        ChildMain(worker_main, r, workers, fd, timeout_ms_);
      }
      pids_[static_cast<std::size_t>(r)] = pid;
    }

    // Accept one connection per worker; HELLO binds them to ranks later.
    std::vector<std::unique_ptr<FdChannel>> accepted;
    for (std::int64_t r = 0; r < workers; ++r) {
      struct pollfd pfd;
      pfd.fd = listener;
      pfd.events = POLLIN;
      pfd.revents = 0;
      const int ready = ::poll(&pfd, 1, timeout_ms_);
      if (ready <= 0) {
        ::close(listener);
        throw DistError("worker TCP connect timed out");
      }
      const int fd = ::accept(listener, nullptr, nullptr);
      if (fd < 0) {
        const int err = errno;
        ::close(listener);
        throw DistError("accept failed: " + ErrnoText(err));
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      accepted.push_back(std::make_unique<FdChannel>(fd, timeout_ms_));
    }
    ::close(listener);
    unbound_ = std::move(accepted);
  }

  // Consumes each worker's HELLO. Socketpair channels are already in
  // rank order; TCP channels arrive in connect order and are bound to
  // their rank here.
  void BindHellos(std::int64_t workers, bool tcp) {
    auto check_hello = [&](FrameChannel& channel, std::int64_t expected_rank,
                           std::int64_t* rank_out) {
      const DistFrame frame = channel.RecvFrame();
      if (frame.opcode != DistOpcode::kHello) {
        throw DistError("expected HELLO, got opcode " +
                        std::to_string(static_cast<unsigned>(frame.opcode)));
      }
      std::int64_t rank = 0, size = 0;
      std::uint32_t version = 0;
      std::string error;
      if (!ParseHello(frame.payload, &rank, &size, &version, &error)) {
        throw DistError("bad HELLO: " + error);
      }
      if (version != kDistProtocolVersion) {
        throw DistError("worker speaks PTKD v" + std::to_string(version) +
                        ", coordinator speaks v" +
                        std::to_string(kDistProtocolVersion));
      }
      if (size != workers || rank < 0 || rank >= workers ||
          (expected_rank >= 0 && rank != expected_rank)) {
        throw DistError("HELLO rank " + std::to_string(rank) + "/" +
                        std::to_string(size) +
                        " does not match the launched cluster");
      }
      *rank_out = rank;
    };

    if (!tcp) {
      for (std::int64_t r = 0; r < workers; ++r) {
        std::int64_t rank = 0;
        check_hello(*channels_[static_cast<std::size_t>(r)], r, &rank);
      }
      return;
    }
    for (auto& channel : unbound_) {
      std::int64_t rank = 0;
      check_hello(*channel, -1, &rank);
      if (channels_[static_cast<std::size_t>(rank)]) {
        throw DistError("two workers claimed rank " + std::to_string(rank));
      }
      channels_[static_cast<std::size_t>(rank)] = std::move(channel);
    }
    unbound_.clear();
  }

  int timeout_ms_;
  std::vector<pid_t> pids_;
  std::vector<std::unique_ptr<FdChannel>> channels_;
  std::vector<std::unique_ptr<FdChannel>> unbound_;  // TCP pre-HELLO
};

// ---------------------------------------------------------------------------
// In-process transport (worker threads; the simulated cluster)
// ---------------------------------------------------------------------------

class InProcessTransport : public ClusterTransport {
 public:
  InProcessTransport(std::int64_t workers, const WorkerMain& worker_main,
                     int timeout_ms) {
    channels_.reserve(static_cast<std::size_t>(workers));
    worker_channels_.reserve(static_cast<std::size_t>(workers));
    for (std::int64_t r = 0; r < workers; ++r) {
      auto to_worker = std::make_shared<ByteQueue>();
      auto to_coordinator = std::make_shared<ByteQueue>();
      queues_.push_back(to_worker);
      queues_.push_back(to_coordinator);
      channels_.push_back(std::make_unique<InProcChannel>(
          to_worker, to_coordinator, timeout_ms));
      worker_channels_.push_back(std::make_unique<InProcChannel>(
          to_coordinator, to_worker, timeout_ms));
    }
    for (std::int64_t r = 0; r < workers; ++r) {
      FrameChannel* channel =
          worker_channels_[static_cast<std::size_t>(r)].get();
      threads_.emplace_back([worker_main, r, workers, channel] {
        RunWorkerBody(worker_main, r, workers, *channel);
      });
    }
    try {
      BindHellos();
    } catch (...) {
      Abort();
      throw;
    }
  }

  ~InProcessTransport() override { Abort(); }

  std::int64_t workers() const override {
    return static_cast<std::int64_t>(channels_.size());
  }

  FrameChannel& Channel(std::int64_t rank) override {
    return *channels_[static_cast<std::size_t>(rank)];
  }

  void Shutdown() override { Abort(); }

  void Abort() override {
    for (auto& queue : queues_) queue->Close();
    for (auto& thread : threads_) {
      if (thread.joinable()) thread.join();
    }
    threads_.clear();
  }

 private:
  void BindHellos() {
    for (auto& channel : channels_) {
      const DistFrame frame = channel->RecvFrame();
      std::int64_t rank = 0, size = 0;
      std::uint32_t version = 0;
      std::string error;
      if (frame.opcode != DistOpcode::kHello ||
          !ParseHello(frame.payload, &rank, &size, &version, &error) ||
          version != kDistProtocolVersion) {
        throw DistError("bad in-process HELLO" +
                        (error.empty() ? std::string() : ": " + error));
      }
    }
  }

  std::vector<std::shared_ptr<ByteQueue>> queues_;
  std::vector<std::unique_ptr<InProcChannel>> channels_;
  std::vector<std::unique_ptr<InProcChannel>> worker_channels_;
  std::vector<std::thread> threads_;
};

}  // namespace

std::int64_t ClusterTransport::TotalCommBytes() {
  std::int64_t total = 0;
  for (std::int64_t r = 0; r < workers(); ++r) {
    total += Channel(r).bytes_sent() + Channel(r).bytes_received();
  }
  return total;
}

std::unique_ptr<ClusterTransport> LaunchCluster(DistTransport transport,
                                                std::int64_t workers,
                                                const WorkerMain& worker_main,
                                                int recv_timeout_ms) {
  if (workers < 1) {
    throw DistError("distributed: workers must be >= 1");
  }
  if (transport == DistTransport::kInProcess) {
    return std::make_unique<InProcessTransport>(workers, worker_main,
                                                recv_timeout_ms);
  }
  return std::make_unique<ForkTransport>(transport, workers, worker_main,
                                         recv_timeout_ms);
}

}  // namespace ptucker
