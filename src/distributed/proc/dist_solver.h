/// \file
/// \brief The multi-process P-Tucker solver: a coordinator launches N
/// workers (forked processes over socketpairs or loopback TCP, or worker
/// threads for the simulated cluster), each owning a contiguous block of
/// factor rows per mode (PartitionRowsBlock) and a contiguous subrange
/// of the fixed reduction lanes. Workers solve their rows through the
/// shared core/row_update.h kernel and ship raw per-lane reduction
/// partials (never locally pre-folded sums); the coordinator merges rows
/// and folds lanes in fixed rank/lane order, so the N-process trajectory
/// — every factor row, core value, and per-iteration error — is
/// bit-identical to the single-process PTuckerDecompose for every
/// δ-engine and every N (a tested invariant). Any protocol failure (a
/// dead worker, a corrupt or truncated frame, a timeout) aborts the
/// cluster loudly: DistError names the worker and the violation, and
/// every worker is reaped before the throw.
#ifndef PTUCKER_DISTRIBUTED_PROC_DIST_SOLVER_H_
#define PTUCKER_DISTRIBUTED_PROC_DIST_SOLVER_H_

#include <cstdint>

#include "core/options.h"
#include "distributed/proc/transport.h"
#include "distributed/sim_cluster.h"
#include "tensor/sparse_tensor.h"

namespace ptucker {

/// Deterministic fault injection for the distributed solver's failure
/// tests: makes one worker misbehave at an exact (iteration, mode) point
/// of the protocol so tests can assert the coordinator's loud, specific
/// error and the clean teardown that follows.
struct DistFaultInjection {
  /// What the faulty worker does when its trigger point is reached.
  enum class Kind {
    kNone,            ///< no fault (the default)
    kKillWorker,      ///< worker dies silently instead of solving
    kCorruptFrame,    ///< worker sends a frame with a corrupted magic byte
    kTruncatedFrame,  ///< worker sends half a frame, then closes the pipe
  };
  Kind kind = Kind::kNone;  ///< what to inject
  std::int64_t rank = 0;    ///< which worker misbehaves
  int iteration = 1;        ///< at which iteration (1-based, like stats)
  std::int64_t mode = 0;    ///< at which mode's solve step
};

/// Configuration of the cluster itself (everything that is not a
/// PTuckerOptions solver knob).
struct DistOptions {
  /// Number of workers N. Must be in [1, kReductionLanes]: each worker
  /// owns a contiguous subrange of the 64 reduction lanes, so more
  /// workers than lanes cannot all contribute partials.
  std::int64_t workers = 2;

  /// How coordinator and workers talk (see DistTransport).
  DistTransport transport = DistTransport::kSocketpair;

  /// Bound on every blocking receive, coordinator and worker side. A
  /// hung peer is convicted with a timeout DistError instead of
  /// deadlocking the solve.
  int recv_timeout_ms = 120000;

  /// Fault injection for failure-path tests (none by default).
  DistFaultInjection fault;
};

/// Decomposes `x` with `dist.workers` processes (or threads, for the
/// in-process transport) and returns the same result a single-process
/// PTuckerDecompose(x, options) produces, bit for bit, plus cluster
/// stats (measured wire bytes, cost-model makespans). Supports the
/// kMemory variant with options.tracker == nullptr (the tracker is a
/// process-local memory model; the approx variant changes |G|
/// mid-flight, which would need re-planning); throws
/// std::invalid_argument for unsupported options and DistError when the
/// cluster fails mid-protocol (all workers are reaped first).
DistributedPTuckerResult DistributedPTuckerDecompose(const SparseTensor& x,
                                                     const PTuckerOptions& options,
                                                     const DistOptions& dist);

}  // namespace ptucker

#endif  // PTUCKER_DISTRIBUTED_PROC_DIST_SOLVER_H_
