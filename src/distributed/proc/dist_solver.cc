#include "distributed/proc/dist_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/core_update.h"
#include "core/delta.h"
#include "core/delta_engine.h"
#include "core/orthogonalize.h"
#include "core/ptucker.h"
#include "core/reconstruction.h"
#include "core/row_update.h"
#include "distributed/partition.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/random.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"

namespace ptucker {

namespace {

// First lane owned by `rank` in the fixed 64-lane partition — the same
// balanced boundary formula as PartitionRowsBlock, over lanes instead of
// rows. Worker r owns [WorkerLaneBegin(r), WorkerLaneBegin(r+1)).
std::int64_t WorkerLaneBegin(std::int64_t rank, std::int64_t workers) {
  return kReductionLanes * rank / workers;
}

void ValidateDistributed(const SparseTensor& x, const PTuckerOptions& options,
                         const DistOptions& dist) {
  if (dist.workers < 1 || dist.workers > kReductionLanes) {
    throw std::invalid_argument(
        "distributed P-Tucker: workers must be in [1, " +
        std::to_string(kReductionLanes) +
        "] (each worker owns a contiguous reduction-lane subrange)");
  }
  if (options.variant != PTuckerVariant::kMemory) {
    throw std::invalid_argument(
        "distributed P-Tucker: only the kMemory variant is supported (the "
        "cache table is node-local and approx re-plans |G| mid-flight)");
  }
  if (options.tracker != nullptr) {
    throw std::invalid_argument(
        "distributed P-Tucker: the memory tracker is process-local and "
        "cannot account a multi-process solve");
  }
  if (x.nnz() == 0) {
    throw std::invalid_argument(
        "distributed P-Tucker: tensor has no observed entries");
  }
  if (!x.has_mode_index()) {
    throw std::invalid_argument(
        "distributed P-Tucker: call SparseTensor::BuildModeIndex() before "
        "decomposing");
  }
  if (static_cast<std::int64_t>(options.core_dims.size()) != x.order()) {
    throw std::invalid_argument(
        "distributed P-Tucker: core_dims order does not match tensor order");
  }
  for (std::int64_t n = 0; n < x.order(); ++n) {
    const std::int64_t rank = options.core_dims[static_cast<std::size_t>(n)];
    if (rank < 1) {
      throw std::invalid_argument(
          "distributed P-Tucker: core dimensionality must be >= 1");
    }
    if (options.orthogonalize_output && rank > x.dim(n)) {
      throw std::invalid_argument(
          "distributed P-Tucker: Jn > In is incompatible with QR "
          "orthogonalization");
    }
  }
  if (options.lambda < 0.0) {
    throw std::invalid_argument(
        "distributed P-Tucker: lambda must be non-negative");
  }
  if (options.max_iterations < 1) {
    throw std::invalid_argument(
        "distributed P-Tucker: max_iterations must be >= 1");
  }
  if (options.sample_rate <= 0.0 || options.sample_rate > 1.0) {
    throw std::invalid_argument(
        "distributed P-Tucker: sample_rate must be in (0, 1]");
  }
}

// Replicates the single-process initialization (Algorithm 2 line 1)
// exactly: coordinator and every worker draw the same factors and core
// from the same seed (or copy the same warm-start snapshot), so all
// N + 1 model replicas start bit-identical.
DenseTensor InitModel(const SparseTensor& x, const PTuckerOptions& options,
                      std::vector<Matrix>* factors) {
  Rng rng(options.seed);
  factors->clear();
  factors->reserve(static_cast<std::size_t>(x.order()));
  for (std::int64_t n = 0; n < x.order(); ++n) {
    const std::int64_t rank = options.core_dims[static_cast<std::size_t>(n)];
    if (options.init_snapshot != nullptr) {
      factors->push_back(
          options.init_snapshot->factors[static_cast<std::size_t>(n)]);
    } else {
      Matrix factor(x.dim(n), rank);
      factor.FillUniform(rng);
      factors->push_back(std::move(factor));
    }
  }
  DenseTensor core(options.core_dims);
  if (options.init_snapshot != nullptr) {
    core = options.init_snapshot->core;
  } else {
    core.FillUniform(rng);
  }
  return core;
}

// Receives one frame from `rank`, converting every failure into a
// DistError that names the worker: transport errors get a "worker r:"
// prefix, kAbort frames carry the worker's own message, and an opcode or
// iteration-tag mismatch is a protocol violation in its own right.
DistFrame ExpectFrame(FrameChannel& channel, std::int64_t rank,
                      DistOpcode want, std::uint64_t tag) {
  DistFrame frame;
  try {
    frame = channel.RecvFrame();
  } catch (const DistError& e) {
    throw DistError("worker " + std::to_string(rank) + ": " + e.what());
  }
  if (frame.opcode == DistOpcode::kAbort) {
    throw DistError("worker " + std::to_string(rank) + " aborted: " +
                    std::string(frame.payload.begin(), frame.payload.end()));
  }
  if (frame.opcode != want) {
    throw DistError("worker " + std::to_string(rank) + " sent opcode " +
                    std::to_string(static_cast<unsigned>(frame.opcode)) +
                    " where " + std::to_string(static_cast<unsigned>(want)) +
                    " was expected");
  }
  if (frame.tag != tag) {
    throw DistError("worker " + std::to_string(rank) + " replied with tag " +
                    std::to_string(frame.tag) + ", want " +
                    std::to_string(tag));
  }
  return frame;
}

// CoreCgMatVec over the cluster: broadcasts the input vector, gathers
// every worker's raw per-lane partials into the full 64-lane buffer, and
// folds all lanes in lane order — the same fold LocalCoreMatVec runs on
// its own lane buffer, so CG sees bit-identical vectors either way.
class RemoteCoreMatVec : public CoreCgMatVec {
 public:
  RemoteCoreMatVec(ClusterTransport* transport, std::size_t width,
                   std::uint64_t tag)
      : transport_(transport),
        width_(width),
        tag_(tag),
        lane_sums_(static_cast<std::size_t>(kReductionLanes) * width) {}

  void ResidualBase(const std::vector<double>& g,
                    std::vector<double>* z) override {
    Product(DistOpcode::kCoreResidual, g, z);
  }

  void NormalProduct(const std::vector<double>& d,
                     std::vector<double>* z) override {
    Product(DistOpcode::kCoreMatVec, d, z);
  }

 private:
  void Product(DistOpcode opcode, const std::vector<double>& input,
               std::vector<double>* z) {
    const std::vector<std::uint8_t> payload = EncodeDoubleVector(input);
    const std::int64_t workers = transport_->workers();
    for (std::int64_t r = 0; r < workers; ++r) {
      transport_->Channel(r).SendFrame(opcode, tag_, payload);
    }
    std::fill(lane_sums_.begin(), lane_sums_.end(), 0.0);
    for (std::int64_t r = 0; r < workers; ++r) {
      const DistFrame frame = ExpectFrame(transport_->Channel(r), r,
                                          DistOpcode::kCorePartials, tag_);
      DistLaneBlock block;
      std::string error;
      if (!ParseLaneBlock(frame.payload, &block, &error)) {
        throw DistError("worker " + std::to_string(r) +
                        " sent a malformed lane block: " + error);
      }
      if (block.first_lane != WorkerLaneBegin(r, workers) ||
          block.lane_count !=
              WorkerLaneBegin(r + 1, workers) - WorkerLaneBegin(r, workers) ||
          block.width != static_cast<std::int64_t>(width_)) {
        throw DistError("worker " + std::to_string(r) +
                        " sent lane range [" +
                        std::to_string(block.first_lane) + ", +" +
                        std::to_string(block.lane_count) + ") x " +
                        std::to_string(block.width) +
                        " that does not match its lane ownership");
      }
      std::copy(block.values.begin(), block.values.end(),
                lane_sums_.begin() +
                    static_cast<std::size_t>(block.first_lane) * width_);
    }
    z->resize(width_);
    FoldVectorLaneSums(lane_sums_.data(), kReductionLanes, width_, z->data());
  }

  ClusterTransport* transport_;
  std::size_t width_;
  std::uint64_t tag_;
  std::vector<double> lane_sums_;
};

// The worker body: replicate the model, build the engine, then obey
// coordinator commands until kShutdown. Throws DistError to exit (the
// transport's worker wrapper swallows it and EOFs the channel).
void RunDistWorker(const SparseTensor& x, const PTuckerOptions& options,
                   const DistOptions& dist, std::int64_t rank,
                   FrameChannel& channel) {
  // One OpenMP thread per worker: the fixed reduction lanes make every
  // result thread-count invariant anyway, and a forked child must not
  // re-enter the parent's OpenMP runtime with a stale thread pool.
  OmpEnvironmentGuard omp_guard(1, options.scheduling);
  const std::int64_t order = x.order();
  const std::int64_t workers = dist.workers;

  // A forked worker inherits the parent tracer's rings; drop them so
  // the kBye payload carries only this rank's spans. In-process workers
  // share the coordinator's live tracer and must leave it alone.
  if (dist.transport != DistTransport::kInProcess &&
      obs::Tracer::Global().enabled()) {
    obs::Tracer::Global().Clear();
  }

  std::vector<Matrix> factors;
  DenseTensor core = InitModel(x, options, &factors);
  CoreEntryList core_list(core);
  const std::unique_ptr<DeltaEngine> engine = MakeDeltaEngine(
      ResolveDeltaEngineChoice(options), x, core_list, factors,
      /*tracker=*/nullptr, options.adaptive_epsilon, options.tile_width);

  // Row ownership per mode (every worker derives the same partition) and
  // this rank's contiguous reduction-lane subrange.
  std::vector<std::vector<std::int64_t>> own_rows(
      static_cast<std::size_t>(order));
  for (std::int64_t mode = 0; mode < order; ++mode) {
    own_rows[static_cast<std::size_t>(mode)] = std::move(
        PartitionRowsBlock(x, mode, workers)
            .rows_per_worker[static_cast<std::size_t>(rank)]);
  }
  const std::int64_t lane_begin = WorkerLaneBegin(rank, workers);
  const std::int64_t lane_end = WorkerLaneBegin(rank + 1, workers);
  const std::int64_t lane_count = lane_end - lane_begin;

  Matrix pending_old;
  std::vector<double> lane_buffer;
  for (;;) {
    const DistFrame frame = channel.RecvFrame();
    try {
      switch (frame.opcode) {
        case DistOpcode::kSolveMode: {
          std::int64_t mode = 0;
          std::string error;
          if (!ParseSolveMode(frame.payload, &mode, &error)) {
            throw std::runtime_error(error);
          }
          if (mode < 0 || mode >= order) {
            throw std::runtime_error("solve-mode " + std::to_string(mode) +
                                     " out of range");
          }
          const auto& rows = own_rows[static_cast<std::size_t>(mode)];
          const DistFaultInjection& fault = dist.fault;
          if (fault.kind != DistFaultInjection::Kind::kNone &&
              fault.rank == rank &&
              fault.iteration == static_cast<int>(frame.tag) &&
              fault.mode == mode) {
            if (fault.kind == DistFaultInjection::Kind::kKillWorker) {
              // Die silently: the coordinator sees a clean EOF where a
              // kRows frame was due.
              throw DistError("fault injection: worker killed");
            }
            if (fault.kind == DistFaultInjection::Kind::kCorruptFrame) {
              std::vector<std::uint8_t> bytes =
                  EncodeDistFrame(DistOpcode::kRows, frame.tag, {});
              bytes[0] = 0x58;  // 'X' where 'P' belongs
              channel.SendRaw(bytes.data(), bytes.size());
              continue;  // sit silent; the coordinator will abort us
            }
            // kTruncatedFrame: half a legitimate frame, then EOF.
            const std::vector<std::uint8_t> bytes = EncodeDistFrame(
                DistOpcode::kRows, frame.tag,
                EncodeRowBlock(mode, factors[static_cast<std::size_t>(mode)],
                               rows.empty() ? 0 : rows.front(),
                               static_cast<std::int64_t>(rows.size())));
            channel.SendRaw(bytes.data(), bytes.size() / 2);
            throw DistError("fault injection: frame truncated");
          }
          PTUCKER_TRACE_SPAN("dist.row_solve");
          pending_old = Matrix();
          if (engine->WantsFactorSnapshot()) {
            pending_old = factors[static_cast<std::size_t>(mode)];
          }
          if (!rows.empty()) {
            RowUpdateOptions row_options;
            row_options.lambda = options.lambda;
            row_options.sample_rate = options.sample_rate;
            row_options.seed = options.seed;
            row_options.iteration = static_cast<int>(frame.tag);
            UpdateFactorRows(x, mode, rows.data(),
                             static_cast<std::int64_t>(rows.size()), *engine,
                             &factors[static_cast<std::size_t>(mode)],
                             row_options);
          }
          channel.SendFrame(
              DistOpcode::kRows, frame.tag,
              EncodeRowBlock(mode, factors[static_cast<std::size_t>(mode)],
                             rows.empty() ? 0 : rows.front(),
                             static_cast<std::int64_t>(rows.size())));
          break;
        }
        case DistOpcode::kFactor: {
          PTUCKER_TRACE_SPAN("dist.row_exchange");
          DistRowBlock block;
          std::string error;
          if (!ParseRowBlock(frame.payload, &block, &error)) {
            throw std::runtime_error(error);
          }
          if (block.mode < 0 || block.mode >= order) {
            throw std::runtime_error("factor mode out of range");
          }
          Matrix& factor = factors[static_cast<std::size_t>(block.mode)];
          if (block.row_begin != 0 || block.row_count != factor.rows() ||
              block.cols != factor.cols()) {
            throw std::runtime_error("factor broadcast shape mismatch");
          }
          // In-place copy: engines hold views into this storage, so the
          // buffer must never reallocate.
          std::copy(block.values.begin(), block.values.end(), factor.data());
          engine->OnFactorUpdated(block.mode, pending_old);
          break;
        }
        case DistOpcode::kCoreResidual:
        case DistOpcode::kCoreMatVec: {
          PTUCKER_TRACE_SPAN("dist.reduction");
          std::vector<double> input;
          std::string error;
          if (!ParseDoubleVector(frame.payload, &input, &error)) {
            throw std::runtime_error(error);
          }
          if (static_cast<std::int64_t>(input.size()) != core_list.size()) {
            throw std::runtime_error("core vector length mismatch");
          }
          lane_buffer.assign(
              static_cast<std::size_t>(lane_count) * input.size(), 0.0);
          DesignLanePartials(
              x, *engine,
              /*residual_from_x=*/frame.opcode == DistOpcode::kCoreResidual,
              input, lane_begin, lane_end, lane_buffer.data());
          channel.SendFrame(
              DistOpcode::kCorePartials, frame.tag,
              EncodeLaneBlock(lane_begin, lane_count,
                              static_cast<std::int64_t>(input.size()),
                              lane_buffer.data()));
          break;
        }
        case DistOpcode::kCoreWrite: {
          std::vector<double> g;
          std::string error;
          if (!ParseDoubleVector(frame.payload, &g, &error)) {
            throw std::runtime_error(error);
          }
          if (static_cast<std::int64_t>(g.size()) != core_list.size()) {
            throw std::runtime_error("core write length mismatch");
          }
          StoreCoreValues(g, &core, &core_list);
          engine->OnCoreValuesChanged();
          channel.SendFrame(DistOpcode::kAck, frame.tag, {});
          break;
        }
        case DistOpcode::kErrorSums: {
          PTUCKER_TRACE_SPAN("dist.reduction");
          lane_buffer.assign(static_cast<std::size_t>(lane_count), 0.0);
          SquaredResidualLaneSums(x, *engine, lane_begin, lane_end,
                                  lane_buffer.data());
          channel.SendFrame(
              DistOpcode::kErrorSums, frame.tag,
              EncodeLaneBlock(lane_begin, lane_count, 1, lane_buffer.data()));
          break;
        }
        case DistOpcode::kShutdown: {
          // When tracing is on, the farewell carries this worker's span
          // ring so the coordinator can merge all ranks into one Chrome
          // trace. In-process workers already share the coordinator's
          // tracer, so shipping the ring back would double every span.
          std::vector<std::uint8_t> bye;
          obs::Tracer& tracer = obs::Tracer::Global();
          if (tracer.enabled() &&
              dist.transport != DistTransport::kInProcess) {
            bye = tracer.SerializeEvents();
          }
          channel.SendFrame(DistOpcode::kBye, frame.tag, bye);
          return;
        }
        default:
          throw std::runtime_error(
              "unexpected opcode " +
              std::to_string(static_cast<unsigned>(frame.opcode)) +
              " from coordinator");
      }
    } catch (const DistError&) {
      throw;  // deliberate exit (fault injection or dead coordinator)
    } catch (const std::exception& e) {
      // Convict ourselves loudly before going away, so the coordinator's
      // error names the cause instead of just "connection closed".
      const std::string message = e.what();
      channel.SendFrame(
          DistOpcode::kAbort, frame.tag,
          std::vector<std::uint8_t>(message.begin(), message.end()));
      throw DistError("worker aborted: " + message);
    }
  }
}

}  // namespace

DistributedPTuckerResult DistributedPTuckerDecompose(
    const SparseTensor& x, const PTuckerOptions& options,
    const DistOptions& dist) {
  ValidateDistributed(x, options, dist);
  const std::int64_t order = x.order();
  const std::int64_t workers = dist.workers;
  Stopwatch total_clock;

  const WorkerMain worker_main = [&x, &options, &dist](std::int64_t rank,
                                                       FrameChannel& channel) {
    RunDistWorker(x, options, dist, rank, channel);
  };
  const std::unique_ptr<ClusterTransport> transport = LaunchCluster(
      dist.transport, workers, worker_main, dist.recv_timeout_ms);

  DistributedPTuckerResult out;
  out.stats.workers = workers;
  try {
    // The coordinator's own model replica (no engine: all Ω-dependent
    // compute runs on the workers; the wrap-up phases below reuse the
    // single-process code paths).
    std::vector<Matrix> factors;
    DenseTensor core = InitModel(x, options, &factors);
    CoreEntryList core_list(core);

    // Row ownership (the same blocks every worker derives) plus the cost
    // model the simulated cluster reports: per-iteration serial work and
    // makespan under RowUpdateCost. The partition is fixed, so both are
    // constant across iterations.
    std::vector<RowPartition> partitions;
    partitions.reserve(static_cast<std::size_t>(order));
    std::int64_t total_cost = 0;
    std::int64_t makespan = 0;
    for (std::int64_t mode = 0; mode < order; ++mode) {
      partitions.push_back(PartitionRowsBlock(x, mode, workers));
      std::int64_t max_load = 0;
      for (std::int64_t r = 0; r < workers; ++r) {
        std::int64_t load = 0;
        for (const std::int64_t row :
             partitions.back().rows_per_worker[static_cast<std::size_t>(r)]) {
          load += RowUpdateCost(x, mode, row);
        }
        total_cost += load;
        max_load = std::max(max_load, load);
      }
      makespan += max_load;
    }

    PTuckerResult& result = out.result;
    double previous_error = std::numeric_limits<double>::infinity();

    for (int iteration = 1; iteration <= options.max_iterations;
         ++iteration) {
      Stopwatch iteration_clock;
      const std::uint64_t tag = static_cast<std::uint64_t>(iteration);

      // --- Factor updates: one lock-step exchange per mode. ---
      for (std::int64_t mode = 0; mode < order; ++mode) {
        const std::vector<std::uint8_t> solve = EncodeSolveMode(mode);
        for (std::int64_t r = 0; r < workers; ++r) {
          transport->Channel(r).SendFrame(DistOpcode::kSolveMode, tag, solve);
        }
        Matrix& factor = factors[static_cast<std::size_t>(mode)];
        const RowPartition& partition =
            partitions[static_cast<std::size_t>(mode)];
        for (std::int64_t r = 0; r < workers; ++r) {
          const DistFrame frame = ExpectFrame(transport->Channel(r), r,
                                              DistOpcode::kRows, tag);
          DistRowBlock block;
          std::string error;
          if (!ParseRowBlock(frame.payload, &block, &error)) {
            throw DistError("worker " + std::to_string(r) +
                            " sent a malformed row block: " + error);
          }
          const auto& owned =
              partition.rows_per_worker[static_cast<std::size_t>(r)];
          const std::int64_t want_begin = owned.empty() ? 0 : owned.front();
          if (block.mode != mode || block.cols != factor.cols() ||
              block.row_begin != want_begin ||
              block.row_count != static_cast<std::int64_t>(owned.size())) {
            throw DistError("worker " + std::to_string(r) +
                            " sent rows [" + std::to_string(block.row_begin) +
                            ", +" + std::to_string(block.row_count) +
                            ") of mode " + std::to_string(block.mode) +
                            " that do not match its row ownership");
          }
          if (block.row_count > 0) {
            std::copy(block.values.begin(), block.values.end(),
                      factor.Row(block.row_begin));
          }
        }
        const std::vector<std::uint8_t> merged =
            EncodeRowBlock(mode, factor, 0, factor.rows());
        for (std::int64_t r = 0; r < workers; ++r) {
          transport->Channel(r).SendFrame(DistOpcode::kFactor, tag, merged);
        }
      }

      // --- Optional core re-fit: coordinator runs the CG control flow,
      // workers compute the design products as lane partials. ---
      if (options.update_core && core_list.size() > 0 &&
          options.core_update_cg_iterations > 0) {
        std::vector<double> g(static_cast<std::size_t>(core_list.size()));
        for (std::int64_t b = 0; b < core_list.size(); ++b) {
          g[static_cast<std::size_t>(b)] = core_list.value(b);
        }
        RemoteCoreMatVec matvec(transport.get(), g.size(), tag);
        RunCoreCg(&matvec, options.lambda,
                  options.core_update_cg_iterations, &g);
        StoreCoreValues(g, &core, &core_list);
        const std::vector<std::uint8_t> payload = EncodeDoubleVector(g);
        for (std::int64_t r = 0; r < workers; ++r) {
          transport->Channel(r).SendFrame(DistOpcode::kCoreWrite, tag,
                                          payload);
        }
        for (std::int64_t r = 0; r < workers; ++r) {
          ExpectFrame(transport->Channel(r), r, DistOpcode::kAck, tag);
        }
      }

      // --- Reconstruction error: gather all 64 lane partials, fold in
      // lane order, exactly like the single-process blocked sum. ---
      for (std::int64_t r = 0; r < workers; ++r) {
        transport->Channel(r).SendFrame(DistOpcode::kErrorSums, tag, {});
      }
      double lane_sums[kReductionLanes] = {0.0};
      for (std::int64_t r = 0; r < workers; ++r) {
        const DistFrame frame = ExpectFrame(transport->Channel(r), r,
                                            DistOpcode::kErrorSums, tag);
        DistLaneBlock block;
        std::string error;
        if (!ParseLaneBlock(frame.payload, &block, &error)) {
          throw DistError("worker " + std::to_string(r) +
                          " sent a malformed lane block: " + error);
        }
        if (block.first_lane != WorkerLaneBegin(r, workers) ||
            block.lane_count != WorkerLaneBegin(r + 1, workers) -
                                    WorkerLaneBegin(r, workers) ||
            block.width != 1) {
          throw DistError("worker " + std::to_string(r) +
                          " sent an error-sum lane range that does not "
                          "match its lane ownership");
        }
        std::copy(block.values.begin(), block.values.end(),
                  lane_sums + block.first_lane);
      }
      const double error = std::sqrt(FoldLaneSums(lane_sums, kReductionLanes));

      IterationStats stats;
      stats.iteration = iteration;
      stats.error = error;
      stats.core_nnz = core_list.size();
      stats.peak_intermediate_bytes = 0;
      const double change =
          std::fabs(previous_error - error) / std::max(previous_error, 1e-12);
      previous_error = error;
      stats.seconds = iteration_clock.ElapsedSeconds();
      result.iterations.push_back(stats);
      out.stats.makespan_per_iteration.push_back(makespan);
      out.stats.total_cost_per_iteration.push_back(total_cost);
      if (options.verbose) {
        PTUCKER_LOG(kInfo) << "distributed iteration " << iteration
                           << ": error=" << error << " (" << stats.seconds
                           << "s, " << workers << " workers)";
      }
      if (change < options.tolerance) {
        result.converged = true;
        break;
      }
    }

    // --- Clean shutdown, then the single-process wrap-up phases. ---
    for (std::int64_t r = 0; r < workers; ++r) {
      transport->Channel(r).SendFrame(DistOpcode::kShutdown, 0, {});
    }
    for (std::int64_t r = 0; r < workers; ++r) {
      const DistFrame bye =
          ExpectFrame(transport->Channel(r), r, DistOpcode::kBye, 0);
      // Merge the worker's spans (pid r+1; the coordinator is pid 0).
      // Telemetry never fails a finished solve: a malformed payload is
      // logged and dropped.
      if (!bye.payload.empty() && obs::Tracer::Global().enabled()) {
        std::string error;
        if (!obs::Tracer::Global().ImportSerialized(
                bye.payload, static_cast<int>(r) + 1, &error)) {
          PTUCKER_LOG(kWarning) << "worker " << r
                                << ": undecodable trace payload: " << error;
        }
      }
    }
    out.stats.total_comm_bytes = transport->TotalCommBytes();
    out.stats.iterations_run = static_cast<int>(result.iterations.size());
    transport->Shutdown();

    if (options.orthogonalize_output) {
      OrthogonalizeFactors(&factors, &core);
      core_list = CoreEntryList(core);
    }
    result.final_error = ReconstructionError(x, core_list, factors);
    result.model.factors = std::move(factors);
    result.model.core = std::move(core);
    result.total_seconds = total_clock.ElapsedSeconds();
  } catch (...) {
    transport->Abort();
    throw;
  }
  return out;
}

}  // namespace ptucker
