/// \file
/// \brief The PTKD distributed message family: length-prefixed binary
/// frames the multi-process solver (distributed/proc/dist_solver.h)
/// exchanges between the coordinator and its workers. PTKD shares the
/// 20-byte header layout and the entire validation path (byte-precise
/// magic conviction, reserved-byte and opcode checks, payload cap) with
/// the PTKN serving protocol through the protocol-agnostic codec in
/// serve/net/frame.h — the two families differ only in their magic,
/// opcode table, and payload cap, so a framing rule cannot drift between
/// them. Payloads carry raw IEEE-754 bits through AppendF64/ReadF64, so
/// factor rows and reduction partials cross the wire bit-exactly — the
/// foundation of the N-process == 1-process trajectory guarantee. All
/// parsers are strict: any size/field mismatch convicts the peer with a
/// specific message and the connection is torn down (there is no
/// request-level recovery inside a lock-step solver protocol).
#ifndef PTUCKER_DISTRIBUTED_PROC_DIST_WIRE_H_
#define PTUCKER_DISTRIBUTED_PROC_DIST_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "serve/net/frame.h"
#include "util/parallel.h"

namespace ptucker {

/// The PTKD protocol magic, byte-for-byte ('P','T','K','D').
constexpr std::uint8_t kDistMagic[4] = {0x50, 0x54, 0x4B, 0x44};

/// Hard cap on a DIST frame's payload: a full factor broadcast is
/// rows x cols doubles, far beyond the serving protocol's 1 MiB cap, so
/// PTKD allows up to 1 GiB (a hostile length field still cannot balloon
/// a worker's buffer past that).
constexpr std::uint32_t kMaxDistPayload = 1u << 30;

/// PTKD protocol version spoken by this build (checked at HELLO).
constexpr std::uint32_t kDistProtocolVersion = 1;

/// DIST opcodes. Values are wire bytes — never renumber. Direction is
/// noted as C (coordinator) and W (worker).
enum class DistOpcode : std::uint8_t {
  kHello = 1,         ///< W→C: rank + cluster size + protocol version
  kSolveMode = 2,     ///< C→W: solve your rows of one mode (tag = iteration)
  kRows = 3,          ///< W→C: the solved contiguous row block
  kFactor = 4,        ///< C→W: the merged full factor of one mode
  kCoreResidual = 5,  ///< C→W: compute Pᵀ(x − P g) lane partials for g
  kCoreMatVec = 6,    ///< C→W: compute Pᵀ(P d) lane partials for d
  kCorePartials = 7,  ///< W→C: per-lane |G|-wide partials of a core op
  kCoreWrite = 8,     ///< C→W: store the refit core values
  kAck = 9,           ///< W→C: acknowledges a kCoreWrite
  kErrorSums = 10,    ///< C→W request (empty) / W→C reply (lane sums)
  kShutdown = 11,     ///< C→W: clean end of protocol
  kBye = 12,          ///< W→C: acknowledges kShutdown before exit
  kAbort = 13,        ///< either: fatal error, payload = UTF-8 message
};

/// One decoded DIST frame: the opcode, the 64-bit tag (the header's
/// request-id slot; the solver uses it for the iteration counter), and
/// the payload bytes.
struct DistFrame {
  DistOpcode opcode = DistOpcode::kAbort;
  std::uint64_t tag = 0;
  std::vector<std::uint8_t> payload;
};

/// The PTKD protocol descriptor for the shared frame codec
/// (serve/net/frame.h). Same validation path as PtknProtocol().
const FrameProtocol& DistProtocol();

/// Encodes one DIST frame (header + payload). Status byte is always 0 —
/// DIST reports errors through kAbort frames, not a status table.
std::vector<std::uint8_t> EncodeDistFrame(
    DistOpcode opcode, std::uint64_t tag,
    const std::vector<std::uint8_t>& payload);

/// Decodes at most one DIST frame from `data[0..size)` through the
/// shared codec; same contract as serve/net DecodeFrame (kNeedMore on a
/// valid prefix, kError with a specific message on the first bad byte).
DecodeResult DecodeDistFrame(const std::uint8_t* data, std::size_t size,
                             DistFrame* frame, std::size_t* consumed,
                             std::string* error);

/// \name Typed payload codecs
/// Encode* build the payload only (frame it with EncodeDistFrame);
/// Parse* return false and fill `*error` on any size/field violation —
/// the caller convicts the peer and tears the connection down.
///@{

/// HELLO payload: worker rank, cluster size, protocol version.
std::vector<std::uint8_t> EncodeHello(std::int64_t rank, std::int64_t workers,
                                      std::uint32_t version);
/// Parses a HELLO payload.
bool ParseHello(const std::vector<std::uint8_t>& payload, std::int64_t* rank,
                std::int64_t* workers, std::uint32_t* version,
                std::string* error);

/// SOLVE_MODE payload: the mode whose owned rows the worker must solve.
std::vector<std::uint8_t> EncodeSolveMode(std::int64_t mode);
/// Parses a SOLVE_MODE payload.
bool ParseSolveMode(const std::vector<std::uint8_t>& payload,
                    std::int64_t* mode, std::string* error);

/// A contiguous block of factor rows in transit (kRows and kFactor both
/// use this shape; kFactor sends row_begin = 0, row_count = all rows).
struct DistRowBlock {
  std::int64_t mode = 0;
  std::int64_t row_begin = 0;
  std::int64_t row_count = 0;
  std::int64_t cols = 0;
  /// row_count x cols doubles, row-major.
  std::vector<double> values;
};

/// ROWS/FACTOR payload: mode, row range, and the row-major doubles taken
/// from `factor` rows [row_begin, row_begin + row_count).
std::vector<std::uint8_t> EncodeRowBlock(std::int64_t mode,
                                         const Matrix& factor,
                                         std::int64_t row_begin,
                                         std::int64_t row_count);
/// Parses a ROWS/FACTOR payload.
bool ParseRowBlock(const std::vector<std::uint8_t>& payload,
                   DistRowBlock* block, std::string* error);

/// CORE_RESIDUAL/CORE_MATVEC/CORE_WRITE payload: one double vector.
std::vector<std::uint8_t> EncodeDoubleVector(const std::vector<double>& values);
/// Parses a double-vector payload.
bool ParseDoubleVector(const std::vector<std::uint8_t>& payload,
                       std::vector<double>* values, std::string* error);

/// A worker's contiguous range of reduction-lane partials: lane l of the
/// fixed kReductionLanes partition contributes `width` doubles at
/// `values[(l - first_lane) * width ..]`. Scalar sums use width = 1.
struct DistLaneBlock {
  std::int64_t first_lane = 0;
  std::int64_t lane_count = 0;
  std::int64_t width = 0;
  std::vector<double> values;
};

/// CORE_PARTIALS/ERROR_SUMS payload: the worker's lane-partial block.
std::vector<std::uint8_t> EncodeLaneBlock(std::int64_t first_lane,
                                          std::int64_t lane_count,
                                          std::int64_t width,
                                          const double* values);
/// Parses a lane-partial payload.
bool ParseLaneBlock(const std::vector<std::uint8_t>& payload,
                    DistLaneBlock* block, std::string* error);
///@}

}  // namespace ptucker

#endif  // PTUCKER_DISTRIBUTED_PROC_DIST_WIRE_H_
