#ifndef PTUCKER_DISTRIBUTED_PARTITION_H_
#define PTUCKER_DISTRIBUTED_PARTITION_H_

#include <cstdint>
#include <vector>

#include "tensor/sparse_tensor.h"

namespace ptucker {

/// Assignment of one mode's factor rows to workers. rows_per_worker[w]
/// lists the row indices owned by worker w (disjoint, covering all rows).
struct RowPartition {
  std::vector<std::vector<std::int64_t>> rows_per_worker;

  std::int64_t num_workers() const {
    return static_cast<std::int64_t>(rows_per_worker.size());
  }
};

/// Cost of updating one row of A(mode): proportional to |Ω(n,in)| (the δ
/// computations dominate; the J³ solve is constant per row). Used both
/// for partitioning and for the simulator's compute model.
std::int64_t RowUpdateCost(const SparseTensor& x, std::int64_t mode,
                           std::int64_t row);

/// Naive partitioning: contiguous equal-count row blocks. The distributed
/// analog of static scheduling — ignores slice-size skew.
RowPartition PartitionRowsBlock(const SparseTensor& x, std::int64_t mode,
                                std::int64_t workers);

/// Workload-aware partitioning (LPT greedy): rows sorted by descending
/// |Ω(n,in)| are assigned to the currently lightest worker. The
/// distributed analog of the paper's §III-D "careful distribution of
/// work"; guarantees max-load ≤ (4/3 − 1/(3W)) · optimal.
RowPartition PartitionRowsGreedy(const SparseTensor& x, std::int64_t mode,
                                 std::int64_t workers);

/// max worker load / mean worker load under RowUpdateCost (1.0 = perfectly
/// balanced). Empty workers count toward the mean.
double LoadImbalance(const SparseTensor& x, std::int64_t mode,
                     const RowPartition& partition);

}  // namespace ptucker

#endif  // PTUCKER_DISTRIBUTED_PARTITION_H_
