#include "distributed/sim_cluster.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/delta.h"
#include "core/orthogonalize.h"
#include "core/reconstruction.h"
#include "linalg/blas.h"
#include "linalg/cholesky.h"
#include "linalg/lu.h"
#include "util/logging.h"
#include "util/random.h"
#include "obs/stopwatch.h"

namespace ptucker {

namespace {

void SolveRowLocal(const Matrix& b_plus_lambda, const double* c, double* row,
                   std::int64_t rank) {
  if (CholeskySolveRow(b_plus_lambda, c, row)) return;
  LuDecomposition lu(b_plus_lambda);
  if (lu.ok()) {
    lu.Solve(c, row);
    return;
  }
  for (std::int64_t j = 0; j < rank; ++j) row[j] = 0.0;
}

}  // namespace

DistributedPTuckerResult SimulateDistributedPTucker(
    const SparseTensor& x, const PTuckerOptions& options,
    std::int64_t workers, PartitionStrategy strategy) {
  if (workers < 1) {
    throw std::invalid_argument("distributed: workers must be >= 1");
  }
  if (options.variant != PTuckerVariant::kMemory || options.update_core ||
      options.sample_rate != 1.0) {
    throw std::invalid_argument(
        "distributed: only the kMemory variant without core update or "
        "sampling is supported");
  }
  if (x.nnz() == 0 || !x.has_mode_index()) {
    throw std::invalid_argument(
        "distributed: tensor must be non-empty with a built mode index");
  }
  if (static_cast<std::int64_t>(options.core_dims.size()) != x.order()) {
    throw std::invalid_argument("distributed: core_dims order mismatch");
  }

  const std::int64_t order = x.order();
  Stopwatch total_clock;

  // Plan: one partition per mode, fixed for the whole run (a real
  // deployment would ship the owned slices of X to each worker once).
  std::vector<RowPartition> plan;
  plan.reserve(static_cast<std::size_t>(order));
  for (std::int64_t mode = 0; mode < order; ++mode) {
    plan.push_back(strategy == PartitionStrategy::kGreedy
                       ? PartitionRowsGreedy(x, mode, workers)
                       : PartitionRowsBlock(x, mode, workers));
  }

  // Identical initialization to PTuckerDecompose: same seed, same draw
  // order — the simulation must produce the same factorization.
  Rng rng(options.seed);
  std::vector<Matrix> factors;
  factors.reserve(static_cast<std::size_t>(order));
  std::int64_t max_rank = 1;
  for (std::int64_t n = 0; n < order; ++n) {
    const std::int64_t rank = options.core_dims[static_cast<std::size_t>(n)];
    PTUCKER_CHECK(rank >= 1 && rank <= x.dim(n));
    Matrix factor(x.dim(n), rank);
    factor.FillUniform(rng);
    factors.push_back(std::move(factor));
    max_rank = std::max(max_rank, rank);
  }
  DenseTensor core(options.core_dims);
  core.FillUniform(rng);
  CoreEntryList core_list(core);

  DistributedPTuckerResult outcome;
  outcome.stats.workers = workers;
  PTuckerResult& result = outcome.result;
  double previous_error = std::numeric_limits<double>::infinity();

  Matrix b(max_rank, max_rank);
  std::vector<double> c(static_cast<std::size_t>(max_rank));
  std::vector<double> delta(static_cast<std::size_t>(max_rank));
  std::vector<double> new_row(static_cast<std::size_t>(max_rank));

  for (int iteration = 1; iteration <= options.max_iterations; ++iteration) {
    Stopwatch iteration_clock;
    std::int64_t makespan = 0;
    std::int64_t total_cost = 0;

    for (std::int64_t mode = 0; mode < order; ++mode) {
      const std::int64_t rank =
          options.core_dims[static_cast<std::size_t>(mode)];
      Matrix& factor = factors[static_cast<std::size_t>(mode)];
      const RowPartition& partition =
          plan[static_cast<std::size_t>(mode)];

      std::int64_t mode_makespan = 0;
      for (const auto& owned : partition.rows_per_worker) {
        // Each worker updates its rows sequentially (simulated).
        std::int64_t worker_cost = 0;
        for (const std::int64_t row_index : owned) {
          worker_cost += RowUpdateCost(x, mode, row_index);
          const auto slice = x.Slice(mode, row_index);
          if (slice.empty()) {
            for (std::int64_t j = 0; j < rank; ++j) {
              factor(row_index, j) = 0.0;
            }
            continue;
          }
          b.Fill(0.0);
          std::fill(c.begin(), c.begin() + rank, 0.0);
          for (const std::int64_t entry : slice) {
            ComputeDelta(core_list, factors, x.index(entry), mode,
                         delta.data());
            // B is max_rank x max_rank; use the leading rank block.
            for (std::int64_t i = 0; i < rank; ++i) {
              const double scale = delta[static_cast<std::size_t>(i)];
              if (scale == 0.0) continue;
              Axpy(scale, delta.data(), b.Row(i), rank);
            }
            Axpy(x.value(entry), delta.data(), c.data(), rank);
          }
          Matrix system(rank, rank);
          for (std::int64_t i = 0; i < rank; ++i) {
            for (std::int64_t j = 0; j < rank; ++j) system(i, j) = b(i, j);
            system(i, i) += options.lambda;
          }
          SolveRowLocal(system, c.data(), new_row.data(), rank);
          for (std::int64_t j = 0; j < rank; ++j) {
            factor(row_index, j) = new_row[static_cast<std::size_t>(j)];
          }
        }
        mode_makespan = std::max(mode_makespan, worker_cost);
        total_cost += worker_cost;
      }
      makespan += mode_makespan;

      // Allgather of the refreshed A(mode): ring model moves
      // (W-1)/W · payload per worker, W of them -> (W-1) · payload total.
      outcome.stats.total_comm_bytes +=
          (workers - 1) * x.dim(mode) * rank *
          static_cast<std::int64_t>(sizeof(double));
    }

    const double error = ReconstructionError(x, core_list, factors);
    IterationStats stats;
    stats.iteration = iteration;
    stats.error = error;
    stats.core_nnz = core_list.size();
    stats.seconds = iteration_clock.ElapsedSeconds();
    result.iterations.push_back(stats);
    outcome.stats.makespan_per_iteration.push_back(makespan);
    outcome.stats.total_cost_per_iteration.push_back(total_cost);
    outcome.stats.iterations_run = iteration;

    const double change =
        std::fabs(previous_error - error) / std::max(previous_error, 1e-12);
    previous_error = error;
    if (change < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  if (options.orthogonalize_output) {
    OrthogonalizeFactors(&factors, &core);
    core_list = CoreEntryList(core);
  }
  result.final_error = ReconstructionError(x, core_list, factors);
  result.model.factors = std::move(factors);
  result.model.core = std::move(core);
  result.total_seconds = total_clock.ElapsedSeconds();
  return outcome;
}

}  // namespace ptucker
