#include "distributed/partition.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/logging.h"

namespace ptucker {

std::int64_t RowUpdateCost(const SparseTensor& x, std::int64_t mode,
                           std::int64_t row) {
  // |Ω(n,in)| + 1: the +1 keeps empty rows from being free so no worker
  // collects unbounded row counts.
  return x.SliceSize(mode, row) + 1;
}

RowPartition PartitionRowsBlock(const SparseTensor& x, std::int64_t mode,
                                std::int64_t workers) {
  PTUCKER_CHECK(workers >= 1);
  const std::int64_t rows = x.dim(mode);
  RowPartition partition;
  partition.rows_per_worker.resize(static_cast<std::size_t>(workers));
  for (std::int64_t w = 0; w < workers; ++w) {
    const std::int64_t begin = rows * w / workers;
    const std::int64_t end = rows * (w + 1) / workers;
    auto& owned = partition.rows_per_worker[static_cast<std::size_t>(w)];
    owned.reserve(static_cast<std::size_t>(end - begin));
    for (std::int64_t row = begin; row < end; ++row) owned.push_back(row);
  }
  return partition;
}

RowPartition PartitionRowsGreedy(const SparseTensor& x, std::int64_t mode,
                                 std::int64_t workers) {
  PTUCKER_CHECK(workers >= 1);
  PTUCKER_CHECK(x.has_mode_index());
  const std::int64_t rows = x.dim(mode);

  std::vector<std::int64_t> order(static_cast<std::size_t>(rows));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::int64_t a, std::int64_t b) {
    return RowUpdateCost(x, mode, a) > RowUpdateCost(x, mode, b);
  });

  // Min-heap of (load, worker).
  using Entry = std::pair<std::int64_t, std::int64_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (std::int64_t w = 0; w < workers; ++w) heap.emplace(0, w);

  RowPartition partition;
  partition.rows_per_worker.resize(static_cast<std::size_t>(workers));
  for (const std::int64_t row : order) {
    auto [load, worker] = heap.top();
    heap.pop();
    partition.rows_per_worker[static_cast<std::size_t>(worker)].push_back(
        row);
    heap.emplace(load + RowUpdateCost(x, mode, row), worker);
  }
  // Keep each worker's rows in index order (nicer locality, stable tests).
  for (auto& owned : partition.rows_per_worker) {
    std::sort(owned.begin(), owned.end());
  }
  return partition;
}

double LoadImbalance(const SparseTensor& x, std::int64_t mode,
                     const RowPartition& partition) {
  PTUCKER_CHECK(partition.num_workers() >= 1);
  std::int64_t total = 0;
  std::int64_t max_load = 0;
  for (const auto& owned : partition.rows_per_worker) {
    std::int64_t load = 0;
    for (const std::int64_t row : owned) {
      load += RowUpdateCost(x, mode, row);
    }
    total += load;
    max_load = std::max(max_load, load);
  }
  const double mean =
      static_cast<double>(total) /
      static_cast<double>(partition.num_workers());
  if (mean == 0.0) return 1.0;
  return static_cast<double>(max_load) / mean;
}

}  // namespace ptucker
