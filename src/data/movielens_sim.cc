#include "data/movielens_sim.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "tensor/index.h"
#include "util/logging.h"

namespace ptucker {

namespace {

// Inverse-CDF sampler over a Zipf(skew) distribution on [0, n).
class ZipfSampler {
 public:
  ZipfSampler(std::int64_t n, double skew) : cdf_(static_cast<std::size_t>(n)) {
    double total = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), skew);
      cdf_[static_cast<std::size_t>(i)] = total;
    }
    for (auto& v : cdf_) v /= total;
  }

  std::int64_t Draw(Rng& rng) const {
    const double u = rng.Uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    const auto raw = static_cast<std::int64_t>(it - cdf_.begin());
    return std::min<std::int64_t>(raw,
                                  static_cast<std::int64_t>(cdf_.size()) - 1);
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

MovieLensData SimulateMovieLens(const MovieLensConfig& config) {
  PTUCKER_CHECK(config.num_genres >= 1);
  Rng rng(config.seed);

  MovieLensData data;
  data.movie_genre.resize(static_cast<std::size_t>(config.num_movies));
  for (auto& genre : data.movie_genre) {
    genre = static_cast<std::int64_t>(
        rng.UniformInt(static_cast<std::uint64_t>(config.num_genres)));
  }
  data.user_genre.resize(static_cast<std::size_t>(config.num_users));
  for (auto& genre : data.user_genre) {
    genre = static_cast<std::int64_t>(
        rng.UniformInt(static_cast<std::uint64_t>(config.num_genres)));
  }

  // Planted (genre, hour) relations: each genre gets a couple of strongly
  // preferred hours, the Table VI ground truth.
  data.genre_hour_boost.assign(
      static_cast<std::size_t>(config.num_genres * config.num_hours), 0.0);
  for (std::int64_t g = 0; g < config.num_genres; ++g) {
    for (int peak = 0; peak < 2; ++peak) {
      const std::int64_t hour = static_cast<std::int64_t>(
          rng.UniformInt(static_cast<std::uint64_t>(config.num_hours)));
      data.genre_hour_boost[static_cast<std::size_t>(
          g * config.num_hours + hour)] += 0.35;
    }
  }

  // Per-year drift of each genre (mild, so year matters but less than
  // genre match).
  std::vector<double> genre_year(
      static_cast<std::size_t>(config.num_genres * config.num_years));
  for (auto& v : genre_year) v = 0.1 * rng.Uniform();

  const std::vector<std::int64_t> dims = {config.num_users,
                                          config.num_movies,
                                          config.num_years,
                                          config.num_hours};
  SparseTensor tensor(dims);
  tensor.Reserve(config.nnz);
  PTUCKER_CHECK(config.nnz <= NumElements(dims));

  const ZipfSampler user_sampler(config.num_users, config.popularity_skew);
  const ZipfSampler movie_sampler(config.num_movies, config.popularity_skew);
  const auto strides = ComputeStrides(dims);
  std::unordered_set<std::int64_t> seen;
  seen.reserve(static_cast<std::size_t>(config.nnz * 2));

  std::int64_t emitted = 0;
  std::int64_t index[4];
  while (emitted < config.nnz) {
    index[0] = user_sampler.Draw(rng);
    index[1] = movie_sampler.Draw(rng);
    index[2] = static_cast<std::int64_t>(
        rng.UniformInt(static_cast<std::uint64_t>(config.num_years)));
    index[3] = static_cast<std::int64_t>(
        rng.UniformInt(static_cast<std::uint64_t>(config.num_hours)));
    const std::int64_t key = Linearize(index, strides, 4);
    if (!seen.insert(key).second) continue;

    const std::int64_t genre =
        data.movie_genre[static_cast<std::size_t>(index[1])];
    const bool genre_match =
        data.user_genre[static_cast<std::size_t>(index[0])] == genre;
    double rating = 0.3;
    if (genre_match) rating += 0.35;
    rating += data.genre_hour_boost[static_cast<std::size_t>(
        genre * config.num_hours + index[3])];
    rating += genre_year[static_cast<std::size_t>(
        genre * config.num_years + index[2])];
    rating += rng.Normal(0.0, config.noise_stddev);
    rating = std::clamp(rating, 0.0, 1.0);

    tensor.AddEntry(index, rating);
    ++emitted;
  }
  tensor.BuildModeIndex();
  data.tensor = std::move(tensor);
  return data;
}

}  // namespace ptucker
