#include "data/movielens_sim.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "tensor/index.h"
#include "util/logging.h"

namespace ptucker {

namespace {

// Inverse-CDF sampler over a Zipf(skew) distribution on [0, n).
class ZipfSampler {
 public:
  ZipfSampler(std::int64_t n, double skew) : cdf_(static_cast<std::size_t>(n)) {
    double total = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), skew);
      cdf_[static_cast<std::size_t>(i)] = total;
    }
    for (auto& v : cdf_) v /= total;
  }

  std::int64_t Draw(Rng& rng) const {
    const double u = rng.Uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    const auto raw = static_cast<std::int64_t>(it - cdf_.begin());
    return std::min<std::int64_t>(raw,
                                  static_cast<std::int64_t>(cdf_.size()) - 1);
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

MovieLensData SimulateMovieLens(const MovieLensConfig& config) {
  PTUCKER_CHECK(config.num_genres >= 1);
  Rng rng(config.seed);

  MovieLensData data;
  data.movie_genre.resize(static_cast<std::size_t>(config.num_movies));
  for (auto& genre : data.movie_genre) {
    genre = static_cast<std::int64_t>(
        rng.UniformInt(static_cast<std::uint64_t>(config.num_genres)));
  }
  data.user_genre.resize(static_cast<std::size_t>(config.num_users));
  for (auto& genre : data.user_genre) {
    genre = static_cast<std::int64_t>(
        rng.UniformInt(static_cast<std::uint64_t>(config.num_genres)));
  }

  // Planted (genre, hour) relations: each genre gets a couple of strongly
  // preferred hours, the Table VI ground truth.
  data.genre_hour_boost.assign(
      static_cast<std::size_t>(config.num_genres * config.num_hours), 0.0);
  for (std::int64_t g = 0; g < config.num_genres; ++g) {
    for (int peak = 0; peak < 2; ++peak) {
      const std::int64_t hour = static_cast<std::int64_t>(
          rng.UniformInt(static_cast<std::uint64_t>(config.num_hours)));
      data.genre_hour_boost[static_cast<std::size_t>(
          g * config.num_hours + hour)] += 0.35;
    }
  }

  // Per-year drift of each genre (mild, so year matters but less than
  // genre match).
  std::vector<double> genre_year(
      static_cast<std::size_t>(config.num_genres * config.num_years));
  for (auto& v : genre_year) v = 0.1 * rng.Uniform();

  const std::vector<std::int64_t> dims = {config.num_users,
                                          config.num_movies,
                                          config.num_years,
                                          config.num_hours};
  SparseTensor tensor(dims);
  tensor.Reserve(config.nnz);
  PTUCKER_CHECK(config.nnz <= NumElements(dims));

  const ZipfSampler user_sampler(config.num_users, config.popularity_skew);
  const ZipfSampler movie_sampler(config.num_movies, config.popularity_skew);
  const auto strides = ComputeStrides(dims);
  std::unordered_set<std::int64_t> seen;
  seen.reserve(static_cast<std::size_t>(config.nnz * 2));

  std::int64_t emitted = 0;
  std::int64_t index[4];
  while (emitted < config.nnz) {
    index[0] = user_sampler.Draw(rng);
    index[1] = movie_sampler.Draw(rng);
    index[2] = static_cast<std::int64_t>(
        rng.UniformInt(static_cast<std::uint64_t>(config.num_years)));
    index[3] = static_cast<std::int64_t>(
        rng.UniformInt(static_cast<std::uint64_t>(config.num_hours)));
    const std::int64_t key = Linearize(index, strides, 4);
    if (!seen.insert(key).second) continue;

    const std::int64_t genre =
        data.movie_genre[static_cast<std::size_t>(index[1])];
    const bool genre_match =
        data.user_genre[static_cast<std::size_t>(index[0])] == genre;
    double rating = 0.3;
    if (genre_match) rating += 0.35;
    rating += data.genre_hour_boost[static_cast<std::size_t>(
        genre * config.num_hours + index[3])];
    rating += genre_year[static_cast<std::size_t>(
        genre * config.num_years + index[2])];
    rating += rng.Normal(0.0, config.noise_stddev);
    rating = std::clamp(rating, 0.0, 1.0);

    tensor.AddEntry(index, rating);
    ++emitted;
  }
  tensor.BuildModeIndex();
  data.tensor = std::move(tensor);
  return data;
}

MovieLensStream SimulateMovieLensStream(const MovieLensStreamConfig& config) {
  PTUCKER_CHECK(config.num_events >= 0);
  PTUCKER_CHECK(config.update_fraction >= 0.0 &&
                config.delete_fraction >= 0.0 &&
                config.update_fraction + config.delete_fraction <= 1.0);
  PTUCKER_CHECK(config.max_timestamp_step >= 0);

  MovieLensStream stream;
  stream.initial = SimulateMovieLens(config.base);
  const MovieLensData& data = stream.initial;
  const MovieLensConfig& base = config.base;

  const std::vector<std::int64_t>& dims = data.tensor.dims();
  const auto strides = ComputeStrides(dims);

  // The live set: linearized keys of currently-observed coordinates, as a
  // vector (O(1) uniform pick with swap-remove) plus a key→position map
  // (O(1) membership + removal). Deletes free their coordinate, so a
  // later append may legitimately re-observe it.
  std::vector<std::int64_t> live_keys;
  std::unordered_map<std::int64_t, std::size_t> key_pos;
  live_keys.reserve(static_cast<std::size_t>(data.tensor.nnz()));
  key_pos.reserve(static_cast<std::size_t>(data.tensor.nnz() * 2));
  for (std::int64_t e = 0; e < data.tensor.nnz(); ++e) {
    const std::int64_t key = Linearize(data.tensor.index(e), strides, 4);
    key_pos.emplace(key, live_keys.size());
    live_keys.push_back(key);
  }

  Rng rng(config.seed);
  const ZipfSampler user_sampler(base.num_users, base.popularity_skew);
  const ZipfSampler movie_sampler(base.num_movies, base.popularity_skew);

  // Rating of a coordinate under the planted model (genre match + hour
  // affinity + noise — the structure the discovery experiments recover).
  std::int64_t index[4];
  const auto planted_rating = [&]() {
    const std::int64_t genre =
        data.movie_genre[static_cast<std::size_t>(index[1])];
    double rating = 0.3;
    if (data.user_genre[static_cast<std::size_t>(index[0])] == genre) {
      rating += 0.35;
    }
    rating += data.genre_hour_boost[static_cast<std::size_t>(
        genre * base.num_hours + index[3])];
    rating += rng.Normal(0.0, base.noise_stddev);
    return std::clamp(rating, 0.0, 1.0);
  };
  const auto remove_live = [&](std::size_t pos) {
    key_pos.erase(live_keys[pos]);
    if (pos + 1 != live_keys.size()) {
      live_keys[pos] = live_keys.back();
      key_pos[live_keys[pos]] = pos;
    }
    live_keys.pop_back();
  };

  stream.events.reserve(static_cast<std::size_t>(config.num_events));
  std::int64_t timestamp = config.start_timestamp;
  for (std::int64_t n = 0; n < config.num_events; ++n) {
    timestamp += static_cast<std::int64_t>(rng.UniformInt(
        static_cast<std::uint64_t>(config.max_timestamp_step) + 1));
    const double kind = rng.Uniform();
    StreamEvent event;
    event.timestamp = timestamp;
    if (kind < config.update_fraction + config.delete_fraction &&
        !live_keys.empty()) {
      const std::size_t pos = static_cast<std::size_t>(
          rng.UniformInt(static_cast<std::uint64_t>(live_keys.size())));
      Delinearize(live_keys[pos], dims, index);
      event.index.assign(index, index + 4);
      if (kind < config.update_fraction) {
        event.op = StreamOp::kUpdate;
        event.value = planted_rating();
      } else {
        event.op = StreamOp::kDelete;
        remove_live(pos);
      }
    } else {
      // Append: draw Zipf-skewed coordinates until one is unobserved.
      do {
        index[0] = user_sampler.Draw(rng);
        index[1] = movie_sampler.Draw(rng);
        index[2] = static_cast<std::int64_t>(
            rng.UniformInt(static_cast<std::uint64_t>(base.num_years)));
        index[3] = static_cast<std::int64_t>(
            rng.UniformInt(static_cast<std::uint64_t>(base.num_hours)));
      } while (key_pos.count(Linearize(index, strides, 4)) != 0);
      const std::int64_t key = Linearize(index, strides, 4);
      key_pos.emplace(key, live_keys.size());
      live_keys.push_back(key);
      event.op = StreamOp::kAppend;
      event.index.assign(index, index + 4);
      event.value = planted_rating();
    }
    stream.events.push_back(std::move(event));
  }
  return stream;
}

}  // namespace ptucker
