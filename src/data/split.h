#ifndef PTUCKER_DATA_SPLIT_H_
#define PTUCKER_DATA_SPLIT_H_

#include "tensor/sparse_tensor.h"
#include "util/random.h"

namespace ptucker {

/// Train/test split of observed entries. The paper uses "90% of observed
/// entries as training data and the rest of them as test data" (§IV-A1)
/// for the test-RMSE metric of Fig. 11.
struct TrainTestSplit {
  SparseTensor train;
  SparseTensor test;
};

/// Splits entries uniformly at random; `test_fraction` in [0, 1). Both
/// halves keep the original dims and have their mode index built.
TrainTestSplit SplitObservedEntries(const SparseTensor& tensor,
                                    double test_fraction, Rng& rng);

}  // namespace ptucker

#endif  // PTUCKER_DATA_SPLIT_H_
