#include "data/lowrank.h"

#include <algorithm>
#include <unordered_set>

#include "tensor/index.h"
#include "tensor/nmode.h"
#include "util/logging.h"

namespace ptucker {

PlantedTucker RandomTuckerModel(const std::vector<std::int64_t>& dims,
                                const std::vector<std::int64_t>& core_dims,
                                Rng& rng) {
  PTUCKER_CHECK(dims.size() == core_dims.size());
  PlantedTucker model;
  model.core = DenseTensor(core_dims);
  model.core.FillUniform(rng);
  model.factors.reserve(dims.size());
  for (std::size_t k = 0; k < dims.size(); ++k) {
    Matrix factor(dims[k], core_dims[k]);
    factor.FillUniform(rng);
    // Scale so reconstructions land in O(1) range regardless of rank.
    factor.Scale(1.0 / static_cast<double>(core_dims[k]));
    model.factors.push_back(std::move(factor));
  }
  return model;
}

SparseTensor SampleFromModel(const PlantedTucker& model, std::int64_t nnz,
                             double noise_stddev, Rng& rng) {
  std::vector<std::int64_t> dims(model.factors.size());
  for (std::size_t k = 0; k < model.factors.size(); ++k) {
    dims[k] = model.factors[k].rows();
  }
  PTUCKER_CHECK(nnz <= NumElements(dims));

  SparseTensor tensor(dims);
  tensor.Reserve(nnz);
  std::unordered_set<std::int64_t> seen;
  seen.reserve(static_cast<std::size_t>(nnz * 2));
  const auto strides = ComputeStrides(dims);
  std::vector<std::int64_t> index(dims.size());
  const std::int64_t order = static_cast<std::int64_t>(dims.size());

  std::int64_t emitted = 0;
  while (emitted < nnz) {
    for (std::size_t k = 0; k < dims.size(); ++k) {
      index[k] = static_cast<std::int64_t>(
          rng.UniformInt(static_cast<std::uint64_t>(dims[k])));
    }
    const std::int64_t key = Linearize(index.data(), strides, order);
    if (!seen.insert(key).second) continue;
    double value = ReconstructEntry(model.core, model.factors, index.data());
    value += rng.Normal(0.0, noise_stddev);
    value = std::clamp(value, 0.0, 1.0);
    tensor.AddEntry(index.data(), value);
    ++emitted;
  }
  tensor.BuildModeIndex();
  return tensor;
}

}  // namespace ptucker
