#ifndef PTUCKER_DATA_NORMALIZE_H_
#define PTUCKER_DATA_NORMALIZE_H_

#include "tensor/sparse_tensor.h"

namespace ptucker {

/// The paper's preprocessing (§IV-A1): "we normalize all values of
/// real-world tensors to numbers between 0 to 1". Min-max normalization
/// over the observed values, with the inverse transform for mapping
/// predictions back to the original scale.
struct NormalizationParams {
  double min_value = 0.0;
  double max_value = 1.0;

  /// Original-scale -> [0, 1].
  double Forward(double value) const;
  /// [0, 1] -> original scale.
  double Inverse(double normalized) const;
};

/// Rescales the observed values of `tensor` in place to [0, 1] and
/// returns the parameters needed to invert the transform. Constant-valued
/// tensors map to 0.5 (any choice in [0,1] is valid; the midpoint keeps
/// Inverse exact).
NormalizationParams NormalizeValues(SparseTensor* tensor);

}  // namespace ptucker

#endif  // PTUCKER_DATA_NORMALIZE_H_
