#include "data/split.h"

#include <vector>

#include "util/logging.h"

namespace ptucker {

TrainTestSplit SplitObservedEntries(const SparseTensor& tensor,
                                    double test_fraction, Rng& rng) {
  PTUCKER_CHECK(test_fraction >= 0.0 && test_fraction < 1.0);
  const std::int64_t entries = tensor.nnz();
  const std::int64_t test_count =
      static_cast<std::int64_t>(test_fraction * static_cast<double>(entries));

  std::vector<bool> in_test(static_cast<std::size_t>(entries), false);
  for (std::int64_t id : rng.Sample(entries, test_count)) {
    in_test[static_cast<std::size_t>(id)] = true;
  }

  TrainTestSplit split{SparseTensor(tensor.dims()),
                       SparseTensor(tensor.dims())};
  split.train.Reserve(entries - test_count);
  split.test.Reserve(test_count);
  for (std::int64_t e = 0; e < entries; ++e) {
    auto& target = in_test[static_cast<std::size_t>(e)] ? split.test
                                                        : split.train;
    target.AddEntry(tensor.index(e), tensor.value(e));
  }
  split.train.BuildModeIndex();
  split.test.BuildModeIndex();
  return split;
}

}  // namespace ptucker
