#include "data/synthetic.h"

#include <cmath>
#include <unordered_set>

#include "tensor/index.h"
#include "util/logging.h"

namespace ptucker {

namespace {

// 64-bit mix for coordinate dedup keys.
std::uint64_t HashIndex(const std::int64_t* index, std::int64_t order) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::int64_t k = 0; k < order; ++k) {
    h ^= static_cast<std::uint64_t>(index[k]) + 0x9e3779b97f4a7c15ULL +
         (h << 6) + (h >> 2);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Draws distinct coordinates via `draw` until `nnz` are collected.
template <typename DrawFn>
SparseTensor FillDistinct(const std::vector<std::int64_t>& dims,
                          std::int64_t nnz, Rng& rng, DrawFn&& draw) {
  const std::int64_t total = NumElements(dims);
  PTUCKER_CHECK(nnz <= total);
  SparseTensor tensor(dims);
  tensor.Reserve(nnz);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(nnz * 2));
  std::vector<std::int64_t> index(dims.size());
  const std::int64_t order = static_cast<std::int64_t>(dims.size());
  std::int64_t emitted = 0;
  // Hash-based dedup has a vanishing collision probability at our sizes;
  // dense fallback below guards pathological fill ratios.
  std::int64_t attempts = 0;
  const std::int64_t max_attempts = nnz * 64 + 1024;
  while (emitted < nnz && attempts < max_attempts) {
    ++attempts;
    draw(index.data());
    const std::uint64_t key = HashIndex(index.data(), order);
    if (!seen.insert(key).second) continue;
    tensor.AddEntry(index.data(), rng.Uniform());
    ++emitted;
  }
  PTUCKER_CHECK(emitted == nnz);
  tensor.BuildModeIndex();
  return tensor;
}

}  // namespace

SparseTensor UniformSparseTensor(const std::vector<std::int64_t>& dims,
                                 std::int64_t nnz, Rng& rng) {
  return FillDistinct(dims, nnz, rng, [&](std::int64_t* index) {
    for (std::size_t k = 0; k < dims.size(); ++k) {
      index[k] = static_cast<std::int64_t>(
          rng.UniformInt(static_cast<std::uint64_t>(dims[k])));
    }
  });
}

SparseTensor UniformCubicTensor(std::int64_t order, std::int64_t dim,
                                std::int64_t nnz, Rng& rng) {
  return UniformSparseTensor(
      std::vector<std::int64_t>(static_cast<std::size_t>(order), dim), nnz,
      rng);
}

SparseTensor SkewedSparseTensor(const std::vector<std::int64_t>& dims,
                                std::int64_t nnz, double skew, Rng& rng) {
  PTUCKER_CHECK(skew >= 0.0);
  // Per-mode cumulative Zipf(skew) tables for inverse-CDF sampling.
  std::vector<std::vector<double>> cdf(dims.size());
  for (std::size_t k = 0; k < dims.size(); ++k) {
    auto& table = cdf[k];
    table.resize(static_cast<std::size_t>(dims[k]));
    double total = 0.0;
    for (std::int64_t i = 0; i < dims[k]; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), skew);
      table[static_cast<std::size_t>(i)] = total;
    }
    for (auto& v : table) v /= total;
  }
  return FillDistinct(dims, nnz, rng, [&](std::int64_t* index) {
    for (std::size_t k = 0; k < dims.size(); ++k) {
      const double u = rng.Uniform();
      const auto& table = cdf[k];
      const auto it = std::lower_bound(table.begin(), table.end(), u);
      index[k] = static_cast<std::int64_t>(it - table.begin());
      if (index[k] >= dims[k]) index[k] = dims[k] - 1;
    }
  });
}

}  // namespace ptucker
