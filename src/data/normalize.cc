#include "data/normalize.h"

#include <algorithm>

#include "util/logging.h"

namespace ptucker {

double NormalizationParams::Forward(double value) const {
  if (max_value == min_value) return 0.5;
  return (value - min_value) / (max_value - min_value);
}

double NormalizationParams::Inverse(double normalized) const {
  if (max_value == min_value) return min_value;
  return min_value + normalized * (max_value - min_value);
}

NormalizationParams NormalizeValues(SparseTensor* tensor) {
  PTUCKER_CHECK(tensor != nullptr);
  NormalizationParams params;
  if (tensor->nnz() == 0) return params;

  params.min_value = tensor->value(0);
  params.max_value = tensor->value(0);
  for (std::int64_t e = 1; e < tensor->nnz(); ++e) {
    params.min_value = std::min(params.min_value, tensor->value(e));
    params.max_value = std::max(params.max_value, tensor->value(e));
  }
  for (std::int64_t e = 0; e < tensor->nnz(); ++e) {
    tensor->set_value(e, params.Forward(tensor->value(e)));
  }
  return params;
}

}  // namespace ptucker
