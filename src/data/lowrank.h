#ifndef PTUCKER_DATA_LOWRANK_H_
#define PTUCKER_DATA_LOWRANK_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "tensor/dense_tensor.h"
#include "tensor/sparse_tensor.h"
#include "util/random.h"

namespace ptucker {

/// Ground-truth Tucker model used to synthesize completion workloads.
struct PlantedTucker {
  DenseTensor core;             // J1 x … x JN
  std::vector<Matrix> factors;  // A(k) ∈ R^{Ik×Jk}
};

/// Draws a random Tucker model with Uniform[0,1) core and factors.
PlantedTucker RandomTuckerModel(const std::vector<std::int64_t>& dims,
                                const std::vector<std::int64_t>& core_dims,
                                Rng& rng);

/// Samples `nnz` distinct coordinates and sets each observed value to the
/// model's reconstruction (Eq. 4) plus N(0, noise_stddev) noise.
///
/// Tensors built this way have genuinely low multilinear rank, so
/// accuracy experiments (Fig. 11) show the observed-entry methods
/// (P-Tucker, wOpt) beating zero-imputing baselines the way the paper
/// reports. Values are clamped to [0, 1] mimicking the paper's
/// normalization of real data. The mode index is built.
SparseTensor SampleFromModel(const PlantedTucker& model, std::int64_t nnz,
                             double noise_stddev, Rng& rng);

}  // namespace ptucker

#endif  // PTUCKER_DATA_LOWRANK_H_
