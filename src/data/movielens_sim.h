#ifndef PTUCKER_DATA_MOVIELENS_SIM_H_
#define PTUCKER_DATA_MOVIELENS_SIM_H_

#include <cstdint>
#include <vector>

#include "tensor/sparse_tensor.h"
#include "util/random.h"

namespace ptucker {

/// Simulator of the paper's 4-way MovieLens tensor
/// (user, movie, year, hour; rating), with planted structure so the §V
/// discovery experiments (Tables V and VI) have a known ground truth.
///
/// The real MovieLens 20M tensor is not available offline; this generator
/// reproduces the properties the paper's claims rest on:
///  * ratings are a low-rank interaction: each movie belongs to one of
///    `num_genres` genres, each user has a genre-preference vector, and
///    each (year, hour) pair modulates specific genres ("Drama is
///    preferred at 8am/4pm/..."-style relations);
///  * popularity is Zipf-skewed over users and movies, so slice sizes are
///    imbalanced (what makes dynamic scheduling matter in §IV-D);
///  * values are normalized to [0, 1] like the paper's preprocessing.
struct MovieLensConfig {
  std::int64_t num_users = 600;
  std::int64_t num_movies = 300;
  std::int64_t num_years = 21;
  std::int64_t num_hours = 24;
  std::int64_t num_genres = 3;
  std::int64_t nnz = 20000;
  double noise_stddev = 0.05;
  double popularity_skew = 1.1;
  std::uint64_t seed = 42;
};

struct MovieLensData {
  SparseTensor tensor;  // (user, movie, year, hour) with mode index built
  /// Ground-truth genre of each movie (cluster labels for Table V).
  std::vector<std::int64_t> movie_genre;
  /// Ground-truth genre preference of each user.
  std::vector<std::int64_t> user_genre;
  /// genre_time_boost[g * num_hours + h]: planted (genre, hour) affinity
  /// (the Table VI relations; the top boosts are the recoverable ones).
  std::vector<double> genre_hour_boost;
};

/// Generates the simulated tensor plus its ground truth.
MovieLensData SimulateMovieLens(const MovieLensConfig& config);

}  // namespace ptucker

#endif  // PTUCKER_DATA_MOVIELENS_SIM_H_
