#ifndef PTUCKER_DATA_MOVIELENS_SIM_H_
#define PTUCKER_DATA_MOVIELENS_SIM_H_

#include <cstdint>
#include <vector>

#include "stream/event_log.h"
#include "tensor/sparse_tensor.h"
#include "util/random.h"

namespace ptucker {

/// Simulator of the paper's 4-way MovieLens tensor
/// (user, movie, year, hour; rating), with planted structure so the §V
/// discovery experiments (Tables V and VI) have a known ground truth.
///
/// The real MovieLens 20M tensor is not available offline; this generator
/// reproduces the properties the paper's claims rest on:
///  * ratings are a low-rank interaction: each movie belongs to one of
///    `num_genres` genres, each user has a genre-preference vector, and
///    each (year, hour) pair modulates specific genres ("Drama is
///    preferred at 8am/4pm/..."-style relations);
///  * popularity is Zipf-skewed over users and movies, so slice sizes are
///    imbalanced (what makes dynamic scheduling matter in §IV-D);
///  * values are normalized to [0, 1] like the paper's preprocessing.
struct MovieLensConfig {
  std::int64_t num_users = 600;
  std::int64_t num_movies = 300;
  std::int64_t num_years = 21;
  std::int64_t num_hours = 24;
  std::int64_t num_genres = 3;
  std::int64_t nnz = 20000;
  double noise_stddev = 0.05;
  double popularity_skew = 1.1;
  std::uint64_t seed = 42;
};

struct MovieLensData {
  SparseTensor tensor;  // (user, movie, year, hour) with mode index built
  /// Ground-truth genre of each movie (cluster labels for Table V).
  std::vector<std::int64_t> movie_genre;
  /// Ground-truth genre preference of each user.
  std::vector<std::int64_t> user_genre;
  /// genre_time_boost[g * num_hours + h]: planted (genre, hour) affinity
  /// (the Table VI relations; the top boosts are the recoverable ones).
  std::vector<double> genre_hour_boost;
};

/// Generates the simulated tensor plus its ground truth.
MovieLensData SimulateMovieLens(const MovieLensConfig& config);

/// Configures the timestamped event stream laid on top of a simulated
/// MovieLens tensor: an initial Ω (the `base` simulation) followed by
/// `num_events` append/update/delete mutations drawn from the same
/// planted-structure rating model.
struct MovieLensStreamConfig {
  MovieLensConfig base;               ///< the initial tensor + ground truth
  std::int64_t num_events = 5000;     ///< mutations after the initial load
  double update_fraction = 0.2;       ///< P(event re-rates a live entry)
  double delete_fraction = 0.1;       ///< P(event removes a live entry)
  std::int64_t start_timestamp = 0;   ///< timestamp of the stream's epoch
  std::int64_t max_timestamp_step = 1000;  ///< max gap between events
  std::uint64_t seed = 43;            ///< event-stream RNG (independent of
                                      ///< base.seed)
};

/// A simulated tensor plus the event stream that mutates it.
struct MovieLensStream {
  MovieLensData initial;            ///< the tensor at the stream's epoch
  std::vector<StreamEvent> events;  ///< timestamped mutations, time-ordered
};

/// Generates the initial tensor via SimulateMovieLens(config.base), then
/// `config.num_events` mutations: updates re-rate and deletes remove a
/// uniformly-drawn live entry; appends land on a fresh unobserved
/// coordinate (Zipf-skewed like the initial load) with a rating from the
/// same planted model. When no live entry exists the event falls back to
/// an append. Timestamps start at `start_timestamp` and advance by a
/// uniform step in [0, max_timestamp_step], so they are non-decreasing.
/// Deterministic: the same config yields a byte-identical event log.
MovieLensStream SimulateMovieLensStream(const MovieLensStreamConfig& config);

}  // namespace ptucker

#endif  // PTUCKER_DATA_MOVIELENS_SIM_H_
