#ifndef PTUCKER_DATA_SYNTHETIC_H_
#define PTUCKER_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "tensor/sparse_tensor.h"
#include "util/random.h"

namespace ptucker {

/// Synthetic tensors matching the paper's data-scalability setup
/// (§IV-B1): "random tensors of size I1=I2=…=IN with real-valued entries
/// between 0 and 1", varying order, dimensionality, |Ω| and rank.

/// `nnz` distinct uniform-random coordinates with Uniform[0,1) values.
/// The mode index is already built on the returned tensor.
SparseTensor UniformSparseTensor(const std::vector<std::int64_t>& dims,
                                 std::int64_t nnz, Rng& rng);

/// Cubic helper: dims = {dim, dim, …} (order times).
SparseTensor UniformCubicTensor(std::int64_t order, std::int64_t dim,
                                std::int64_t nnz, Rng& rng);

/// Like UniformSparseTensor but with a Zipf-skewed marginal on each mode
/// (exponent `skew`), so slice sizes |Ω(n,in)| are imbalanced. Real rating
/// tensors look like this, and it is what makes the paper's dynamic
/// scheduling matter (§IV-D).
SparseTensor SkewedSparseTensor(const std::vector<std::int64_t>& dims,
                                std::int64_t nnz, double skew, Rng& rng);

}  // namespace ptucker

#endif  // PTUCKER_DATA_SYNTHETIC_H_
