#ifndef PTUCKER_UTIL_FORMAT_H_
#define PTUCKER_UTIL_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ptucker {

/// Human-readable byte count, e.g. "1.5 MB". Benchmarks print the
/// intermediate-memory series of Figs. 8 and 10 with this.
std::string FormatBytes(std::int64_t bytes);

/// Fixed-precision double, e.g. FormatDouble(3.14159, 2) == "3.14".
std::string FormatDouble(double value, int precision = 4);

/// Joins items with a separator: JoinInts({1,2,3}, "x") == "1x2x3".
/// Used to print tensor shapes the way the paper writes them.
std::string JoinInts(const std::vector<std::int64_t>& items,
                     const std::string& separator);

/// Plain ASCII table writer used by the benchmark harness so every
/// experiment prints the same rows/series layout the paper reports.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders the table with aligned columns.
  std::string ToString() const;

  /// Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ptucker

#endif  // PTUCKER_UTIL_FORMAT_H_
