#include "util/logging.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace ptucker {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

std::mutex& LogMutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}

}  // namespace

Logger& Logger::Get() {
  static Logger* logger = new Logger;
  return *logger;
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  std::lock_guard<std::mutex> lock(LogMutex());
  std::fprintf(stderr, "[ptucker %s] %s\n", LevelName(level),
               message.c_str());
}

namespace internal_logging {

void CheckFailed(const char* expression, const char* file, int line) {
  std::fprintf(stderr, "[ptucker FATAL] CHECK failed: %s at %s:%d\n",
               expression, file, line);
  std::abort();
}

}  // namespace internal_logging

}  // namespace ptucker
