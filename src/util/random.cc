#include "util/random.h"

#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace ptucker {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t RotL(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = RotL(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 top bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform();
}

std::uint64_t Rng::UniformInt(std::uint64_t n) {
  PTUCKER_CHECK(n > 0);
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t value = Next();
  while (value >= limit) value = Next();
  return value % n;
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  constexpr double kPi = 3.14159265358979323846;
  const double angle = 2.0 * kPi * u2;
  spare_normal_ = radius * std::sin(angle);
  has_spare_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

std::vector<std::int64_t> Rng::Sample(std::int64_t n, std::int64_t k) {
  PTUCKER_CHECK(k >= 0 && k <= n);
  // Floyd's algorithm: O(k) expected insertions.
  std::unordered_set<std::int64_t> chosen;
  std::vector<std::int64_t> result;
  result.reserve(static_cast<std::size_t>(k));
  for (std::int64_t j = n - k; j < n; ++j) {
    std::int64_t candidate =
        static_cast<std::int64_t>(UniformInt(static_cast<std::uint64_t>(j + 1)));
    if (chosen.count(candidate) != 0) candidate = j;
    chosen.insert(candidate);
    result.push_back(candidate);
  }
  Shuffle(result);
  return result;
}

}  // namespace ptucker
