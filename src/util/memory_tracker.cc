#include "util/memory_tracker.h"

#include "util/format.h"
#include "util/logging.h"

namespace ptucker {

void MemoryTracker::Charge(std::int64_t bytes) {
  PTUCKER_CHECK(bytes >= 0);
  const std::int64_t now =
      current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (budget_bytes_ > 0 && now > budget_bytes_) {
    current_.fetch_sub(bytes, std::memory_order_relaxed);
    throw OutOfMemoryBudget(
        "intermediate-memory budget exceeded: need " + FormatBytes(now) +
            ", budget " + FormatBytes(budget_bytes_),
        now, budget_bytes_);
  }
  // Update the high-water mark. Racy CAS loop keeps it monotone.
  std::int64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

void MemoryTracker::Release(std::int64_t bytes) {
  PTUCKER_CHECK(bytes >= 0);
  current_.fetch_sub(bytes, std::memory_order_relaxed);
}

void MemoryTracker::Reset() {
  current_.store(0, std::memory_order_relaxed);
  peak_.store(0, std::memory_order_relaxed);
}

}  // namespace ptucker
