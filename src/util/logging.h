#ifndef PTUCKER_UTIL_LOGGING_H_
#define PTUCKER_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace ptucker {

/// Severity levels for the library logger, ordered by importance.
enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Minimal thread-safe logger used across the library.
///
/// The library logs progress (per-iteration errors, truncation decisions,
/// O.O.M. events) through this sink so applications can silence or capture
/// it. The default sink writes to stderr.
class Logger {
 public:
  /// Returns the process-wide logger.
  static Logger& Get();

  /// Sets the minimum level that is actually emitted.
  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Emits `message` at `level` (thread-safe).
  void Log(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarning;
};

namespace internal_logging {

/// Stream-style helper: accumulates a message and emits it on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Get().Log(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

}  // namespace ptucker

#define PTUCKER_LOG(level) \
  ::ptucker::internal_logging::LogMessage(::ptucker::LogLevel::level)

/// Checks an invariant in both debug and release builds; aborts with a
/// diagnostic on failure. Used for programmer errors, not data errors.
#define PTUCKER_CHECK(condition)                                        \
  do {                                                                  \
    if (!(condition)) {                                                 \
      ::ptucker::internal_logging::CheckFailed(#condition, __FILE__,    \
                                               __LINE__);               \
    }                                                                   \
  } while (false)

namespace ptucker::internal_logging {
[[noreturn]] void CheckFailed(const char* expression, const char* file,
                              int line);
}  // namespace ptucker::internal_logging

#endif  // PTUCKER_UTIL_LOGGING_H_
