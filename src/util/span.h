#ifndef PTUCKER_UTIL_SPAN_H_
#define PTUCKER_UTIL_SPAN_H_

#include <cstddef>

namespace ptucker {

/// Minimal C++17 stand-in for std::span (C++20): a non-owning view over a
/// contiguous range. Covers the subset the codebase needs — iteration,
/// indexing, size/empty.
template <typename T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(T* data, std::size_t size) : data_(data), size_(size) {}

  constexpr T* data() const { return data_; }
  constexpr std::size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }

  constexpr T& operator[](std::size_t i) const { return data_[i]; }
  constexpr T& front() const { return data_[0]; }
  constexpr T& back() const { return data_[size_ - 1]; }

  constexpr T* begin() const { return data_; }
  constexpr T* end() const { return data_ + size_; }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace ptucker

#endif  // PTUCKER_UTIL_SPAN_H_
