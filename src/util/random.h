#ifndef PTUCKER_UTIL_RANDOM_H_
#define PTUCKER_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace ptucker {

/// Deterministic pseudo-random generator (xoshiro256++).
///
/// The paper initializes factor matrices and the core tensor "with random
/// real values between 0 and 1" and builds synthetic tensors from uniform
/// entries; every stochastic step in this library draws from this engine so
/// experiments are reproducible from a single seed.
class Rng {
 public:
  /// Seeds the engine with splitmix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t UniformInt(std::uint64_t n);

  /// Standard normal via Box-Muller.
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformInt(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Draws `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::int64_t> Sample(std::int64_t n, std::int64_t k);

 private:
  std::uint64_t state_[4];
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace ptucker

#endif  // PTUCKER_UTIL_RANDOM_H_
