/// \file
/// \brief Deterministic parallel reductions: scalar/vector sums whose
/// per-thread partials are combined sequentially in thread order (unlike
/// OpenMP `reduction`, which combines in completion order). The blocked
/// variants accept workers that buffer tiles of consecutive indices; the
/// plain variants are thin wrappers over them with a no-op Flush, so the
/// two families share one partition/combine implementation by
/// construction.
#ifndef PTUCKER_UTIL_PARALLEL_H_
#define PTUCKER_UTIL_PARALLEL_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace ptucker {

/// DeterministicParallelSum for workers that buffer consecutive indices
/// into tiles (e.g. to feed DeltaEngine batch kernels). `make_worker()`
/// runs once per thread and returns an object exposing
///   `void operator()(std::int64_t i, double* local)` and
///   `void Flush(double* local)`;
/// the worker may defer accumulating into `local` until Flush, which is
/// called exactly once after the thread's static contiguous index block
/// is exhausted (so a partial trailing tile is never dropped).
///
/// Each thread accumulates its `schedule(static)` contiguous block in
/// index order and the per-thread partials are combined sequentially in
/// thread order — run-to-run deterministic for a fixed thread count,
/// unlike a plain OpenMP `reduction(+:…)`, which combines the private
/// partials in thread *completion* order. Because static scheduling
/// hands each thread one contiguous, increasing index range, a worker
/// that buffers consecutive indices and accumulates tile results in
/// index order produces a total that is bit-identical to the per-index
/// flow, for any tile width.
template <typename WorkerFactory>
double DeterministicParallelBlockedSum(std::int64_t n,
                                       WorkerFactory&& make_worker) {
#ifdef _OPENMP
  std::vector<double> partials(
      static_cast<std::size_t>(omp_get_max_threads()), 0.0);
#pragma omp parallel
  {
    double local = 0.0;
    auto worker = make_worker();
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < n; ++i) worker(i, &local);
    worker.Flush(&local);
    partials[static_cast<std::size_t>(omp_get_thread_num())] = local;
  }
  double total = 0.0;
  for (const double partial : partials) total += partial;
  return total;
#else
  double total = 0.0;
  auto worker = make_worker();
  for (std::int64_t i = 0; i < n; ++i) worker(i, &total);
  worker.Flush(&total);
  return total;
#endif
}

/// Vector-valued counterpart of DeterministicParallelBlockedSum: the
/// same worker contract (`operator()(i, double* local)` + one
/// `Flush(local)` per thread after its block), with `local` pointing at
/// a width-sized accumulator, and the same partition/combine guarantees.
template <typename WorkerFactory>
void DeterministicParallelBlockedVectorSum(std::int64_t n, std::size_t width,
                                           double* out,
                                           WorkerFactory&& make_worker) {
#ifdef _OPENMP
  std::vector<std::vector<double>> partials(
      static_cast<std::size_t>(omp_get_max_threads()));
#pragma omp parallel
  {
    auto& local = partials[static_cast<std::size_t>(omp_get_thread_num())];
    local.assign(width, 0.0);
    auto worker = make_worker();
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < n; ++i) worker(i, local.data());
    worker.Flush(local.data());
  }
  for (std::size_t j = 0; j < width; ++j) out[j] = 0.0;
  for (const auto& local : partials) {
    if (local.empty()) continue;  // thread was not in the team
    for (std::size_t j = 0; j < width; ++j) out[j] += local[j];
  }
#else
  for (std::size_t j = 0; j < width; ++j) out[j] = 0.0;
  auto worker = make_worker();
  for (std::int64_t i = 0; i < n; ++i) worker(i, out);
  worker.Flush(out);
#endif
}

namespace internal {

/// Adapts a per-index scalar term to the blocked-worker contract.
template <typename TermFn>
struct TermWorker {
  TermFn& term;
  void operator()(std::int64_t i, double* local) { *local += term(i); }
  void Flush(double* /*local*/) {}
};

/// Adapts a per-index vector worker (no Flush) to the blocked contract.
template <typename Worker>
struct NoFlushWorker {
  Worker worker;
  void operator()(std::int64_t i, double* local) { worker(i, local); }
  void Flush(double* /*local*/) {}
};

}  // namespace internal

/// Sums `term(i)` for i in [0, n) in parallel with a run-to-run
/// deterministic result for a fixed thread count (see
/// DeterministicParallelBlockedSum, which this wraps with a no-op
/// Flush — guaranteeing the per-index and blocked flows share one
/// partition/combine implementation).
template <typename TermFn>
double DeterministicParallelSum(std::int64_t n, TermFn&& term) {
  return DeterministicParallelBlockedSum(
      n, [&term] { return internal::TermWorker<TermFn>{term}; });
}

/// Vector-valued counterpart of DeterministicParallelSum: fills
/// `out[0..width)` with Σ_i contribution(i). `make_worker()` runs once
/// per thread and returns a callable `worker(i, double* local)` that may
/// own per-thread scratch. Wraps DeterministicParallelBlockedVectorSum
/// with a no-op Flush — same partition/combine guarantees, no
/// `omp critical` or atomics anywhere on a merge path.
template <typename WorkerFactory>
void DeterministicParallelVectorSum(std::int64_t n, std::size_t width,
                                    double* out,
                                    WorkerFactory&& make_worker) {
  DeterministicParallelBlockedVectorSum(n, width, out, [&make_worker] {
    return internal::NoFlushWorker<decltype(make_worker())>{make_worker()};
  });
}

}  // namespace ptucker

#endif  // PTUCKER_UTIL_PARALLEL_H_
