/// \file
/// \brief Deterministic parallel reductions over a fixed lane partition:
/// the index range [0, n) is split into kReductionLanes contiguous lanes
/// (independent of the thread count), each lane is accumulated in index
/// order, and the per-lane partials are combined sequentially in lane
/// order. Unlike OpenMP `reduction` (completion order) or a per-thread
/// partition (thread-count dependent), the result is bit-identical for
/// every thread count — and the lane partials are a distribution
/// boundary: a cluster worker that owns a contiguous lane subrange
/// computes exactly the partials the single-process fold consumes, so a
/// coordinator that gathers all lanes and folds them in lane order
/// reproduces the one-process sum bit for bit (src/distributed/proc/).
/// The blocked variants accept workers that buffer tiles of consecutive
/// indices; the plain variants are thin wrappers over them with a no-op
/// Flush, so the two families share one partition/combine implementation
/// by construction.
#ifndef PTUCKER_UTIL_PARALLEL_H_
#define PTUCKER_UTIL_PARALLEL_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ptucker {

/// Number of fixed reduction lanes Λ. Every deterministic sum splits its
/// index range into this many contiguous lanes regardless of the thread
/// count, so results are invariant to OMP_NUM_THREADS and a distributed
/// run can assign contiguous lane subranges to workers (workers must be
/// <= Λ). 64 keeps the fold cost trivial while giving plenty of
/// parallel slack on any realistic core count.
inline constexpr std::int64_t kReductionLanes = 64;

/// First index of `lane` in the fixed Λ-way partition of [0, n): the
/// same balanced `n·l/Λ` boundary formula as PartitionRowsBlock, so
/// lanes differ in size by at most one index. Lane Λ maps to n (the
/// exclusive end of the last lane).
inline constexpr std::int64_t ReductionLaneBegin(std::int64_t n,
                                                 std::int64_t lane) {
  return n * lane / kReductionLanes;
}

/// Fills `lane_sums[0 .. lane_end-lane_begin)` with the per-lane partial
/// sums of lanes [lane_begin, lane_end): lane l covers indices
/// [ReductionLaneBegin(n, l), ReductionLaneBegin(n, l+1)), accumulated in
/// index order through a fresh worker (the DeterministicParallelBlockedSum
/// contract: `operator()(i, double*)` plus one trailing `Flush`). Lanes
/// are independent, so the loop parallelizes freely; each lane's partial
/// depends only on (n, lane, the summed terms) — never on the thread
/// count or on which process computes it. This is the primitive the
/// distributed solver ships across the wire.
template <typename WorkerFactory>
void DeterministicParallelLaneSums(std::int64_t n, std::int64_t lane_begin,
                                   std::int64_t lane_end, double* lane_sums,
                                   WorkerFactory&& make_worker) {
  const std::int64_t lanes = lane_end - lane_begin;
#pragma omp parallel for schedule(static)
  for (std::int64_t l = 0; l < lanes; ++l) {
    const std::int64_t lane = lane_begin + l;
    double local = 0.0;
    auto worker = make_worker();
    const std::int64_t begin = ReductionLaneBegin(n, lane);
    const std::int64_t end = ReductionLaneBegin(n, lane + 1);
    for (std::int64_t i = begin; i < end; ++i) worker(i, &local);
    worker.Flush(&local);
    lane_sums[static_cast<std::size_t>(l)] = local;
  }
}

/// Vector-valued counterpart of DeterministicParallelLaneSums: lane l's
/// width-sized partial lands at `lane_sums + (l - lane_begin) * width`,
/// zero-initialized and accumulated in index order.
template <typename WorkerFactory>
void DeterministicParallelVectorLaneSums(std::int64_t n, std::size_t width,
                                         std::int64_t lane_begin,
                                         std::int64_t lane_end,
                                         double* lane_sums,
                                         WorkerFactory&& make_worker) {
  const std::int64_t lanes = lane_end - lane_begin;
#pragma omp parallel for schedule(static)
  for (std::int64_t l = 0; l < lanes; ++l) {
    const std::int64_t lane = lane_begin + l;
    double* local = lane_sums + static_cast<std::size_t>(l) * width;
    for (std::size_t j = 0; j < width; ++j) local[j] = 0.0;
    auto worker = make_worker();
    const std::int64_t begin = ReductionLaneBegin(n, lane);
    const std::int64_t end = ReductionLaneBegin(n, lane + 1);
    for (std::int64_t i = begin; i < end; ++i) worker(i, local);
    worker.Flush(local);
  }
}

/// Sequential lane-order fold of scalar lane partials — THE combine step.
/// Single-process sums and the distributed coordinator both reduce
/// through this exact loop (lane 0 first, ascending), which is what makes
/// an N-process gather bit-identical to the local sum.
inline double FoldLaneSums(const double* lane_sums, std::int64_t lanes) {
  double total = 0.0;
  for (std::int64_t l = 0; l < lanes; ++l) {
    total += lane_sums[static_cast<std::size_t>(l)];
  }
  return total;
}

/// Vector counterpart of FoldLaneSums: out[j] = Σ_l lane_sums[l][j],
/// accumulated lane 0 first for every component.
inline void FoldVectorLaneSums(const double* lane_sums, std::int64_t lanes,
                               std::size_t width, double* out) {
  for (std::size_t j = 0; j < width; ++j) out[j] = 0.0;
  for (std::int64_t l = 0; l < lanes; ++l) {
    const double* local = lane_sums + static_cast<std::size_t>(l) * width;
    for (std::size_t j = 0; j < width; ++j) out[j] += local[j];
  }
}

/// DeterministicParallelSum for workers that buffer consecutive indices
/// into tiles (e.g. to feed DeltaEngine batch kernels). `make_worker()`
/// runs once per lane and returns an object exposing
///   `void operator()(std::int64_t i, double* local)` and
///   `void Flush(double* local)`;
/// the worker may defer accumulating into `local` until Flush, which is
/// called exactly once after the lane's contiguous index range is
/// exhausted (so a partial trailing tile is never dropped). Because each
/// lane is a contiguous, increasing index range, a worker that buffers
/// consecutive indices and accumulates tile results in index order
/// produces a total that is bit-identical to the per-index flow, for any
/// tile width — and, via the fixed lane partition, for any thread count.
template <typename WorkerFactory>
double DeterministicParallelBlockedSum(std::int64_t n,
                                       WorkerFactory&& make_worker) {
  double lane_sums[kReductionLanes];
  DeterministicParallelLaneSums(n, 0, kReductionLanes, lane_sums,
                                std::forward<WorkerFactory>(make_worker));
  return FoldLaneSums(lane_sums, kReductionLanes);
}

/// Vector-valued counterpart of DeterministicParallelBlockedSum: the
/// same worker contract (`operator()(i, double* local)` + one
/// `Flush(local)` per lane), with `local` pointing at a width-sized
/// accumulator, and the same lane partition/combine guarantees.
template <typename WorkerFactory>
void DeterministicParallelBlockedVectorSum(std::int64_t n, std::size_t width,
                                           double* out,
                                           WorkerFactory&& make_worker) {
  std::vector<double> lane_sums(static_cast<std::size_t>(kReductionLanes) *
                                width);
  DeterministicParallelVectorLaneSums(
      n, width, 0, kReductionLanes, lane_sums.data(),
      std::forward<WorkerFactory>(make_worker));
  FoldVectorLaneSums(lane_sums.data(), kReductionLanes, width, out);
}

namespace internal {

/// Adapts a per-index scalar term to the blocked-worker contract.
template <typename TermFn>
struct TermWorker {
  TermFn& term;
  void operator()(std::int64_t i, double* local) { *local += term(i); }
  void Flush(double* /*local*/) {}
};

/// Adapts a per-index vector worker (no Flush) to the blocked contract.
template <typename Worker>
struct NoFlushWorker {
  Worker worker;
  void operator()(std::int64_t i, double* local) { worker(i, local); }
  void Flush(double* /*local*/) {}
};

}  // namespace internal

/// Sums `term(i)` for i in [0, n) in parallel with a result that is
/// bit-identical at every thread count (see
/// DeterministicParallelBlockedSum, which this wraps with a no-op
/// Flush — guaranteeing the per-index and blocked flows share one
/// partition/combine implementation).
template <typename TermFn>
double DeterministicParallelSum(std::int64_t n, TermFn&& term) {
  return DeterministicParallelBlockedSum(
      n, [&term] { return internal::TermWorker<TermFn>{term}; });
}

/// Vector-valued counterpart of DeterministicParallelSum: fills
/// `out[0..width)` with Σ_i contribution(i). `make_worker()` runs once
/// per lane and returns a callable `worker(i, double* local)` that may
/// own per-lane scratch. Wraps DeterministicParallelBlockedVectorSum
/// with a no-op Flush — same partition/combine guarantees, no
/// `omp critical` or atomics anywhere on a merge path.
template <typename WorkerFactory>
void DeterministicParallelVectorSum(std::int64_t n, std::size_t width,
                                    double* out,
                                    WorkerFactory&& make_worker) {
  DeterministicParallelBlockedVectorSum(n, width, out, [&make_worker] {
    return internal::NoFlushWorker<decltype(make_worker())>{make_worker()};
  });
}

}  // namespace ptucker

#endif  // PTUCKER_UTIL_PARALLEL_H_
