#ifndef PTUCKER_UTIL_PARALLEL_H_
#define PTUCKER_UTIL_PARALLEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace ptucker {

/// Sums `term(i)` for i in [0, n) in parallel with a run-to-run
/// deterministic result for a fixed thread count: each thread accumulates
/// its static contiguous block in index order, and the per-thread partials
/// are combined sequentially in thread order.
///
/// A plain `reduction(+ : total)` is NOT deterministic — OpenMP combines
/// the private partials in thread *completion* order, so floating-point
/// sums differ between otherwise identical runs.
template <typename TermFn>
double DeterministicParallelSum(std::int64_t n, TermFn&& term) {
#ifdef _OPENMP
  std::vector<double> partials(
      static_cast<std::size_t>(omp_get_max_threads()), 0.0);
#pragma omp parallel
  {
    double local = 0.0;
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < n; ++i) local += term(i);
    partials[static_cast<std::size_t>(omp_get_thread_num())] = local;
  }
  double total = 0.0;
  for (const double partial : partials) total += partial;
  return total;
#else
  double total = 0.0;
  for (std::int64_t i = 0; i < n; ++i) total += term(i);
  return total;
#endif
}

/// Vector-valued counterpart of DeterministicParallelSum: fills
/// `out[0..width)` with Σ_i contribution(i), where each i adds into a
/// width-sized accumulator. `make_worker()` runs once per thread and
/// returns a callable `worker(i, double* local)` that may own per-thread
/// scratch; workers accumulate their static contiguous index block into
/// `local`, and the per-thread partials are combined sequentially in
/// thread order — run-to-run deterministic for a fixed thread count,
/// unlike an `omp critical` merge (completion order) or atomics.
template <typename WorkerFactory>
void DeterministicParallelVectorSum(std::int64_t n, std::size_t width,
                                    double* out,
                                    WorkerFactory&& make_worker) {
#ifdef _OPENMP
  std::vector<std::vector<double>> partials(
      static_cast<std::size_t>(omp_get_max_threads()));
#pragma omp parallel
  {
    auto& local = partials[static_cast<std::size_t>(omp_get_thread_num())];
    local.assign(width, 0.0);
    auto worker = make_worker();
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < n; ++i) worker(i, local.data());
  }
  for (std::size_t j = 0; j < width; ++j) out[j] = 0.0;
  for (const auto& local : partials) {
    if (local.empty()) continue;  // thread was not in the team
    for (std::size_t j = 0; j < width; ++j) out[j] += local[j];
  }
#else
  for (std::size_t j = 0; j < width; ++j) out[j] = 0.0;
  auto worker = make_worker();
  for (std::int64_t i = 0; i < n; ++i) worker(i, out);
#endif
}

}  // namespace ptucker

#endif  // PTUCKER_UTIL_PARALLEL_H_
