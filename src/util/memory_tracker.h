#ifndef PTUCKER_UTIL_MEMORY_TRACKER_H_
#define PTUCKER_UTIL_MEMORY_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace ptucker {

/// Thrown when a solver would exceed the configured intermediate-memory
/// budget. This reproduces the paper's "O.O.M." outcomes (Figs. 6, 7, 11)
/// deterministically instead of crashing the process.
class OutOfMemoryBudget : public std::runtime_error {
 public:
  OutOfMemoryBudget(const std::string& what, std::int64_t requested,
                    std::int64_t budget)
      : std::runtime_error(what), requested_bytes(requested),
        budget_bytes(budget) {}

  std::int64_t requested_bytes;
  std::int64_t budget_bytes;
};

/// Accounts for *intermediate data* as the paper defines it (Definition 7):
/// memory required while updating factor matrices, excluding the input
/// tensor, the core tensor, and the factor matrices themselves.
///
/// Every solver charges its scratch allocations here, which gives the
/// benchmarks the "required memory" series of Figs. 8 and 10 and lets
/// Tucker-wOpt / HOOI hit a reproducible O.O.M. at a configurable budget.
///
/// Thread-safe; charging is lock-free.
class MemoryTracker {
 public:
  /// `budget_bytes` <= 0 means unlimited.
  explicit MemoryTracker(std::int64_t budget_bytes = 0)
      : budget_bytes_(budget_bytes) {}

  /// Charges `bytes` of intermediate data. Throws OutOfMemoryBudget if the
  /// running total would exceed the budget.
  void Charge(std::int64_t bytes);

  /// Releases `bytes` previously charged.
  void Release(std::int64_t bytes);

  /// Current outstanding intermediate bytes.
  std::int64_t current_bytes() const {
    return current_.load(std::memory_order_relaxed);
  }

  /// High-water mark of intermediate bytes.
  std::int64_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }

  std::int64_t budget_bytes() const { return budget_bytes_; }
  void set_budget_bytes(std::int64_t budget) { budget_bytes_ = budget; }

  /// Resets counters (budget unchanged).
  void Reset();

 private:
  std::int64_t budget_bytes_;
  std::atomic<std::int64_t> current_{0};
  std::atomic<std::int64_t> peak_{0};
};

/// RAII charge: charges on construction, releases on destruction.
class ScopedCharge {
 public:
  ScopedCharge(MemoryTracker* tracker, std::int64_t bytes)
      : tracker_(tracker), bytes_(bytes) {
    if (tracker_ != nullptr) tracker_->Charge(bytes_);
  }
  ~ScopedCharge() {
    if (tracker_ != nullptr) tracker_->Release(bytes_);
  }

  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;

 private:
  MemoryTracker* tracker_;
  std::int64_t bytes_;
};

}  // namespace ptucker

#endif  // PTUCKER_UTIL_MEMORY_TRACKER_H_
