#include "util/format.h"

#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace ptucker {

std::string FormatBytes(std::int64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buffer[64];
  if (unit == 0) {
    std::snprintf(buffer, sizeof(buffer), "%lld B",
                  static_cast<long long>(bytes));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2f %s", value, units[unit]);
  }
  return buffer;
}

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string JoinInts(const std::vector<std::int64_t>& items,
                     const std::string& separator) {
  std::ostringstream out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out << separator;
    out << items[i];
  }
  return out.str();
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  PTUCKER_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    out << "\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace ptucker
