#include "tensor/nmode.h"

#include "tensor/index.h"
#include "util/logging.h"

namespace ptucker {

DenseTensor ModeProduct(const DenseTensor& tensor, const Matrix& u,
                        std::int64_t mode) {
  PTUCKER_CHECK(mode >= 0 && mode < tensor.order());
  PTUCKER_CHECK(u.cols() == tensor.dim(mode));

  std::vector<std::int64_t> out_dims = tensor.dims();
  out_dims[static_cast<std::size_t>(mode)] = u.rows();
  DenseTensor result(out_dims);

  std::vector<std::int64_t> index(static_cast<std::size_t>(tensor.order()));
  const std::int64_t out_mode_stride =
      result.strides()[static_cast<std::size_t>(mode)];
  for (std::int64_t linear = 0; linear < tensor.size(); ++linear) {
    const double x = tensor[linear];
    if (x == 0.0) continue;
    tensor.IndexOf(linear, index.data());
    const std::int64_t in_coord = index[static_cast<std::size_t>(mode)];
    // Base offset of the output fiber along `mode`.
    index[static_cast<std::size_t>(mode)] = 0;
    const std::int64_t base =
        Linearize(index.data(), result.strides(), result.order());
    index[static_cast<std::size_t>(mode)] = in_coord;
    for (std::int64_t j = 0; j < u.rows(); ++j) {
      result[base + j * out_mode_stride] += u(j, in_coord) * x;
    }
  }
  return result;
}

DenseTensor ModeProductChain(const DenseTensor& tensor,
                             const std::vector<Matrix>& matrices,
                             std::int64_t skip_mode) {
  PTUCKER_CHECK(static_cast<std::int64_t>(matrices.size()) == tensor.order());
  DenseTensor result = tensor;
  for (std::int64_t mode = 0; mode < tensor.order(); ++mode) {
    if (mode == skip_mode) continue;
    result = ModeProduct(result, matrices[static_cast<std::size_t>(mode)],
                         mode);
  }
  return result;
}

Matrix SparseTtmChain(const SparseTensor& x,
                      const std::vector<Matrix>& factors,
                      std::int64_t skip_mode, MemoryTracker* tracker) {
  const std::int64_t order = x.order();
  PTUCKER_CHECK(static_cast<std::int64_t>(factors.size()) == order);
  PTUCKER_CHECK(skip_mode >= 0 && skip_mode < order);

  std::vector<std::int64_t> rank_dims(static_cast<std::size_t>(order));
  for (std::int64_t k = 0; k < order; ++k) {
    rank_dims[static_cast<std::size_t>(k)] =
        factors[static_cast<std::size_t>(k)].cols();
  }
  std::int64_t n_cols = 1;
  for (std::int64_t k = 0; k < order; ++k) {
    if (k != skip_mode) n_cols *= rank_dims[static_cast<std::size_t>(k)];
  }

  // Y is the intermediate data of Algorithm 1 (In x Π Jk): charge it so
  // the explosion is measurable / budget-limited.
  const std::int64_t y_bytes =
      static_cast<std::int64_t>(sizeof(double)) * x.dim(skip_mode) * n_cols;
  if (tracker != nullptr) tracker->Charge(y_bytes);
  Matrix y(x.dim(skip_mode), n_cols);
  if (tracker != nullptr) tracker->Release(y_bytes);

  std::vector<std::int64_t> col_index(static_cast<std::size_t>(order));
  std::vector<std::int64_t> col_dims;
  std::vector<std::int64_t> col_modes;
  for (std::int64_t k = 0; k < order; ++k) {
    if (k == skip_mode) continue;
    col_dims.push_back(rank_dims[static_cast<std::size_t>(k)]);
    col_modes.push_back(k);
  }

  for (std::int64_t e = 0; e < x.nnz(); ++e) {
    const std::int64_t* idx = x.index(e);
    const double value = x.value(e);
    double* out = y.Row(idx[skip_mode]);
    for (std::int64_t col = 0; col < n_cols; ++col) {
      Delinearize(col, col_dims, col_index.data());
      double product = value;
      for (std::size_t c = 0; c < col_modes.size(); ++c) {
        const std::int64_t k = col_modes[c];
        product *= factors[static_cast<std::size_t>(k)](
            idx[k], col_index[c]);
      }
      out[col] += product;
    }
  }
  return y;
}

double ReconstructEntry(const DenseTensor& core,
                        const std::vector<Matrix>& factors,
                        const std::int64_t* index) {
  const std::int64_t order = core.order();
  std::vector<std::int64_t> core_index(static_cast<std::size_t>(order));
  double sum = 0.0;
  for (std::int64_t linear = 0; linear < core.size(); ++linear) {
    const double g = core[linear];
    if (g == 0.0) continue;
    core.IndexOf(linear, core_index.data());
    double product = g;
    for (std::int64_t k = 0; k < order; ++k) {
      product *= factors[static_cast<std::size_t>(k)](
          index[k], core_index[static_cast<std::size_t>(k)]);
    }
    sum += product;
  }
  return sum;
}

DenseTensor ReconstructDense(const DenseTensor& core,
                             const std::vector<Matrix>& factors) {
  DenseTensor result = core;
  for (std::int64_t mode = 0; mode < core.order(); ++mode) {
    result = ModeProduct(result, factors[static_cast<std::size_t>(mode)],
                         mode);
  }
  return result;
}

}  // namespace ptucker
