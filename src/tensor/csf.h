#ifndef PTUCKER_TENSOR_CSF_H_
#define PTUCKER_TENSOR_CSF_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "tensor/sparse_tensor.h"
#include "util/memory_tracker.h"

namespace ptucker {

/// Compressed Sparse Fiber (CSF) tensor — the data structure behind the
/// TUCKER-CSF baseline (Smith & Karypis, Euro-Par 2017 / SPLATT).
///
/// A CSF tree stores the nonzeros of a sparse tensor sorted by a mode
/// order; equal index prefixes are collapsed into shared internal nodes.
/// Tensor-times-matrix chains (TTMc) then evaluate each shared prefix once
/// instead of once per nonzero, which is where the speedup over plain COO
/// streaming comes from.
///
/// Level l holds the nodes at depth l (root mode = mode_order[0]); node n
/// of level l has coordinate `fids(l)[n]` in mode `mode_order[l]` and its
/// children occupy `fptr(l)[n] .. fptr(l)[n+1]` of level l+1. Leaves carry
/// the nonzero values.
class CsfTensor {
 public:
  /// Builds the tree for `mode_order` (a permutation of 0..N-1).
  CsfTensor(const SparseTensor& x, std::vector<std::int64_t> mode_order);

  std::int64_t order() const {
    return static_cast<std::int64_t>(mode_order_.size());
  }
  const std::vector<std::int64_t>& mode_order() const { return mode_order_; }
  const std::vector<std::int64_t>& dims() const { return dims_; }

  std::int64_t num_nodes(std::int64_t level) const {
    return static_cast<std::int64_t>(
        fids_[static_cast<std::size_t>(level)].size());
  }
  std::int64_t nnz() const { return num_nodes(order() - 1); }

  const std::vector<std::int64_t>& fids(std::int64_t level) const {
    return fids_[static_cast<std::size_t>(level)];
  }
  const std::vector<std::int64_t>& fptr(std::int64_t level) const {
    return fptr_[static_cast<std::size_t>(level)];
  }
  const std::vector<double>& leaf_values() const { return values_; }

  /// TTMc for the *root* mode: returns
  /// Y = X(root) · ⊗_{k≠root} A(k), shape I_root x Π_{k≠root} Jk, with the
  /// same column ordering as SparseTtmChain (Eq. 1: lowest mode fastest).
  /// `factors[k]` is A(k) ∈ R^{Ik×Jk}. The tracker is charged for Y plus
  /// the per-level scratch vectors.
  Matrix TtmcRoot(const std::vector<Matrix>& factors,
                  MemoryTracker* tracker = nullptr) const;

  /// Payload bytes of the tree (index arrays + values).
  std::int64_t ByteSize() const;

 private:
  std::vector<std::int64_t> mode_order_;
  std::vector<std::int64_t> dims_;  // original tensor dims
  std::vector<std::vector<std::int64_t>> fids_;
  std::vector<std::vector<std::int64_t>> fptr_;
  std::vector<double> values_;  // parallel to fids_[order-1]
};

}  // namespace ptucker

#endif  // PTUCKER_TENSOR_CSF_H_
