#ifndef PTUCKER_TENSOR_DENSE_TENSOR_H_
#define PTUCKER_TENSOR_DENSE_TENSOR_H_

#include <cstdint>
#include <vector>

#include "tensor/index.h"

namespace ptucker {

/// Dense N-order tensor, mode 0 fastest (Eq. 1 layout).
///
/// This is the paper's core tensor `G ∈ R^{J1×…×JN}` ("smaller and denser
/// than the input"), and the dense intermediate of the wOpt baseline.
class DenseTensor {
 public:
  DenseTensor() = default;

  /// Zero-initialized tensor with the given mode dimensionalities.
  explicit DenseTensor(std::vector<std::int64_t> dims);

  std::int64_t order() const {
    return static_cast<std::int64_t>(dims_.size());
  }
  const std::vector<std::int64_t>& dims() const { return dims_; }
  std::int64_t dim(std::int64_t mode) const {
    return dims_[static_cast<std::size_t>(mode)];
  }
  const std::vector<std::int64_t>& strides() const { return strides_; }

  /// Total element count Π Jn (the paper's |G| when fully dense).
  std::int64_t size() const {
    return static_cast<std::int64_t>(data_.size());
  }

  double operator[](std::int64_t linear) const {
    return data_[static_cast<std::size_t>(linear)];
  }
  double& operator[](std::int64_t linear) {
    return data_[static_cast<std::size_t>(linear)];
  }

  /// Element at a multi-index (length order()).
  double at(const std::int64_t* index) const {
    return data_[static_cast<std::size_t>(
        Linearize(index, strides_, order()))];
  }
  double& at(const std::int64_t* index) {
    return data_[static_cast<std::size_t>(
        Linearize(index, strides_, order()))];
  }

  /// Recovers the multi-index of a linear offset.
  void IndexOf(std::int64_t linear, std::int64_t* index) const {
    Delinearize(linear, dims_, index);
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  void Fill(double value);

  /// Uniform [0, 1) fill (the paper's core initialization).
  template <typename RngType>
  void FillUniform(RngType& rng) {
    for (auto& v : data_) v = rng.Uniform();
  }

  double FrobeniusNorm() const;

  /// In-place multiplication of every element by `factor`.
  void Scale(double factor);

  /// Count of non-zero elements (|G| after truncation).
  std::int64_t CountNonZeros() const;

  std::int64_t ByteSize() const {
    return static_cast<std::int64_t>(data_.size() * sizeof(double));
  }

 private:
  std::vector<std::int64_t> dims_;
  std::vector<std::int64_t> strides_;
  std::vector<double> data_;
};

/// Max |a - b| over elements; shapes must match.
double MaxAbsDiff(const DenseTensor& a, const DenseTensor& b);

}  // namespace ptucker

#endif  // PTUCKER_TENSOR_DENSE_TENSOR_H_
