#include "tensor/dense_tensor.h"

#include <cmath>

#include "util/logging.h"

namespace ptucker {

DenseTensor::DenseTensor(std::vector<std::int64_t> dims)
    : dims_(std::move(dims)), strides_(ComputeStrides(dims_)),
      data_(static_cast<std::size_t>(NumElements(dims_)), 0.0) {
  for (std::int64_t d : dims_) PTUCKER_CHECK(d > 0);
}

void DenseTensor::Fill(double value) {
  for (auto& v : data_) v = value;
}

void DenseTensor::Scale(double factor) {
  for (auto& v : data_) v *= factor;
}

double DenseTensor::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

std::int64_t DenseTensor::CountNonZeros() const {
  std::int64_t count = 0;
  for (double v : data_) count += (v != 0.0) ? 1 : 0;
  return count;
}

double MaxAbsDiff(const DenseTensor& a, const DenseTensor& b) {
  PTUCKER_CHECK(a.dims() == b.dims());
  double max_diff = 0.0;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(a[i] - b[i]));
  }
  return max_diff;
}

}  // namespace ptucker
