#ifndef PTUCKER_TENSOR_INDEX_H_
#define PTUCKER_TENSOR_INDEX_H_

#include <cstdint>
#include <vector>

namespace ptucker {

/// Shape/stride helpers shared by the dense tensor, matricization and the
/// solvers. The whole library uses the paper's Eq. (1) layout convention:
/// mode 1 varies fastest ("column-major" over modes), so the stride of mode
/// k is Π_{m<k} I_m. All indices are 0-based internally; the FROSTT text
/// format converts from/to the paper's 1-based convention at the I/O layer.

/// Π of all dims; 0-order tensors have 1 element.
std::int64_t NumElements(const std::vector<std::int64_t>& dims);

/// Strides with mode 0 fastest: stride[k] = Π_{m<k} dims[m].
std::vector<std::int64_t> ComputeStrides(const std::vector<std::int64_t>& dims);

/// Maps a multi-index to its linear offset under ComputeStrides(dims).
std::int64_t Linearize(const std::int64_t* index,
                       const std::vector<std::int64_t>& strides,
                       std::int64_t order);

/// Inverse of Linearize.
void Delinearize(std::int64_t linear, const std::vector<std::int64_t>& dims,
                 std::int64_t* index);

/// Strides of the mode-n matricization columns (Eq. 1): the stride of mode
/// k (k != n) is Π_{m<k, m≠n} dims[m]; entry n is 0 and unused.
std::vector<std::int64_t> MatricizeColumnStrides(
    const std::vector<std::int64_t>& dims, std::int64_t skip_mode);

/// True if `index` is inside the box [0, dims).
bool IndexInBounds(const std::int64_t* index,
                   const std::vector<std::int64_t>& dims);

}  // namespace ptucker

#endif  // PTUCKER_TENSOR_INDEX_H_
