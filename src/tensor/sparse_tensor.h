#ifndef PTUCKER_TENSOR_SPARSE_TENSOR_H_
#define PTUCKER_TENSOR_SPARSE_TENSOR_H_

#include <cstdint>
#include <vector>

#include "util/span.h"

namespace ptucker {

/// Sparse N-order tensor in coordinate (COO) format with an optional
/// per-mode slice index.
///
/// This is the paper's `X` with observable entries Ω. The slice index
/// materializes `Ω(n, in)` — the subset of observed entries whose mode-n
/// coordinate equals `in` — which is the access pattern of the row-wise
/// update rule (Eqs. 9-11): updating row `in` of `A(n)` touches exactly
/// `Slice(n, in)`.
///
/// Storage: indices are a flat nnz x order array (entry-major), values are
/// parallel. The mode index is CSR-like per mode: `slice_ptr[in] ..
/// slice_ptr[in+1]` delimits entry ids in slice `in`.
class SparseTensor {
 public:
  SparseTensor() = default;

  /// Creates an empty tensor with the given mode dimensionalities.
  explicit SparseTensor(std::vector<std::int64_t> dims);

  std::int64_t order() const {
    return static_cast<std::int64_t>(dims_.size());
  }
  const std::vector<std::int64_t>& dims() const { return dims_; }
  std::int64_t dim(std::int64_t mode) const {
    return dims_[static_cast<std::size_t>(mode)];
  }

  /// Number of observable entries |Ω|.
  std::int64_t nnz() const {
    return static_cast<std::int64_t>(values_.size());
  }

  void Reserve(std::int64_t entries);

  /// Appends an observed entry. `index` must have `order()` coordinates,
  /// each within bounds. Invalidates the mode index.
  void AddEntry(const std::int64_t* index, double value);
  void AddEntry(const std::vector<std::int64_t>& index, double value);

  /// Coordinates of entry `e` (length `order()`).
  const std::int64_t* index(std::int64_t e) const {
    return indices_.data() + static_cast<std::size_t>(e * order());
  }
  std::int64_t index(std::int64_t e, std::int64_t mode) const {
    return indices_[static_cast<std::size_t>(e * order() + mode)];
  }

  double value(std::int64_t e) const {
    return values_[static_cast<std::size_t>(e)];
  }
  void set_value(std::int64_t e, double v) {
    values_[static_cast<std::size_t>(e)] = v;
  }

  const std::vector<double>& values() const { return values_; }

  /// Compacts out every entry `e` with `remove[e] != 0`, preserving the
  /// relative order of the survivors (entry ids shift down). `remove`
  /// must have `nnz()` flags. Invalidates the mode index. Returns the
  /// number of entries removed.
  std::int64_t RemoveEntries(const std::vector<char>& remove);

  /// √(Σ x²) over observed entries (Definition 1 restricted to Ω).
  double FrobeniusNorm() const;

  /// Builds (or rebuilds) the per-mode slice index. O(N·(|Ω| + Σ In)).
  void BuildModeIndex();
  bool has_mode_index() const { return mode_index_built_; }

  /// Entry ids in Ω(mode, i). Requires BuildModeIndex().
  Span<const std::int64_t> Slice(std::int64_t mode, std::int64_t i) const;

  /// |Ω(mode, i)| without touching entry ids. Requires BuildModeIndex().
  std::int64_t SliceSize(std::int64_t mode, std::int64_t i) const;

  /// Bytes held by indices+values (used for memory accounting).
  std::int64_t ByteSize() const;

 private:
  std::vector<std::int64_t> dims_;
  std::vector<std::int64_t> indices_;  // nnz * order, entry-major
  std::vector<double> values_;

  bool mode_index_built_ = false;
  // Per mode: CSR-style offsets (size dim+1) and entry ids (size nnz).
  std::vector<std::vector<std::int64_t>> slice_ptr_;
  std::vector<std::vector<std::int64_t>> slice_entries_;
};

}  // namespace ptucker

#endif  // PTUCKER_TENSOR_SPARSE_TENSOR_H_
