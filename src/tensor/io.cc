#include "tensor/io.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "tensor/dense_tensor.h"
#include "util/logging.h"

namespace ptucker {

namespace {

[[noreturn]] void ThrowParse(std::int64_t line_number,
                             const std::string& detail) {
  throw std::runtime_error("tns parse error at line " +
                           std::to_string(line_number) + ": " + detail);
}

struct ParsedEntry {
  std::vector<std::int64_t> index;  // 0-based
  double value;
};

// Parses one data line into `entry`; returns false for blank/comment lines.
bool ParseLine(const std::string& line, std::int64_t line_number,
               ParsedEntry* entry) {
  std::size_t first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos || line[first] == '#') return false;

  std::istringstream in(line);
  std::vector<double> tokens;
  double token = 0.0;
  while (in >> token) tokens.push_back(token);
  if (!in.eof()) ThrowParse(line_number, "non-numeric token");
  if (tokens.size() < 2) {
    ThrowParse(line_number, "expected at least one index and a value");
  }

  entry->index.clear();
  for (std::size_t k = 0; k + 1 < tokens.size(); ++k) {
    const double raw = tokens[k];
    const std::int64_t one_based = static_cast<std::int64_t>(raw);
    if (static_cast<double>(one_based) != raw || one_based < 1) {
      ThrowParse(line_number, "index must be a positive integer");
    }
    entry->index.push_back(one_based - 1);
  }
  entry->value = tokens.back();
  return true;
}

SparseTensor BuildFromEntries(const std::vector<ParsedEntry>& entries,
                              const std::vector<std::int64_t>& dims) {
  if (entries.empty() && dims.empty()) {
    throw std::runtime_error("tns parse error: no entries and no dims given");
  }
  const std::size_t order =
      entries.empty() ? dims.size() : entries.front().index.size();

  std::vector<std::int64_t> resolved = dims;
  if (resolved.empty()) {
    resolved.assign(order, 1);
    for (const auto& entry : entries) {
      for (std::size_t k = 0; k < order; ++k) {
        resolved[k] = std::max(resolved[k], entry.index[k] + 1);
      }
    }
  }
  if (resolved.size() != order) {
    throw std::runtime_error("tns parse error: dims order mismatch");
  }

  SparseTensor tensor(resolved);
  tensor.Reserve(static_cast<std::int64_t>(entries.size()));
  for (std::size_t e = 0; e < entries.size(); ++e) {
    const auto& entry = entries[e];
    if (entry.index.size() != order) {
      throw std::runtime_error("tns parse error: entry " + std::to_string(e) +
                               " has inconsistent order");
    }
    for (std::size_t k = 0; k < order; ++k) {
      if (entry.index[k] >= resolved[k]) {
        throw std::runtime_error("tns parse error: entry " +
                                 std::to_string(e) + " out of bounds");
      }
    }
    tensor.AddEntry(entry.index, entry.value);
  }
  return tensor;
}

std::vector<ParsedEntry> ParseStream(std::istream& in) {
  std::vector<ParsedEntry> entries;
  std::string line;
  std::int64_t line_number = 0;
  ParsedEntry entry;
  while (std::getline(in, line)) {
    ++line_number;
    if (!ParseLine(line, line_number, &entry)) continue;
    if (!entries.empty() &&
        entry.index.size() != entries.front().index.size()) {
      ThrowParse(line_number, "inconsistent number of indices");
    }
    entries.push_back(entry);
  }
  return entries;
}

}  // namespace

SparseTensor ReadTns(const std::string& path,
                     const std::vector<std::int64_t>& dims) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open tns file: " + path);
  return BuildFromEntries(ParseStream(in), dims);
}

SparseTensor ParseTns(const std::string& content,
                      const std::vector<std::int64_t>& dims) {
  std::istringstream in(content);
  return BuildFromEntries(ParseStream(in), dims);
}

std::string FormatTns(const SparseTensor& tensor) {
  std::ostringstream out;
  for (std::int64_t e = 0; e < tensor.nnz(); ++e) {
    for (std::int64_t k = 0; k < tensor.order(); ++k) {
      out << tensor.index(e, k) + 1 << ' ';  // 1-based on disk
    }
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", tensor.value(e));
    out << buffer << '\n';
  }
  return out.str();
}

void WriteTns(const std::string& path, const SparseTensor& tensor) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open file for write: " + path);
  out << FormatTns(tensor);
  if (!out) throw std::runtime_error("write failed: " + path);
}

void WriteBinary(const std::string& path, const SparseTensor& tensor) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open file for write: " + path);
  const char magic[4] = {'P', 'T', 'N', 'B'};
  out.write(magic, 4);
  const std::int64_t order = tensor.order();
  const std::int64_t entries = tensor.nnz();
  out.write(reinterpret_cast<const char*>(&order), sizeof(order));
  for (std::int64_t k = 0; k < order; ++k) {
    const std::int64_t d = tensor.dim(k);
    out.write(reinterpret_cast<const char*>(&d), sizeof(d));
  }
  out.write(reinterpret_cast<const char*>(&entries), sizeof(entries));
  for (std::int64_t e = 0; e < entries; ++e) {
    out.write(reinterpret_cast<const char*>(tensor.index(e)),
              static_cast<std::streamsize>(sizeof(std::int64_t) * order));
    const double value = tensor.value(e);
    out.write(reinterpret_cast<const char*>(&value), sizeof(value));
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

SparseTensor ReadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open file: " + path);
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, "PTNB", 4) != 0) {
    throw std::runtime_error("bad magic in binary tensor file: " + path);
  }
  std::int64_t order = 0;
  in.read(reinterpret_cast<char*>(&order), sizeof(order));
  if (!in || order <= 0 || order > 64) {
    throw std::runtime_error("bad order in binary tensor file: " + path);
  }
  std::vector<std::int64_t> dims(static_cast<std::size_t>(order));
  for (auto& d : dims) in.read(reinterpret_cast<char*>(&d), sizeof(d));
  std::int64_t entries = 0;
  in.read(reinterpret_cast<char*>(&entries), sizeof(entries));
  if (!in || entries < 0) {
    throw std::runtime_error("bad entry count in binary tensor file: " + path);
  }
  SparseTensor tensor(dims);
  tensor.Reserve(entries);
  std::vector<std::int64_t> index(static_cast<std::size_t>(order));
  for (std::int64_t e = 0; e < entries; ++e) {
    in.read(reinterpret_cast<char*>(index.data()),
            static_cast<std::streamsize>(sizeof(std::int64_t) * order));
    double value = 0.0;
    in.read(reinterpret_cast<char*>(&value), sizeof(value));
    if (!in) {
      throw std::runtime_error("truncated binary tensor file: " + path);
    }
    tensor.AddEntry(index.data(), value);
  }
  return tensor;
}

SparseTensor SparseFromDense(const DenseTensor& dense) {
  SparseTensor sparse(dense.dims());
  sparse.Reserve(dense.CountNonZeros());
  std::vector<std::int64_t> index(static_cast<std::size_t>(dense.order()));
  for (std::int64_t linear = 0; linear < dense.size(); ++linear) {
    if (dense[linear] == 0.0) continue;
    dense.IndexOf(linear, index.data());
    sparse.AddEntry(index, dense[linear]);
  }
  sparse.BuildModeIndex();
  return sparse;
}

}  // namespace ptucker
