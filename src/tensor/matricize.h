#ifndef PTUCKER_TENSOR_MATRICIZE_H_
#define PTUCKER_TENSOR_MATRICIZE_H_

#include <cstdint>

#include "linalg/matrix.h"
#include "tensor/dense_tensor.h"

namespace ptucker {

/// Mode-n matricization/unfolding (Definition 2, Eq. 1): X(n) has In rows
/// and Π_{k≠n} Ik columns, with column index
/// j = Σ_{k≠n} ik · Π_{m<k, m≠n} Im (0-based form of Eq. 1).
Matrix Matricize(const DenseTensor& tensor, std::int64_t mode);

/// Inverse of Matricize: folds an In x Π_{k≠n} Ik matrix back into a tensor
/// with the given dims.
DenseTensor Dematricize(const Matrix& unfolded,
                        const std::vector<std::int64_t>& dims,
                        std::int64_t mode);

}  // namespace ptucker

#endif  // PTUCKER_TENSOR_MATRICIZE_H_
