#include "tensor/matricize.h"

#include "tensor/index.h"
#include "util/logging.h"

namespace ptucker {

Matrix Matricize(const DenseTensor& tensor, std::int64_t mode) {
  PTUCKER_CHECK(mode >= 0 && mode < tensor.order());
  const std::int64_t rows = tensor.dim(mode);
  const std::int64_t cols = tensor.size() / rows;
  const auto col_strides = MatricizeColumnStrides(tensor.dims(), mode);

  Matrix result(rows, cols);
  std::vector<std::int64_t> index(static_cast<std::size_t>(tensor.order()));
  for (std::int64_t linear = 0; linear < tensor.size(); ++linear) {
    tensor.IndexOf(linear, index.data());
    std::int64_t col = 0;
    for (std::int64_t k = 0; k < tensor.order(); ++k) {
      if (k == mode) continue;
      col += index[static_cast<std::size_t>(k)] *
             col_strides[static_cast<std::size_t>(k)];
    }
    result(index[static_cast<std::size_t>(mode)], col) = tensor[linear];
  }
  return result;
}

DenseTensor Dematricize(const Matrix& unfolded,
                        const std::vector<std::int64_t>& dims,
                        std::int64_t mode) {
  PTUCKER_CHECK(mode >= 0 && mode < static_cast<std::int64_t>(dims.size()));
  DenseTensor result(dims);
  PTUCKER_CHECK(unfolded.rows() == result.dim(mode));
  PTUCKER_CHECK(unfolded.cols() == result.size() / result.dim(mode));
  const auto col_strides = MatricizeColumnStrides(dims, mode);

  std::vector<std::int64_t> index(dims.size());
  for (std::int64_t linear = 0; linear < result.size(); ++linear) {
    result.IndexOf(linear, index.data());
    std::int64_t col = 0;
    for (std::int64_t k = 0; k < result.order(); ++k) {
      if (k == mode) continue;
      col += index[static_cast<std::size_t>(k)] *
             col_strides[static_cast<std::size_t>(k)];
    }
    result[linear] = unfolded(index[static_cast<std::size_t>(mode)], col);
  }
  return result;
}

}  // namespace ptucker
