#include "tensor/index.h"

#include "util/logging.h"

namespace ptucker {

std::int64_t NumElements(const std::vector<std::int64_t>& dims) {
  std::int64_t count = 1;
  for (std::int64_t d : dims) count *= d;
  return count;
}

std::vector<std::int64_t> ComputeStrides(
    const std::vector<std::int64_t>& dims) {
  std::vector<std::int64_t> strides(dims.size());
  std::int64_t stride = 1;
  for (std::size_t k = 0; k < dims.size(); ++k) {
    strides[k] = stride;
    stride *= dims[k];
  }
  return strides;
}

std::int64_t Linearize(const std::int64_t* index,
                       const std::vector<std::int64_t>& strides,
                       std::int64_t order) {
  std::int64_t linear = 0;
  for (std::int64_t k = 0; k < order; ++k) linear += index[k] * strides[k];
  return linear;
}

void Delinearize(std::int64_t linear, const std::vector<std::int64_t>& dims,
                 std::int64_t* index) {
  for (std::size_t k = 0; k < dims.size(); ++k) {
    index[k] = linear % dims[k];
    linear /= dims[k];
  }
}

std::vector<std::int64_t> MatricizeColumnStrides(
    const std::vector<std::int64_t>& dims, std::int64_t skip_mode) {
  PTUCKER_CHECK(skip_mode >= 0 &&
                skip_mode < static_cast<std::int64_t>(dims.size()));
  std::vector<std::int64_t> strides(dims.size(), 0);
  std::int64_t stride = 1;
  for (std::size_t k = 0; k < dims.size(); ++k) {
    if (static_cast<std::int64_t>(k) == skip_mode) continue;
    strides[k] = stride;
    stride *= dims[k];
  }
  return strides;
}

bool IndexInBounds(const std::int64_t* index,
                   const std::vector<std::int64_t>& dims) {
  for (std::size_t k = 0; k < dims.size(); ++k) {
    if (index[k] < 0 || index[k] >= dims[k]) return false;
  }
  return true;
}

}  // namespace ptucker
