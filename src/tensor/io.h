#ifndef PTUCKER_TENSOR_IO_H_
#define PTUCKER_TENSOR_IO_H_

#include <string>

#include "tensor/sparse_tensor.h"

namespace ptucker {

/// Tensor I/O in the FROSTT `.tns` text format used by the paper's public
/// datasets: one nonzero per line, N whitespace-separated 1-based indices
/// followed by the value; lines starting with '#' are comments.
///
/// All readers throw std::runtime_error with a line-numbered message on
/// malformed input.

/// Reads a `.tns` file. Mode dimensionalities are the per-mode maximum
/// index unless `dims` is non-empty, in which case indices are validated
/// against it.
SparseTensor ReadTns(const std::string& path,
                     const std::vector<std::int64_t>& dims = {});

/// Parses `.tns` content from a string (same rules as ReadTns).
SparseTensor ParseTns(const std::string& content,
                      const std::vector<std::int64_t>& dims = {});

/// Writes FROSTT text (1-based indices).
void WriteTns(const std::string& path, const SparseTensor& tensor);

/// Serializes `.tns` content to a string.
std::string FormatTns(const SparseTensor& tensor);

/// Compact binary round-trip format ("PTNB"): order, dims, nnz, indices,
/// values, all little-endian 64-bit.
void WriteBinary(const std::string& path, const SparseTensor& tensor);
SparseTensor ReadBinary(const std::string& path);

/// The nonzeros of a dense tensor as a SparseTensor (used to serialize a
/// fitted — possibly truncated — core tensor in FROSTT format).
SparseTensor SparseFromDense(const class DenseTensor& tensor);

}  // namespace ptucker

#endif  // PTUCKER_TENSOR_IO_H_
