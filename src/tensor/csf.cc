#include "tensor/csf.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace ptucker {

CsfTensor::CsfTensor(const SparseTensor& x,
                     std::vector<std::int64_t> mode_order)
    : mode_order_(std::move(mode_order)), dims_(x.dims()) {
  const std::int64_t order = x.order();
  PTUCKER_CHECK(static_cast<std::int64_t>(mode_order_.size()) == order);
  {
    // Validate that mode_order_ is a permutation.
    std::vector<std::int64_t> sorted = mode_order_;
    std::sort(sorted.begin(), sorted.end());
    for (std::int64_t k = 0; k < order; ++k) PTUCKER_CHECK(sorted[k] == k);
  }

  // Sort entry ids lexicographically by the mode order.
  std::vector<std::int64_t> perm(static_cast<std::size_t>(x.nnz()));
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(), [&](std::int64_t a, std::int64_t b) {
    for (std::int64_t level = 0; level < order; ++level) {
      const std::int64_t mode = mode_order_[static_cast<std::size_t>(level)];
      const std::int64_t ia = x.index(a, mode);
      const std::int64_t ib = x.index(b, mode);
      if (ia != ib) return ia < ib;
    }
    return false;
  });

  fids_.assign(static_cast<std::size_t>(order), {});
  fptr_.assign(static_cast<std::size_t>(order - 1), {0});
  values_.reserve(static_cast<std::size_t>(x.nnz()));

  // Walk the sorted entries; open a new node at level l whenever the
  // prefix (levels 0..l) differs from the previous entry's.
  std::vector<std::int64_t> previous(static_cast<std::size_t>(order), -1);
  for (std::size_t p = 0; p < perm.size(); ++p) {
    const std::int64_t e = perm[p];
    std::int64_t first_change = order;
    for (std::int64_t level = 0; level < order; ++level) {
      const std::int64_t mode = mode_order_[static_cast<std::size_t>(level)];
      if (x.index(e, mode) != previous[static_cast<std::size_t>(level)]) {
        first_change = level;
        break;
      }
    }
    // Duplicate coordinates collapse into the same leaf (values summed).
    if (first_change == order) {
      values_.back() += x.value(e);
      continue;
    }
    for (std::int64_t level = first_change; level < order; ++level) {
      const std::int64_t mode = mode_order_[static_cast<std::size_t>(level)];
      const std::int64_t coord = x.index(e, mode);
      fids_[static_cast<std::size_t>(level)].push_back(coord);
      previous[static_cast<std::size_t>(level)] = coord;
      if (level < order - 1) {
        // Children of deeper levels restart.
        previous[static_cast<std::size_t>(level + 1)] = -1;
      }
    }
    values_.push_back(x.value(e));
    // Update fptr: each level's node points one past its current children.
    for (std::int64_t level = 0; level < order - 1; ++level) {
      auto& ptr = fptr_[static_cast<std::size_t>(level)];
      const std::int64_t n_here = num_nodes(level);
      const std::int64_t n_below = num_nodes(level + 1);
      ptr.resize(static_cast<std::size_t>(n_here) + 1);
      ptr[static_cast<std::size_t>(n_here)] = n_below;
    }
  }
  // Backfill fptr starts for nodes created before their first child count
  // was recorded: fptr is built as "end of children" per node; starts come
  // from the previous node's end.
  for (std::int64_t level = 0; level < order - 1; ++level) {
    auto& ptr = fptr_[static_cast<std::size_t>(level)];
    if (ptr.empty()) ptr.push_back(0);
    ptr[0] = 0;
  }
}

Matrix CsfTensor::TtmcRoot(const std::vector<Matrix>& factors,
                           MemoryTracker* tracker) const {
  const std::int64_t order = this->order();
  PTUCKER_CHECK(static_cast<std::int64_t>(factors.size()) == order);
  const std::int64_t root_mode = mode_order_[0];

  // vec_size[l]: length of the partial Kronecker vector carried by a node
  // at level l, covering modes mode_order_[l..order-1].
  std::vector<std::int64_t> vec_size(static_cast<std::size_t>(order) + 1, 1);
  for (std::int64_t level = order - 1; level >= 1; --level) {
    const std::int64_t mode = mode_order_[static_cast<std::size_t>(level)];
    vec_size[static_cast<std::size_t>(level)] =
        vec_size[static_cast<std::size_t>(level + 1)] *
        factors[static_cast<std::size_t>(mode)].cols();
  }
  const std::int64_t n_cols = vec_size[1];

  const std::int64_t scratch_bytes =
      static_cast<std::int64_t>(sizeof(double)) *
      (factors[static_cast<std::size_t>(root_mode)].rows() * n_cols +
       2 * n_cols * order);
  ScopedCharge charge(tracker, scratch_bytes);

  Matrix y(factors[static_cast<std::size_t>(root_mode)].rows(), n_cols);

  // Per-level accumulation buffers for the DFS below.
  std::vector<std::vector<double>> accumulator(
      static_cast<std::size_t>(order));
  for (std::int64_t level = 1; level < order; ++level) {
    accumulator[static_cast<std::size_t>(level)].resize(
        static_cast<std::size_t>(vec_size[static_cast<std::size_t>(level)]));
  }

  // Post-order DFS: child vectors are summed into `sum_below`, then the
  // node expands them by its factor row. The expansion at a shared prefix
  // happens once per *node*, not once per nonzero — the CSF saving.
  // Column layout: expanding mode j at level l maps (t, j) -> t*Jl + j, so
  // the lowest-level... see csf.h: lowest mode index ends up fastest,
  // matching SparseTtmChain.
  auto expand = [&](std::int64_t level, std::int64_t coord,
                    const double* child, double* out) {
    const std::int64_t mode = mode_order_[static_cast<std::size_t>(level)];
    const Matrix& a = factors[static_cast<std::size_t>(mode)];
    const std::int64_t j_count = a.cols();
    const std::int64_t below = vec_size[static_cast<std::size_t>(level + 1)];
    const double* row = a.Row(coord);
    for (std::int64_t t = 0; t < below; ++t) {
      const double scale = child[t];
      double* dst = out + t * j_count;
      for (std::int64_t j = 0; j < j_count; ++j) dst[j] += scale * row[j];
    }
  };

  // Recursive lambda over [begin, end) node ranges of `level`, writing the
  // summed expansion of those nodes into `out` (size vec_size[level]).
  auto dfs = [&](auto&& self, std::int64_t level, std::int64_t begin,
                 std::int64_t end, double* out) -> void {
    const bool leaf_level = (level == order - 1);
    auto& child_buffer = leaf_level
                             ? accumulator[0]  // unused at leaves
                             : accumulator[static_cast<std::size_t>(level + 1)];
    for (std::int64_t node = begin; node < end; ++node) {
      const std::int64_t coord =
          fids_[static_cast<std::size_t>(level)][static_cast<std::size_t>(node)];
      if (leaf_level) {
        const double value = values_[static_cast<std::size_t>(node)];
        const std::int64_t mode =
            mode_order_[static_cast<std::size_t>(level)];
        const Matrix& a = factors[static_cast<std::size_t>(mode)];
        const double* row = a.Row(coord);
        for (std::int64_t j = 0; j < a.cols(); ++j) out[j] += value * row[j];
      } else {
        std::fill(child_buffer.begin(), child_buffer.end(), 0.0);
        const auto& ptr = fptr_[static_cast<std::size_t>(level)];
        self(self, level + 1, ptr[static_cast<std::size_t>(node)],
             ptr[static_cast<std::size_t>(node) + 1], child_buffer.data());
        expand(level, coord, child_buffer.data(), out);
      }
    }
  };

  if (order == 1) {
    for (std::int64_t node = 0; node < num_nodes(0); ++node) {
      y(fids_[0][static_cast<std::size_t>(node)], 0) +=
          values_[static_cast<std::size_t>(node)];
    }
    return y;
  }

  // Root level: each root node writes directly into its Y row.
  const auto& root_ptr = fptr_[0];
  for (std::int64_t node = 0; node < num_nodes(0); ++node) {
    const std::int64_t coord = fids_[0][static_cast<std::size_t>(node)];
    dfs(dfs, 1, root_ptr[static_cast<std::size_t>(node)],
        root_ptr[static_cast<std::size_t>(node) + 1], y.Row(coord));
  }
  return y;
}

std::int64_t CsfTensor::ByteSize() const {
  std::int64_t bytes =
      static_cast<std::int64_t>(values_.size() * sizeof(double));
  for (const auto& level : fids_) {
    bytes += static_cast<std::int64_t>(level.size() * sizeof(std::int64_t));
  }
  for (const auto& level : fptr_) {
    bytes += static_cast<std::int64_t>(level.size() * sizeof(std::int64_t));
  }
  return bytes;
}

}  // namespace ptucker
