#include "tensor/sparse_tensor.h"

#include <cmath>

#include "tensor/index.h"
#include "util/logging.h"

namespace ptucker {

SparseTensor::SparseTensor(std::vector<std::int64_t> dims)
    : dims_(std::move(dims)) {
  for (std::int64_t d : dims_) PTUCKER_CHECK(d > 0);
}

void SparseTensor::Reserve(std::int64_t entries) {
  indices_.reserve(static_cast<std::size_t>(entries * order()));
  values_.reserve(static_cast<std::size_t>(entries));
}

void SparseTensor::AddEntry(const std::int64_t* index, double value) {
  PTUCKER_CHECK(IndexInBounds(index, dims_));
  indices_.insert(indices_.end(), index, index + order());
  values_.push_back(value);
  mode_index_built_ = false;
}

void SparseTensor::AddEntry(const std::vector<std::int64_t>& index,
                            double value) {
  PTUCKER_CHECK(static_cast<std::int64_t>(index.size()) == order());
  AddEntry(index.data(), value);
}

std::int64_t SparseTensor::RemoveEntries(const std::vector<char>& remove) {
  PTUCKER_CHECK(static_cast<std::int64_t>(remove.size()) == nnz());
  const std::int64_t n_modes = order();
  const std::int64_t entries = nnz();
  std::int64_t kept = 0;
  for (std::int64_t e = 0; e < entries; ++e) {
    if (remove[static_cast<std::size_t>(e)]) continue;
    if (kept != e) {
      for (std::int64_t m = 0; m < n_modes; ++m) {
        indices_[static_cast<std::size_t>(kept * n_modes + m)] =
            indices_[static_cast<std::size_t>(e * n_modes + m)];
      }
      values_[static_cast<std::size_t>(kept)] =
          values_[static_cast<std::size_t>(e)];
    }
    ++kept;
  }
  indices_.resize(static_cast<std::size_t>(kept * n_modes));
  values_.resize(static_cast<std::size_t>(kept));
  mode_index_built_ = false;
  return entries - kept;
}

double SparseTensor::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : values_) sum += v * v;
  return std::sqrt(sum);
}

void SparseTensor::BuildModeIndex() {
  const std::int64_t n_modes = order();
  const std::int64_t entries = nnz();
  slice_ptr_.assign(static_cast<std::size_t>(n_modes), {});
  slice_entries_.assign(static_cast<std::size_t>(n_modes), {});

  for (std::int64_t mode = 0; mode < n_modes; ++mode) {
    auto& ptr = slice_ptr_[static_cast<std::size_t>(mode)];
    auto& ids = slice_entries_[static_cast<std::size_t>(mode)];
    ptr.assign(static_cast<std::size_t>(dim(mode)) + 1, 0);
    ids.resize(static_cast<std::size_t>(entries));

    // Counting sort of entry ids by their mode coordinate.
    for (std::int64_t e = 0; e < entries; ++e) {
      ++ptr[static_cast<std::size_t>(index(e, mode)) + 1];
    }
    for (std::size_t i = 1; i < ptr.size(); ++i) ptr[i] += ptr[i - 1];
    std::vector<std::int64_t> cursor(ptr.begin(), ptr.end() - 1);
    for (std::int64_t e = 0; e < entries; ++e) {
      const std::size_t slice = static_cast<std::size_t>(index(e, mode));
      ids[static_cast<std::size_t>(cursor[slice]++)] = e;
    }
  }
  mode_index_built_ = true;
}

Span<const std::int64_t> SparseTensor::Slice(std::int64_t mode,
                                             std::int64_t i) const {
  PTUCKER_CHECK(mode_index_built_);
  const auto& ptr = slice_ptr_[static_cast<std::size_t>(mode)];
  const auto& ids = slice_entries_[static_cast<std::size_t>(mode)];
  const std::int64_t begin = ptr[static_cast<std::size_t>(i)];
  const std::int64_t end = ptr[static_cast<std::size_t>(i) + 1];
  return {ids.data() + begin, static_cast<std::size_t>(end - begin)};
}

std::int64_t SparseTensor::SliceSize(std::int64_t mode, std::int64_t i) const {
  PTUCKER_CHECK(mode_index_built_);
  const auto& ptr = slice_ptr_[static_cast<std::size_t>(mode)];
  return ptr[static_cast<std::size_t>(i) + 1] - ptr[static_cast<std::size_t>(i)];
}

std::int64_t SparseTensor::ByteSize() const {
  return static_cast<std::int64_t>(indices_.size() * sizeof(std::int64_t) +
                                   values_.size() * sizeof(double));
}

}  // namespace ptucker
