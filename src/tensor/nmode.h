#ifndef PTUCKER_TENSOR_NMODE_H_
#define PTUCKER_TENSOR_NMODE_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "tensor/dense_tensor.h"
#include "tensor/sparse_tensor.h"
#include "util/memory_tracker.h"

namespace ptucker {

/// n-mode product (Definition 3, Eq. 2): X ×n U with U ∈ R^{J×In}
/// replaces mode n's dimensionality In by J:
/// (X ×n U)[..., j, ...] = Σ_in U(j, in) · X[..., in, ...].
DenseTensor ModeProduct(const DenseTensor& tensor, const Matrix& u,
                        std::int64_t mode);

/// Chain of n-mode products X ×1 U1 ··· ×N UN, skipping `skip_mode` (pass
/// -1 to apply all). Used by HOOI (Algorithm 1 line 4) and the final core
/// computation G = X ×1 A(1)ᵀ ··· ×N A(N)ᵀ.
DenseTensor ModeProductChain(const DenseTensor& tensor,
                             const std::vector<Matrix>& matrices,
                             std::int64_t skip_mode);

/// Tensor-times-matrix chain on a *sparse* tensor (missing entries treated
/// as zeros, as the HOOI-family baselines do): returns
/// Y(n) = X(n) · ⊗_{k≠n} A(k) of shape In x Π_{k≠n} Jk, computed
/// nonzero-by-nonzero. `factors[k]` is A(k) ∈ R^{Ik×Jk}.
///
/// This materializes the paper's "intermediate data" — the tracker, when
/// given, is charged for the full Y so intermediate-data explosion is
/// observable and bounded.
Matrix SparseTtmChain(const SparseTensor& x,
                      const std::vector<Matrix>& factors,
                      std::int64_t skip_mode,
                      MemoryTracker* tracker = nullptr);

/// Reconstructs one entry of G ×1 A(1) ··· ×N A(N) at `index` (Eq. 4).
/// `core_index` is scratch of length order.
double ReconstructEntry(const DenseTensor& core,
                        const std::vector<Matrix>& factors,
                        const std::int64_t* index);

/// Dense reconstruction X̂ = G ×1 A(1) ··· ×N A(N). Only safe for small
/// shapes; used by tests and the wOpt baseline.
DenseTensor ReconstructDense(const DenseTensor& core,
                             const std::vector<Matrix>& factors);

}  // namespace ptucker

#endif  // PTUCKER_TENSOR_NMODE_H_
