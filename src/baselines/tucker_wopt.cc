#include "baselines/tucker_wopt.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "linalg/blas.h"
#include "tensor/index.h"
#include "tensor/matricize.h"
#include "tensor/nmode.h"
#include "util/logging.h"
#include "util/random.h"
#include "obs/stopwatch.h"

namespace ptucker {

namespace {

// The NCG variable block: the core plus every factor matrix.
struct Params {
  DenseTensor core;
  std::vector<Matrix> factors;
};

double ParamsDot(const Params& a, const Params& b) {
  double sum = Dot(a.core.data(), b.core.data(), a.core.size());
  for (std::size_t k = 0; k < a.factors.size(); ++k) {
    sum += Dot(a.factors[k].data(), b.factors[k].data(), a.factors[k].size());
  }
  return sum;
}

// a += scale * b.
void ParamsAxpy(double scale, const Params& b, Params* a) {
  Axpy(scale, b.core.data(), a->core.data(), a->core.size());
  for (std::size_t k = 0; k < b.factors.size(); ++k) {
    Axpy(scale, b.factors[k].data(), a->factors[k].data(),
         b.factors[k].size());
  }
}

void ParamsScale(double scale, Params* a) {
  a->core.Scale(scale);
  for (auto& factor : a->factors) factor.Scale(scale);
}

}  // namespace

BaselineResult TuckerWoptDecompose(const SparseTensor& x,
                                   const WoptOptions& options) {
  if (x.nnz() == 0) {
    throw std::invalid_argument("wOpt: tensor has no observed entries");
  }
  if (static_cast<std::int64_t>(options.core_dims.size()) != x.order()) {
    throw std::invalid_argument("wOpt: core_dims order mismatch");
  }
  for (std::int64_t n = 0; n < x.order(); ++n) {
    const std::int64_t rank = options.core_dims[static_cast<std::size_t>(n)];
    if (rank < 1 || rank > x.dim(n)) {
      throw std::invalid_argument("wOpt: requires 1 <= Jn <= In");
    }
  }

  const std::int64_t order = x.order();
  const std::int64_t total = NumElements(x.dims());
  MemoryTracker* tracker = options.tracker;
  Stopwatch total_clock;

  // Dense working set, the hallmark of wOpt: the zero-filled observation
  // tensor, the observation mask, the dense residual, plus one dense
  // reconstruction buffer. Charged for the whole solve: this is the
  // allocation that reproduces the paper's O.O.M. columns.
  const std::int64_t dense_bytes =
      total * static_cast<std::int64_t>(3 * sizeof(double) + sizeof(char));
  ScopedCharge dense_charge(tracker, dense_bytes);

  DenseTensor x_dense(x.dims());
  std::vector<char> observed(static_cast<std::size_t>(total), 0);
  const auto strides = ComputeStrides(x.dims());
  for (std::int64_t e = 0; e < x.nnz(); ++e) {
    const std::int64_t linear = Linearize(x.index(e), strides, order);
    x_dense[linear] = x.value(e);
    observed[static_cast<std::size_t>(linear)] = 1;
  }

  Rng rng(options.seed);
  Params params;
  params.core = DenseTensor(options.core_dims);
  params.core.FillUniform(rng);
  params.factors.reserve(static_cast<std::size_t>(order));
  for (std::int64_t n = 0; n < order; ++n) {
    Matrix factor(x.dim(n), options.core_dims[static_cast<std::size_t>(n)]);
    factor.FillUniform(rng);
    params.factors.push_back(std::move(factor));
  }

  // f(θ) = Σ_Ω (X − X̂)²; also emits the dense masked residual
  // E = W ⊛ (X̂ − X) when requested.
  auto evaluate = [&](const Params& p, DenseTensor* residual_out) {
    DenseTensor reconstruction = ReconstructDense(p.core, p.factors);
    double loss = 0.0;
    for (std::int64_t linear = 0; linear < total; ++linear) {
      if (!observed[static_cast<std::size_t>(linear)]) {
        reconstruction[linear] = 0.0;
        continue;
      }
      const double residual = reconstruction[linear] - x_dense[linear];
      reconstruction[linear] = residual;
      loss += residual * residual;
    }
    if (residual_out != nullptr) *residual_out = std::move(reconstruction);
    return loss;
  };

  // ∇f: ∂G = 2 E ×1 A(1)ᵀ ··· ×N A(N)ᵀ and
  //     ∂A(n) = 2 [E ×_{k≠n} A(k)ᵀ](n) G(n)ᵀ.
  auto gradient = [&](const Params& p, const DenseTensor& residual) {
    Params grad;
    std::vector<Matrix> transposed;
    transposed.reserve(static_cast<std::size_t>(order));
    for (const auto& factor : p.factors) {
      transposed.push_back(factor.Transposed());
    }
    // The chain's first product is the O(Iᴺ⁻¹J) dense intermediate of
    // Table III; charge its peak per evaluation.
    std::int64_t peak_chain_bytes = 0;
    for (std::int64_t mode = 0; mode < order; ++mode) {
      peak_chain_bytes = std::max(
          peak_chain_bytes,
          static_cast<std::int64_t>(sizeof(double)) * (total / x.dim(mode)) *
              options.core_dims[static_cast<std::size_t>(mode)]);
    }
    ScopedCharge chain_charge(tracker, peak_chain_bytes);

    grad.core = ModeProductChain(residual, transposed, -1);
    grad.core.Scale(2.0);
    grad.factors.reserve(static_cast<std::size_t>(order));
    for (std::int64_t mode = 0; mode < order; ++mode) {
      DenseTensor chain = ModeProductChain(residual, transposed, mode);
      const Matrix unfolded = Matricize(chain, mode);
      const Matrix core_unfolded = Matricize(p.core, mode);
      Matrix g = MatMulT(unfolded, core_unfolded);  // In x Jn
      g.Scale(2.0);
      grad.factors.push_back(std::move(g));
    }
    return grad;
  };

  BaselineResult result;
  DenseTensor residual;
  double loss = evaluate(params, &residual);
  Params grad = gradient(params, residual);
  Params direction = grad;
  ParamsScale(-1.0, &direction);
  double grad_norm_sq = ParamsDot(grad, grad);
  double previous_error = std::numeric_limits<double>::infinity();
  double step = 1.0;

  for (int iteration = 1; iteration <= options.max_iterations; ++iteration) {
    Stopwatch iteration_clock;

    // Backtracking Armijo line search along `direction`.
    const double directional = ParamsDot(grad, direction);
    double slope = directional;
    Params trial = params;
    if (slope >= 0.0) {
      // Not a descent direction (PR restarts can do this): steepest
      // descent restart.
      direction = grad;
      ParamsScale(-1.0, &direction);
      slope = -grad_norm_sq;
      trial = params;
    }
    double alpha = step;
    double trial_loss = loss;
    bool accepted = false;
    for (int backtrack = 0; backtrack < 30; ++backtrack) {
      trial = params;
      ParamsAxpy(alpha, direction, &trial);
      trial_loss = evaluate(trial, nullptr);
      if (trial_loss <= loss + 1e-4 * alpha * slope) {
        accepted = true;
        break;
      }
      alpha *= 0.5;
    }
    if (!accepted) {
      // Stuck: record and stop (converged to numerical precision).
      result.converged = true;
      break;
    }
    params = std::move(trial);
    step = std::max(alpha * 2.0, 1e-8);  // warm-start the next search
    loss = trial_loss;

    // New gradient + Polak-Ribière update.
    loss = evaluate(params, &residual);
    Params new_grad = gradient(params, residual);
    const double new_norm_sq = ParamsDot(new_grad, new_grad);
    double beta =
        (new_norm_sq - ParamsDot(new_grad, grad)) / std::max(grad_norm_sq,
                                                             1e-300);
    beta = std::max(0.0, beta);  // PR+ restart
    ParamsScale(beta, &direction);
    ParamsAxpy(-1.0, new_grad, &direction);
    grad = std::move(new_grad);
    grad_norm_sq = new_norm_sq;

    const double error = std::sqrt(loss);
    IterationStats stats;
    stats.iteration = iteration;
    stats.error = error;
    stats.seconds = iteration_clock.ElapsedSeconds();
    stats.core_nnz = params.core.CountNonZeros();
    stats.peak_intermediate_bytes =
        tracker != nullptr ? tracker->peak_bytes() : 0;
    result.iterations.push_back(stats);
    if (options.verbose) {
      PTUCKER_LOG(kInfo) << "wOpt iteration " << iteration
                         << ": error=" << error;
    }

    const double change =
        std::fabs(previous_error - error) / std::max(previous_error, 1e-12);
    previous_error = error;
    if (change < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.final_error = std::sqrt(evaluate(params, nullptr));
  result.model.factors = std::move(params.factors);
  result.model.core = std::move(params.core);
  result.total_seconds = total_clock.ElapsedSeconds();
  return result;
}

}  // namespace ptucker
