#ifndef PTUCKER_BASELINES_TUCKER_WOPT_H_
#define PTUCKER_BASELINES_TUCKER_WOPT_H_

#include <cstdint>
#include <vector>

#include "baselines/common.h"
#include "tensor/sparse_tensor.h"
#include "util/memory_tracker.h"

namespace ptucker {

/// Options for TUCKER-WOPT.
struct WoptOptions {
  std::vector<std::int64_t> core_dims;
  /// Nonlinear-conjugate-gradient iterations (the paper caps all methods
  /// at 20 iterations).
  int max_iterations = 20;
  double tolerance = 1e-4;
  std::uint64_t seed = 0x5eedULL;
  MemoryTracker* tracker = nullptr;
  bool verbose = false;
};

/// TUCKER-WOPT (Filipović & Jukić, 2015): Tucker *weighted* optimization.
/// Minimizes Σ_{α∈Ω}(X_α − X̂_α)² over the core and all factors jointly by
/// Polak-Ribière nonlinear conjugate gradients — the accuracy-focused
/// competitor of the paper (it ignores missing entries like P-Tucker).
///
/// Faithful to the original, the gradients are evaluated with *dense*
/// tensor algebra: the masked residual tensor W ⊛ (X̂ − X) is materialized
/// at the full size Π In and pushed through dense mode-product chains
/// (memory O(Iᴺ⁻¹J), paper Table III). All dense temporaries are charged
/// to the tracker, which is why this method — and only this method — hits
/// O.O.M. across most of Figs. 6/7/11.
BaselineResult TuckerWoptDecompose(const SparseTensor& x,
                                   const WoptOptions& options);

}  // namespace ptucker

#endif  // PTUCKER_BASELINES_TUCKER_WOPT_H_
