#include "baselines/cp_als.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include <omp.h>

#include "linalg/blas.h"
#include "linalg/cholesky.h"
#include "linalg/lu.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/random.h"
#include "obs/stopwatch.h"

namespace ptucker {

namespace {

// δ for CP (the Hadamard of the other modes' rows):
// delta[r] = Π_{k≠mode} A(k)(ik, r).
void CpDelta(const std::vector<Matrix>& factors, const std::int64_t* idx,
             std::int64_t mode, std::int64_t rank, double* delta) {
  for (std::int64_t r = 0; r < rank; ++r) delta[r] = 1.0;
  for (std::size_t k = 0; k < factors.size(); ++k) {
    if (static_cast<std::int64_t>(k) == mode) continue;
    const double* row = factors[k].Row(idx[k]);
    for (std::int64_t r = 0; r < rank; ++r) delta[r] *= row[r];
  }
}

double CpReconstruct(const std::vector<Matrix>& factors,
                     const std::int64_t* idx, std::int64_t rank) {
  double sum = 0.0;
  for (std::int64_t r = 0; r < rank; ++r) {
    double product = 1.0;
    for (std::size_t k = 0; k < factors.size(); ++k) {
      product *= factors[k](idx[k], r);
    }
    sum += product;
  }
  return sum;
}

double CpError(const SparseTensor& x, const std::vector<Matrix>& factors,
               std::int64_t rank) {
  // Deterministic combine order so fixed-seed solves are bit-reproducible.
  const double total = DeterministicParallelSum(x.nnz(), [&](std::int64_t e) {
    const double residual =
        x.value(e) - CpReconstruct(factors, x.index(e), rank);
    return residual * residual;
  });
  return std::sqrt(total);
}

}  // namespace

double CpResult::SecondsPerIteration() const {
  if (iterations.empty()) return 0.0;
  double total = 0.0;
  for (const auto& stats : iterations) total += stats.seconds;
  return total / static_cast<double>(iterations.size());
}

double CpResult::Predict(const std::int64_t* index) const {
  return CpReconstruct(factors, index,
                       factors.empty() ? 0 : factors.front().cols());
}

TuckerFactorization CpResult::ToTucker() const {
  TuckerFactorization model;
  model.factors = factors;
  const std::int64_t rank = factors.empty() ? 0 : factors.front().cols();
  std::vector<std::int64_t> core_dims(factors.size(), rank);
  model.core = DenseTensor(core_dims);
  std::vector<std::int64_t> index(factors.size());
  for (std::int64_t r = 0; r < rank; ++r) {
    for (auto& i : index) i = r;
    model.core.at(index.data()) = 1.0;
  }
  return model;
}

CpResult CpAlsDecompose(const SparseTensor& x, const CpOptions& options) {
  if (x.nnz() == 0) {
    throw std::invalid_argument("CP-ALS: tensor has no observed entries");
  }
  if (!x.has_mode_index()) {
    throw std::invalid_argument(
        "CP-ALS: call SparseTensor::BuildModeIndex() first");
  }
  if (options.rank < 1) {
    throw std::invalid_argument("CP-ALS: rank must be >= 1");
  }
  if (options.lambda < 0.0) {
    throw std::invalid_argument("CP-ALS: lambda must be non-negative");
  }
  if (options.max_iterations < 1) {
    throw std::invalid_argument("CP-ALS: max_iterations must be >= 1");
  }

  const std::int64_t order = x.order();
  const std::int64_t rank = options.rank;
  Stopwatch total_clock;

  Rng rng(options.seed);
  CpResult result;
  result.factors.reserve(static_cast<std::size_t>(order));
  for (std::int64_t n = 0; n < order; ++n) {
    Matrix factor(x.dim(n), rank);
    factor.FillUniform(rng);
    result.factors.push_back(std::move(factor));
  }

  // Per-thread B (R x R), c, δ and the solved row: O(T·R²).
  const std::int64_t scratch_bytes =
      static_cast<std::int64_t>(omp_get_max_threads()) *
      static_cast<std::int64_t>(sizeof(double)) * (rank * rank + 3 * rank);
  ScopedCharge scratch_charge(options.tracker, scratch_bytes);

  double previous_error = std::numeric_limits<double>::infinity();
  for (int iteration = 1; iteration <= options.max_iterations; ++iteration) {
    Stopwatch iteration_clock;
    for (std::int64_t mode = 0; mode < order; ++mode) {
      Matrix& factor = result.factors[static_cast<std::size_t>(mode)];
#pragma omp parallel
      {
        Matrix b(rank, rank);
        std::vector<double> c(static_cast<std::size_t>(rank));
        std::vector<double> delta(static_cast<std::size_t>(rank));
        std::vector<double> new_row(static_cast<std::size_t>(rank));
#pragma omp for schedule(dynamic, 8)
        for (std::int64_t row = 0; row < x.dim(mode); ++row) {
          const auto slice = x.Slice(mode, row);
          if (slice.empty()) {
            for (std::int64_t r = 0; r < rank; ++r) factor(row, r) = 0.0;
            continue;
          }
          b.Fill(0.0);
          std::fill(c.begin(), c.end(), 0.0);
          for (const std::int64_t entry : slice) {
            CpDelta(result.factors, x.index(entry), mode, rank,
                    delta.data());
            SymmetricRank1Update(b, delta.data());
            Axpy(x.value(entry), delta.data(), c.data(), rank);
          }
          for (std::int64_t r = 0; r < rank; ++r) b(r, r) += options.lambda;
          if (!CholeskySolveRow(b, c.data(), new_row.data())) {
            LuDecomposition lu(b);
            if (lu.ok()) {
              lu.Solve(c.data(), new_row.data());
            } else {
              std::fill(new_row.begin(), new_row.end(), 0.0);
            }
          }
          for (std::int64_t r = 0; r < rank; ++r) {
            factor(row, r) = new_row[static_cast<std::size_t>(r)];
          }
        }
      }
    }

    const double error = CpError(x, result.factors, rank);
    IterationStats stats;
    stats.iteration = iteration;
    stats.error = error;
    stats.seconds = iteration_clock.ElapsedSeconds();
    stats.core_nnz = rank;  // superdiagonal
    stats.peak_intermediate_bytes =
        options.tracker != nullptr ? options.tracker->peak_bytes() : 0;
    result.iterations.push_back(stats);
    if (options.verbose) {
      PTUCKER_LOG(kInfo) << "CP-ALS iteration " << iteration
                         << ": error=" << error;
    }

    const double change =
        std::fabs(previous_error - error) / std::max(previous_error, 1e-12);
    previous_error = error;
    if (change < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.final_error = CpError(x, result.factors, rank);
  result.total_seconds = total_clock.ElapsedSeconds();
  return result;
}

}  // namespace ptucker
