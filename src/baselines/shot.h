#ifndef PTUCKER_BASELINES_SHOT_H_
#define PTUCKER_BASELINES_SHOT_H_

#include "baselines/hooi.h"

namespace ptucker {

/// Options for the S-HOT baseline; extends HooiOptions with the number of
/// inner subspace-iteration steps per mode.
struct ShotOptions : HooiOptions {
  /// Orthogonal-iteration steps used to refresh the leading left singular
  /// subspace of the implicit Y(n) per mode per ALS sweep. Warm-started
  /// from the previous sweep, a few steps suffice.
  int subspace_iterations = 3;
};

/// S-HOT_scan-style Tucker-ALS (Oh et al., WSDM 2017): identical fixed
/// point to HOOI (missing entries as zeros) but *never materializes* the
/// In × Π_{k≠n} Jk matrix Y(n). The leading left singular vectors are
/// found by orthogonal iteration where each product Y·(Yᵀ·U) is evaluated
/// on the fly by streaming the nonzeros, so intermediate data stays
/// O(Jᴺ⁻¹·Jn + In·Jn) — avoiding the M-bottleneck, as the paper's Table
/// III records for S-HOT.
BaselineResult ShotDecompose(const SparseTensor& x,
                             const ShotOptions& options);

}  // namespace ptucker

#endif  // PTUCKER_BASELINES_SHOT_H_
