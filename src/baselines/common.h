#ifndef PTUCKER_BASELINES_COMMON_H_
#define PTUCKER_BASELINES_COMMON_H_

#include <vector>

#include "core/ptucker.h"
#include "core/trace.h"

namespace ptucker {

/// Outcome of a baseline Tucker solver. All competitors report the same
/// quantities as P-Tucker so the benchmark harness can print the paper's
/// method x metric tables directly.
struct BaselineResult {
  TuckerFactorization model;
  std::vector<IterationStats> iterations;
  bool converged = false;
  /// Reconstruction error over *observed* entries (Eq. 5) — the paper's
  /// common accuracy metric across all methods (Fig. 11).
  double final_error = 0.0;
  double total_seconds = 0.0;

  double SecondsPerIteration() const {
    if (iterations.empty()) return 0.0;
    double total = 0.0;
    for (const auto& stats : iterations) total += stats.seconds;
    return total / static_cast<double>(iterations.size());
  }
};

}  // namespace ptucker

#endif  // PTUCKER_BASELINES_COMMON_H_
