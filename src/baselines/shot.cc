#include "baselines/shot.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/delta_engine.h"
#include "core/reconstruction.h"
#include "linalg/blas.h"
#include "linalg/qr.h"
#include "linalg/svd.h"
#include "tensor/index.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/random.h"
#include "obs/stopwatch.h"

namespace ptucker {

namespace {

// Writes the Kronecker vector ⊗_{k≠skip} A(k)(idx[k], :) · scale into
// `out` (size Π_{k≠skip} Jk), lowest mode fastest — the SparseTtmChain /
// Eq. 1 column ordering. Pass skip = -1 to include every mode.
void ExpandKron(const std::vector<Matrix>& factors, const std::int64_t* idx,
                std::int64_t skip, double scale, double* out) {
  out[0] = scale;
  std::int64_t length = 1;
  for (std::size_t k = 0; k < factors.size(); ++k) {
    if (static_cast<std::int64_t>(k) == skip) continue;
    const Matrix& a = factors[k];
    const double* row = a.Row(idx[k]);
    // In-place expansion: fill blocks for j = Jk-1 .. 1 from the current
    // prefix, then scale the j = 0 block last so reads stay valid.
    for (std::int64_t j = a.cols() - 1; j >= 1; --j) {
      double* dst = out + j * length;
      for (std::int64_t t = 0; t < length; ++t) dst[t] = row[j] * out[t];
    }
    for (std::int64_t t = 0; t < length; ++t) out[t] *= row[0];
    length *= a.cols();
  }
}

}  // namespace

BaselineResult ShotDecompose(const SparseTensor& x,
                             const ShotOptions& options) {
  if (x.nnz() == 0) {
    throw std::invalid_argument("S-HOT: tensor has no observed entries");
  }
  if (!x.has_mode_index()) {
    throw std::invalid_argument(
        "S-HOT: call SparseTensor::BuildModeIndex() first");
  }
  if (static_cast<std::int64_t>(options.core_dims.size()) != x.order()) {
    throw std::invalid_argument("S-HOT: core_dims order mismatch");
  }
  for (std::int64_t n = 0; n < x.order(); ++n) {
    const std::int64_t rank = options.core_dims[static_cast<std::size_t>(n)];
    if (rank < 1 || rank > x.dim(n)) {
      throw std::invalid_argument("S-HOT: requires 1 <= Jn <= In");
    }
  }

  const std::int64_t order = x.order();
  MemoryTracker* tracker = options.tracker;
  Stopwatch total_clock;

  Rng rng(options.seed);
  std::vector<Matrix> factors;
  factors.reserve(static_cast<std::size_t>(order));
  for (std::int64_t n = 0; n < order; ++n) {
    Matrix factor(x.dim(n), options.core_dims[static_cast<std::size_t>(n)]);
    factor.FillUniform(rng);
    factor = HouseholderQr(factor).q;  // orthonormal start
    factors.push_back(std::move(factor));
  }

  const std::int64_t core_size = NumElements(options.core_dims);

  BaselineResult result;
  DenseTensor core(options.core_dims);
  double previous_error = std::numeric_limits<double>::infinity();

  // Per-entry reconstruction error through the tiled δ-engine
  // (docs/architecture.md): the dense core makes |G| = Π Jn, where the
  // grouped scan pays the most, and the metric path tiles entries through
  // ReconstructBatch so each core group's value/column stream is read
  // once per tile instead of once per entry. The tiled kernel is
  // bit-identical to the mode-major per-entry scan at every tile width,
  // so the error trajectory is unchanged from the per-entry flow. The
  // core is recomputed from scratch every iteration (its sparsity pattern
  // may change), so the engine cannot be kept alive across iterations via
  // the mutation hooks; a fresh build is Θ(N·|G|) and cheap next to the
  // scan itself. The engine's transient view bytes are NOT charged to the
  // tracker: the benches report this baseline's "required memory" as
  // S-HOT was published, and an error metric must not trip the budget.
  const auto model_error = [&]() {
    const CoreEntryList core_list(core);
    // Widest tile: the dense core amortizes the per-tile row pack best,
    // and kMaxTile (unlike the solver default) clears the kernel's SIMD
    // threshold.
    const TiledDeltaEngine engine(core_list, factors, nullptr,
                                  TiledDeltaEngine::kMaxTile);
    return ReconstructionError(x, engine);
  };

  for (int iteration = 1; iteration <= options.max_iterations; ++iteration) {
    Stopwatch iteration_clock;

    for (std::int64_t mode = 0; mode < order; ++mode) {
      const std::int64_t rank =
          options.core_dims[static_cast<std::size_t>(mode)];
      std::int64_t k_cols = 1;
      for (std::int64_t k = 0; k < order; ++k) {
        if (k != mode) {
          k_cols *= options.core_dims[static_cast<std::size_t>(k)];
        }
      }

      // On-the-fly intermediate data: W (K x Jn), Z (In x Jn), and a
      // per-entry Kronecker scratch (K). No In x K matrix ever exists.
      const std::int64_t scratch_bytes =
          static_cast<std::int64_t>(sizeof(double)) *
          (k_cols * rank + x.dim(mode) * rank + k_cols);
      ScopedCharge charge(tracker, scratch_bytes);

      Matrix u = factors[static_cast<std::size_t>(mode)];  // warm start
      std::vector<double> kron(static_cast<std::size_t>(k_cols));

      for (int step = 0; step < options.subspace_iterations; ++step) {
        // W = Yᵀ U, streamed: each nonzero contributes
        // x_α · kron_α ⊗ U(in, :).
        Matrix w(k_cols, rank);
        for (std::int64_t e = 0; e < x.nnz(); ++e) {
          const std::int64_t* idx = x.index(e);
          ExpandKron(factors, idx, mode, x.value(e), kron.data());
          const double* u_row = u.Row(idx[mode]);
          for (std::int64_t t = 0; t < k_cols; ++t) {
            const double scale = kron[static_cast<std::size_t>(t)];
            if (scale == 0.0) continue;
            Axpy(scale, u_row, w.Row(t), rank);
          }
        }
        // Z = Y W, streamed over mode-n slices (rows are independent).
        Matrix z(x.dim(mode), rank);
#pragma omp parallel
        {
          std::vector<double> local_kron(static_cast<std::size_t>(k_cols));
#pragma omp for schedule(dynamic, 8)
          for (std::int64_t row = 0; row < x.dim(mode); ++row) {
            double* z_row = z.Row(row);
            for (const std::int64_t e : x.Slice(mode, row)) {
              const std::int64_t* idx = x.index(e);
              ExpandKron(factors, idx, mode, x.value(e), local_kron.data());
              for (std::int64_t t = 0; t < k_cols; ++t) {
                const double scale = local_kron[static_cast<std::size_t>(t)];
                if (scale == 0.0) continue;
                Axpy(scale, w.Row(t), z_row, rank);
              }
            }
          }
        }
        u = HouseholderQr(z).q;
      }
      factors[static_cast<std::size_t>(mode)] = std::move(u);
    }

    // Core: G = X ×1 A(1)ᵀ ··· ×N A(N)ᵀ, streamed with per-thread
    // accumulators merged in thread order (deterministic, per the ROADMAP
    // determinism note).
    {
      const std::int64_t scratch_bytes =
          static_cast<std::int64_t>(sizeof(double)) * 2 * core_size;
      ScopedCharge charge(tracker, scratch_bytes);
      DeterministicParallelVectorSum(
          x.nnz(), static_cast<std::size_t>(core_size), core.data(), [&] {
            std::vector<double> kron(static_cast<std::size_t>(core_size));
            return [&factors, &x, core_size,
                    kron = std::move(kron)](std::int64_t e,
                                            double* local) mutable {
              ExpandKron(factors, x.index(e), -1, x.value(e), kron.data());
              for (std::int64_t t = 0; t < core_size; ++t) {
                local[t] += kron[static_cast<std::size_t>(t)];
              }
            };
          });
    }

    const double error = model_error();
    IterationStats stats;
    stats.iteration = iteration;
    stats.error = error;
    stats.seconds = iteration_clock.ElapsedSeconds();
    stats.core_nnz = core.CountNonZeros();
    stats.peak_intermediate_bytes =
        tracker != nullptr ? tracker->peak_bytes() : 0;
    result.iterations.push_back(stats);
    if (options.verbose) {
      PTUCKER_LOG(kInfo) << "S-HOT iteration " << iteration
                         << ": error=" << error;
    }

    const double change =
        std::fabs(previous_error - error) / std::max(previous_error, 1e-12);
    previous_error = error;
    if (change < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.final_error = model_error();
  result.model.factors = std::move(factors);
  result.model.core = std::move(core);
  result.total_seconds = total_clock.ElapsedSeconds();
  return result;
}

}  // namespace ptucker
