#include "baselines/hooi.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/reconstruction.h"
#include "linalg/blas.h"
#include "linalg/svd.h"
#include "tensor/index.h"
#include "tensor/matricize.h"
#include "tensor/nmode.h"
#include "util/logging.h"
#include "util/random.h"
#include "obs/stopwatch.h"

namespace ptucker {

namespace {

void ValidateHooiInputs(const SparseTensor& x, const HooiOptions& options) {
  if (x.nnz() == 0) {
    throw std::invalid_argument("HOOI: tensor has no observed entries");
  }
  if (static_cast<std::int64_t>(options.core_dims.size()) != x.order()) {
    throw std::invalid_argument("HOOI: core_dims order mismatch");
  }
  for (std::int64_t n = 0; n < x.order(); ++n) {
    const std::int64_t rank = options.core_dims[static_cast<std::size_t>(n)];
    if (rank < 1 || rank > x.dim(n)) {
      throw std::invalid_argument("HOOI: requires 1 <= Jn <= In");
    }
  }
  if (options.max_iterations < 1) {
    throw std::invalid_argument("HOOI: max_iterations must be >= 1");
  }
}

}  // namespace

BaselineResult HooiDecompose(const SparseTensor& x,
                             const HooiOptions& options) {
  ValidateHooiInputs(x, options);
  const std::int64_t order = x.order();
  Stopwatch total_clock;

  Rng rng(options.seed);
  std::vector<Matrix> factors;
  factors.reserve(static_cast<std::size_t>(order));
  for (std::int64_t n = 0; n < order; ++n) {
    Matrix factor(x.dim(n), options.core_dims[static_cast<std::size_t>(n)]);
    factor.FillUniform(rng);
    // Algorithm 1 expects orthonormal factors throughout; orthogonalize
    // the random initialization.
    factor = LeadingLeftSingularVectors(factor, factor.cols());
    factors.push_back(std::move(factor));
  }

  BaselineResult result;
  DenseTensor core(options.core_dims);
  double previous_error = std::numeric_limits<double>::infinity();

  for (int iteration = 1; iteration <= options.max_iterations; ++iteration) {
    Stopwatch iteration_clock;
    Matrix last_y;
    for (std::int64_t mode = 0; mode < order; ++mode) {
      // Line 4: Y ← X ×_{k≠n} A(k)ᵀ, materialized (the M-bottleneck).
      Matrix y = SparseTtmChain(x, factors, mode, options.tracker);
      // Line 5: Jn leading left singular vectors of Y(n).
      factors[static_cast<std::size_t>(mode)] = ExactSvdLeftSingularVectors(
          y, options.core_dims[static_cast<std::size_t>(mode)]);
      if (mode == order - 1) last_y = std::move(y);
    }

    // Line 7 equivalent: G = X ×1 A(1)ᵀ ··· ×N A(N)ᵀ. Reuse the last Y:
    // G(N) = A(N)ᵀ Y(N).
    const Matrix core_unfolded =
        MatTMul(factors[static_cast<std::size_t>(order - 1)], last_y);
    core = Dematricize(core_unfolded, options.core_dims, order - 1);

    const double error = ReconstructionError(x, core, factors);
    IterationStats stats;
    stats.iteration = iteration;
    stats.error = error;
    stats.seconds = iteration_clock.ElapsedSeconds();
    stats.core_nnz = core.CountNonZeros();
    stats.peak_intermediate_bytes =
        options.tracker != nullptr ? options.tracker->peak_bytes() : 0;
    result.iterations.push_back(stats);
    if (options.verbose) {
      PTUCKER_LOG(kInfo) << "HOOI iteration " << iteration
                         << ": error=" << error;
    }

    const double change =
        std::fabs(previous_error - error) / std::max(previous_error, 1e-12);
    previous_error = error;
    if (change < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.final_error = ReconstructionError(x, core, factors);
  result.model.factors = std::move(factors);
  result.model.core = std::move(core);
  result.total_seconds = total_clock.ElapsedSeconds();
  return result;
}

}  // namespace ptucker
