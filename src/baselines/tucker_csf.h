#ifndef PTUCKER_BASELINES_TUCKER_CSF_H_
#define PTUCKER_BASELINES_TUCKER_CSF_H_

#include "baselines/hooi.h"

namespace ptucker {

/// TUCKER-CSF (Smith & Karypis, Euro-Par 2017 / SPLATT): HOOI where the
/// TTMc Y(n) is evaluated over compressed-sparse-fiber trees so shared
/// index prefixes are expanded once instead of once per nonzero.
///
/// We build one CSF tree rooted at each mode (SPLATT's ALLMODE layout; the
/// paper configured one allocation, which trades memory for a little
/// time — the asymptotics in Table III are unchanged). Like HOOI, Y(n) is
/// materialized (memory O(In·Jᴺ⁻¹)) and missing entries are zeros, so the
/// accuracy matches HOOI/S-HOT in Fig. 11.
BaselineResult TuckerCsfDecompose(const SparseTensor& x,
                                  const HooiOptions& options);

}  // namespace ptucker

#endif  // PTUCKER_BASELINES_TUCKER_CSF_H_
