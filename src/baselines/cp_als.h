#ifndef PTUCKER_BASELINES_CP_ALS_H_
#define PTUCKER_BASELINES_CP_ALS_H_

#include <cstdint>
#include <vector>

#include "core/ptucker.h"
#include "core/trace.h"
#include "tensor/sparse_tensor.h"
#include "util/memory_tracker.h"

namespace ptucker {

/// Options for CP-ALS.
struct CpOptions {
  /// CP rank R (every factor gets R columns).
  std::int64_t rank = 10;
  double lambda = 0.01;
  int max_iterations = 20;
  double tolerance = 1e-4;
  std::uint64_t seed = 0x5eedULL;
  MemoryTracker* tracker = nullptr;
  bool verbose = false;
};

/// Result of a CP decomposition: X ≈ Σ_r a(1)_:r ∘ … ∘ a(N)_:r.
struct CpResult {
  std::vector<Matrix> factors;  // A(n) ∈ R^{In×R}
  std::vector<IterationStats> iterations;
  bool converged = false;
  double final_error = 0.0;  // Eq. 5 over observed entries
  double total_seconds = 0.0;

  double SecondsPerIteration() const;

  /// Predicted value Σ_r Π_n A(n)(in, r).
  double Predict(const std::int64_t* index) const;

  /// The equivalent Tucker model (superdiagonal R x … x R core of ones) —
  /// CP is the special case of Tucker the paper's §II describes, and this
  /// lets CP results flow through the same metrics/discovery tooling.
  TuckerFactorization ToTucker() const;
};

/// CP-ALS for partially observed sparse tensors with a row-wise update
/// rule (Shin, Sael & Kang's CDTF [24] — the CP counterpart of P-Tucker's
/// update that the paper credits as prior art for row-wise ALS). Only
/// observed entries enter the loss; rows of a factor are independent and
/// updated in parallel.
///
/// Per iteration: O(N·|Ω|·R² + N·I·R³) time, O(T·R²) intermediate memory.
CpResult CpAlsDecompose(const SparseTensor& x, const CpOptions& options);

}  // namespace ptucker

#endif  // PTUCKER_BASELINES_CP_ALS_H_
