#ifndef PTUCKER_BASELINES_HOOI_H_
#define PTUCKER_BASELINES_HOOI_H_

#include <cstdint>
#include <vector>

#include "baselines/common.h"
#include "tensor/sparse_tensor.h"
#include "util/memory_tracker.h"

namespace ptucker {

/// Configuration shared by the HOOI-family baselines (HOOI, S-HOT,
/// Tucker-CSF).
struct HooiOptions {
  std::vector<std::int64_t> core_dims;
  int max_iterations = 20;
  double tolerance = 1e-4;
  std::uint64_t seed = 0x5eedULL;
  MemoryTracker* tracker = nullptr;
  bool verbose = false;
};

/// Conventional Tucker-ALS / HOOI (paper Algorithm 1, De Lathauwer et
/// al.): per mode, materialize Y(n) = X ×_{k≠n} A(k)ᵀ as an In × Π Jk
/// matrix and take its Jn leading left singular vectors; missing entries
/// are treated as zeros.
///
/// This is the method whose "intermediate data explosion" motivates the
/// paper: the materialized Y(n) is charged to the tracker, so large
/// tensors hit the O.O.M. budget exactly as in Figs. 6/7/11.
BaselineResult HooiDecompose(const SparseTensor& x,
                             const HooiOptions& options);

}  // namespace ptucker

#endif  // PTUCKER_BASELINES_HOOI_H_
