#include "baselines/tucker_csf.h"

#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/reconstruction.h"
#include "linalg/blas.h"
#include "linalg/svd.h"
#include "tensor/csf.h"
#include "tensor/matricize.h"
#include "util/logging.h"
#include "util/random.h"
#include "obs/stopwatch.h"

namespace ptucker {

namespace {

// Mode order rooted at `root` with the remaining modes ascending, so
// TtmcRoot's column ordering matches SparseTtmChain / Eq. 1.
std::vector<std::int64_t> RootedModeOrder(std::int64_t order,
                                          std::int64_t root) {
  std::vector<std::int64_t> result;
  result.reserve(static_cast<std::size_t>(order));
  result.push_back(root);
  for (std::int64_t k = 0; k < order; ++k) {
    if (k != root) result.push_back(k);
  }
  return result;
}

}  // namespace

BaselineResult TuckerCsfDecompose(const SparseTensor& x,
                                  const HooiOptions& options) {
  if (x.nnz() == 0) {
    throw std::invalid_argument("Tucker-CSF: tensor has no observed entries");
  }
  if (static_cast<std::int64_t>(options.core_dims.size()) != x.order()) {
    throw std::invalid_argument("Tucker-CSF: core_dims order mismatch");
  }
  for (std::int64_t n = 0; n < x.order(); ++n) {
    const std::int64_t rank = options.core_dims[static_cast<std::size_t>(n)];
    if (rank < 1 || rank > x.dim(n)) {
      throw std::invalid_argument("Tucker-CSF: requires 1 <= Jn <= In");
    }
  }

  const std::int64_t order = x.order();
  Stopwatch total_clock;

  // One CSF allocation per mode (built once; factor-independent).
  std::vector<CsfTensor> trees;
  trees.reserve(static_cast<std::size_t>(order));
  for (std::int64_t n = 0; n < order; ++n) {
    trees.emplace_back(x, RootedModeOrder(order, n));
  }

  Rng rng(options.seed);
  std::vector<Matrix> factors;
  factors.reserve(static_cast<std::size_t>(order));
  for (std::int64_t n = 0; n < order; ++n) {
    Matrix factor(x.dim(n), options.core_dims[static_cast<std::size_t>(n)]);
    factor.FillUniform(rng);
    factor = LeadingLeftSingularVectors(factor, factor.cols());
    factors.push_back(std::move(factor));
  }

  BaselineResult result;
  DenseTensor core(options.core_dims);
  double previous_error = std::numeric_limits<double>::infinity();

  for (int iteration = 1; iteration <= options.max_iterations; ++iteration) {
    Stopwatch iteration_clock;
    Matrix last_y;
    for (std::int64_t mode = 0; mode < order; ++mode) {
      // Y(n) from the CSF tree (still materialized: the M-bottleneck of
      // Table III's O(I Jᴺ⁻¹) memory row for TUCKER-CSF).
      const std::int64_t y_bytes =
          static_cast<std::int64_t>(sizeof(double)) * x.dim(mode) *
          (NumElements(options.core_dims) /
           options.core_dims[static_cast<std::size_t>(mode)]);
      ScopedCharge y_charge(options.tracker, y_bytes);
      Matrix y = trees[static_cast<std::size_t>(mode)].TtmcRoot(
          factors, options.tracker);
      factors[static_cast<std::size_t>(mode)] = ExactSvdLeftSingularVectors(
          y, options.core_dims[static_cast<std::size_t>(mode)]);
      if (mode == order - 1) last_y = std::move(y);
    }

    const Matrix core_unfolded =
        MatTMul(factors[static_cast<std::size_t>(order - 1)], last_y);
    core = Dematricize(core_unfolded, options.core_dims, order - 1);

    const double error = ReconstructionError(x, core, factors);
    IterationStats stats;
    stats.iteration = iteration;
    stats.error = error;
    stats.seconds = iteration_clock.ElapsedSeconds();
    stats.core_nnz = core.CountNonZeros();
    stats.peak_intermediate_bytes =
        options.tracker != nullptr ? options.tracker->peak_bytes() : 0;
    result.iterations.push_back(stats);
    if (options.verbose) {
      PTUCKER_LOG(kInfo) << "Tucker-CSF iteration " << iteration
                         << ": error=" << error;
    }

    const double change =
        std::fabs(previous_error - error) / std::max(previous_error, 1e-12);
    previous_error = error;
    if (change < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.final_error = ReconstructionError(x, core, factors);
  result.model.factors = std::move(factors);
  result.model.core = std::move(core);
  result.total_seconds = total_clock.ElapsedSeconds();
  return result;
}

}  // namespace ptucker
