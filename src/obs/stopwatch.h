#ifndef PTUCKER_OBS_STOPWATCH_H_
#define PTUCKER_OBS_STOPWATCH_H_

#include <chrono>

namespace ptucker {

/// Wall-clock stopwatch used for per-iteration timing in solvers and
/// benchmarks. Started on construction. Lives in src/obs/ with the rest
/// of the observability primitives (docs/observability.md); kept in the
/// top-level namespace because every solver and bench names it.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ptucker

#endif  // PTUCKER_OBS_STOPWATCH_H_
