// Unified metrics plane (docs/observability.md): named counters, gauges,
// and fixed-bucket histograms behind one process-wide registry, exported
// as Prometheus-style exposition text (METRICS wire opcode, `ptucker_cli
// stats`, --metrics-log-ms).
//
// Hot-path contract: recording is one relaxed atomic increment into a
// per-thread stripe — no locks, no allocation, no syscalls — and reads
// merge the stripes. Observability never touches the numeric path: the
// solver's arithmetic and its deterministic reduction order
// (util/parallel.h) are unaffected whether metrics are recorded or not,
// so trajectories stay bit-identical with telemetry on or off (a tested
// invariant, bench_observability + obs_trace_test).
#ifndef PTUCKER_OBS_METRICS_H_
#define PTUCKER_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ptucker {
namespace obs {

namespace internal {
/// Index of the calling thread's stripe, assigned round-robin at first
/// use so concurrent writers spread across stripes instead of all
/// contending on stripe 0.
std::size_t ThisThreadStripe();
}  // namespace internal

/// A monotonically increasing counter. Writers increment a per-thread
/// cache-line-aligned stripe with relaxed atomics (one uncontended RMW);
/// Value() merges the stripes. Totals are exact regardless of how the
/// increments were spread over threads.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Adds `delta` (default 1) to this thread's stripe.
  void Increment(std::uint64_t delta = 1) {
    stripes_[internal::ThisThreadStripe() % kStripes].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Sum over all stripes.
  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const Stripe& stripe : stripes_) {
      total += stripe.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr std::size_t kStripes = 16;
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> value{0};
  };
  Stripe stripes_[kStripes];
};

/// A settable instantaneous value (queue depth, staleness). A single
/// relaxed atomic — gauges are written by one logical owner at a time,
/// so striping would only blur the latest value.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Merged histogram state, as read at one instant: cumulative bucket
/// counts per upper bound (the Prometheus `le` convention: counts[i] is
/// the number of observations <= bounds[i], the final implicit +Inf
/// bucket equals `count`), plus the exact sum and count.
struct HistogramSnapshot {
  std::vector<double> bounds;          ///< finite bucket upper bounds
  std::vector<std::uint64_t> counts;   ///< cumulative, one per bound
  std::uint64_t count = 0;             ///< total observations (+Inf bucket)
  double sum = 0.0;                    ///< sum of observed values
};

/// A fixed-bucket latency/size histogram. Observe() finds the bucket by
/// binary search and bumps a per-thread stripe's bucket counter with a
/// relaxed atomic (the stripe's sum is a CAS-loop double — C++17 has no
/// atomic double fetch_add); Snapshot() merges stripes. Bucket bounds
/// are fixed at construction so concurrent observers never reshape
/// anything.
class Histogram {
 public:
  /// `bounds` are the finite bucket upper bounds, strictly increasing
  /// and non-empty (an implicit +Inf bucket always exists). Throws
  /// std::invalid_argument otherwise.
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one observation.
  void Observe(double value);

  /// Merged view of all stripes.
  HistogramSnapshot Snapshot() const;

  const std::vector<double>& bounds() const { return bounds_; }

  /// Nearest upper bound covering the p-th percentile of the merged
  /// counts (`p` in (0, 100]); the last finite bound if the percentile
  /// lands in the +Inf bucket, 0.0 when empty. A bucketed estimate —
  /// obs/percentile.h is the exact offline counterpart.
  double ApproxPercentile(double p) const;

 private:
  static constexpr std::size_t kStripes = 16;
  struct alignas(64) Stripe {
    // One counter per finite bound + one for the +Inf bucket, heap-held
    // so the per-histogram footprint scales with the bucket count.
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  Stripe stripes_[kStripes];
};

/// Returns `count` strictly increasing bounds start, start*factor,
/// start*factor^2, ... — the usual latency-bucket ladder. Throws
/// std::invalid_argument unless start > 0, factor > 1, count >= 1.
std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count);

/// Name → metric registry. GetCounter/GetGauge/GetHistogram are
/// idempotent get-or-create (so instrumentation sites need no init
/// order) and return pointers that stay valid for the registry's
/// lifetime; asking for an existing name as a different type (or a
/// histogram with different bounds) throws std::invalid_argument.
/// Registration takes a mutex; the returned handles are the lock-free
/// hot path — cache them, don't re-look-up per event.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help);
  Gauge* GetGauge(const std::string& name, const std::string& help);
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds);

  /// Prometheus-style exposition text: `# HELP` / `# TYPE` then the
  /// samples, names sorted, histograms with cumulative `_bucket{le=...}`
  /// + `_sum` + `_count` (docs/observability.md documents the format).
  std::string ExpositionText() const;

  /// One compact `name=value` line (histograms as name_count/name_sum)
  /// for --metrics-log-ms headless logging.
  std::string LogLine() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  // sorted => stable exposition
};

/// The process-wide registry every built-in instrumentation site records
/// into; tests and benches can build private registries for isolation.
MetricsRegistry& GlobalMetrics();

}  // namespace obs
}  // namespace ptucker

#endif  // PTUCKER_OBS_METRICS_H_
