#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace ptucker {
namespace obs {

namespace internal {

std::size_t ThisThreadStripe() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed);
  return stripe;
}

}  // namespace internal

namespace {

// %.10g keeps bucket labels and sums readable while round-tripping every
// bound this codebase uses (powers of 2 times powers of 10).
std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: bounds must be non-empty");
  }
  for (std::size_t i = 0; i + 1 < bounds_.size(); ++i) {
    if (!(bounds_[i] < bounds_[i + 1])) {
      throw std::invalid_argument(
          "Histogram: bounds must be strictly increasing");
    }
  }
  const std::size_t buckets = bounds_.size() + 1;  // + the +Inf bucket
  for (Stripe& stripe : stripes_) {
    stripe.buckets.reset(new std::atomic<std::uint64_t>[buckets]);
    for (std::size_t b = 0; b < buckets; ++b) {
      stripe.buckets[b].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::Observe(double value) {
  // Bucket i holds observations <= bounds_[i]; past the last finite
  // bound the observation lands in the implicit +Inf bucket.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  Stripe& stripe = stripes_[internal::ThisThreadStripe() % kStripes];
  stripe.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  // C++17 has no std::atomic<double>::fetch_add; a relaxed CAS loop on
  // the stripe's private sum is uncontended in steady state.
  double sum = stripe.sum.load(std::memory_order_relaxed);
  while (!stripe.sum.compare_exchange_weak(sum, sum + value,
                                           std::memory_order_relaxed,
                                           std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  const std::size_t buckets = bounds_.size() + 1;
  std::vector<std::uint64_t> per_bucket(buckets, 0);
  for (const Stripe& stripe : stripes_) {
    for (std::size_t b = 0; b < buckets; ++b) {
      per_bucket[b] += stripe.buckets[b].load(std::memory_order_relaxed);
    }
    snapshot.sum += stripe.sum.load(std::memory_order_relaxed);
  }
  snapshot.counts.resize(bounds_.size());
  std::uint64_t running = 0;
  for (std::size_t b = 0; b < bounds_.size(); ++b) {
    running += per_bucket[b];
    snapshot.counts[b] = running;  // cumulative, the `le` convention
  }
  snapshot.count = running + per_bucket[bounds_.size()];
  return snapshot;
}

double Histogram::ApproxPercentile(double p) const {
  const HistogramSnapshot snapshot = Snapshot();
  if (snapshot.count == 0) return 0.0;
  const std::uint64_t rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(p / 100.0 *
                              static_cast<double>(snapshot.count))));
  for (std::size_t b = 0; b < snapshot.bounds.size(); ++b) {
    if (snapshot.counts[b] >= rank) return snapshot.bounds[b];
  }
  return snapshot.bounds.back();  // the percentile is in the +Inf bucket
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count) {
  if (!(start > 0.0) || !(factor > 1.0) || count < 1) {
    throw std::invalid_argument(
        "ExponentialBuckets: need start > 0, factor > 1, count >= 1");
  }
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind != Kind::kCounter) {
      throw std::invalid_argument("metric '" + name +
                                  "' already registered as a different type");
    }
    return it->second.counter.get();
  }
  Entry entry;
  entry.kind = Kind::kCounter;
  entry.help = help;
  entry.counter.reset(new Counter());
  return entries_.emplace(name, std::move(entry))
      .first->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind != Kind::kGauge) {
      throw std::invalid_argument("metric '" + name +
                                  "' already registered as a different type");
    }
    return it->second.gauge.get();
  }
  Entry entry;
  entry.kind = Kind::kGauge;
  entry.help = help;
  entry.gauge.reset(new Gauge());
  return entries_.emplace(name, std::move(entry)).first->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind != Kind::kHistogram) {
      throw std::invalid_argument("metric '" + name +
                                  "' already registered as a different type");
    }
    if (it->second.histogram->bounds() != bounds) {
      throw std::invalid_argument("metric '" + name +
                                  "' already registered with different "
                                  "histogram bounds");
    }
    return it->second.histogram.get();
  }
  Entry entry;
  entry.kind = Kind::kHistogram;
  entry.help = help;
  entry.histogram.reset(new Histogram(std::move(bounds)));
  return entries_.emplace(name, std::move(entry))
      .first->second.histogram.get();
}

std::string MetricsRegistry::ExpositionText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string text;
  for (const auto& named : entries_) {
    const std::string& name = named.first;
    const Entry& entry = named.second;
    text += "# HELP " + name + " " + entry.help + "\n";
    switch (entry.kind) {
      case Kind::kCounter:
        text += "# TYPE " + name + " counter\n";
        text += name + " " + std::to_string(entry.counter->Value()) + "\n";
        break;
      case Kind::kGauge:
        text += "# TYPE " + name + " gauge\n";
        text += name + " " + std::to_string(entry.gauge->Value()) + "\n";
        break;
      case Kind::kHistogram: {
        text += "# TYPE " + name + " histogram\n";
        const HistogramSnapshot snapshot = entry.histogram->Snapshot();
        for (std::size_t b = 0; b < snapshot.bounds.size(); ++b) {
          text += name + "_bucket{le=\"" + FormatDouble(snapshot.bounds[b]) +
                  "\"} " + std::to_string(snapshot.counts[b]) + "\n";
        }
        text += name + "_bucket{le=\"+Inf\"} " +
                std::to_string(snapshot.count) + "\n";
        text += name + "_sum " + FormatDouble(snapshot.sum) + "\n";
        text += name + "_count " + std::to_string(snapshot.count) + "\n";
        break;
      }
    }
  }
  return text;
}

std::string MetricsRegistry::LogLine() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string line;
  for (const auto& named : entries_) {
    const std::string& name = named.first;
    const Entry& entry = named.second;
    if (!line.empty()) line += " ";
    switch (entry.kind) {
      case Kind::kCounter:
        line += name + "=" + std::to_string(entry.counter->Value());
        break;
      case Kind::kGauge:
        line += name + "=" + std::to_string(entry.gauge->Value());
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot snapshot = entry.histogram->Snapshot();
        line += name + "_count=" + std::to_string(snapshot.count) + " " +
                name + "_sum=" + FormatDouble(snapshot.sum);
        break;
      }
    }
  }
  return line;
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace ptucker
