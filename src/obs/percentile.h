// Shared latency-percentile helpers (docs/observability.md). The serving
// benchmarks (bench_serving.cc and bench_serving_net.cc) report
// p50/p99/p999 from this one implementation so the columns mean the same
// thing in both tables; the definitions are documented in
// docs/benchmarks.md. Nearest-rank percentiles over the raw samples — no
// interpolation, no binning — so a reported p99 is an actually-observed
// latency. (Histogram in obs/metrics.h is the bucketed, lock-free
// counterpart for live telemetry; this is the exact offline one.)
#ifndef PTUCKER_OBS_PERCENTILE_H_
#define PTUCKER_OBS_PERCENTILE_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace ptucker {
namespace obs {

/// Nearest-rank percentile: the smallest sample x such that at least
/// p% of the samples are <= x (ceil(p/100 * N)-th order statistic).
/// `p` in (0, 100]. Returns 0.0 on an empty sample set.
inline double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples.size())));
  const std::size_t at = (rank == 0 ? 0 : rank - 1);
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(at),
                   samples.end());
  return samples[at];
}

/// Accumulates per-request latencies (seconds) and reports the summary
/// the benchmark tables print. Merge per-thread recorders with Merge()
/// before reading percentiles.
class LatencyRecorder {
 public:
  void Reserve(std::size_t n) { samples_.reserve(n); }
  void Record(double seconds) { samples_.push_back(seconds); }
  void Merge(const LatencyRecorder& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  }

  std::size_t count() const { return samples_.size(); }
  double Mean() const {
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (const double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
  }
  double P50() const { return Percentile(samples_, 50.0); }
  double P99() const { return Percentile(samples_, 99.0); }
  double P999() const { return Percentile(samples_, 99.9); }

 private:
  std::vector<double> samples_;
};

}  // namespace obs
}  // namespace ptucker

#endif  // PTUCKER_OBS_PERCENTILE_H_
