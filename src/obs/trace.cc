#include "obs/trace.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>

namespace ptucker {
namespace obs {

namespace {

// Little-endian scalar append/read helpers for SerializeEvents — the
// same byte order the PTKN/PTKD codecs use, kept local because the
// trace payload is opaque bytes to the wire layer.
template <typename T>
void AppendScalar(std::vector<std::uint8_t>* out, T value) {
  for (std::size_t b = 0; b < sizeof(T); ++b) {
    out->push_back(static_cast<std::uint8_t>(
        (static_cast<std::uint64_t>(value) >> (8 * b)) & 0xff));
  }
}

template <typename T>
bool ReadScalar(const std::vector<std::uint8_t>& in, std::size_t* offset,
                T* value) {
  if (in.size() - *offset < sizeof(T)) return false;
  std::uint64_t raw = 0;
  for (std::size_t b = 0; b < sizeof(T); ++b) {
    raw |= static_cast<std::uint64_t>(in[*offset + b]) << (8 * b);
  }
  *offset += sizeof(T);
  *value = static_cast<T>(raw);
  return true;
}

// JSON string escape for span names. Names are normally dotted literals
// ("als.factor_update") — this keeps the export valid even if one ever
// carries a quote or backslash.
void AppendJsonEscaped(std::string* out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      *out += buffer;
    } else {
      out->push_back(c);
    }
  }
}

constexpr std::uint32_t kTraceSerialVersion = 1;

}  // namespace

// A bounded per-thread span log. Only the owning thread writes; the
// mutex makes cross-thread snapshots race-free and is uncontended on
// the recording path.
struct Tracer::Ring {
  Ring(std::size_t capacity, int tid_in) : events(capacity), tid(tid_in) {}

  std::mutex mutex;
  std::vector<TraceEvent> events;  // fixed capacity, pre-sized
  std::size_t next = 0;            // write cursor
  std::size_t size = 0;            // valid events, <= events.size()
  std::uint64_t dropped = 0;       // overwritten-oldest count
  int tid = 0;
};

namespace {
std::atomic<std::uint64_t> g_tracer_ids{1};
}  // namespace

Tracer::Tracer() : id_(g_tracer_ids.fetch_add(1, std::memory_order_relaxed)) {}

Tracer::~Tracer() = default;

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

std::int64_t Tracer::NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Tracer::SetCapacity(std::size_t events) {
  capacity_.store(events == 0 ? 1 : events, std::memory_order_relaxed);
}

Tracer::Ring* Tracer::ThisThreadRing() {
  // The cache is keyed on the tracer's unique id, not just its address,
  // so a test tracer reallocated at a dead tracer's address never
  // inherits a stale ring pointer.
  struct Cache {
    std::uint64_t tracer_id = 0;
    Ring* ring = nullptr;
  };
  thread_local Cache cache;
  if (cache.tracer_id == id_ && cache.ring != nullptr) return cache.ring;
  std::lock_guard<std::mutex> lock(registry_mutex_);
  rings_.emplace_back(
      new Ring(capacity_.load(std::memory_order_relaxed), next_tid_++));
  cache.tracer_id = id_;
  cache.ring = rings_.back().get();
  return cache.ring;
}

void Tracer::Record(const char* name, std::int64_t ts_us,
                    std::int64_t dur_us) {
  if (!enabled()) return;
  Ring* ring = ThisThreadRing();
  std::lock_guard<std::mutex> lock(ring->mutex);
  TraceEvent& slot = ring->events[ring->next];
  if (ring->size == ring->events.size()) {
    ++ring->dropped;  // overwriting the oldest buffered event
  } else {
    ++ring->size;
  }
  slot.name = name;
  slot.ts_us = ts_us;
  slot.dur_us = dur_us;
  slot.pid = 0;
  slot.tid = ring->tid;
  ring->next = (ring->next + 1) % ring->events.size();
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::vector<TraceEvent> events;
  std::lock_guard<std::mutex> registry_lock(registry_mutex_);
  for (const std::unique_ptr<Ring>& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    for (std::size_t i = 0; i < ring->size; ++i) {
      events.push_back(ring->events[i]);
    }
  }
  events.insert(events.end(), imported_.begin(), imported_.end());
  return events;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> registry_lock(registry_mutex_);
  for (const std::unique_ptr<Ring>& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    total += ring->dropped;
  }
  return total + imported_dropped_;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> registry_lock(registry_mutex_);
  for (const std::unique_ptr<Ring>& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    ring->next = 0;
    ring->size = 0;
    ring->dropped = 0;
  }
  imported_.clear();
  imported_dropped_ = 0;
  // interned_ is deliberately kept: TraceEvent snapshots taken before
  // the Clear() may still point at those names.
}

std::string Tracer::ChromeTraceJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::string json = "{\"traceEvents\":[";
  char buffer[128];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    if (i != 0) json += ",";
    json += "\n{\"name\":\"";
    AppendJsonEscaped(&json, event.name);
    std::snprintf(buffer, sizeof(buffer),
                  "\",\"cat\":\"ptucker\",\"ph\":\"X\",\"ts\":%lld,"
                  "\"dur\":%lld,\"pid\":%d,\"tid\":%d}",
                  static_cast<long long>(event.ts_us),
                  static_cast<long long>(event.dur_us), event.pid,
                  event.tid);
    json += buffer;
  }
  json += "\n]}\n";
  return json;
}

bool Tracer::WriteChromeTrace(const std::string& path,
                              std::string* error) const {
  const std::string json = ChromeTraceJson();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    if (error != nullptr) {
      *error = "cannot open '" + path + "': " + std::strerror(errno);
    }
    return false;
  }
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), file) == json.size();
  const bool closed = std::fclose(file) == 0;
  if (!(ok && closed)) {
    if (error != nullptr) *error = "short write to '" + path + "'";
    return false;
  }
  return true;
}

std::vector<std::uint8_t> Tracer::SerializeEvents() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::vector<std::uint8_t> payload;
  AppendScalar<std::uint32_t>(&payload, kTraceSerialVersion);
  AppendScalar<std::uint64_t>(&payload, dropped());
  AppendScalar<std::uint32_t>(&payload,
                              static_cast<std::uint32_t>(events.size()));
  for (const TraceEvent& event : events) {
    const std::size_t name_len = std::strlen(event.name);
    const std::uint16_t clamped = static_cast<std::uint16_t>(
        name_len > 0xffff ? 0xffff : name_len);
    AppendScalar<std::uint16_t>(&payload, clamped);
    payload.insert(payload.end(),
                   reinterpret_cast<const std::uint8_t*>(event.name),
                   reinterpret_cast<const std::uint8_t*>(event.name) +
                       clamped);
    AppendScalar<std::int64_t>(&payload, event.ts_us);
    AppendScalar<std::int64_t>(&payload, event.dur_us);
    AppendScalar<std::uint32_t>(&payload,
                                static_cast<std::uint32_t>(event.tid));
  }
  return payload;
}

bool Tracer::ImportSerialized(const std::vector<std::uint8_t>& payload,
                              int pid, std::string* error) {
  auto fail = [error](const char* what) {
    if (error != nullptr) *error = what;
    return false;
  };
  std::size_t offset = 0;
  std::uint32_t version = 0;
  std::uint64_t dropped = 0;
  std::uint32_t count = 0;
  if (!ReadScalar(payload, &offset, &version)) {
    return fail("trace payload truncated in header");
  }
  if (version != kTraceSerialVersion) {
    return fail("unsupported trace payload version");
  }
  if (!ReadScalar(payload, &offset, &dropped) ||
      !ReadScalar(payload, &offset, &count)) {
    return fail("trace payload truncated in header");
  }
  // Names repeat heavily (a handful of span labels times thousands of
  // events) — intern each distinct one once per import.
  std::map<std::string, const char*> names;
  std::lock_guard<std::mutex> lock(registry_mutex_);
  imported_dropped_ += dropped;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint16_t name_len = 0;
    if (!ReadScalar(payload, &offset, &name_len)) {
      return fail("trace payload truncated in event name length");
    }
    if (payload.size() - offset < name_len) {
      return fail("trace payload truncated in event name");
    }
    std::string name(reinterpret_cast<const char*>(payload.data()) + offset,
                     name_len);
    offset += name_len;
    TraceEvent event;
    std::uint32_t tid = 0;
    if (!ReadScalar(payload, &offset, &event.ts_us) ||
        !ReadScalar(payload, &offset, &event.dur_us) ||
        !ReadScalar(payload, &offset, &tid)) {
      return fail("trace payload truncated in event body");
    }
    auto it = names.find(name);
    if (it == names.end()) {
      interned_.push_back(std::move(name));
      it = names.emplace(interned_.back(), interned_.back().c_str()).first;
    }
    event.name = it->second;
    event.pid = pid;
    event.tid = static_cast<int>(tid);
    imported_.push_back(event);
  }
  if (offset != payload.size()) {
    return fail("trace payload has trailing bytes");
  }
  return true;
}

}  // namespace obs
}  // namespace ptucker
