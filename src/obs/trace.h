// Span tracing (docs/observability.md): `PTUCKER_TRACE_SPAN("als.x")`
// records a timestamped begin/duration event into a bounded per-thread
// ring buffer when tracing is enabled (a relaxed atomic load when it is
// not — the default — so instrumented code paths cost nothing in
// production). Events export as Chrome trace-event JSON
// (chrome://tracing, Perfetto) via --trace-out, and serialize compactly
// so distributed workers can ship their rings to the coordinator in the
// kBye shutdown frame for one merged per-rank timeline.
//
// Tracing is observability only: it never touches solver arithmetic, so
// trajectories with tracing on are bit-identical to tracing off (tested
// in obs_trace_test and gated in bench_observability).
#ifndef PTUCKER_OBS_TRACE_H_
#define PTUCKER_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ptucker {
namespace obs {

/// One completed span. `name` points at a string literal or at storage
/// interned by the owning Tracer — it is never freed per event.
struct TraceEvent {
  const char* name;      ///< span label, e.g. "als.factor_update"
  std::int64_t ts_us;    ///< begin, microseconds on the steady clock
  std::int64_t dur_us;   ///< duration in microseconds
  int pid;               ///< 0 = this process; worker rank + 1 on import
  int tid;               ///< small sequential id per recording thread
};

/// Collects spans into bounded per-thread ring buffers. Recording takes
/// the ring's own mutex — uncontended, since only the owning thread
/// writes it — so Snapshot()/export from another thread is race-free
/// (the rings are coarse span logs, not per-entry counters; the metrics
/// plane in obs/metrics.h is the lock-free hot path).
///
/// When a ring is full the oldest event is overwritten and counted in
/// dropped() — recording never blocks, reallocates, or invokes UB.
class Tracer {
 public:
  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer every PTUCKER_TRACE_SPAN records into.
  static Tracer& Global();

  /// Microseconds on the steady clock (CLOCK_MONOTONIC — system-wide on
  /// Linux, so timestamps from forked workers align with the
  /// coordinator's in a merged timeline).
  static std::int64_t NowMicros();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Per-thread ring capacity in events for rings created after the
  /// call (existing rings keep their size). Default 8192.
  void SetCapacity(std::size_t events);

  /// Records one completed span into this thread's ring. `name` must
  /// outlive the tracer (string literals do). No-op while disabled.
  void Record(const char* name, std::int64_t ts_us, std::int64_t dur_us);

  /// All buffered events across threads, in no particular order
  /// (Chrome sorts by timestamp). Safe concurrent with recording.
  std::vector<TraceEvent> Snapshot() const;

  /// Events overwritten because their ring was full, summed over rings.
  std::uint64_t dropped() const;

  /// Empties every ring and the dropped counters; rings stay registered
  /// so cached thread-local pointers remain valid.
  void Clear();

  /// The full buffer as Chrome trace-event JSON ("X" complete events).
  std::string ChromeTraceJson() const;

  /// Writes ChromeTraceJson() to `path`; false + `*error` on I/O error.
  bool WriteChromeTrace(const std::string& path, std::string* error) const;

  /// Compact binary form of Snapshot() + dropped() (little-endian; the
  /// kBye payload of the distributed protocol). Never fails.
  std::vector<std::uint8_t> SerializeEvents() const;

  /// Merges a SerializeEvents() payload into this tracer, stamping every
  /// imported event with `pid` (worker rank + 1 by convention; 0 is the
  /// importing process). Names are interned into tracer-owned storage.
  /// Returns false and sets `*error` on a malformed payload, leaving
  /// already-imported prefix events in place.
  bool ImportSerialized(const std::vector<std::uint8_t>& payload, int pid,
                        std::string* error);

 private:
  struct Ring;
  Ring* ThisThreadRing();

  const std::uint64_t id_;            // distinguishes tracer instances
  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> capacity_{8192};

  mutable std::mutex registry_mutex_;  // guards rings_, interned_, tids
  std::vector<std::unique_ptr<Ring>> rings_;
  std::deque<std::string> interned_;   // stable storage for imported names
  std::vector<TraceEvent> imported_;   // events merged from other processes
  std::uint64_t imported_dropped_ = 0;
  int next_tid_ = 1;
};

/// RAII span: stamps the start time at construction (only if the tracer
/// is enabled) and records on destruction. Use via PTUCKER_TRACE_SPAN.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, Tracer* tracer = nullptr)
      : tracer_(tracer != nullptr ? tracer : &Tracer::Global()),
        name_(name),
        active_(tracer_->enabled()) {
    if (active_) start_us_ = Tracer::NowMicros();
  }
  ~TraceSpan() {
    if (active_) {
      tracer_->Record(name_, start_us_, Tracer::NowMicros() - start_us_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Tracer* tracer_;
  const char* name_;
  bool active_;
  std::int64_t start_us_ = 0;
};

}  // namespace obs
}  // namespace ptucker

#define PTUCKER_OBS_CONCAT_INNER(a, b) a##b
#define PTUCKER_OBS_CONCAT(a, b) PTUCKER_OBS_CONCAT_INNER(a, b)

/// Traces the enclosing scope as one span named `name` (a string
/// literal) in the global tracer. Costs one relaxed load when tracing
/// is disabled.
#define PTUCKER_TRACE_SPAN(name)                                     \
  ::ptucker::obs::TraceSpan PTUCKER_OBS_CONCAT(ptucker_trace_span_, \
                                               __LINE__)(name)

#endif  // PTUCKER_OBS_TRACE_H_
