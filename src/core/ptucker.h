/// \file
/// \brief The P-Tucker solver entry point (paper Algorithm 2): row-wise
/// ALS Tucker factorization of a sparse, partially observed tensor, and
/// the TuckerFactorization / PTuckerResult output types.
#ifndef PTUCKER_CORE_PTUCKER_H_
#define PTUCKER_CORE_PTUCKER_H_

#include <cstdint>
#include <vector>

#include "core/options.h"
#include "core/trace.h"
#include "linalg/matrix.h"
#include "tensor/dense_tensor.h"
#include "tensor/sparse_tensor.h"

namespace ptucker {

/// A fitted Tucker model: X ≈ G ×1 A(1) ··· ×N A(N).
struct TuckerFactorization {
  std::vector<Matrix> factors;  ///< A(n) ∈ R^{In×Jn}
  DenseTensor core;             ///< G ∈ R^{J1×…×JN}

  /// Predicted value at a coordinate (Eq. 4) — the paper's missing-entry
  /// estimate, *not* zero.
  double Predict(const std::int64_t* index) const;
  /// Vector-coordinate convenience overload of Predict.
  double Predict(const std::vector<std::int64_t>& index) const;
};

/// Outcome of a P-Tucker run.
struct PTuckerResult {
  /// The fitted model (factors orthogonalized when the option is on).
  TuckerFactorization model;
  /// Per-iteration error/time/memory measurements.
  std::vector<IterationStats> iterations;
  /// True if the error converged before max_iterations.
  bool converged = false;
  /// Reconstruction error (Eq. 5) of the returned model on the input.
  double final_error = 0.0;
  /// Wall-clock seconds of the whole solve.
  double total_seconds = 0.0;

  /// Mean seconds per ALS iteration — the paper's reporting unit
  /// ("average elapsed time per iteration", §IV-A3).
  double SecondsPerIteration() const;
};

/// P-Tucker (paper Algorithm 2): scalable Tucker factorization of a sparse
/// partially-observed tensor by fully-parallel row-wise ALS.
///
/// Requirements: `x.nnz() > 0` and `x.has_mode_index()` (call
/// `BuildModeIndex()` once after filling the tensor); options.core_dims
/// must match `x.order()` with 1 <= Jn <= In. Violations throw
/// std::invalid_argument.
///
/// Throws OutOfMemoryBudget if options.tracker has a budget and the
/// variant's intermediate data exceeds it (only realistic for kCache).
PTuckerResult PTuckerDecompose(const SparseTensor& x,
                               const PTuckerOptions& options);

}  // namespace ptucker

#endif  // PTUCKER_CORE_PTUCKER_H_
