#include "core/delta_engine.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace ptucker {

// ---------------------------------------------------------------------------
// Base class: entry-major reference kernels shared by naive and cached.
// ---------------------------------------------------------------------------

double DeltaEngine::Reconstruct(const std::int64_t* entry_index) const {
  return ReconstructFromList(core(), factors(), entry_index);
}

void DeltaEngine::ComputeProducts(const std::int64_t* entry_index,
                                  double* products) const {
  const CoreEntryList& list = core();
  const std::vector<FactorView>& f = factors();
  const std::int64_t order = list.order();
  const std::int64_t n_entries = list.size();
  for (std::int64_t b = 0; b < n_entries; ++b) {
    const std::int32_t* beta = list.index(b);
    double product = list.value(b);
    for (std::int64_t k = 0; k < order; ++k) {
      product *= f[static_cast<std::size_t>(k)](entry_index[k], beta[k]);
    }
    products[b] = product;
  }
}

double DeltaEngine::DesignDot(const std::int64_t* entry_index,
                              const double* g) const {
  const CoreEntryList& list = core();
  const std::vector<FactorView>& f = factors();
  const std::int64_t order = list.order();
  const std::int64_t n_entries = list.size();
  double sum = 0.0;
  for (std::int64_t b = 0; b < n_entries; ++b) {
    const std::int32_t* beta = list.index(b);
    double product = 1.0;
    for (std::int64_t k = 0; k < order; ++k) {
      product *= f[static_cast<std::size_t>(k)](entry_index[k], beta[k]);
    }
    sum += g[b] * product;
  }
  return sum;
}

void DeltaEngine::DesignAccumulate(const std::int64_t* entry_index,
                                   double scale, double* z) const {
  const CoreEntryList& list = core();
  const std::vector<FactorView>& f = factors();
  const std::int64_t order = list.order();
  const std::int64_t n_entries = list.size();
  for (std::int64_t b = 0; b < n_entries; ++b) {
    const std::int32_t* beta = list.index(b);
    double product = 1.0;
    for (std::int64_t k = 0; k < order; ++k) {
      product *= f[static_cast<std::size_t>(k)](entry_index[k], beta[k]);
    }
    z[b] += scale * product;
  }
}

void DeltaEngine::DeltaBatch(std::int64_t count, const std::int64_t* entries,
                             const std::int64_t* const* entry_indices,
                             std::int64_t mode, double* deltas) const {
  const std::int64_t rank =
      factors()[static_cast<std::size_t>(mode)].cols();
  for (std::int64_t i = 0; i < count; ++i) {
    ComputeDelta(entries[i], entry_indices[i], mode, deltas + i * rank);
  }
}

void DeltaEngine::ReconstructBatch(std::int64_t count,
                                   const std::int64_t* const* entry_indices,
                                   double* out) const {
  for (std::int64_t i = 0; i < count; ++i) {
    out[i] = Reconstruct(entry_indices[i]);
  }
}

void DeltaEngine::ProductsBatch(std::int64_t count,
                                const std::int64_t* const* entry_indices,
                                double* products) const {
  const std::int64_t n_core = core().size();
  for (std::int64_t i = 0; i < count; ++i) {
    ComputeProducts(entry_indices[i], products + i * n_core);
  }
}

void DeltaEngine::OnFactorUpdated(std::int64_t mode, const Matrix& old_factor) {
  (void)mode;
  (void)old_factor;
}

void DeltaEngine::OnCoreEntriesRemoved(const std::vector<char>& removed) {
  (void)removed;
}

// ---------------------------------------------------------------------------
// NaiveDeltaEngine
// ---------------------------------------------------------------------------

void NaiveDeltaEngine::ComputeDelta(std::int64_t /*entry*/,
                                    const std::int64_t* entry_index,
                                    std::int64_t mode, double* delta) const {
  ptucker::ComputeDelta(core(), factors(), entry_index, mode, delta);
}

// ---------------------------------------------------------------------------
// ModeMajorDeltaEngine
// ---------------------------------------------------------------------------

ModeMajorDeltaEngine::ModeMajorDeltaEngine(const CoreEntryList& core,
                                           const std::vector<Matrix>& factors,
                                           MemoryTracker* tracker)
    : ModeMajorDeltaEngine(core, MakeFactorViews(factors), tracker) {}

ModeMajorDeltaEngine::ModeMajorDeltaEngine(const CoreEntryList& core,
                                           std::vector<FactorView> factors,
                                           MemoryTracker* tracker)
    : DeltaEngine(core, std::move(factors)), tracker_(tracker) {
  PTUCKER_CHECK(core.order() >= 1 && core.order() <= kMaxOrder);
  PTUCKER_CHECK(static_cast<std::int64_t>(this->factors().size()) ==
                core.order());
  // Charge before allocating, like the cache table, so an over-budget
  // engine fails as OutOfMemoryBudget without building anything.
  charged_bytes_ = ExpectedBytes();
  if (tracker_ != nullptr) tracker_->Charge(charged_bytes_);
  BuildViews();
}

ModeMajorDeltaEngine::~ModeMajorDeltaEngine() {
  if (tracker_ != nullptr) tracker_->Release(charged_bytes_);
}

std::int64_t ModeMajorDeltaEngine::ExpectedBytes() const {
  const std::int64_t order = core().order();
  const std::int64_t n_entries = core().size();
  std::int64_t bytes = 0;
  for (std::int64_t n = 0; n < order; ++n) {
    const std::int64_t rank = factors()[static_cast<std::size_t>(n)].cols();
    bytes += static_cast<std::int64_t>(sizeof(std::int64_t)) * (rank + 1);
    bytes += static_cast<std::int64_t>(sizeof(std::int32_t)) * n_entries *
             (order - 1);
    bytes += static_cast<std::int64_t>(sizeof(double)) * n_entries;
    bytes += static_cast<std::int64_t>(sizeof(std::int32_t)) * n_entries;
  }
  return bytes;
}

void ModeMajorDeltaEngine::BuildViews() {
  const CoreEntryList& list = core();
  const std::int64_t order = list.order();
  const std::int64_t n_entries = list.size();
  const std::int64_t width = order - 1;

  views_.assign(static_cast<std::size_t>(order), ModeView());
  for (std::int64_t n = 0; n < order; ++n) {
    ModeView& view = views_[static_cast<std::size_t>(n)];
    const std::int64_t rank = factors()[static_cast<std::size_t>(n)].cols();

    // Stable counting sort by β_n: group sizes, exclusive prefix, scatter
    // in list order. Stability keeps per-group accumulation order equal to
    // the naive scan's, so δ is bit-identical between the two engines.
    view.offsets.assign(static_cast<std::size_t>(rank + 1), 0);
    for (std::int64_t b = 0; b < n_entries; ++b) {
      ++view.offsets[static_cast<std::size_t>(list.index(b)[n] + 1)];
    }
    for (std::int64_t j = 0; j < rank; ++j) {
      view.offsets[static_cast<std::size_t>(j + 1)] +=
          view.offsets[static_cast<std::size_t>(j)];
    }

    view.cols.resize(static_cast<std::size_t>(n_entries * width));
    view.values.resize(static_cast<std::size_t>(n_entries));
    view.list_pos.resize(static_cast<std::size_t>(n_entries));
    std::vector<std::int64_t> cursor(view.offsets.begin(),
                                     view.offsets.end() - 1);
    for (std::int64_t b = 0; b < n_entries; ++b) {
      const std::int32_t* beta = list.index(b);
      const std::int64_t t = cursor[static_cast<std::size_t>(beta[n])]++;
      std::int32_t* col = view.cols.data() + t * width;
      std::int64_t w = 0;
      for (std::int64_t k = 0; k < order; ++k) {
        if (k == n) continue;
        col[w++] = beta[k];
      }
      view.values[static_cast<std::size_t>(t)] = list.value(b);
      view.list_pos[static_cast<std::size_t>(t)] =
          static_cast<std::int32_t>(b);
    }
  }
}

namespace {

// Gathers the factor-row base pointers for every mode except `skip`
// (ascending mode order) and returns how many were written.
inline std::int64_t GatherRows(const std::vector<FactorView>& factors,
                               const std::int64_t* entry_index,
                               std::int64_t order, std::int64_t skip,
                               const double** rows) {
  std::int64_t w = 0;
  for (std::int64_t k = 0; k < order; ++k) {
    if (k == skip) continue;
    rows[w++] = factors[static_cast<std::size_t>(k)].Row(entry_index[k]);
  }
  return w;
}

// Σ over one group of the branch-free (N−1)-term products. Width-
// specialized so the common orders (3- and 4-way tensors) fully unroll.
inline double GroupSum(const double* values, const std::int32_t* cols,
                       std::int64_t begin, std::int64_t end,
                       std::int64_t width, const double* const* rows) {
  double acc = 0.0;
  switch (width) {
    case 1: {
      const double* r0 = rows[0];
      for (std::int64_t t = begin; t < end; ++t) {
        acc += values[t] * r0[cols[t]];
      }
      break;
    }
    case 2: {
      const double* r0 = rows[0];
      const double* r1 = rows[1];
      const std::int32_t* col = cols + begin * 2;
      for (std::int64_t t = begin; t < end; ++t, col += 2) {
        acc += values[t] * r0[col[0]] * r1[col[1]];
      }
      break;
    }
    case 3: {
      const double* r0 = rows[0];
      const double* r1 = rows[1];
      const double* r2 = rows[2];
      const std::int32_t* col = cols + begin * 3;
      for (std::int64_t t = begin; t < end; ++t, col += 3) {
        acc += values[t] * r0[col[0]] * r1[col[1]] * r2[col[2]];
      }
      break;
    }
    default: {
      const std::int32_t* col = cols + begin * width;
      for (std::int64_t t = begin; t < end; ++t, col += width) {
        double product = values[t];
        for (std::int64_t w = 0; w < width; ++w) {
          product *= rows[w][col[w]];
        }
        acc += product;
      }
      break;
    }
  }
  return acc;
}

}  // namespace

void ModeMajorDeltaEngine::ComputeDelta(std::int64_t /*entry*/,
                                        const std::int64_t* entry_index,
                                        std::int64_t mode,
                                        double* delta) const {
  ComputeDeltaGrouped(entry_index, mode, /*skip=*/nullptr, delta);
}

void ModeMajorDeltaEngine::ComputeDeltaGrouped(const std::int64_t* entry_index,
                                               std::int64_t mode,
                                               const char* skip,
                                               double* delta) const {
  const ModeView& v = view(mode);
  const std::int64_t order = core().order();
  const std::int64_t width = order - 1;
  const std::int64_t rank =
      factors()[static_cast<std::size_t>(mode)].cols();
  const double* rows[kMaxOrder];
  GatherRows(factors(), entry_index, order, mode, rows);
  const double* values = v.values.data();
  const std::int32_t* cols = v.cols.data();
  for (std::int64_t j = 0; j < rank; ++j) {
    if (skip != nullptr && skip[j]) {
      delta[j] = 0.0;  // the group's |G| mass is inside the ε budget
      continue;
    }
    delta[j] = GroupSum(values, cols, v.offsets[static_cast<std::size_t>(j)],
                        v.offsets[static_cast<std::size_t>(j + 1)], width,
                        rows);
  }
}

double ModeMajorDeltaEngine::Reconstruct(
    const std::int64_t* entry_index) const {
  const ModeView& view = views_[0];
  const std::int64_t order = core().order();
  const std::int64_t width = order - 1;
  const std::int64_t rank = factors()[0].cols();
  const double* rows[kMaxOrder];
  GatherRows(factors(), entry_index, order, /*skip=*/0, rows);
  const double* coefficients = factors()[0].Row(entry_index[0]);
  const double* values = view.values.data();
  const std::int32_t* cols = view.cols.data();
  double sum = 0.0;
  for (std::int64_t j = 0; j < rank; ++j) {
    const double coefficient = coefficients[j];
    if (coefficient == 0.0) continue;  // group-level skip
    sum += coefficient *
           GroupSum(values, cols, view.offsets[static_cast<std::size_t>(j)],
                    view.offsets[static_cast<std::size_t>(j + 1)], width,
                    rows);
  }
  return sum;
}

void ModeMajorDeltaEngine::ComputeProducts(const std::int64_t* entry_index,
                                           double* products) const {
  const ModeView& view = views_[0];
  const std::int64_t order = core().order();
  const std::int64_t width = order - 1;
  const std::int64_t rank = factors()[0].cols();
  const double* rows[kMaxOrder];
  GatherRows(factors(), entry_index, order, /*skip=*/0, rows);
  const double* coefficients = factors()[0].Row(entry_index[0]);
  for (std::int64_t j = 0; j < rank; ++j) {
    const std::int64_t begin = view.offsets[static_cast<std::size_t>(j)];
    const std::int64_t end = view.offsets[static_cast<std::size_t>(j + 1)];
    const double coefficient = coefficients[j];
    if (coefficient == 0.0) {  // group-level skip: every product is 0
      for (std::int64_t t = begin; t < end; ++t) {
        products[view.list_pos[static_cast<std::size_t>(t)]] = 0.0;
      }
      continue;
    }
    const std::int32_t* col = view.cols.data() + begin * width;
    for (std::int64_t t = begin; t < end; ++t, col += width) {
      // value · A(0) first, remaining modes ascending — the same multiply
      // order as the entry-major scan, so products match it bit-for-bit.
      double product = view.values[static_cast<std::size_t>(t)] * coefficient;
      for (std::int64_t w = 0; w < width; ++w) {
        product *= rows[w][col[w]];
      }
      products[view.list_pos[static_cast<std::size_t>(t)]] = product;
    }
  }
}

double ModeMajorDeltaEngine::DesignDot(const std::int64_t* entry_index,
                                       const double* g) const {
  const ModeView& view = views_[0];
  const std::int64_t order = core().order();
  const std::int64_t width = order - 1;
  const std::int64_t rank = factors()[0].cols();
  const double* rows[kMaxOrder];
  GatherRows(factors(), entry_index, order, /*skip=*/0, rows);
  const double* coefficients = factors()[0].Row(entry_index[0]);
  double sum = 0.0;
  for (std::int64_t j = 0; j < rank; ++j) {
    const double coefficient = coefficients[j];
    if (coefficient == 0.0) continue;  // group-level skip
    const std::int64_t begin = view.offsets[static_cast<std::size_t>(j)];
    const std::int64_t end = view.offsets[static_cast<std::size_t>(j + 1)];
    const std::int32_t* col = view.cols.data() + begin * width;
    double group = 0.0;
    for (std::int64_t t = begin; t < end; ++t, col += width) {
      double product = coefficient;
      for (std::int64_t w = 0; w < width; ++w) {
        product *= rows[w][col[w]];
      }
      group += g[view.list_pos[static_cast<std::size_t>(t)]] * product;
    }
    sum += group;
  }
  return sum;
}

void ModeMajorDeltaEngine::DesignAccumulate(const std::int64_t* entry_index,
                                            double scale, double* z) const {
  const ModeView& view = views_[0];
  const std::int64_t order = core().order();
  const std::int64_t width = order - 1;
  const std::int64_t rank = factors()[0].cols();
  const double* rows[kMaxOrder];
  GatherRows(factors(), entry_index, order, /*skip=*/0, rows);
  const double* coefficients = factors()[0].Row(entry_index[0]);
  for (std::int64_t j = 0; j < rank; ++j) {
    const double coefficient = coefficients[j];
    if (coefficient == 0.0) continue;  // group-level skip: adds exact zeros
    const std::int64_t begin = view.offsets[static_cast<std::size_t>(j)];
    const std::int64_t end = view.offsets[static_cast<std::size_t>(j + 1)];
    const std::int32_t* col = view.cols.data() + begin * width;
    for (std::int64_t t = begin; t < end; ++t, col += width) {
      double product = coefficient;
      for (std::int64_t w = 0; w < width; ++w) {
        product *= rows[w][col[w]];
      }
      z[view.list_pos[static_cast<std::size_t>(t)]] += scale * product;
    }
  }
}

void ModeMajorDeltaEngine::OnCoreValuesChanged() {
  // Same sparsity pattern: only the value arrays need rewriting, through
  // the stored grouped-position → list-id permutation. No re-sort.
  const CoreEntryList& list = core();
  for (ModeView& view : views_) {
    for (std::size_t t = 0; t < view.values.size(); ++t) {
      view.values[t] = list.value(view.list_pos[t]);
    }
  }
}

void ModeMajorDeltaEngine::OnCoreEntriesRemoved(
    const std::vector<char>& removed) {
  // The list compacted in place keeping order; do the same to each view.
  // Old list ids map to new ids by counting the keeps before them.
  const std::int64_t old_size = static_cast<std::int64_t>(removed.size());
  std::vector<std::int32_t> new_id(static_cast<std::size_t>(old_size), -1);
  std::int32_t next = 0;
  for (std::int64_t b = 0; b < old_size; ++b) {
    if (!removed[static_cast<std::size_t>(b)]) {
      new_id[static_cast<std::size_t>(b)] = next++;
    }
  }
  PTUCKER_CHECK(static_cast<std::int64_t>(next) == core().size());

  const std::int64_t order = core().order();
  const std::int64_t width = order - 1;
  for (std::int64_t n = 0; n < order; ++n) {
    ModeView& view = views_[static_cast<std::size_t>(n)];
    const std::int64_t rank = static_cast<std::int64_t>(view.offsets.size()) - 1;
    std::int64_t write = 0;
    for (std::int64_t j = 0; j < rank; ++j) {
      const std::int64_t begin = view.offsets[static_cast<std::size_t>(j)];
      const std::int64_t end = view.offsets[static_cast<std::size_t>(j + 1)];
      view.offsets[static_cast<std::size_t>(j)] = write;
      for (std::int64_t t = begin; t < end; ++t) {
        const std::int32_t old_pos = view.list_pos[static_cast<std::size_t>(t)];
        if (removed[static_cast<std::size_t>(old_pos)]) continue;
        if (write != t) {
          for (std::int64_t w = 0; w < width; ++w) {
            view.cols[static_cast<std::size_t>(write * width + w)] =
                view.cols[static_cast<std::size_t>(t * width + w)];
          }
          view.values[static_cast<std::size_t>(write)] =
              view.values[static_cast<std::size_t>(t)];
        }
        view.list_pos[static_cast<std::size_t>(write)] =
            new_id[static_cast<std::size_t>(old_pos)];
        ++write;
      }
    }
    view.offsets[static_cast<std::size_t>(rank)] = write;
    view.cols.resize(static_cast<std::size_t>(write * width));
    view.values.resize(static_cast<std::size_t>(write));
    view.list_pos.resize(static_cast<std::size_t>(write));
  }

  // Shrinking never throws; release the difference.
  const std::int64_t new_bytes = ExpectedBytes();
  if (tracker_ != nullptr && new_bytes < charged_bytes_) {
    tracker_->Release(charged_bytes_ - new_bytes);
  }
  charged_bytes_ = new_bytes;
}

// ---------------------------------------------------------------------------
// AdaptiveDeltaEngine
// ---------------------------------------------------------------------------

AdaptiveDeltaEngine::AdaptiveDeltaEngine(const CoreEntryList& core,
                                         const std::vector<Matrix>& factors,
                                         MemoryTracker* tracker,
                                         double epsilon)
    : AdaptiveDeltaEngine(core, MakeFactorViews(factors), tracker, epsilon) {}

AdaptiveDeltaEngine::AdaptiveDeltaEngine(const CoreEntryList& core,
                                         std::vector<FactorView> factors,
                                         MemoryTracker* tracker,
                                         double epsilon)
    : ModeMajorDeltaEngine(core, std::move(factors), tracker),
      epsilon_(epsilon) {
  PTUCKER_CHECK(epsilon >= 0.0 && epsilon < 1.0);
  RecomputeSkips();
}

void AdaptiveDeltaEngine::RecomputeSkips() {
  const std::int64_t order = core().order();
  skip_.assign(static_cast<std::size_t>(order), {});
  for (std::int64_t n = 0; n < order; ++n) {
    const ModeView& v = view(n);
    const std::int64_t rank =
        static_cast<std::int64_t>(v.offsets.size()) - 1;
    std::vector<double> weight(static_cast<std::size_t>(rank), 0.0);
    double total = 0.0;
    for (std::int64_t j = 0; j < rank; ++j) {
      double w = 0.0;
      for (std::int64_t t = v.offsets[static_cast<std::size_t>(j)];
           t < v.offsets[static_cast<std::size_t>(j + 1)]; ++t) {
        w += std::fabs(v.values[static_cast<std::size_t>(t)]);
      }
      weight[static_cast<std::size_t>(j)] = w;
      total += w;
    }

    // Greedy smallest-weight-first (index tie-break keeps the selection
    // deterministic): skip groups while their cumulative magnitude stays
    // within the ε fraction of the view's total. At ε = 0 only empty /
    // zero-weight groups qualify, whose δ component is an exact 0 anyway —
    // hence bit-identity with the mode-major engine.
    std::vector<std::int64_t> by_weight(static_cast<std::size_t>(rank));
    std::iota(by_weight.begin(), by_weight.end(), 0);
    std::sort(by_weight.begin(), by_weight.end(),
              [&](std::int64_t a, std::int64_t b) {
                const double wa = weight[static_cast<std::size_t>(a)];
                const double wb = weight[static_cast<std::size_t>(b)];
                return wa != wb ? wa < wb : a < b;
              });
    std::vector<char>& skip = skip_[static_cast<std::size_t>(n)];
    skip.assign(static_cast<std::size_t>(rank), 0);
    const double budget = epsilon_ * total;
    double cumulative = 0.0;
    for (const std::int64_t j : by_weight) {
      const double w = weight[static_cast<std::size_t>(j)];
      if (cumulative + w > budget) break;  // heavier groups cannot fit
      cumulative += w;
      skip[static_cast<std::size_t>(j)] = 1;
    }
  }
}

void AdaptiveDeltaEngine::ComputeDelta(std::int64_t /*entry*/,
                                       const std::int64_t* entry_index,
                                       std::int64_t mode,
                                       double* delta) const {
  ComputeDeltaGrouped(entry_index, mode,
                      skip_[static_cast<std::size_t>(mode)].data(), delta);
}

void AdaptiveDeltaEngine::OnCoreValuesChanged() {
  ModeMajorDeltaEngine::OnCoreValuesChanged();
  RecomputeSkips();
}

void AdaptiveDeltaEngine::OnCoreEntriesRemoved(
    const std::vector<char>& removed) {
  ModeMajorDeltaEngine::OnCoreEntriesRemoved(removed);
  RecomputeSkips();
}

std::int64_t AdaptiveDeltaEngine::SkippedGroups(std::int64_t mode) const {
  const std::vector<char>& skip = skip_[static_cast<std::size_t>(mode)];
  std::int64_t count = 0;
  for (const char s : skip) count += s != 0 ? 1 : 0;
  return count;
}

// ---------------------------------------------------------------------------
// TiledDeltaEngine
// ---------------------------------------------------------------------------

TiledDeltaEngine::TiledDeltaEngine(const CoreEntryList& core,
                                   const std::vector<Matrix>& factors,
                                   MemoryTracker* tracker,
                                   std::int64_t tile_width)
    : TiledDeltaEngine(core, MakeFactorViews(factors), tracker, tile_width) {}

TiledDeltaEngine::TiledDeltaEngine(const CoreEntryList& core,
                                   std::vector<FactorView> factors,
                                   MemoryTracker* tracker,
                                   std::int64_t tile_width)
    : ModeMajorDeltaEngine(core, std::move(factors), tracker),
      tile_(std::min<std::int64_t>(tile_width, kMaxTile)) {
  PTUCKER_CHECK(tile_width >= 1);
}

namespace {

// Whether the build can honor `#pragma omp simd`. The build requires
// OpenMP today, but the scalar fallback keeps the kernels correct in any
// future configuration without it.
#ifdef _OPENMP
constexpr bool kHaveOmpSimd = true;
#define PTUCKER_OMP_SIMD _Pragma("omp simd")
#else
constexpr bool kHaveOmpSimd = false;
#define PTUCKER_OMP_SIMD
#endif

}  // namespace

bool TiledDeltaEngine::SimdEligible(std::int64_t count,
                                    std::int64_t mode) const {
  if (!kHaveOmpSimd || count < kSimdMinTile) return false;
  const std::int64_t order = core().order();
  const std::int64_t width = order - 1;
  if (width < 1 || width > kMaxPackWidth) return false;
  for (std::int64_t k = 0; k < order; ++k) {
    if (k == mode) continue;
    if (factors()[static_cast<std::size_t>(k)].cols() > kMaxPackRank) {
      return false;
    }
  }
  return true;
}

void TiledDeltaEngine::DeltaBatch(std::int64_t count,
                                  const std::int64_t* entries,
                                  const std::int64_t* const* entry_indices,
                                  std::int64_t mode, double* deltas) const {
  (void)entries;  // the regrouped kernel only needs coordinates
  const std::int64_t rank =
      factors()[static_cast<std::size_t>(mode)].cols();
  for (std::int64_t start = 0; start < count; start += tile_) {
    const std::int64_t chunk = std::min(tile_, count - start);
    if (SimdEligible(chunk, mode)) {
      TileKernelSimd(entry_indices + start, chunk, mode,
                     deltas + start * rank);
    } else {
      TileKernelScalar(entry_indices + start, chunk, mode,
                       deltas + start * rank);
    }
  }
}

void TiledDeltaEngine::ReconstructBatch(
    std::int64_t count, const std::int64_t* const* entry_indices,
    double* out) const {
  for (std::int64_t start = 0; start < count; start += tile_) {
    const std::int64_t chunk = std::min(tile_, count - start);
    if (SimdEligible(chunk, /*mode=*/0)) {
      ReconstructTileSimd(entry_indices + start, chunk, out + start);
    } else {
      ReconstructTileScalar(entry_indices + start, chunk, out + start);
    }
  }
}

void TiledDeltaEngine::ProductsBatch(std::int64_t count,
                                     const std::int64_t* const* entry_indices,
                                     double* products) const {
  const std::int64_t n_core = core().size();
  for (std::int64_t start = 0; start < count; start += tile_) {
    const std::int64_t chunk = std::min(tile_, count - start);
    if (SimdEligible(chunk, /*mode=*/0)) {
      ProductsTileSimd(entry_indices + start, chunk,
                       products + start * n_core);
    } else {
      ProductsTileScalar(entry_indices + start, chunk,
                         products + start * n_core);
    }
  }
}

namespace {

// One group's tile contributions from per-lane row pointers:
// acc[i] = Σ_t value_t · Π_w rows[w][i][col_w], accumulated in t order —
// the same multiply/accumulate order as GroupSum, so every lane is
// bit-identical to the mode-major per-entry scan. Width-specialized like
// GroupSum; shared by the scalar δ and x̂ tile kernels so the group
// stream exists exactly once.
inline void AccumulateGroupRows(
    const double* values, const std::int32_t* cols, std::int64_t begin,
    std::int64_t end, std::int64_t width,
    const double* const (*rows)[TiledDeltaEngine::kMaxTile],
    std::int64_t count, double* acc) {
  for (std::int64_t i = 0; i < count; ++i) acc[i] = 0.0;
  switch (width) {
    case 1: {
      const double* const* r0 = rows[0];
      for (std::int64_t t = begin; t < end; ++t) {
        const double value = values[t];
        const std::int32_t c0 = cols[t];
        for (std::int64_t i = 0; i < count; ++i) {
          acc[i] += value * r0[i][c0];
        }
      }
      break;
    }
    case 2: {
      const double* const* r0 = rows[0];
      const double* const* r1 = rows[1];
      const std::int32_t* col = cols + begin * 2;
      for (std::int64_t t = begin; t < end; ++t, col += 2) {
        const double value = values[t];
        const std::int32_t c0 = col[0];
        const std::int32_t c1 = col[1];
        for (std::int64_t i = 0; i < count; ++i) {
          acc[i] += value * r0[i][c0] * r1[i][c1];
        }
      }
      break;
    }
    case 3: {
      const double* const* r0 = rows[0];
      const double* const* r1 = rows[1];
      const double* const* r2 = rows[2];
      const std::int32_t* col = cols + begin * 3;
      for (std::int64_t t = begin; t < end; ++t, col += 3) {
        const double value = values[t];
        const std::int32_t c0 = col[0];
        const std::int32_t c1 = col[1];
        const std::int32_t c2 = col[2];
        for (std::int64_t i = 0; i < count; ++i) {
          acc[i] += value * r0[i][c0] * r1[i][c1] * r2[i][c2];
        }
      }
      break;
    }
    default: {
      const std::int32_t* col = cols + begin * width;
      for (std::int64_t t = begin; t < end; ++t, col += width) {
        const double value = values[t];
        for (std::int64_t i = 0; i < count; ++i) {
          double product = value;
          for (std::int64_t w = 0; w < width; ++w) {
            product *= rows[w][i][col[w]];
          }
          acc[i] += product;
        }
      }
      break;
    }
  }
}

}  // namespace

void TiledDeltaEngine::TileKernelScalar(
    const std::int64_t* const* entry_indices, std::int64_t count,
    std::int64_t mode, double* deltas) const {
  const ModeView& v = view(mode);
  const std::int64_t order = core().order();
  const std::int64_t width = order - 1;
  const std::int64_t rank =
      factors()[static_cast<std::size_t>(mode)].cols();
  // Slot-major factor-row pointers: rows[w][i] is tile entry i's row for
  // the w-th non-mode mode, so the width-specialized loops below index a
  // contiguous pointer array per slot.
  const double* rows[kMaxOrder][kMaxTile];
  for (std::int64_t i = 0; i < count; ++i) {
    const std::int64_t* idx = entry_indices[i];
    std::int64_t w = 0;
    for (std::int64_t k = 0; k < order; ++k) {
      if (k == mode) continue;
      rows[w++][i] = factors()[static_cast<std::size_t>(k)].Row(idx[k]);
    }
  }

  const double* values = v.values.data();
  const std::int32_t* cols = v.cols.data();
  double acc[kMaxTile];
  for (std::int64_t j = 0; j < rank; ++j) {
    // Each core entry's value/columns are loaded once and applied to the
    // whole tile; the count-many accumulators are independent dependency
    // chains, unlike the single running sum of the per-entry kernel.
    AccumulateGroupRows(values, cols, v.offsets[static_cast<std::size_t>(j)],
                        v.offsets[static_cast<std::size_t>(j + 1)], width,
                        rows, count, acc);
    for (std::int64_t i = 0; i < count; ++i) {
      deltas[i * rank + j] = acc[i];
    }
  }
}

// ---------------------------------------------------------------------------
// SIMD tile kernels. Each packs the tile's factor rows into transposed
// scratch first — packed[w][c·count + i] holds lane i's coefficient for
// column c of the w-th non-mode factor — so the `#pragma omp simd` lane
// loops load contiguous vectors (one unit-stride block per streamed core
// entry) instead of dereferencing count row pointers per group entry.
// The arithmetic per lane is exactly the scalar kernel's (same values,
// same multiply/accumulate order), so the two paths are bit-identical.
// ---------------------------------------------------------------------------

namespace {

// Pack scratch of one SIMD tile call (sized by the SimdEligible bounds).
struct PackedTile {
  double slots[TiledDeltaEngine::kMaxPackWidth]
              [TiledDeltaEngine::kMaxTile * TiledDeltaEngine::kMaxPackRank];
};

// Transposes the tile's factor rows for every mode except `skip` into
// `pack` (ascending mode order, like GatherRows).
inline void PackRows(const std::vector<FactorView>& factors,
                     const std::int64_t* const* entry_indices,
                     std::int64_t count, std::int64_t order, std::int64_t skip,
                     PackedTile* pack) {
  std::int64_t w = 0;
  for (std::int64_t k = 0; k < order; ++k) {
    if (k == skip) continue;
    const FactorView& factor = factors[static_cast<std::size_t>(k)];
    const std::int64_t rank = factor.cols();
    double* packed = pack->slots[w++];
    for (std::int64_t i = 0; i < count; ++i) {
      const double* row = factor.Row(entry_indices[i][k]);
      for (std::int64_t c = 0; c < rank; ++c) {
        packed[c * count + i] = row[c];
      }
    }
  }
}

// Packed counterpart of AccumulateGroupRows: the same group stream and
// multiply/accumulate order, reading each factor column's lane values as
// one unit-stride block of the transposed pack, with `#pragma omp simd`
// lane loops. Bit-identical to AccumulateGroupRows. Width is in
// [1, kMaxPackWidth] (SimdEligible), so 3 is the default case. Shared by
// the SIMD delta and x-hat tile kernels.
inline void AccumulateGroupPacked(const double* values,
                                  const std::int32_t* cols,
                                  std::int64_t begin, std::int64_t end,
                                  std::int64_t width, const double* p0,
                                  const double* p1, const double* p2,
                                  std::int64_t count, double* acc) {
  PTUCKER_OMP_SIMD
  for (std::int64_t i = 0; i < count; ++i) acc[i] = 0.0;
  switch (width) {
    case 1: {
      for (std::int64_t t = begin; t < end; ++t) {
        const double value = values[t];
        const double* a0 = p0 + cols[t] * count;
        PTUCKER_OMP_SIMD
        for (std::int64_t i = 0; i < count; ++i) {
          acc[i] += value * a0[i];
        }
      }
      break;
    }
    case 2: {
      const std::int32_t* col = cols + begin * 2;
      for (std::int64_t t = begin; t < end; ++t, col += 2) {
        const double value = values[t];
        const double* a0 = p0 + col[0] * count;
        const double* a1 = p1 + col[1] * count;
        PTUCKER_OMP_SIMD
        for (std::int64_t i = 0; i < count; ++i) {
          acc[i] += value * a0[i] * a1[i];
        }
      }
      break;
    }
    default: {  // width == 3, the SimdEligible cap
      const std::int32_t* col = cols + begin * 3;
      for (std::int64_t t = begin; t < end; ++t, col += 3) {
        const double value = values[t];
        const double* a0 = p0 + col[0] * count;
        const double* a1 = p1 + col[1] * count;
        const double* a2 = p2 + col[2] * count;
        PTUCKER_OMP_SIMD
        for (std::int64_t i = 0; i < count; ++i) {
          acc[i] += value * a0[i] * a1[i] * a2[i];
        }
      }
      break;
    }
  }
}

}  // namespace

void TiledDeltaEngine::TileKernelSimd(const std::int64_t* const* entry_indices,
                                      std::int64_t count, std::int64_t mode,
                                      double* deltas) const {
  const ModeView& v = view(mode);
  const std::int64_t order = core().order();
  const std::int64_t width = order - 1;
  const std::int64_t rank =
      factors()[static_cast<std::size_t>(mode)].cols();
  PackedTile pack;
  PackRows(factors(), entry_indices, count, order, mode, &pack);
  const double* p0 = pack.slots[0];
  const double* p1 = pack.slots[1];
  const double* p2 = pack.slots[2];

  const double* values = v.values.data();
  const std::int32_t* cols = v.cols.data();
  double acc[kMaxTile];
  for (std::int64_t j = 0; j < rank; ++j) {
    AccumulateGroupPacked(values, cols,
                          v.offsets[static_cast<std::size_t>(j)],
                          v.offsets[static_cast<std::size_t>(j + 1)], width,
                          p0, p1, p2, count, acc);
    for (std::int64_t i = 0; i < count; ++i) {
      deltas[i * rank + j] = acc[i];
    }
  }
}

void TiledDeltaEngine::ReconstructTileScalar(
    const std::int64_t* const* entry_indices, std::int64_t count,
    double* out) const {
  const ModeView& v = view(0);
  const std::int64_t order = core().order();
  const std::int64_t width = order - 1;
  const std::int64_t rank = factors()[0].cols();
  // Slot-major row pointers for modes 1..N−1 plus each lane's mode-0
  // coefficient row (the column factored out of view 0).
  const double* rows[kMaxOrder][kMaxTile];
  const double* coefficients[kMaxTile];
  for (std::int64_t i = 0; i < count; ++i) {
    const std::int64_t* idx = entry_indices[i];
    coefficients[i] = factors()[0].Row(idx[0]);
    std::int64_t w = 0;
    for (std::int64_t k = 1; k < order; ++k) {
      rows[w++][i] = factors()[static_cast<std::size_t>(k)].Row(idx[k]);
    }
  }

  const double* values = v.values.data();
  const std::int32_t* cols = v.cols.data();
  double total[kMaxTile];
  double acc[kMaxTile];
  for (std::int64_t i = 0; i < count; ++i) total[i] = 0.0;
  for (std::int64_t j = 0; j < rank; ++j) {
    AccumulateGroupRows(values, cols, v.offsets[static_cast<std::size_t>(j)],
                        v.offsets[static_cast<std::size_t>(j + 1)], width,
                        rows, count, acc);
    // Per-lane group skip, exactly like the mode-major Reconstruct: a
    // zero coefficient never touches the running sum, so x̂ stays
    // bit-identical to the per-entry kernel lane by lane.
    for (std::int64_t i = 0; i < count; ++i) {
      const double coefficient = coefficients[i][j];
      if (coefficient != 0.0) total[i] += coefficient * acc[i];
    }
  }
  for (std::int64_t i = 0; i < count; ++i) out[i] = total[i];
}

void TiledDeltaEngine::ReconstructTileSimd(
    const std::int64_t* const* entry_indices, std::int64_t count,
    double* out) const {
  const ModeView& v = view(0);
  const std::int64_t order = core().order();
  const std::int64_t width = order - 1;
  const std::int64_t rank = factors()[0].cols();
  PackedTile pack;
  PackRows(factors(), entry_indices, count, order, /*skip=*/0, &pack);
  const double* p0 = pack.slots[0];
  const double* p1 = pack.slots[1];
  const double* p2 = pack.slots[2];
  const double* coefficients[kMaxTile];
  for (std::int64_t i = 0; i < count; ++i) {
    coefficients[i] = factors()[0].Row(entry_indices[i][0]);
  }

  const double* values = v.values.data();
  const std::int32_t* cols = v.cols.data();
  double total[kMaxTile];
  double acc[kMaxTile];
  PTUCKER_OMP_SIMD
  for (std::int64_t i = 0; i < count; ++i) total[i] = 0.0;
  for (std::int64_t j = 0; j < rank; ++j) {
    AccumulateGroupPacked(values, cols,
                          v.offsets[static_cast<std::size_t>(j)],
                          v.offsets[static_cast<std::size_t>(j + 1)], width,
                          p0, p1, p2, count, acc);
    // Per-lane group skip, exactly like the mode-major Reconstruct (kept
    // scalar: the skip must not turn into an added 0.0).
    for (std::int64_t i = 0; i < count; ++i) {
      const double coefficient = coefficients[i][j];
      if (coefficient != 0.0) total[i] += coefficient * acc[i];
    }
  }
  for (std::int64_t i = 0; i < count; ++i) out[i] = total[i];
}

void TiledDeltaEngine::ProductsTileScalar(
    const std::int64_t* const* entry_indices, std::int64_t count,
    double* products) const {
  const ModeView& v = view(0);
  const std::int64_t order = core().order();
  const std::int64_t width = order - 1;
  const std::int64_t rank = factors()[0].cols();
  const std::int64_t n_core = core().size();
  const double* rows[kMaxOrder][kMaxTile];
  const double* coefficients[kMaxTile];
  for (std::int64_t i = 0; i < count; ++i) {
    const std::int64_t* idx = entry_indices[i];
    coefficients[i] = factors()[0].Row(idx[0]);
    std::int64_t w = 0;
    for (std::int64_t k = 1; k < order; ++k) {
      rows[w++][i] = factors()[static_cast<std::size_t>(k)].Row(idx[k]);
    }
  }

  const double* values = v.values.data();
  const std::int32_t* cols = v.cols.data();
  const std::int32_t* list_pos = v.list_pos.data();
  double cvec[kMaxTile];
  for (std::int64_t j = 0; j < rank; ++j) {
    const std::int64_t begin = v.offsets[static_cast<std::size_t>(j)];
    const std::int64_t end = v.offsets[static_cast<std::size_t>(j + 1)];
    // Hoist the group's mode-0 coefficients into a lane vector once, so
    // the store loops below don't reload coefficients[i][j] per group
    // entry (the stores could alias the factor rows).
    for (std::int64_t i = 0; i < count; ++i) cvec[i] = coefficients[i][j];
    // Per (group entry, lane): value · coefficient first, remaining modes
    // ascending — ComputeProducts' multiply order — with an exact 0.0
    // written for zero coefficients (matching its group-level skip), so
    // every lane's products equal the per-entry kernel bit-for-bit. The
    // lane loop scatters with stride |G| into each lane's products block.
    switch (width) {
      case 1: {
        const double* const* r0 = rows[0];
        for (std::int64_t t = begin; t < end; ++t) {
          const double value = values[t];
          const std::int32_t c0 = cols[t];
          double* slot = products + list_pos[t];
          for (std::int64_t i = 0; i < count; ++i) {
            const double coefficient = cvec[i];
            slot[i * n_core] =
                coefficient == 0.0 ? 0.0 : value * coefficient * r0[i][c0];
          }
        }
        break;
      }
      case 2: {
        const double* const* r0 = rows[0];
        const double* const* r1 = rows[1];
        const std::int32_t* col = cols + begin * 2;
        for (std::int64_t t = begin; t < end; ++t, col += 2) {
          const double value = values[t];
          const std::int32_t c0 = col[0];
          const std::int32_t c1 = col[1];
          double* slot = products + list_pos[t];
          for (std::int64_t i = 0; i < count; ++i) {
            const double coefficient = cvec[i];
            slot[i * n_core] =
                coefficient == 0.0
                    ? 0.0
                    : value * coefficient * r0[i][c0] * r1[i][c1];
          }
        }
        break;
      }
      case 3: {
        const double* const* r0 = rows[0];
        const double* const* r1 = rows[1];
        const double* const* r2 = rows[2];
        const std::int32_t* col = cols + begin * 3;
        for (std::int64_t t = begin; t < end; ++t, col += 3) {
          const double value = values[t];
          const std::int32_t c0 = col[0];
          const std::int32_t c1 = col[1];
          const std::int32_t c2 = col[2];
          double* slot = products + list_pos[t];
          for (std::int64_t i = 0; i < count; ++i) {
            const double coefficient = cvec[i];
            slot[i * n_core] =
                coefficient == 0.0
                    ? 0.0
                    : value * coefficient * r0[i][c0] * r1[i][c1] * r2[i][c2];
          }
        }
        break;
      }
      default: {
        const std::int32_t* col = cols + begin * width;
        for (std::int64_t t = begin; t < end; ++t, col += width) {
          const double value = values[t];
          double* slot = products + list_pos[t];
          for (std::int64_t i = 0; i < count; ++i) {
            const double coefficient = cvec[i];
            if (coefficient == 0.0) {
              slot[i * n_core] = 0.0;
              continue;
            }
            double product = value * coefficient;
            for (std::int64_t w = 0; w < width; ++w) {
              product *= rows[w][i][col[w]];
            }
            slot[i * n_core] = product;
          }
        }
        break;
      }
    }
  }
}

void TiledDeltaEngine::ProductsTileSimd(
    const std::int64_t* const* entry_indices, std::int64_t count,
    double* products) const {
  const ModeView& v = view(0);
  const std::int64_t order = core().order();
  const std::int64_t width = order - 1;
  const std::int64_t rank = factors()[0].cols();
  const std::int64_t n_core = core().size();
  PackedTile pack;
  PackRows(factors(), entry_indices, count, order, /*skip=*/0, &pack);
  const double* p0 = pack.slots[0];
  const double* p1 = pack.slots[1];
  const double* p2 = pack.slots[2];
  const double* coefficients[kMaxTile];
  for (std::int64_t i = 0; i < count; ++i) {
    coefficients[i] = factors()[0].Row(entry_indices[i][0]);
  }

  const double* values = v.values.data();
  const std::int32_t* cols = v.cols.data();
  const std::int32_t* list_pos = v.list_pos.data();
  double cvec[kMaxTile];
  for (std::int64_t j = 0; j < rank; ++j) {
    const std::int64_t begin = v.offsets[static_cast<std::size_t>(j)];
    const std::int64_t end = v.offsets[static_cast<std::size_t>(j + 1)];
    // One contiguous lane vector of the group's mode-0 coefficients, so
    // the store loops below read it unit-stride.
    for (std::int64_t i = 0; i < count; ++i) cvec[i] = coefficients[i][j];
    switch (width) {
      case 1: {
        for (std::int64_t t = begin; t < end; ++t) {
          const double value = values[t];
          const double* a0 = p0 + cols[t] * count;
          double* slot = products + list_pos[t];
          PTUCKER_OMP_SIMD
          for (std::int64_t i = 0; i < count; ++i) {
            const double coefficient = cvec[i];
            slot[i * n_core] =
                coefficient == 0.0 ? 0.0 : value * coefficient * a0[i];
          }
        }
        break;
      }
      case 2: {
        const std::int32_t* col = cols + begin * 2;
        for (std::int64_t t = begin; t < end; ++t, col += 2) {
          const double value = values[t];
          const double* a0 = p0 + col[0] * count;
          const double* a1 = p1 + col[1] * count;
          double* slot = products + list_pos[t];
          PTUCKER_OMP_SIMD
          for (std::int64_t i = 0; i < count; ++i) {
            const double coefficient = cvec[i];
            slot[i * n_core] = coefficient == 0.0
                                   ? 0.0
                                   : value * coefficient * a0[i] * a1[i];
          }
        }
        break;
      }
      default: {  // width == 3, the SimdEligible cap
        const std::int32_t* col = cols + begin * 3;
        for (std::int64_t t = begin; t < end; ++t, col += 3) {
          const double value = values[t];
          const double* a0 = p0 + col[0] * count;
          const double* a1 = p1 + col[1] * count;
          const double* a2 = p2 + col[2] * count;
          double* slot = products + list_pos[t];
          PTUCKER_OMP_SIMD
          for (std::int64_t i = 0; i < count; ++i) {
            const double coefficient = cvec[i];
            slot[i * n_core] =
                coefficient == 0.0
                    ? 0.0
                    : value * coefficient * a0[i] * a1[i] * a2[i];
          }
        }
        break;
      }
    }
  }
}

#undef PTUCKER_OMP_SIMD

// ---------------------------------------------------------------------------
// CachedDeltaEngine
// ---------------------------------------------------------------------------

CachedDeltaEngine::CachedDeltaEngine(const SparseTensor& x,
                                     const CoreEntryList& core,
                                     const std::vector<Matrix>& factors,
                                     MemoryTracker* tracker)
    : DeltaEngine(core, factors), x_(&x), tracker_(tracker),
      table_(std::make_unique<CacheTable>(x, core, factors, tracker)) {}

void CachedDeltaEngine::ComputeDelta(std::int64_t entry,
                                     const std::int64_t* entry_index,
                                     std::int64_t mode, double* delta) const {
  if (entry < 0) {
    // Coordinates outside the tensor the table was built over.
    ptucker::ComputeDelta(core(), factors(), entry_index, mode, delta);
    return;
  }
  table_->ComputeDeltaCached(core(), factors(), entry, entry_index, mode,
                             delta);
}

void CachedDeltaEngine::OnFactorUpdated(std::int64_t mode,
                                        const Matrix& old_factor) {
  table_->UpdateAfterMode(*x_, core(), factors(), mode, old_factor);
}

void CachedDeltaEngine::OnCoreValuesChanged() { RebuildTable(); }

void CachedDeltaEngine::OnCoreEntriesRemoved(
    const std::vector<char>& removed) {
  (void)removed;  // the table is dense in |G|; rebuild from the new list
  RebuildTable();
}

void CachedDeltaEngine::RebuildTable() {
  table_.reset();  // release the old charge before taking the new one
  table_ = std::make_unique<CacheTable>(*x_, core(), factors(), tracker_);
}

// ---------------------------------------------------------------------------
// Catalog + factory
// ---------------------------------------------------------------------------

namespace {

// The one table every consumer reads: the CLI parser accepts exactly these
// names/aliases and generates its --help engine list from the summaries,
// so accepted spellings and documentation cannot drift apart.
constexpr DeltaEngineDescriptor kDeltaEngineCatalog[] = {
    {DeltaEngineChoice::kAuto, "auto", nullptr,
     "follow the variant: cache variant -> Pres table, else modemajor"},
    {DeltaEngineChoice::kNaive, "naive", nullptr,
     "entry-major scan of the core list; the correctness oracle"},
    {DeltaEngineChoice::kModeMajor, "modemajor", nullptr,
     "per-mode regrouped core views, branch-free kernels (default)"},
    {DeltaEngineChoice::kCached, "cache", "cached",
     "the paper's Sec. III-C Pres table; O(1) delta per (alpha, beta)"},
    {DeltaEngineChoice::kAdaptive, "adaptive", nullptr,
     "modemajor + skip of low-|G| core groups under --adaptive-eps"},
    {DeltaEngineChoice::kTiled, "tiled", nullptr,
     "modemajor + SIMD delta/x-hat/products kernels over tiles of "
     "--tile-width entries"},
};

}  // namespace

Span<const DeltaEngineDescriptor> DeltaEngineCatalog() {
  return {kDeltaEngineCatalog,
          sizeof(kDeltaEngineCatalog) / sizeof(kDeltaEngineCatalog[0])};
}

const DeltaEngineDescriptor* FindDeltaEngineByName(const std::string& name) {
  for (const DeltaEngineDescriptor& descriptor : DeltaEngineCatalog()) {
    if (name == descriptor.name ||
        (descriptor.alias != nullptr && name == descriptor.alias)) {
      return &descriptor;
    }
  }
  return nullptr;
}

const char* DeltaEngineChoiceName(DeltaEngineChoice choice) {
  for (const DeltaEngineDescriptor& descriptor : DeltaEngineCatalog()) {
    if (descriptor.choice == choice) return descriptor.name;
  }
  PTUCKER_CHECK(false && "DeltaEngineChoiceName: enumerator not in catalog");
  return "";
}

DeltaEngineChoice ResolveDeltaEngineChoice(const PTuckerOptions& options) {
  if (options.delta_engine != DeltaEngineChoice::kAuto) {
    return options.delta_engine;
  }
  return options.variant == PTuckerVariant::kCache
             ? DeltaEngineChoice::kCached
             : DeltaEngineChoice::kModeMajor;
}

std::unique_ptr<DeltaEngine> MakeDeltaEngine(
    DeltaEngineChoice choice, const SparseTensor& x, const CoreEntryList& core,
    const std::vector<Matrix>& factors, MemoryTracker* tracker,
    double adaptive_epsilon, std::int64_t tile_width) {
  switch (choice) {
    case DeltaEngineChoice::kNaive:
      return std::make_unique<NaiveDeltaEngine>(core, factors);
    case DeltaEngineChoice::kModeMajor:
      return std::make_unique<ModeMajorDeltaEngine>(core, factors, tracker);
    case DeltaEngineChoice::kCached:
      return std::make_unique<CachedDeltaEngine>(x, core, factors, tracker);
    case DeltaEngineChoice::kAdaptive:
      return std::make_unique<AdaptiveDeltaEngine>(core, factors, tracker,
                                                   adaptive_epsilon);
    case DeltaEngineChoice::kTiled:
      return std::make_unique<TiledDeltaEngine>(core, factors, tracker,
                                                tile_width);
    case DeltaEngineChoice::kAuto:
      break;
  }
  PTUCKER_CHECK(false && "MakeDeltaEngine: resolve kAuto first");
  return nullptr;
}

}  // namespace ptucker
