/// \file
/// \brief The nonzero-core-entry list (CoreEntryList) the solvers scan,
/// plus the entry-major reference kernels for δ (Eq. 12) and x̂ (Eq. 4)
/// that the naive DeltaEngine wraps.
#ifndef PTUCKER_CORE_DELTA_H_
#define PTUCKER_CORE_DELTA_H_

#include <cstdint>
#include <vector>

#include "linalg/factor_view.h"
#include "linalg/matrix.h"
#include "tensor/dense_tensor.h"
#include "util/span.h"

namespace ptucker {

/// Flat list of the nonzero core entries β = (j1,…,jN) with their values.
///
/// P-Tucker's inner loops iterate "∀β ∈ G" (Algorithm 3); under
/// P-TUCKER-APPROX the core loses entries every iteration, so the solvers
/// walk this list instead of the dense core. Indices are stored contiguous
/// (entry-major int32) for cache-friendly scanning — the β scan is the
/// hottest loop in the library.
class CoreEntryList {
 public:
  /// An empty list (no core bound yet).
  CoreEntryList() = default;

  /// Collects the nonzeros of `core`.
  explicit CoreEntryList(const DenseTensor& core);

  /// Copies a pre-built entry list: `values` holds |G| core values and
  /// `indices` the matching entry-major multi-indices (|G| × order). Used
  /// by the serving plane to materialize the list straight from a
  /// snapshot's COO core sections.
  CoreEntryList(std::int64_t order, Span<const std::int32_t> indices,
                Span<const double> values);

  /// Number of nonzero core entries |G|.
  std::int64_t size() const {
    return static_cast<std::int64_t>(values_.size());
  }
  /// Tensor order N of the core the list was built from.
  std::int64_t order() const { return order_; }

  /// Multi-index of core entry `b` (length order()).
  const std::int32_t* index(std::int64_t b) const {
    return indices_.data() + static_cast<std::size_t>(b * order_);
  }
  /// Value G_β of core entry `b`.
  double value(std::int64_t b) const {
    return values_[static_cast<std::size_t>(b)];
  }

  /// Re-reads values from `core` (same sparsity pattern required).
  void RefreshValues(const DenseTensor& core);

  /// Removes the entries whose ids are flagged in `remove` (size() bools)
  /// and zeroes them in `core`. Returns the number removed.
  std::int64_t Remove(const std::vector<char>& remove, DenseTensor* core);

 private:
  std::int64_t order_ = 0;
  std::vector<std::int32_t> indices_;  // size * order, entry-major
  std::vector<double> values_;
};

/// Computes δ(n,α) of Eq. 12 for entry α with coordinates `entry_index`:
/// delta[j] = Σ_{β∈G, βn=j} G_β Π_{k≠n} A(k)(ik, jk).
/// `delta` must hold Jn = factors[mode].cols() zero-initialized doubles...
/// (the function zeroes it first). O(|G|·N).
void ComputeDelta(const CoreEntryList& core,
                  const std::vector<Matrix>& factors,
                  const std::int64_t* entry_index, std::int64_t mode,
                  double* delta);

/// \overload FactorView flavor for the serving plane (same kernel; the
/// Matrix overload stays conversion-free for the training hot path).
void ComputeDelta(const CoreEntryList& core,
                  const std::vector<FactorView>& factors,
                  const std::int64_t* entry_index, std::int64_t mode,
                  double* delta);

/// Full per-entry reconstruction x̂_α (Eq. 4) driven by the entry list:
/// Σ_β G_β Π_k A(k)(ik, jk). O(|G|·N).
double ReconstructFromList(const CoreEntryList& core,
                           const std::vector<Matrix>& factors,
                           const std::int64_t* entry_index);

/// \overload FactorView flavor for the serving plane.
double ReconstructFromList(const CoreEntryList& core,
                           const std::vector<FactorView>& factors,
                           const std::int64_t* entry_index);

}  // namespace ptucker

#endif  // PTUCKER_CORE_DELTA_H_
