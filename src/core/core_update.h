/// \file
/// \brief Core-tensor refit extension (the paper's future-work direction):
/// regularized least-squares update of the nonzero core values by
/// matrix-free conjugate gradients, with the design-row products streamed
/// through a DeltaEngine (DesignDot / DesignAccumulate).
#ifndef PTUCKER_CORE_CORE_UPDATE_H_
#define PTUCKER_CORE_CORE_UPDATE_H_

#include <vector>

#include "core/delta.h"
#include "linalg/matrix.h"
#include "tensor/dense_tensor.h"
#include "tensor/sparse_tensor.h"

namespace ptucker {

class DeltaEngine;

/// Extension of the paper (its future-work direction of improving the fit
/// beyond a fixed random core): re-fits the nonzero core entries to the
/// observed data by regularized least squares
///   min_g ‖x − P g‖² + λ‖g‖²,
/// where g stacks the nonzero core values and P(α, β) = Π_k A(k)(ik, jk).
///
/// Solved matrix-free with conjugate gradients on the normal equations
/// (Pᵀ P + λI) g = Pᵀ x; each CG step streams the observed entries twice,
/// so memory stays O(|Ω| + |G|) and no design matrix is materialized.
///
/// Updates `core` (values at the existing nonzero pattern) and refreshes
/// `core_list` in place. The loss (Eq. 6) never increases: CG starts from
/// the current g, so every accepted iterate is at least as good.
///
/// The design-row products stream through `engine` when given (else an
/// entry-major scan). The caller still owns the engine's consistency:
/// invoke OnCoreValuesChanged() after this returns, since the list's
/// values were refreshed.
void UpdateCoreTensor(const SparseTensor& x, DenseTensor* core,
                      CoreEntryList* core_list,
                      const std::vector<Matrix>& factors, double lambda,
                      int cg_iterations, const DeltaEngine* engine = nullptr);

/// Matrix-free operator behind the core CG loop: the two design-matrix
/// products RunCoreCg needs per solve. The local implementation computes
/// lane partials over all reduction lanes and folds them; the
/// distributed coordinator broadcasts the input vector, gathers each
/// worker's lane partials, and folds the same lanes in the same order —
/// so both implementations hand CG bit-identical vectors.
class CoreCgMatVec {
 public:
  virtual ~CoreCgMatVec() = default;

  /// z = Pᵀ(x − P g): the residual base of the warm-started CG solve
  /// (the caller subtracts the λg regularization term itself).
  virtual void ResidualBase(const std::vector<double>& g,
                            std::vector<double>* z) = 0;

  /// z = Pᵀ(P d): the normal-equations product of a CG direction
  /// (the caller adds the λd term itself).
  virtual void NormalProduct(const std::vector<double>& d,
                             std::vector<double>* z) = 0;
};

/// The conjugate-gradient loop of UpdateCoreTensor, extracted so the
/// single-process and multi-process solvers run the exact same control
/// flow and scalar arithmetic (step counts, curvature guard, stopping
/// threshold max(ρ₀·1e-16, 1e-28)) against any CoreCgMatVec. Starts
/// from `*g` (warm start) and leaves the final iterate in `*g`.
void RunCoreCg(CoreCgMatVec* matvec, double lambda, int cg_iterations,
               std::vector<double>* g);

/// Per-lane partials of a design-transposed product over the fixed
/// reduction-lane partition of the entry range [0, x.nnz()): for each
/// lane l in [lane_begin, lane_end), accumulates (in entry order)
/// Pᵀ diag-free contributions of y_e = x_e − (P·input)_e when
/// `residual_from_x`, else y_e = (P·input)_e, into the |G|-wide slot
/// `lane_sums + (l − lane_begin)·|G|`. Folding all lanes in lane order
/// reproduces the single-process product bit for bit, which is how a
/// distributed worker's gathered partials stay exact (the worker ships
/// raw lane partials, never a locally pre-folded sum).
void DesignLanePartials(const SparseTensor& x, const DeltaEngine& engine,
                        bool residual_from_x, const std::vector<double>& input,
                        std::int64_t lane_begin, std::int64_t lane_end,
                        double* lane_sums);

/// Writes the solved stacked values `g` back into `core` through the
/// list's nonzero pattern and refreshes `core_list` from the new core.
/// The engine-consistency contract of UpdateCoreTensor applies: call
/// OnCoreValuesChanged() on any engine holding the list.
void StoreCoreValues(const std::vector<double>& g, DenseTensor* core,
                     CoreEntryList* core_list);

}  // namespace ptucker

#endif  // PTUCKER_CORE_CORE_UPDATE_H_
