/// \file
/// \brief Core-tensor refit extension (the paper's future-work direction):
/// regularized least-squares update of the nonzero core values by
/// matrix-free conjugate gradients, with the design-row products streamed
/// through a DeltaEngine (DesignDot / DesignAccumulate).
#ifndef PTUCKER_CORE_CORE_UPDATE_H_
#define PTUCKER_CORE_CORE_UPDATE_H_

#include <vector>

#include "core/delta.h"
#include "linalg/matrix.h"
#include "tensor/dense_tensor.h"
#include "tensor/sparse_tensor.h"

namespace ptucker {

class DeltaEngine;

/// Extension of the paper (its future-work direction of improving the fit
/// beyond a fixed random core): re-fits the nonzero core entries to the
/// observed data by regularized least squares
///   min_g ‖x − P g‖² + λ‖g‖²,
/// where g stacks the nonzero core values and P(α, β) = Π_k A(k)(ik, jk).
///
/// Solved matrix-free with conjugate gradients on the normal equations
/// (Pᵀ P + λI) g = Pᵀ x; each CG step streams the observed entries twice,
/// so memory stays O(|Ω| + |G|) and no design matrix is materialized.
///
/// Updates `core` (values at the existing nonzero pattern) and refreshes
/// `core_list` in place. The loss (Eq. 6) never increases: CG starts from
/// the current g, so every accepted iterate is at least as good.
///
/// The design-row products stream through `engine` when given (else an
/// entry-major scan). The caller still owns the engine's consistency:
/// invoke OnCoreValuesChanged() after this returns, since the list's
/// values were refreshed.
void UpdateCoreTensor(const SparseTensor& x, DenseTensor* core,
                      CoreEntryList* core_list,
                      const std::vector<Matrix>& factors, double lambda,
                      int cg_iterations, const DeltaEngine* engine = nullptr);

}  // namespace ptucker

#endif  // PTUCKER_CORE_CORE_UPDATE_H_
