#include "core/row_update.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/delta_engine.h"
#include "linalg/blas.h"
#include "linalg/cholesky.h"
#include "linalg/lu.h"
#include "util/random.h"

namespace ptucker {

namespace {

// Mixes the run seed with a (iteration, mode, row) key so every row draws
// an independent, reproducible subsample stream.
std::uint64_t SampleStreamSeed(std::uint64_t seed, int iteration,
                               std::int64_t mode, std::int64_t row) {
  std::uint64_t h = seed ^ 0x9e3779b97f4a7c15ULL;
  for (const std::uint64_t word :
       {static_cast<std::uint64_t>(iteration), static_cast<std::uint64_t>(mode),
        static_cast<std::uint64_t>(row)}) {
    h ^= word + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
  }
  return h;
}

// Solves row (B + λI) = c, writing the Jn results into `row`.
// Cholesky first (B + λI is SPD for λ > 0, Theorem 1); LU fallback covers
// λ = 0 with rank-deficient B; as a last resort the row is zeroed.
void SolveRow(const Matrix& b_plus_lambda, const double* c, double* row,
              std::int64_t rank) {
  if (CholeskySolveRow(b_plus_lambda, c, row)) return;
  LuDecomposition lu(b_plus_lambda);
  if (lu.ok()) {
    lu.Solve(c, row);
    return;
  }
  for (std::int64_t j = 0; j < rank; ++j) row[j] = 0.0;
}

}  // namespace

void UpdateFactorRows(const SparseTensor& x, std::int64_t mode,
                      const std::int64_t* rows, std::int64_t num_rows,
                      const DeltaEngine& engine, Matrix* factor,
                      const RowUpdateOptions& options) {
  if (factor == nullptr) {
    throw std::invalid_argument("row update: factor must not be null");
  }
  if (mode < 0 || mode >= x.order()) {
    throw std::invalid_argument("row update: mode out of range");
  }
  if (!x.has_mode_index()) {
    throw std::invalid_argument(
        "row update: call SparseTensor::BuildModeIndex() first");
  }
  if (factor->rows() != x.dim(mode)) {
    throw std::invalid_argument(
        "row update: factor row count does not match the tensor dimension");
  }
  const std::int64_t rank = factor->cols();
  const std::int64_t n_rows = rows == nullptr ? x.dim(mode) : num_rows;
  if (rows != nullptr) {
    for (std::int64_t i = 0; i < num_rows; ++i) {
      if (rows[i] < 0 || rows[i] >= x.dim(mode)) {
        throw std::invalid_argument("row update: row index out of range");
      }
    }
  }

  // Row updates hand the engine tiles of `batch` entries at a time; only
  // engines with a real batch kernel ask for more than one.
  const std::int64_t batch =
      std::max<std::int64_t>(1, engine.PreferredBatch());
  const bool subsample = options.sample_rate < 1.0;
  Matrix& factor_ref = *factor;

#pragma omp parallel
  {
    // Per-thread intermediate data (Fig. 4): B, c, the δ tile, and
    // the row. The tile buffers batch entries between DeltaBatch
    // calls; with batch = 1 this degenerates to the per-entry flow.
    Matrix b(rank, rank);
    std::vector<double> c(static_cast<std::size_t>(rank));
    std::vector<double> new_row(static_cast<std::size_t>(rank));
    std::vector<double> deltas(static_cast<std::size_t>(batch * rank));
    std::vector<std::int64_t> tile_entries(static_cast<std::size_t>(batch));
    std::vector<const std::int64_t*> tile_index(
        static_cast<std::size_t>(batch));
    std::vector<double> tile_values(static_cast<std::size_t>(batch));

    // schedule(runtime): dynamic under the paper's careful
    // distribution of work, static for the naive ablation.
#pragma omp for schedule(runtime)
    for (std::int64_t i = 0; i < n_rows; ++i) {
      const std::int64_t row_index = rows == nullptr ? i : rows[i];
      const auto slice = x.Slice(mode, row_index);
      if (slice.empty()) {
        // No observations touch this row: the regularized minimum is 0.
        for (std::int64_t j = 0; j < rank; ++j) factor_ref(row_index, j) = 0.0;
        continue;
      }
      b.Fill(0.0);
      std::fill(c.begin(), c.end(), 0.0);
      Rng sampler(subsample ? SampleStreamSeed(options.seed, options.iteration,
                                               mode, row_index)
                            : 0);
      // Tiled δ, then the Eq. 10 / Eq. 11 accumulations. The per-tile
      // results are consumed in entry order, so B and c accumulate in
      // exactly the per-entry order regardless of the batch width —
      // trajectories do not depend on how the engine tiles δ.
      std::int64_t pending = 0;
      const auto flush_tile = [&] {
        if (pending == 0) return;
        engine.DeltaBatch(pending, tile_entries.data(), tile_index.data(),
                          mode, deltas.data());
        for (std::int64_t t = 0; t < pending; ++t) {
          double* delta = deltas.data() + t * rank;
          SymmetricRank1Update(b, delta);                  // Eq. 10
          Axpy(tile_values[static_cast<std::size_t>(t)], delta, c.data(),
               rank);                                      // Eq. 11
        }
        pending = 0;
      };
      const auto accumulate_entry = [&](std::int64_t entry) {
        if (batch == 1) {
          // Batch-1 engines keep the direct per-entry hot path — no
          // tile buffering, no extra virtual dispatch.
          engine.ComputeDelta(entry, x.index(entry), mode, deltas.data());
          SymmetricRank1Update(b, deltas.data());            // Eq. 10
          Axpy(x.value(entry), deltas.data(), c.data(), rank);
          return;
        }
        tile_entries[static_cast<std::size_t>(pending)] = entry;
        tile_index[static_cast<std::size_t>(pending)] = x.index(entry);
        tile_values[static_cast<std::size_t>(pending)] = x.value(entry);
        if (++pending == batch) flush_tile();
      };
      std::int64_t used = 0;
      for (const std::int64_t entry : slice) {
        if (subsample && sampler.Uniform() >= options.sample_rate) {
          continue;
        }
        ++used;
        accumulate_entry(entry);
      }
      if (subsample && used == 0) {
        // Keep every observed row anchored to at least one entry.
        accumulate_entry(slice.front());
      }
      flush_tile();
      for (std::int64_t j = 0; j < rank; ++j) b(j, j) += options.lambda;
      SolveRow(b, c.data(), new_row.data(), rank);      // Eq. 9
      for (std::int64_t j = 0; j < rank; ++j) {
        factor_ref(row_index, j) = new_row[static_cast<std::size_t>(j)];
      }
    }
  }
}

}  // namespace ptucker
