/// \file
/// \brief Final factor orthogonalization (Algorithm 2 lines 8-11): QR per
/// mode with the triangular factors folded into the core (Eqs. 7-8).
#ifndef PTUCKER_CORE_ORTHOGONALIZE_H_
#define PTUCKER_CORE_ORTHOGONALIZE_H_

#include <vector>

#include "linalg/matrix.h"
#include "tensor/dense_tensor.h"

namespace ptucker {

/// Final orthogonalization of P-Tucker (Algorithm 2 lines 8-11):
/// for each mode, factor A(n) = Q(n) R(n) (Eq. 7), replace A(n) ← Q(n),
/// and fold the triangular factor into the core, G ← G ×n R(n) (Eq. 8).
///
/// The reconstruction G ×1 A(1) ··· ×N A(N) is mathematically unchanged —
/// a property the tests verify — while the factors become column-wise
/// orthonormal as Tucker convention expects.
void OrthogonalizeFactors(std::vector<Matrix>* factors, DenseTensor* core);

}  // namespace ptucker

#endif  // PTUCKER_CORE_ORTHOGONALIZE_H_
