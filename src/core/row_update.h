/// \file
/// \brief The row-wise ALS update (Algorithm 3, Eqs. 9-11) as a shared,
/// row-subset-capable entry point. P-Tucker's Lemma 1 makes every row of
/// a mode's factor independent of the others within that mode's update,
/// so the same kernel serves two callers: the solver sweeps every row of
/// every mode per iteration, and the streaming ingest pipeline
/// (stream/ingest_pipeline.h) re-solves only the rows touched by changed
/// Ω entries. Both produce bit-identical rows for the same (tensor,
/// core, factors) state regardless of thread count, scheduling, or
/// which other rows the call covers.
#ifndef PTUCKER_CORE_ROW_UPDATE_H_
#define PTUCKER_CORE_ROW_UPDATE_H_

#include <cstdint>

#include <omp.h>

#include "core/options.h"
#include "linalg/matrix.h"
#include "tensor/sparse_tensor.h"

namespace ptucker {

class DeltaEngine;

/// Scopes the OpenMP thread-count and schedule ICVs so a solver honors
/// its options without leaking settings to the caller. Row updates use
/// schedule(runtime); §III-D prescribes dynamic scheduling because
/// |Ω(n,in)| is skewed. Instantiate one around a batch of
/// UpdateFactorRows calls (the solver wraps a whole decomposition, the
/// ingest pipeline wraps each flush).
class OmpEnvironmentGuard {
 public:
  /// Applies `num_threads` (0 keeps the ambient setting) and the runtime
  /// schedule for `scheduling`, saving the previous ICVs.
  OmpEnvironmentGuard(int num_threads, Scheduling scheduling) {
    saved_threads_ = omp_get_max_threads();
    omp_get_schedule(&saved_schedule_, &saved_chunk_);
    if (num_threads > 0) omp_set_num_threads(num_threads);
    if (scheduling == Scheduling::kDynamic) {
      omp_set_schedule(omp_sched_dynamic, 8);
    } else {
      omp_set_schedule(omp_sched_static, 0);
    }
  }
  /// Restores the saved thread-count and schedule ICVs.
  ~OmpEnvironmentGuard() {
    omp_set_num_threads(saved_threads_);
    omp_set_schedule(saved_schedule_, saved_chunk_);
  }

  OmpEnvironmentGuard(const OmpEnvironmentGuard&) = delete;  ///< RAII only
  OmpEnvironmentGuard& operator=(const OmpEnvironmentGuard&) =
      delete;  ///< RAII only

 private:
  int saved_threads_;
  omp_sched_t saved_schedule_;
  int saved_chunk_;
};

/// Knobs of one UpdateFactorRows call — the subset of PTuckerOptions the
/// row update actually consumes.
struct RowUpdateOptions {
  /// L2 regularization λ of Eq. 6 (added to B's diagonal before the
  /// solve). Must be >= 0.
  double lambda = 0.01;

  /// Bernoulli subsample rate over each row's slice Ω(n,in) (the
  /// sampling extension; see PTuckerOptions::sample_rate). 1.0 (the
  /// default) uses every observed entry — the exact paper update.
  double sample_rate = 1.0;

  /// Base seed of the per-row subsample streams (unused at
  /// sample_rate = 1).
  std::uint64_t seed = 0;

  /// Iteration counter keying the subsample streams (unused at
  /// sample_rate = 1).
  int iteration = 1;
};

/// Re-solves factor rows of `mode` against the current (core, factors)
/// state seen through `engine`: for each requested row, accumulates the
/// Eq. 10/11 normal equations over the row's slice Ω(mode, in) — tiled
/// through DeltaEngine::DeltaBatch with entry-order consumption, so
/// results do not depend on the engine's tile width — and solves Eq. 9
/// (Cholesky with an LU fallback), writing the row into `factor`.
///
/// `rows` selects the subset: `num_rows` row indices (each in
/// [0, x.dim(mode)), duplicates allowed but wasteful), or nullptr to
/// update every row of the mode (the full Algorithm 3 sweep; `num_rows`
/// is then ignored). A row whose slice is empty is set to zero (the
/// regularized minimum).
///
/// The caller owns the engine lifecycle hooks: snapshot the factor
/// first when `engine.WantsFactorSnapshot()` and fire
/// `OnFactorUpdated(mode, old)` after this returns, exactly like the
/// solver loop. The OpenMP environment is taken as-is — wrap calls in
/// an OmpEnvironmentGuard to pin threads/scheduling.
///
/// Rows are independent within a mode (Lemma 1), so the parallel loop
/// is bit-deterministic: the same state and row set produce identical
/// factor rows at every thread count.
void UpdateFactorRows(const SparseTensor& x, std::int64_t mode,
                      const std::int64_t* rows, std::int64_t num_rows,
                      const DeltaEngine& engine, Matrix* factor,
                      const RowUpdateOptions& options);

}  // namespace ptucker

#endif  // PTUCKER_CORE_ROW_UPDATE_H_
