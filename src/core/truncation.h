/// \file
/// \brief P-TUCKER-APPROX core truncation (Algorithm 4): partial
/// reconstruction errors R(β) (Eq. 13) and removal of the noisiest core
/// entries, with DeltaEngine-aware scoring (tiled through
/// DeltaEngine::ProductsBatch) and removal notification.
#ifndef PTUCKER_CORE_TRUNCATION_H_
#define PTUCKER_CORE_TRUNCATION_H_

#include <cstdint>
#include <vector>

#include "core/delta.h"
#include "linalg/matrix.h"
#include "tensor/dense_tensor.h"
#include "tensor/sparse_tensor.h"
#include "util/memory_tracker.h"

namespace ptucker {

/// P-TUCKER-APPROX core truncation (paper §III-C, Algorithm 4).
///
/// The partial reconstruction error of core entry β (Eq. 13) is the change
/// in the squared reconstruction error caused by *keeping* β versus
/// removing it:
///   R(β) = Σ_α [ (X_α − x̂_α)² − (X_α − (x̂_α − c_αβ))² ]
/// with c_αβ = G_β Π_n A(n)(in, jn). Positive R(β) means the entry hurts
/// the fit — it is "noisy" — and the top-p fraction by R(β) is removed
/// each iteration.

class DeltaEngine;

/// R(β) for every entry of `core`, in list order. O(|Ω|·|G|·N), parallel
/// over observed entries with a deterministic (thread-ordered) merge. The
/// per-(α,β) products come from `engine` when given, else from an
/// entry-major scan; entries are tiled through ProductsBatch in
/// PreferredBatch()-sized tiles and consumed in entry order, so the
/// scores are bit-identical to a per-entry scan for every engine and
/// batch width. The per-thread tile scratch (T · batch · |G| doubles) is
/// charged to `tracker` for the duration of the scan when given.
std::vector<double> ComputePartialErrors(const SparseTensor& x,
                                         const CoreEntryList& core,
                                         const std::vector<Matrix>& factors,
                                         const DeltaEngine* engine = nullptr,
                                         MemoryTracker* tracker = nullptr);

/// Removes the top-⌊p·|G|⌋ entries by R(β) from `core_list` and zeroes
/// them in `core` (Algorithm 4). Always keeps at least one entry. Returns
/// the number removed. When `engine` is given it both scores the entries
/// and is notified of the removal (OnCoreEntriesRemoved), keeping its
/// derived state consistent with the compacted list. `tracker` is passed
/// through to ComputePartialErrors for the scoring scratch.
std::int64_t TruncateNoisyEntries(const SparseTensor& x, DenseTensor* core,
                                  CoreEntryList* core_list,
                                  const std::vector<Matrix>& factors,
                                  double truncation_rate,
                                  DeltaEngine* engine = nullptr,
                                  MemoryTracker* tracker = nullptr);

}  // namespace ptucker

#endif  // PTUCKER_CORE_TRUNCATION_H_
