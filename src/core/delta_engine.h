/// \file
/// \brief The pluggable δ-computation layer: every δ(n,α) (Eq. 12) and
/// x̂_α (Eq. 4) in the solvers flows through a DeltaEngine, selected by
/// PTuckerOptions::delta_engine. See docs/architecture.md for the layer
/// overview and the walkthrough for adding an engine.
#ifndef PTUCKER_CORE_DELTA_ENGINE_H_
#define PTUCKER_CORE_DELTA_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/cache_table.h"
#include "core/delta.h"
#include "core/options.h"
#include "linalg/factor_view.h"
#include "linalg/matrix.h"
#include "tensor/sparse_tensor.h"
#include "util/memory_tracker.h"
#include "util/span.h"

namespace ptucker {

/// Owns every δ(n,α) (Eq. 12) and x̂_α (Eq. 4) computation of the solvers.
///
/// The β-scan over the nonzero core entries is the hottest loop in the
/// library — P-Tucker's row update is O(|Ω|·N·|G|·N) around it — and the
/// paper offers two layouts for it (the entry-major list of Algorithm 3
/// and the Pres cache table of §III-C). This interface makes the layout
/// pluggable so callers never special-case it:
///
///   - NaiveDeltaEngine     entry-major scan; the correctness oracle.
///   - ModeMajorDeltaEngine per-mode regrouped core views; branch-free
///                          contiguous inner products. The default.
///   - CachedDeltaEngine    the §III-C Pres table behind the same calls.
///   - AdaptiveDeltaEngine  mode-major views + VeST-style group skipping
///                          under an error budget ε (exact at ε = 0).
///   - TiledDeltaEngine     mode-major views + a native B-wide DeltaBatch
///                          kernel (cuFasterTucker-style batching).
///
/// Engines hold a non-owning view of the core entry list and non-owning
/// FactorViews of the factor storage; both referents must outlive the
/// engine. Construction from owning `std::vector<Matrix>` converts to
/// views, so the training path is unchanged; the serving plane constructs
/// from FactorViews directly (e.g. over an mmap-ed snapshot) with zero
/// copies. Factor *values* may change in place at any time (row-wise ALS
/// does); structural changes to the core list must be announced through
/// the On* hooks so engines with derived state (reordered views, the Pres
/// table) stay consistent.
///
/// Adding another engine (e.g. a SIMD or GPU kernel) means subclassing
/// (DeltaEngine directly, or ModeMajorDeltaEngine to inherit the regrouped
/// views), overriding ComputeDelta and/or the batch kernels (DeltaBatch,
/// ReconstructBatch, ProductsBatch — plus any optional bulk kernels worth
/// specializing), handling the three hooks, and wiring a new enumerator
/// through DeltaEngineChoice + DeltaEngineCatalog() + MakeDeltaEngine.
/// See docs/architecture.md and docs/delta_engines.md for the full
/// walkthrough.
class DeltaEngine {
 public:
  /// Binds the engine to a (non-owning) view of the core entry list and
  /// views of the owning factor matrices; both must outlive the engine.
  DeltaEngine(const CoreEntryList& core, const std::vector<Matrix>& factors)
      : core_(&core), factors_(MakeFactorViews(factors)) {}

  /// Binds the engine directly to factor views (serving plane); the core
  /// list and the storage behind the views must outlive the engine.
  DeltaEngine(const CoreEntryList& core, std::vector<FactorView> factors)
      : core_(&core), factors_(std::move(factors)) {}
  virtual ~DeltaEngine() = default;  ///< Engines own only derived state.

  DeltaEngine(const DeltaEngine&) = delete;             ///< non-copyable
  DeltaEngine& operator=(const DeltaEngine&) = delete;  ///< non-copyable

  /// The enumerator this engine was built for (kind() never is kAuto).
  virtual DeltaEngineChoice kind() const = 0;
  /// Canonical catalog name (the `--delta-engine` token).
  virtual const char* name() const = 0;

  /// δ(n,α) of Eq. 12 for the entry with coordinates `entry_index`:
  /// delta[j] = Σ_{β∈G, βn=j} G_β Π_{k≠n} A(k)(ik, jk). `delta` holds
  /// Jn = factors[mode].cols() doubles (overwritten). `entry` is the
  /// observed-entry id in the tensor the engine was created over, or a
  /// negative value for coordinates outside it.
  virtual void ComputeDelta(std::int64_t entry,
                            const std::int64_t* entry_index, std::int64_t mode,
                            double* delta) const = 0;

  /// Batch δ: deltas for a tile of `count` entries against the same mode,
  /// written contiguously (`deltas[i·Jn .. (i+1)·Jn)` belongs to tile
  /// entry i). `entries[i]` and `entry_indices[i]` follow the ComputeDelta
  /// conventions. The base implementation is a per-entry loop, so every
  /// engine supports the batch call and consumers can be rewired to it
  /// incrementally; TiledDeltaEngine overrides it with a kernel that
  /// streams each core group once per tile instead of once per entry.
  /// Per-entry results are identical to `count` ComputeDelta calls.
  virtual void DeltaBatch(std::int64_t count, const std::int64_t* entries,
                          const std::int64_t* const* entry_indices,
                          std::int64_t mode, double* deltas) const;

  /// Tile width DeltaBatch callers should aim for: >1 only when the
  /// engine has a kernel that actually amortizes work across the tile.
  /// Callers may pass any count regardless — engines chunk internally.
  virtual std::int64_t PreferredBatch() const { return 1; }

  /// Full reconstruction x̂_α (Eq. 4) at arbitrary coordinates.
  virtual double Reconstruct(const std::int64_t* entry_index) const;

  /// Batch x̂: out[i] = Reconstruct(entry_indices[i]) for a tile of
  /// `count` entries. The base implementation is a per-entry loop;
  /// TiledDeltaEngine overrides it with a kernel that streams each core
  /// group once per tile. Per-entry results are identical to `count`
  /// Reconstruct calls, so metric paths may tile freely.
  virtual void ReconstructBatch(std::int64_t count,
                                const std::int64_t* const* entry_indices,
                                double* out) const;

  /// products[b] = c_αβ = G_β Π_k A(k)(ik, jk) for every core entry, in
  /// list order — the per-pair terms of the partial error R(β) (Eq. 13).
  virtual void ComputeProducts(const std::int64_t* entry_index,
                               double* products) const;

  /// Batch c_αβ: the ComputeProducts vector for each of `count` entries,
  /// written contiguously (`products[i·|G| .. (i+1)·|G|)` belongs to tile
  /// entry i). The base implementation is a per-entry loop;
  /// TiledDeltaEngine overrides it with a kernel that streams each core
  /// group once per tile. Per-entry results are identical to `count`
  /// ComputeProducts calls, so the truncation scorer may tile freely.
  virtual void ProductsBatch(std::int64_t count,
                             const std::int64_t* const* entry_indices,
                             double* products) const;

  /// Σ_b g[b] · Π_k A(k)(ik, jk) — one row of the core-update design
  /// matrix P applied to `g` (list order). Note: excludes G_β.
  virtual double DesignDot(const std::int64_t* entry_index,
                           const double* g) const;

  /// z[b] += scale · Π_k A(k)(ik, jk) — one row of Pᵀ applied to a scalar
  /// (list order). Note: excludes G_β.
  virtual void DesignAccumulate(const std::int64_t* entry_index, double scale,
                                double* z) const;

  /// True when OnFactorUpdated needs the pre-update factor values; callers
  /// then snapshot the factor before running the mode's row updates.
  virtual bool WantsFactorSnapshot() const { return false; }

  /// Mode `mode`'s factor rows were rewritten (Algorithm 3 finished the
  /// mode). `old_factor` holds the pre-update values when
  /// WantsFactorSnapshot() is true, and may be empty otherwise.
  virtual void OnFactorUpdated(std::int64_t mode, const Matrix& old_factor);

  /// CoreEntryList::RefreshValues ran (same sparsity pattern, new values).
  virtual void OnCoreValuesChanged() {}

  /// CoreEntryList::Remove ran with `removed` flagging the *old* entry
  /// ids; the list is already compacted.
  virtual void OnCoreEntriesRemoved(const std::vector<char>& removed);

  /// Bytes of engine-owned derived state (0 for the naive engine).
  virtual std::int64_t ByteSize() const { return 0; }

 protected:
  /// The core entry list the engine was bound to (non-owning).
  const CoreEntryList& core() const { return *core_; }
  /// Views of the factor matrices the engine was bound to (non-owning).
  const std::vector<FactorView>& factors() const { return factors_; }

 private:
  const CoreEntryList* core_;
  std::vector<FactorView> factors_;
};

/// Entry-major scan of the core list — exactly the free functions
/// ComputeDelta / ReconstructFromList behind the engine interface. No
/// derived state, so every hook is a no-op. Kept as the oracle the other
/// engines are tested against.
class NaiveDeltaEngine final : public DeltaEngine {
 public:
  using DeltaEngine::DeltaEngine;

  DeltaEngineChoice kind() const override { return DeltaEngineChoice::kNaive; }
  const char* name() const override { return "naive"; }

  void ComputeDelta(std::int64_t entry, const std::int64_t* entry_index,
                    std::int64_t mode, double* delta) const override;
};

/// Mode-major layout: one reordered copy of the core entries per mode,
/// grouped by β_n with the mode-n column factored out into the group id.
/// The inner product is branch-free (no `if (k == mode)`), reads the
/// remaining N−1 column indices contiguously, and accumulates each
/// delta[β_n] in a register per group instead of scattering. Kernels that
/// carry the mode-n coefficient (Reconstruct, ComputeProducts, the design
/// ops) skip a whole group when its row coefficient is zero.
///
/// The views cost Θ(N·|G|) extra memory, charged to the tracker for the
/// engine's lifetime. They are maintained incrementally: RefreshValues
/// only rewrites the value arrays through a stored permutation, and Remove
/// compacts each view in place — neither re-sorts.
///
/// Subclassable: AdaptiveDeltaEngine and TiledDeltaEngine build on the
/// same regrouped views (exposed to them as protected state) and inherit
/// every kernel they do not specialize.
class ModeMajorDeltaEngine : public DeltaEngine {
 public:
  /// Charges the view bytes to `tracker` (throws OutOfMemoryBudget when
  /// over budget) before building.
  ModeMajorDeltaEngine(const CoreEntryList& core,
                       const std::vector<Matrix>& factors,
                       MemoryTracker* tracker);

  /// Same, bound directly to factor views (serving plane).
  ModeMajorDeltaEngine(const CoreEntryList& core,
                       std::vector<FactorView> factors,
                       MemoryTracker* tracker);
  /// Releases the view bytes charged to the tracker.
  ~ModeMajorDeltaEngine() override;

  DeltaEngineChoice kind() const override {
    return DeltaEngineChoice::kModeMajor;
  }
  const char* name() const override { return "modemajor"; }

  void ComputeDelta(std::int64_t entry, const std::int64_t* entry_index,
                    std::int64_t mode, double* delta) const override;
  double Reconstruct(const std::int64_t* entry_index) const override;
  void ComputeProducts(const std::int64_t* entry_index,
                       double* products) const override;
  double DesignDot(const std::int64_t* entry_index,
                   const double* g) const override;
  void DesignAccumulate(const std::int64_t* entry_index, double scale,
                        double* z) const override;

  void OnCoreValuesChanged() override;
  void OnCoreEntriesRemoved(const std::vector<char>& removed) override;

  std::int64_t ByteSize() const override { return charged_bytes_; }

 protected:
  /// Core entries of one mode, grouped by that mode's coordinate β_n.
  /// Group j spans [offsets[j], offsets[j+1]); within a group, entries keep
  /// list order, so per-group sums reassociate nothing vs the naive scan.
  struct ModeView {
    std::vector<std::int64_t> offsets;   ///< Jn + 1 group boundaries
    std::vector<std::int32_t> cols;      ///< |G| × (N−1) β_k for k≠n, k asc.
    std::vector<double> values;          ///< |G| grouped G_β
    std::vector<std::int32_t> list_pos;  ///< grouped position → list id
  };

  /// Supported tensor order; the stack-resident factor-row pointer arrays
  /// in the hot kernels are sized by this.
  static constexpr std::int64_t kMaxOrder = 32;

  /// The regrouped view of mode `mode` (one per tensor mode).
  const ModeView& view(std::int64_t mode) const {
    return views_[static_cast<std::size_t>(mode)];
  }

  /// The δ kernel over mode `mode`'s regrouped view, honoring an optional
  /// per-group skip vector (`nullptr` computes every group; a skipped
  /// group's component is written as 0). Shared by ComputeDelta and the
  /// adaptive engine so the hot kernel exists exactly once.
  void ComputeDeltaGrouped(const std::int64_t* entry_index, std::int64_t mode,
                           const char* skip, double* delta) const;

 private:
  std::int64_t ExpectedBytes() const;
  void BuildViews();

  std::vector<ModeView> views_;
  MemoryTracker* tracker_;
  std::int64_t charged_bytes_ = 0;
};

/// VeST-style sparsity-adaptive engine (Park et al., PAPERS.md): the
/// mode-major regrouped views plus, per view, a skip flag for the groups
/// whose cumulative magnitude Σ|G_β| falls under the error budget
/// ε · Σ_β |G_β| (greedy smallest-weight-first). ComputeDelta writes 0 for
/// skipped groups and never streams them, so the δ-sweep drops roughly an
/// ε fraction of its inner products; the absolute error of each skipped
/// component is bounded by its group weight times the product of the
/// largest participating factor magnitudes. Every other kernel
/// (Reconstruct, ComputeProducts, the design ops) stays exact so error
/// metrics and truncation scores are never degraded. At ε = 0 nothing
/// with nonzero weight is skipped and δ is bit-identical to the
/// mode-major engine. Skip flags are recomputed whenever the core list
/// changes (RefreshValues / Remove).
class AdaptiveDeltaEngine final : public ModeMajorDeltaEngine {
 public:
  /// `epsilon` must be in [0, 1) — the fraction of total core magnitude
  /// the skipped groups may cumulatively reach.
  AdaptiveDeltaEngine(const CoreEntryList& core,
                      const std::vector<Matrix>& factors,
                      MemoryTracker* tracker, double epsilon);

  /// Same, bound directly to factor views (serving plane).
  AdaptiveDeltaEngine(const CoreEntryList& core,
                      std::vector<FactorView> factors, MemoryTracker* tracker,
                      double epsilon);

  DeltaEngineChoice kind() const override {
    return DeltaEngineChoice::kAdaptive;
  }
  const char* name() const override { return "adaptive"; }

  void ComputeDelta(std::int64_t entry, const std::int64_t* entry_index,
                    std::int64_t mode, double* delta) const override;

  void OnCoreValuesChanged() override;
  void OnCoreEntriesRemoved(const std::vector<char>& removed) override;

  /// The error budget the engine was built with.
  double epsilon() const { return epsilon_; }

  /// Groups currently skipped in mode `mode`'s view (for tests/benches).
  std::int64_t SkippedGroups(std::int64_t mode) const;

 private:
  void RecomputeSkips();

  double epsilon_;
  std::vector<std::vector<char>> skip_;  // per mode, per group
};

/// Tiled batch engine (cuFasterTucker-style, Li et al., PAPERS.md): the
/// mode-major regrouped views plus native DeltaBatch / ReconstructBatch /
/// ProductsBatch kernels that evaluate a tile of up to `tile_width`
/// entries simultaneously. Each core group's value/column stream is read
/// once per tile instead of once per entry, and the tile-wide accumulators
/// form B independent dependency chains, so the inner loop is
/// throughput-bound instead of serialised on one running sum.
///
/// Each batch call picks between two kernels per tile:
///
///   - The **SIMD kernel** first packs the tile's factor rows into
///     transposed scratch (`packed[w][c·B + i]` = lane i's coefficient for
///     column c of the w-th non-mode factor), so the `#pragma omp simd`
///     lane loops read unit-stride vectors instead of chasing B row
///     pointers per streamed core entry — the CPU analogue of
///     cuFasterTucker staging factor rows in shared memory. Lanes are
///     independent accumulator chains, so vectorizing across them
///     reassociates nothing within any per-entry sum.
///   - The **scalar fallback** keeps per-lane row pointers and plain
///     loops. A runtime check (SimdEligible) steers tiles that are too
///     short to amortize the pack, tensors whose order or ranks exceed
///     the pack scratch bounds, and every call in a build without OpenMP
///     SIMD onto it. Both kernels produce the same bits.
///
/// Per-entry multiply/accumulate order equals the mode-major scan's, so
/// batch results are bit-identical to it for any tile width. Single-entry
/// calls (ComputeDelta, Reconstruct, …) inherit the mode-major kernels
/// unchanged.
class TiledDeltaEngine final : public ModeMajorDeltaEngine {
 public:
  /// Hard upper bound on the tile width (sizes the kernel's stack
  /// buffers); wider requests are clamped.
  static constexpr std::int64_t kMaxTile = 64;

  /// Shortest tile the SIMD kernels are worth entering: the transposed
  /// row pack is amortized only once a tile spans many vector registers,
  /// so shorter tiles (including every partial trailing tile) take the
  /// scalar fallback, which computes identical bits.
  static constexpr std::int64_t kSimdMinTile = 32;

  /// Widest non-mode slot count (order − 1) the SIMD kernels pack for;
  /// higher orders take the scalar fallback.
  static constexpr std::int64_t kMaxPackWidth = 3;

  /// Largest per-mode rank the SIMD kernels pack for (bounds the stack
  /// scratch at kMaxPackWidth·kMaxTile·kMaxPackRank doubles); larger
  /// ranks take the scalar fallback.
  static constexpr std::int64_t kMaxPackRank = 32;

  /// `tile_width` must be >= 1; it is clamped to kMaxTile.
  TiledDeltaEngine(const CoreEntryList& core,
                   const std::vector<Matrix>& factors, MemoryTracker* tracker,
                   std::int64_t tile_width);

  /// Same, bound directly to factor views (serving plane — this is the
  /// engine ModelSnapshot builds zero-copy over an mmap-ed snapshot).
  TiledDeltaEngine(const CoreEntryList& core, std::vector<FactorView> factors,
                   MemoryTracker* tracker, std::int64_t tile_width);

  DeltaEngineChoice kind() const override { return DeltaEngineChoice::kTiled; }
  const char* name() const override { return "tiled"; }

  void DeltaBatch(std::int64_t count, const std::int64_t* entries,
                  const std::int64_t* const* entry_indices, std::int64_t mode,
                  double* deltas) const override;

  void ReconstructBatch(std::int64_t count,
                        const std::int64_t* const* entry_indices,
                        double* out) const override;

  void ProductsBatch(std::int64_t count,
                     const std::int64_t* const* entry_indices,
                     double* products) const override;

  std::int64_t PreferredBatch() const override { return tile_; }

 private:
  /// The runtime check in front of every SIMD kernel: true when the tile
  /// is long enough to amortize the row pack and the non-`mode` factor
  /// ranks fit the pack scratch (width ∈ [1, kMaxPackWidth], every rank
  /// <= kMaxPackRank) in a build with OpenMP SIMD.
  bool SimdEligible(std::int64_t count, std::int64_t mode) const;

  /// Scalar δ tile kernel: per-lane factor-row pointers, plain loops.
  void TileKernelScalar(const std::int64_t* const* entry_indices,
                        std::int64_t count, std::int64_t mode,
                        double* deltas) const;

  /// SIMD δ tile kernel: transposed row pack + `#pragma omp simd` lane
  /// loops. Bit-identical to the scalar kernel.
  void TileKernelSimd(const std::int64_t* const* entry_indices,
                      std::int64_t count, std::int64_t mode,
                      double* deltas) const;

  /// Scalar x̂ tile kernel against view 0, carrying each lane's mode-0
  /// coefficient exactly like the mode-major Reconstruct (group skipped
  /// per lane when its coefficient is zero).
  void ReconstructTileScalar(const std::int64_t* const* entry_indices,
                             std::int64_t count, double* out) const;

  /// SIMD x̂ tile kernel (transposed row pack). Bit-identical to scalar.
  void ReconstructTileSimd(const std::int64_t* const* entry_indices,
                           std::int64_t count, double* out) const;

  /// Scalar c_αβ tile kernel against view 0, scattered to list order per
  /// lane (stride core().size()), preserving ComputeProducts' multiply
  /// order and its exact-0 writes for zero coefficients.
  void ProductsTileScalar(const std::int64_t* const* entry_indices,
                          std::int64_t count, double* products) const;

  /// SIMD c_αβ tile kernel (transposed row pack). Bit-identical to
  /// scalar.
  void ProductsTileSimd(const std::int64_t* const* entry_indices,
                        std::int64_t count, double* products) const;

  std::int64_t tile_;
};

/// The §III-C Pres table (CacheTable) behind the engine interface: δ by
/// dividing the cached full product by the mode-n coefficient, with the
/// after-mode rescale applied through the OnFactorUpdated hook. Core
/// structure/value changes rebuild the table (the table is keyed by the
/// entry pattern). Reconstruction and the design ops fall back to the
/// entry-major scan — the table's time-for-memory trade only pays in δ.
class CachedDeltaEngine final : public DeltaEngine {
 public:
  /// Builds the Pres table over the observed entries of `x` (charged to
  /// `tracker`; throws OutOfMemoryBudget when over budget).
  CachedDeltaEngine(const SparseTensor& x, const CoreEntryList& core,
                    const std::vector<Matrix>& factors,
                    MemoryTracker* tracker);

  DeltaEngineChoice kind() const override { return DeltaEngineChoice::kCached; }
  const char* name() const override { return "cache"; }

  void ComputeDelta(std::int64_t entry, const std::int64_t* entry_index,
                    std::int64_t mode, double* delta) const override;

  bool WantsFactorSnapshot() const override { return true; }
  void OnFactorUpdated(std::int64_t mode, const Matrix& old_factor) override;
  void OnCoreValuesChanged() override;
  void OnCoreEntriesRemoved(const std::vector<char>& removed) override;

  std::int64_t ByteSize() const override { return table_->ByteSize(); }

  /// The underlying Pres table (for tests and the Fig. 8 bench).
  const CacheTable& table() const { return *table_; }

 private:
  void RebuildTable();

  const SparseTensor* x_;
  MemoryTracker* tracker_;
  std::unique_ptr<CacheTable> table_;
};

/// One row of the engine name table: the enumerator, its canonical CLI
/// token, an optional accepted alias, and a one-line summary. The CLI
/// parser and its --help text are both generated from this table, so the
/// accepted spellings and the documentation cannot drift apart.
struct DeltaEngineDescriptor {
  DeltaEngineChoice choice;
  const char* name;     ///< canonical --delta-engine token
  const char* alias;    ///< accepted alternative spelling, or nullptr
  const char* summary;  ///< one-line help text
};

/// The authoritative list of selectable engines, in help-display order
/// (kAuto first). Every DeltaEngineChoice enumerator has exactly one row.
Span<const DeltaEngineDescriptor> DeltaEngineCatalog();

/// Catalog row whose name or alias equals `name`, or nullptr if unknown.
const DeltaEngineDescriptor* FindDeltaEngineByName(const std::string& name);

/// Canonical CLI token of `choice` (from the catalog).
const char* DeltaEngineChoiceName(DeltaEngineChoice choice);

/// The engine a PTuckerOptions value actually asks for: an explicit
/// delta_engine wins; kAuto maps kCache to kCached and everything else to
/// kModeMajor. Never returns kAuto.
DeltaEngineChoice ResolveDeltaEngineChoice(const PTuckerOptions& options);

/// Builds the requested engine over `x`, `core` and `factors` (all
/// outliving the engine). `choice` must not be kAuto — resolve it first.
/// `x` and `tracker` may go unused depending on the engine.
/// `adaptive_epsilon` is consumed by kAdaptive and `tile_width` by kTiled
/// (PTuckerOptions carries both; see those fields for semantics).
std::unique_ptr<DeltaEngine> MakeDeltaEngine(
    DeltaEngineChoice choice, const SparseTensor& x, const CoreEntryList& core,
    const std::vector<Matrix>& factors, MemoryTracker* tracker,
    double adaptive_epsilon = 0.0, std::int64_t tile_width = kDefaultTileWidth);

}  // namespace ptucker

#endif  // PTUCKER_CORE_DELTA_ENGINE_H_
