#ifndef PTUCKER_CORE_DELTA_ENGINE_H_
#define PTUCKER_CORE_DELTA_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/cache_table.h"
#include "core/delta.h"
#include "core/options.h"
#include "linalg/matrix.h"
#include "tensor/sparse_tensor.h"
#include "util/memory_tracker.h"

namespace ptucker {

/// Owns every δ(n,α) (Eq. 12) and x̂_α (Eq. 4) computation of the solvers.
///
/// The β-scan over the nonzero core entries is the hottest loop in the
/// library — P-Tucker's row update is O(|Ω|·N·|G|·N) around it — and the
/// paper offers two layouts for it (the entry-major list of Algorithm 3
/// and the Pres cache table of §III-C). This interface makes the layout
/// pluggable so callers never special-case it:
///
///   - NaiveDeltaEngine     entry-major scan; the correctness oracle.
///   - ModeMajorDeltaEngine per-mode regrouped core views; branch-free
///                          contiguous inner products. The default.
///   - CachedDeltaEngine    the §III-C Pres table behind the same calls.
///
/// Engines hold non-owning views of the core entry list and the factor
/// matrices, which must outlive the engine. Factor *values* may change in
/// place at any time (row-wise ALS does); structural changes to the core
/// list must be announced through the On* hooks so engines with derived
/// state (reordered views, the Pres table) stay consistent.
///
/// Adding a fourth engine (e.g. a tiled or GPU-style kernel) means
/// subclassing, overriding ComputeDelta (and any of the optional bulk
/// kernels worth specializing), handling the three hooks, and wiring a new
/// enumerator through DeltaEngineChoice + MakeDeltaEngine.
class DeltaEngine {
 public:
  DeltaEngine(const CoreEntryList& core, const std::vector<Matrix>& factors)
      : core_(&core), factors_(&factors) {}
  virtual ~DeltaEngine() = default;

  DeltaEngine(const DeltaEngine&) = delete;
  DeltaEngine& operator=(const DeltaEngine&) = delete;

  virtual DeltaEngineChoice kind() const = 0;
  virtual const char* name() const = 0;

  /// δ(n,α) of Eq. 12 for the entry with coordinates `entry_index`:
  /// delta[j] = Σ_{β∈G, βn=j} G_β Π_{k≠n} A(k)(ik, jk). `delta` holds
  /// Jn = factors[mode].cols() doubles (overwritten). `entry` is the
  /// observed-entry id in the tensor the engine was created over, or a
  /// negative value for coordinates outside it.
  virtual void ComputeDelta(std::int64_t entry,
                            const std::int64_t* entry_index, std::int64_t mode,
                            double* delta) const = 0;

  /// Full reconstruction x̂_α (Eq. 4) at arbitrary coordinates.
  virtual double Reconstruct(const std::int64_t* entry_index) const;

  /// products[b] = c_αβ = G_β Π_k A(k)(ik, jk) for every core entry, in
  /// list order — the per-pair terms of the partial error R(β) (Eq. 13).
  virtual void ComputeProducts(const std::int64_t* entry_index,
                               double* products) const;

  /// Σ_b g[b] · Π_k A(k)(ik, jk) — one row of the core-update design
  /// matrix P applied to `g` (list order). Note: excludes G_β.
  virtual double DesignDot(const std::int64_t* entry_index,
                           const double* g) const;

  /// z[b] += scale · Π_k A(k)(ik, jk) — one row of Pᵀ applied to a scalar
  /// (list order). Note: excludes G_β.
  virtual void DesignAccumulate(const std::int64_t* entry_index, double scale,
                                double* z) const;

  /// True when OnFactorUpdated needs the pre-update factor values; callers
  /// then snapshot the factor before running the mode's row updates.
  virtual bool WantsFactorSnapshot() const { return false; }

  /// Mode `mode`'s factor rows were rewritten (Algorithm 3 finished the
  /// mode). `old_factor` holds the pre-update values when
  /// WantsFactorSnapshot() is true, and may be empty otherwise.
  virtual void OnFactorUpdated(std::int64_t mode, const Matrix& old_factor);

  /// CoreEntryList::RefreshValues ran (same sparsity pattern, new values).
  virtual void OnCoreValuesChanged() {}

  /// CoreEntryList::Remove ran with `removed` flagging the *old* entry
  /// ids; the list is already compacted.
  virtual void OnCoreEntriesRemoved(const std::vector<char>& removed);

  /// Bytes of engine-owned derived state (0 for the naive engine).
  virtual std::int64_t ByteSize() const { return 0; }

 protected:
  const CoreEntryList& core() const { return *core_; }
  const std::vector<Matrix>& factors() const { return *factors_; }

 private:
  const CoreEntryList* core_;
  const std::vector<Matrix>* factors_;
};

/// Entry-major scan of the core list — exactly the free functions
/// ComputeDelta / ReconstructFromList behind the engine interface. No
/// derived state, so every hook is a no-op. Kept as the oracle the other
/// engines are tested against.
class NaiveDeltaEngine final : public DeltaEngine {
 public:
  using DeltaEngine::DeltaEngine;

  DeltaEngineChoice kind() const override { return DeltaEngineChoice::kNaive; }
  const char* name() const override { return "naive"; }

  void ComputeDelta(std::int64_t entry, const std::int64_t* entry_index,
                    std::int64_t mode, double* delta) const override;
};

/// Mode-major layout: one reordered copy of the core entries per mode,
/// grouped by β_n with the mode-n column factored out into the group id.
/// The inner product is branch-free (no `if (k == mode)`), reads the
/// remaining N−1 column indices contiguously, and accumulates each
/// delta[β_n] in a register per group instead of scattering. Kernels that
/// carry the mode-n coefficient (Reconstruct, ComputeProducts, the design
/// ops) skip a whole group when its row coefficient is zero.
///
/// The views cost Θ(N·|G|) extra memory, charged to the tracker for the
/// engine's lifetime. They are maintained incrementally: RefreshValues
/// only rewrites the value arrays through a stored permutation, and Remove
/// compacts each view in place — neither re-sorts.
class ModeMajorDeltaEngine final : public DeltaEngine {
 public:
  /// Charges the view bytes to `tracker` (throws OutOfMemoryBudget when
  /// over budget) before building.
  ModeMajorDeltaEngine(const CoreEntryList& core,
                       const std::vector<Matrix>& factors,
                       MemoryTracker* tracker);
  ~ModeMajorDeltaEngine() override;

  DeltaEngineChoice kind() const override {
    return DeltaEngineChoice::kModeMajor;
  }
  const char* name() const override { return "modemajor"; }

  void ComputeDelta(std::int64_t entry, const std::int64_t* entry_index,
                    std::int64_t mode, double* delta) const override;
  double Reconstruct(const std::int64_t* entry_index) const override;
  void ComputeProducts(const std::int64_t* entry_index,
                       double* products) const override;
  double DesignDot(const std::int64_t* entry_index,
                   const double* g) const override;
  void DesignAccumulate(const std::int64_t* entry_index, double scale,
                        double* z) const override;

  void OnCoreValuesChanged() override;
  void OnCoreEntriesRemoved(const std::vector<char>& removed) override;

  std::int64_t ByteSize() const override { return charged_bytes_; }

 private:
  // Core entries of one mode, grouped by that mode's coordinate β_n.
  // Group j spans [offsets[j], offsets[j+1]); within a group, entries keep
  // list order, so per-group sums reassociate nothing vs the naive scan.
  struct ModeView {
    std::vector<std::int64_t> offsets;  // Jn + 1 group boundaries
    std::vector<std::int32_t> cols;     // |G| × (N−1) β_k for k≠n, k asc.
    std::vector<double> values;         // |G| grouped G_β
    std::vector<std::int32_t> list_pos; // grouped position → list id
  };

  std::int64_t ExpectedBytes() const;
  void BuildViews();

  // Supported tensor order; the stack-resident factor-row pointer array in
  // the hot kernels is sized by this.
  static constexpr std::int64_t kMaxOrder = 32;

  std::vector<ModeView> views_;
  MemoryTracker* tracker_;
  std::int64_t charged_bytes_ = 0;
};

/// The §III-C Pres table (CacheTable) behind the engine interface: δ by
/// dividing the cached full product by the mode-n coefficient, with the
/// after-mode rescale applied through the OnFactorUpdated hook. Core
/// structure/value changes rebuild the table (the table is keyed by the
/// entry pattern). Reconstruction and the design ops fall back to the
/// entry-major scan — the table's time-for-memory trade only pays in δ.
class CachedDeltaEngine final : public DeltaEngine {
 public:
  CachedDeltaEngine(const SparseTensor& x, const CoreEntryList& core,
                    const std::vector<Matrix>& factors,
                    MemoryTracker* tracker);

  DeltaEngineChoice kind() const override { return DeltaEngineChoice::kCached; }
  const char* name() const override { return "cache"; }

  void ComputeDelta(std::int64_t entry, const std::int64_t* entry_index,
                    std::int64_t mode, double* delta) const override;

  bool WantsFactorSnapshot() const override { return true; }
  void OnFactorUpdated(std::int64_t mode, const Matrix& old_factor) override;
  void OnCoreValuesChanged() override;
  void OnCoreEntriesRemoved(const std::vector<char>& removed) override;

  std::int64_t ByteSize() const override { return table_->ByteSize(); }

  const CacheTable& table() const { return *table_; }

 private:
  void RebuildTable();

  const SparseTensor* x_;
  MemoryTracker* tracker_;
  std::unique_ptr<CacheTable> table_;
};

/// The engine a PTuckerOptions value actually asks for: an explicit
/// delta_engine wins; kAuto maps kCache to kCached and everything else to
/// kModeMajor. Never returns kAuto.
DeltaEngineChoice ResolveDeltaEngineChoice(const PTuckerOptions& options);

/// Builds the requested engine over `x`, `core` and `factors` (all
/// outliving the engine). `choice` must not be kAuto — resolve it first.
/// `x` and `tracker` may go unused depending on the engine.
std::unique_ptr<DeltaEngine> MakeDeltaEngine(DeltaEngineChoice choice,
                                             const SparseTensor& x,
                                             const CoreEntryList& core,
                                             const std::vector<Matrix>& factors,
                                             MemoryTracker* tracker);

}  // namespace ptucker

#endif  // PTUCKER_CORE_DELTA_ENGINE_H_
