#include "core/delta.h"

#include "util/logging.h"

namespace ptucker {

CoreEntryList::CoreEntryList(std::int64_t order,
                             Span<const std::int32_t> indices,
                             Span<const double> values)
    : order_(order),
      indices_(indices.begin(), indices.end()),
      values_(values.begin(), values.end()) {
  PTUCKER_CHECK(order_ >= 1);
  PTUCKER_CHECK(indices.size() ==
                values.size() * static_cast<std::size_t>(order_));
}

CoreEntryList::CoreEntryList(const DenseTensor& core) : order_(core.order()) {
  std::vector<std::int64_t> index(static_cast<std::size_t>(order_));
  for (std::int64_t linear = 0; linear < core.size(); ++linear) {
    const double value = core[linear];
    if (value == 0.0) continue;
    core.IndexOf(linear, index.data());
    for (std::int64_t k = 0; k < order_; ++k) {
      indices_.push_back(static_cast<std::int32_t>(
          index[static_cast<std::size_t>(k)]));
    }
    values_.push_back(value);
  }
}

void CoreEntryList::RefreshValues(const DenseTensor& core) {
  std::vector<std::int64_t> index(static_cast<std::size_t>(order_));
  for (std::int64_t b = 0; b < size(); ++b) {
    const std::int32_t* idx = this->index(b);
    for (std::int64_t k = 0; k < order_; ++k) {
      index[static_cast<std::size_t>(k)] = idx[k];
    }
    values_[static_cast<std::size_t>(b)] = core.at(index.data());
  }
}

std::int64_t CoreEntryList::Remove(const std::vector<char>& remove,
                                   DenseTensor* core) {
  PTUCKER_CHECK(static_cast<std::int64_t>(remove.size()) == size());
  std::vector<std::int64_t> index(static_cast<std::size_t>(order_));
  std::int64_t write = 0;
  std::int64_t removed = 0;
  for (std::int64_t b = 0; b < size(); ++b) {
    if (remove[static_cast<std::size_t>(b)]) {
      ++removed;
      if (core != nullptr) {
        const std::int32_t* idx = this->index(b);
        for (std::int64_t k = 0; k < order_; ++k) {
          index[static_cast<std::size_t>(k)] = idx[k];
        }
        core->at(index.data()) = 0.0;
      }
      continue;
    }
    if (write != b) {
      for (std::int64_t k = 0; k < order_; ++k) {
        indices_[static_cast<std::size_t>(write * order_ + k)] =
            indices_[static_cast<std::size_t>(b * order_ + k)];
      }
      values_[static_cast<std::size_t>(write)] =
          values_[static_cast<std::size_t>(b)];
    }
    ++write;
  }
  indices_.resize(static_cast<std::size_t>(write * order_));
  values_.resize(static_cast<std::size_t>(write));
  return removed;
}

namespace {

// One implementation for both factor containers (owning Matrix and
// non-owning FactorView share the read API), so neither overload pays a
// per-call conversion in these per-entry hot kernels.
template <typename Factors>
void ComputeDeltaImpl(const CoreEntryList& core, const Factors& factors,
                      const std::int64_t* entry_index, std::int64_t mode,
                      double* delta) {
  const std::int64_t order = core.order();
  const std::int64_t rank = factors[static_cast<std::size_t>(mode)].cols();
  for (std::int64_t j = 0; j < rank; ++j) delta[j] = 0.0;

  const std::int64_t n_entries = core.size();
  for (std::int64_t b = 0; b < n_entries; ++b) {
    const std::int32_t* beta = core.index(b);
    double product = core.value(b);
    for (std::int64_t k = 0; k < order; ++k) {
      if (k == mode) continue;
      product *= factors[static_cast<std::size_t>(k)](entry_index[k],
                                                      beta[k]);
    }
    delta[beta[mode]] += product;
  }
}

template <typename Factors>
double ReconstructFromListImpl(const CoreEntryList& core,
                               const Factors& factors,
                               const std::int64_t* entry_index) {
  const std::int64_t order = core.order();
  const std::int64_t n_entries = core.size();
  double sum = 0.0;
  for (std::int64_t b = 0; b < n_entries; ++b) {
    const std::int32_t* beta = core.index(b);
    double product = core.value(b);
    for (std::int64_t k = 0; k < order; ++k) {
      product *= factors[static_cast<std::size_t>(k)](entry_index[k],
                                                      beta[k]);
    }
    sum += product;
  }
  return sum;
}

}  // namespace

void ComputeDelta(const CoreEntryList& core,
                  const std::vector<Matrix>& factors,
                  const std::int64_t* entry_index, std::int64_t mode,
                  double* delta) {
  ComputeDeltaImpl(core, factors, entry_index, mode, delta);
}

void ComputeDelta(const CoreEntryList& core,
                  const std::vector<FactorView>& factors,
                  const std::int64_t* entry_index, std::int64_t mode,
                  double* delta) {
  ComputeDeltaImpl(core, factors, entry_index, mode, delta);
}

double ReconstructFromList(const CoreEntryList& core,
                           const std::vector<Matrix>& factors,
                           const std::int64_t* entry_index) {
  return ReconstructFromListImpl(core, factors, entry_index);
}

double ReconstructFromList(const CoreEntryList& core,
                           const std::vector<FactorView>& factors,
                           const std::int64_t* entry_index) {
  return ReconstructFromListImpl(core, factors, entry_index);
}

}  // namespace ptucker
