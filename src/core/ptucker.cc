#include "core/ptucker.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include <omp.h>

#include "core/core_update.h"
#include "core/delta.h"
#include "core/delta_engine.h"
#include "core/orthogonalize.h"
#include "core/reconstruction.h"
#include "core/row_update.h"
#include "core/truncation.h"
#include "tensor/nmode.h"
#include "util/logging.h"
#include "util/random.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"

namespace ptucker {

namespace {

void ValidateInputs(const SparseTensor& x, const PTuckerOptions& options) {
  if (x.nnz() == 0) {
    throw std::invalid_argument("P-Tucker: tensor has no observed entries");
  }
  if (!x.has_mode_index()) {
    throw std::invalid_argument(
        "P-Tucker: call SparseTensor::BuildModeIndex() before decomposing");
  }
  if (static_cast<std::int64_t>(options.core_dims.size()) != x.order()) {
    throw std::invalid_argument(
        "P-Tucker: core_dims order does not match tensor order");
  }
  for (std::int64_t n = 0; n < x.order(); ++n) {
    const std::int64_t rank = options.core_dims[static_cast<std::size_t>(n)];
    if (rank < 1) {
      throw std::invalid_argument("P-Tucker: core dimensionality must be >= 1");
    }
    if (options.orthogonalize_output && rank > x.dim(n)) {
      throw std::invalid_argument(
          "P-Tucker: Jn > In is incompatible with QR orthogonalization");
    }
  }
  if (options.lambda < 0.0) {
    throw std::invalid_argument("P-Tucker: lambda must be non-negative");
  }
  if (options.max_iterations < 1) {
    throw std::invalid_argument("P-Tucker: max_iterations must be >= 1");
  }
  if (options.truncation_rate < 0.0 || options.truncation_rate >= 1.0) {
    throw std::invalid_argument(
        "P-Tucker: truncation_rate must be in [0, 1)");
  }
  if (options.num_threads < 0) {
    throw std::invalid_argument("P-Tucker: num_threads must be >= 0");
  }
  if (options.sample_rate <= 0.0 || options.sample_rate > 1.0) {
    throw std::invalid_argument("P-Tucker: sample_rate must be in (0, 1]");
  }
  if (options.adaptive_epsilon < 0.0 || options.adaptive_epsilon >= 1.0) {
    throw std::invalid_argument(
        "P-Tucker: adaptive_epsilon must be in [0, 1)");
  }
  if (options.tile_width < 1) {
    throw std::invalid_argument("P-Tucker: tile_width must be >= 1");
  }
  if (options.init_snapshot != nullptr) {
    const TuckerFactorization& init = *options.init_snapshot;
    if (static_cast<std::int64_t>(init.factors.size()) != x.order() ||
        init.core.order() != x.order()) {
      throw std::invalid_argument(
          "P-Tucker: init_snapshot order does not match the tensor");
    }
    for (std::int64_t n = 0; n < x.order(); ++n) {
      const Matrix& factor = init.factors[static_cast<std::size_t>(n)];
      const std::int64_t rank = options.core_dims[static_cast<std::size_t>(n)];
      if (factor.rows() != x.dim(n) || factor.cols() != rank ||
          init.core.dim(n) != rank) {
        throw std::invalid_argument(
            "P-Tucker: init_snapshot shape mismatch in mode " +
            std::to_string(n) + " (want factor " + std::to_string(x.dim(n)) +
            "x" + std::to_string(rank) + ", got " +
            std::to_string(factor.rows()) + "x" +
            std::to_string(factor.cols()) + ", core dim " +
            std::to_string(init.core.dim(n)) + ")");
      }
    }
  }
}

}  // namespace

double TuckerFactorization::Predict(const std::int64_t* index) const {
  return ReconstructEntry(core, factors, index);
}

double TuckerFactorization::Predict(
    const std::vector<std::int64_t>& index) const {
  PTUCKER_CHECK(static_cast<std::int64_t>(index.size()) == core.order());
  return Predict(index.data());
}

double PTuckerResult::SecondsPerIteration() const {
  if (iterations.empty()) return 0.0;
  double total = 0.0;
  for (const auto& stats : iterations) total += stats.seconds;
  return total / static_cast<double>(iterations.size());
}

PTuckerResult PTuckerDecompose(const SparseTensor& x,
                               const PTuckerOptions& options) {
  ValidateInputs(x, options);
  const std::int64_t order = x.order();
  MemoryTracker* tracker = options.tracker;
  Stopwatch total_clock;

  const int threads = options.num_threads > 0 ? options.num_threads
                                              : omp_get_max_threads();
  OmpEnvironmentGuard omp_guard(threads, options.scheduling);

  // --- Initialization (Algorithm 2 line 1): Uniform[0, 1), or the
  // factors/core of options.init_snapshot when warm-starting from a
  // checkpoint (shapes validated above). ---
  Rng rng(options.seed);
  std::vector<Matrix> factors;
  factors.reserve(static_cast<std::size_t>(order));
  std::int64_t max_rank = 1;
  for (std::int64_t n = 0; n < order; ++n) {
    const std::int64_t rank = options.core_dims[static_cast<std::size_t>(n)];
    if (options.init_snapshot != nullptr) {
      factors.push_back(
          options.init_snapshot->factors[static_cast<std::size_t>(n)]);
    } else {
      Matrix factor(x.dim(n), rank);
      factor.FillUniform(rng);
      factors.push_back(std::move(factor));
    }
    max_rank = std::max(max_rank, rank);
  }
  DenseTensor core(options.core_dims);
  if (options.init_snapshot != nullptr) {
    core = options.init_snapshot->core;
  } else {
    core.FillUniform(rng);
  }
  CoreEntryList core_list(core);

  // The δ-computation engine (derived state charged inside): mode-major
  // views by default, the §III-C Pres table for P-TUCKER-CACHE, or
  // whatever options.delta_engine pins explicitly.
  std::unique_ptr<DeltaEngine> engine = MakeDeltaEngine(
      ResolveDeltaEngineChoice(options), x, core_list, factors, tracker,
      options.adaptive_epsilon, options.tile_width);

  // Row updates hand the engine tiles of `batch` entries at a time; only
  // engines with a real batch kernel ask for more than one.
  const std::int64_t batch = std::max<std::int64_t>(1, engine->PreferredBatch());

  // Intermediate data of the default variant: per-thread B and the solved
  // row + c (J²+2J), the δ tile (batch·J) and its entry ids/coordinate
  // pointers/values (3·batch words), plus the reconstruction-error tile
  // (coordinate pointers, observed values, and x̂ — 3·batch words) used by
  // the metric path — still the O(T J²) of Theorem 4 for the default
  // batch-1 engines. (The truncation scorer's batch·|G| products scratch
  // is charged inside ComputePartialErrors, where |G| is current.)
  const std::int64_t scratch_bytes =
      static_cast<std::int64_t>(threads) *
      static_cast<std::int64_t>(sizeof(double)) *
      (max_rank * max_rank + 2 * max_rank + batch * max_rank + 6 * batch);
  ScopedCharge scratch_charge(tracker, scratch_bytes);

  PTuckerResult result;
  double previous_error = std::numeric_limits<double>::infinity();

  for (int iteration = 1; iteration <= options.max_iterations; ++iteration) {
    Stopwatch iteration_clock;
    PTUCKER_TRACE_SPAN("als.iteration");

    // --- Update factor matrices (Algorithm 3), every row of every mode
    // through the shared row-subset entry point (row_update.h). ---
    RowUpdateOptions row_options;
    row_options.lambda = options.lambda;
    row_options.sample_rate = options.sample_rate;
    row_options.seed = options.seed;
    row_options.iteration = iteration;
    for (std::int64_t mode = 0; mode < order; ++mode) {
      PTUCKER_TRACE_SPAN("als.factor_update");
      Matrix old_factor;
      if (engine->WantsFactorSnapshot()) {
        old_factor = factors[static_cast<std::size_t>(mode)];
      }
      UpdateFactorRows(x, mode, /*rows=*/nullptr, /*num_rows=*/0, *engine,
                       &factors[static_cast<std::size_t>(mode)], row_options);
      engine->OnFactorUpdated(mode, old_factor);
    }

    // --- Optional extension: re-fit the core to the observations. ---
    if (options.update_core) {
      PTUCKER_TRACE_SPAN("als.core_update");
      UpdateCoreTensor(x, &core, &core_list, factors, options.lambda,
                       options.core_update_cg_iterations, engine.get());
      engine->OnCoreValuesChanged();
    }

    // --- Reconstruction error (Algorithm 2 line 4, Eq. 5). ---
    const double error = [&] {
      PTUCKER_TRACE_SPAN("als.error");
      return ReconstructionError(x, *engine);
    }();

    IterationStats stats;
    stats.iteration = iteration;
    stats.error = error;
    stats.core_nnz = core_list.size();
    stats.peak_intermediate_bytes =
        tracker != nullptr ? tracker->peak_bytes() : 0;

    // --- Convergence (Algorithm 2 line 7). ---
    const double change =
        std::fabs(previous_error - error) / std::max(previous_error, 1e-12);
    previous_error = error;
    const bool is_last_iteration =
        change < options.tolerance || iteration == options.max_iterations;

    // --- P-TUCKER-APPROX: drop noisy core entries (lines 5-6). The
    // truncation pays off by making *subsequent* iterations cheaper, so it
    // is skipped once no row update is left to re-fit the factors to the
    // smaller core. Its cost (dominated by R(β)) is part of the iteration
    // time, matching the paper's Fig. 9 accounting. ---
    if (options.variant == PTuckerVariant::kApprox && !is_last_iteration) {
      PTUCKER_TRACE_SPAN("als.truncate");
      const std::int64_t removed = TruncateNoisyEntries(
          x, &core, &core_list, factors, options.truncation_rate,
          engine.get(), tracker);
      stats.core_nnz = core_list.size();
      if (options.verbose && removed > 0) {
        PTUCKER_LOG(kInfo) << "iteration " << iteration << ": truncated "
                           << removed << " core entries, |G|="
                           << core_list.size();
      }
    }

    stats.seconds = iteration_clock.ElapsedSeconds();
    result.iterations.push_back(stats);
    if (options.verbose) {
      PTUCKER_LOG(kInfo) << "iteration " << iteration << ": error=" << error
                         << " (" << stats.seconds << "s)";
    }
    if (change < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  // --- Orthogonalize and fold R into the core (lines 8-11). ---
  if (options.orthogonalize_output) {
    OrthogonalizeFactors(&factors, &core);
    core_list = CoreEntryList(core);
  }
  result.final_error = ReconstructionError(x, core_list, factors);
  result.model.factors = std::move(factors);
  result.model.core = std::move(core);
  result.total_seconds = total_clock.ElapsedSeconds();
  return result;
}

}  // namespace ptucker
