#include "core/reconstruction.h"

#include <algorithm>
#include <cmath>

#include "core/delta_engine.h"
#include "util/parallel.h"

namespace ptucker {

namespace {

// Per-thread worker of SquaredResidualSum: buffers consecutive entries
// into a tile of the engine's preferred width, reconstructs the tile with
// one ReconstructBatch call, and adds the squared residuals in entry
// order. ReconstructBatch equals a per-entry Reconstruct loop on every
// engine, and with the blocked deterministic sum's static partition the
// additions happen in exactly the per-entry order — so the sum is
// bit-identical to the unbatched flow for any batch width.
class ResidualWorker {
 public:
  ResidualWorker(const SparseTensor& x, const DeltaEngine& engine,
                 std::int64_t batch)
      : x_(&x), engine_(&engine), batch_(batch) {
    if (batch_ > 1) {
      indices_.resize(static_cast<std::size_t>(batch_));
      observed_.resize(static_cast<std::size_t>(batch_));
      predicted_.resize(static_cast<std::size_t>(batch_));
    }
  }

  void operator()(std::int64_t e, double* local) {
    if (batch_ == 1) {
      // Batch-1 engines keep the direct per-entry hot path.
      const double residual =
          x_->value(e) - engine_->Reconstruct(x_->index(e));
      *local += residual * residual;
      return;
    }
    indices_[static_cast<std::size_t>(pending_)] = x_->index(e);
    observed_[static_cast<std::size_t>(pending_)] = x_->value(e);
    if (++pending_ == batch_) Flush(local);
  }

  void Flush(double* local) {
    if (pending_ == 0) return;
    engine_->ReconstructBatch(pending_, indices_.data(), predicted_.data());
    for (std::int64_t i = 0; i < pending_; ++i) {
      const double residual = observed_[static_cast<std::size_t>(i)] -
                              predicted_[static_cast<std::size_t>(i)];
      *local += residual * residual;
    }
    pending_ = 0;
  }

 private:
  const SparseTensor* x_;
  const DeltaEngine* engine_;
  std::int64_t batch_;
  std::int64_t pending_ = 0;
  std::vector<const std::int64_t*> indices_;
  std::vector<double> observed_;
  std::vector<double> predicted_;
};

// Σ (X_α − x̂_α)² in parallel; the building block of both metrics.
// Deterministic combine order so fixed-seed solves are bit-reproducible;
// tiled through ReconstructBatch when the engine has a real batch kernel.
double SquaredResidualSum(const SparseTensor& x, const DeltaEngine& engine) {
  double lane_sums[kReductionLanes];
  SquaredResidualLaneSums(x, engine, 0, kReductionLanes, lane_sums);
  return FoldLaneSums(lane_sums, kReductionLanes);
}

}  // namespace

void SquaredResidualLaneSums(const SparseTensor& x, const DeltaEngine& engine,
                             std::int64_t lane_begin, std::int64_t lane_end,
                             double* lane_sums) {
  const std::int64_t batch =
      std::max<std::int64_t>(1, engine.PreferredBatch());
  DeterministicParallelLaneSums(
      x.nnz(), lane_begin, lane_end, lane_sums,
      [&] { return ResidualWorker(x, engine, batch); });
}

double ReconstructionError(const SparseTensor& x, const DeltaEngine& engine) {
  return std::sqrt(SquaredResidualSum(x, engine));
}

double ReconstructionError(const SparseTensor& x, const CoreEntryList& core,
                           const std::vector<Matrix>& factors) {
  const NaiveDeltaEngine engine(core, factors);
  return ReconstructionError(x, engine);
}

double ReconstructionError(const SparseTensor& x, const DenseTensor& core,
                           const std::vector<Matrix>& factors) {
  return ReconstructionError(x, CoreEntryList(core), factors);
}

double TestRmse(const SparseTensor& test, const DeltaEngine& engine) {
  if (test.nnz() == 0) return 0.0;
  return std::sqrt(SquaredResidualSum(test, engine) /
                   static_cast<double>(test.nnz()));
}

double TestRmse(const SparseTensor& test, const CoreEntryList& core,
                const std::vector<Matrix>& factors) {
  const NaiveDeltaEngine engine(core, factors);
  return TestRmse(test, engine);
}

double TestRmse(const SparseTensor& test, const DenseTensor& core,
                const std::vector<Matrix>& factors) {
  return TestRmse(test, CoreEntryList(core), factors);
}

void PredictEntries(std::int64_t count, const std::int64_t* const* indices,
                    const DeltaEngine& engine, double* out) {
  const std::int64_t batch =
      std::max<std::int64_t>(1, engine.PreferredBatch());
#pragma omp parallel
  {
    // With static scheduling each thread's entries are consecutive, so a
    // buffered tile always maps to a contiguous span of the output and
    // ReconstructBatch can write it directly.
    std::vector<const std::int64_t*> tile(static_cast<std::size_t>(batch));
    std::int64_t tile_start = 0;
    std::int64_t pending = 0;
    const auto flush = [&] {
      if (pending == 0) return;
      engine.ReconstructBatch(pending, tile.data(), out + tile_start);
      pending = 0;
    };
#pragma omp for schedule(static)
    for (std::int64_t e = 0; e < count; ++e) {
      if (batch == 1) {
        out[e] = engine.Reconstruct(indices[e]);
        continue;
      }
      if (pending == 0) tile_start = e;
      tile[static_cast<std::size_t>(pending)] = indices[e];
      if (++pending == batch) flush();
    }
    flush();
  }
}

std::vector<double> PredictEntries(const SparseTensor& query,
                                   const DeltaEngine& engine) {
  std::vector<const std::int64_t*> indices(
      static_cast<std::size_t>(query.nnz()));
  for (std::int64_t e = 0; e < query.nnz(); ++e) {
    indices[static_cast<std::size_t>(e)] = query.index(e);
  }
  std::vector<double> predictions(indices.size());
  PredictEntries(query.nnz(), indices.data(), engine, predictions.data());
  return predictions;
}

std::vector<double> PredictEntries(const SparseTensor& query,
                                   const DenseTensor& core,
                                   const std::vector<Matrix>& factors) {
  const CoreEntryList list(core);
  const NaiveDeltaEngine engine(list, factors);
  return PredictEntries(query, engine);
}

}  // namespace ptucker
