#include "core/reconstruction.h"

#include <cmath>

#include "core/delta_engine.h"
#include "util/parallel.h"

namespace ptucker {

namespace {

// Σ (X_α − x̂_α)² in parallel; the building block of both metrics.
// Deterministic combine order so fixed-seed solves are bit-reproducible.
double SquaredResidualSum(const SparseTensor& x, const DeltaEngine& engine) {
  return DeterministicParallelSum(x.nnz(), [&](std::int64_t e) {
    const double predicted = engine.Reconstruct(x.index(e));
    const double residual = x.value(e) - predicted;
    return residual * residual;
  });
}

}  // namespace

double ReconstructionError(const SparseTensor& x, const DeltaEngine& engine) {
  return std::sqrt(SquaredResidualSum(x, engine));
}

double ReconstructionError(const SparseTensor& x, const CoreEntryList& core,
                           const std::vector<Matrix>& factors) {
  const NaiveDeltaEngine engine(core, factors);
  return ReconstructionError(x, engine);
}

double ReconstructionError(const SparseTensor& x, const DenseTensor& core,
                           const std::vector<Matrix>& factors) {
  return ReconstructionError(x, CoreEntryList(core), factors);
}

double TestRmse(const SparseTensor& test, const DeltaEngine& engine) {
  if (test.nnz() == 0) return 0.0;
  return std::sqrt(SquaredResidualSum(test, engine) /
                   static_cast<double>(test.nnz()));
}

double TestRmse(const SparseTensor& test, const CoreEntryList& core,
                const std::vector<Matrix>& factors) {
  const NaiveDeltaEngine engine(core, factors);
  return TestRmse(test, engine);
}

double TestRmse(const SparseTensor& test, const DenseTensor& core,
                const std::vector<Matrix>& factors) {
  return TestRmse(test, CoreEntryList(core), factors);
}

std::vector<double> PredictEntries(const SparseTensor& query,
                                   const DenseTensor& core,
                                   const std::vector<Matrix>& factors) {
  const CoreEntryList list(core);
  const NaiveDeltaEngine engine(list, factors);
  std::vector<double> predictions(static_cast<std::size_t>(query.nnz()));
#pragma omp parallel for schedule(static)
  for (std::int64_t e = 0; e < query.nnz(); ++e) {
    predictions[static_cast<std::size_t>(e)] =
        engine.Reconstruct(query.index(e));
  }
  return predictions;
}

}  // namespace ptucker
