/// \file
/// \brief Solver configuration: PTuckerOptions (Algorithm 2 inputs plus
/// environment and extension knobs) and the enums selecting the variant,
/// δ-engine, and OpenMP scheduling.
#ifndef PTUCKER_CORE_OPTIONS_H_
#define PTUCKER_CORE_OPTIONS_H_

#include <cstdint>
#include <vector>

#include "util/memory_tracker.h"

namespace ptucker {

struct TuckerFactorization;  // core/ptucker.h (which includes this header)

/// Which P-Tucker algorithm to run (paper §III-C).
enum class PTuckerVariant {
  /// Default memory-optimized algorithm: O(T J²) intermediate data.
  kMemory,
  /// P-TUCKER-CACHE: memoizes per-(entry, core-entry) products in the
  /// Pres table; faster δ at O(|Ω|·|G|) memory.
  kCache,
  /// P-TUCKER-APPROX: truncates "noisy" core entries by partial
  /// reconstruction error after every iteration.
  kApprox,
};

/// Which DeltaEngine implementation (core/delta_engine.h) computes δ
/// (Eq. 12) and x̂ (Eq. 4) in the solver hot path. The authoritative
/// name/summary for each enumerator lives in DeltaEngineCatalog()
/// (core/delta_engine.h) — the CLI parser and its --help text are both
/// generated from that one table. See docs/architecture.md.
enum class DeltaEngineChoice {
  /// Defer to the variant: kCache → kCached, everything else → kModeMajor.
  kAuto,
  /// Entry-major scan of the core list — the correctness oracle.
  kNaive,
  /// Per-mode regrouped core views with branch-free inner products — the
  /// default hot path.
  kModeMajor,
  /// The §III-C Pres table behind the engine interface.
  kCached,
  /// Mode-major views plus a VeST-style group skip: core groups whose
  /// cumulative |G_β| mass falls under PTuckerOptions::adaptive_epsilon
  /// are dropped from δ. Exact (bit-identical to kModeMajor) at ε = 0.
  kAdaptive,
  /// Mode-major views plus a native B-wide DeltaBatch kernel: one tile of
  /// PTuckerOptions::tile_width entries shares each streamed core group
  /// (cuFasterTucker-style; the stepping stone to SIMD/GPU).
  kTiled,
};

/// Default DeltaBatch tile width of the kTiled engine (entries per tile).
/// Shared by PTuckerOptions and MakeDeltaEngine so the two cannot drift.
inline constexpr std::int64_t kDefaultTileWidth = 16;

/// OpenMP scheduling of the row updates (paper §III-D). The paper's
/// "careful distribution of work" is dynamic scheduling; static is the
/// naive baseline it is compared against (1.5x slower on MovieLens).
enum class Scheduling {
  kDynamic,
  kStatic,
};

/// Configuration of a P-Tucker decomposition (paper Algorithm 2 inputs
/// plus environment knobs; defaults follow §IV-A3).
struct PTuckerOptions {
  /// Core tensor dimensionality J1..JN. Must match the tensor order and
  /// satisfy Jn <= In (required by the final QR orthogonalization).
  std::vector<std::int64_t> core_dims;

  /// L2 regularization λ of Eq. 6. Paper default: 0.01.
  double lambda = 0.01;

  /// Maximum ALS iterations. Paper default: 20.
  int max_iterations = 20;

  /// Convergence: stop when |err_prev - err| / max(err_prev, 1e-12) falls
  /// below this.
  double tolerance = 1e-4;

  /// Which P-Tucker algorithm to run (§III-C): memory-optimized, cached,
  /// or approx (core truncation).
  PTuckerVariant variant = PTuckerVariant::kMemory;

  /// δ-computation engine. kAuto lets the variant choose; an explicit
  /// value overrides it (e.g. kNaive pins the oracle scan for debugging).
  DeltaEngineChoice delta_engine = DeltaEngineChoice::kAuto;

  /// Error budget ε of the kAdaptive engine, as a fraction of the total
  /// core magnitude Σ_β |G_β| per regrouped view. Groups are skipped
  /// smallest-first while their cumulative |G_β| mass stays ≤ ε · Σ|G_β|,
  /// bounding the δ error by ε · Σ|G_β| · max|A|^(N−1) per component sum.
  /// Only δ is lossy: the engine's reconstruction/products/design kernels
  /// stay exact, so error metrics and truncation scores never degrade.
  /// 0 (default) skips nothing and is bit-identical to kModeMajor; must be
  /// in [0, 1). Ignored by the other engines.
  double adaptive_epsilon = 0.0;

  /// Entries per batch tile of the kTiled engine — the width of its
  /// DeltaBatch, ReconstructBatch, and ProductsBatch kernels, which the
  /// solver row update, the reconstruction/test-RMSE metrics, and the
  /// approx truncation scorer all consume (each consuming tiles in entry
  /// order, so results are bit-identical at every width). Must be >= 1;
  /// clamped to the engine's compile-time kMaxTile (64). Tiles below
  /// TiledDeltaEngine::kSimdMinTile (32) — including this default — run
  /// the scalar tile kernels; the packed `#pragma omp simd` kernels,
  /// which pay only at wide tiles, need tile_width >= 32. Ignored by the
  /// other engines (they batch with width 1).
  std::int64_t tile_width = kDefaultTileWidth;

  /// Truncation rate p per iteration (P-TUCKER-APPROX only). Paper: 0.2.
  double truncation_rate = 0.2;

  /// Worker threads T; 0 uses the OpenMP default.
  int num_threads = 0;

  /// OpenMP scheduling of the row updates (§III-D); dynamic is the
  /// paper's careful distribution of work, static the naive ablation.
  Scheduling scheduling = Scheduling::kDynamic;

  /// Seed for the Uniform[0,1) initialization of factors and core.
  std::uint64_t seed = 0x5eedULL;

  /// Warm start: when non-null, factors and core are initialized from
  /// this fitted model (e.g. a checkpoint loaded with LoadSnapshot,
  /// serve/snapshot.h) instead of the Uniform[0,1) draw, so a solve can
  /// resume where a previous one stopped. The model must match the
  /// input: factor n must be I_n × core_dims[n] and the core must have
  /// shape core_dims (std::invalid_argument otherwise). The pointee is
  /// only read during initialization and is never modified; it must stay
  /// alive for the PTuckerDecompose call. Resuming a run that was
  /// checkpointed with orthogonalize_output off continues its trajectory
  /// exactly (row-wise ALS is deterministic in the state) — except under
  /// sample_rate < 1, whose per-row subsample streams are keyed by the
  /// iteration counter, which restarts on resume, so a subsampled resume
  /// is a fresh (still deterministic) draw rather than an exact
  /// continuation.
  const TuckerFactorization* init_snapshot = nullptr;

  /// Orthogonalize factors and fold R into the core when done
  /// (Algorithm 2 lines 8-11). On by default as in the paper.
  bool orthogonalize_output = true;

  /// Extension (paper future work): re-fit the core tensor to observed
  /// entries by regularized least squares after each iteration.
  bool update_core = false;

  /// Conjugate-gradient steps per core update (when update_core).
  int core_update_cg_iterations = 8;

  /// Extension (the paper's future work: "applying sampling techniques on
  /// observable entries to accelerate decompositions, while sacrificing
  /// little accuracy"): each row update uses a Bernoulli(sample_rate)
  /// subsample of its slice Ω(n,in) instead of every observed entry.
  /// 1.0 (default) is the exact paper algorithm; values in (0,1) trade
  /// accuracy for speed. At least one entry per non-empty slice is always
  /// kept. The subsample is redrawn per (iteration, mode, row) from
  /// `seed`, so runs stay deterministic.
  double sample_rate = 1.0;

  /// When set, intermediate data is charged here; exceeding its budget
  /// raises OutOfMemoryBudget (the paper's O.O.M.).
  MemoryTracker* tracker = nullptr;

  /// Log per-iteration progress at INFO level.
  bool verbose = false;
};

}  // namespace ptucker

#endif  // PTUCKER_CORE_OPTIONS_H_
