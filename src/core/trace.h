/// \file
/// \brief Per-iteration solver measurements (IterationStats) shared by
/// every decomposition method and the benchmark harness.
#ifndef PTUCKER_CORE_TRACE_H_
#define PTUCKER_CORE_TRACE_H_

#include <cstdint>
#include <vector>

namespace ptucker {

/// Per-iteration measurements recorded by every solver in this library.
/// The benchmark harness prints these as the paper's time/error series
/// (Figs. 6-11 all report either time-per-iteration or error-vs-time).
struct IterationStats {
  /// 1-based ALS iteration number.
  int iteration = 0;
  /// Reconstruction error over observed entries (Eq. 5).
  double error = 0.0;
  /// Wall-clock seconds spent in this iteration.
  double seconds = 0.0;
  /// Nonzero core entries |G| after this iteration (shrinks under
  /// P-TUCKER-APPROX).
  std::int64_t core_nnz = 0;
  /// Peak intermediate bytes observed so far (0 when no tracker is set).
  std::int64_t peak_intermediate_bytes = 0;
};

}  // namespace ptucker

#endif  // PTUCKER_CORE_TRACE_H_
