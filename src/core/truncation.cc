#include "core/truncation.h"

#include <algorithm>
#include <numeric>

#include "core/delta_engine.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace ptucker {

std::vector<double> ComputePartialErrors(const SparseTensor& x,
                                         const CoreEntryList& core,
                                         const std::vector<Matrix>& factors,
                                         const DeltaEngine* engine) {
  const std::int64_t n_core = core.size();
  const std::size_t core_count = static_cast<std::size_t>(n_core);
  std::vector<double> result(core_count, 0.0);
  const NaiveDeltaEngine fallback(core, factors);
  const DeltaEngine& delta_engine = engine != nullptr ? *engine : fallback;

  // Per-thread accumulators merged in thread order (no atomics on the hot
  // path, deterministic run-to-run for a fixed thread count).
  DeterministicParallelVectorSum(
      x.nnz(), core_count, result.data(), [&] {
        // One pass computes every c_αβ and their sum x̂_α.
        std::vector<double> products(core_count);
        return [&delta_engine, &x, n_core,
                products = std::move(products)](std::int64_t e,
                                                double* local) mutable {
          delta_engine.ComputeProducts(x.index(e), products.data());
          double reconstruction = 0.0;
          for (std::int64_t b = 0; b < n_core; ++b) {
            reconstruction += products[static_cast<std::size_t>(b)];
          }
          const double residual = x.value(e) - reconstruction;
          for (std::int64_t b = 0; b < n_core; ++b) {
            const double c = products[static_cast<std::size_t>(b)];
            // (X−x̂)² − (X−x̂+c)² = −c·(c + 2(X−x̂)) — Eq. 13 in terms of
            // the residual.
            local[b] -= c * (c + 2.0 * residual);
          }
        };
      });
  return result;
}

std::int64_t TruncateNoisyEntries(const SparseTensor& x, DenseTensor* core,
                                  CoreEntryList* core_list,
                                  const std::vector<Matrix>& factors,
                                  double truncation_rate,
                                  DeltaEngine* engine) {
  PTUCKER_CHECK(truncation_rate >= 0.0 && truncation_rate < 1.0);
  const std::int64_t n_core = core_list->size();
  std::int64_t to_remove = static_cast<std::int64_t>(
      truncation_rate * static_cast<double>(n_core));
  to_remove = std::min(to_remove, n_core - 1);  // keep the model alive
  if (to_remove <= 0) return 0;

  const std::vector<double> partial_errors =
      ComputePartialErrors(x, *core_list, factors, engine);

  // Rank descending by R(β); nth_element is enough — Algorithm 4 only
  // needs the top-p set, not a full sort.
  std::vector<std::int64_t> order(static_cast<std::size_t>(n_core));
  std::iota(order.begin(), order.end(), 0);
  std::nth_element(order.begin(), order.begin() + to_remove, order.end(),
                   [&](std::int64_t a, std::int64_t b) {
                     return partial_errors[static_cast<std::size_t>(a)] >
                            partial_errors[static_cast<std::size_t>(b)];
                   });

  std::vector<char> remove(static_cast<std::size_t>(n_core), 0);
  for (std::int64_t r = 0; r < to_remove; ++r) {
    remove[static_cast<std::size_t>(order[static_cast<std::size_t>(r)])] = 1;
  }
  const std::int64_t removed = core_list->Remove(remove, core);
  if (engine != nullptr) engine->OnCoreEntriesRemoved(remove);
  return removed;
}

}  // namespace ptucker
