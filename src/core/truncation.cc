#include "core/truncation.h"

#include <algorithm>
#include <numeric>

#include <omp.h>

#include "util/logging.h"

namespace ptucker {

std::vector<double> ComputePartialErrors(
    const SparseTensor& x, const CoreEntryList& core,
    const std::vector<Matrix>& factors) {
  const std::int64_t n_core = core.size();
  const std::int64_t order = core.order();
  std::vector<double> result(static_cast<std::size_t>(n_core), 0.0);

#pragma omp parallel
  {
    // Per-thread accumulators avoid atomics on the hot path.
    std::vector<double> local(static_cast<std::size_t>(n_core), 0.0);
    std::vector<double> products(static_cast<std::size_t>(n_core));

#pragma omp for schedule(static)
    for (std::int64_t e = 0; e < x.nnz(); ++e) {
      const std::int64_t* idx = x.index(e);
      // One pass computes every c_αβ and their sum x̂_α.
      double reconstruction = 0.0;
      for (std::int64_t b = 0; b < n_core; ++b) {
        const std::int32_t* beta = core.index(b);
        double product = core.value(b);
        for (std::int64_t k = 0; k < order; ++k) {
          product *= factors[static_cast<std::size_t>(k)](idx[k], beta[k]);
        }
        products[static_cast<std::size_t>(b)] = product;
        reconstruction += product;
      }
      const double value = x.value(e);
      const double residual = value - reconstruction;
      for (std::int64_t b = 0; b < n_core; ++b) {
        const double c = products[static_cast<std::size_t>(b)];
        // (X−x̂)² − (X−x̂+c)² = −c·(c + 2(X−x̂)) — Eq. 13 in terms of the
        // residual.
        local[static_cast<std::size_t>(b)] -= c * (c + 2.0 * residual);
      }
    }

#pragma omp critical
    {
      for (std::int64_t b = 0; b < n_core; ++b) {
        result[static_cast<std::size_t>(b)] +=
            local[static_cast<std::size_t>(b)];
      }
    }
  }
  return result;
}

std::int64_t TruncateNoisyEntries(const SparseTensor& x, DenseTensor* core,
                                  CoreEntryList* core_list,
                                  const std::vector<Matrix>& factors,
                                  double truncation_rate) {
  PTUCKER_CHECK(truncation_rate >= 0.0 && truncation_rate < 1.0);
  const std::int64_t n_core = core_list->size();
  std::int64_t to_remove = static_cast<std::int64_t>(
      truncation_rate * static_cast<double>(n_core));
  to_remove = std::min(to_remove, n_core - 1);  // keep the model alive
  if (to_remove <= 0) return 0;

  const std::vector<double> partial_errors =
      ComputePartialErrors(x, *core_list, factors);

  // Rank descending by R(β); nth_element is enough — Algorithm 4 only
  // needs the top-p set, not a full sort.
  std::vector<std::int64_t> order(static_cast<std::size_t>(n_core));
  std::iota(order.begin(), order.end(), 0);
  std::nth_element(order.begin(), order.begin() + to_remove, order.end(),
                   [&](std::int64_t a, std::int64_t b) {
                     return partial_errors[static_cast<std::size_t>(a)] >
                            partial_errors[static_cast<std::size_t>(b)];
                   });

  std::vector<char> remove(static_cast<std::size_t>(n_core), 0);
  for (std::int64_t r = 0; r < to_remove; ++r) {
    remove[static_cast<std::size_t>(order[static_cast<std::size_t>(r)])] = 1;
  }
  return core_list->Remove(remove, core);
}

}  // namespace ptucker
