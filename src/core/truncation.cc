#include "core/truncation.h"

#include <algorithm>
#include <numeric>

#include <omp.h>

#include "core/delta_engine.h"
#include "util/logging.h"
#include "util/memory_tracker.h"
#include "util/parallel.h"

namespace ptucker {

namespace {

// Per-thread worker of ComputePartialErrors: buffers consecutive observed
// entries into a tile of the engine's preferred width, computes every
// c_αβ of the tile with one ProductsBatch call, and applies the Eq. 13
// update in entry order. ProductsBatch equals a per-entry ComputeProducts
// loop on every engine and the blocked deterministic sum keeps the
// per-entry static partition, so the scores — and therefore the set of
// truncated entries — are bit-identical to the unbatched flow for any
// batch width.
class PartialErrorWorker {
 public:
  PartialErrorWorker(const SparseTensor& x, const DeltaEngine& engine,
                     std::int64_t n_core, std::int64_t batch)
      : x_(&x), engine_(&engine), n_core_(n_core), batch_(batch) {
    products_.resize(static_cast<std::size_t>(batch_ * n_core_));
    if (batch_ > 1) {
      indices_.resize(static_cast<std::size_t>(batch_));
      observed_.resize(static_cast<std::size_t>(batch_));
    }
  }

  void operator()(std::int64_t e, double* local) {
    if (batch_ == 1) {
      // Batch-1 engines keep the direct per-entry hot path.
      engine_->ComputeProducts(x_->index(e), products_.data());
      Accumulate(x_->value(e), products_.data(), local);
      return;
    }
    indices_[static_cast<std::size_t>(pending_)] = x_->index(e);
    observed_[static_cast<std::size_t>(pending_)] = x_->value(e);
    if (++pending_ == batch_) Flush(local);
  }

  void Flush(double* local) {
    if (pending_ == 0) return;
    engine_->ProductsBatch(pending_, indices_.data(), products_.data());
    for (std::int64_t i = 0; i < pending_; ++i) {
      Accumulate(observed_[static_cast<std::size_t>(i)],
                 products_.data() + i * n_core_, local);
    }
    pending_ = 0;
  }

 private:
  // One entry's Eq. 13 contribution: one pass over its c_αβ computes the
  // reconstruction x̂_α, a second folds each product into R(β).
  void Accumulate(double observed, const double* products,
                  double* local) const {
    double reconstruction = 0.0;
    for (std::int64_t b = 0; b < n_core_; ++b) {
      reconstruction += products[b];
    }
    const double residual = observed - reconstruction;
    for (std::int64_t b = 0; b < n_core_; ++b) {
      const double c = products[b];
      // (X−x̂)² − (X−x̂+c)² = −c·(c + 2(X−x̂)) — Eq. 13 in terms of
      // the residual.
      local[b] -= c * (c + 2.0 * residual);
    }
  }

  const SparseTensor* x_;
  const DeltaEngine* engine_;
  std::int64_t n_core_;
  std::int64_t batch_;
  std::int64_t pending_ = 0;
  std::vector<double> products_;
  std::vector<const std::int64_t*> indices_;
  std::vector<double> observed_;
};

}  // namespace

std::vector<double> ComputePartialErrors(const SparseTensor& x,
                                         const CoreEntryList& core,
                                         const std::vector<Matrix>& factors,
                                         const DeltaEngine* engine,
                                         MemoryTracker* tracker) {
  const std::int64_t n_core = core.size();
  const std::size_t core_count = static_cast<std::size_t>(n_core);
  std::vector<double> result(core_count, 0.0);
  const NaiveDeltaEngine fallback(core, factors);
  const DeltaEngine& delta_engine = engine != nullptr ? *engine : fallback;
  const std::int64_t batch =
      std::max<std::int64_t>(1, delta_engine.PreferredBatch());

  // The per-thread tile scratch (batch·|G| products plus the tile's
  // coordinate pointers and values) is intermediate data like any other;
  // charge it for the duration of the scan.
  const std::int64_t scratch_bytes =
      static_cast<std::int64_t>(omp_get_max_threads()) *
      static_cast<std::int64_t>(sizeof(double)) *
      (batch * n_core + (batch > 1 ? 2 * batch : 0));
  ScopedCharge scratch_charge(tracker, scratch_bytes);

  // Per-thread accumulators merged in thread order (no atomics on the hot
  // path, deterministic run-to-run for a fixed thread count).
  DeterministicParallelBlockedVectorSum(
      x.nnz(), core_count, result.data(), [&] {
        return PartialErrorWorker(x, delta_engine, n_core, batch);
      });
  return result;
}

std::int64_t TruncateNoisyEntries(const SparseTensor& x, DenseTensor* core,
                                  CoreEntryList* core_list,
                                  const std::vector<Matrix>& factors,
                                  double truncation_rate,
                                  DeltaEngine* engine,
                                  MemoryTracker* tracker) {
  PTUCKER_CHECK(truncation_rate >= 0.0 && truncation_rate < 1.0);
  const std::int64_t n_core = core_list->size();
  std::int64_t to_remove = static_cast<std::int64_t>(
      truncation_rate * static_cast<double>(n_core));
  to_remove = std::min(to_remove, n_core - 1);  // keep the model alive
  if (to_remove <= 0) return 0;

  const std::vector<double> partial_errors =
      ComputePartialErrors(x, *core_list, factors, engine, tracker);

  // Rank descending by R(β); nth_element is enough — Algorithm 4 only
  // needs the top-p set, not a full sort.
  std::vector<std::int64_t> order(static_cast<std::size_t>(n_core));
  std::iota(order.begin(), order.end(), 0);
  std::nth_element(order.begin(), order.begin() + to_remove, order.end(),
                   [&](std::int64_t a, std::int64_t b) {
                     return partial_errors[static_cast<std::size_t>(a)] >
                            partial_errors[static_cast<std::size_t>(b)];
                   });

  std::vector<char> remove(static_cast<std::size_t>(n_core), 0);
  for (std::int64_t r = 0; r < to_remove; ++r) {
    remove[static_cast<std::size_t>(order[static_cast<std::size_t>(r)])] = 1;
  }
  const std::int64_t removed = core_list->Remove(remove, core);
  if (engine != nullptr) engine->OnCoreEntriesRemoved(remove);
  return removed;
}

}  // namespace ptucker
