/// \file
/// \brief The §III-C Pres table of P-TUCKER-CACHE: memoized per-(observed
/// entry, core entry) products giving O(1) δ per pair, behind
/// CachedDeltaEngine.
#ifndef PTUCKER_CORE_CACHE_TABLE_H_
#define PTUCKER_CORE_CACHE_TABLE_H_

#include <cstdint>
#include <vector>

#include "core/delta.h"
#include "linalg/factor_view.h"
#include "linalg/matrix.h"
#include "tensor/sparse_tensor.h"
#include "util/memory_tracker.h"

namespace ptucker {

/// The Pres table of P-TUCKER-CACHE (Algorithm 3 lines 1-4 and 16-19):
/// Pres[α][β] = G_β · Π_{k=1..N} A(k)(ik, jk) for every observed entry α
/// and nonzero core entry β.
///
/// With the full product cached, δ(jn) is recovered by dividing out the
/// mode-n coefficient: δ(jn) += Pres[α][β] / A(n)(in, jn) — O(1) per pair
/// instead of O(N). When that coefficient is zero the product is recomputed
/// directly, exactly as the paper specifies. After mode n's rows change,
/// the table is rescaled by a_new/a_old (same zero fallback).
///
/// Memory is Θ(|Ω|·|G|) doubles — the time-for-memory trade of §III-C —
/// and is charged to the tracker for the table's lifetime.
class CacheTable {
 public:
  /// Charges |Ω|·|G| doubles to `tracker` (throws OutOfMemoryBudget if
  /// over budget) and fills the table in parallel.
  CacheTable(const SparseTensor& x, const CoreEntryList& core,
             const std::vector<FactorView>& factors, MemoryTracker* tracker);

  /// \overload over owning factor matrices (training path).
  CacheTable(const SparseTensor& x, const CoreEntryList& core,
             const std::vector<Matrix>& factors, MemoryTracker* tracker)
      : CacheTable(x, core, MakeFactorViews(factors), tracker) {}
  /// Releases the charged bytes.
  ~CacheTable();

  CacheTable(const CacheTable&) = delete;             ///< non-copyable
  CacheTable& operator=(const CacheTable&) = delete;  ///< non-copyable

  /// Number of observed entries |Ω| the table spans.
  std::int64_t num_entries() const { return num_entries_; }
  /// Number of nonzero core entries |G| per row.
  std::int64_t num_core() const { return num_core_; }

  /// The cached products Pres[entry][0..num_core()) of one observed entry.
  const double* Row(std::int64_t entry) const {
    return table_.data() + static_cast<std::size_t>(entry * num_core_);
  }

  /// Computes δ for observed entry `entry` (coordinates `entry_index`)
  /// using the cached products. `delta` holds Jn doubles.
  void ComputeDeltaCached(const CoreEntryList& core,
                          const std::vector<FactorView>& factors,
                          std::int64_t entry, const std::int64_t* entry_index,
                          std::int64_t mode, double* delta) const;

  /// \overload over owning factor matrices (training path).
  void ComputeDeltaCached(const CoreEntryList& core,
                          const std::vector<Matrix>& factors,
                          std::int64_t entry, const std::int64_t* entry_index,
                          std::int64_t mode, double* delta) const {
    ComputeDeltaCached(core, MakeFactorViews(factors), entry, entry_index,
                       mode, delta);
  }

  /// Rescales the table after mode `mode`'s factor changed from
  /// `old_factor` to `new_factor` (Algorithm 3 lines 16-19).
  void UpdateAfterMode(const SparseTensor& x, const CoreEntryList& core,
                       const std::vector<FactorView>& factors,
                       std::int64_t mode, const Matrix& old_factor);

  /// \overload over owning factor matrices (training path).
  void UpdateAfterMode(const SparseTensor& x, const CoreEntryList& core,
                       const std::vector<Matrix>& factors, std::int64_t mode,
                       const Matrix& old_factor) {
    UpdateAfterMode(x, core, MakeFactorViews(factors), mode, old_factor);
  }

  /// Bytes held by the table (the Θ(|Ω|·|G|) trade of §III-C).
  std::int64_t ByteSize() const {
    return static_cast<std::int64_t>(table_.size() * sizeof(double));
  }

 private:
  /// Recomputes Pres[entry][b] = G_b Π_k A(k)(ik, jk) from scratch.
  double RecomputeProduct(const CoreEntryList& core,
                          const std::vector<FactorView>& factors,
                          const std::int64_t* entry_index,
                          std::int64_t b) const;

  std::int64_t num_entries_;
  std::int64_t num_core_;
  std::vector<double> table_;  // num_entries x num_core, row-major
  MemoryTracker* tracker_;
  std::int64_t charged_bytes_ = 0;
};

}  // namespace ptucker

#endif  // PTUCKER_CORE_CACHE_TABLE_H_
