/// \file
/// \brief Model-quality metrics: reconstruction error over observed
/// entries (Eq. 5), held-out test RMSE (Fig. 11), and bulk entry
/// prediction — all routed through a DeltaEngine with deterministic
/// (thread-ordered) parallel reductions, tiled through
/// DeltaEngine::ReconstructBatch when the engine has a batch kernel.
#ifndef PTUCKER_CORE_RECONSTRUCTION_H_
#define PTUCKER_CORE_RECONSTRUCTION_H_

#include <vector>

#include "core/delta.h"
#include "linalg/matrix.h"
#include "tensor/dense_tensor.h"
#include "tensor/sparse_tensor.h"

namespace ptucker {

class DeltaEngine;

/// Reconstruction error over observed entries (Eq. 5):
/// √ Σ_{α∈Ω} (X_α − x̂_α)². Parallelized over entries with static
/// scheduling (§III-D section 3). Every overload routes x̂ through a
/// DeltaEngine; the list/dense forms use the entry-major oracle. Entries
/// are tiled through ReconstructBatch in PreferredBatch()-sized tiles
/// and their residuals summed in entry order, so the result is
/// bit-identical to a per-entry scan for every engine and batch width.
double ReconstructionError(const SparseTensor& x, const DeltaEngine& engine);

/// Per-lane partials of Σ (X_α − x̂_α)² over the fixed reduction-lane
/// partition of the entry range [0, x.nnz()): lane l's partial lands at
/// `lane_sums[l − lane_begin]`, accumulated in entry order (tiled
/// through ReconstructBatch like ReconstructionError). Folding all
/// kReductionLanes partials in lane order and taking the square root
/// reproduces ReconstructionError bit for bit — the distributed solver
/// gathers each worker's lane subrange and folds exactly that way.
void SquaredResidualLaneSums(const SparseTensor& x, const DeltaEngine& engine,
                             std::int64_t lane_begin, std::int64_t lane_end,
                             double* lane_sums);

/// Entry-major-oracle overload of ReconstructionError.
double ReconstructionError(const SparseTensor& x, const CoreEntryList& core,
                           const std::vector<Matrix>& factors);

/// Convenience overload building the entry list from a dense core.
double ReconstructionError(const SparseTensor& x, const DenseTensor& core,
                           const std::vector<Matrix>& factors);

/// Test root-mean-square error over the entries of `test` — the paper's
/// missing-entry prediction metric (Fig. 11, right). The engine overload
/// reconstructs arbitrary coordinates, so `test` need not be the tensor
/// the engine was built over. Tiled like ReconstructionError.
double TestRmse(const SparseTensor& test, const DeltaEngine& engine);
/// Entry-major-oracle overload of TestRmse.
double TestRmse(const SparseTensor& test, const CoreEntryList& core,
                const std::vector<Matrix>& factors);
/// Convenience overload building the entry list from a dense core.
double TestRmse(const SparseTensor& test, const DenseTensor& core,
                const std::vector<Matrix>& factors);

/// Predicted values x̂ (Eq. 4) for every entry coordinate in `query`
/// (values of `query` are ignored), through `engine` — tiled with
/// ReconstructBatch, so a batch engine amortizes the core scan.
std::vector<double> PredictEntries(const SparseTensor& query,
                                   const DeltaEngine& engine);

/// Pointer-array form of PredictEntries: out[i] = x̂(indices[i]) for
/// `count` coordinate arrays, parallelized over entries and tiled in
/// PreferredBatch()-sized tiles (bit-identical to a per-entry loop).
/// The other overloads and the serving layer's PredictBatch all reduce
/// to this one kernel.
void PredictEntries(std::int64_t count, const std::int64_t* const* indices,
                    const DeltaEngine& engine, double* out);

/// Convenience overload predicting through the entry-major oracle built
/// from a dense core.
std::vector<double> PredictEntries(const SparseTensor& query,
                                   const DenseTensor& core,
                                   const std::vector<Matrix>& factors);

}  // namespace ptucker

#endif  // PTUCKER_CORE_RECONSTRUCTION_H_
