#include "core/core_update.h"

#include <cmath>

#include "core/delta_engine.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace ptucker {

namespace {

// y = P g (length |Ω|), streaming entries in parallel (independent rows).
void ApplyDesign(const SparseTensor& x, const DeltaEngine& engine,
                 const std::vector<double>& g, std::vector<double>* y) {
#pragma omp parallel for schedule(static)
  for (std::int64_t e = 0; e < x.nnz(); ++e) {
    (*y)[static_cast<std::size_t>(e)] = engine.DesignDot(x.index(e), g.data());
  }
}

// z = Pᵀ y (length |G|), per-thread accumulation merged in thread order
// (deterministic, per the ROADMAP determinism note).
void ApplyDesignTransposed(const SparseTensor& x, const DeltaEngine& engine,
                           const std::vector<double>& y,
                           std::vector<double>* z) {
  DeterministicParallelVectorSum(
      x.nnz(), z->size(), z->data(), [&] {
        return [&engine, &x, &y](std::int64_t e, double* local) {
          const double scale = y[static_cast<std::size_t>(e)];
          if (scale == 0.0) return;
          engine.DesignAccumulate(x.index(e), scale, local);
        };
      });
}

double VecDot(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace

void UpdateCoreTensor(const SparseTensor& x, DenseTensor* core,
                      CoreEntryList* core_list,
                      const std::vector<Matrix>& factors, double lambda,
                      int cg_iterations, const DeltaEngine* engine) {
  PTUCKER_CHECK(core != nullptr && core_list != nullptr);
  const std::int64_t n_core = core_list->size();
  if (n_core == 0 || cg_iterations <= 0) return;
  const std::size_t core_count = static_cast<std::size_t>(n_core);
  const std::size_t entry_count = static_cast<std::size_t>(x.nnz());
  const NaiveDeltaEngine fallback(*core_list, factors);
  const DeltaEngine& design = engine != nullptr ? *engine : fallback;

  // Warm start from the current core values: CG then monotonically
  // improves the regularized objective.
  std::vector<double> g(core_count);
  for (std::int64_t b = 0; b < n_core; ++b) {
    g[static_cast<std::size_t>(b)] = core_list->value(b);
  }

  // r = Pᵀ(x − P g) − λ g  (negative gradient of the objective / 2).
  std::vector<double> work_entries(entry_count);
  ApplyDesign(x, design, g, &work_entries);
  for (std::int64_t e = 0; e < x.nnz(); ++e) {
    work_entries[static_cast<std::size_t>(e)] =
        x.value(e) - work_entries[static_cast<std::size_t>(e)];
  }
  std::vector<double> residual(core_count);
  ApplyDesignTransposed(x, design, work_entries, &residual);
  for (std::size_t b = 0; b < core_count; ++b) residual[b] -= lambda * g[b];

  std::vector<double> direction = residual;
  std::vector<double> q(core_count);
  double rho = VecDot(residual, residual);
  const double threshold = std::max(rho * 1e-16, 1e-28);

  for (int step = 0; step < cg_iterations && rho > threshold; ++step) {
    // q = (PᵀP + λI) d.
    ApplyDesign(x, design, direction, &work_entries);
    ApplyDesignTransposed(x, design, work_entries, &q);
    for (std::size_t b = 0; b < core_count; ++b) {
      q[b] += lambda * direction[b];
    }
    const double curvature = VecDot(direction, q);
    if (curvature <= 0.0) break;
    const double alpha = rho / curvature;
    for (std::size_t b = 0; b < core_count; ++b) {
      g[b] += alpha * direction[b];
      residual[b] -= alpha * q[b];
    }
    const double rho_next = VecDot(residual, residual);
    const double beta = rho_next / rho;
    rho = rho_next;
    for (std::size_t b = 0; b < core_count; ++b) {
      direction[b] = residual[b] + beta * direction[b];
    }
  }

  // Write back through the list's indices, then refresh the list.
  std::vector<std::int64_t> index(static_cast<std::size_t>(core->order()));
  for (std::int64_t b = 0; b < n_core; ++b) {
    const std::int32_t* beta = core_list->index(b);
    for (std::int64_t k = 0; k < core->order(); ++k) {
      index[static_cast<std::size_t>(k)] = beta[k];
    }
    core->at(index.data()) = g[static_cast<std::size_t>(b)];
  }
  core_list->RefreshValues(*core);
}

}  // namespace ptucker
