#include "core/core_update.h"

#include <cmath>

#include "core/delta_engine.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace ptucker {

namespace {

double VecDot(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

// Local CoreCgMatVec: lane partials over every reduction lane, folded in
// lane order — the exact arithmetic the distributed coordinator
// reproduces by gathering the same lanes from its workers.
class LocalCoreMatVec : public CoreCgMatVec {
 public:
  LocalCoreMatVec(const SparseTensor& x, const DeltaEngine& engine,
                  std::size_t width)
      : x_(&x),
        engine_(&engine),
        width_(width),
        lane_sums_(static_cast<std::size_t>(kReductionLanes) * width) {}

  void ResidualBase(const std::vector<double>& g,
                    std::vector<double>* z) override {
    Product(/*residual_from_x=*/true, g, z);
  }

  void NormalProduct(const std::vector<double>& d,
                     std::vector<double>* z) override {
    Product(/*residual_from_x=*/false, d, z);
  }

 private:
  void Product(bool residual_from_x, const std::vector<double>& input,
               std::vector<double>* z) {
    DesignLanePartials(*x_, *engine_, residual_from_x, input, 0,
                       kReductionLanes, lane_sums_.data());
    z->resize(width_);
    FoldVectorLaneSums(lane_sums_.data(), kReductionLanes, width_, z->data());
  }

  const SparseTensor* x_;
  const DeltaEngine* engine_;
  std::size_t width_;
  std::vector<double> lane_sums_;
};

}  // namespace

void DesignLanePartials(const SparseTensor& x, const DeltaEngine& engine,
                        bool residual_from_x, const std::vector<double>& input,
                        std::int64_t lane_begin, std::int64_t lane_end,
                        double* lane_sums) {
  struct Worker {
    const SparseTensor* x;
    const DeltaEngine* engine;
    const double* input;
    bool residual_from_x;
    void operator()(std::int64_t e, double* local) {
      double y = engine->DesignDot(x->index(e), input);
      if (residual_from_x) y = x->value(e) - y;
      if (y == 0.0) return;
      engine->DesignAccumulate(x->index(e), y, local);
    }
    void Flush(double* /*local*/) {}
  };
  DeterministicParallelVectorLaneSums(
      x.nnz(), input.size(), lane_begin, lane_end, lane_sums,
      [&] { return Worker{&x, &engine, input.data(), residual_from_x}; });
}

void RunCoreCg(CoreCgMatVec* matvec, double lambda, int cg_iterations,
               std::vector<double>* g) {
  PTUCKER_CHECK(matvec != nullptr && g != nullptr);
  const std::size_t core_count = g->size();
  if (core_count == 0 || cg_iterations <= 0) return;

  // r = Pᵀ(x − P g) − λ g  (negative gradient of the objective / 2).
  std::vector<double> residual;
  matvec->ResidualBase(*g, &residual);
  for (std::size_t b = 0; b < core_count; ++b) {
    residual[b] -= lambda * (*g)[b];
  }

  std::vector<double> direction = residual;
  std::vector<double> q;
  double rho = VecDot(residual, residual);
  const double threshold = std::max(rho * 1e-16, 1e-28);

  for (int step = 0; step < cg_iterations && rho > threshold; ++step) {
    // q = (PᵀP + λI) d.
    matvec->NormalProduct(direction, &q);
    for (std::size_t b = 0; b < core_count; ++b) {
      q[b] += lambda * direction[b];
    }
    const double curvature = VecDot(direction, q);
    if (curvature <= 0.0) break;
    const double alpha = rho / curvature;
    for (std::size_t b = 0; b < core_count; ++b) {
      (*g)[b] += alpha * direction[b];
      residual[b] -= alpha * q[b];
    }
    const double rho_next = VecDot(residual, residual);
    const double beta = rho_next / rho;
    rho = rho_next;
    for (std::size_t b = 0; b < core_count; ++b) {
      direction[b] = residual[b] + beta * direction[b];
    }
  }
}

void StoreCoreValues(const std::vector<double>& g, DenseTensor* core,
                     CoreEntryList* core_list) {
  PTUCKER_CHECK(core != nullptr && core_list != nullptr);
  PTUCKER_CHECK(static_cast<std::int64_t>(g.size()) == core_list->size());
  std::vector<std::int64_t> index(static_cast<std::size_t>(core->order()));
  for (std::int64_t b = 0; b < core_list->size(); ++b) {
    const std::int32_t* beta = core_list->index(b);
    for (std::int64_t k = 0; k < core->order(); ++k) {
      index[static_cast<std::size_t>(k)] = beta[k];
    }
    core->at(index.data()) = g[static_cast<std::size_t>(b)];
  }
  core_list->RefreshValues(*core);
}

void UpdateCoreTensor(const SparseTensor& x, DenseTensor* core,
                      CoreEntryList* core_list,
                      const std::vector<Matrix>& factors, double lambda,
                      int cg_iterations, const DeltaEngine* engine) {
  PTUCKER_CHECK(core != nullptr && core_list != nullptr);
  const std::int64_t n_core = core_list->size();
  if (n_core == 0 || cg_iterations <= 0) return;
  const std::size_t core_count = static_cast<std::size_t>(n_core);
  const NaiveDeltaEngine fallback(*core_list, factors);
  const DeltaEngine& design = engine != nullptr ? *engine : fallback;

  // Warm start from the current core values: CG then monotonically
  // improves the regularized objective.
  std::vector<double> g(core_count);
  for (std::int64_t b = 0; b < n_core; ++b) {
    g[static_cast<std::size_t>(b)] = core_list->value(b);
  }

  LocalCoreMatVec matvec(x, design, core_count);
  RunCoreCg(&matvec, lambda, cg_iterations, &g);
  StoreCoreValues(g, core, core_list);
}

}  // namespace ptucker
