#include "core/orthogonalize.h"

#include "linalg/qr.h"
#include "tensor/nmode.h"
#include "util/logging.h"

namespace ptucker {

void OrthogonalizeFactors(std::vector<Matrix>* factors, DenseTensor* core) {
  PTUCKER_CHECK(factors != nullptr && core != nullptr);
  PTUCKER_CHECK(static_cast<std::int64_t>(factors->size()) == core->order());
  for (std::int64_t mode = 0; mode < core->order(); ++mode) {
    Matrix& factor = (*factors)[static_cast<std::size_t>(mode)];
    PTUCKER_CHECK(factor.rows() >= factor.cols());
    QrResult qr = HouseholderQr(factor);
    factor = std::move(qr.q);
    // G ← G ×n R: R maps the old mode-n coordinates to the new ones.
    *core = ModeProduct(*core, qr.r, mode);
  }
}

}  // namespace ptucker
