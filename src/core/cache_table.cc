#include "core/cache_table.h"

#include "util/logging.h"

namespace ptucker {

CacheTable::CacheTable(const SparseTensor& x, const CoreEntryList& core,
                       const std::vector<FactorView>& factors,
                       MemoryTracker* tracker)
    : num_entries_(x.nnz()), num_core_(core.size()), tracker_(tracker) {
  charged_bytes_ =
      static_cast<std::int64_t>(sizeof(double)) * num_entries_ * num_core_;
  if (tracker_ != nullptr) tracker_->Charge(charged_bytes_);
  table_.resize(static_cast<std::size_t>(num_entries_ * num_core_));

  // Section 1 of §III-D: rows of Pres are independent; fill in parallel
  // with static scheduling (uniform |G| work per row).
#pragma omp parallel for schedule(static)
  for (std::int64_t e = 0; e < num_entries_; ++e) {
    const std::int64_t* idx = x.index(e);
    double* row = table_.data() + static_cast<std::size_t>(e * num_core_);
    for (std::int64_t b = 0; b < num_core_; ++b) {
      row[b] = RecomputeProduct(core, factors, idx, b);
    }
  }
}

CacheTable::~CacheTable() {
  if (tracker_ != nullptr) tracker_->Release(charged_bytes_);
}

double CacheTable::RecomputeProduct(const CoreEntryList& core,
                                    const std::vector<FactorView>& factors,
                                    const std::int64_t* entry_index,
                                    std::int64_t b) const {
  const std::int64_t order = core.order();
  const std::int32_t* beta = core.index(b);
  double product = core.value(b);
  for (std::int64_t k = 0; k < order; ++k) {
    product *= factors[static_cast<std::size_t>(k)](entry_index[k], beta[k]);
  }
  return product;
}

void CacheTable::ComputeDeltaCached(const CoreEntryList& core,
                                    const std::vector<FactorView>& factors,
                                    std::int64_t entry,
                                    const std::int64_t* entry_index,
                                    std::int64_t mode, double* delta) const {
  const std::int64_t order = core.order();
  const FactorView& a_n = factors[static_cast<std::size_t>(mode)];
  const std::int64_t rank = a_n.cols();
  for (std::int64_t j = 0; j < rank; ++j) delta[j] = 0.0;

  const double* row = Row(entry);
  for (std::int64_t b = 0; b < num_core_; ++b) {
    const std::int32_t* beta = core.index(b);
    const double coefficient = a_n(entry_index[mode], beta[mode]);
    double contribution;
    if (coefficient != 0.0) {
      contribution = row[b] / coefficient;  // O(1) path (line 12)
    } else {
      // Zero coefficient: recompute the N-1 term product directly
      // (the paper's fallback to line 10).
      contribution = core.value(b);
      for (std::int64_t k = 0; k < order; ++k) {
        if (k == mode) continue;
        contribution *=
            factors[static_cast<std::size_t>(k)](entry_index[k], beta[k]);
      }
    }
    delta[beta[mode]] += contribution;
  }
}

void CacheTable::UpdateAfterMode(const SparseTensor& x,
                                 const CoreEntryList& core,
                                 const std::vector<FactorView>& factors,
                                 std::int64_t mode, const Matrix& old_factor) {
  const FactorView& new_factor = factors[static_cast<std::size_t>(mode)];
#pragma omp parallel for schedule(static)
  for (std::int64_t e = 0; e < num_entries_; ++e) {
    const std::int64_t* idx = x.index(e);
    double* row = table_.data() + static_cast<std::size_t>(e * num_core_);
    for (std::int64_t b = 0; b < num_core_; ++b) {
      const std::int32_t* beta = core.index(b);
      const double old_coefficient = old_factor(idx[mode], beta[mode]);
      if (old_coefficient != 0.0) {
        row[b] *= new_factor(idx[mode], beta[mode]) / old_coefficient;
      } else {
        row[b] = RecomputeProduct(core, factors, idx, b);
      }
    }
  }
}

}  // namespace ptucker
