#include "serve/snapshot.h"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "serve/snapshot_v2.h"
#include "tensor/dense_tensor.h"

namespace ptucker {

namespace {

// File layout (all integers little-endian on the platforms we target;
// the same raw-memory convention as the PTNB tensor format in
// tensor/io.cc):
//
//   [0,4)   magic "PTKS"
//   [4,8)   u32 format version (kSnapshotVersion)
//   [8,12)  u32 CRC-32 (IEEE) of the body
//   [12,20) u64 body byte count
//   [20,..) body:
//     i64 order N
//     i64 dims[N]        factor row counts I_n
//     i64 ranks[N]       core dimensionalities J_n
//     i64 core_nnz
//     f64 factors        row-major, mode 0 first (Σ I_n·J_n doubles)
//     i32 core_indices   core_nnz × N, entry-major
//     f64 core_values    core_nnz
constexpr char kMagic[4] = {'P', 'T', 'K', 'S'};
constexpr std::size_t kHeaderBytes = 20;
constexpr std::int64_t kMaxSnapshotOrder = 64;
// Ceiling on dense core elements a snapshot may declare (16 GiB of
// doubles) — far beyond any servable core, but it stops a crafted
// header from requesting an absurd zero-filled allocation.
constexpr std::int64_t kMaxCoreElements = std::int64_t{1} << 31;

// Name of the in-memory source shown when no file path is known.
constexpr char kMemorySource[] = "<memory>";

// Every rejection names its source (the file path, when known) and the
// section being parsed, so a serve_smoke failure in CI pinpoints the
// broken checkpoint without a reproduction.
[[noreturn]] void ThrowFormat(const std::string& source,
                              const std::string& section,
                              const std::string& detail) {
  throw std::runtime_error("snapshot parse error: " + detail + " (file " +
                           source + ", section " + section + ")");
}

void AppendRaw(std::string* out, const void* data, std::size_t bytes) {
  out->append(reinterpret_cast<const char*>(data), bytes);
}

void AppendI64(std::string* out, std::int64_t value) {
  AppendRaw(out, &value, sizeof(value));
}

// Bounds-checked sequential reader over the body bytes; truncation
// errors name the section the cursor is in.
class Reader {
 public:
  Reader(const char* data, std::size_t size, const std::string& source)
      : data_(data), size_(size), source_(&source) {}

  void SetSection(const char* section) { section_ = section; }

  void Read(void* out, std::size_t bytes) {
    if (bytes > size_ - pos_) {
      ThrowFormat(*source_, section_, "body truncated");
    }
    std::memcpy(out, data_ + pos_, bytes);
    pos_ += bytes;
  }

  std::int64_t ReadI64() {
    std::int64_t value = 0;
    Read(&value, sizeof(value));
    return value;
  }

  std::size_t remaining() const { return size_ - pos_; }

 private:
  const char* data_;
  std::size_t size_;
  const std::string* source_;
  const char* section_ = "header";
  std::size_t pos_ = 0;
};

}  // namespace

std::string SerializeSnapshot(const TuckerFactorization& model) {
  const std::int64_t order = model.core.order();
  if (order < 1 || order > kMaxSnapshotOrder) {
    throw std::runtime_error("snapshot: model order must be in [1, 64]");
  }
  if (static_cast<std::int64_t>(model.factors.size()) != order) {
    throw std::runtime_error(
        "snapshot: factor count does not match core order");
  }
  for (std::int64_t n = 0; n < order; ++n) {
    const Matrix& factor = model.factors[static_cast<std::size_t>(n)];
    if (factor.rows() < 1 || factor.cols() != model.core.dim(n)) {
      throw std::runtime_error(
          "snapshot: factor " + std::to_string(n) +
          " shape does not match the core (" + std::to_string(factor.rows()) +
          "x" + std::to_string(factor.cols()) + " vs rank " +
          std::to_string(model.core.dim(n)) + ")");
    }
  }

  std::string body;
  AppendI64(&body, order);
  for (std::int64_t n = 0; n < order; ++n) {
    AppendI64(&body, model.factors[static_cast<std::size_t>(n)].rows());
  }
  for (std::int64_t n = 0; n < order; ++n) {
    AppendI64(&body, model.core.dim(n));
  }
  AppendI64(&body, model.core.CountNonZeros());
  for (const Matrix& factor : model.factors) {
    AppendRaw(&body, factor.data(),
              static_cast<std::size_t>(factor.size()) * sizeof(double));
  }
  // VeST-compact core: COO nonzeros only, in linear (mode-0-fastest)
  // order so serialization is deterministic.
  std::vector<std::int64_t> index(static_cast<std::size_t>(order));
  std::vector<double> values;
  for (std::int64_t linear = 0; linear < model.core.size(); ++linear) {
    if (model.core[linear] == 0.0) continue;
    model.core.IndexOf(linear, index.data());
    for (std::int64_t k = 0; k < order; ++k) {
      const std::int32_t coord =
          static_cast<std::int32_t>(index[static_cast<std::size_t>(k)]);
      AppendRaw(&body, &coord, sizeof(coord));
    }
    values.push_back(model.core[linear]);
  }
  AppendRaw(&body, values.data(), values.size() * sizeof(double));

  std::string out;
  out.reserve(kHeaderBytes + body.size());
  out.append(kMagic, sizeof(kMagic));
  const std::uint32_t version = kSnapshotVersion;
  AppendRaw(&out, &version, sizeof(version));
  const std::uint32_t crc = SnapshotCrc32(body.data(), body.size());
  AppendRaw(&out, &crc, sizeof(crc));
  const std::uint64_t body_bytes = body.size();
  AppendRaw(&out, &body_bytes, sizeof(body_bytes));
  out += body;
  return out;
}

TuckerFactorization ParseSnapshot(const std::string& bytes) {
  return ParseSnapshot(bytes, kMemorySource);
}

TuckerFactorization ParseSnapshot(const std::string& bytes,
                                  const std::string& source) {
  if (bytes.size() < kHeaderBytes) {
    ThrowFormat(source, "header", "file shorter than the header");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    ThrowFormat(source, "header", "bad magic (not a PTKS snapshot)");
  }
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 4, sizeof(version));
  if (version != kSnapshotVersion) {
    ThrowFormat(source, "header",
                "unsupported snapshot version " + std::to_string(version) +
                    " (this parser reads version " +
                    std::to_string(kSnapshotVersion) + ")");
  }
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + 8, sizeof(stored_crc));
  std::uint64_t body_bytes = 0;
  std::memcpy(&body_bytes, bytes.data() + 12, sizeof(body_bytes));
  if (body_bytes != bytes.size() - kHeaderBytes) {
    ThrowFormat(source, "header",
                body_bytes > bytes.size() - kHeaderBytes
                    ? "body truncated"
                    : "trailing bytes after the body");
  }
  const char* body = bytes.data() + kHeaderBytes;
  const std::uint32_t computed_crc =
      SnapshotCrc32(body, static_cast<std::size_t>(body_bytes));
  if (computed_crc != stored_crc) {
    ThrowFormat(source, "body", "CRC mismatch (file is corrupt)");
  }

  Reader reader(body, static_cast<std::size_t>(body_bytes), source);
  reader.SetSection("dims");
  const std::int64_t order = reader.ReadI64();
  if (order < 1 || order > kMaxSnapshotOrder) {
    ThrowFormat(source, "dims",
                "order " + std::to_string(order) + " out of range");
  }
  std::vector<std::int64_t> dims(static_cast<std::size_t>(order));
  for (auto& d : dims) {
    d = reader.ReadI64();
    if (d < 1) {
      ThrowFormat(source, "dims", "non-positive mode dimensionality");
    }
  }
  reader.SetSection("ranks");
  std::vector<std::int64_t> ranks(static_cast<std::size_t>(order));
  std::int64_t core_size = 1;
  for (auto& r : ranks) {
    r = reader.ReadI64();
    if (r < 1) ThrowFormat(source, "ranks", "non-positive core rank");
    if (core_size > kMaxCoreElements / r) {
      ThrowFormat(source, "ranks", "core too large");
    }
    core_size *= r;
  }
  reader.SetSection("core header");
  const std::int64_t core_nnz = reader.ReadI64();
  if (core_nnz < 0 || core_nnz > core_size) {
    ThrowFormat(source, "core header",
                "core nnz " + std::to_string(core_nnz) + " out of range");
  }
  // Every remaining allocation is sized by untrusted header fields; cap
  // each one by the bytes actually left in the body *before* allocating,
  // so a tiny crafted file (the CRC is computable by anyone) fails with
  // "body truncated" instead of zero-filling terabytes or overflowing
  // rows*cols. ranks are bounded by kMaxCoreElements above, so
  // cols*sizeof(double) cannot overflow; dims are only bounded here.
  if (static_cast<std::uint64_t>(core_nnz) >
      reader.remaining() / (static_cast<std::uint64_t>(order) *
                                sizeof(std::int32_t) +
                            sizeof(double))) {
    ThrowFormat(source, "core header", "body truncated");
  }

  TuckerFactorization model;
  model.factors.reserve(static_cast<std::size_t>(order));
  for (std::int64_t n = 0; n < order; ++n) {
    const std::int64_t rows = dims[static_cast<std::size_t>(n)];
    const std::int64_t cols = ranks[static_cast<std::size_t>(n)];
    const std::string section = "factor " + std::to_string(n);
    reader.SetSection(section.c_str());
    if (static_cast<std::uint64_t>(rows) >
        reader.remaining() /
            (static_cast<std::uint64_t>(cols) * sizeof(double))) {
      ThrowFormat(source, section, "body truncated");
    }
    Matrix factor(rows, cols);
    reader.Read(factor.data(),
                static_cast<std::size_t>(factor.size()) * sizeof(double));
    model.factors.push_back(std::move(factor));
  }
  model.core = DenseTensor(ranks);
  reader.SetSection("core indices");
  std::vector<std::int64_t> index(static_cast<std::size_t>(order));
  std::vector<std::int64_t> linear_positions(
      static_cast<std::size_t>(core_nnz));
  for (std::int64_t e = 0; e < core_nnz; ++e) {
    for (std::int64_t k = 0; k < order; ++k) {
      std::int32_t coord = 0;
      reader.Read(&coord, sizeof(coord));
      if (coord < 0 || coord >= ranks[static_cast<std::size_t>(k)]) {
        ThrowFormat(source, "core indices",
                    "core index out of bounds in entry " + std::to_string(e));
      }
      index[static_cast<std::size_t>(k)] = coord;
    }
    linear_positions[static_cast<std::size_t>(e)] =
        Linearize(index.data(), model.core.strides(), order);
  }
  reader.SetSection("core values");
  for (std::int64_t e = 0; e < core_nnz; ++e) {
    double value = 0.0;
    reader.Read(&value, sizeof(value));
    model.core[linear_positions[static_cast<std::size_t>(e)]] = value;
  }
  if (reader.remaining() != 0) {
    ThrowFormat(source, "core values", "trailing bytes inside the body");
  }
  return model;
}

void SaveSnapshot(const std::string& path, const TuckerFactorization& model) {
  const std::string bytes = SerializeSnapshot(model);
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("snapshot: cannot open file for write: " + path);
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("snapshot: write failed: " + path);
}

TuckerFactorization LoadSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("snapshot: cannot open file: " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) throw std::runtime_error("snapshot: read failed: " + path);
  // Version dispatch: v2 files are opened through the zero-copy loader
  // and materialized into an owning model (the warm-start bridge).
  if (bytes.size() >= 8 && std::memcmp(bytes.data(), kMagic, 4) == 0) {
    std::uint32_t version = 0;
    std::memcpy(&version, bytes.data() + 4, sizeof(version));
    if (version == kSnapshotVersion2) {
      return MaterializeModel(*MmapSnapshot::Open(path));
    }
  }
  return ParseSnapshot(bytes, path);
}

std::uint32_t SnapshotCrc32(const char* data, std::size_t size) {
  // CRC-32 (IEEE 802.3, reflected 0xEDB88320) — the corruption check
  // that turns a flipped bit into a clean load error instead of a
  // silently wrong model.
  static const auto table = [] {
    std::vector<std::uint32_t> t(256);
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ static_cast<unsigned char>(data[i])) & 0xFFu] ^
          (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace ptucker
