/// \file
/// \brief The serving front end's metric handles, resolved once against
/// a MetricsRegistry and cached (the registry lookup takes a mutex; the
/// handles are the lock-free hot path). The bundle also encodes the
/// "telemetry off" mode bench_observability measures against: built
/// over a null registry every handle is null and every recording site
/// is one pointer test. See docs/observability.md for the metric
/// catalog.
#ifndef PTUCKER_SERVE_NET_NET_METRICS_H_
#define PTUCKER_SERVE_NET_NET_METRICS_H_

#include "obs/metrics.h"

namespace ptucker {

/// Cached handles for every serve/net metric. Copyable; null handles
/// (from a null registry) disable recording at that site.
struct ServeNetMetrics {
  /// Resolves (creating on first use) the serve metrics in `registry`;
  /// a null `registry` leaves every handle null — telemetry off.
  explicit ServeNetMetrics(obs::MetricsRegistry* registry);

  /// The bundle over the process-wide registry (obs::GlobalMetrics()),
  /// resolved once.
  static const ServeNetMetrics& Global();

  /// The registry the handles live in (null = telemetry off) — the
  /// METRICS opcode serves its ExpositionText().
  obs::MetricsRegistry* registry = nullptr;

  obs::Counter* requests_total = nullptr;   ///< frames dispatched, by loop
  obs::Counter* parked_total = nullptr;     ///< requests parked on a full queue
  obs::Counter* shed_total = nullptr;       ///< parked requests shed OVERLOADED
  obs::Gauge* queue_depth = nullptr;        ///< coalescer queue occupancy
  obs::Histogram* predict_latency = nullptr;  ///< enqueue→reply, seconds
  obs::Histogram* topk_latency = nullptr;     ///< enqueue→reply, seconds
  obs::Histogram* batch_size = nullptr;       ///< executed batch widths
};

}  // namespace ptucker

#endif  // PTUCKER_SERVE_NET_NET_METRICS_H_
