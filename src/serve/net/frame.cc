#include "serve/net/frame.h"

#include <cstring>

namespace ptucker {

void AppendU32(std::vector<std::uint8_t>* out, std::uint32_t value) {
  out->push_back(static_cast<std::uint8_t>(value & 0xFF));
  out->push_back(static_cast<std::uint8_t>((value >> 8) & 0xFF));
  out->push_back(static_cast<std::uint8_t>((value >> 16) & 0xFF));
  out->push_back(static_cast<std::uint8_t>((value >> 24) & 0xFF));
}

void AppendU64(std::vector<std::uint8_t>* out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<std::uint8_t>((value >> shift) & 0xFF));
  }
}

void AppendI64(std::vector<std::uint8_t>* out, std::int64_t value) {
  AppendU64(out, static_cast<std::uint64_t>(value));
}

void AppendF64(std::vector<std::uint8_t>* out, double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value), "IEEE-754 f64 expected");
  std::memcpy(&bits, &value, sizeof(bits));
  AppendU64(out, bits);
}

std::uint32_t ReadU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t ReadU64(const std::uint8_t* p) {
  std::uint64_t value = 0;
  for (int b = 7; b >= 0; --b) {
    value = (value << 8) | static_cast<std::uint64_t>(p[b]);
  }
  return value;
}

std::int64_t ReadI64(const std::uint8_t* p) {
  return static_cast<std::int64_t>(ReadU64(p));
}

double ReadF64(const std::uint8_t* p) {
  const std::uint64_t bits = ReadU64(p);
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

DecodeResult DecodeFrameHeader(const FrameProtocol& protocol,
                               const std::uint8_t* data, std::size_t size,
                               RawFrame* frame, std::size_t* consumed,
                               std::string* error) {
  // Magic is checked byte-by-byte as bytes arrive, so a garbage stream
  // dies on its first wrong byte instead of buffering a header's worth.
  static const char* kHex = "0123456789abcdef";
  for (std::size_t b = 0; b < size && b < 4; ++b) {
    if (data[b] != protocol.magic[b]) {
      *error = "bad magic byte at offset " + std::to_string(b) + " (0x";
      *error += kHex[data[b] >> 4];
      *error += kHex[data[b] & 0xF];
      *error += std::string("); not a ") + protocol.name + " stream";
      return DecodeResult::kError;
    }
  }
  if (size < kFrameHeaderSize) return DecodeResult::kNeedMore;
  if (data[6] != 0 || data[7] != 0) {
    *error = "reserved header bytes 6-7 must be zero";
    return DecodeResult::kError;
  }
  if (!protocol.known_opcode(data[4])) {
    *error = "unknown opcode " + std::to_string(static_cast<unsigned>(data[4]));
    return DecodeResult::kError;
  }
  const std::uint32_t payload_size = ReadU32(data + 16);
  if (payload_size > protocol.max_payload) {
    *error = "payload length " + std::to_string(payload_size) +
             " exceeds the " + std::to_string(protocol.max_payload) +
             "-byte cap";
    return DecodeResult::kError;
  }
  if (size < kFrameHeaderSize + payload_size) return DecodeResult::kNeedMore;
  frame->opcode = data[4];
  frame->status = data[5];
  frame->request_id = ReadU64(data + 8);
  frame->payload.assign(data + kFrameHeaderSize,
                        data + kFrameHeaderSize + payload_size);
  *consumed = kFrameHeaderSize + payload_size;
  return DecodeResult::kFrame;
}

void EncodeFrameHeader(const FrameProtocol& protocol, std::uint8_t opcode,
                       std::uint8_t status, std::uint64_t request_id,
                       const std::uint8_t* payload, std::size_t payload_size,
                       std::vector<std::uint8_t>* out) {
  out->reserve(out->size() + kFrameHeaderSize + payload_size);
  out->insert(out->end(), protocol.magic, protocol.magic + 4);
  out->push_back(opcode);
  out->push_back(status);
  out->push_back(0);
  out->push_back(0);
  AppendU64(out, request_id);
  AppendU32(out, static_cast<std::uint32_t>(payload_size));
  out->insert(out->end(), payload, payload + payload_size);
}

}  // namespace ptucker
