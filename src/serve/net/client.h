/// \file
/// \brief NetClient: a deliberately tiny blocking TCP client for the
/// PTKN wire protocol — the counterpart the smoke/reload tests and the
/// bench_serving_net load generator drive the server with. One socket,
/// sequential request/reply, no internal threading: each typed call
/// sends one frame and blocks until its reply decodes. SendBytes lets
/// robustness tests ship deliberately hostile bytes down the same
/// socket.
#ifndef PTUCKER_SERVE_NET_CLIENT_H_
#define PTUCKER_SERVE_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/net/wire.h"
#include "serve/service.h"

namespace ptucker {

/// Blocking loopback/LAN client. Methods throw std::runtime_error on
/// socket failure, a closed connection, or an error reply (the server's
/// message is included verbatim).
class NetClient {
 public:
  /// Connects to `host`:`port` (dotted-quad IPv4, e.g. "127.0.0.1").
  NetClient(const std::string& host, int port);
  ~NetClient();

  /// x̂ at `coords` (0-based, one per mode).
  double Predict(const std::vector<std::int64_t>& coords);

  /// Top-`k` along `mode`; `coords`' scanned slot is a placeholder.
  std::vector<ScoredIndex> TopK(std::int64_t mode, std::int64_t k,
                                const std::vector<std::int64_t>& coords);

  /// Liveness round trip; throws if the reply id or opcode mismatches.
  void Ping();

  /// The server's counter vector (see ServerStats::ToVector order).
  std::vector<std::uint64_t> Stats();

  /// The server's self-describing telemetry: Prometheus-style
  /// exposition text from the METRICS opcode (docs/observability.md).
  std::string Metrics();

  /// Ships raw bytes as-is (hostile-input tests).
  void SendBytes(const std::uint8_t* data, std::size_t size);

  /// Blocks for the next frame. Returns false on orderly server close;
  /// throws on socket errors or an undecodable byte stream.
  bool ReceiveFrame(WireFrame* frame);

  /// Closes the socket early (destructor otherwise).
  void Close();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

 private:
  /// Sends `request`, receives one frame, and checks it echoes
  /// `request_id`. Throws on error replies and protocol violations.
  WireFrame RoundTrip(const std::vector<std::uint8_t>& request,
                      std::uint64_t request_id);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  std::vector<std::uint8_t> buffer_;  ///< received, not yet decoded
};

}  // namespace ptucker

#endif  // PTUCKER_SERVE_NET_CLIENT_H_
