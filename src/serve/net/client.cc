#include "serve/net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace ptucker {

namespace {

[[noreturn]] void ThrowErrno(const std::string& what) {
  throw std::runtime_error("net-client: " + what + ": " +
                           std::strerror(errno));
}

}  // namespace

NetClient::NetClient(const std::string& host, int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) ThrowErrno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("net-client: bad IPv4 address '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    ThrowErrno("connect to " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

NetClient::~NetClient() { Close(); }

void NetClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void NetClient::SendBytes(const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    ThrowErrno("send");
  }
}

bool NetClient::ReceiveFrame(WireFrame* frame) {
  while (true) {
    std::size_t consumed = 0;
    std::string error;
    const DecodeResult result = DecodeFrame(
        buffer_.data(), buffer_.size(), frame, &consumed, &error);
    if (result == DecodeResult::kFrame) {
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<std::ptrdiff_t>(consumed));
      return true;
    }
    if (result == DecodeResult::kError) {
      throw std::runtime_error("net-client: undecodable reply stream: " +
                               error);
    }
    std::uint8_t chunk[65536];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.insert(buffer_.end(), chunk, chunk + n);
      continue;
    }
    if (n == 0) return false;  // orderly server close
    if (errno == EINTR) continue;
    ThrowErrno("recv");
  }
}

WireFrame NetClient::RoundTrip(const std::vector<std::uint8_t>& request,
                               std::uint64_t request_id) {
  SendBytes(request.data(), request.size());
  WireFrame frame;
  if (!ReceiveFrame(&frame)) {
    throw std::runtime_error(
        "net-client: server closed the connection mid-request");
  }
  if (frame.request_id != request_id) {
    throw std::runtime_error("net-client: reply id " +
                             std::to_string(frame.request_id) +
                             " does not echo request id " +
                             std::to_string(request_id));
  }
  return frame;
}

double NetClient::Predict(const std::vector<std::int64_t>& coords) {
  const std::uint64_t id = next_id_++;
  const WireFrame frame = RoundTrip(EncodePredictRequest(id, coords), id);
  double value = 0.0;
  std::string error;
  if (!ParsePredictReply(frame, &value, &error)) {
    throw std::runtime_error("net-client: " + error);
  }
  return value;
}

std::vector<ScoredIndex> NetClient::TopK(
    std::int64_t mode, std::int64_t k,
    const std::vector<std::int64_t>& coords) {
  const std::uint64_t id = next_id_++;
  const WireFrame frame =
      RoundTrip(EncodeTopKRequest(id, mode, k, coords), id);
  std::vector<ScoredIndex> results;
  std::string error;
  if (!ParseTopKReply(frame, &results, &error)) {
    throw std::runtime_error("net-client: " + error);
  }
  return results;
}

void NetClient::Ping() {
  const std::uint64_t id = next_id_++;
  const WireFrame frame =
      RoundTrip(EncodeEmptyFrame(Opcode::kPing, id), id);
  if (frame.opcode != Opcode::kPing || frame.status != WireStatus::kOk) {
    throw std::runtime_error("net-client: malformed ping reply");
  }
}

std::vector<std::uint64_t> NetClient::Stats() {
  const std::uint64_t id = next_id_++;
  const WireFrame frame =
      RoundTrip(EncodeEmptyFrame(Opcode::kStats, id), id);
  std::vector<std::uint64_t> counters;
  std::string error;
  if (!ParseStatsReply(frame, &counters, &error)) {
    throw std::runtime_error("net-client: " + error);
  }
  return counters;
}

std::string NetClient::Metrics() {
  const std::uint64_t id = next_id_++;
  const WireFrame frame =
      RoundTrip(EncodeEmptyFrame(Opcode::kMetrics, id), id);
  std::string text;
  std::string error;
  if (!ParseMetricsReply(frame, &text, &error)) {
    throw std::runtime_error("net-client: " + error);
  }
  return text;
}

}  // namespace ptucker
