#include "serve/net/event_loop.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include "obs/trace.h"

namespace ptucker {

namespace {

[[noreturn]] void ThrowErrno(const std::string& what) {
  throw std::runtime_error("serve-net: " + what + ": " +
                           std::strerror(errno));
}

void AddToEpoll(int epoll_fd, int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ThrowErrno("epoll_ctl(ADD)");
  }
}

}  // namespace

int CreateListenSocket(int* port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
  if (fd < 0) ThrowErrno("socket");
  const int one = 1;
  // SO_REUSEPORT is the loop-sharding mechanism: every loop thread binds
  // its own listener to the same port and the kernel spreads incoming
  // connections across them — no shared accept lock, no handoff.
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0 ||
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
    ::close(fd);
    ThrowErrno("setsockopt(SO_REUSEADDR|SO_REUSEPORT)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<std::uint16_t>(*port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    ThrowErrno("bind to port " + std::to_string(*port));
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    ThrowErrno("listen");
  }
  if (*port == 0) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      ::close(fd);
      ThrowErrno("getsockname");
    }
    *port = ntohs(bound.sin_port);
  }
  return fd;
}

EventLoop::EventLoop(int listen_fd, BatchCoalescer* coalescer,
                     ServerStats* stats, std::uint64_t id_base,
                     const Options& options, const ServeNetMetrics* metrics)
    : listen_fd_(listen_fd),
      coalescer_(coalescer),
      stats_(stats),
      options_(options),
      metrics_(metrics != nullptr ? *metrics : ServeNetMetrics::Global()),
      next_id_(id_base + 1) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    ::close(listen_fd_);
    ThrowErrno("epoll_create1");
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    ::close(listen_fd_);
    ThrowErrno("eventfd");
  }
  AddToEpoll(epoll_fd_, listen_fd_, EPOLLIN);
  AddToEpoll(epoll_fd_, wake_fd_, EPOLLIN);
}

EventLoop::~EventLoop() {
  // Run() closes the connections and the listener on exit; the epoll and
  // wake fds stay open until here so a late PostReply from a draining
  // worker can never write into a recycled descriptor.
  for (auto& entry : conns_) ::close(entry.second->fd);
  if (!listen_closed_) ::close(listen_fd_);
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  Wake();
}

void EventLoop::Wake() {
  const std::uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::PostReply(std::uint64_t connection_id,
                          std::vector<std::uint8_t> frame) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.emplace_back(connection_id, std::move(frame));
  }
  Wake();
}

void EventLoop::NotifyQueueSpace() {
  queue_space_.store(true, std::memory_order_release);
  Wake();
}

void EventLoop::Run() {
  epoll_event events[64];
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, WaitTimeoutMs());
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    // A parked request whose overload deadline passed while we waited
    // (n may be 0 — the timeout itself — or > 0) is shed now, before the
    // event batch, so a flood of traffic cannot starve the deadline.
    ShedExpiredParked();
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t ev = events[i].events;
      if (fd == listen_fd_) {
        AcceptNewConnections();
        continue;
      }
      if (fd == wake_fd_) {
        std::uint64_t ticks = 0;
        while (::read(wake_fd_, &ticks, sizeof(ticks)) > 0) {
        }
        DrainPostedReplies();
        if (queue_space_.exchange(false, std::memory_order_acq_rel)) {
          ResumeStalledReads();
        }
        continue;
      }
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // closed earlier in this batch
      Connection* conn = it->second.get();
      if ((ev & (EPOLLERR | EPOLLHUP)) != 0) {
        CloseConnection(conn);
        continue;
      }
      if ((ev & EPOLLIN) != 0) {
        HandleReadable(conn);
        if (conns_.find(fd) == conns_.end()) continue;
      }
      if ((ev & EPOLLOUT) != 0) HandleWritable(conn);
    }
    // Descriptors are recycled only after the whole event batch is
    // dispatched, so a stale event can never hit a freshly accepted
    // connection that reused the number.
    for (const int dead : deferred_close_) ::close(dead);
    deferred_close_.clear();
  }
  // Shutdown: tear down every connection and stop accepting.
  for (auto& entry : conns_) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, entry.first, nullptr);
    ::close(entry.second->fd);
  }
  conns_.clear();
  by_id_.clear();
  open_connections_.store(0, std::memory_order_relaxed);
  for (const int dead : deferred_close_) ::close(dead);
  deferred_close_.clear();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
  ::close(listen_fd_);
  listen_closed_ = true;
}

void EventLoop::AcceptNewConnections() {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN: drained; anything else: retry on the next event
    }
    // Batching happens in the coalescer, not in the kernel: replies go
    // out the moment they are flushed.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_id_++;
    conn->interest = EPOLLIN;
    AddToEpoll(epoll_fd_, fd, EPOLLIN);
    by_id_[conn->id] = conn.get();
    conns_[fd] = std::move(conn);
    stats_->connections_accepted.fetch_add(1, std::memory_order_relaxed);
    open_connections_.fetch_add(1, std::memory_order_relaxed);
  }
}

void EventLoop::HandleReadable(Connection* conn) {
  if (conn->reads_paused || conn->closing) return;
  std::uint8_t buf[65536];
  while (true) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      if (conn->inbuf.size() + static_cast<std::size_t>(n) >
          options_.max_inbuf) {
        FailConnection(conn, Opcode::kPing, 0,
                       "read buffer cap exceeded without a complete frame");
        break;
      }
      conn->inbuf.insert(conn->inbuf.end(), buf, buf + n);
      continue;
    }
    if (n == 0) {
      CloseConnection(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(conn);
    return;
  }
  ParseInput(conn);
}

void EventLoop::ParseInput(Connection* conn) {
  std::size_t pos = 0;
  while (!conn->closing) {
    if (conn->has_deferred) {
      if (!coalescer_->TryPush(std::move(conn->deferred))) {
        conn->reads_paused = true;
        break;
      }
      conn->has_deferred = false;
    }
    WireFrame frame;
    std::size_t consumed = 0;
    std::string error;
    const DecodeResult result =
        DecodeFrame(conn->inbuf.data() + pos, conn->inbuf.size() - pos,
                    &frame, &consumed, &error);
    if (result == DecodeResult::kNeedMore) break;
    if (result == DecodeResult::kError) {
      // Byte sync is gone — one specific final error, then close. The
      // request id field cannot be trusted, so the reply carries id 0.
      FailConnection(conn, Opcode::kPing, 0, error);
      break;
    }
    pos += consumed;
    if (!HandleFrame(conn, std::move(frame))) break;  // backpressure stall
  }
  if (pos > 0) {
    conn->inbuf.erase(conn->inbuf.begin(),
                      conn->inbuf.begin() + static_cast<std::ptrdiff_t>(pos));
  }
  UpdateInterest(conn);
}

bool EventLoop::HandleFrame(Connection* conn, WireFrame&& frame) {
  stats_->requests_received.fetch_add(1, std::memory_order_relaxed);
  if (metrics_.requests_total != nullptr) metrics_.requests_total->Increment();
  if (frame.status != WireStatus::kOk) {
    FailConnection(conn, frame.opcode, frame.request_id,
                   "request status byte must be zero");
    return true;  // closing is set; the parse loop exits on it
  }
  switch (frame.opcode) {
    case Opcode::kPing:
      // Control frames are answered on the loop thread — a liveness
      // probe must not queue behind a batch window.
      stats_->pings_served.fetch_add(1, std::memory_order_relaxed);
      QueueReply(conn, EncodeEmptyFrame(Opcode::kPing, frame.request_id));
      return true;
    case Opcode::kStats:
      QueueReply(conn,
                 EncodeStatsReply(frame.request_id, stats_->ToVector()));
      return true;
    case Opcode::kMetrics:
      // Self-describing telemetry, answered inline like STATS. A null
      // registry (telemetry off) serves empty exposition text — still a
      // valid reply, so clients need no special case.
      QueueReply(conn,
                 EncodeMetricsReply(frame.request_id,
                                    metrics_.registry != nullptr
                                        ? metrics_.registry->ExpositionText()
                                        : std::string()));
      return true;
    case Opcode::kPredict: {
      PredictRequest request;
      std::string error;
      if (!ParsePredictRequest(frame.payload, &request, &error)) {
        stats_->errors_sent.fetch_add(1, std::memory_order_relaxed);
        QueueReply(conn,
                   EncodeErrorReply(Opcode::kPredict, frame.request_id,
                                    WireStatus::kBadRequest, error));
        return true;
      }
      NetRequest net;
      net.sink = this;
      net.connection_id = conn->id;
      net.request_id = frame.request_id;
      net.opcode = Opcode::kPredict;
      net.coords = std::move(request.coords);
      net.enqueue_us = obs::Tracer::NowMicros();
      return PushOrDefer(conn, std::move(net));
    }
    case Opcode::kTopK: {
      TopKRequest request;
      std::string error;
      if (!ParseTopKRequest(frame.payload, &request, &error)) {
        stats_->errors_sent.fetch_add(1, std::memory_order_relaxed);
        QueueReply(conn, EncodeErrorReply(Opcode::kTopK, frame.request_id,
                                          WireStatus::kBadRequest, error));
        return true;
      }
      NetRequest net;
      net.sink = this;
      net.connection_id = conn->id;
      net.request_id = frame.request_id;
      net.opcode = Opcode::kTopK;
      net.mode = request.mode;
      net.k = request.k;
      net.coords = std::move(request.coords);
      net.enqueue_us = obs::Tracer::NowMicros();
      return PushOrDefer(conn, std::move(net));
    }
  }
  return true;  // unreachable: DecodeFrame rejects unknown opcodes
}

bool EventLoop::PushOrDefer(Connection* conn, NetRequest&& request) {
  if (coalescer_->TryPush(std::move(request))) return true;
  if (metrics_.parked_total != nullptr) metrics_.parked_total->Increment();
  // Queue full: park the decoded request on its connection and stop
  // reading that socket — TCP flow control now pushes back on the
  // client. NotifyQueueSpace retries when a worker drains the queue;
  // with an overload deadline armed, ShedExpiredParked answers
  // kOverloaded instead once the deadline passes (immediately at 0).
  conn->deferred = std::move(request);
  conn->has_deferred = true;
  if (options_.overload_timeout_ms == 0) {
    ShedDeferred(conn);
    return true;  // parsing may continue; later frames shed the same way
  }
  conn->reads_paused = true;
  conn->parked_at = std::chrono::steady_clock::now();
  return false;
}

void EventLoop::ShedDeferred(Connection* conn) {
  stats_->overloads_shed.fetch_add(1, std::memory_order_relaxed);
  stats_->errors_sent.fetch_add(1, std::memory_order_relaxed);
  if (metrics_.shed_total != nullptr) metrics_.shed_total->Increment();
  QueueReply(conn,
             EncodeErrorReply(conn->deferred.opcode, conn->deferred.request_id,
                              WireStatus::kOverloaded,
                              "server overloaded: request queue full past "
                              "the shed deadline"));
  conn->deferred = NetRequest();
  conn->has_deferred = false;
}

void EventLoop::ShedExpiredParked() {
  if (options_.overload_timeout_ms <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  const auto deadline = std::chrono::milliseconds(options_.overload_timeout_ms);
  for (auto& entry : conns_) {
    Connection* conn = entry.second.get();
    if (!conn->has_deferred || conn->closing) continue;
    if (now - conn->parked_at < deadline) continue;
    ShedDeferred(conn);
    // Shed clears the park; resume reading unless the reply backlog
    // still holds the connection.
    if (conn->outbuf.size() - conn->out_pos <= options_.max_outbuf) {
      conn->reads_paused = false;
      ParseInput(conn);
    }
  }
}

int EventLoop::WaitTimeoutMs() const {
  if (options_.overload_timeout_ms <= 0) return -1;
  bool any_parked = false;
  auto earliest = std::chrono::steady_clock::time_point::max();
  for (const auto& entry : conns_) {
    const Connection* conn = entry.second.get();
    if (!conn->has_deferred || conn->closing) continue;
    any_parked = true;
    if (conn->parked_at < earliest) earliest = conn->parked_at;
  }
  if (!any_parked) return -1;
  const auto expires =
      earliest + std::chrono::milliseconds(options_.overload_timeout_ms);
  const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
      expires - std::chrono::steady_clock::now());
  // Round up so a wakeup at the boundary actually finds the deadline
  // passed instead of spinning on 0-ms waits.
  return remaining.count() <= 0 ? 0 : static_cast<int>(remaining.count()) + 1;
}

void EventLoop::QueueReply(Connection* conn,
                           const std::vector<std::uint8_t>& frame) {
  if (conn->closing) return;
  conn->outbuf.insert(conn->outbuf.end(), frame.begin(), frame.end());
  // Slow-reader backpressure: a client that does not drain its replies
  // stops being read long before its backlog threatens server memory.
  if (conn->outbuf.size() - conn->out_pos > options_.max_outbuf) {
    conn->reads_paused = true;
  }
  UpdateInterest(conn);
}

void EventLoop::FailConnection(Connection* conn, Opcode opcode,
                               std::uint64_t request_id,
                               const std::string& message) {
  stats_->errors_sent.fetch_add(1, std::memory_order_relaxed);
  const std::vector<std::uint8_t> reply =
      EncodeErrorReply(opcode, request_id, WireStatus::kMalformed, message);
  conn->outbuf.insert(conn->outbuf.end(), reply.begin(), reply.end());
  conn->closing = true;  // flush the error, then HandleWritable closes
  UpdateInterest(conn);
}

void EventLoop::HandleWritable(Connection* conn) {
  while (conn->out_pos < conn->outbuf.size()) {
    const ssize_t n =
        ::write(conn->fd, conn->outbuf.data() + conn->out_pos,
                conn->outbuf.size() - conn->out_pos);
    if (n > 0) {
      conn->out_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(conn);
    return;
  }
  if (conn->out_pos == conn->outbuf.size()) {
    conn->outbuf.clear();
    conn->out_pos = 0;
    if (conn->closing) {
      CloseConnection(conn);
      return;
    }
    // Reply backlog drained; resume reads unless the coalescer queue is
    // still refusing this connection's parked request.
    if (conn->reads_paused && !conn->has_deferred) {
      conn->reads_paused = false;
      ParseInput(conn);
      if (conn->closing && conn->out_pos == conn->outbuf.size()) {
        CloseConnection(conn);
        return;
      }
    }
  } else if (conn->out_pos > (1u << 16)) {
    conn->outbuf.erase(
        conn->outbuf.begin(),
        conn->outbuf.begin() + static_cast<std::ptrdiff_t>(conn->out_pos));
    conn->out_pos = 0;
  }
  UpdateInterest(conn);
}

void EventLoop::ResumeStalledReads() {
  for (auto& entry : conns_) {
    Connection* conn = entry.second.get();
    if (!conn->reads_paused || conn->closing) continue;
    if (conn->has_deferred) {
      if (!coalescer_->TryPush(std::move(conn->deferred))) continue;
      conn->has_deferred = false;
    }
    // Still write-pressured? Stay paused until the backlog drains.
    if (conn->outbuf.size() - conn->out_pos > options_.max_outbuf) continue;
    conn->reads_paused = false;
    ParseInput(conn);  // continue on buffered bytes; may stall again
  }
}

void EventLoop::UpdateInterest(Connection* conn) {
  std::uint32_t want = 0;
  if (!conn->closing && !conn->reads_paused) want |= EPOLLIN;
  if (conn->out_pos < conn->outbuf.size()) want |= EPOLLOUT;
  if (want == conn->interest) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  conn->interest = want;
}

void EventLoop::CloseConnection(Connection* conn) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  by_id_.erase(conn->id);
  deferred_close_.push_back(conn->fd);
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
  conns_.erase(conn->fd);  // destroys *conn
}

void EventLoop::DrainPostedReplies() {
  std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> local;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    local.swap(posted_);
  }
  for (auto& posted : local) {
    const auto it = by_id_.find(posted.first);
    if (it == by_id_.end()) continue;  // connection died while in flight
    QueueReply(it->second, posted.second);
  }
}

}  // namespace ptucker
