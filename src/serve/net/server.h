/// \file
/// \brief NetServer: the assembled TCP serving front end. Start() binds
/// `listen_threads` SO_REUSEPORT listeners on one port (0 = ephemeral;
/// port() reports the choice), runs one epoll EventLoop per listener,
/// and starts the BatchCoalescer's worker pool; every loop feeds the
/// one shared bounded queue, so predict/top-K requests from different
/// clients — and different loop threads — coalesce into single tiled
/// PredictBatch / TopK calls. Hot reload rides on the underlying
/// PredictionService: ReloadSnapshot on it swaps the model atomically
/// while connections stay open, and every in-flight batch is served by
/// exactly one snapshot. Stop() is a clean shutdown: loops close every
/// connection and stop accepting, then workers drain the queue and
/// join. See docs/serving.md for the protocol and operational
/// semantics.
#ifndef PTUCKER_SERVE_NET_SERVER_H_
#define PTUCKER_SERVE_NET_SERVER_H_

#include <memory>
#include <thread>
#include <vector>

#include "serve/net/coalescer.h"
#include "serve/net/event_loop.h"
#include "serve/service.h"

namespace ptucker {

/// Validated knobs of the serving front end. The CLI's `serve`
/// subcommand validates the same ranges at the flag parser (exit 2);
/// the constructor enforces them for library users (throws
/// std::invalid_argument naming the field).
struct NetServerOptions {
  int port = 0;             ///< TCP port; 0 picks an ephemeral one
  int listen_threads = 1;   ///< epoll loops / SO_REUSEPORT shards, [1, 64]
  int worker_threads = 1;   ///< coalescer batch executors, [1, 64]
  std::int64_t max_batch = 64;         ///< coalesced batch cap, [1, 4096]
  std::int64_t batch_window_us = 100;  ///< batch fill window, [0, 1e6] µs
  std::int64_t queue_capacity = 8192;  ///< bounded MPSC depth, >= max_batch
  /// Parked-request shed deadline in ms, [-1, 3600000]: -1 parks forever
  /// (pure TCP backpressure), 0 sheds immediately, > 0 sheds after the
  /// deadline with a kOverloaded reply. See EventLoop::Options.
  std::int64_t overload_timeout_ms = -1;
  /// Registry the server's telemetry records into and the METRICS
  /// opcode serves. nullptr (the default) uses the process-wide
  /// obs::GlobalMetrics(); benches pass per-server registries so two
  /// servers in one process do not blend counters.
  obs::MetricsRegistry* metrics_registry = nullptr;
};

/// Owns the loops, the coalescer, and their threads. The service stays
/// caller-owned (shared) so the caller can ReloadSnapshot it under live
/// load.
class NetServer {
 public:
  /// Validates `options`; no sockets are touched until Start().
  NetServer(std::shared_ptr<PredictionService> service,
            const NetServerOptions& options);
  ~NetServer();  ///< Stop()s if still running

  /// Binds, listens, and launches the loop + worker threads. Throws
  /// std::runtime_error (with errno detail) on socket failures.
  void Start();

  /// Clean shutdown: closes every connection, stops accepting, drains
  /// the request queue, joins all threads. Idempotent.
  void Stop();

  /// The bound TCP port (valid after Start()).
  int port() const { return port_; }

  /// Live server counters (the STATS opcode reads the same struct).
  const ServerStats& stats() const { return stats_; }

  /// The served model plane — ReloadSnapshot here hot-swaps under load.
  PredictionService& service() { return *service_; }

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

 private:
  std::shared_ptr<PredictionService> service_;
  NetServerOptions options_;
  int port_ = 0;
  bool running_ = false;
  ServerStats stats_;
  ServeNetMetrics metrics_;
  std::unique_ptr<BatchCoalescer> coalescer_;
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::vector<std::thread> loop_threads_;
};

}  // namespace ptucker

#endif  // PTUCKER_SERVE_NET_SERVER_H_
