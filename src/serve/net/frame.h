/// \file
/// \brief Protocol-agnostic length-prefixed frame codec shared by the
/// PTKN serving protocol (serve/net/wire.h) and the PTKD distributed
/// message family (distributed/proc/dist_wire.h). Both protocols use the
/// same 20-byte header layout and the same validation path — magic
/// checked byte-by-byte as bytes arrive, reserved bytes must be zero,
/// opcode must be known, payload length capped — parameterized by a
/// FrameProtocol descriptor, so a framing rule (and its loud rejection)
/// can never drift between the two wire families.
#ifndef PTUCKER_SERVE_NET_FRAME_H_
#define PTUCKER_SERVE_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ptucker {

/// Header layout shared by every frame protocol (integers little-endian):
///
///   offset  size  field
///        0     4  magic (protocol-specific, e.g. "PTKN" / "PTKD")
///        4     1  opcode (protocol-specific table)
///        5     1  status (requests: 0; replies: protocol status table)
///        6     2  reserved, must be zero
///        8     8  request id / tag (echoed or protocol-defined)
///       16     4  payload length in bytes, <= protocol max_payload
///       20     …  payload
constexpr std::size_t kFrameHeaderSize = 20;

/// Descriptor of one frame protocol: its 4-byte magic, a printable name
/// for error messages, the payload cap, and the opcode validity
/// predicate. The decode path applies the same checks in the same order
/// for every protocol built on this codec.
struct FrameProtocol {
  /// The 4 magic bytes opening every frame.
  std::uint8_t magic[4];
  /// Printable protocol name used in framing-error messages ("PTKN").
  const char* name;
  /// Hard cap on a frame's payload length.
  std::uint32_t max_payload;
  /// Returns true when the opcode byte is in the protocol's table.
  bool (*known_opcode)(std::uint8_t opcode);
};

/// One decoded frame, before protocol-specific typing: raw opcode/status
/// bytes plus the id field and a payload copied out of the connection
/// buffer (so the frame outlives further reads).
struct RawFrame {
  std::uint8_t opcode = 0;
  std::uint8_t status = 0;
  std::uint64_t request_id = 0;
  std::vector<std::uint8_t> payload;
};

/// DecodeFrameHeader outcome. kNeedMore means the bytes so far are a
/// valid frame prefix — read more and retry; kError means the stream is
/// not a valid frame and cannot become one by appending bytes.
enum class DecodeResult {
  kFrame,     ///< one frame decoded; *consumed bytes were used
  kNeedMore,  ///< valid prefix, frame incomplete
  kError,     ///< framing violation; *error names the byte/field
};

/// Decodes at most one `protocol` frame from `data[0..size)`. On kFrame,
/// fills `frame` and sets `*consumed` to the frame's full size. On
/// kError, `*error` describes the specific violation (bad magic byte and
/// its offset, nonzero reserved bytes, unknown opcode, oversized
/// payload). The magic is convicted at the first wrong byte — a garbage
/// stream dies immediately instead of buffering a header's worth. Never
/// reads outside `data[0..size)`.
DecodeResult DecodeFrameHeader(const FrameProtocol& protocol,
                               const std::uint8_t* data, std::size_t size,
                               RawFrame* frame, std::size_t* consumed,
                               std::string* error);

/// Appends one encoded `protocol` frame (header + payload) to `out`.
void EncodeFrameHeader(const FrameProtocol& protocol, std::uint8_t opcode,
                       std::uint8_t status, std::uint64_t request_id,
                       const std::uint8_t* payload, std::size_t payload_size,
                       std::vector<std::uint8_t>* out);

/// \name Little-endian scalar append/read helpers
/// Shared by the typed payload codecs of both protocols and by tests
/// that build hostile frames byte-by-byte.
///@{
void AppendU32(std::vector<std::uint8_t>* out, std::uint32_t value);
void AppendU64(std::vector<std::uint8_t>* out, std::uint64_t value);
void AppendI64(std::vector<std::uint8_t>* out, std::int64_t value);
void AppendF64(std::vector<std::uint8_t>* out, double value);
std::uint32_t ReadU32(const std::uint8_t* p);
std::uint64_t ReadU64(const std::uint8_t* p);
std::int64_t ReadI64(const std::uint8_t* p);
double ReadF64(const std::uint8_t* p);
///@}

}  // namespace ptucker

#endif  // PTUCKER_SERVE_NET_FRAME_H_
