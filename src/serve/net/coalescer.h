/// \file
/// \brief Cross-client batch coalescing: decoded predict/top-K requests
/// from every connection (on every event-loop thread) land in one
/// bounded MPSC queue; worker threads drain up to `max_batch` entries —
/// or whatever arrived within `batch_window_us`, whichever fills first —
/// and run them through ONE tiled PredictBatch / TopK call against a
/// single atomically-grabbed ModelSnapshot, then route each encoded
/// reply back to its connection by request id. This is where a live
/// server recovers the 1.4–2.2× batch-kernel advantage bench_serving
/// measures in-process: concurrent clients each sending one query at a
/// time still execute as wide tiles. Backpressure is structural: when
/// the queue is full TryPush refuses, the event loop parks the decoded
/// request and stops reading that connection's socket until a worker
/// drains the queue — slow consumers stall their own TCP window instead
/// of growing server memory. See docs/serving.md.
#ifndef PTUCKER_SERVE_NET_COALESCER_H_
#define PTUCKER_SERVE_NET_COALESCER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/net/net_metrics.h"
#include "serve/net/wire.h"
#include "serve/service.h"

namespace ptucker {

/// One row of the STATS counter catalog: the wire index is the row's
/// position in kServerStatsFields, the same order ToVector() encodes.
struct ServerStatsField {
  const char* name;  ///< snake_case counter name (docs/serving.md table)
  const char* help;  ///< one-line meaning
};

/// The STATS payload catalog, one row per ServerStats counter in wire
/// order. The static_assert next to ToVector() pins the ServerStats
/// field count to this table, so appending a counter without extending
/// both the encoder and this documentation fails to compile. The
/// generated table in docs/serving.md mirrors these rows.
constexpr ServerStatsField kServerStatsFields[] = {
    {"connections_accepted", "TCP connections accepted across all loops"},
    {"requests_received", "wire frames dispatched (all opcodes)"},
    {"predicts_served", "PREDICT requests answered OK"},
    {"topks_served", "TOPK requests answered OK"},
    {"pings_served", "PING frames answered"},
    {"errors_sent", "error replies of any status"},
    {"batches_executed", "coalesced batches run by the workers"},
    {"batched_entries", "requests executed inside those batches"},
    {"max_batch_observed", "widest batch executed so far (not monotonic-add)"},
    {"overloads_shed", "parked requests answered OVERLOADED"},
};

/// Number of STATS counters on the wire (and ServerStats fields).
constexpr std::size_t kServerStatsFieldCount =
    sizeof(kServerStatsFields) / sizeof(kServerStatsFields[0]);

/// Server-wide monotonic counters, updated with relaxed atomics from
/// the loop and worker threads and snapshot-read by the STATS opcode.
struct ServerStats {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> requests_received{0};
  std::atomic<std::uint64_t> predicts_served{0};
  std::atomic<std::uint64_t> topks_served{0};
  std::atomic<std::uint64_t> pings_served{0};
  std::atomic<std::uint64_t> errors_sent{0};
  std::atomic<std::uint64_t> batches_executed{0};
  std::atomic<std::uint64_t> batched_entries{0};
  std::atomic<std::uint64_t> max_batch_observed{0};
  std::atomic<std::uint64_t> overloads_shed{0};

  /// The STATS wire payload, in this exact documented order (see the
  /// stats table in docs/serving.md): connections_accepted,
  /// requests_received, predicts_served, topks_served, pings_served,
  /// errors_sent, batches_executed, batched_entries, max_batch_observed,
  /// overloads_shed. New counters only ever append, so old clients keep
  /// their offsets.
  std::vector<std::uint64_t> ToVector() const;

  /// Monotonic max update for max_batch_observed.
  void ObserveBatch(std::uint64_t size);
};

/// Where a finished reply frame goes: implemented by EventLoop (routes
/// the bytes to the owning connection's write buffer, dropping them if
/// the connection died while the request was in flight) and by test
/// fakes.
class ReplySink {
 public:
  virtual ~ReplySink() = default;
  /// Thread-safe; called from coalescer worker threads.
  virtual void PostReply(std::uint64_t connection_id,
                         std::vector<std::uint8_t> frame) = 0;
};

/// One decoded, validated-at-the-wire-level request waiting for a batch
/// slot. Coordinate/range validation against the *model* happens in the
/// worker against the same snapshot that serves the batch, so a hot
/// reload between decode and execute can never produce a stale verdict.
struct NetRequest {
  ReplySink* sink = nullptr;        ///< reply route (the owning loop)
  std::uint64_t connection_id = 0;  ///< reply route (loop-unique)
  std::uint64_t request_id = 0;     ///< echoed verbatim in the reply
  Opcode opcode = Opcode::kPredict; ///< kPredict or kTopK only
  std::vector<std::int64_t> coords; ///< query coordinate, 0-based
  std::int64_t mode = 0;            ///< top-K: scanned mode
  std::int64_t k = 0;               ///< top-K: result count
  std::int64_t enqueue_us = 0;      ///< decode time (obs::Tracer::NowMicros)
                                    ///< for the latency histograms
};

/// The bounded MPSC queue + worker pool. Producers are event-loop
/// threads (TryPush), consumers are worker threads that assemble and
/// execute batches. Replies are encoded wire frames handed to each
/// request's ReplySink.
class BatchCoalescer {
 public:
  struct Options {
    std::int64_t max_batch = 64;        ///< batch size cap, in [1, 4096]
    std::int64_t batch_window_us = 100; ///< max wait to fill a batch; 0 =
                                        ///< take whatever is queued
    std::int64_t queue_capacity = 8192; ///< TryPush refuses beyond this
  };

  /// `service` and `stats` must outlive the coalescer. Throws
  /// std::invalid_argument on out-of-range options. `metrics` selects
  /// the telemetry bundle: nullptr (the default) records into the
  /// process-wide registry via ServeNetMetrics::Global(); pass a bundle
  /// built over a private registry for isolation, or one built over a
  /// null registry to turn recording off (bench_observability's
  /// baseline).
  BatchCoalescer(PredictionService* service, ServerStats* stats,
                 const Options& options,
                 const ServeNetMetrics* metrics = nullptr);
  ~BatchCoalescer();

  /// Spawns `workers` (>= 1) batch-execution threads.
  void Start(int workers);

  /// Wakes the workers, lets them drain every queued request, and joins
  /// them. Idempotent.
  void Stop();

  /// Enqueues one request. Returns false — without consuming `request` —
  /// when the queue is at capacity: the caller must park the request
  /// and pause reads on its connection until NotifySpace fires.
  bool TryPush(NetRequest&& request);

  /// Invoked (from a worker thread, outside the queue lock) after a
  /// batch is drained following a refused TryPush — the server fans it
  /// out to every event loop so stalled connections resume reading.
  void SetSpaceCallback(std::function<void()> callback);

  /// Requests currently queued (test/diagnostic hook).
  std::size_t QueueDepth() const;

  BatchCoalescer(const BatchCoalescer&) = delete;
  BatchCoalescer& operator=(const BatchCoalescer&) = delete;

 private:
  void WorkerLoop();
  void ProcessBatch(std::vector<NetRequest>* batch);

  PredictionService* const service_;
  ServerStats* const stats_;
  const Options options_;
  const ServeNetMetrics metrics_;
  std::function<void()> space_callback_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<NetRequest> queue_;
  bool stop_ = false;
  std::atomic<bool> had_backpressure_{false};
  std::vector<std::thread> workers_;
};

}  // namespace ptucker

#endif  // PTUCKER_SERVE_NET_COALESCER_H_
