/// \file
/// \brief The serving wire protocol: little-endian length-prefixed
/// binary frames carrying predict / top-K / ping / stats requests and
/// their replies. The framing layer (EncodeFrame/DecodeFrame) is shared
/// by the server's per-connection decoder, the NetClient, and the load
/// generator, so the two sides cannot drift. Malformed input is
/// rejected loudly and specifically — bad magic, nonzero reserved
/// bytes, unknown opcodes, and oversized payloads are framing errors
/// the connection cannot recover from, while bad payload *contents*
/// (wrong sizes, out-of-range coordinates) are request-level errors
/// answered with an error reply on a still-healthy connection. The
/// decoder never reads past the bytes it is given and never invokes UB
/// on hostile input (tests/serve/net/wire_test.cc sweeps byte flips and
/// truncations over valid frames, the snapshot-v2 corruption-sweep
/// discipline). The header encode/decode itself lives in the
/// protocol-agnostic codec serve/net/frame.h, which this protocol shares
/// with the PTKD distributed family — reserved-byte, magic, opcode, and
/// length violations are rejected through one code path for both. See
/// docs/serving.md for the spec tables.
#ifndef PTUCKER_SERVE_NET_WIRE_H_
#define PTUCKER_SERVE_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/net/frame.h"
#include "serve/service.h"

namespace ptucker {

/// Frame layout (all integers little-endian):
///
///   offset  size  field
///        0     4  magic "PTKN"
///        4     1  opcode (Opcode below; replies echo the request's)
///        5     1  status (requests: 0; replies: 0 = OK, else WireStatus)
///        6     2  reserved, must be zero
///        8     8  request id (echoed verbatim in the reply)
///       16     4  payload length in bytes, <= kMaxWirePayload
///       20     …  payload
constexpr std::size_t kWireHeaderSize = kFrameHeaderSize;

/// Hard cap on a frame's payload: large enough for a 64k-entry top-K
/// reply, small enough that one hostile length field cannot balloon a
/// connection's buffer.
constexpr std::uint32_t kMaxWirePayload = 1u << 20;

/// The protocol magic, byte-for-byte ('P','T','K','N').
constexpr std::uint8_t kWireMagic[4] = {0x50, 0x54, 0x4B, 0x4E};

/// Request/reply opcodes. Values are wire bytes — never renumber.
enum class Opcode : std::uint8_t {
  kPredict = 1,  ///< x̂ at one coordinate; reply payload = f64
  kTopK = 2,     ///< top-K along one mode; reply payload = scored list
  kPing = 3,     ///< liveness probe; empty payload both ways
  kStats = 4,    ///< server counters; reply payload = u64 counter vector
  kMetrics = 5,  ///< self-describing telemetry; reply payload = UTF-8
                 ///< Prometheus-style exposition text
                 ///< (docs/observability.md)
};

/// Reply status codes (the `status` header byte). Values are wire
/// bytes — never renumber.
enum class WireStatus : std::uint8_t {
  kOk = 0,          ///< success; reply payload is the typed result
  kMalformed = 1,   ///< framing broken (bad magic/reserved/opcode/length);
                    ///< the server replies once with request id 0 and
                    ///< closes, since byte sync is unrecoverable
  kBadRequest = 2,  ///< payload contents invalid (sizes, ranges, modes);
                    ///< connection stays open
  kOverloaded = 3,  ///< load shed: the request queue refused the push
                    ///< past the server's overload deadline; retry
                    ///< later (connection stays open)
  kInternal = 4,    ///< unexpected server-side failure
};

/// One decoded frame. `payload` is copied out of the connection buffer
/// so the frame outlives further reads.
struct WireFrame {
  Opcode opcode = Opcode::kPing;
  WireStatus status = WireStatus::kOk;
  std::uint64_t request_id = 0;
  std::vector<std::uint8_t> payload;
};

/// The PTKN protocol descriptor for the shared frame codec
/// (serve/net/frame.h): magic, payload cap, and opcode table in one
/// place, so PTKN and PTKD validate headers through the same path.
const FrameProtocol& PtknProtocol();

/// Decodes at most one frame from `data[0..size)`. On kFrame, fills
/// `frame` and sets `*consumed` to the frame's full size. On kError,
/// `*error` describes the specific violation (bad magic, reserved
/// bytes, unknown opcode, oversized payload). Never reads outside
/// `data[0..size)`.
DecodeResult DecodeFrame(const std::uint8_t* data, std::size_t size,
                         WireFrame* frame, std::size_t* consumed,
                         std::string* error);

/// Appends one encoded frame (header + payload) to `out`.
void EncodeFrame(Opcode opcode, WireStatus status, std::uint64_t request_id,
                 const std::uint8_t* payload, std::size_t payload_size,
                 std::vector<std::uint8_t>* out);

/// Decoded PREDICT request: payload = u32 order N, then N i64 0-based
/// coordinates.
struct PredictRequest {
  std::vector<std::int64_t> coords;
};

/// Decoded TOPK request: payload = u32 order N, u32 mode, u32 k, then
/// N i64 coordinates (the `mode` slot is a placeholder).
struct TopKRequest {
  std::int64_t mode = 0;
  std::int64_t k = 0;
  std::vector<std::int64_t> coords;
};

/// Orders above this are rejected as kBadRequest — no model in this
/// codebase is remotely close, and the bound keeps request memory tiny.
constexpr std::uint32_t kMaxWireOrder = 16;
/// k above this is rejected as kBadRequest: it bounds the reply to
/// kMaxWirePayload.
constexpr std::uint32_t kMaxWireTopK = 65535;

/// \name Typed request payload codecs
/// Parse* return false and fill `*error` on size/range violations (the
/// caller answers kBadRequest); they never throw and never read outside
/// the payload.
///@{
std::vector<std::uint8_t> EncodePredictRequest(
    std::uint64_t request_id, const std::vector<std::int64_t>& coords);
bool ParsePredictRequest(const std::vector<std::uint8_t>& payload,
                         PredictRequest* out, std::string* error);
std::vector<std::uint8_t> EncodeTopKRequest(
    std::uint64_t request_id, std::int64_t mode, std::int64_t k,
    const std::vector<std::int64_t>& coords);
bool ParseTopKRequest(const std::vector<std::uint8_t>& payload,
                      TopKRequest* out, std::string* error);
///@}

/// \name Reply codecs
/// Replies echo the request id; error replies carry the UTF-8 message
/// as their payload.
///@{
std::vector<std::uint8_t> EncodePredictReply(std::uint64_t request_id,
                                             double value);
bool ParsePredictReply(const WireFrame& frame, double* value,
                       std::string* error);
std::vector<std::uint8_t> EncodeTopKReply(
    std::uint64_t request_id, const std::vector<ScoredIndex>& results);
bool ParseTopKReply(const WireFrame& frame, std::vector<ScoredIndex>* results,
                    std::string* error);
std::vector<std::uint8_t> EncodeStatsReply(
    std::uint64_t request_id, const std::vector<std::uint64_t>& counters);
bool ParseStatsReply(const WireFrame& frame,
                     std::vector<std::uint64_t>* counters, std::string* error);
std::vector<std::uint8_t> EncodeMetricsReply(std::uint64_t request_id,
                                             const std::string& text);
bool ParseMetricsReply(const WireFrame& frame, std::string* text,
                       std::string* error);
std::vector<std::uint8_t> EncodeEmptyFrame(Opcode opcode,
                                           std::uint64_t request_id);
std::vector<std::uint8_t> EncodeErrorReply(Opcode opcode,
                                           std::uint64_t request_id,
                                           WireStatus status,
                                           const std::string& message);
///@}

}  // namespace ptucker

#endif  // PTUCKER_SERVE_NET_WIRE_H_
