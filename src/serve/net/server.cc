#include "serve/net/server.h"

#include <unistd.h>

#include <stdexcept>
#include <string>

namespace ptucker {

namespace {

void CheckRange(const char* field, std::int64_t value, std::int64_t lo,
                std::int64_t hi) {
  if (value < lo || value > hi) {
    throw std::invalid_argument("serve-net: " + std::string(field) +
                                " must be in [" + std::to_string(lo) + ", " +
                                std::to_string(hi) + "], got " +
                                std::to_string(value));
  }
}

}  // namespace

NetServer::NetServer(std::shared_ptr<PredictionService> service,
                     const NetServerOptions& options)
    : service_(std::move(service)),
      options_(options),
      metrics_(options.metrics_registry != nullptr ? options.metrics_registry
                                                   : &obs::GlobalMetrics()) {
  if (service_ == nullptr) {
    throw std::invalid_argument("serve-net: service must be non-null");
  }
  CheckRange("port", options_.port, 0, 65535);
  CheckRange("listen_threads", options_.listen_threads, 1, 64);
  CheckRange("worker_threads", options_.worker_threads, 1, 64);
  CheckRange("max_batch", options_.max_batch, 1, 4096);
  CheckRange("batch_window_us", options_.batch_window_us, 0, 1000000);
  if (options_.queue_capacity < options_.max_batch) {
    throw std::invalid_argument(
        "serve-net: queue_capacity must be >= max_batch");
  }
  CheckRange("overload_timeout_ms", options_.overload_timeout_ms, -1,
             3600000);
}

NetServer::~NetServer() { Stop(); }

void NetServer::Start() {
  if (running_) throw std::runtime_error("serve-net: already started");

  // Bind every SO_REUSEPORT shard up front: the first listener resolves
  // an ephemeral port request, the rest join it by number.
  port_ = options_.port;
  std::vector<int> listeners;
  listeners.reserve(static_cast<std::size_t>(options_.listen_threads));
  try {
    for (int t = 0; t < options_.listen_threads; ++t) {
      listeners.push_back(CreateListenSocket(&port_));
    }
  } catch (...) {
    for (const int fd : listeners) ::close(fd);
    throw;
  }

  BatchCoalescer::Options coalescer_options;
  coalescer_options.max_batch = options_.max_batch;
  coalescer_options.batch_window_us = options_.batch_window_us;
  coalescer_options.queue_capacity = options_.queue_capacity;
  coalescer_ = std::make_unique<BatchCoalescer>(service_.get(), &stats_,
                                                coalescer_options, &metrics_);

  EventLoop::Options loop_options;
  loop_options.overload_timeout_ms = options_.overload_timeout_ms;
  loops_.clear();
  for (int t = 0; t < options_.listen_threads; ++t) {
    // id_base keeps connection ids globally unique: the loop index lives
    // in the top bits, each loop counts monotonically below it.
    loops_.push_back(std::make_unique<EventLoop>(
        listeners[static_cast<std::size_t>(t)], coalescer_.get(), &stats_,
        static_cast<std::uint64_t>(t + 1) << 48, loop_options, &metrics_));
  }
  coalescer_->SetSpaceCallback([this] {
    for (const auto& loop : loops_) loop->NotifyQueueSpace();
  });
  coalescer_->Start(options_.worker_threads);
  for (const auto& loop : loops_) {
    loop_threads_.emplace_back([raw = loop.get()] { raw->Run(); });
  }
  running_ = true;
}

void NetServer::Stop() {
  if (!running_) return;
  // Order matters: loops first (no new requests, connections closed),
  // then the workers drain what is already queued. A reply posted to a
  // finished loop is parked and freed with it — never delivered to a
  // recycled descriptor.
  for (const auto& loop : loops_) loop->Stop();
  for (std::thread& thread : loop_threads_) {
    if (thread.joinable()) thread.join();
  }
  loop_threads_.clear();
  coalescer_->Stop();
  loops_.clear();
  coalescer_.reset();
  running_ = false;
}

}  // namespace ptucker
