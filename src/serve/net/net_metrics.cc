#include "serve/net/net_metrics.h"

namespace ptucker {

namespace {

// Latency ladder: 10 us .. ~5 s in powers of 2 — wide enough to place
// both an in-memory predict and a full-scan top-K.
std::vector<double> LatencyBounds() {
  return obs::ExponentialBuckets(1e-5, 2.0, 20);
}

// Batch widths: powers of 2 up to the 4096 max_batch cap.
std::vector<double> BatchBounds() {
  return obs::ExponentialBuckets(1.0, 2.0, 13);
}

}  // namespace

ServeNetMetrics::ServeNetMetrics(obs::MetricsRegistry* registry_in)
    : registry(registry_in) {
  if (registry == nullptr) return;  // telemetry off: every handle null
  requests_total = registry->GetCounter(
      "ptucker_serve_requests_total",
      "Wire frames dispatched by the event loops, all opcodes");
  parked_total = registry->GetCounter(
      "ptucker_serve_parked_total",
      "Requests parked on a full coalescer queue (backpressure)");
  shed_total = registry->GetCounter(
      "ptucker_serve_shed_total",
      "Parked requests shed with an OVERLOADED reply past the deadline");
  queue_depth = registry->GetGauge(
      "ptucker_serve_queue_depth",
      "Requests in the coalescer queue right now");
  predict_latency = registry->GetHistogram(
      "ptucker_serve_predict_latency_seconds",
      "PREDICT enqueue-to-reply latency in seconds", LatencyBounds());
  topk_latency = registry->GetHistogram(
      "ptucker_serve_topk_latency_seconds",
      "TOPK enqueue-to-reply latency in seconds", LatencyBounds());
  batch_size = registry->GetHistogram(
      "ptucker_serve_batch_size",
      "Coalesced batch widths actually executed", BatchBounds());
}

const ServeNetMetrics& ServeNetMetrics::Global() {
  static const ServeNetMetrics* bundle =
      new ServeNetMetrics(&obs::GlobalMetrics());
  return *bundle;
}

}  // namespace ptucker
