#include "serve/net/wire.h"

namespace ptucker {

namespace {

// Valid wire opcodes; anything else in the opcode byte is a framing
// error (the stream may be garbage, so the connection is torn down).
bool KnownOpcode(std::uint8_t value) {
  return value >= static_cast<std::uint8_t>(Opcode::kPredict) &&
         value <= static_cast<std::uint8_t>(Opcode::kMetrics);
}

}  // namespace

const FrameProtocol& PtknProtocol() {
  static const FrameProtocol protocol = {
      {kWireMagic[0], kWireMagic[1], kWireMagic[2], kWireMagic[3]},
      "PTKN",
      kMaxWirePayload,
      &KnownOpcode};
  return protocol;
}

DecodeResult DecodeFrame(const std::uint8_t* data, std::size_t size,
                         WireFrame* frame, std::size_t* consumed,
                         std::string* error) {
  RawFrame raw;
  const DecodeResult result =
      DecodeFrameHeader(PtknProtocol(), data, size, &raw, consumed, error);
  if (result == DecodeResult::kFrame) {
    frame->opcode = static_cast<Opcode>(raw.opcode);
    frame->status = static_cast<WireStatus>(raw.status);
    frame->request_id = raw.request_id;
    frame->payload = std::move(raw.payload);
  }
  return result;
}

void EncodeFrame(Opcode opcode, WireStatus status, std::uint64_t request_id,
                 const std::uint8_t* payload, std::size_t payload_size,
                 std::vector<std::uint8_t>* out) {
  EncodeFrameHeader(PtknProtocol(), static_cast<std::uint8_t>(opcode),
                    static_cast<std::uint8_t>(status), request_id, payload,
                    payload_size, out);
}

std::vector<std::uint8_t> EncodePredictRequest(
    std::uint64_t request_id, const std::vector<std::int64_t>& coords) {
  std::vector<std::uint8_t> payload;
  AppendU32(&payload, static_cast<std::uint32_t>(coords.size()));
  for (const std::int64_t c : coords) AppendI64(&payload, c);
  std::vector<std::uint8_t> out;
  EncodeFrame(Opcode::kPredict, WireStatus::kOk, request_id, payload.data(),
              payload.size(), &out);
  return out;
}

bool ParsePredictRequest(const std::vector<std::uint8_t>& payload,
                         PredictRequest* out, std::string* error) {
  if (payload.size() < 4) {
    *error = "predict payload too short for the order field";
    return false;
  }
  const std::uint32_t order = ReadU32(payload.data());
  if (order < 1 || order > kMaxWireOrder) {
    *error = "predict order " + std::to_string(order) + " outside [1, " +
             std::to_string(kMaxWireOrder) + "]";
    return false;
  }
  if (payload.size() != 4 + static_cast<std::size_t>(order) * 8) {
    *error = "predict payload is " + std::to_string(payload.size()) +
             " bytes, want " + std::to_string(4 + order * 8) + " for order " +
             std::to_string(order);
    return false;
  }
  out->coords.resize(order);
  for (std::uint32_t n = 0; n < order; ++n) {
    out->coords[n] = ReadI64(payload.data() + 4 + n * 8);
  }
  return true;
}

std::vector<std::uint8_t> EncodeTopKRequest(
    std::uint64_t request_id, std::int64_t mode, std::int64_t k,
    const std::vector<std::int64_t>& coords) {
  std::vector<std::uint8_t> payload;
  AppendU32(&payload, static_cast<std::uint32_t>(coords.size()));
  AppendU32(&payload, static_cast<std::uint32_t>(mode));
  AppendU32(&payload, static_cast<std::uint32_t>(k));
  for (const std::int64_t c : coords) AppendI64(&payload, c);
  std::vector<std::uint8_t> out;
  EncodeFrame(Opcode::kTopK, WireStatus::kOk, request_id, payload.data(),
              payload.size(), &out);
  return out;
}

bool ParseTopKRequest(const std::vector<std::uint8_t>& payload,
                      TopKRequest* out, std::string* error) {
  if (payload.size() < 12) {
    *error = "topk payload too short for the order/mode/k fields";
    return false;
  }
  const std::uint32_t order = ReadU32(payload.data());
  const std::uint32_t mode = ReadU32(payload.data() + 4);
  const std::uint32_t k = ReadU32(payload.data() + 8);
  if (order < 1 || order > kMaxWireOrder) {
    *error = "topk order " + std::to_string(order) + " outside [1, " +
             std::to_string(kMaxWireOrder) + "]";
    return false;
  }
  if (mode >= order) {
    *error = "topk mode " + std::to_string(mode) + " out of range for order " +
             std::to_string(order);
    return false;
  }
  if (k < 1 || k > kMaxWireTopK) {
    *error = "topk k " + std::to_string(k) + " outside [1, " +
             std::to_string(kMaxWireTopK) + "]";
    return false;
  }
  if (payload.size() != 12 + static_cast<std::size_t>(order) * 8) {
    *error = "topk payload is " + std::to_string(payload.size()) +
             " bytes, want " + std::to_string(12 + order * 8) + " for order " +
             std::to_string(order);
    return false;
  }
  out->mode = mode;
  out->k = k;
  out->coords.resize(order);
  for (std::uint32_t n = 0; n < order; ++n) {
    out->coords[n] = ReadI64(payload.data() + 12 + n * 8);
  }
  return true;
}

std::vector<std::uint8_t> EncodePredictReply(std::uint64_t request_id,
                                             double value) {
  std::vector<std::uint8_t> payload;
  AppendF64(&payload, value);
  std::vector<std::uint8_t> out;
  EncodeFrame(Opcode::kPredict, WireStatus::kOk, request_id, payload.data(),
              payload.size(), &out);
  return out;
}

bool ParsePredictReply(const WireFrame& frame, double* value,
                       std::string* error) {
  if (frame.status != WireStatus::kOk) {
    *error = "server error " +
             std::to_string(static_cast<unsigned>(frame.status)) + ": " +
             std::string(frame.payload.begin(), frame.payload.end());
    return false;
  }
  if (frame.opcode != Opcode::kPredict || frame.payload.size() != 8) {
    *error = "malformed predict reply";
    return false;
  }
  *value = ReadF64(frame.payload.data());
  return true;
}

std::vector<std::uint8_t> EncodeTopKReply(
    std::uint64_t request_id, const std::vector<ScoredIndex>& results) {
  std::vector<std::uint8_t> payload;
  AppendU32(&payload, static_cast<std::uint32_t>(results.size()));
  for (const ScoredIndex& r : results) {
    AppendI64(&payload, r.index);
    AppendF64(&payload, r.score);
  }
  std::vector<std::uint8_t> out;
  EncodeFrame(Opcode::kTopK, WireStatus::kOk, request_id, payload.data(),
              payload.size(), &out);
  return out;
}

bool ParseTopKReply(const WireFrame& frame, std::vector<ScoredIndex>* results,
                    std::string* error) {
  if (frame.status != WireStatus::kOk) {
    *error = "server error " +
             std::to_string(static_cast<unsigned>(frame.status)) + ": " +
             std::string(frame.payload.begin(), frame.payload.end());
    return false;
  }
  if (frame.opcode != Opcode::kTopK || frame.payload.size() < 4) {
    *error = "malformed topk reply";
    return false;
  }
  const std::uint32_t count = ReadU32(frame.payload.data());
  if (frame.payload.size() != 4 + static_cast<std::size_t>(count) * 16) {
    *error = "topk reply count disagrees with its payload size";
    return false;
  }
  results->resize(count);
  for (std::uint32_t r = 0; r < count; ++r) {
    (*results)[r].index = ReadI64(frame.payload.data() + 4 + r * 16);
    (*results)[r].score = ReadF64(frame.payload.data() + 4 + r * 16 + 8);
  }
  return true;
}

std::vector<std::uint8_t> EncodeStatsReply(
    std::uint64_t request_id, const std::vector<std::uint64_t>& counters) {
  std::vector<std::uint8_t> payload;
  AppendU32(&payload, static_cast<std::uint32_t>(counters.size()));
  for (const std::uint64_t c : counters) AppendU64(&payload, c);
  std::vector<std::uint8_t> out;
  EncodeFrame(Opcode::kStats, WireStatus::kOk, request_id, payload.data(),
              payload.size(), &out);
  return out;
}

bool ParseStatsReply(const WireFrame& frame,
                     std::vector<std::uint64_t>* counters,
                     std::string* error) {
  if (frame.status != WireStatus::kOk) {
    *error = "server error " +
             std::to_string(static_cast<unsigned>(frame.status)) + ": " +
             std::string(frame.payload.begin(), frame.payload.end());
    return false;
  }
  if (frame.opcode != Opcode::kStats || frame.payload.size() < 4) {
    *error = "malformed stats reply";
    return false;
  }
  const std::uint32_t count = ReadU32(frame.payload.data());
  if (frame.payload.size() != 4 + static_cast<std::size_t>(count) * 8) {
    *error = "stats reply count disagrees with its payload size";
    return false;
  }
  counters->resize(count);
  for (std::uint32_t c = 0; c < count; ++c) {
    (*counters)[c] = ReadU64(frame.payload.data() + 4 + c * 8);
  }
  return true;
}

std::vector<std::uint8_t> EncodeMetricsReply(std::uint64_t request_id,
                                             const std::string& text) {
  // The exposition text is served verbatim — the payload cap bounds it
  // the same way it bounds a top-K reply. A registry would need
  // thousands of metrics to approach 1 MiB; truncation here would be a
  // parse error on the client, so oversized text is a programming error
  // EncodeFrameHeader's length check turns into a loud throw.
  std::vector<std::uint8_t> out;
  EncodeFrame(Opcode::kMetrics, WireStatus::kOk, request_id,
              reinterpret_cast<const std::uint8_t*>(text.data()), text.size(),
              &out);
  return out;
}

bool ParseMetricsReply(const WireFrame& frame, std::string* text,
                       std::string* error) {
  if (frame.status != WireStatus::kOk) {
    *error = "server error " +
             std::to_string(static_cast<unsigned>(frame.status)) + ": " +
             std::string(frame.payload.begin(), frame.payload.end());
    return false;
  }
  if (frame.opcode != Opcode::kMetrics) {
    *error = "malformed metrics reply";
    return false;
  }
  text->assign(frame.payload.begin(), frame.payload.end());
  return true;
}

std::vector<std::uint8_t> EncodeEmptyFrame(Opcode opcode,
                                           std::uint64_t request_id) {
  std::vector<std::uint8_t> out;
  EncodeFrame(opcode, WireStatus::kOk, request_id, nullptr, 0, &out);
  return out;
}

std::vector<std::uint8_t> EncodeErrorReply(Opcode opcode,
                                           std::uint64_t request_id,
                                           WireStatus status,
                                           const std::string& message) {
  std::vector<std::uint8_t> out;
  EncodeFrame(opcode, status, request_id,
              reinterpret_cast<const std::uint8_t*>(message.data()),
              message.size(), &out);
  return out;
}

}  // namespace ptucker
